package hpmmap

import "testing"

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Manager() != ManagerHPMMAP {
		t.Fatalf("default manager %q", sys.Manager())
	}
	// 12GB offlined: Linux sees 4GB.
	if got := sys.FreeMemory(); got > 4<<30 {
		t.Fatalf("free memory %d after offlining", got)
	}
	if sys.PoolFree() != 12<<30 {
		t.Fatalf("pool free %d", sys.PoolFree())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Machine: "cray"}); err == nil {
		t.Fatal("bad machine accepted")
	}
	if _, err := New(Config{Manager: "slab"}); err == nil {
		t.Fatal("bad manager accepted")
	}
}

func TestHPMMAPZeroFaultPath(t *testing.T) {
	sys, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.LaunchHPC("solver")
	if err != nil {
		t.Fatal(err)
	}
	if p.ManagedBy() != "hpmmap" {
		t.Fatalf("managed by %q", p.ManagedBy())
	}
	addr, cost, err := p.Mmap(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("eager mmap cost zero")
	}
	rep, err := p.Touch(addr, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 0 {
		t.Fatalf("faults on hpmmap process: %+v", rep)
	}
	if p.LargePageFraction() != 1 {
		t.Fatalf("large fraction %v", p.LargePageFraction())
	}
	if err := p.Munmap(addr, 1<<30); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	if sys.PoolFree() != 12<<30 {
		t.Fatalf("pool leaked: %d", sys.PoolFree())
	}
}

func TestTHPFaultPath(t *testing.T) {
	sys, err := New(Config{Manager: ManagerTHP, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.LaunchHPC("solver")
	if err != nil {
		t.Fatal(err)
	}
	addr, _, err := p.Mmap(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Touch(addr, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind["large"] == 0 {
		t.Fatalf("no THP large faults: %+v", rep)
	}
	small, large := p.Resident()
	if small+large < 64<<20 {
		t.Fatalf("resident %d+%d", small, large)
	}
	tot := p.FaultTotals()
	if tot.Faults == 0 || tot.Cycles == 0 {
		t.Fatalf("totals %+v", tot)
	}
}

func TestHugeTLBfsPath(t *testing.T) {
	sys, err := New(Config{Manager: ManagerHugeTLBfs, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.LaunchHPC("solver")
	if err != nil {
		t.Fatal(err)
	}
	addr, _, err := p.Mmap(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Touch(addr, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind["hugetlb-large"] == 0 {
		t.Fatalf("no hugetlb faults: %+v", rep)
	}
}

func TestBuildAndAdvance(t *testing.T) {
	sys, err := New(Config{Manager: ManagerTHP, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := sys.StartKernelBuild(8)
	sys.Advance(5)
	if sys.Now() < 5 {
		t.Fatalf("Now = %v", sys.Now())
	}
	if b.Compiles() == 0 {
		t.Fatal("no compiles after 5 simulated seconds")
	}
	b.Stop()
}

func TestCommodityRouting(t *testing.T) {
	sys, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := sys.LaunchCommodity("browser")
	if err != nil {
		t.Fatal(err)
	}
	if c.ManagedBy() == "hpmmap" {
		t.Fatal("commodity process routed to hpmmap")
	}
	if c.PID() == 0 {
		t.Fatal("no pid")
	}
}

func TestMlockAllFacade(t *testing.T) {
	sys, err := New(Config{Manager: ManagerTHP, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sys.LaunchHPC("pinner")
	addr, _, _ := p.Mmap(32 << 20)
	if _, err := p.Touch(addr, 32<<20); err != nil {
		t.Fatal(err)
	}
	if p.LargePageFraction() == 0 {
		t.Fatal("setup: no large pages")
	}
	if err := p.MlockAll(); err != nil {
		t.Fatal(err)
	}
	if p.LargePageFraction() != 0 {
		t.Fatalf("large fraction %v after mlockall (THP must split)", p.LargePageFraction())
	}
	// HPMMAP: a no-op that keeps large pages.
	sys2, _ := New(Config{Seed: 6})
	q, _ := sys2.LaunchHPC("pinner")
	qaddr, _, _ := q.Mmap(32 << 20)
	_ = qaddr
	if err := q.MlockAll(); err != nil {
		t.Fatal(err)
	}
	if q.LargePageFraction() != 1 {
		t.Fatal("hpmmap lost large pages to mlockall")
	}
}

func TestUse1GPagesFacade(t *testing.T) {
	sys, err := New(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetUse1GPages(true)
	p, _ := sys.LaunchHPC("big")
	if _, _, err := p.Mmap(2 << 30); err != nil {
		t.Fatal(err)
	}
	if p.LargePageFraction() != 1 {
		t.Fatal("1G mode lost large coverage")
	}
}

func TestRunBenchmarkFacade(t *testing.T) {
	res, err := RunBenchmark(BenchmarkOptions{
		Benchmark: "HPCCG",
		Manager:   ManagerTHP,
		Profile:   "A",
		Ranks:     2,
		Seed:      3,
		Scale:     0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeSeconds <= 0 || res.Faults.Faults == 0 {
		t.Fatalf("result %+v", res)
	}
	if _, err := RunBenchmark(BenchmarkOptions{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunBenchmark(BenchmarkOptions{Benchmark: "HPCCG", Profile: "Z"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := RunBenchmark(BenchmarkOptions{Benchmark: "HPCCG", Manager: "slab"}); err == nil {
		t.Fatal("unknown manager accepted")
	}
}

func TestRunClusterBenchmarkFacade(t *testing.T) {
	res, err := RunClusterBenchmark(BenchmarkOptions{
		Benchmark: "HPCCG",
		Manager:   ManagerHPMMAP,
		Profile:   "C",
		Ranks:     8,
		Seed:      3,
		Scale:     0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeSeconds <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Faults.Faults != 0 {
		t.Fatalf("hpmmap cluster run faulted: %+v", res.Faults)
	}
}

func TestRunFaultStudyFacade(t *testing.T) {
	rows, err := RunFaultStudy("miniFE", ManagerTHP, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Loaded || !rows[1].Loaded {
		t.Fatal("row order wrong")
	}
	if rows[0].Kinds["small"].Count == 0 {
		t.Fatalf("no small faults: %+v", rows[0].Kinds)
	}
	if _, err := RunFaultStudy("miniFE", "bogus", 3, 0.25); err == nil {
		t.Fatal("bogus manager accepted")
	}
}

func TestTimelineFacade(t *testing.T) {
	plot, err := Timeline("miniFE", ManagerTHP, true, 3, 0.25, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plot) == 0 || plot == "(no faults)\n" {
		t.Fatalf("plot %q", plot)
	}
}

func TestAnalyticsFacade(t *testing.T) {
	sys, err := New(Config{Manager: ManagerTHP, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	a := sys.StartAnalytics()
	sys.Advance(10)
	if a.Passes() == 0 {
		t.Fatal("no analytics passes in 10 simulated seconds")
	}
	a.Stop()
}

func TestDetailModeFacade(t *testing.T) {
	sys, err := New(Config{Manager: ManagerTHP, Seed: 13, Detail: true})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sys.LaunchHPC("micro")
	addr, _, _ := p.Mmap(16 << 20)
	rep, err := p.Touch(addr, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 {
		t.Fatal("no faults in detail mode")
	}
}
