// Package hpmmap is the public API of the HPMMAP reproduction: a
// simulation of the lightweight memory-management architecture from
// "HPMMAP: Lightweight Memory Management for Commodity Operating Systems"
// (Kocoloski & Lange, IPDPS 2014), together with the commodity baselines
// it was evaluated against (Transparent Huge Pages and HugeTLBfs) and the
// paper's full experimental harness.
//
// A System is one simulated compute node: cores, NUMA memory, a Linux
// memory-management model, and optionally the HPMMAP kernel module with
// its offlined memory pool. Processes launched through the HPMMAP tool
// are registered in its PID table and get eagerly backed, large-page
// mapped, isolated memory; everything else demand-pages through Linux.
//
//	sys, _ := hpmmap.New(hpmmap.Config{Manager: hpmmap.ManagerHPMMAP})
//	p, _ := sys.LaunchHPC("solver")
//	addr, _, _ := p.Mmap(1 << 30)
//	rep, _ := p.Touch(addr, 1<<30) // rep.Faults == 0: on-request allocation
//
// The experiment harness behind `hpmmap-bench` is exposed through
// RunBenchmark, RunClusterBenchmark and RunFaultStudy.
package hpmmap

import (
	"fmt"

	"hpmmap/internal/core"
	"hpmmap/internal/fault"
	"hpmmap/internal/hugetlb"
	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/thp"
	"hpmmap/internal/vma"
	"hpmmap/internal/workload"
)

// Manager selects the memory-management configuration of a System.
type Manager string

// The paper's three configurations.
const (
	// ManagerTHP: Linux with Transparent Huge Pages for every process.
	ManagerTHP Manager = "thp"
	// ManagerHugeTLBfs: the HPC side uses a preallocated hugetlbfs pool
	// via libhugetlbfs; THP is disabled.
	ManagerHugeTLBfs Manager = "hugetlbfs"
	// ManagerHPMMAP: the HPMMAP module is loaded with an offlined pool;
	// commodity processes stay on Linux THP.
	ManagerHPMMAP Manager = "hpmmap"
)

// Config describes a simulated node.
type Config struct {
	// Machine preset: "dell-r415" (default; the paper's single-node
	// testbed) or "sandia-xeon" (one node of the 8-node cluster).
	Machine string
	// Manager configuration; default ManagerHPMMAP.
	Manager Manager
	// PoolBytes is the memory offlined for HPMMAP or reserved for
	// hugetlbfs. Default: the paper's values (12GB single node, 20GB
	// cluster node).
	PoolBytes uint64
	// Seed makes the simulation deterministic; same seed, same run.
	Seed uint64
	// Detail enables micro fidelity: per-fault records and real page
	// tables (slower; used for fault studies).
	Detail bool
}

// System is one simulated node.
type System struct {
	eng    *sim.Engine
	node   *kernel.Node
	mm     *linuxmm.Manager
	hp     *core.Manager
	daemon *thp.Daemon
	mgr    Manager
}

// New boots a node.
func New(cfg Config) (*System, error) {
	var mc kernel.MachineConfig
	switch cfg.Machine {
	case "", "dell-r415":
		mc = kernel.DellR415()
	case "sandia-xeon":
		mc = kernel.SandiaXeon()
	default:
		return nil, fmt.Errorf("hpmmap: unknown machine preset %q", cfg.Machine)
	}
	if cfg.Manager == "" {
		cfg.Manager = ManagerHPMMAP
	}
	if cfg.PoolBytes == 0 {
		cfg.PoolBytes = 12 << 30
		if mc.MemoryBytes >= 24<<30 {
			cfg.PoolBytes = 20 << 30
		}
	}
	eng := sim.NewEngine()
	node := kernel.NewNode(mc, eng, sim.NewRand(cfg.Seed))
	node.Detail = cfg.Detail
	s := &System{eng: eng, node: node, mgr: cfg.Manager}
	switch cfg.Manager {
	case ManagerTHP:
		s.mm = linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
		node.SetDefaultMM(s.mm)
		s.daemon = thp.Start(node, s.mm)
	case ManagerHugeTLBfs:
		pools, err := hugetlb.Reserve(node.Mem, cfg.PoolBytes)
		if err != nil {
			return nil, err
		}
		node.SetReservedBytes(cfg.PoolBytes)
		s.mm = linuxmm.New(node, linuxmm.ModeHugeTLB, linuxmm.Mode4KOnly, pools)
		node.SetDefaultMM(s.mm)
	case ManagerHPMMAP:
		s.mm = linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
		node.SetDefaultMM(s.mm)
		s.daemon = thp.Start(node, s.mm)
		hp, err := core.Install(node, cfg.PoolBytes)
		if err != nil {
			return nil, err
		}
		s.hp = hp
	default:
		return nil, fmt.Errorf("hpmmap: unknown manager %q", cfg.Manager)
	}
	return s, nil
}

// Manager reports the active configuration.
func (s *System) Manager() Manager { return s.mgr }

// SetUse1GPages switches HPMMAP to 1GB pages for gigabyte-scale regions
// (no effect under other managers).
func (s *System) SetUse1GPages(v bool) {
	if s.hp != nil {
		s.hp.Use1GPages = v
	}
}

// Advance runs the simulation forward by the given number of seconds of
// simulated time (background daemons, builds and processes all progress).
func (s *System) Advance(seconds float64) {
	s.eng.RunUntil(s.eng.Now() + sim.Cycles(s.node.Config().Cycles(seconds)))
}

// Now returns the simulated time in seconds since boot.
func (s *System) Now() float64 {
	return s.node.Config().Seconds(float64(s.eng.Now()))
}

// FreeMemory returns the bytes Linux's allocator has free (offlined and
// reserved memory excluded).
func (s *System) FreeMemory() uint64 {
	return s.node.Mem.FreePages() * 4096
}

// PoolFree returns the free bytes in HPMMAP's offlined pool (zero for
// other managers).
func (s *System) PoolFree() uint64 {
	if s.hp == nil {
		return 0
	}
	return s.hp.PoolFreeBytes()
}

// LaunchHPC starts an HPC process. Under ManagerHPMMAP it goes through
// the registration launch tool (so its memory calls are interposed);
// otherwise it is an ordinary Linux process using the HPC-side policy.
func (s *System) LaunchHPC(name string) (*Process, error) {
	var p *kernel.Process
	var err error
	if s.hp != nil {
		p, err = s.hp.Launch(name, 0)
	} else {
		p, err = s.node.NewProcess(name, false, 0)
	}
	if err != nil {
		return nil, err
	}
	return &Process{sys: s, p: p}, nil
}

// LaunchCommodity starts a commodity process (always Linux-managed).
func (s *System) LaunchCommodity(name string) (*Process, error) {
	p, err := s.node.NewProcess(name, true, 0)
	if err != nil {
		return nil, err
	}
	return &Process{sys: s, p: p}, nil
}

// StartKernelBuild launches a parallel kernel build (the paper's
// interference workload) with the given -j level. Call Stop on the result
// to end it.
func (s *System) StartKernelBuild(jobs int) *Build {
	b := workload.StartBuild(s.node, workload.KernelBuild(jobs), s.node.Rand().Uint64())
	return &Build{b: b}
}

// Build is a running kernel build.
type Build struct{ b *workload.Build }

// Stop halts the build.
func (b *Build) Stop() { b.b.Stop() }

// Compiles reports completed compilation units.
func (b *Build) Compiles() uint64 { return b.b.Compiles }

// StartAnalytics launches an in-situ analytics/visualization consumer —
// the paper's motivating co-location scenario: every few seconds it
// ingests a multi-GB snapshot of simulation output, crunches it with
// bandwidth-heavy compute, and emits results to the page cache.
func (s *System) StartAnalytics() *Analytics {
	a := workload.StartAnalytics(s.node, workload.VizPipeline(), s.node.Rand().Uint64())
	return &Analytics{a: a}
}

// Analytics is a running in-situ consumer.
type Analytics struct{ a *workload.Analytics }

// Stop halts the consumer.
func (a *Analytics) Stop() { a.a.Stop() }

// Passes reports completed analysis passes.
func (a *Analytics) Passes() uint64 { return a.a.Passes }

// Process is one simulated process.
type Process struct {
	sys *System
	p   *kernel.Process
}

// PID returns the process ID.
func (p *Process) PID() int { return p.p.PID }

// ManagedBy reports which memory manager serves this process's memory
// system calls right now.
func (p *Process) ManagedBy() string { return p.sys.node.ManagerNameFor(p.p) }

// Mmap creates an anonymous mapping and returns its address and the
// simulated cycles the call took. Under HPMMAP the region is backed
// eagerly (on-request allocation), so the cost covers zeroing it.
func (p *Process) Mmap(bytes uint64) (uint64, uint64, error) {
	addr, cost, err := p.sys.node.Mmap(p.p, bytes, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	return uint64(addr), uint64(cost), err
}

// Munmap removes a mapping created by Mmap.
func (p *Process) Munmap(addr, bytes uint64) error {
	_, err := p.sys.node.Munmap(p.p, pgtable.VirtAddr(addr), bytes)
	return err
}

// FaultReport summarizes the faults taken by one Touch.
type FaultReport struct {
	// Faults is the total count; Cycles the total service time.
	Faults uint64
	Cycles uint64
	// ByKind maps fault kind names ("small", "large", "merge",
	// "hugetlb-large", "hugetlb-small") to counts.
	ByKind map[string]uint64
	// Stalls counts reclaim storms and merge waits.
	Stalls uint64
}

// Touch simulates the process accessing [addr, addr+bytes) for the first
// time, demand-paging as the active manager dictates. HPMMAP processes
// take zero faults on valid ranges.
func (p *Process) Touch(addr, bytes uint64) (FaultReport, error) {
	st, err := p.sys.node.TouchRange(p.p, pgtable.VirtAddr(addr), bytes)
	if err != nil {
		return FaultReport{}, err
	}
	return reportOf(st), nil
}

func reportOf(st kernel.TouchStats) FaultReport {
	rep := FaultReport{ByKind: map[string]uint64{}, Stalls: st.Stalls}
	for k := 0; k < fault.NumKinds; k++ {
		if st.Faults[k] == 0 {
			continue
		}
		rep.ByKind[fault.Kind(k).String()] = st.Faults[k]
		rep.Faults += st.Faults[k]
		rep.Cycles += uint64(st.Cycles[k])
	}
	return rep
}

// FaultTotals returns the process's lifetime fault report.
func (p *Process) FaultTotals() FaultReport { return reportOf(p.p.Faults) }

// Resident returns (small-page bytes, large-page bytes) currently backing
// the process.
func (p *Process) Resident() (small, large uint64) {
	return p.p.ResidentSmall, p.p.ResidentLarge
}

// LargePageFraction reports how much of the resident set is 2MB-mapped.
func (p *Process) LargePageFraction() float64 { return p.p.LargeFraction() }

// MlockAll pins the process's resident set (the mlockall system call).
// Under Linux THP this splits every large page into pinned small pages —
// the paper's Section II-B pitfall; under HPMMAP memory is unswappable
// already and the call is a cheap no-op.
func (p *Process) MlockAll() error {
	if p.sys.node.ManagerNameFor(p.p) == "hpmmap" {
		return nil // offlined memory never swaps
	}
	_, err := p.sys.mm.MlockAll(p.p)
	return err
}

// Exit terminates the process, releasing all memory (and, under HPMMAP,
// its registry entry).
func (p *Process) Exit() { p.sys.node.Exit(p.p) }
