package hpmmap_test

import (
	"fmt"

	"hpmmap"
)

// The canonical HPMMAP interaction: a registered process maps a gigabyte
// through the interposed mmap, gets it eagerly backed with 2MB pages from
// the offlined pool, and never takes a page fault.
func Example() {
	sys, err := hpmmap.New(hpmmap.Config{Manager: hpmmap.ManagerHPMMAP, Seed: 1})
	if err != nil {
		panic(err)
	}
	p, err := sys.LaunchHPC("solver")
	if err != nil {
		panic(err)
	}
	addr, _, err := p.Mmap(1 << 30)
	if err != nil {
		panic(err)
	}
	rep, err := p.Touch(addr, 1<<30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("faults=%d large-page-fraction=%.0f%% managed-by=%s\n",
		rep.Faults, 100*p.LargePageFraction(), p.ManagedBy())
	// Output: faults=0 large-page-fraction=100% managed-by=hpmmap
}

// A commodity process on the same node demand-pages through Linux THP:
// mmap is cheap, the touch pays in the fault handler.
func Example_commodity() {
	sys, err := hpmmap.New(hpmmap.Config{Manager: hpmmap.ManagerTHP, Seed: 1})
	if err != nil {
		panic(err)
	}
	c, err := sys.LaunchCommodity("postprocess")
	if err != nil {
		panic(err)
	}
	addr, _, err := c.Mmap(64 << 20)
	if err != nil {
		panic(err)
	}
	rep, err := c.Touch(addr, 64<<20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("thp-large-faults=%d\n", rep.ByKind["large"])
	// Output: thp-large-faults=31
}

// RunBenchmark executes one cell of the paper's Figure 7 study.
func ExampleRunBenchmark() {
	res, err := hpmmap.RunBenchmark(hpmmap.BenchmarkOptions{
		Benchmark: "HPCCG",
		Manager:   hpmmap.ManagerHPMMAP,
		Profile:   "A",
		Ranks:     2,
		Seed:      7,
		Scale:     0.25, // quick run: quarter-size problem and machine
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("faults=%d runtime>0=%v\n", res.Faults.Faults, res.RuntimeSeconds > 0)
	// Output: faults=0 runtime>0=true
}
