# Tier-1 verification for this repository. `make verify` is what CI
# runs: build everything, run every test, re-run the whole tree under
# the race detector, vet, and run the detsim determinism linter
# (cmd/hpmmap-vet — see ANALYSIS.md). The observability contract
# (OBSERVABILITY.md rows <-> internal/metrics/names.go constants <->
# source-tree usage) is enforced by internal/metrics/contract_test.go,
# which `test` includes; its weakest leg (registration-site constants)
# is additionally enforced at lint time by the metricname analyzer.

GO ?= go

.PHONY: verify build test race vet lint lint-fast lint-audit lint-report bench chaos datacenter eviction

verify: build test race vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# The detsim determinism-and-invariant analyzer suite (wallclock,
# randsource, maporder, panicsite, metricname, streamcarve,
# poolescape, hotpath; see ANALYSIS.md), run through the go command's
# vet harness. Manual invocation:
#   go build -o bin/hpmmap-vet ./cmd/hpmmap-vet
#   go vet -vettool=$(pwd)/bin/hpmmap-vet ./...
# HPMMAP_VET_TIMING_FILE makes every analyzer execution append a
# timing record; the summary (slowest analyzer first) covers exactly
# the package units the vet cache re-analyzed this run.
lint:
	$(GO) build -o bin/hpmmap-vet ./cmd/hpmmap-vet
	@rm -f bin/lint-timing.jsonl
	HPMMAP_VET_TIMING_FILE=$(abspath bin/lint-timing.jsonl) \
		$(GO) vet -vettool=$(abspath bin/hpmmap-vet) ./...
	@bin/hpmmap-vet -timing-summary bin/lint-timing.jsonl

# Fast lint for the edit loop: vet only the packages with .go changes
# in the working tree or the last commit. Deleted directories are
# skipped; falls back to "nothing to lint" when the diff is clean.
lint-fast:
	$(GO) build -o bin/hpmmap-vet ./cmd/hpmmap-vet
	@dirs=$$( { git diff --name-only HEAD -- '*.go'; \
	            git diff --name-only HEAD~1..HEAD -- '*.go' 2>/dev/null; } \
	          | xargs -r -n1 dirname | sort -u); \
	pkgs=""; \
	for d in $$dirs; do \
	  case "$$d" in vendor|vendor/*|*testdata*) continue;; esac; \
	  [ -d "$$d" ] && pkgs="$$pkgs ./$$d"; \
	done; \
	if [ -z "$$pkgs" ]; then echo "lint-fast: no changed Go packages"; exit 0; fi; \
	echo "lint-fast:$$pkgs"; \
	$(GO) vet -vettool=$(abspath bin/hpmmap-vet) $$pkgs

# //detsim:allow hygiene: list every directive in the tree with its
# reason, then fail on stale ones (directives that no longer suppress
# any finding) via the opt-in allowaudit analyzer. The analyzer flag
# deliberately busts the vet result cache, so the audit always
# re-analyzes the full tree.
lint-audit:
	$(GO) build -o bin/hpmmap-vet ./cmd/hpmmap-vet
	bin/hpmmap-vet -list-allows
	$(GO) vet -vettool=$(abspath bin/hpmmap-vet) -allowaudit.enable ./...

# Machine-readable findings: the unitchecker JSON finding stream
# (go vet -json prints it on stderr) and its SARIF 2.1.0 conversion
# for code-scanning UIs. CI uploads both as the lint-report artifact.
# go vet -json exits 0 even with findings — `make lint` is the gate,
# this is the report.
lint-report:
	$(GO) build -o bin/hpmmap-vet ./cmd/hpmmap-vet
	$(GO) vet -json -vettool=$(abspath bin/hpmmap-vet) ./... 2> lint-report.json
	bin/hpmmap-vet -sarif < lint-report.json > lint-report.sarif

# Performance gate (see DESIGN.md §10). Three layers:
#  1. allocation benchmarks for the no-op instrumentation path (must
#     report 0 B/op on BenchmarkUninstrumentedFault);
#  2. hot-path microbenchmarks of the touch/allocation cycle (demand
#     THP, HugeTLBfs, gated 4K backing, HPMMAP pool) with -benchmem so
#     per-op allocation creep is visible in the log;
#  3. the fork/exit lifecycle microbenchmark (DESIGN.md §11): the
#     pooled variant must beat the unpooled baseline (>= 2x ns/op and
#     0 B/op at steady state — pooled results are printed first);
#  4. the simulator-throughput record: cmd/hpmmap-perf runs a reduced
#     Fig. 7 grid bare / observed / series-sampled / ledgered, compares
#     cells/sec against the committed BENCH_6.json (read before it is
#     rewritten) and FAILS on a >10% regression, then refreshes the
#     record. Each run also appends its record to bench-history.jsonl
#     (gitignored), a run ledger queryable with
#     `go run ./cmd/hpmmap-ledger summary bench-history.jsonl`.
bench:
	$(GO) test -bench 'Fault' -benchmem ./internal/metrics/
	$(GO) test -run xxx -bench 'TouchDemand|TouchHugetlb|GatedAlloc' -benchmem ./internal/linuxmm/
	$(GO) test -run xxx -bench 'HPMMAPTouchRange' -benchmem ./internal/core/
	$(GO) test -run xxx -bench 'ForkExit' -benchmem ./internal/linuxmm/
	$(GO) run ./cmd/hpmmap-perf -out BENCH_6.json -baseline BENCH_6.json -regress-pct 10 \
		-ledger bench-history.jsonl \
		-cpuprofile bench-cpu.pprof -memprofile bench-mem.pprof

# Quick contention-storm study (see DESIGN.md §8): chaos intensity x
# manager with the invariant auditor attached, small scale for speed.
chaos:
	$(GO) run ./cmd/hpmmap-bench -study chaos -scale 0.25 -runs 2 -audit -v

# Quick datacenter churn study (see DESIGN.md §11): mixed-tenancy pod
# churn x chaos on one node, per-class tail latency + interference,
# with the CSV dropped into ./out for inspection.
datacenter:
	$(GO) run ./cmd/hpmmap-bench -study datacenter -scale 0.25 -audit -v -out out

# Overcommit x node-failure eviction study (DESIGN.md §12). Scale 0.1
# with -cores 2: at this scale the default 4-rank victim oversubscribes
# the HPMMAP zone budget.
eviction:
	$(GO) run ./cmd/hpmmap-bench -study eviction -scale 0.1 -cores 2 -audit -v -out out
