# Tier-1 verification for this repository. `make verify` is what CI
# runs: build everything, run every test, re-run the concurrency-bearing
# packages under the race detector, and vet. The observability contract
# (OBSERVABILITY.md rows <-> internal/metrics/names.go constants <->
# source-tree usage) is enforced by internal/metrics/contract_test.go,
# which `test` includes.

GO ?= go

.PHONY: verify build test race vet bench chaos

verify: build test race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./internal/runner/... ./internal/experiments/... ./internal/chaos/... ./internal/invariant/...

vet:
	$(GO) vet ./...

# Allocation benchmarks for the no-op instrumentation path (must report
# 0 B/op on BenchmarkUninstrumentedFault).
bench:
	$(GO) test -bench 'Fault' -benchmem ./internal/metrics/

# Quick contention-storm study (see DESIGN.md §8): chaos intensity x
# manager with the invariant auditor attached, small scale for speed.
chaos:
	$(GO) run ./cmd/hpmmap-bench -study chaos -scale 0.25 -runs 2 -audit -v
