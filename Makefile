# Tier-1 verification for this repository. `make verify` is what CI
# runs: build everything, run every test, re-run the whole tree under
# the race detector, vet, and run the detsim determinism linter
# (cmd/hpmmap-vet — see ANALYSIS.md). The observability contract
# (OBSERVABILITY.md rows <-> internal/metrics/names.go constants <->
# source-tree usage) is enforced by internal/metrics/contract_test.go,
# which `test` includes; its weakest leg (registration-site constants)
# is additionally enforced at lint time by the metricname analyzer.

GO ?= go

.PHONY: verify build test race vet lint bench chaos

verify: build test race vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# The detsim determinism-and-invariant analyzer suite (wallclock,
# randsource, maporder, panicsite, metricname), run through the go
# command's vet harness. Manual invocation:
#   go build -o bin/hpmmap-vet ./cmd/hpmmap-vet
#   go vet -vettool=$(pwd)/bin/hpmmap-vet ./...
lint:
	$(GO) build -o bin/hpmmap-vet ./cmd/hpmmap-vet
	$(GO) vet -vettool=$(abspath bin/hpmmap-vet) ./...

# Allocation benchmarks for the no-op instrumentation path (must report
# 0 B/op on BenchmarkUninstrumentedFault), plus the simulator-throughput
# record: cmd/hpmmap-perf runs a reduced Fig. 7 grid bare / observed /
# series-sampled and writes BENCH_5.json (wall-clock, cells/sec, sampler
# overhead % — budget <= 5%) to seed the performance trajectory.
bench:
	$(GO) test -bench 'Fault' -benchmem ./internal/metrics/
	$(GO) run ./cmd/hpmmap-perf -out BENCH_5.json

# Quick contention-storm study (see DESIGN.md §8): chaos intensity x
# manager with the invariant auditor attached, small scale for speed.
chaos:
	$(GO) run ./cmd/hpmmap-bench -study chaos -scale 0.25 -runs 2 -audit -v
