# Tier-1 verification for this repository. `make verify` is what CI
# runs: build everything, run every test, re-run the whole tree under
# the race detector, vet, and run the detsim determinism linter
# (cmd/hpmmap-vet — see ANALYSIS.md). The observability contract
# (OBSERVABILITY.md rows <-> internal/metrics/names.go constants <->
# source-tree usage) is enforced by internal/metrics/contract_test.go,
# which `test` includes; its weakest leg (registration-site constants)
# is additionally enforced at lint time by the metricname analyzer.

GO ?= go

.PHONY: verify build test race vet lint bench chaos datacenter eviction

verify: build test race vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# The detsim determinism-and-invariant analyzer suite (wallclock,
# randsource, maporder, panicsite, metricname), run through the go
# command's vet harness. Manual invocation:
#   go build -o bin/hpmmap-vet ./cmd/hpmmap-vet
#   go vet -vettool=$(pwd)/bin/hpmmap-vet ./...
lint:
	$(GO) build -o bin/hpmmap-vet ./cmd/hpmmap-vet
	$(GO) vet -vettool=$(abspath bin/hpmmap-vet) ./...

# Performance gate (see DESIGN.md §10). Three layers:
#  1. allocation benchmarks for the no-op instrumentation path (must
#     report 0 B/op on BenchmarkUninstrumentedFault);
#  2. hot-path microbenchmarks of the touch/allocation cycle (demand
#     THP, HugeTLBfs, gated 4K backing, HPMMAP pool) with -benchmem so
#     per-op allocation creep is visible in the log;
#  3. the fork/exit lifecycle microbenchmark (DESIGN.md §11): the
#     pooled variant must beat the unpooled baseline (>= 2x ns/op and
#     0 B/op at steady state — pooled results are printed first);
#  4. the simulator-throughput record: cmd/hpmmap-perf runs a reduced
#     Fig. 7 grid bare / observed / series-sampled, compares cells/sec
#     against the committed BENCH_6.json (read before it is rewritten)
#     and FAILS on a >10% regression, then refreshes the record.
bench:
	$(GO) test -bench 'Fault' -benchmem ./internal/metrics/
	$(GO) test -run xxx -bench 'TouchDemand|TouchHugetlb|GatedAlloc' -benchmem ./internal/linuxmm/
	$(GO) test -run xxx -bench 'HPMMAPTouchRange' -benchmem ./internal/core/
	$(GO) test -run xxx -bench 'ForkExit' -benchmem ./internal/linuxmm/
	$(GO) run ./cmd/hpmmap-perf -out BENCH_6.json -baseline BENCH_6.json -regress-pct 10 \
		-cpuprofile bench-cpu.pprof -memprofile bench-mem.pprof

# Quick contention-storm study (see DESIGN.md §8): chaos intensity x
# manager with the invariant auditor attached, small scale for speed.
chaos:
	$(GO) run ./cmd/hpmmap-bench -study chaos -scale 0.25 -runs 2 -audit -v

# Quick datacenter churn study (see DESIGN.md §11): mixed-tenancy pod
# churn x chaos on one node, per-class tail latency + interference,
# with the CSV dropped into ./out for inspection.
datacenter:
	$(GO) run ./cmd/hpmmap-bench -study datacenter -scale 0.25 -audit -v -out out

# Overcommit x node-failure eviction study (DESIGN.md §12). Scale 0.1
# with -cores 2: at this scale the default 4-rank victim oversubscribes
# the HPMMAP zone budget.
eviction:
	$(GO) run ./cmd/hpmmap-bench -study eviction -scale 0.1 -cores 2 -audit -v -out out
