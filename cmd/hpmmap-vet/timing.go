package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"golang.org/x/tools/go/analysis"
)

// Per-analyzer timing. Analyzer flags invalidate the go vet result
// cache but environment variables do not, so the timing hook is keyed
// off HPMMAP_VET_TIMING_FILE: setting it never forces a cold re-vet,
// and the summary therefore covers exactly the packages that were
// actually (re)analyzed in the run — cached packages cost no analyzer
// time and contribute no rows, which is the honest accounting.

// timingRecord is one analyzer execution on one package unit,
// appended as a JSON line to the timing file.
type timingRecord struct {
	Analyzer string `json:"analyzer"`
	Pkg      string `json:"pkg"`
	Ns       int64  `json:"ns"`
}

// wrapTiming wraps every analyzer's Run to append a timingRecord per
// execution. unitchecker runs analyzers concurrently within a
// process, and go vet runs one process per package unit — the mutex
// orders writers in-process, O_APPEND orders them across processes.
func wrapTiming(azs []*analysis.Analyzer, path string) {
	var mu sync.Mutex
	for _, a := range azs {
		a := a
		orig := a.Run
		a.Run = func(pass *analysis.Pass) (interface{}, error) {
			start := time.Now()
			res, err := orig(pass)
			rec := timingRecord{Analyzer: a.Name, Pkg: pass.Pkg.Path(), Ns: time.Since(start).Nanoseconds()}
			line, merr := json.Marshal(rec)
			if merr == nil {
				mu.Lock()
				if f, ferr := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); ferr == nil {
					fmt.Fprintf(f, "%s\n", line)
					f.Close()
				}
				mu.Unlock()
			}
			return res, err
		}
	}
}

// timingSummaryMain aggregates a timing file into a per-analyzer
// table, slowest first — the tail of `make lint`.
func timingSummaryMain(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "hpmmap-vet -timing-summary: usage: hpmmap-vet -timing-summary <timing-file>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		// A missing file means every package unit was served from the
		// vet result cache: nothing ran, nothing to report.
		fmt.Printf("lint timing: no analyzer executions recorded (all package units cached)\n")
		return 0
	}
	defer f.Close()

	type agg struct {
		ns   int64
		pkgs int
	}
	byAnalyzer := make(map[string]*agg)
	var total int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var rec timingRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn line from a crashed unit; skip
		}
		a := byAnalyzer[rec.Analyzer]
		if a == nil {
			a = &agg{}
			byAnalyzer[rec.Analyzer] = a
		}
		a.ns += rec.Ns
		a.pkgs++
		total += rec.Ns
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "hpmmap-vet -timing-summary: %v\n", err)
		return 2
	}
	if len(byAnalyzer) == 0 {
		fmt.Printf("lint timing: no analyzer executions recorded (all package units cached)\n")
		return 0
	}

	names := make([]string, 0, len(byAnalyzer))
	for name := range byAnalyzer {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if byAnalyzer[names[i]].ns != byAnalyzer[names[j]].ns {
			return byAnalyzer[names[i]].ns > byAnalyzer[names[j]].ns
		}
		return names[i] < names[j]
	})
	fmt.Printf("lint timing (analyzer time on re-vetted package units; cached units excluded):\n")
	for _, name := range names {
		a := byAnalyzer[name]
		fmt.Printf("  %-12s %12v  %4d unit(s)\n", name, time.Duration(a.ns).Round(time.Microsecond), a.pkgs)
	}
	fmt.Printf("  %-12s %12v\n", "total", time.Duration(total).Round(time.Microsecond))
	return 0
}
