package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// listAllowsMain prints every //detsim:allow directive in the tree as
// "file:line: reason", one per line, in lexical walk order — the
// inventory half of `make lint-audit` (the stale-vs-live verdict comes
// from `go vet -allowaudit.enable`). Directives in _test.go files,
// vendor/, testdata/, and tool output directories are skipped: the
// analyzers never read them, so they are decoration, not suppression.
func listAllowsMain(args []string) int {
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	count := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git", "bin", "out":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		n, err := printFileAllows(path)
		count += n
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpmmap-vet -list-allows: %v\n", err)
		return 2
	}
	fmt.Printf("%d //detsim:allow directive(s)\n", count)
	return 0
}

const allowMarker = "//detsim:allow"

func printFileAllows(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	count := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		i := strings.Index(text, allowMarker)
		if i < 0 {
			continue
		}
		rest := text[i+len(allowMarker):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // "//detsim:allowother" is not the directive
		}
		reason := strings.TrimSpace(rest)
		if reason == "" {
			reason = "(MISSING REASON — the suite reports this as a finding)"
		}
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(path), line, reason)
		count++
	}
	return count, sc.Err()
}
