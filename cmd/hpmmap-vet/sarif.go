package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hpmmap/internal/analysis"
)

// sarifMain converts a `go vet -json` stream (a concatenation of
// unitchecker JSON trees, one object per package unit) on stdin — or
// from a file argument — to SARIF 2.1.0 on stdout. Rules are derived
// from the analyzer suite's Doc strings, results are sorted by
// (file, line, column, rule) so the report is byte-stable for a given
// finding set, and file URIs are made repo-relative when possible.
func sarifMain(args []string) int {
	in := io.Reader(os.Stdin)
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpmmap-vet -sarif: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	results, err := collectJSONFindings(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpmmap-vet -sarif: %v\n", err)
		return 2
	}
	report := buildSarif(results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "hpmmap-vet -sarif: %v\n", err)
		return 2
	}
	return 0
}

// jsonDiagnostic mirrors the unitchecker/analysisflags JSONDiagnostic
// schema (the subset SARIF needs).
type jsonDiagnostic struct {
	Category string `json:"category"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

// sarifResult is one finding, position-resolved.
type sarifResult struct {
	rule    string
	file    string
	line    int
	col     int
	message string
}

// collectJSONFindings decodes the stream of per-package JSON trees
// (package ID -> analyzer -> []diagnostic | {"error": ...}) and
// flattens the diagnostics. The go command prints the trees on stderr
// prefixed with "# <package>" comment lines — those are stripped
// before decoding. Analyzer error values are skipped: the vet run
// itself surfaces them.
func collectJSONFindings(in io.Reader) ([]sarifResult, error) {
	raw, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	var filtered []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		filtered = append(filtered, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(filtered, "\n")))
	var out []sarifResult
	for {
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding vet -json stream: %w", err)
		}
		for _, byAnalyzer := range tree {
			for name, raw := range byAnalyzer {
				var diags []jsonDiagnostic
				if err := json.Unmarshal(raw, &diags); err != nil {
					continue // {"error": ...} or other non-diagnostic shape
				}
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					out = append(out, sarifResult{
						rule:    name,
						file:    relativize(file),
						line:    line,
						col:     col,
						message: d.Message,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.rule < b.rule
	})
	return out, nil
}

// splitPosn parses "file.go:line:col" (the trailing two fields are
// optional in principle; missing fields default to 1).
func splitPosn(posn string) (file string, line, col int) {
	line, col = 1, 1
	rest := posn
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			col = n
			rest = rest[:i]
		}
	}
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			line = n
			rest = rest[:i]
		}
	}
	return rest, line, col
}

// relativize rewrites an absolute path under the working directory as
// a repo-relative URI; anything else passes through.
func relativize(path string) string {
	wd, err := os.Getwd()
	if err != nil || !filepath.IsAbs(path) {
		return filepath.ToSlash(path)
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// buildSarif assembles the minimal SARIF 2.1.0 document code-scanning
// UIs consume: one run, one driver, one rule per detsim analyzer, one
// result per finding.
func buildSarif(results []sarifResult) map[string]interface{} {
	var rules []map[string]interface{}
	for _, a := range analysis.Analyzers() {
		short := a.Doc
		if i := strings.IndexByte(short, '\n'); i >= 0 {
			short = short[:i]
		}
		rules = append(rules, map[string]interface{}{
			"id":               a.Name,
			"shortDescription": map[string]interface{}{"text": short},
			"fullDescription":  map[string]interface{}{"text": a.Doc},
			"helpUri":          "https://github.com/hpmmap/hpmmap/blob/main/ANALYSIS.md",
		})
	}
	sarifResults := make([]map[string]interface{}, 0, len(results))
	for _, r := range results {
		sarifResults = append(sarifResults, map[string]interface{}{
			"ruleId": r.rule,
			"level":  "error",
			"message": map[string]interface{}{
				"text": r.message,
			},
			"locations": []map[string]interface{}{{
				"physicalLocation": map[string]interface{}{
					"artifactLocation": map[string]interface{}{"uri": r.file},
					"region": map[string]interface{}{
						"startLine":   r.line,
						"startColumn": r.col,
					},
				},
			}},
		})
	}
	return map[string]interface{}{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]interface{}{{
			"tool": map[string]interface{}{
				"driver": map[string]interface{}{
					"name":           "hpmmap-vet",
					"informationUri": "https://github.com/hpmmap/hpmmap/blob/main/ANALYSIS.md",
					"rules":          rules,
				},
			},
			"results": sarifResults,
		}},
	}
}
