// Command hpmmap-vet is the detsim determinism-and-invariant linter: a
// go/analysis unitchecker bundling the five analyzers in
// internal/analysis (wallclock, randsource, maporder, panicsite,
// metricname). It is driven by the go command's vet harness, which
// supplies type information per package:
//
//	go build -o bin/hpmmap-vet ./cmd/hpmmap-vet
//	go vet -vettool=$(pwd)/bin/hpmmap-vet ./...
//
// or simply `make lint` (part of `make verify`). A finding can be
// suppressed with a `//detsim:allow <reason>` comment on the flagged
// line or the line above it; the reason is mandatory. See ANALYSIS.md
// for the rules each analyzer enforces and why.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"hpmmap/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.Analyzers()...)
}
