// Command hpmmap-vet is the detsim determinism-and-invariant linter: a
// go/analysis unitchecker bundling the analyzers in internal/analysis
// (wallclock, randsource, maporder, panicsite, metricname,
// streamcarve, poolescape, hotpath, and the opt-in allowaudit). It is
// driven by the go command's vet harness, which supplies type
// information per package:
//
//	go build -o bin/hpmmap-vet ./cmd/hpmmap-vet
//	go vet -vettool=$(pwd)/bin/hpmmap-vet ./...
//
// or simply `make lint` (part of `make verify`). Passing -json to go
// vet emits the unitchecker JSON finding tree per package; stale
// //detsim:allow sweeps run with -allowaudit.enable (`make
// lint-audit`).
//
// Besides the unitchecker protocol, three standalone modes (first
// argument) support the Makefile lint targets:
//
//	hpmmap-vet -sarif             convert a `go vet -json` stream on
//	                              stdin to SARIF 2.1.0 on stdout
//	hpmmap-vet -list-allows       list every //detsim:allow directive
//	                              in the tree with file:line and reason
//	hpmmap-vet -timing-summary F  aggregate the per-analyzer timing log
//	                              written when HPMMAP_VET_TIMING_FILE
//	                              is set (see `make lint`)
//
// A finding can be suppressed with a `//detsim:allow <reason>` comment
// on the flagged line or the line above it; the reason is mandatory.
// See ANALYSIS.md for the rules each analyzer enforces and why.
package main

import (
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"hpmmap/internal/analysis"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-sarif", "--sarif":
			os.Exit(sarifMain(os.Args[2:]))
		case "-list-allows", "--list-allows":
			os.Exit(listAllowsMain(os.Args[2:]))
		case "-timing-summary", "--timing-summary":
			os.Exit(timingSummaryMain(os.Args[2:]))
		}
	}
	azs := analysis.Analyzers()
	if path := os.Getenv("HPMMAP_VET_TIMING_FILE"); path != "" {
		wrapTiming(azs, path)
	}
	unitchecker.Main(azs...)
}
