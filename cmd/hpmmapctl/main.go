// Command hpmmapctl demonstrates the HPMMAP control flow of the paper's
// Figure 6: install the module (offlining memory), register and launch an
// HPC process through the user-level tool, show that its memory system
// calls are interposed and take no faults while an unregistered commodity
// process demand-pages through Linux, then tear everything down and
// unload the module.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpmmap/internal/core"
	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/thp"
	"hpmmap/internal/vma"
)

func main() {
	offlineGB := flag.Uint64("offline", 12, "GB of memory to offline for HPMMAP")
	mapGB := flag.Uint64("map", 2, "GB the demo HPC process maps")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(*seed))
	mm := linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
	node.SetDefaultMM(mm)
	thp.Start(node, mm)

	step := func(format string, args ...any) { fmt.Printf("==> "+format+"\n", args...) }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "hpmmapctl:", err)
		os.Exit(1)
	}

	step("node booted: %d cores, %dGB RAM, manager %s",
		node.NumCores(), node.Config().MemoryBytes>>30, node.DefaultMM().Name())

	step("insmod hpmmap.ko offline=%dG", *offlineGB)
	hp, err := core.Install(node, *offlineGB<<30)
	if err != nil {
		fail(err)
	}
	fmt.Printf("    offlined %dGB in >=128MB sections; Linux now manages %dGB\n",
		hp.PoolTotalBytes()>>30, node.Mem.TotalPages()*4096>>30)

	step("hpmmap_launch ./hpc-app   (registers the PID, then execs)")
	hpc, err := hp.Launch("hpc-app", 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("    pid %d registered: %v; syscalls routed to %q\n",
		hpc.PID, hp.Registered(hpc.PID), node.ManagerNameFor(hpc))

	step("./commodity-app           (ordinary exec, not registered)")
	com, err := node.NewProcess("commodity-app", true, 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("    pid %d registered: %v; syscalls routed to %q\n",
		com.PID, hp.Registered(com.PID), node.ManagerNameFor(com))

	prot := pgtable.ProtRead | pgtable.ProtWrite
	step("hpc-app: mmap(%dGB) — on-request allocation", *mapGB)
	addr, cost, err := node.Mmap(hpc, *mapGB<<30, prot, vma.KindAnon)
	if err != nil {
		fail(err)
	}
	fmt.Printf("    backed eagerly with 2MB pages in %.1f ms of simulated time\n",
		node.Config().Seconds(float64(cost))*1e3)
	st, err := node.TouchRange(hpc, addr, *mapGB<<30)
	if err != nil {
		fail(err)
	}
	fmt.Printf("    first touch of all %dGB: %d page faults\n", *mapGB, st.TotalFaults())

	step("commodity-app: mmap(256MB) + touch — Linux demand paging")
	caddr, _, err := node.Mmap(com, 256<<20, prot, vma.KindAnon)
	if err != nil {
		fail(err)
	}
	cst, err := node.TouchRange(com, caddr, 256<<20)
	if err != nil {
		fail(err)
	}
	fmt.Printf("    first touch of 256MB: %d page faults (%d large, %d small)\n",
		cst.TotalFaults(), cst.Faults[1], cst.Faults[0])

	step("hpc-app exits — registry entry removed, pool memory returned")
	node.Exit(hpc)
	fmt.Printf("    pid %d registered: %v; pool free: %dGB of %dGB\n",
		hpc.PID, hp.Registered(hpc.PID), hp.PoolFreeBytes()>>30, hp.PoolTotalBytes()>>30)

	step("rmmod hpmmap")
	node.Exit(com)
	if err := hp.Uninstall(); err != nil {
		fail(err)
	}
	fmt.Printf("    interposition removed; all processes route to %q again\n",
		node.DefaultMM().Name())
}
