// Command hpmmap-report runs the paper's full evaluation and emits a
// markdown report in the structure of EXPERIMENTS.md: fault-cost tables
// with paper-versus-measured columns, runtime tables for the scaling
// studies, and the headline improvement summaries. Use -scale to trade
// fidelity for time, -workers to parallelize the sweeps, and -cache-dir
// to regenerate the report without re-simulating unchanged cells (cache
// entries are keyed by experiment/cell/seed/scale/model-version, so a
// simulator change invalidates them automatically).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hpmmap/internal/experiments"
	"hpmmap/internal/fault"
	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
)

// The paper's published numbers, for the side-by-side columns.
var paperFig2 = map[string][2][3]float64{
	// kind -> [unloaded, loaded] x [count, avg, stdev]
	"small": {{136004, 1768, 993}, {135987, 2206, 1444}},
	"large": {{1060, 367675, 65663}, {1060, 757598, 61439}},
	"merge": {{30, 1005412, 503422}, {45, 3360292, 4017001}},
}

var paperFig3 = map[string][2][3]float64{
	"hugetlb-small": {{1310, 1350, 1683}, {1777, 475724, 16387888}},
	"hugetlb-large": {{84, 735384, 458239}, {75, 615162, 225726}},
}

func main() {
	scale := flag.Float64("scale", 1.0, "problem/memory scale")
	runs := flag.Int("runs", 0, "runs per cell (0 = paper's 10)")
	seed := flag.Uint64("seed", 0, "base seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "cancel the report generation after this long (0 = none)")
	cacheDir := flag.String("cache-dir", "", "reuse cached per-cell results from this directory")
	verbose := flag.Bool("v", false, "per-cell progress with ETA on stderr")
	skipFig7 := flag.Bool("skip-fig7", false, "skip the single-node sweep")
	skipFig8 := flag.Bool("skip-fig8", false, "skip the cluster sweep")
	metricsOut := flag.String("metrics", "", `write the report's merged metric snapshot to this file ("-" = stderr-free stdout is taken by the report, so "-" is rejected; .json = JSON, .prom = OpenMetrics, else text)`)
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON per section (name spliced in: trace.json -> trace-fig2.json)")
	seriesOut := flag.String("series", "", "write per-cell time-series samples as CSV per section (name spliced in: series.csv -> series-fig7.csv); sampling bypasses the result cache")
	ledgerOut := flag.String("ledger", "", "append a JSONL run ledger of every section's plan to this file; inspect with hpmmap-ledger")
	flag.Parse()
	if *metricsOut == "-" {
		fmt.Fprintln(os.Stderr, "hpmmap-report: -metrics - is unsupported (stdout carries the report); use a file path")
		os.Exit(2)
	}
	sc := experiments.Scale(*scale)

	// SIGINT/SIGTERM cancels the sweeps; completed sections still flush
	// their partial -metrics artifact before the process exits non-zero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var cache *runner.Cache
	if *cacheDir != "" {
		var err error
		cache, err = runner.NewCache(*cacheDir, experiments.ModelVersion)
		must(err)
	}
	progress := func(string) {}
	if *verbose {
		progress = func(msg string) { fmt.Fprintf(os.Stderr, "%s\n", msg) }
	}

	fmt.Printf("# HPMMAP reproduction report\n\nGenerated %s at scale %.2f.\n\n",
		time.Now().Format("2006-01-02 15:04"), *scale)

	section := func(title string) { fmt.Printf("\n## %s\n\n", title) }

	// Per-section observability collectors: one per experiment so cell
	// indexes (trace pids) never collide. Metrics merge into one file at
	// the end; traces are written per section.
	var led *ledger.Ledger
	if *ledgerOut != "" {
		var err error
		led, err = ledger.Open(*ledgerOut, ledger.Meta{
			Model: experiments.ModelVersion,
			Scale: *scale,
			Flags: map[string]string{"exp": "report"},
		})
		must(err)
	}
	closeLedger := func() {
		if led == nil {
			return
		}
		if cache != nil {
			led.CacheCorrupt(cache.CorruptCount())
		}
		if err := led.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hpmmap-report: ledger: %v\n", err)
		}
		led = nil
	}

	observing := *metricsOut != "" || *traceOut != "" || *seriesOut != "" || led != nil
	var obsSnaps []metrics.Snapshot
	obsFor := func(name string) *runner.Observations {
		if !observing {
			return nil
		}
		obs := runner.NewObservations(0)
		if *seriesOut != "" {
			obs.EnableSeries()
		}
		obs.SetLedger(led)
		return obs
	}
	// splice turns artifact.ext into artifact-name.ext for per-section files.
	splice := func(base, name string) string {
		ext := filepath.Ext(base)
		return strings.TrimSuffix(base, ext) + "-" + name + ext
	}
	collect := func(name string, obs *runner.Observations) {
		if obs == nil {
			return
		}
		obsSnaps = append(obsSnaps, obs.Merged())
		if *traceOut != "" {
			f, err := os.Create(splice(*traceOut, name))
			must(err)
			must(obs.WriteTrace(f))
			must(f.Close())
		}
		if *seriesOut != "" {
			f, err := os.Create(splice(*seriesOut, name))
			must(err)
			must(obs.WriteSeriesCSV(f))
			must(f.Close())
		}
	}

	// writeMergedMetrics flushes whatever sections completed so far; on a
	// cancelled or failed run the partial artifact is still written.
	writeMergedMetrics := func() error {
		if *metricsOut == "" || len(obsSnaps) == 0 {
			return nil
		}
		merged := metrics.Merge(obsSnaps...)
		write := merged.WriteText
		switch {
		case strings.HasSuffix(*metricsOut, ".json"):
			write = merged.WriteJSON
		case strings.HasSuffix(*metricsOut, ".prom"):
			write = merged.WriteOpenMetrics
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	// fail aborts the report but flushes partial observability artifacts
	// first (the interruption satellite: ^C mid-report keeps the metrics
	// of every section that finished).
	fail := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		if ferr := writeMergedMetrics(); ferr != nil {
			fmt.Fprintf(os.Stderr, "hpmmap-report: flushing partial metrics: %v\n", ferr)
		}
		closeLedger()
		os.Exit(1)
	}

	study := experiments.FaultStudyOptions{
		Seed: *seed, Scale: sc,
		Workers: *workers, Context: ctx, Progress: progress,
	}

	section("Figure 2 — THP fault costs (miniMD)")
	s2 := study
	obs := obsFor("fig2")
	s2.Obs = obs
	fs, err := experiments.Fig2(s2)
	fail(err)
	faultTable(fs, paperFig2)
	collect("fig2", obs)

	section("Figure 3 — HugeTLBfs fault costs (miniMD)")
	s3 := study
	obs = obsFor("fig3")
	s3.Obs = obs
	fs, err = experiments.Fig3(s3)
	fail(err)
	faultTable(fs, paperFig3)
	collect("fig3", obs)

	if !*skipFig7 {
		section("Figure 7 — single-node weak scaling")
		obs = obsFor("fig7")
		panels, err := experiments.Fig7(experiments.Fig7Options{
			Runs: *runs, Seed: *seed, Scale: sc,
			Workers: *workers, Context: ctx, Cache: cache, Progress: progress,
			Obs: obs,
		})
		fail(err)
		experiments.WriteFig7(os.Stdout, panels)
		collect("fig7", obs)
	}
	if !*skipFig8 {
		section("Figure 8 — 8-node scaling study")
		obs = obsFor("fig8")
		panels, err := experiments.Fig8(experiments.Fig8Options{
			Runs: *runs, Seed: *seed, Scale: sc,
			Workers: *workers, Context: ctx, Cache: cache, Progress: progress,
			Obs: obs,
		})
		fail(err)
		experiments.WriteFig8(os.Stdout, panels)
		collect("fig8", obs)
	}

	section("BSP noise amplification (supplementary)")
	points, err := experiments.NoiseStudy(experiments.NoiseStudyOptions{
		Seed: *seed, Scale: sc,
		Workers: *workers, Context: ctx, Progress: progress,
	})
	fail(err)
	fmt.Println("```")
	fmt.Print(experiments.WriteNoiseStudy(points))
	fmt.Println("```")

	section("Barrier noise attribution (supplementary)")
	obs = obsFor("attribution")
	cells, err := experiments.RunAttributionStudy(experiments.AttributionStudyOptions{
		Seed: *seed, Scale: sc,
		Workers: *workers, Context: ctx, Progress: progress,
		Obs: obs,
	})
	fail(err)
	fmt.Println("```")
	must(experiments.WriteAttributionStudy(os.Stdout, cells))
	fmt.Println("```")
	collect("attribution", obs)

	must(writeMergedMetrics())
	closeLedger()
}

func faultTable(fs experiments.FaultStudy, paper map[string][2][3]float64) {
	fmt.Println("| Load | Fault | Paper count | Paper avg | Paper stdev | Measured count | Measured avg | Measured stdev |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for i, row := range fs.Rows {
		load := "No"
		if row.Loaded {
			load = "Yes"
		}
		for _, s := range row.Summaries {
			name := s.Kind.String()
			p, ok := paper[name]
			pc := [3]float64{}
			if ok {
				pc = p[i]
			}
			fmt.Printf("| %s | %s | %.0f | %.0f | %.0f | %d | %.0f | %.0f |\n",
				load, name, pc[0], pc[1], pc[2], s.Count, s.AvgCycles, s.StdevCycles)
		}
	}
	// Keep the compiler honest about the fault import (kind names).
	_ = fault.KindSmall
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
