// Command hpmmap-probe runs one experiment cell and dumps internal
// diagnostics (residency mix, fault breakdown, manager counters) — a
// calibration and debugging aid. The observability flags attach the
// same instrumentation the figure pipelines use: -metrics snapshots the
// cell's registry, -trace-out writes a Chrome trace, -series samples
// the memory-state time series.
//
// A SIGINT/SIGTERM cancels the cell: whatever it observed up to the
// cancellation point is flushed to the -metrics/-trace-out/-series
// artifacts and the process exits non-zero (the hpmmap-bench contract).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hpmmap/internal/experiments"
	"hpmmap/internal/fault"
	"hpmmap/internal/metrics"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

func main() {
	bench := flag.String("bench", "HPCCG", "benchmark")
	kind := flag.Int("kind", 0, "0=THP 1=HugeTLBfs 2=HPMMAP")
	prof := flag.Int("profile", 1, "0=none 1=A 2=B")
	ranks := flag.Int("ranks", 8, "ranks")
	seed := flag.Uint64("seed", 1, "seed")
	metricsOut := flag.String("metrics", "", `write the cell's metric snapshot to this file ("-" = stdout; .json = JSON, else text)`)
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON for the cell to this file")
	seriesOut := flag.String("series", "", "write the cell's time-series samples as CSV to this file")
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintln(os.Stderr, "bad bench")
		os.Exit(1)
	}
	var reg *metrics.Registry
	var tracer *metrics.ChromeTracer
	var series *timeline.Series
	if *metricsOut != "" || *traceOut != "" || *seriesOut != "" {
		reg = metrics.NewRegistry()
		tracer = metrics.NewChromeTracer(0)
		if *seriesOut != "" {
			series = timeline.NewSeries()
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out, err := experiments.ExecuteSingleNode(experiments.SingleRun{
		Bench:   spec,
		Kind:    experiments.ManagerKind(*kind),
		Profile: experiments.Profile(*prof),
		Ranks:   *ranks,
		Seed:    *seed,
		Metrics: reg,
		Tracer:  tracer,
		Series:  series,
		Context: ctx,
	})
	if err != nil {
		// Interrupted or failed: flush the partial artifacts first.
		writeArtifacts(reg, tracer, series, *metricsOut, *traceOut, *seriesOut)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("runtime: %.2f s\n", out.RuntimeSec)
	fmt.Printf("compactions=%d storms=%d stormsHPC=%d merges=%d meanPressure=%.2f\n",
		out.Compactions, out.ReclaimStorms, out.StormsHPC, out.Merges, out.MeanPressure)
	for i, rr := range out.Result.Ranks {
		fmt.Printf("rank %d: runtime=%.2fs faults:", i, 2.2e-9*0+float64(rr.Runtime)/2.2e9)
		for k := 0; k < fault.NumKinds; k++ {
			if rr.Faults.Faults[k] > 0 {
				fmt.Printf(" %s=%d(%.2fs)", fault.Kind(k), rr.Faults.Faults[k], float64(rr.Faults.Cycles[k])/2.2e9)
			}
		}
		fmt.Printf(" stalls=%d\n", rr.Faults.Stalls)
		if i >= 1 {
			break
		}
	}

	writeArtifacts(reg, tracer, series, *metricsOut, *traceOut, *seriesOut)
}

// writeArtifacts flushes the cell's observability outputs. Also called
// on the error path, so an interrupted probe still leaves partial
// artifacts behind. No-op per artifact whose flag was empty.
func writeArtifacts(reg *metrics.Registry, tracer *metrics.ChromeTracer, series *timeline.Series, metricsOut, traceOut, seriesOut string) {
	emit := func(path string, write func(*os.File) error) {
		if path == "" {
			return
		}
		if path == "-" {
			must(write(os.Stdout))
			return
		}
		f, err := os.Create(path)
		must(err)
		must(write(f))
		must(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if reg != nil {
		emit(metricsOut, func(f *os.File) error {
			snap := reg.Snapshot()
			if strings.HasSuffix(metricsOut, ".json") {
				return snap.WriteJSON(f)
			}
			return snap.WriteText(f)
		})
	}
	if tracer != nil {
		emit(traceOut, func(f *os.File) error { return metrics.WriteChromeTrace(f, tracer) })
	}
	if series != nil {
		emit(seriesOut, func(f *os.File) error {
			if _, err := fmt.Fprintln(f, timeline.SeriesCSVHeader); err != nil {
				return err
			}
			return series.WriteCSV(f, "probe")
		})
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
