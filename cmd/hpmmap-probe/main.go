// Command hpmmap-probe runs one experiment cell and dumps internal
// diagnostics (residency mix, fault breakdown, manager counters) — a
// calibration and debugging aid.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpmmap/internal/experiments"
	"hpmmap/internal/fault"
	"hpmmap/internal/workload"
)

func main() {
	bench := flag.String("bench", "HPCCG", "benchmark")
	kind := flag.Int("kind", 0, "0=THP 1=HugeTLBfs 2=HPMMAP")
	prof := flag.Int("profile", 1, "0=none 1=A 2=B")
	ranks := flag.Int("ranks", 8, "ranks")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintln(os.Stderr, "bad bench")
		os.Exit(1)
	}
	out, err := experiments.ExecuteSingleNode(experiments.SingleRun{
		Bench:   spec,
		Kind:    experiments.ManagerKind(*kind),
		Profile: experiments.Profile(*prof),
		Ranks:   *ranks,
		Seed:    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("runtime: %.2f s\n", out.RuntimeSec)
	fmt.Printf("compactions=%d storms=%d stormsHPC=%d merges=%d meanPressure=%.2f\n",
		out.Compactions, out.ReclaimStorms, out.StormsHPC, out.Merges, out.MeanPressure)
	for i, rr := range out.Result.Ranks {
		fmt.Printf("rank %d: runtime=%.2fs faults:", i, 2.2e-9*0+float64(rr.Runtime)/2.2e9)
		for k := 0; k < fault.NumKinds; k++ {
			if rr.Faults.Faults[k] > 0 {
				fmt.Printf(" %s=%d(%.2fs)", fault.Kind(k), rr.Faults.Faults[k], float64(rr.Faults.Cycles[k])/2.2e9)
			}
		}
		fmt.Printf(" stalls=%d\n", rr.Faults.Stalls)
		if i >= 1 {
			break
		}
	}
}
