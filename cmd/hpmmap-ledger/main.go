// Command hpmmap-ledger is the cross-run observability tool over run
// ledgers (internal/ledger JSONL journals) and metrics snapshots:
//
//	hpmmap-ledger summary run.jsonl
//	    Per-plan rollup: cell outcomes, retry/timeout/cache traffic,
//	    host wall/alloc totals, and the straggler-cell table.
//
//	hpmmap-ledger diff [-regress-pct P] old new
//	    Cross-run deltas with a regression gate (exit 1 when tripped).
//	    Two ledgers (.jsonl): canonical status regressions always trip;
//	    a bench cells/sec drop beyond -regress-pct trips; host wall
//	    deltas are report-only. Two snapshots (.prom via OpenMetrics,
//	    .json via WriteJSON): any per-metric change beyond -regress-pct,
//	    or a metric appearing/disappearing, trips — two runs of the
//	    same deterministic workload must match exactly, so any delta is
//	    model drift.
//
//	hpmmap-ledger watch run.jsonl
//	    tail -f–style live follow of a grid in flight.
//
// Exit codes: 0 clean, 1 regression gate tripped, 2 usage or I/O
// error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	tripped := false
	switch os.Args[1] {
	case "summary":
		fs := flag.NewFlagSet("summary", flag.ExitOnError)
		stragglers := fs.Int("stragglers", 5, "slowest cells to list per plan")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: hpmmap-ledger summary [-stragglers N] <run.jsonl>")
			os.Exit(2)
		}
		err = summary(os.Stdout, fs.Arg(0), *stragglers)
	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		pct := fs.Float64("regress-pct", 10, "regression gate threshold, percent")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: hpmmap-ledger diff [-regress-pct P] <old> <new>")
			os.Exit(2)
		}
		tripped, err = diffFiles(os.Stdout, fs.Arg(0), fs.Arg(1), *pct)
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		poll := fs.Duration("poll", 500*time.Millisecond, "poll interval")
		once := fs.Bool("once", false, "print current contents and exit instead of following")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: hpmmap-ledger watch [-poll D] [-once] <run.jsonl>")
			os.Exit(2)
		}
		err = watch(os.Stdout, fs.Arg(0), *poll, *once)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmmap-ledger:", err)
		os.Exit(2)
	}
	if tripped {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hpmmap-ledger <command> [flags] <args>

commands:
  summary <run.jsonl>                      per-plan rollup + straggler table
  diff [-regress-pct P] <old> <new>        cross-run deltas, exit 1 on regression
  watch [-poll D] [-once] <run.jsonl>      tail -f-style live follow`)
}

// planStats is one plan's rollup, folded from its record span.
type planStats struct {
	name                    string
	model                   string
	scale                   float64
	cells                   int
	workers                 int
	ok, quarantined, failed int
	retries, timeouts       int
	cacheHits, cacheMisses  int
	wallUS                  int64
	allocBytes              uint64
	labels                  map[int]string
	cellWallUS              map[int]int64
	cellStatus              map[int]string
}

// fold groups records into per-plan rollups, in manifest order.
// Records before the first manifest (there are none in well-formed
// ledgers) are ignored. Returns the plans plus ledger-wide extras:
// cache-corrupt tally and bench records.
func fold(recs []ledger.Record) (plans []*planStats, corrupt uint64, benches []json.RawMessage) {
	var cur *planStats
	for _, r := range recs {
		switch r.T {
		case ledger.TypeManifest:
			cur = &planStats{
				name: r.Plan, model: r.Model, scale: r.Scale, cells: r.Cells,
				labels:     make(map[int]string),
				cellWallUS: make(map[int]int64),
				cellStatus: make(map[int]string),
			}
			plans = append(plans, cur)
		case ledger.TypeCacheCorrupt:
			corrupt += r.Count
		case ledger.TypeBench:
			benches = append(benches, r.Bench)
		}
		if cur == nil {
			continue
		}
		switch r.T {
		case ledger.TypeHostManifest:
			cur.workers = r.Workers
		case ledger.TypeCellStart:
			cur.labels[r.I] = r.Label
		case ledger.TypeCellFinish:
			cur.cellStatus[r.I] = r.Status
		case ledger.TypePlanEnd:
			cur.ok, cur.quarantined, cur.failed = r.OK, r.Quarantined, r.Failed
		case ledger.TypeCellHost:
			cur.cellWallUS[r.I] = r.WallUS
			cur.wallUS += r.WallUS
			cur.allocBytes += r.AllocBytes
		case ledger.TypeCellRetry:
			cur.retries++
		case ledger.TypeCellTimeout:
			cur.timeouts++
		case ledger.TypeCacheHit:
			cur.cacheHits++
		case ledger.TypeCacheMiss:
			cur.cacheMisses++
		}
	}
	return plans, corrupt, benches
}

func summary(w io.Writer, path string, stragglers int) error {
	recs, err := ledger.ReadFile(path)
	if err != nil {
		return err
	}
	plans, corrupt, benches := fold(recs)
	if len(plans) == 0 && len(benches) == 0 {
		fmt.Fprintln(w, "no plans journaled")
		return nil
	}
	for _, p := range plans {
		fmt.Fprintf(w, "plan %s: %d cells (%d ok, %d quarantined, %d failed)",
			p.name, p.cells, p.ok, p.quarantined, p.failed)
		if p.model != "" {
			fmt.Fprintf(w, ", model %s", p.model)
		}
		if p.scale != 0 {
			fmt.Fprintf(w, ", scale %g", p.scale)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  retries %d, timeouts %d, cache %d hits / %d misses\n",
			p.retries, p.timeouts, p.cacheHits, p.cacheMisses)
		if p.wallUS > 0 {
			fmt.Fprintf(w, "  host: workers %d, wall %s, alloc %s\n",
				p.workers, (time.Duration(p.wallUS) * time.Microsecond).Round(time.Millisecond),
				formatBytes(p.allocBytes))
		}
		// Straggler table: the cells that dominated the host wall clock.
		type cw struct {
			i  int
			us int64
		}
		var cells []cw
		for i, us := range p.cellWallUS {
			cells = append(cells, cw{i, us})
		}
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].us != cells[b].us {
				return cells[a].us > cells[b].us
			}
			return cells[a].i < cells[b].i
		})
		if len(cells) > stragglers {
			cells = cells[:stragglers]
		}
		if len(cells) > 0 {
			fmt.Fprintln(w, "  slowest cells:")
			for _, c := range cells {
				label := p.labels[c.i]
				status := p.cellStatus[c.i]
				marker := ""
				if status != "" && status != ledger.StatusOK {
					marker = " [" + status + "]"
				}
				fmt.Fprintf(w, "    #%-4d %10s  %s%s\n", c.i,
					(time.Duration(c.us) * time.Microsecond).Round(time.Millisecond), label, marker)
			}
		}
	}
	if corrupt > 0 {
		fmt.Fprintf(w, "cache corrupt entries: %d\n", corrupt)
	}
	for _, b := range benches {
		if cps, ok := benchCellsPerSec(b); ok {
			fmt.Fprintf(w, "bench record: %.3f cells/sec\n", cps)
		}
	}
	return nil
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// benchCellsPerSec extracts cells_per_sec from an embedded
// hpmmap-perf record.
func benchCellsPerSec(raw json.RawMessage) (float64, bool) {
	var rec struct {
		CellsPerSec float64 `json:"cells_per_sec"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil || rec.CellsPerSec <= 0 {
		return 0, false
	}
	return rec.CellsPerSec, true
}

// diffFiles dispatches on extension: .jsonl ledgers diff by canonical
// outcome + bench throughput; .prom/.json snapshots diff per metric.
func diffFiles(w io.Writer, oldPath, newPath string, pct float64) (bool, error) {
	oldKind, newKind := fileKind(oldPath), fileKind(newPath)
	if oldKind != newKind {
		return false, fmt.Errorf("cannot diff %s against %s (extensions disagree)", oldPath, newPath)
	}
	switch oldKind {
	case "ledger":
		a, err := ledger.ReadFile(oldPath)
		if err != nil {
			return false, err
		}
		b, err := ledger.ReadFile(newPath)
		if err != nil {
			return false, err
		}
		return diffLedgers(w, a, b, pct), nil
	case "snapshot":
		a, err := readSnapshot(oldPath)
		if err != nil {
			return false, err
		}
		b, err := readSnapshot(newPath)
		if err != nil {
			return false, err
		}
		return diffSnapshots(w, a, b, pct), nil
	}
	return false, fmt.Errorf("%s: unsupported extension (want .jsonl, .prom or .json)", oldPath)
}

func fileKind(path string) string {
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		return "ledger"
	case strings.HasSuffix(path, ".prom"), strings.HasSuffix(path, ".json"):
		return "snapshot"
	}
	return ""
}

func readSnapshot(path string) (metrics.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return metrics.ParseExposition(f)
	}
	var s metrics.Snapshot
	if err := json.NewDecoder(f).Decode(&s); err != nil {
		return metrics.Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// diffSnapshots prints per-metric deltas and reports whether the gate
// tripped: a metric changed beyond pct percent, appeared, or
// disappeared. Histograms compare on count and sum. Deterministic
// workloads must produce identical snapshots, so identical inputs
// print nothing and exit clean.
func diffSnapshots(w io.Writer, a, b metrics.Snapshot, pct float64) bool {
	tripped := false
	names := map[string]bool{}
	am := map[string]metrics.Metric{}
	bm := map[string]metrics.Metric{}
	var order []string
	for _, m := range a.Metrics {
		am[m.Name] = m
		if !names[m.Name] {
			names[m.Name] = true
			order = append(order, m.Name)
		}
	}
	for _, m := range b.Metrics {
		bm[m.Name] = m
		if !names[m.Name] {
			names[m.Name] = true
			order = append(order, m.Name)
		}
	}
	sort.Strings(order)
	check := func(name string, oldV, newV float64) {
		if oldV == newV {
			return
		}
		deltaPct := 100.0
		if oldV != 0 {
			deltaPct = 100 * (newV - oldV) / oldV
		}
		marker := ""
		if deltaPct > pct || deltaPct < -pct {
			marker = "  << beyond ±" + fmt.Sprintf("%g%%", pct)
			tripped = true
		}
		fmt.Fprintf(w, "%-44s %14s -> %-14s %+8.2f%%%s\n", name,
			trimFloat(oldV), trimFloat(newV), deltaPct, marker)
	}
	for _, name := range order {
		ma, inA := am[name]
		mb, inB := bm[name]
		switch {
		case !inA:
			fmt.Fprintf(w, "%-44s appeared (%s)\n", name, mb.Kind)
			tripped = true
		case !inB:
			fmt.Fprintf(w, "%-44s disappeared (%s)\n", name, ma.Kind)
			tripped = true
		case ma.Kind == metrics.KindHistogram || mb.Kind == metrics.KindHistogram:
			check(name+"/count", float64(ma.Count), float64(mb.Count))
			check(name+"/sum", float64(ma.Sum), float64(mb.Sum))
		default:
			check(name, ma.Value, mb.Value)
		}
	}
	return tripped
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// diffLedgers compares two run journals plan-by-plan (matched by
// name). Canonical outcome regressions — a cell that was ok and no
// longer is, or a worsened quarantine/failure tally — always trip
// regardless of pct. A bench cells/sec drop beyond pct trips. Host
// wall-time deltas are printed but never gate: wall clocks vary
// between hosts and runs.
func diffLedgers(w io.Writer, oldRecs, newRecs []ledger.Record, pct float64) bool {
	tripped := false
	oldPlans, _, oldBench := fold(oldRecs)
	newPlans, _, newBench := fold(newRecs)
	oldByName := map[string]*planStats{}
	for _, p := range oldPlans {
		oldByName[p.name] = p
	}
	for _, np := range newPlans {
		op, ok := oldByName[np.name]
		if !ok {
			fmt.Fprintf(w, "plan %s: new (no counterpart in old ledger)\n", np.name)
			continue
		}
		delete(oldByName, np.name)
		if op.cells != np.cells {
			fmt.Fprintf(w, "plan %s: cell count %d -> %d\n", np.name, op.cells, np.cells)
			tripped = true
		}
		if np.quarantined > op.quarantined || np.failed > op.failed {
			fmt.Fprintf(w, "plan %s: outcomes regressed: quarantined %d -> %d, failed %d -> %d\n",
				np.name, op.quarantined, np.quarantined, op.failed, np.failed)
			tripped = true
		}
		// Per-cell status regressions, by index.
		var idxs []int
		for i := range np.cellStatus {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			oldS, newS := op.cellStatus[i], np.cellStatus[i]
			if oldS == newS || newS == ledger.StatusOK {
				continue
			}
			if oldS == "" {
				continue // cell absent from old ledger: counted above
			}
			fmt.Fprintf(w, "plan %s cell #%d (%s): %s -> %s\n", np.name, i, np.labels[i], oldS, newS)
			tripped = true
		}
		// Host wall delta: report-only.
		if op.wallUS > 0 && np.wallUS > 0 && op.wallUS != np.wallUS {
			deltaPct := 100 * float64(np.wallUS-op.wallUS) / float64(op.wallUS)
			fmt.Fprintf(w, "plan %s: host wall %s -> %s (%+.1f%%, report-only)\n", np.name,
				(time.Duration(op.wallUS) * time.Microsecond).Round(time.Millisecond),
				(time.Duration(np.wallUS) * time.Microsecond).Round(time.Millisecond), deltaPct)
		}
	}
	var gone []string
	for name := range oldByName {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "plan %s: disappeared\n", name)
		tripped = true
	}
	// Bench throughput gate: compare the last bench record of each.
	if len(oldBench) > 0 && len(newBench) > 0 {
		oldCPS, okA := benchCellsPerSec(oldBench[len(oldBench)-1])
		newCPS, okB := benchCellsPerSec(newBench[len(newBench)-1])
		if okA && okB {
			change := 100 * (newCPS - oldCPS) / oldCPS
			fmt.Fprintf(w, "bench: %.3f -> %.3f cells/sec (%+.1f%%)\n", oldCPS, newCPS, change)
			if change < -pct {
				fmt.Fprintf(w, "bench: cells/sec regressed beyond -%g%%\n", pct)
				tripped = true
			}
		}
	}
	return tripped
}

// watch follows the ledger file tail -f-style, rendering each record
// as one human line. With once, it prints what is there and returns.
func watch(w io.Writer, path string, poll time.Duration, once bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var partial []byte
	buf := make([]byte, 64*1024)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			partial = append(partial, buf[:n]...)
			for {
				nl := bytes.IndexByte(partial, '\n')
				if nl < 0 {
					break
				}
				line := string(partial[:nl])
				partial = partial[nl+1:]
				if strings.TrimSpace(line) == "" {
					continue
				}
				var rec ledger.Record
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					fmt.Fprintf(w, "?? %s\n", line)
					continue
				}
				fmt.Fprintln(w, formatRecord(rec))
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return rerr
		}
		if once {
			return nil
		}
		time.Sleep(poll)
	}
}

// formatRecord renders one ledger record as a human watch line.
func formatRecord(r ledger.Record) string {
	switch r.T {
	case ledger.TypeManifest:
		return fmt.Sprintf("=== plan %s: %d cells, model %s, scale %g, seed %s",
			r.Plan, r.Cells, r.Model, r.Scale, r.Seed)
	case ledger.TypeHostManifest:
		return fmt.Sprintf("    host: %d workers, %s, started %s", r.Workers, r.Go, r.Start)
	case ledger.TypeCellStart:
		return fmt.Sprintf("  > #%-4d %s", r.I, r.Label)
	case ledger.TypeCellFinish:
		s := fmt.Sprintf("  < #%-4d %s", r.I, r.Status)
		if r.Err != "" {
			s += ": " + r.Err
		}
		return s
	case ledger.TypePlanEnd:
		return fmt.Sprintf("=== plan %s done: %d ok, %d quarantined, %d failed",
			r.Plan, r.OK, r.Quarantined, r.Failed)
	case ledger.TypeCellHost:
		return fmt.Sprintf("    #%-4d worker %d, %s, %s", r.I, r.Worker,
			(time.Duration(r.WallUS) * time.Microsecond).Round(time.Millisecond), formatBytes(r.AllocBytes))
	case ledger.TypeCellRetry:
		return fmt.Sprintf("  ~ #%-4d retry %d: %s", r.I, r.Attempt, r.Err)
	case ledger.TypeCellTimeout:
		return fmt.Sprintf("  ! #%-4d timed out", r.I)
	case ledger.TypeCacheHit:
		return fmt.Sprintf("    #%-4d cache hit", r.I)
	case ledger.TypeCacheMiss:
		return fmt.Sprintf("    #%-4d cache miss", r.I)
	case ledger.TypeCacheCorrupt:
		return fmt.Sprintf("  ! %d corrupt cache entries", r.Count)
	case ledger.TypeBench:
		if cps, ok := benchCellsPerSec(r.Bench); ok {
			return fmt.Sprintf("    bench: %.3f cells/sec", cps)
		}
		return "    bench record"
	}
	return fmt.Sprintf("?? %+v", r)
}
