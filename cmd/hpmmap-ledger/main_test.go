package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
)

// writeLedger journals one 4-cell plan; quarantine marks cell 1
// quarantined; cps > 0 appends a bench record with that throughput.
func writeLedger(t *testing.T, path string, quarantine bool, cps float64) {
	t.Helper()
	l, err := ledger.Open(path, ledger.Meta{Model: "m1", Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	l.BeginPlan("fig7", 42, 4, 2)
	for i := 0; i < 4; i++ {
		l.CellStart(i, fmt.Sprintf("fig7 cell#%d", i), uint64(i))
		l.CellHost(i, i%2, 1000000, 4096)
		status, errText := ledger.StatusOK, ""
		if quarantine && i == 1 {
			status, errText = ledger.StatusQuarantined, "boom"
		}
		l.CellFinish(i, status, errText)
	}
	l.EndPlan()
	if cps > 0 {
		l.BenchRecord(json.RawMessage(fmt.Sprintf(`{"cells_per_sec":%g}`, cps)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiffLedgersIdenticalClean(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	writeLedger(t, a, false, 5.0)
	writeLedger(t, b, false, 5.0)
	var out bytes.Buffer
	tripped, err := diffFiles(&out, a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tripped {
		t.Fatalf("identical ledgers tripped the gate:\n%s", out.String())
	}
}

// TestDiffLedgersCatchesCellsPerSecRegression: the acceptance gate — a
// seeded 15% throughput drop must trip at -regress-pct 10.
func TestDiffLedgersCatchesCellsPerSecRegression(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	writeLedger(t, a, false, 5.0)
	writeLedger(t, b, false, 5.0*0.85) // −15%
	var out bytes.Buffer
	tripped, err := diffFiles(&out, a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Fatalf("15%% cells/sec regression did not trip at -regress-pct 10:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "regressed") {
		t.Fatalf("diff output does not name the regression:\n%s", out.String())
	}
	// A 5% drop stays under a 10% gate.
	c := filepath.Join(dir, "c.jsonl")
	writeLedger(t, c, false, 5.0*0.95)
	out.Reset()
	if tripped, err = diffFiles(&out, a, c, 10); err != nil || tripped {
		t.Fatalf("5%% drop tripped a 10%% gate (err=%v):\n%s", err, out.String())
	}
}

func TestDiffLedgersStatusRegressionAlwaysTrips(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	writeLedger(t, a, false, 0)
	writeLedger(t, b, true, 0) // cell 1 ok -> quarantined
	var out bytes.Buffer
	tripped, err := diffFiles(&out, a, b, 1000) // huge pct: status still gates
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Fatalf("status regression did not trip:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cell #1") {
		t.Fatalf("diff does not name the regressed cell:\n%s", out.String())
	}
}

func snapshotFiles(t *testing.T, dir string, scale uint64) (prom, jsonPath string) {
	t.Helper()
	r := metrics.NewRegistry()
	r.Counter(metrics.SimEventsTotal).Add(100 * scale)
	r.Gauge(metrics.KernelCommitPressure).Set(0.5)
	h := r.Histogram(metrics.FaultSmallCycles)
	h.Observe(10 * scale)
	snap := r.Snapshot()
	prom = filepath.Join(dir, fmt.Sprintf("s%d.prom", scale))
	jsonPath = filepath.Join(dir, fmt.Sprintf("s%d.json", scale))
	var pb, jb bytes.Buffer
	if err := snap.WriteOpenMetrics(&pb); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(prom, pb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, jb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return prom, jsonPath
}

func TestDiffSnapshotsPromAndJSON(t *testing.T) {
	dir := t.TempDir()
	prom1, json1 := snapshotFiles(t, dir, 1)
	prom2, json2 := snapshotFiles(t, dir, 2) // counters doubled: way past 10%

	for _, c := range []struct {
		a, b string
		want bool
	}{
		{prom1, prom1, false},
		{json1, json1, false},
		{prom1, prom2, true},
		{json1, json2, true},
	} {
		var out bytes.Buffer
		tripped, err := diffFiles(&out, c.a, c.b, 10)
		if err != nil {
			t.Fatalf("diff %s %s: %v", c.a, c.b, err)
		}
		if tripped != c.want {
			t.Errorf("diff %s %s: tripped=%v, want %v\n%s", c.a, c.b, tripped, c.want, out.String())
		}
	}

	// Mixed extensions are a usage error, not a silent pass.
	var out bytes.Buffer
	if _, err := diffFiles(&out, prom1, filepath.Join(dir, "a.jsonl"), 10); err == nil {
		t.Error("mixed extensions did not error")
	}
}

func TestDiffSnapshotsAppearDisappear(t *testing.T) {
	a := metrics.Snapshot{Metrics: []metrics.Metric{{Name: "x_total", Kind: metrics.KindCounter, Value: 1}}}
	b := metrics.Snapshot{Metrics: []metrics.Metric{{Name: "y_total", Kind: metrics.KindCounter, Value: 1}}}
	var out bytes.Buffer
	if !diffSnapshots(&out, a, b, 1000) {
		t.Fatalf("appear/disappear did not trip:\n%s", out.String())
	}
	for _, want := range []string{"disappeared", "appeared"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	writeLedger(t, path, true, 4.2)
	var out bytes.Buffer
	if err := summary(&out, path, 3); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"plan fig7: 4 cells (3 ok, 1 quarantined, 0 failed)",
		"model m1", "scale 0.25",
		"workers 2",
		"slowest cells:",
		"[quarantined]",
		"bench record: 4.200 cells/sec",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary lacks %q:\n%s", want, s)
		}
	}
}

func TestWatchOnce(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	writeLedger(t, path, true, 0)
	var out bytes.Buffer
	if err := watch(&out, path, 0, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"=== plan fig7: 4 cells",
		"host: 2 workers",
		"> #1", "< #1    quarantined: boom",
		"=== plan fig7 done: 3 ok, 1 quarantined, 0 failed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("watch output lacks %q:\n%s", want, s)
		}
	}
}
