// Command hpmmap-sweep runs sensitivity sweeps over the simulator's
// calibrated parameters: it perturbs one model knob across a range and
// reports how the headline result (HPMMAP's improvement over THP and
// HugeTLBfs at 8 cores) responds. This is the ablation evidence that the
// reproduction's conclusions do not hinge on a single lucky constant.
//
// Each knob's value x manager x run grid executes as one internal/runner
// plan: -workers bounds the worker pool (0 = one per CPU), seeds derive
// from cell coordinates so the table is identical at any worker count,
// and -timeout cancels a stuck sweep.
//
// Sweepable knobs:
//
//	thp-frag        THP fallback sensitivity to pressure x contention
//	reclaim-prob    per-fault direct-reclaim probability at full pressure
//	reclaim-tail    Pareto scale of a reclaim stall (cycles)
//	merge-period    khugepaged scan period (seconds)
//	store-cycles    page-clear cost per cacheline (cycles)
//	mem-latency     DRAM latency for page walks (cycles)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hpmmap/internal/experiments"
	"hpmmap/internal/ledger"
	"hpmmap/internal/runner"
	"hpmmap/internal/workload"
)

type knob struct {
	name   string
	values []float64
	apply  func(*experiments.ModelOverrides, float64)
}

func knobs() []knob {
	return []knob{
		{"thp-frag", []float64{0, 0.25, 0.55, 0.9, 1.3}, func(o *experiments.ModelOverrides, v float64) { o.THPFragSensitivity = &v }},
		{"reclaim-prob", []float64{0, 0.04, 0.08, 0.16, 0.32}, func(o *experiments.ModelOverrides, v float64) { o.ReclaimProbAtFull = &v }},
		{"reclaim-tail", []float64{4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, func(o *experiments.ModelOverrides, v float64) { o.ReclaimParetoXm = &v }},
		{"merge-period", []float64{0.5, 1, 3, 10, 30}, func(o *experiments.ModelOverrides, v float64) { o.KhugepagedPeriodSec = &v }},
		{"store-cycles", []float64{5, 8, 10, 14, 20}, func(o *experiments.ModelOverrides, v float64) { o.StoreCycles = &v }},
		{"mem-latency", []float64{100, 140, 180, 240, 320}, func(o *experiments.ModelOverrides, v float64) { o.MemLatency = &v }},
	}
}

// sweepManagers is the fixed manager axis of every sweep row.
var sweepManagers = []experiments.ManagerKind{
	experiments.HPMMAP, experiments.THP, experiments.HugeTLBfs,
}

func main() {
	which := flag.String("knob", "all", "knob to sweep (or 'all')")
	bench := flag.String("bench", "HPCCG", "benchmark")
	profile := flag.Int("profile", 2, "commodity profile: 1=A 2=B")
	runs := flag.Int("runs", 2, "runs per point")
	scale := flag.Float64("scale", 1.0, "problem scale")
	seed := flag.Uint64("seed", 4242, "base seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU; table identical at any count)")
	timeout := flag.Duration("timeout", 0, "cancel the sweep after this long (0 = none)")
	verbose := flag.Bool("v", false, "per-cell progress with ETA on stderr")
	ledgerOut := flag.String("ledger", "", "append a JSONL run ledger (one plan per swept knob) to this file; inspect with hpmmap-ledger")
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prof := experiments.Profile(*profile)

	// SIGINT/SIGTERM cancels the running plan: in-flight cells observe
	// the cancellation and the sweep exits non-zero. Knob tables printed
	// before the signal have already been flushed to stdout.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := runner.Options{Workers: *workers, Context: ctx}
	var led *ledger.Ledger
	if *ledgerOut != "" {
		var err error
		led, err = ledger.Open(*ledgerOut, ledger.Meta{
			Model: experiments.ModelVersion,
			Scale: *scale,
			Flags: map[string]string{"exp": "sweep", "knob": *which, "bench": *bench},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Ledger = led
	}
	closeLedger := func() {
		if err := led.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hpmmap-sweep: ledger: %v\n", err)
		}
	}
	if *verbose {
		// Serialized sink: the runner never overlaps invocations, so
		// writing to stderr without locking is safe.
		opts.Progress = func(e runner.Event) { fmt.Fprintf(os.Stderr, "%s\n", e) }
	}

	for _, k := range knobs() {
		if *which != "all" && *which != k.name {
			continue
		}
		// One plan per knob: values x managers x runs, every cell
		// independent. Seeds derive from the cell coordinates (the knob
		// value is the Variant axis), never from execution order.
		plan := runner.Plan{Name: "sweep-" + k.name, Seed: *seed}
		var vals []float64
		for _, v := range k.values {
			for _, kind := range sweepManagers {
				for r := 0; r < *runs; r++ {
					plan.Cells = append(plan.Cells, runner.Cell{
						Exp: "sweep", Bench: *bench, Profile: prof.String(),
						Manager: kind.Key(), Variant: fmt.Sprintf("%s=%g", k.name, v),
						Cores: 8, Run: r,
					})
					vals = append(vals, v)
				}
			}
		}
		secs, err := runner.Run(opts, plan, func(ctx context.Context, idx int, cell runner.Cell, cellSeed uint64) (float64, error) {
			var o experiments.ModelOverrides
			k.apply(&o, vals[idx])
			var kind experiments.ManagerKind
			for _, mk := range sweepManagers {
				if mk.Key() == cell.Manager {
					kind = mk
				}
			}
			out, err := experiments.ExecuteSingleNodeWithOverrides(experiments.SingleRun{
				Bench: spec, Kind: kind, Profile: prof, Ranks: cell.Cores,
				Seed: cellSeed, Scale: experiments.Scale(*scale), Context: ctx,
			}, o)
			if err != nil {
				return 0, err
			}
			return out.RuntimeSec, nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			closeLedger()
			os.Exit(1)
		}

		// Reduce in declaration order: mean per (value, manager).
		fmt.Printf("=== sweep %s (%s, profile %s, 8 cores) ===\n", k.name, *bench, prof)
		fmt.Printf("%12s %12s %12s %14s %12s %14s\n",
			k.name, "hpmmap (s)", "thp (s)", "vs thp", "htlb (s)", "vs hugetlbfs")
		i := 0
		for _, v := range k.values {
			means := make(map[experiments.ManagerKind]float64, len(sweepManagers))
			for _, kind := range sweepManagers {
				var sum float64
				for r := 0; r < *runs; r++ {
					sum += secs[i]
					i++
				}
				means[kind] = sum / float64(*runs)
			}
			hp := means[experiments.HPMMAP]
			th := means[experiments.THP]
			ht := means[experiments.HugeTLBfs]
			fmt.Printf("%12.3g %12.1f %12.1f %+13.1f%% %12.1f %+13.1f%%\n",
				v, hp, th, 100*(th-hp)/th, ht, 100*(ht-hp)/ht)
		}
		fmt.Println()
	}
	closeLedger()
}
