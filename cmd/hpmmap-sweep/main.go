// Command hpmmap-sweep runs sensitivity sweeps over the simulator's
// calibrated parameters: it perturbs one model knob across a range and
// reports how the headline result (HPMMAP's improvement over THP and
// HugeTLBfs at 8 cores) responds. This is the ablation evidence that the
// reproduction's conclusions do not hinge on a single lucky constant.
//
// Sweepable knobs:
//
//	thp-frag        THP fallback sensitivity to pressure x contention
//	reclaim-prob    per-fault direct-reclaim probability at full pressure
//	reclaim-tail    Pareto scale of a reclaim stall (cycles)
//	merge-period    khugepaged scan period (seconds)
//	store-cycles    page-clear cost per cacheline (cycles)
//	mem-latency     DRAM latency for page walks (cycles)
package main

import (
	"flag"
	"fmt"
	"os"

	"hpmmap/internal/experiments"
	"hpmmap/internal/workload"
)

type knob struct {
	name   string
	values []float64
	apply  func(*experiments.ModelOverrides, float64)
}

func knobs() []knob {
	return []knob{
		{"thp-frag", []float64{0, 0.25, 0.55, 0.9, 1.3}, func(o *experiments.ModelOverrides, v float64) { o.THPFragSensitivity = &v }},
		{"reclaim-prob", []float64{0, 0.04, 0.08, 0.16, 0.32}, func(o *experiments.ModelOverrides, v float64) { o.ReclaimProbAtFull = &v }},
		{"reclaim-tail", []float64{4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, func(o *experiments.ModelOverrides, v float64) { o.ReclaimParetoXm = &v }},
		{"merge-period", []float64{0.5, 1, 3, 10, 30}, func(o *experiments.ModelOverrides, v float64) { o.KhugepagedPeriodSec = &v }},
		{"store-cycles", []float64{5, 8, 10, 14, 20}, func(o *experiments.ModelOverrides, v float64) { o.StoreCycles = &v }},
		{"mem-latency", []float64{100, 140, 180, 240, 320}, func(o *experiments.ModelOverrides, v float64) { o.MemLatency = &v }},
	}
}

func main() {
	which := flag.String("knob", "all", "knob to sweep (or 'all')")
	bench := flag.String("bench", "HPCCG", "benchmark")
	profile := flag.Int("profile", 2, "commodity profile: 1=A 2=B")
	runs := flag.Int("runs", 2, "runs per point")
	scale := flag.Float64("scale", 1.0, "problem scale")
	seed := flag.Uint64("seed", 4242, "base seed")
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prof := experiments.Profile(*profile)

	for _, k := range knobs() {
		if *which != "all" && *which != k.name {
			continue
		}
		fmt.Printf("=== sweep %s (%s, profile %s, 8 cores) ===\n", k.name, *bench, prof)
		fmt.Printf("%12s %12s %12s %14s %12s %14s\n",
			k.name, "hpmmap (s)", "thp (s)", "vs thp", "htlb (s)", "vs hugetlbfs")
		for _, v := range k.values {
			var o experiments.ModelOverrides
			k.apply(&o, v)
			cell := func(kind experiments.ManagerKind) float64 {
				var sum float64
				for r := 0; r < *runs; r++ {
					out, err := experiments.ExecuteSingleNodeWithOverrides(experiments.SingleRun{
						Bench: spec, Kind: kind, Profile: prof, Ranks: 8,
						Seed: *seed + uint64(r)*17, Scale: experiments.Scale(*scale),
					}, o)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					sum += out.RuntimeSec
				}
				return sum / float64(*runs)
			}
			hp := cell(experiments.HPMMAP)
			th := cell(experiments.THP)
			ht := cell(experiments.HugeTLBfs)
			fmt.Printf("%12.3g %12.1f %12.1f %+13.1f%% %12.1f %+13.1f%%\n",
				v, hp, th, 100*(th-hp)/th, ht, 100*(ht-hp)/ht)
		}
		fmt.Println()
	}
}
