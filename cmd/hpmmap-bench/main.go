// Command hpmmap-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hpmmap-bench -exp fig2            # THP fault-cost table (Fig. 2)
//	hpmmap-bench -exp fig3            # HugeTLBfs fault-cost table (Fig. 3)
//	hpmmap-bench -exp fig4            # THP fault timeline (Fig. 4)
//	hpmmap-bench -exp fig5            # HugeTLBfs fault timelines (Fig. 5)
//	hpmmap-bench -exp fig7            # single-node weak scaling (Fig. 7)
//	hpmmap-bench -exp fig8            # 8-node scaling study (Fig. 8)
//	hpmmap-bench -exp all             # everything
//
// -scale shrinks the experiment (memory, footprints, iterations) for
// quick runs; -runs overrides the paper's 10 repetitions; -bench and
// -cores narrow Figure 7 to one cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hpmmap/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig2|fig3|fig4|fig5|fig7|fig8|noise|all")
		scale   = flag.Float64("scale", 1.0, "problem/memory scale factor (1.0 = paper size)")
		runs    = flag.Int("runs", 0, "repetitions per cell (0 = paper default of 10)")
		seed    = flag.Uint64("seed", 0, "base seed (0 = default)")
		benches = flag.String("bench", "", "comma-separated benchmarks (fig7/fig8 only)")
		cores   = flag.String("cores", "", "comma-separated core counts (fig7 only)")
		verbose = flag.Bool("v", false, "print per-cell progress")
		plotW   = flag.Int("plot-width", 100, "timeline plot width")
		plotH   = flag.Int("plot-height", 18, "timeline plot height")
		outDir  = flag.String("out", "", "also write machine-readable CSVs into this directory")
	)
	flag.Parse()

	progress := func(string) {}
	if *verbose {
		progress = func(msg string) { fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg) }
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	sc := experiments.Scale(*scale)

	run("fig2", func() error {
		fs, err := experiments.Fig2(*seed, sc)
		if err != nil {
			return err
		}
		experiments.WriteFaultStudy(os.Stdout, fs)
		return nil
	})
	run("fig3", func() error {
		fs, err := experiments.Fig3(*seed, sc)
		if err != nil {
			return err
		}
		experiments.WriteFaultStudy(os.Stdout, fs)
		return nil
	})
	run("fig4", func() error {
		tls, err := experiments.Fig4(*seed, sc)
		if err != nil {
			return err
		}
		experiments.WriteTimelines(os.Stdout, "Figure 4: THP fault timeline, miniMD", tls, *plotW, *plotH)
		return nil
	})
	run("fig5", func() error {
		tls, err := experiments.Fig5(*seed, sc)
		if err != nil {
			return err
		}
		experiments.WriteTimelines(os.Stdout, "Figure 5: HugeTLBfs fault timelines", tls, *plotW, *plotH)
		return nil
	})
	writeCSV := func(name string, lines []string) error {
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644)
	}

	run("fig7", func() error {
		opts := experiments.Fig7Options{
			Runs:     *runs,
			Seed:     *seed,
			Scale:    sc,
			Progress: progress,
			Benches:  splitList(*benches),
		}
		for _, c := range splitList(*cores) {
			v, err := strconv.Atoi(c)
			if err != nil {
				return fmt.Errorf("bad -cores entry %q", c)
			}
			opts.CoreCounts = append(opts.CoreCounts, v)
		}
		panels, err := experiments.Fig7(opts)
		if err != nil {
			return err
		}
		experiments.WriteFig7(os.Stdout, panels)
		lines := []string{"bench,profile,manager,cores,mean_sec,stdev_sec"}
		for _, p := range panels {
			for _, s := range p.Series {
				for _, pt := range s.Points {
					lines = append(lines, fmt.Sprintf("%s,%s,%s,%d,%.3f,%.3f",
						p.Bench, p.Profile, s.Kind, pt.Cores, pt.MeanSec, pt.StdevSec))
				}
			}
		}
		return writeCSV("fig7.csv", lines)
	})
	run("noise", func() error {
		points, err := experiments.NoiseStudy(experiments.NoiseStudyOptions{Seed: *seed, Scale: sc})
		if err != nil {
			return err
		}
		fmt.Println("=== BSP noise-amplification study (HPMMAP-managed HPCCG, synthetic detours) ===")
		fmt.Print(experiments.WriteNoiseStudy(points))
		return nil
	})
	run("fig8", func() error {
		panels, err := experiments.Fig8(experiments.Fig8Options{
			Runs:     *runs,
			Seed:     *seed,
			Scale:    sc,
			Progress: progress,
			Benches:  splitList(*benches),
		})
		if err != nil {
			return err
		}
		experiments.WriteFig8(os.Stdout, panels)
		lines := []string{"bench,profile,manager,ranks,mean_sec,stdev_sec"}
		for _, p := range panels {
			for _, s := range p.Series {
				for _, pt := range s.Points {
					lines = append(lines, fmt.Sprintf("%s,%s,%s,%d,%.3f,%.3f",
						p.Bench, p.Profile, s.Kind, pt.Ranks, pt.MeanSec, pt.StdevSec))
				}
			}
		}
		return writeCSV("fig8.csv", lines)
	})
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
