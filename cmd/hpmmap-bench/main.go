// Command hpmmap-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hpmmap-bench -exp fig2            # THP fault-cost table (Fig. 2)
//	hpmmap-bench -exp fig3            # HugeTLBfs fault-cost table (Fig. 3)
//	hpmmap-bench -exp fig4            # THP fault timeline (Fig. 4)
//	hpmmap-bench -exp fig5            # HugeTLBfs fault timelines (Fig. 5)
//	hpmmap-bench -exp fig7 -workers 8 # single-node weak scaling (Fig. 7)
//	hpmmap-bench -exp fig8            # 8-node scaling study (Fig. 8)
//	hpmmap-bench -exp attribution     # barrier noise-attribution study
//	hpmmap-bench -exp all             # everything
//
// Robustness studies run instead of -exp:
//
//	hpmmap-bench -study chaos                      # contention-storm sweep
//	hpmmap-bench -study chaos -audit               # + invariant auditor per cell
//	hpmmap-bench -study chaos -chaos-poison 3      # quarantine drill: poison cell 3
//	hpmmap-bench -study datacenter -out out        # pod churn x chaos, CSV to out/
//	hpmmap-bench -study datacenter -churns 0,500   # override the churn sweep
//	hpmmap-bench -study eviction -out out          # overcommit x node failures
//	hpmmap-bench -study eviction -overcommits 1,2  # override the overcommit sweep
//
// The chaos study sweeps deterministic fault-injection intensity
// (-intensities) against every memory manager. The datacenter study
// (DESIGN.md §11) sweeps pod churn rate (-churns, pods/sec) against
// chaos intensity on one mixed-tenancy node — a kubelet-style agent
// admitting THP/HugeTLBfs/HPMMAP pods against per-zone hugepage
// budgets while an HPC victim runs — and reports per-class
// fault-latency tails (p50/p99/p999) plus interference vs the quiet
// cell; -out also writes a long-format datacenter.csv. The eviction
// study (DESIGN.md §12) sweeps limits:requests overcommit
// (-overcommits) against node-failure chaos intensity on the same
// mixed-tenancy node: the agent admits pods by request, usage grows to
// the limit, and the pressure-driven eviction engine sheds
// lowest-priority pods while zone outages displace survivors; every
// cell reports per-priority eviction/restart counts, the crash-loop
// backoff distribution, per-class fault tails and victim interference,
// and -out also writes a long-format eviction.csv. All studies
// run with the runner's degradation machinery: failed cells become
// annotated holes (-fail-fast reverts to abort-on-first-error),
// -cell-timeout bounds a cell's wall clock and -retries re-runs
// host-transient failures. A SIGINT/SIGTERM cancels the grid, flushes
// partial -metrics/-trace-out artifacts and exits non-zero.
//
// Every experiment executes through the internal/runner worker pool:
// -workers bounds the pool (0 = one worker per CPU) and results are
// byte-identical at any worker count, -timeout cancels a stuck run, and
// -cache-dir memoizes per-cell results so re-invocations only simulate
// changed cells. -scale shrinks the experiment (memory, footprints,
// iterations) for quick runs; -runs overrides the paper's 10
// repetitions; -bench and -cores narrow Figure 7 to one cell.
//
// Observability (see OBSERVABILITY.md):
//
//	-metrics <file>    dump the experiment's merged metric snapshot
//	                   ("-" = stdout; a .json suffix selects JSON, a
//	                   .prom suffix the OpenMetrics exposition format,
//	                   anything else the Prometheus-style text format)
//	-ledger <file>     append a JSONL run ledger: canonical records
//	                   (manifest/cell_start/cell_finish/plan_end, byte-
//	                   identical at any worker count and cache state)
//	                   plus a host annex (per-cell wall clock and
//	                   allocations, retries, timeouts, cache traffic);
//	                   inspect with hpmmap-ledger summary/diff/watch
//	-trace-out <file>  write a Chrome trace-event JSON file of the run,
//	                   loadable in Perfetto (ui.perfetto.dev) or
//	                   chrome://tracing, timestamped by simulated cycles
//	-series <file>     sample each cell's memory-state time series
//	                   (commit pressure, fragmentation, free memory,
//	                   page cache, fault/reclaim counters) at the
//	                   scheduler-tick cadence and write them as one
//	                   long-format CSV; the samples also appear as
//	                   Perfetto counter tracks in -trace-out
//	-cpuprofile <file> write a pprof CPU profile of the invocation
//	-memprofile <file> write a pprof allocation profile at exit
//	                   (see EXPERIMENTS.md "Profiling the simulator")
//
// With -exp all, each experiment writes its own artifact with the
// experiment name spliced into the file name (metrics.txt →
// metrics-fig7.txt). Cells served from -cache-dir replay their cached
// metric snapshots but contribute no trace events. -series bypasses the
// result cache entirely (cached cells would replay no samples), so
// sampled runs neither read nor write -cache-dir entries.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hpmmap/internal/experiments"
	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig2|fig3|fig4|fig5|fig7|fig8|noise|attribution|all")
		scale    = flag.Float64("scale", 1.0, "problem/memory scale factor (1.0 = paper size)")
		runs     = flag.Int("runs", 0, "repetitions per cell (0 = paper default of 10)")
		seed     = flag.Uint64("seed", 0, "base seed (0 = default)")
		benches  = flag.String("bench", "", "comma-separated benchmarks (fig7/fig8 only)")
		cores    = flag.String("cores", "", "comma-separated core counts (fig7 only)")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU; results identical at any count)")
		timeout  = flag.Duration("timeout", 0, "cancel the run after this long (0 = no timeout)")
		cacheDir = flag.String("cache-dir", "", "JSON result cache: reuse per-cell results keyed by exp/cell/seed/scale/model-version")
		verbose  = flag.Bool("v", false, "print per-cell progress with done/total and ETA")
		plotW    = flag.Int("plot-width", 100, "timeline plot width")
		plotH    = flag.Int("plot-height", 18, "timeline plot height")
		outDir   = flag.String("out", "", "also write machine-readable CSVs into this directory")

		metricsOut = flag.String("metrics", "", `write the experiment's merged metric snapshot to this file ("-" = stdout; .json = JSON, .prom = OpenMetrics, else text); supported by fig2-fig5, fig7, fig8, attribution`)
		ledgerOut  = flag.String("ledger", "", "append a JSONL run ledger to this file: canonical records (manifest/cell_start/cell_finish/plan_end) plus a host annex (timings, retries, cache traffic); inspect with hpmmap-ledger")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable) of the experiment's cells")
		seriesOut  = flag.String("series", "", "sample each cell's memory-state time series and write a long-format CSV to this file; sampling bypasses -cache-dir both ways")

		studyFlag   = flag.String("study", "", "robustness study (runs instead of -exp): chaos = contention-storm sweep of chaos intensity x manager; datacenter = mixed-tenancy pod-churn sweep with per-class tail latency; eviction = overcommit x node-failure sweep with per-priority eviction and crash-loop backoff")
		churns      = flag.String("churns", "", "datacenter study: comma-separated pod arrival rates in pods/sec (default 0,50,200; 0 is the interference baseline); eviction study: single fixed rate (default 200)")
		overcommits = flag.String("overcommits", "", "eviction study: comma-separated limits:requests overcommit ratios (default 1,1.5,2; 1 disables the failure domain and is the interference baseline)")
		audit       = flag.Bool("audit", false, "chaos study: attach the invariant auditor to every cell's node (schedules extra events, so it changes sim_events_total)")
		intensities = flag.String("intensities", "", "chaos study: comma-separated chaos intensities in [0,1] (default 0,0.25,0.5,0.75,1)")
		chaosPoison = flag.Int("chaos-poison", -1, "chaos study: inject a deliberate invariant violation into this plan cell (>= 1) to drill the quarantine path; -1 = off")
		cellTimeout = flag.Duration("cell-timeout", 0, "chaos study: per-cell wall-clock budget (0 = none)")
		retries     = flag.Int("retries", 0, "chaos study: retries for host-transient cell failures (cache I/O)")
		failFast    = flag.Bool("fail-fast", false, "chaos study: abort on the first cell failure instead of quarantining it as an annotated hole")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile (taken at exit) to this file")
	)
	flag.Parse()

	// Profiles flush on every exit path: run()/the study funnel all
	// failures through fatal() below, and the success paths fall through
	// to stopProfiles at the end of main.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	closeLedger := func() {} // reassigned once -ledger (below) is opened
	stopProfiles := func() {
		closeLedger()
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live + cumulative allocation
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		stopProfiles()
		os.Exit(1)
	}

	// A SIGINT/SIGTERM cancels the runner's context: in-flight cells
	// observe the cancellation, partial -metrics/-trace-out artifacts
	// are flushed, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var cache *runner.Cache
	if *cacheDir != "" {
		var err error
		cache, err = runner.NewCache(*cacheDir, experiments.ModelVersion)
		if err != nil {
			fatal("%v\n", err)
		}
	}

	var led *ledger.Ledger
	if *ledgerOut != "" {
		var err error
		led, err = ledger.Open(*ledgerOut, ledger.Meta{
			Model: experiments.ModelVersion,
			Scale: *scale,
			Flags: map[string]string{"exp": *exp, "study": *studyFlag},
		})
		if err != nil {
			fatal("%v\n", err)
		}
	}
	closeLedger = func() {
		if led == nil {
			return
		}
		if cache != nil {
			led.CacheCorrupt(cache.CorruptCount())
		}
		if err := led.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hpmmap-bench: ledger: %v\n", err)
		}
		led = nil
	}

	observing := *metricsOut != "" || *traceOut != "" || *seriesOut != "" || led != nil
	if *traceOut != "" && cache != nil {
		fmt.Fprintln(os.Stderr, "hpmmap-bench: note: cells served from -cache-dir replay cached metrics but contribute no trace events")
	}
	if *seriesOut != "" && cache != nil {
		fmt.Fprintln(os.Stderr, "hpmmap-bench: note: -series bypasses -cache-dir (sampled cells neither read nor write cache entries)")
	}
	multi := *exp == "all" && *studyFlag == ""
	// newObs creates one collector per experiment so cell indexes (and
	// trace pids) never collide across experiments.
	newObs := func() *runner.Observations {
		if !observing {
			return nil
		}
		obs := runner.NewObservations(0)
		if *seriesOut != "" {
			obs.EnableSeries()
		}
		obs.SetLedger(led)
		return obs
	}
	writeArtifacts := func(name string, obs *runner.Observations) error {
		if obs == nil {
			return nil
		}
		if *metricsOut != "" {
			if err := writeMetricsFile(artifactPath(*metricsOut, name, multi), obs.Merged()); err != nil {
				return err
			}
		}
		if *traceOut != "" {
			if err := writeTraceFile(artifactPath(*traceOut, name, multi), obs); err != nil {
				return err
			}
		}
		if *seriesOut != "" {
			if err := writeSeriesFile(artifactPath(*seriesOut, name, multi), obs); err != nil {
				return err
			}
		}
		return nil
	}

	// The runner delivers progress through a serialized sink, so this
	// callback may write to stderr without locking.
	progress := func(string) {}
	if *verbose {
		progress = func(msg string) { fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg) }
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fatal("%s: %v\n", name, err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	sc := experiments.Scale(*scale)

	if *studyFlag == "datacenter" {
		if err := runDatacenterStudy(datacenterStudyArgs{
			ctx: ctx, obs: newObs(), cache: cache, progress: progress,
			seed: *seed, scale: sc, runs: *runs, workers: *workers,
			benches: splitList(*benches), cores: splitList(*cores),
			churns: splitList(*churns), intensities: splitList(*intensities),
			audit:       *audit,
			cellTimeout: *cellTimeout, retries: *retries,
			outDir: *outDir, writeArtifacts: writeArtifacts,
		}); err != nil {
			fatal("datacenter: %v\n", err)
		}
		stopProfiles()
		return
	}
	if *studyFlag == "eviction" {
		if err := runEvictionStudy(evictionStudyArgs{
			ctx: ctx, obs: newObs(), cache: cache, progress: progress,
			seed: *seed, scale: sc, runs: *runs, workers: *workers,
			benches: splitList(*benches), cores: splitList(*cores),
			overcommits: splitList(*overcommits), intensities: splitList(*intensities),
			churns:      splitList(*churns),
			audit:       *audit,
			cellTimeout: *cellTimeout, retries: *retries,
			outDir: *outDir, writeArtifacts: writeArtifacts,
		}); err != nil {
			fatal("eviction: %v\n", err)
		}
		stopProfiles()
		return
	}
	if *studyFlag != "" {
		if *studyFlag != "chaos" {
			fmt.Fprintf(os.Stderr, "hpmmap-bench: unknown -study %q (supported: chaos, datacenter, eviction)\n", *studyFlag)
			os.Exit(2)
		}
		if err := runChaosStudy(chaosStudyArgs{
			ctx: ctx, obs: newObs(), cache: cache, progress: progress,
			seed: *seed, scale: sc, runs: *runs, workers: *workers,
			benches: splitList(*benches), cores: splitList(*cores),
			intensities: splitList(*intensities),
			audit:       *audit, poison: *chaosPoison,
			cellTimeout: *cellTimeout, retries: *retries, failFast: *failFast,
			outDir: *outDir, writeArtifacts: writeArtifacts,
		}); err != nil {
			fatal("chaos: %v\n", err)
		}
		stopProfiles()
		return
	}

	study := func() experiments.FaultStudyOptions {
		return experiments.FaultStudyOptions{
			Seed: *seed, Scale: sc,
			Workers: *workers, Context: ctx, Progress: progress,
		}
	}

	run("fig2", func() error {
		o, obs := study(), newObs()
		o.Obs = obs
		fs, err := experiments.Fig2(o)
		if err != nil {
			writeArtifacts("fig2", obs) // best-effort partial flush
			return err
		}
		experiments.WriteFaultStudy(os.Stdout, fs)
		return writeArtifacts("fig2", obs)
	})
	run("fig3", func() error {
		o, obs := study(), newObs()
		o.Obs = obs
		fs, err := experiments.Fig3(o)
		if err != nil {
			writeArtifacts("fig3", obs) // best-effort partial flush
			return err
		}
		experiments.WriteFaultStudy(os.Stdout, fs)
		return writeArtifacts("fig3", obs)
	})
	run("fig4", func() error {
		o, obs := study(), newObs()
		o.Obs = obs
		tls, err := experiments.Fig4(o)
		if err != nil {
			writeArtifacts("fig4", obs) // best-effort partial flush
			return err
		}
		experiments.WriteTimelines(os.Stdout, "Figure 4: THP fault timeline, miniMD", tls, *plotW, *plotH)
		return writeArtifacts("fig4", obs)
	})
	run("fig5", func() error {
		o, obs := study(), newObs()
		o.Obs = obs
		tls, err := experiments.Fig5(o)
		if err != nil {
			writeArtifacts("fig5", obs) // best-effort partial flush
			return err
		}
		experiments.WriteTimelines(os.Stdout, "Figure 5: HugeTLBfs fault timelines", tls, *plotW, *plotH)
		return writeArtifacts("fig5", obs)
	})
	writeCSV := func(name string, lines []string) error {
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644)
	}

	run("fig7", func() error {
		obs := newObs()
		opts := experiments.Fig7Options{
			Runs:     *runs,
			Seed:     *seed,
			Scale:    sc,
			Progress: progress,
			Benches:  splitList(*benches),
			Workers:  *workers,
			Context:  ctx,
			Cache:    cache,
			Obs:      obs,
		}
		for _, c := range splitList(*cores) {
			v, err := strconv.Atoi(c)
			if err != nil {
				return fmt.Errorf("bad -cores entry %q", c)
			}
			opts.CoreCounts = append(opts.CoreCounts, v)
		}
		panels, err := experiments.Fig7(opts)
		if err != nil {
			writeArtifacts("fig7", obs) // best-effort partial flush
			return err
		}
		experiments.WriteFig7(os.Stdout, panels)
		lines := []string{"bench,profile,manager,cores,mean_sec,stdev_sec"}
		for _, p := range panels {
			for _, s := range p.Series {
				for _, pt := range s.Points {
					lines = append(lines, fmt.Sprintf("%s,%s,%s,%d,%.3f,%.3f",
						p.Bench, p.Profile, s.Kind, pt.Cores, pt.MeanSec, pt.StdevSec))
				}
			}
		}
		if err := writeCSV("fig7.csv", lines); err != nil {
			return err
		}
		return writeArtifacts("fig7", obs)
	})
	run("noise", func() error {
		points, err := experiments.NoiseStudy(experiments.NoiseStudyOptions{
			Seed: *seed, Scale: sc,
			Workers: *workers, Context: ctx, Progress: progress,
		})
		if err != nil {
			return err
		}
		fmt.Println("=== BSP noise-amplification study (HPMMAP-managed HPCCG, synthetic detours) ===")
		fmt.Print(experiments.WriteNoiseStudy(points))
		return nil
	})
	run("attribution", func() error {
		obs := newObs()
		o := experiments.AttributionStudyOptions{
			Seed: *seed, Scale: sc,
			Workers: *workers, Context: ctx, Progress: progress,
			Obs: obs,
		}
		if bs := splitList(*benches); len(bs) > 0 {
			o.Bench = bs[0]
		}
		cells, err := experiments.RunAttributionStudy(o)
		if err != nil {
			writeArtifacts("attribution", obs) // best-effort partial flush
			return err
		}
		fmt.Println("=== Barrier noise attribution (per-manager straggler decomposition) ===")
		if err := experiments.WriteAttributionStudy(os.Stdout, cells); err != nil {
			return err
		}
		return writeArtifacts("attribution", obs)
	})
	run("fig8", func() error {
		obs := newObs()
		panels, err := experiments.Fig8(experiments.Fig8Options{
			Runs:     *runs,
			Seed:     *seed,
			Scale:    sc,
			Progress: progress,
			Benches:  splitList(*benches),
			Workers:  *workers,
			Context:  ctx,
			Cache:    cache,
			Obs:      obs,
		})
		if err != nil {
			writeArtifacts("fig8", obs) // best-effort partial flush
			return err
		}
		experiments.WriteFig8(os.Stdout, panels)
		lines := []string{"bench,profile,manager,ranks,mean_sec,stdev_sec"}
		for _, p := range panels {
			for _, s := range p.Series {
				for _, pt := range s.Points {
					lines = append(lines, fmt.Sprintf("%s,%s,%s,%d,%.3f,%.3f",
						p.Bench, p.Profile, s.Kind, pt.Ranks, pt.MeanSec, pt.StdevSec))
				}
			}
		}
		if err := writeCSV("fig8.csv", lines); err != nil {
			return err
		}
		return writeArtifacts("fig8", obs)
	})

	stopProfiles()
}

// chaosStudyArgs carries the flag surface into runChaosStudy.
type chaosStudyArgs struct {
	ctx            context.Context
	obs            *runner.Observations
	cache          *runner.Cache
	progress       func(string)
	seed           uint64
	scale          experiments.Scale
	runs, workers  int
	benches, cores []string
	intensities    []string
	audit          bool
	poison         int
	cellTimeout    time.Duration
	retries        int
	failFast       bool
	outDir         string
	writeArtifacts func(name string, obs *runner.Observations) error
}

// runChaosStudy drives the contention-storm study (-study chaos):
// chaos intensity x manager, with the runner's degradation machinery
// (quarantined holes, retries, per-cell timeouts) and optionally the
// invariant auditor. Artifacts are flushed even when cells were
// quarantined or the run was interrupted, and a study with quarantined
// cells exits non-zero after rendering the partial figure.
func runChaosStudy(a chaosStudyArgs) error {
	o := experiments.ChaosStudyOptions{
		Seed: a.seed, Scale: a.scale, Runs: a.runs,
		Workers: a.workers, Context: a.ctx, Progress: a.progress,
		Cache: a.cache, Obs: a.obs,
		Audit: a.audit, PoisonCell: a.poison,
		CellTimeout: a.cellTimeout, Retries: a.retries,
		DisableContinueOnError: a.failFast,
	}
	if len(a.benches) > 0 {
		o.Bench = a.benches[0]
	}
	if len(a.cores) > 0 {
		v, err := strconv.Atoi(a.cores[0])
		if err != nil {
			return fmt.Errorf("bad -cores entry %q", a.cores[0])
		}
		o.Cores = v
	}
	for _, s := range a.intensities {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v > 1 {
			return fmt.Errorf("bad -intensities entry %q (want a number in [0,1])", s)
		}
		o.Intensities = append(o.Intensities, v)
	}
	s, err := experiments.ChaosStudyRun(o)
	if err != nil {
		// Flush whatever the completed cells observed before failing.
		if aerr := a.writeArtifacts("chaos", a.obs); aerr != nil {
			fmt.Fprintf(os.Stderr, "chaos: flushing partial artifacts: %v\n", aerr)
		}
		return err
	}
	experiments.WriteChaosStudy(os.Stdout, s)
	if a.outDir != "" {
		lines := []string{"bench,manager,intensity,mean_sec,stdev_sec,runs,failed,degradation_pct"}
		for _, series := range s.Series {
			for _, pt := range series.Points {
				lines = append(lines, fmt.Sprintf("%s,%s,%.2f,%.3f,%.3f,%d,%d,%.1f",
					s.Bench, series.Kind, pt.Intensity, pt.MeanSec, pt.StdevSec,
					len(pt.Runs), pt.Failed, pt.DegradationPct))
			}
		}
		if err := os.MkdirAll(a.outDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(a.outDir, "chaos.csv"),
			[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			return err
		}
	}
	if err := a.writeArtifacts("chaos", a.obs); err != nil {
		return err
	}
	if n := len(s.Failures); n > 0 {
		return fmt.Errorf("%d cell(s) quarantined; the figure above has annotated holes", n)
	}
	return nil
}

// datacenterStudyArgs carries the flag surface into runDatacenterStudy.
type datacenterStudyArgs struct {
	ctx            context.Context
	obs            *runner.Observations
	cache          *runner.Cache
	progress       func(string)
	seed           uint64
	scale          experiments.Scale
	runs, workers  int
	benches, cores []string
	churns         []string
	intensities    []string
	audit          bool
	cellTimeout    time.Duration
	retries        int
	outDir         string
	writeArtifacts func(name string, obs *runner.Observations) error
}

// runDatacenterStudy drives the mixed-tenancy pod-churn study
// (-study datacenter): churn rate x chaos intensity on one node
// carrying THP, HugeTLBfs and HPMMAP tenants, tabulating per-class
// tail fault latency and the HPC victim's interference. Artifacts are
// flushed even when the run was interrupted.
func runDatacenterStudy(a datacenterStudyArgs) error {
	o := experiments.DatacenterStudyOptions{
		Seed: a.seed, Scale: a.scale, Runs: a.runs,
		Workers: a.workers, Context: a.ctx, Progress: a.progress,
		Cache: a.cache, Obs: a.obs, Audit: a.audit,
		CellTimeout: a.cellTimeout, Retries: a.retries,
	}
	if len(a.benches) > 0 {
		o.Bench = a.benches[0]
	}
	if len(a.cores) > 0 {
		v, err := strconv.Atoi(a.cores[0])
		if err != nil {
			return fmt.Errorf("bad -cores entry %q", a.cores[0])
		}
		o.Ranks = v
	}
	for _, s := range a.churns {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("bad -churns entry %q (want a rate >= 0 in pods/sec)", s)
		}
		o.Churns = append(o.Churns, v)
	}
	for _, s := range a.intensities {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v > 1 {
			return fmt.Errorf("bad -intensities entry %q (want a number in [0,1])", s)
		}
		o.Intensities = append(o.Intensities, v)
	}
	s, err := experiments.DatacenterStudyRun(o)
	if err != nil {
		if aerr := a.writeArtifacts("datacenter", a.obs); aerr != nil {
			fmt.Fprintf(os.Stderr, "datacenter: flushing partial artifacts: %v\n", aerr)
		}
		return err
	}
	experiments.WriteDatacenterStudy(os.Stdout, s)
	if a.outDir != "" {
		if err := os.MkdirAll(a.outDir, 0o755); err != nil {
			return err
		}
		var buf strings.Builder
		if err := experiments.WriteDatacenterCSV(&buf, s); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(a.outDir, "datacenter.csv"),
			[]byte(buf.String()), 0o644); err != nil {
			return err
		}
	}
	return a.writeArtifacts("datacenter", a.obs)
}

// evictionStudyArgs carries the flag surface into runEvictionStudy.
type evictionStudyArgs struct {
	ctx            context.Context
	obs            *runner.Observations
	cache          *runner.Cache
	progress       func(string)
	seed           uint64
	scale          experiments.Scale
	runs, workers  int
	benches, cores []string
	overcommits    []string
	intensities    []string
	churns         []string
	audit          bool
	cellTimeout    time.Duration
	retries        int
	outDir         string
	writeArtifacts func(name string, obs *runner.Observations) error
}

// runEvictionStudy drives the failure-domain study (-study eviction):
// limits:requests overcommit x node-failure chaos intensity on one
// mixed-tenancy node, tabulating per-priority eviction and crash-loop
// restart counts, the backoff distribution, per-class fault tails and
// the HPC victim's interference. Artifacts are flushed even when the
// run was interrupted.
func runEvictionStudy(a evictionStudyArgs) error {
	o := experiments.EvictionStudyOptions{
		Seed: a.seed, Scale: a.scale, Runs: a.runs,
		Workers: a.workers, Context: a.ctx, Progress: a.progress,
		Cache: a.cache, Obs: a.obs, Audit: a.audit,
		CellTimeout: a.cellTimeout, Retries: a.retries,
	}
	if len(a.benches) > 0 {
		o.Bench = a.benches[0]
	}
	if len(a.cores) > 0 {
		v, err := strconv.Atoi(a.cores[0])
		if err != nil {
			return fmt.Errorf("bad -cores entry %q", a.cores[0])
		}
		o.Ranks = v
	}
	for _, s := range a.overcommits {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("bad -overcommits entry %q (want a ratio >= 1)", s)
		}
		o.Overcommits = append(o.Overcommits, v)
	}
	for _, s := range a.intensities {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v > 1 {
			return fmt.Errorf("bad -intensities entry %q (want a number in [0,1])", s)
		}
		o.Chaos = append(o.Chaos, v)
	}
	if len(a.churns) > 0 {
		v, err := strconv.ParseFloat(a.churns[0], 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -churns entry %q (want a rate > 0 in pods/sec)", a.churns[0])
		}
		o.Churn = v
	}
	s, err := experiments.EvictionStudyRun(o)
	if err != nil {
		if aerr := a.writeArtifacts("eviction", a.obs); aerr != nil {
			fmt.Fprintf(os.Stderr, "eviction: flushing partial artifacts: %v\n", aerr)
		}
		return err
	}
	experiments.WriteEvictionStudy(os.Stdout, s)
	if a.outDir != "" {
		if err := os.MkdirAll(a.outDir, 0o755); err != nil {
			return err
		}
		var buf strings.Builder
		if err := experiments.WriteEvictionCSV(&buf, s); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(a.outDir, "eviction.csv"),
			[]byte(buf.String()), 0o644); err != nil {
			return err
		}
	}
	return a.writeArtifacts("eviction", a.obs)
}

// artifactPath splices the experiment name into path when several
// experiments run in one invocation, so later experiments do not
// overwrite earlier artifacts: metrics.txt -> metrics-fig7.txt. Stdout
// ("-") is passed through unchanged.
func artifactPath(path, name string, multi bool) string {
	if path == "-" || !multi {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + name + ext
}

// writeMetricsFile dumps a snapshot: "-" writes text to stdout, a .json
// suffix selects the JSON dump, anything else the Prometheus-style text
// format.
func writeMetricsFile(path string, snap metrics.Snapshot) error {
	write := snap.WriteText
	switch {
	case strings.HasSuffix(path, ".json"):
		write = snap.WriteJSON
	case strings.HasSuffix(path, ".prom"):
		write = snap.WriteOpenMetrics
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile writes the collector's Chrome trace-event JSON.
func writeTraceFile(path string, obs *runner.Observations) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSeriesFile writes the collector's per-cell time-series samples as
// one long-format CSV ("-" = stdout).
func writeSeriesFile(path string, obs *runner.Observations) error {
	if path == "-" {
		return obs.WriteSeriesCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteSeriesCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
