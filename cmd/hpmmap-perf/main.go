// Command hpmmap-perf measures the simulator's own performance — not
// the simulated application's — and emits a machine-readable benchmark
// record (BENCH_5.json by default) that seeds the repository's
// performance trajectory. It runs a reduced Figure 7 grid twice with
// identical seeds: once bare, once with the time-series sampler
// attached (runner.Observations with EnableSeries), and reports
// wall-clock, cells per second, and the sampler's relative overhead.
// The grid runs three times: bare (no instrumentation), observed
// (metrics + trace attached, the PR 2 layer), and sampled (series
// sampler on top). Sampler overhead compares sampled against observed,
// isolating the sampler from the rest of the instrumentation. The
// budget for the sampler is <= 5% (see ISSUE 5 / OBSERVABILITY.md):
// it piggybacks on the scheduler-tick cadence, so its cost is probe
// reads, sample appends and counter-track trace events only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hpmmap/internal/experiments"
	"hpmmap/internal/runner"
)

// record is the BENCH_5.json schema.
type record struct {
	Issue       int     `json:"issue"`
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	Workers     int     `json:"workers"`
	Bench       string  `json:"bench"`
	Scale       float64 `json:"scale"`
	Runs        int     `json:"runs"`
	Cores       []int   `json:"cores"`
	Cells       int     `json:"cells"`

	BareSec            float64 `json:"bare_sec"`
	ObservedSec        float64 `json:"observed_sec"`
	SampledSec         float64 `json:"sampled_sec"`
	CellsPerSec        float64 `json:"cells_per_sec"`
	ObserveOverheadPct float64 `json:"observe_overhead_pct"`
	SamplerOverheadPct float64 `json:"sampler_overhead_pct"`
	SeriesSamples      float64 `json:"series_samples"`
}

func main() {
	out := flag.String("out", "BENCH_5.json", "write the benchmark record to this JSON file")
	scale := flag.Float64("scale", 0.25, "problem/memory scale for the measured grid")
	runs := flag.Int("runs", 2, "repetitions per cell")
	bench := flag.String("bench", "miniMD", "benchmark for the measured grid")
	cores := flag.String("cores", "1,2", "comma-separated core counts")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	flag.Parse()

	var coreCounts []int
	for _, c := range strings.Split(*cores, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -cores entry %q\n", c)
			os.Exit(2)
		}
		coreCounts = append(coreCounts, v)
	}

	opts := func(obs *runner.Observations) experiments.Fig7Options {
		return experiments.Fig7Options{
			Benches:    []string{*bench},
			Profiles:   []experiments.Profile{experiments.ProfileA},
			CoreCounts: coreCounts,
			Runs:       *runs,
			Scale:      experiments.Scale(*scale),
			Workers:    *workers,
			Context:    context.Background(),
			Obs:        obs,
		}
	}
	// Cells: 1 bench x 1 profile x 3 managers x cores x runs.
	cells := 3 * len(coreCounts) * *runs

	measure := func(obs *runner.Observations) time.Duration {
		t0 := time.Now()
		if _, err := experiments.Fig7(opts(obs)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return time.Since(t0)
	}
	bare := measure(nil)
	observed := measure(runner.NewObservations(0))
	obs := runner.NewObservations(0)
	obs.EnableSeries()
	sampled := measure(obs)

	var samples float64
	for _, m := range obs.Merged().Metrics {
		if m.Name == "timeline_samples_total" {
			samples = m.Value
		}
	}

	rec := record{
		Issue:       5,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Workers:     *workers,
		Bench:       *bench,
		Scale:       *scale,
		Runs:        *runs,
		Cores:       coreCounts,
		Cells:       cells,

		BareSec:            bare.Seconds(),
		ObservedSec:        observed.Seconds(),
		SampledSec:         sampled.Seconds(),
		CellsPerSec:        float64(cells) / bare.Seconds(),
		ObserveOverheadPct: 100 * (observed.Seconds() - bare.Seconds()) / bare.Seconds(),
		SamplerOverheadPct: 100 * (sampled.Seconds() - observed.Seconds()) / observed.Seconds(),
		SeriesSamples:      samples,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%d cells: bare %.2fs (%.2f cells/s), observed %.2fs (+%.1f%%), sampled %.2fs (sampler +%.1f%%, %.0f samples) -> %s\n",
		cells, rec.BareSec, rec.CellsPerSec, rec.ObservedSec, rec.ObserveOverheadPct,
		rec.SampledSec, rec.SamplerOverheadPct, samples, *out)
}
