// Command hpmmap-perf measures the simulator's own performance — not
// the simulated application's — and emits a machine-readable benchmark
// record (BENCH_6.json by default) that tracks the repository's
// performance trajectory. It runs a reduced Figure 7 grid four ways
// with identical seeds — bare (no instrumentation), observed (metrics +
// trace attached, the PR 2 layer), sampled (series sampler on top), and
// ledgered (observed plus a run-ledger journal) — and reports
// wall-clock, cells per second, and the relative overheads. Sampler and
// ledger overheads compare against observed, isolating each layer from
// the rest of the instrumentation; their budgets are <= 5% and <= 2%
// respectively (see OBSERVABILITY.md).
//
// Single-run timings on a small CI box are noise-dominated (ISSUE 6:
// BENCH_5.json recorded a *negative* sampler overhead because one run's
// jitter swamped the signal), so each variant is timed -reps times in
// interleaved rounds (bare, observed, sampled, bare, ...) and the
// medians are reported. The record stores the resolved worker count
// (the pool size actually used), not the raw flag value.
//
// -baseline <file> compares the fresh cells/sec against a committed
// record and exits non-zero when throughput regressed more than
// -regress-pct (default 10%) — the `make bench` regression gate that
// keeps speedups pinned rather than anecdotal. A missing baseline, or
// one without a cells/sec figure (a pre-ISSUE-6 schema), is not a
// regression: the run says so, skips the gate, and seeds a fresh
// record for the next invocation to gate against.
//
// -cpuprofile / -memprofile write pprof profiles of the measured grid
// (see EXPERIMENTS.md "Profiling the simulator" for the recipe).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"hpmmap/internal/experiments"
	"hpmmap/internal/ledger"
	"hpmmap/internal/runner"
)

// record is the BENCH_N.json schema.
type record struct {
	Issue       int     `json:"issue"`
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	Workers     int     `json:"workers"` // resolved pool size, not the flag
	Bench       string  `json:"bench"`
	Scale       float64 `json:"scale"`
	Runs        int     `json:"runs"`
	Cores       []int   `json:"cores"`
	Cells       int     `json:"cells"`
	TimingReps  int     `json:"timing_reps"`

	BareSec            float64 `json:"bare_sec"`     // median over reps
	ObservedSec        float64 `json:"observed_sec"` // median over reps
	SampledSec         float64 `json:"sampled_sec"`  // median over reps
	LedgeredSec        float64 `json:"ledgered_sec"` // median over reps
	CellsPerSec        float64 `json:"cells_per_sec"`
	ObserveOverheadPct float64 `json:"observe_overhead_pct"`
	SamplerOverheadPct float64 `json:"sampler_overhead_pct"`
	LedgerOverheadPct  float64 `json:"ledger_overhead_pct"` // ledgered vs bare; budget <= 2%
	SeriesSamples      float64 `json:"series_samples"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	out := flag.String("out", "BENCH_6.json", "write the benchmark record to this JSON file")
	scale := flag.Float64("scale", 0.25, "problem/memory scale for the measured grid")
	runs := flag.Int("runs", 2, "repetitions per cell")
	bench := flag.String("bench", "miniMD", "benchmark for the measured grid")
	cores := flag.String("cores", "1,2", "comma-separated core counts")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	reps := flag.Int("reps", 3, "timing repetitions per variant; medians are reported")
	baseline := flag.String("baseline", "", "compare cells/sec against this committed record and fail on regression")
	regressPct := flag.Float64("regress-pct", 10, "max tolerated cells/sec regression vs -baseline, in percent")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measured grid to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile (after the grid) to this file")
	ledgerOut := flag.String("ledger", "", "append this run's bench record to the given JSONL run ledger (created if missing)")
	flag.Parse()

	var coreCounts []int
	for _, c := range strings.Split(*cores, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -cores entry %q\n", c)
			os.Exit(2)
		}
		coreCounts = append(coreCounts, v)
	}
	if *reps < 1 {
		*reps = 1
	}

	// Read the baseline before measuring: `make bench` points -baseline at
	// the same path as -out, so the committed record must be captured
	// before the fresh one overwrites it. A missing baseline file is not
	// an error — first run on a fresh checkout seeds the record instead.
	var brec record
	haveBaseline := false
	if *baseline != "" {
		base, err := os.ReadFile(*baseline)
		switch {
		case err == nil:
			if err := json.Unmarshal(base, &brec); err != nil {
				fmt.Fprintf(os.Stderr, "hpmmap-perf: parsing baseline %s: %v\n", *baseline, err)
				os.Exit(1)
			}
			haveBaseline = true
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "hpmmap-perf: baseline %s missing; seeding baseline, regression gate skipped this run\n", *baseline)
		default:
			fmt.Fprintf(os.Stderr, "hpmmap-perf: reading baseline: %v\n", err)
			os.Exit(1)
		}
	}
	// A record without a cells/sec figure (zero value, or a schema from
	// before the field existed) must not gate: a comparison against 0
	// reads as an infinite speedup or a meaningless regression. Say why
	// the gate is skipped instead of silently passing.
	if haveBaseline && brec.CellsPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "hpmmap-perf: baseline %s has no cells/sec record; seeding baseline, regression gate skipped this run\n", *baseline)
		haveBaseline = false
	}

	opts := func(obs *runner.Observations) experiments.Fig7Options {
		return experiments.Fig7Options{
			Benches:    []string{*bench},
			Profiles:   []experiments.Profile{experiments.ProfileA},
			CoreCounts: coreCounts,
			Runs:       *runs,
			Scale:      experiments.Scale(*scale),
			Workers:    *workers,
			Context:    context.Background(),
			Obs:        obs,
		}
	}
	// Cells: 1 bench x 1 profile x 3 managers x cores x runs.
	cells := 3 * len(coreCounts) * *runs

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	measure := func(obs *runner.Observations) float64 {
		t0 := time.Now()
		if _, err := experiments.Fig7(opts(obs)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return time.Since(t0).Seconds()
	}

	// Interleaved rounds: one (bare, observed, sampled, ledgered) tuple
	// per rep, so slow machine-level drift hits all variants alike
	// instead of biasing whichever variant ran last.
	ledgerDir, err := os.MkdirTemp("", "hpmmap-perf-ledger")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(ledgerDir)
	var bare, observed, sampled, ledgered []float64
	var samples float64
	for r := 0; r < *reps; r++ {
		bare = append(bare, measure(nil))
		observed = append(observed, measure(runner.NewObservations(0)))
		obs := runner.NewObservations(0)
		obs.EnableSeries()
		sampled = append(sampled, measure(obs))
		if r == 0 {
			for _, m := range obs.Merged().Metrics {
				if m.Name == "timeline_samples_total" {
					samples = m.Value
				}
			}
		}
		// Ledgered: observed plus a run ledger journaling every cell to a
		// throwaway file, isolating the journal's cost from the rest of
		// the instrumentation (compare against observed, like sampler).
		lobs := runner.NewObservations(0)
		l, err := ledger.Open(filepath.Join(ledgerDir, fmt.Sprintf("rep%d.jsonl", r)),
			ledger.Meta{Model: *bench, Scale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lobs.SetLedger(l)
		ledgered = append(ledgered, measure(lobs))
		if err := l.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	resolvedWorkers := *workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.NumCPU()
	}
	bareMed, obsMed, sampMed, ledgMed := median(bare), median(observed), median(sampled), median(ledgered)
	rec := record{
		Issue:       6,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Workers:     resolvedWorkers,
		Bench:       *bench,
		Scale:       *scale,
		Runs:        *runs,
		Cores:       coreCounts,
		Cells:       cells,
		TimingReps:  *reps,

		BareSec:            bareMed,
		ObservedSec:        obsMed,
		SampledSec:         sampMed,
		LedgeredSec:        ledgMed,
		CellsPerSec:        float64(cells) / bareMed,
		ObserveOverheadPct: 100 * (obsMed - bareMed) / bareMed,
		SamplerOverheadPct: 100 * (sampMed - obsMed) / obsMed,
		LedgerOverheadPct:  100 * (ledgMed - obsMed) / obsMed,
		SeriesSamples:      samples,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%d cells x %d reps: bare %.2fs (%.2f cells/s), observed %.2fs (%+.1f%%), sampled %.2fs (sampler %+.1f%%, %.0f samples), ledgered %.2fs (ledger %+.1f%%) -> %s\n",
		cells, *reps, rec.BareSec, rec.CellsPerSec, rec.ObservedSec, rec.ObserveOverheadPct,
		rec.SampledSec, rec.SamplerOverheadPct, samples, rec.LedgeredSec, rec.LedgerOverheadPct, *out)

	if *ledgerOut != "" {
		compact, err := json.Marshal(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		l, err := ledger.OpenAppend(*ledgerOut, ledger.Meta{Model: *bench, Scale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		l.BenchRecord(compact)
		if err := l.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if haveBaseline {
		change := 100 * (rec.CellsPerSec - brec.CellsPerSec) / brec.CellsPerSec
		fmt.Printf("baseline %s: %.2f cells/s -> %.2f cells/s (%+.1f%%)\n",
			*baseline, brec.CellsPerSec, rec.CellsPerSec, change)
		if change < -*regressPct {
			fmt.Fprintf(os.Stderr, "hpmmap-perf: FAIL: cells/sec regressed %.1f%% (budget %.1f%%)\n",
				-change, *regressPct)
			os.Exit(1)
		}
	}
}
