// Command hpmmap-faulttrace runs the per-fault measurement studies behind
// the paper's Figures 2–5: an instrumented benchmark at micro fidelity,
// with and without a competing kernel build, under a chosen memory
// manager. It prints the fault-cost table, renders the timeline scatter,
// and optionally dumps every fault as CSV.
//
// A SIGINT/SIGTERM cancels the study: whatever the completed cells
// observed is flushed to the -metrics/-trace-out/-series artifacts and
// the process exits non-zero (the hpmmap-bench contract).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hpmmap/internal/experiments"
	"hpmmap/internal/fault"
	"hpmmap/internal/runner"
)

func main() {
	bench := flag.String("bench", "miniMD", "benchmark: HPCCG|CoMD|miniMD|miniFE|LAMMPS")
	manager := flag.String("manager", "thp", "memory manager: thp|hugetlbfs")
	ranks := flag.Int("ranks", 8, "application ranks")
	seed := flag.Uint64("seed", 0, "simulation seed")
	scale := flag.Float64("scale", 1.0, "problem/memory scale")
	csvPath := flag.String("csv", "", "write per-fault CSV for the loaded run to this file")
	plotW := flag.Int("plot-width", 100, "scatter width")
	plotH := flag.Int("plot-height", 16, "scatter height")
	noPlot := flag.Bool("no-plot", false, "skip the timeline scatter")
	hist := flag.String("hist", "", "also print a cost histogram for this fault kind (small|large|merge|hugetlb-large|hugetlb-small)")
	metricsOut := flag.String("metrics", "", `write the study's merged metric snapshot to this file ("-" = stdout; .json = JSON, else text)`)
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON for both runs to this file")
	seriesOut := flag.String("series", "", "write per-cell time-series samples as CSV to this file")
	flag.Parse()

	var kind experiments.ManagerKind
	switch *manager {
	case "thp":
		kind = experiments.THP
	case "hugetlbfs":
		kind = experiments.HugeTLBfs
	default:
		fmt.Fprintf(os.Stderr, "unknown manager %q (hpmmap takes no faults — nothing to trace)\n", *manager)
		os.Exit(2)
	}

	var obs *runner.Observations
	if *metricsOut != "" || *traceOut != "" || *seriesOut != "" {
		obs = runner.NewObservations(0)
		if *seriesOut != "" {
			obs.EnableSeries()
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fs, err := experiments.RunFaultStudy(experiments.FaultStudyOptions{
		Bench:   *bench,
		Kind:    kind,
		Ranks:   *ranks,
		Seed:    *seed,
		Scale:   experiments.Scale(*scale),
		Obs:     obs,
		Context: ctx,
	})
	if err != nil {
		// Interrupted or failed: flush whatever the completed cells
		// observed before exiting non-zero.
		writeArtifacts(obs, *metricsOut, *traceOut, *seriesOut)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiments.WriteFaultStudy(os.Stdout, fs)
	writeArtifacts(obs, *metricsOut, *traceOut, *seriesOut)

	if !*noPlot {
		for _, row := range fs.Rows {
			label := "no competition"
			if row.Loaded {
				label = "with kernel-build competition"
			}
			fmt.Printf("\n--- %s, %s (%d faults) ---\n", *bench, label, row.Recorder.Len())
			fmt.Print(row.Recorder.Scatter(*plotW, *plotH, true))
		}
	}

	if *hist != "" {
		kindOf := map[string]fault.Kind{
			"small": fault.KindSmall, "large": fault.KindLarge, "merge": fault.KindMergeBlocked,
			"hugetlb-large": fault.KindHugeTLBLarge, "hugetlb-small": fault.KindHugeTLBSmall,
		}
		k, ok := kindOf[*hist]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown fault kind %q\n", *hist)
			os.Exit(2)
		}
		for _, row := range fs.Rows {
			label := "no competition"
			if row.Loaded {
				label = "with competition"
			}
			fmt.Printf("\n--- %s ---\n%s", label, row.Recorder.Histogram(k, 14, 60))
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		for _, row := range fs.Rows {
			if row.Loaded {
				if err := row.Recorder.WriteCSV(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

// writeArtifacts flushes the study's observability outputs: the merged
// metric snapshot (text, or JSON for .json paths; "-" = stdout), the
// Chrome trace and the time-series CSV. No-op per artifact whose flag
// was empty; nil obs means none were requested.
func writeArtifacts(obs *runner.Observations, metricsOut, traceOut, seriesOut string) {
	if obs == nil {
		return
	}
	emit := func(path string, write func(*os.File) error) {
		if path == "" {
			return
		}
		if path == "-" {
			if err := write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	emit(metricsOut, func(f *os.File) error {
		snap := obs.Merged()
		if strings.HasSuffix(metricsOut, ".json") {
			return snap.WriteJSON(f)
		}
		return snap.WriteText(f)
	})
	emit(traceOut, func(f *os.File) error { return obs.WriteTrace(f) })
	emit(seriesOut, func(f *os.File) error { return obs.WriteSeriesCSV(f) })
}
