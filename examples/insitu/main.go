// Insitu: the paper's motivating scenario — a simulation sharing its node
// with an in-situ analytics/visualization pipeline that periodically
// ingests multi-GB snapshots. Compares how each memory manager holds up
// when the commodity side pulses instead of churning steadily.
package main

import (
	"flag"
	"fmt"
	"log"

	"hpmmap"
	"hpmmap/internal/experiments"
	"hpmmap/internal/kernel"
	"hpmmap/internal/workload"
)

func main() {
	bench := flag.String("bench", "HPCCG", "simulation benchmark")
	ranks := flag.Int("ranks", 8, "simulation ranks")
	scale := flag.Float64("scale", 1.0, "problem scale")
	flag.Parse()

	fmt.Printf("%s (%d ranks) co-located with an in-situ viz pipeline\n\n", *bench, *ranks)
	fmt.Printf("%-18s %12s %14s %10s\n", "manager", "runtime (s)", "app faults", "stalls")

	for _, m := range []hpmmap.Manager{hpmmap.ManagerHPMMAP, hpmmap.ManagerTHP, hpmmap.ManagerHugeTLBfs} {
		rt, faults, stalls, err := run(*bench, m, *ranks, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.1f %14d %10d\n", string(m), rt, faults, stalls)
	}
	fmt.Println("\nThe analytics pulses saturate bandwidth for everyone, but only the")
	fmt.Println("Linux-managed applications also pay for them in the fault path.")
}

// run executes one co-located run using the internal harness directly (the
// examples live in this module, so scenarios the facade does not package
// up can reach the experiment layer).
func run(bench string, m hpmmap.Manager, ranks int, scale float64) (float64, uint64, uint64, error) {
	spec, ok := workload.ByName(bench)
	if !ok {
		return 0, 0, 0, fmt.Errorf("unknown benchmark %q", bench)
	}
	kind := experiments.HPMMAP
	switch m {
	case hpmmap.ManagerTHP:
		kind = experiments.THP
	case hpmmap.ManagerHugeTLBfs:
		kind = experiments.HugeTLBfs
	}
	out, err := experiments.ExecuteSingleNodeWith(experiments.SingleRun{
		Bench: spec, Kind: kind, Ranks: ranks, Seed: 99,
		Scale: experiments.Scale(scale),
	}, func(node *kernel.Node) func() {
		a := workload.StartAnalytics(node, workload.VizPipeline(), 7)
		return a.Stop
	})
	if err != nil {
		return 0, 0, 0, err
	}
	var faults, stalls uint64
	for _, rr := range out.Result.Ranks {
		faults += rr.Faults.TotalFaults()
		stalls += rr.Faults.Stalls
	}
	return out.RuntimeSec, faults, stalls, nil
}
