// Faultstudy: reproduce the paper's fault-cost measurements (Figures 2-3)
// through the public API: run miniMD at micro fidelity under THP and
// HugeTLBfs, with and without a kernel build, and print the per-kind
// fault statistics plus a timeline scatter.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"hpmmap"
)

func main() {
	bench := flag.String("bench", "miniMD", "benchmark")
	scale := flag.Float64("scale", 1.0, "problem scale (0.25 for a quick look)")
	flag.Parse()

	for _, m := range []hpmmap.Manager{hpmmap.ManagerTHP, hpmmap.ManagerHugeTLBfs} {
		fmt.Printf("=== %s under %s ===\n", *bench, m)
		rows, err := hpmmap.RunFaultStudy(*bench, m, 7, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-16s %10s %14s %14s\n", "load", "kind", "count", "avg cycles", "stdev")
		for _, row := range rows {
			load := "no"
			if row.Loaded {
				load = "yes"
			}
			var kinds []string
			for k := range row.Kinds {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				s := row.Kinds[k]
				fmt.Printf("%-6s %-16s %10d %14.0f %14.0f\n", load, k, s.Count, s.AvgCycles, s.StdevCycles)
				load = ""
			}
		}
		fmt.Println()
	}

	fmt.Println("=== fault timeline, miniMD under THP with competition ===")
	plot, err := hpmmap.Timeline(*bench, hpmmap.ManagerTHP, true, 7, *scale, 90, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plot)
}
