// Quickstart: boot a simulated node with the HPMMAP module loaded, launch
// a registered HPC process and an ordinary commodity process, and watch
// the difference between on-request allocation (zero faults, all 2MB
// pages) and Linux demand paging.
package main

import (
	"fmt"
	"log"

	"hpmmap"
)

func main() {
	sys, err := hpmmap.New(hpmmap.Config{Manager: hpmmap.ManagerHPMMAP, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node up: %d GB visible to Linux, %d GB in the HPMMAP pool\n\n",
		sys.FreeMemory()>>30, sys.PoolFree()>>30)

	// A registered HPC process: every memory system call is interposed.
	hpc, err := sys.LaunchHPC("solver")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launched %q (pid %d), managed by %q\n", "solver", hpc.PID(), hpc.ManagedBy())

	addr, cost, err := hpc.Mmap(1 << 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mmap(1GB): backed eagerly in %d simulated cycles\n", cost)

	rep, err := hpc.Touch(addr, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first touch of the full GB: %d page faults (on-request allocation)\n", rep.Faults)
	fmt.Printf("large-page fraction of resident set: %.0f%%\n\n", 100*hpc.LargePageFraction())

	// An unregistered commodity process demand-pages through Linux THP.
	com, err := sys.LaunchCommodity("postprocessor")
	if err != nil {
		log.Fatal(err)
	}
	caddr, _, err := com.Mmap(1 << 30)
	if err != nil {
		log.Fatal(err)
	}
	crep, err := com.Touch(caddr, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the commodity process touching 1GB: %d faults (%d THP large, %d small)\n",
		crep.Faults, crep.ByKind["large"], crep.ByKind["small"])

	hpc.Exit()
	com.Exit()
	fmt.Printf("\nafter exit, pool restored: %d GB free\n", sys.PoolFree()>>30)
}
