// Consolidation: the paper's core scenario — an HPC application sharing a
// node with parallel kernel builds. Runs miniFE at 8 ranks under each
// memory manager with commodity profile B (two kernel builds) and
// compares runtimes, fault counts and consistency.
package main

import (
	"flag"
	"fmt"
	"log"

	"hpmmap"
)

func main() {
	bench := flag.String("bench", "miniFE", "benchmark to run")
	ranks := flag.Int("ranks", 8, "application ranks")
	profile := flag.String("profile", "B", "commodity profile: none|A|B")
	runs := flag.Int("runs", 3, "repetitions per manager")
	scale := flag.Float64("scale", 1.0, "problem scale (use 0.25 for a quick look)")
	flag.Parse()

	fmt.Printf("%s, %d ranks, commodity profile %s, %d runs per manager\n\n",
		*bench, *ranks, *profile, *runs)
	fmt.Printf("%-18s %12s %12s %14s %10s\n", "manager", "mean (s)", "stdev (s)", "faults/run", "stalls")

	for _, m := range []hpmmap.Manager{hpmmap.ManagerHPMMAP, hpmmap.ManagerTHP, hpmmap.ManagerHugeTLBfs} {
		var sum, sumsq float64
		var faults, stalls uint64
		for r := 0; r < *runs; r++ {
			res, err := hpmmap.RunBenchmark(hpmmap.BenchmarkOptions{
				Benchmark: *bench,
				Manager:   m,
				Profile:   *profile,
				Ranks:     *ranks,
				Seed:      uint64(1000 + r),
				Scale:     *scale,
			})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.RuntimeSeconds
			sumsq += res.RuntimeSeconds * res.RuntimeSeconds
			faults += res.Faults.Faults
			stalls += res.Faults.Stalls
		}
		n := float64(*runs)
		mean := sum / n
		variance := sumsq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		fmt.Printf("%-18s %12.1f %12.2f %14d %10d\n",
			string(m), mean, sqrt(variance), faults/uint64(*runs), stalls/uint64(*runs))
	}
	fmt.Println("\nHPMMAP isolates the application from the builds: no faults, no")
	fmt.Println("reclaim stalls, and run-to-run variance close to zero.")
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}
