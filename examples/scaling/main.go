// Scaling: the paper's multi-node study — a weak-scaled application on
// the 8-node gigabit-Ethernet cluster model, 4 ranks per node, with a
// kernel build competing on every node. Shows how single-node memory
// noise amplifies through bulk-synchronous execution as ranks grow.
package main

import (
	"flag"
	"fmt"
	"log"

	"hpmmap"
)

func main() {
	bench := flag.String("bench", "HPCCG", "benchmark: HPCCG|miniFE|LAMMPS")
	profile := flag.String("profile", "C", "per-node commodity profile: C|D")
	scale := flag.Float64("scale", 1.0, "problem scale")
	flag.Parse()

	fmt.Printf("%s on 1-8 nodes (4 ranks/node, 1GbE), per-node profile %s\n\n", *bench, *profile)
	fmt.Printf("%6s %8s %16s %16s %12s\n", "ranks", "nodes", "HPMMAP (s)", "Linux THP (s)", "HPMMAP wins")

	for _, ranks := range []int{4, 8, 16, 32} {
		times := map[hpmmap.Manager]float64{}
		for _, m := range []hpmmap.Manager{hpmmap.ManagerHPMMAP, hpmmap.ManagerTHP} {
			res, err := hpmmap.RunClusterBenchmark(hpmmap.BenchmarkOptions{
				Benchmark: *bench,
				Manager:   m,
				Profile:   *profile,
				Ranks:     ranks,
				Seed:      77,
				Scale:     *scale,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[m] = res.RuntimeSeconds
		}
		hp, th := times[hpmmap.ManagerHPMMAP], times[hpmmap.ManagerTHP]
		fmt.Printf("%6d %8d %16.1f %16.1f %+11.1f%%\n",
			ranks, (ranks+3)/4, hp, th, 100*(th-hp)/th)
	}
	fmt.Println("\nThe 1->2 node step pays the gigabit network; after that, the gap")
	fmt.Println("between the managers widens as per-node noise compounds at scale.")
}
