package hpmmap

import (
	"fmt"

	"hpmmap/internal/experiments"
	"hpmmap/internal/trace"
	"hpmmap/internal/workload"
)

// BenchmarkOptions configures one measured application run, mirroring the
// paper's experimental setup.
type BenchmarkOptions struct {
	// Benchmark: "HPCCG", "CoMD", "miniMD", "miniFE" or "LAMMPS".
	Benchmark string
	// Manager configuration (default ManagerHPMMAP).
	Manager Manager
	// Profile of competing commodity work: "none", "A", "B" (single
	// node), "C", "D" (cluster). Default "none".
	Profile string
	// Ranks of the weak-scaled MPI application.
	Ranks int
	Seed  uint64
	// Scale shrinks the problem and machine together for quick runs
	// (1.0 = paper size).
	Scale float64
}

// BenchmarkResult reports a completed run.
type BenchmarkResult struct {
	RuntimeSeconds float64
	// Faults aggregates all ranks.
	Faults FaultReport
	// MeanPressure is the time-averaged memory pressure during the run.
	MeanPressure float64
}

func managerKind(m Manager) (experiments.ManagerKind, error) {
	switch m {
	case "", ManagerHPMMAP:
		return experiments.HPMMAP, nil
	case ManagerTHP:
		return experiments.THP, nil
	case ManagerHugeTLBfs:
		return experiments.HugeTLBfs, nil
	}
	return 0, fmt.Errorf("hpmmap: unknown manager %q", m)
}

func profileOf(p string) (experiments.Profile, error) {
	switch p {
	case "", "none":
		return experiments.ProfileNone, nil
	case "A", "a":
		return experiments.ProfileA, nil
	case "B", "b":
		return experiments.ProfileB, nil
	case "C", "c":
		return experiments.ProfileC, nil
	case "D", "d":
		return experiments.ProfileD, nil
	}
	return 0, fmt.Errorf("hpmmap: unknown profile %q", p)
}

// RunBenchmark executes one single-node benchmark run (a cell of the
// paper's Figure 7).
func RunBenchmark(o BenchmarkOptions) (BenchmarkResult, error) {
	spec, ok := workload.ByName(o.Benchmark)
	if !ok {
		return BenchmarkResult{}, fmt.Errorf("hpmmap: unknown benchmark %q", o.Benchmark)
	}
	kind, err := managerKind(o.Manager)
	if err != nil {
		return BenchmarkResult{}, err
	}
	prof, err := profileOf(o.Profile)
	if err != nil {
		return BenchmarkResult{}, err
	}
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	out, err := experiments.ExecuteSingleNode(experiments.SingleRun{
		Bench:   spec,
		Kind:    kind,
		Profile: prof,
		Ranks:   o.Ranks,
		Seed:    o.Seed,
		Scale:   experiments.Scale(o.Scale),
	})
	if err != nil {
		return BenchmarkResult{}, err
	}
	res := BenchmarkResult{RuntimeSeconds: out.RuntimeSec, MeanPressure: out.MeanPressure}
	for _, rr := range out.Result.Ranks {
		r := reportOf(rr.Faults)
		res.Faults.Faults += r.Faults
		res.Faults.Cycles += r.Cycles
		res.Faults.Stalls += r.Stalls
	}
	return res, nil
}

// RunClusterBenchmark executes one multi-node run (a cell of Figure 8):
// 4 ranks per node on the 8-node Sandia testbed model.
func RunClusterBenchmark(o BenchmarkOptions) (BenchmarkResult, error) {
	spec, ok := workload.ByName(o.Benchmark)
	if !ok {
		return BenchmarkResult{}, fmt.Errorf("hpmmap: unknown benchmark %q", o.Benchmark)
	}
	kind, err := managerKind(o.Manager)
	if err != nil {
		return BenchmarkResult{}, err
	}
	prof, err := profileOf(o.Profile)
	if err != nil {
		return BenchmarkResult{}, err
	}
	out, err := experiments.ExecuteCluster(experiments.ClusterRun{
		Bench:   spec,
		Kind:    kind,
		Profile: prof,
		Ranks:   o.Ranks,
		Seed:    o.Seed,
		Scale:   experiments.Scale(o.Scale),
	})
	if err != nil {
		return BenchmarkResult{}, err
	}
	res := BenchmarkResult{RuntimeSeconds: out.RuntimeSec}
	for _, rr := range out.Result.Ranks {
		r := reportOf(rr.Faults)
		res.Faults.Faults += r.Faults
		res.Faults.Cycles += r.Cycles
	}
	return res, nil
}

// FaultStudyRow is one load condition of a fault-cost study.
type FaultStudyRow struct {
	Loaded bool
	// Kinds maps fault-kind name to (count, avg cycles, stdev cycles).
	Kinds map[string]FaultKindStats
}

// FaultKindStats summarizes one fault kind.
type FaultKindStats struct {
	Count       uint64
	AvgCycles   float64
	StdevCycles float64
}

// RunFaultStudy reproduces the per-fault measurement of the paper's
// Figures 2 and 3 for the given manager, with and without a competing
// kernel build.
func RunFaultStudy(benchmark string, m Manager, seed uint64, scale float64) ([]FaultStudyRow, error) {
	kind, err := managerKind(m)
	if err != nil {
		return nil, err
	}
	fs, err := experiments.RunFaultStudy(experiments.FaultStudyOptions{
		Bench: benchmark,
		Kind:  kind,
		Seed:  seed,
		Scale: experiments.Scale(scale),
	})
	if err != nil {
		return nil, err
	}
	var rows []FaultStudyRow
	for _, row := range fs.Rows {
		r := FaultStudyRow{Loaded: row.Loaded, Kinds: map[string]FaultKindStats{}}
		for _, s := range row.Summaries {
			r.Kinds[s.Kind.String()] = FaultKindStats{Count: s.Count, AvgCycles: s.AvgCycles, StdevCycles: s.StdevCycles}
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Timeline returns the ASCII fault-timeline scatter for a benchmark under
// a manager (the paper's Figures 4–5 medium).
func Timeline(benchmark string, m Manager, loaded bool, seed uint64, scale float64, width, height int) (string, error) {
	kind, err := managerKind(m)
	if err != nil {
		return "", err
	}
	fs, err := experiments.RunFaultStudy(experiments.FaultStudyOptions{
		Bench: benchmark,
		Kind:  kind,
		Seed:  seed,
		Scale: experiments.Scale(scale),
	})
	if err != nil {
		return "", err
	}
	var rec *trace.Recorder
	for _, row := range fs.Rows {
		if row.Loaded == loaded {
			rec = row.Recorder
		}
	}
	if rec == nil {
		return "", fmt.Errorf("hpmmap: no matching study row")
	}
	return rec.Scatter(width, height, true), nil
}
