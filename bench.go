package hpmmap

import (
	"context"
	"fmt"

	"hpmmap/internal/experiments"
	"hpmmap/internal/runner"
	"hpmmap/internal/trace"
	"hpmmap/internal/workload"
)

// BenchmarkOptions configures one measured application run, mirroring the
// paper's experimental setup.
type BenchmarkOptions struct {
	// Benchmark: "HPCCG", "CoMD", "miniMD", "miniFE" or "LAMMPS".
	Benchmark string
	// Manager configuration (default ManagerHPMMAP).
	Manager Manager
	// Profile of competing commodity work: "none", "A", "B" (single
	// node), "C", "D" (cluster). Default "none".
	Profile string
	// Ranks of the weak-scaled MPI application.
	Ranks int
	Seed  uint64
	// Scale shrinks the problem and machine together for quick runs
	// (1.0 = paper size).
	Scale float64
	// Workers bounds the experiment runner's worker pool. A single
	// benchmark run is one cell, so this matters only for grid-shaped
	// consumers; it is passed through to the executor unchanged.
	Workers int
	// Context, when non-nil, cancels the simulation mid-run (polled
	// every few tens of thousands of simulated events).
	Context context.Context
}

// BenchmarkResult reports a completed run.
type BenchmarkResult struct {
	RuntimeSeconds float64
	// Faults aggregates all ranks.
	Faults FaultReport
	// MeanPressure is the time-averaged memory pressure during the run.
	MeanPressure float64
}

func managerKind(m Manager) (experiments.ManagerKind, error) {
	switch m {
	case "", ManagerHPMMAP:
		return experiments.HPMMAP, nil
	case ManagerTHP:
		return experiments.THP, nil
	case ManagerHugeTLBfs:
		return experiments.HugeTLBfs, nil
	}
	return 0, fmt.Errorf("hpmmap: unknown manager %q", m)
}

func profileOf(p string) (experiments.Profile, error) {
	switch p {
	case "", "none":
		return experiments.ProfileNone, nil
	case "A", "a":
		return experiments.ProfileA, nil
	case "B", "b":
		return experiments.ProfileB, nil
	case "C", "c":
		return experiments.ProfileC, nil
	case "D", "d":
		return experiments.ProfileD, nil
	}
	return 0, fmt.Errorf("hpmmap: unknown profile %q", p)
}

// benchCell routes one facade benchmark run through the experiment
// runner: a single-cell plan on the bounded executor, so the facade gets
// the same context cancellation, panic containment and seed derivation
// as the figure harnesses.
func benchCell(o BenchmarkOptions, exp string,
	exec func(ctx context.Context, seed uint64) (experiments.RunOutcome, error)) (experiments.RunOutcome, error) {
	kind, err := managerKind(o.Manager)
	if err != nil {
		return experiments.RunOutcome{}, err
	}
	prof, err := profileOf(o.Profile)
	if err != nil {
		return experiments.RunOutcome{}, err
	}
	plan := runner.Plan{Name: exp, Seed: o.Seed, Cells: []runner.Cell{{
		Exp: exp, Bench: o.Benchmark, Profile: prof.String(),
		Manager: kind.Key(), Cores: o.Ranks,
	}}}
	outs, err := runner.Run(runner.Options{Workers: o.Workers, Context: o.Context}, plan,
		func(ctx context.Context, _ int, _ runner.Cell, seed uint64) (experiments.RunOutcome, error) {
			return exec(ctx, seed)
		})
	if err != nil {
		return experiments.RunOutcome{}, err
	}
	return outs[0], nil
}

// RunBenchmark executes one single-node benchmark run (a cell of the
// paper's Figure 7). The run executes through the experiment runner:
// Seed opens the cell's deterministic substream (same options, same
// result) and Context/Workers are passed through to the executor.
func RunBenchmark(o BenchmarkOptions) (BenchmarkResult, error) {
	spec, ok := workload.ByName(o.Benchmark)
	if !ok {
		return BenchmarkResult{}, fmt.Errorf("hpmmap: unknown benchmark %q", o.Benchmark)
	}
	kind, err := managerKind(o.Manager)
	if err != nil {
		return BenchmarkResult{}, err
	}
	prof, err := profileOf(o.Profile)
	if err != nil {
		return BenchmarkResult{}, err
	}
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	out, err := benchCell(o, "bench", func(ctx context.Context, seed uint64) (experiments.RunOutcome, error) {
		return experiments.ExecuteSingleNode(experiments.SingleRun{
			Bench:   spec,
			Kind:    kind,
			Profile: prof,
			Ranks:   o.Ranks,
			Seed:    seed,
			Scale:   experiments.Scale(o.Scale),
			Context: ctx,
		})
	})
	if err != nil {
		return BenchmarkResult{}, err
	}
	res := BenchmarkResult{RuntimeSeconds: out.RuntimeSec, MeanPressure: out.MeanPressure}
	for _, rr := range out.Result.Ranks {
		r := reportOf(rr.Faults)
		res.Faults.Faults += r.Faults
		res.Faults.Cycles += r.Cycles
		res.Faults.Stalls += r.Stalls
	}
	return res, nil
}

// RunClusterBenchmark executes one multi-node run (a cell of Figure 8):
// 4 ranks per node on the 8-node Sandia testbed model. Like RunBenchmark
// it executes through the experiment runner.
func RunClusterBenchmark(o BenchmarkOptions) (BenchmarkResult, error) {
	spec, ok := workload.ByName(o.Benchmark)
	if !ok {
		return BenchmarkResult{}, fmt.Errorf("hpmmap: unknown benchmark %q", o.Benchmark)
	}
	kind, err := managerKind(o.Manager)
	if err != nil {
		return BenchmarkResult{}, err
	}
	prof, err := profileOf(o.Profile)
	if err != nil {
		return BenchmarkResult{}, err
	}
	out, err := benchCell(o, "cluster", func(ctx context.Context, seed uint64) (experiments.RunOutcome, error) {
		return experiments.ExecuteCluster(experiments.ClusterRun{
			Bench:   spec,
			Kind:    kind,
			Profile: prof,
			Ranks:   o.Ranks,
			Seed:    seed,
			Scale:   experiments.Scale(o.Scale),
			Context: ctx,
		})
	})
	if err != nil {
		return BenchmarkResult{}, err
	}
	res := BenchmarkResult{RuntimeSeconds: out.RuntimeSec}
	for _, rr := range out.Result.Ranks {
		r := reportOf(rr.Faults)
		res.Faults.Faults += r.Faults
		res.Faults.Cycles += r.Cycles
	}
	return res, nil
}

// FaultStudyRow is one load condition of a fault-cost study.
type FaultStudyRow struct {
	Loaded bool
	// Kinds maps fault-kind name to (count, avg cycles, stdev cycles).
	Kinds map[string]FaultKindStats
}

// FaultKindStats summarizes one fault kind.
type FaultKindStats struct {
	Count       uint64
	AvgCycles   float64
	StdevCycles float64
}

// RunFaultStudy reproduces the per-fault measurement of the paper's
// Figures 2 and 3 for the given manager, with and without a competing
// kernel build. It is shorthand for RunFaultStudyOptions with only the
// core knobs set.
func RunFaultStudy(benchmark string, m Manager, seed uint64, scale float64) ([]FaultStudyRow, error) {
	return RunFaultStudyOptions(BenchmarkOptions{
		Benchmark: benchmark, Manager: m, Seed: seed, Scale: scale,
	})
}

// RunFaultStudyOptions is RunFaultStudy with full executor control: the
// study's load conditions run as cells of an internal/runner plan, so
// Workers bounds the worker pool (<= 0 selects runtime.NumCPU(); results
// are identical at any worker count) and Context cancels the study
// mid-simulation. Ranks defaults to the paper's 8.
func RunFaultStudyOptions(o BenchmarkOptions) ([]FaultStudyRow, error) {
	kind, err := managerKind(o.Manager)
	if err != nil {
		return nil, err
	}
	fs, err := experiments.RunFaultStudy(experiments.FaultStudyOptions{
		Bench:   o.Benchmark,
		Kind:    kind,
		Ranks:   o.Ranks,
		Seed:    o.Seed,
		Scale:   experiments.Scale(o.Scale),
		Workers: o.Workers,
		Context: o.Context,
	})
	if err != nil {
		return nil, err
	}
	var rows []FaultStudyRow
	for _, row := range fs.Rows {
		r := FaultStudyRow{Loaded: row.Loaded, Kinds: map[string]FaultKindStats{}}
		for _, s := range row.Summaries {
			r.Kinds[s.Kind.String()] = FaultKindStats{Count: s.Count, AvgCycles: s.AvgCycles, StdevCycles: s.StdevCycles}
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Timeline returns the ASCII fault-timeline scatter for a benchmark under
// a manager (the paper's Figures 4–5 medium).
func Timeline(benchmark string, m Manager, loaded bool, seed uint64, scale float64, width, height int) (string, error) {
	kind, err := managerKind(m)
	if err != nil {
		return "", err
	}
	fs, err := experiments.RunFaultStudy(experiments.FaultStudyOptions{
		Bench: benchmark,
		Kind:  kind,
		Seed:  seed,
		Scale: experiments.Scale(scale),
	})
	if err != nil {
		return "", err
	}
	var rec *trace.Recorder
	for _, row := range fs.Rows {
		if row.Loaded == loaded {
			rec = row.Recorder
		}
	}
	if rec == nil {
		return "", fmt.Errorf("hpmmap: no matching study row")
	}
	return rec.Scatter(width, height, true), nil
}
