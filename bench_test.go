package hpmmap

// One benchmark per table and figure in the paper's evaluation. Each
// regenerates its artifact through the experiment harness and reports the
// headline quantities as custom metrics, so `go test -bench .` produces a
// machine-readable reproduction summary. Absolute numbers come from the
// simulator's calibrated cost model; the shapes (who wins, by what
// factor, where the crossovers fall) are the reproduction targets — see
// EXPERIMENTS.md for paper-versus-measured.

import (
	"fmt"
	"testing"

	"hpmmap/internal/experiments"
	"hpmmap/internal/fault"
	"hpmmap/internal/workload"
)

// BenchmarkFig2THPFaults regenerates Figure 2: THP fault-handling cycles
// for miniMD with and without a competing kernel build.
func BenchmarkFig2THPFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := experiments.Fig2(experiments.FaultStudyOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		report := func(row experiments.FaultStudyRow, suffix string) {
			if s, ok := experiments.SummaryFor(row, fault.KindSmall); ok {
				b.ReportMetric(s.AvgCycles, "small-cyc"+suffix)
			}
			if s, ok := experiments.SummaryFor(row, fault.KindLarge); ok {
				b.ReportMetric(s.AvgCycles, "large-cyc"+suffix)
			}
			if s, ok := experiments.SummaryFor(row, fault.KindMergeBlocked); ok {
				b.ReportMetric(s.AvgCycles, "merge-cyc"+suffix)
			}
		}
		report(fs.Rows[0], "")
		report(fs.Rows[1], "-loaded")
	}
}

// BenchmarkFig3HugeTLBFaults regenerates Figure 3: HugeTLBfs fault costs.
func BenchmarkFig3HugeTLBFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := experiments.Fig3(experiments.FaultStudyOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if s, ok := experiments.SummaryFor(fs.Rows[0], fault.KindHugeTLBLarge); ok {
			b.ReportMetric(s.AvgCycles, "hugetlb-large-cyc")
		}
		if s, ok := experiments.SummaryFor(fs.Rows[1], fault.KindHugeTLBSmall); ok {
			b.ReportMetric(s.AvgCycles, "hugetlb-small-cyc-loaded")
			b.ReportMetric(s.StdevCycles, "hugetlb-small-stdev-loaded")
		}
	}
}

// BenchmarkFig4THPTimeline regenerates Figure 4: the THP fault timeline
// for miniMD (four panels), reporting the fault population sizes.
func BenchmarkFig4THPTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tls, err := experiments.Fig4(experiments.FaultStudyOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tls[0].Recorder.Len()), "faults-noload")
		b.ReportMetric(float64(tls[1].Recorder.Len()), "faults-loaded")
	}
}

// BenchmarkFig5HugeTLBTimeline regenerates Figure 5: HugeTLBfs fault
// timelines for HPCCG, CoMD and miniFE with and without competition.
func BenchmarkFig5HugeTLBTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tls, err := experiments.Fig5(experiments.FaultStudyOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, tl := range tls {
			total += float64(tl.Recorder.Len())
		}
		b.ReportMetric(total/float64(len(tls)), "faults-per-panel")
	}
}

// fig7Cell runs one Figure 7 cell (bench, profile, manager, 8 cores).
func fig7Cell(b *testing.B, bench string, prof experiments.Profile, kind experiments.ManagerKind, seed uint64) float64 {
	b.Helper()
	spec, ok := workload.ByName(bench)
	if !ok {
		b.Fatalf("unknown bench %q", bench)
	}
	out, err := experiments.ExecuteSingleNode(experiments.SingleRun{
		Bench: spec, Kind: kind, Profile: prof, Ranks: 8, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return out.RuntimeSec
}

// BenchmarkFig7SingleNode regenerates the 8-core column of every Figure 7
// panel: four benchmarks x two commodity profiles x three managers.
func BenchmarkFig7SingleNode(b *testing.B) {
	for _, bench := range []string{"HPCCG", "CoMD", "miniMD", "miniFE"} {
		for _, prof := range []experiments.Profile{experiments.ProfileA, experiments.ProfileB} {
			b.Run(fmt.Sprintf("%s/profile%s", bench, prof), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					seed := uint64(i)*3 + 101
					hp := fig7Cell(b, bench, prof, experiments.HPMMAP, seed)
					th := fig7Cell(b, bench, prof, experiments.THP, seed+1)
					ht := fig7Cell(b, bench, prof, experiments.HugeTLBfs, seed+2)
					b.ReportMetric(hp, "hpmmap-sec")
					b.ReportMetric(th, "thp-sec")
					b.ReportMetric(ht, "hugetlbfs-sec")
					b.ReportMetric(100*(th-hp)/th, "vs-thp-%")
					b.ReportMetric(100*(ht-hp)/ht, "vs-hugetlbfs-%")
				}
			})
		}
	}
}

// BenchmarkFig8Scaling regenerates the 32-rank column of Figure 8: three
// benchmarks x two per-node profiles, HPMMAP versus THP on 8 nodes.
func BenchmarkFig8Scaling(b *testing.B) {
	for _, bench := range []string{"HPCCG", "miniFE", "LAMMPS"} {
		for _, prof := range []experiments.Profile{experiments.ProfileC, experiments.ProfileD} {
			b.Run(fmt.Sprintf("%s/profile%s", bench, prof), func(b *testing.B) {
				base, _ := workload.ByName(bench)
				spec := base.ScaleWork(clusterFactor(bench))
				for i := 0; i < b.N; i++ {
					seed := uint64(i)*5 + 301
					run := func(kind experiments.ManagerKind, s uint64) float64 {
						out, err := experiments.ExecuteCluster(experiments.ClusterRun{
							Bench: spec, Kind: kind, Profile: prof, Ranks: 32, Seed: s,
						})
						if err != nil {
							b.Fatal(err)
						}
						return out.RuntimeSec
					}
					hp := run(experiments.HPMMAP, seed)
					th := run(experiments.THP, seed+1)
					b.ReportMetric(hp, "hpmmap-sec")
					b.ReportMetric(th, "thp-sec")
					b.ReportMetric(100*(th-hp)/th, "vs-thp-%")
				}
			})
		}
	}
}

func clusterFactor(bench string) float64 {
	switch bench {
	case "HPCCG":
		return 3.3
	case "miniFE":
		return 3.2
	case "LAMMPS":
		return 1.55
	}
	return 3.0
}

// BenchmarkAblationEagerMapping isolates HPMMAP's on-request allocation
// cost: the one place the lightweight design pays up front.
func BenchmarkAblationEagerMapping(b *testing.B) {
	sys, err := New(Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.LaunchHPC("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		addr, cost, err := p.Mmap(64 << 20)
		if err != nil {
			b.Fatal(err)
		}
		cycles += cost
		if err := p.Munmap(addr, 64<<20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/map64MB")
}

// BenchmarkAblationDemandPaging is the Linux counterpart: mmap is nearly
// free but the touch pays the fault path.
func BenchmarkAblationDemandPaging(b *testing.B) {
	sys, err := New(Config{Manager: ManagerTHP, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.LaunchHPC("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		addr, _, err := p.Mmap(64 << 20)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := p.Touch(addr, 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		cycles += rep.Cycles
		if err := p.Munmap(addr, 64<<20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/fault64MB")
}

// BenchmarkAblation1GPages compares HPMMAP's default 2MB mapping against
// the optional 1GB page mode (paper: "2MB by default, but up to 1GB where
// supported by hardware") on a 4GB region: fewer, bigger PT entries and
// one clear loop either way.
func BenchmarkAblation1GPages(b *testing.B) {
	for _, use1g := range []bool{false, true} {
		name := "2MB"
		if use1g {
			name = "1GB"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				sys, err := New(Config{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				sys.SetUse1GPages(use1g)
				p, err := sys.LaunchHPC("bench")
				if err != nil {
					b.Fatal(err)
				}
				_, cost, err := p.Mmap(4 << 30)
				if err != nil {
					b.Fatal(err)
				}
				cycles += cost
				p.Exit()
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/map4GB")
		})
	}
}
