module hpmmap

go 1.22
