package kernel

import (
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/trace"
	"hpmmap/internal/vma"
)

// Process is one simulated process: an address space, a page table, fault
// accounting, and the residency counters the TLB model reads.
type Process struct {
	PID  int
	Name string
	node *Node

	Space *vma.Space
	PT    *pgtable.Table

	// PreferredZone is the NUMA zone this process allocates from first.
	PreferredZone int

	// Commodity marks interference workloads (kernel builds); their
	// bandwidth counts against HPC processes but not against themselves.
	Commodity bool

	// MMLockedUntil is the time until which the process mm lock is held
	// by a background operation (khugepaged merge). Faults arriving
	// earlier must wait.
	MMLockedUntil sim.Cycles
	// PendingMergeCosts holds the durations of khugepaged merges whose
	// mm-lock windows have not yet been charged to a blocked fault; the
	// next fault activity consumes them (one blocked fault per merge).
	PendingMergeCosts []sim.Cycles
	// PendingEvictCosts holds TLB-shootdown stalls deposited by
	// datacenter eviction passes (the kubelet mass-unmapping a victim
	// pod's address space broadcasts invalidation IPIs). Like merge
	// costs, only the Linux fault path consumes them — HPMMAP processes
	// are structurally immune — but the attributor reattributes the
	// deposited share to timeline.CauseEvict.
	PendingEvictCosts []sim.Cycles

	// ResidentSmall/ResidentLarge track bytes currently mapped with 4KB
	// and 2MB(+) pages respectively.
	ResidentSmall uint64
	ResidentLarge uint64
	// ResidentRemote tracks bytes backed by frames outside the process's
	// preferred NUMA zone (cross-zone fallback under pressure). Remote
	// memory costs extra latency on every access.
	ResidentRemote uint64

	// Faults aggregates every fault charged to this process.
	Faults TouchStats

	// Recorder, when non-nil, captures per-fault records (micro-level
	// experiments: Figures 2–5).
	Recorder *trace.Recorder

	// Account, when non-nil, receives per-cause cycle charges (fault
	// kinds here; reclaim-storm and mlock-split reattribution in the
	// manager layers; syscall, scheduler, communication and chaos
	// charges at their own sites) for barrier critical-path attribution.
	// Installed by the workload layer when a run attaches a
	// timeline.Attribution; nil is the no-op default.
	Account *timeline.Account

	// mmState lets the owning memory manager stash per-process state.
	mmState any

	// tasks holds this process's tasks in creation order (nextTID order),
	// so the load snapshot's per-task float arithmetic is deterministic.
	// On a quiescent ExitReap both the Task structs and this slice's
	// backing array are recycled (lifecycle.go).
	tasks []*Task
	// running counts this process's tasks currently on a runqueue.
	running int

	Exited bool
}

// Node returns the owning node.
func (p *Process) Node() *Node { return p.node }

// MMState returns manager-private state installed by SetMMState.
func (p *Process) MMState() any { return p.mmState }

// SetMMState installs manager-private per-process state.
func (p *Process) SetMMState(s any) { p.mmState = s }

// ResidentBytes returns the total resident set size.
func (p *Process) ResidentBytes() uint64 { return p.ResidentSmall + p.ResidentLarge }

// LargeFraction returns the fraction of the resident set mapped by large
// pages.
func (p *Process) LargeFraction() float64 {
	t := p.ResidentBytes()
	if t == 0 {
		return 0
	}
	return float64(p.ResidentLarge) / float64(t)
}

// RemoteFraction returns the fraction of the resident set on non-local
// NUMA zones.
func (p *Process) RemoteFraction() float64 {
	t := p.ResidentBytes()
	if t == 0 {
		return 0
	}
	return float64(p.ResidentRemote) / float64(t)
}

// RecordFault charges one fault to the process and, when a recorder is
// attached, captures it. at is the completion time.
func (p *Process) RecordFault(at sim.Cycles, k fault.Kind, cost sim.Cycles, va pgtable.VirtAddr, stalled bool) {
	p.Faults.Faults[k]++
	p.Faults.Cycles[k] += cost
	if stalled {
		p.Faults.Stalls++
	}
	if p.Recorder != nil {
		p.Recorder.Record(fault.Record{At: at, Cost: cost, Kind: k, PID: p.PID, VA: uint64(va), Stalls: stalled})
	}
	p.Account.Charge(timeline.FaultCause(k), cost)
	if o := p.node.obs; o != nil {
		o.observeFault(p, at, k, cost, stalled)
	}
}

// RecordFaultBulk charges n faults of the same kind costing total cycles
// in aggregate. Used by the aggregate-fidelity touch paths that fold many
// faults into one event; the bulk population is visible through the
// app_*/commodity_* metric families but not the recorder-scoped fault_*
// families (no recorder is attached at aggregate fidelity).
func (p *Process) RecordFaultBulk(k fault.Kind, n uint64, total sim.Cycles) {
	p.Faults.Faults[k] += n
	p.Faults.Cycles[k] += total
	p.Account.Charge(timeline.FaultCause(k), total)
	if o := p.node.obs; o != nil {
		o.observeFaultBulk(p, n, total)
	}
}

func (p *Process) String() string {
	return fmt.Sprintf("pid %d (%s)", p.PID, p.Name)
}

// Task is one schedulable thread of a process.
type Task struct {
	ID   int
	Proc *Process
	// Pinned is the core this task is bound to, or -1 for a floating
	// task placed by the load balancer.
	Pinned int
	// BandwidthWeight is the fraction of one core's memory bandwidth the
	// task consumes while running.
	BandwidthWeight float64

	cur     int // core currently running on
	running bool
	done    bool
}

// Core returns the core the task last ran on.
func (t *Task) Core() int { return t.cur }

// Done reports whether Finish was called.
func (t *Task) Done() bool { return t.done }

// Finish marks the task completed; it must not Run again.
func (t *Task) Finish() {
	if t.running {
		t.Proc.node.depart(t)
	}
	t.done = true
}
