package kernel

import (
	"hpmmap/internal/fault"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// MemoryManager backs the virtual-memory system calls and the fault path
// for the processes routed to it. The node's system-call layer decides,
// per process, which manager handles a call — the interposition mechanism
// of the paper's Figure 6.
type MemoryManager interface {
	// Name identifies the manager ("thp", "hugetlbfs", "hpmmap").
	Name() string

	// Attach prepares per-process state; called when a process first uses
	// this manager.
	Attach(p *Process) error
	// Detach releases everything the manager holds for the process.
	Detach(p *Process)

	// Mmap creates an anonymous mapping of length bytes and returns its
	// address and the cycles the call consumed.
	Mmap(p *Process, length uint64, prot pgtable.Prot, kind vma.Kind) (pgtable.VirtAddr, sim.Cycles, error)
	// Munmap removes [addr, addr+length).
	Munmap(p *Process, addr pgtable.VirtAddr, length uint64) (sim.Cycles, error)
	// Brk grows or shrinks the heap to newBrk (0 queries).
	Brk(p *Process, newBrk pgtable.VirtAddr) (pgtable.VirtAddr, sim.Cycles, error)
	// Mprotect changes protections on a range.
	Mprotect(p *Process, addr pgtable.VirtAddr, length uint64, prot pgtable.Prot) (sim.Cycles, error)

	// TouchRange simulates the process accessing every page of
	// [addr, addr+length) for the first time, charging demand-paging
	// faults as the manager's policy dictates. Eager managers (HPMMAP)
	// return zero faults for validly mapped ranges.
	TouchRange(p *Process, addr pgtable.VirtAddr, length uint64) (TouchStats, error)

	// PageSizeAt reports the mapping granularity backing addr, for the
	// TLB model.
	PageSizeAt(p *Process, addr pgtable.VirtAddr) pgtable.PageSize

	// StackRange returns the address range to touch to exercise `bytes`
	// of stack under this manager's layout (managers place stacks
	// differently).
	StackRange(p *Process, bytes uint64) (pgtable.VirtAddr, uint64)
}

// ReapDetacher is optionally implemented by memory managers that can
// recycle their per-process bookkeeping on a quiescent exit. ExitReap
// prefers DetachReap over Detach when the node's lifecycle pooling is
// enabled; the call must free exactly the same frames in exactly the
// same order as Detach (the pinned-output contract of DESIGN.md §10 —
// buddy free order feeds future allocation addresses), and afterwards
// the process's MMState must be nil so stale post-exit manager calls
// fail loudly instead of corrupting recycled state.
type ReapDetacher interface {
	DetachReap(p *Process)
}

// TouchStats aggregates the faults charged by a TouchRange call.
type TouchStats struct {
	Faults [fault.NumKinds]uint64
	Cycles [fault.NumKinds]sim.Cycles
	Stalls uint64 // reclaim storms / merge waits encountered
}

// Total returns the summed fault service time.
func (t TouchStats) Total() sim.Cycles {
	var c sim.Cycles
	for _, v := range t.Cycles {
		c += v
	}
	return c
}

// TotalFaults returns the number of faults taken.
func (t TouchStats) TotalFaults() uint64 {
	var n uint64
	for _, v := range t.Faults {
		n += v
	}
	return n
}

// Add accumulates other into t.
func (t *TouchStats) Add(other TouchStats) {
	for k := 0; k < fault.NumKinds; k++ {
		t.Faults[k] += other.Faults[k]
		t.Cycles[k] += other.Cycles[k]
	}
	t.Stalls += other.Stalls
}
