package kernel

import (
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

// faultCountNames and faultCycleNames map fault kinds onto the fault_*
// metric family, indexed by fault.Kind. The order must track the Kind
// constants in internal/fault.
var faultCountNames = [fault.NumKinds]string{
	fault.KindSmall:        metrics.FaultSmallFaultsTotal,
	fault.KindLarge:        metrics.FaultLargeFaultsTotal,
	fault.KindMergeBlocked: metrics.FaultMergeFaultsTotal,
	fault.KindHugeTLBLarge: metrics.FaultHugeLargeFaultsTotal,
	fault.KindHugeTLBSmall: metrics.FaultHugeSmallFaultsTotal,
	fault.KindStackGrow:    metrics.FaultStackFaultsTotal,
}

var faultCycleNames = [fault.NumKinds]string{
	fault.KindSmall:        metrics.FaultSmallCycles,
	fault.KindLarge:        metrics.FaultLargeCycles,
	fault.KindMergeBlocked: metrics.FaultMergeCycles,
	fault.KindHugeTLBLarge: metrics.FaultHugeLargeCycles,
	fault.KindHugeTLBSmall: metrics.FaultHugeSmallCycles,
	fault.KindStackGrow:    metrics.FaultStackCycles,
}

// nodeObs holds the node's push handles and tracer. The Node carries a
// nil *nodeObs by default, so every hot-path hook is one predictable
// nil check when the simulation is uninstrumented.
type nodeObs struct {
	tracer *metrics.ChromeTracer

	// fault_* — scoped to recorder-instrumented processes so the
	// counters byte-match the Fig. 2/3 table populations.
	faultCount  [fault.NumKinds]*metrics.Counter
	faultCycles [fault.NumKinds]*metrics.Histogram

	// app_* / commodity_* — every fault on the node, split by process
	// class, at any fidelity.
	appFaults       *metrics.Counter
	appFaultCycles  *metrics.Counter
	appFaultStalls  *metrics.Counter
	commodityFaults *metrics.Counter

	// kernel_* scheduler activity.
	ctxSwitches   *metrics.Counter
	schedSegments *metrics.Counter

	// pgtable_* shared handles, installed into every process table.
	ptWalks *metrics.Counter
	ptDepth *metrics.Histogram
}

// Observe instruments the node: push handles are obtained from reg once
// here and incremented by the fault, scheduler and page-table hot paths
// afterwards; the node's existing tallies (kswapd, reclaim, OOM, page
// cache, commit pressure) are registered as pull-mode sources read at
// snapshot time; tr, when non-nil, receives reclaim instants and (for
// recorder-instrumented processes) per-fault duration events keyed by
// simulated cycles.
//
// Call Observe once, after NewNode and before any process runs. Both
// arguments are nil-safe: with a nil registry only tracing is active,
// and with both nil the call is a no-op, leaving the node on its
// zero-overhead uninstrumented path.
func (n *Node) Observe(reg *metrics.Registry, tr *metrics.ChromeTracer) {
	if reg == nil && tr == nil {
		return
	}
	o := &nodeObs{tracer: tr}
	for k := 0; k < fault.NumKinds; k++ {
		o.faultCount[k] = reg.Counter(faultCountNames[k])
		o.faultCycles[k] = reg.Histogram(faultCycleNames[k])
	}
	o.appFaults = reg.Counter(metrics.AppFaultsTotal)
	o.appFaultCycles = reg.Counter(metrics.AppFaultCyclesTotal)
	o.appFaultStalls = reg.Counter(metrics.AppFaultStallsTotal)
	o.commodityFaults = reg.Counter(metrics.CommodityFaultsTotal)
	o.ctxSwitches = reg.Counter(metrics.KernelContextSwitchesTotal)
	o.schedSegments = reg.Counter(metrics.KernelSchedSegmentsTotal)
	o.ptWalks = reg.Counter(metrics.PgtableWalksTotal)
	o.ptDepth = reg.Histogram(metrics.PgtableWalkDepthLevels)

	reg.CounterFunc(metrics.KernelKswapdRunsTotal, func() uint64 { return n.KswapdRuns })
	reg.CounterFunc(metrics.KernelReclaimedPagesTotal, func() uint64 { return n.ReclaimedPages })
	reg.CounterFunc(metrics.KernelOOMKillsTotal, func() uint64 { return n.OOMKills })
	reg.CounterFunc(metrics.KernelPagecacheAllocFailsTotal, func() uint64 { return n.PCAllocFails })
	reg.CounterFunc(metrics.KernelLifecycleReapsTotal, func() uint64 { return n.LifecycleReaps })
	reg.CounterFunc(metrics.KernelLifecycleProcReusesTotal, func() uint64 { return n.LifecycleProcReuses })
	reg.CounterFunc(metrics.KernelLifecycleTaskReusesTotal, func() uint64 { return n.LifecycleTaskReuses })
	reg.GaugeFunc(metrics.KernelPagecachePages, func() float64 {
		var pages uint64
		for z := range n.pcPages {
			pages += n.pcPages[z]
		}
		return float64(pages)
	})
	reg.GaugeFunc(metrics.KernelCommitPressure, func() float64 { return n.CommitPressure() })

	n.obs = o
	// Instrument tables of processes created before Observe (none in the
	// standard rigs, but keep the call order forgiving).
	n.Processes(func(p *Process) { p.PT.Instrument(o.ptWalks, o.ptDepth) })
	if tr != nil {
		tr.SetThreadName(tidKernel, "kernel")
	}
}

// tidKernel is the trace thread id used for node-level (non-rank)
// events: reclaim, kswapd, khugepaged.
const tidKernel = 0

// observeFault feeds the metric handles and tracer for one recorded
// fault. Called only when n.obs != nil.
func (o *nodeObs) observeFault(p *Process, at sim.Cycles, k fault.Kind, cost sim.Cycles, stalled bool) {
	if p.Commodity {
		o.commodityFaults.Inc()
	} else {
		o.appFaults.Inc()
		o.appFaultCycles.Add(uint64(cost))
		if stalled {
			o.appFaultStalls.Inc()
		}
	}
	if p.Recorder == nil {
		return
	}
	// Recorder-scoped per-kind costs: the same population as the
	// Fig. 2/3 tables.
	o.faultCount[k].Inc()
	o.faultCycles[k].Observe(uint64(cost))
	if o.tracer != nil {
		start := at - cost
		if cost > at {
			start = 0
		}
		o.tracer.Complete(p.PID, "fault", k.String(), uint64(start), uint64(cost))
	}
}

// observeFaultBulk feeds the app_*/commodity_* counters for an
// aggregate-fidelity batch of faults. Called only when n.obs != nil.
func (o *nodeObs) observeFaultBulk(p *Process, count uint64, total sim.Cycles) {
	if p.Commodity {
		o.commodityFaults.Add(count)
		return
	}
	o.appFaults.Add(count)
	o.appFaultCycles.Add(uint64(total))
}

// traceReclaim emits an instant event for a reclaim pass, labelled with
// the zone. No-op without a tracer.
func (o *nodeObs) traceReclaim(name string, zone int, at sim.Cycles) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.Instant(tidKernel, "kernel", fmt.Sprintf("%s/zone%d", name, zone), uint64(at))
}
