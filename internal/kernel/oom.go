package kernel

// OOM killing: when reclaim cannot make progress (no page cache left to
// evict and an allocation still fails), Linux kills the process with the
// largest unreclaimable footprint. The paper's consolidation scenarios
// run at sustained pressure, and without this relief valve a simulated
// node could wedge with every allocator returning failure — silently
// under-materializing memory instead of behaving like a kernel.

// OOMKill selects and kills the commodity process with the largest
// resident set, freeing its memory. HPC processes are never chosen: the
// paper's testbeds size the HPC input to fit, and oom_score_adj on a
// production system would protect the job the node exists to run. Returns
// the killed process, or nil if no commodity process is resident.
func (n *Node) OOMKill() *Process {
	var victim *Process
	n.Processes(func(p *Process) {
		if !p.Commodity || p.Exited {
			return
		}
		if victim == nil || p.ResidentBytes() > victim.ResidentBytes() {
			victim = p
		}
	})
	if victim == nil {
		return nil
	}
	n.OOMKills++
	n.Exit(victim)
	return victim
}
