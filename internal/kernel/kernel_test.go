package kernel

import (
	"testing"

	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// fakeMM is a trivial eager manager for kernel-layer tests.
type fakeMM struct {
	name     string
	attached map[int]bool
	cursor   pgtable.VirtAddr
	touches  int
}

func newFakeMM(name string) *fakeMM {
	return &fakeMM{name: name, attached: map[int]bool{}, cursor: 0x1000_0000}
}

func (f *fakeMM) Name() string            { return f.name }
func (f *fakeMM) Attach(p *Process) error { f.attached[p.PID] = true; return nil }
func (f *fakeMM) Detach(p *Process)       { delete(f.attached, p.PID) }
func (f *fakeMM) Mmap(p *Process, length uint64, prot pgtable.Prot, kind vma.Kind) (pgtable.VirtAddr, sim.Cycles, error) {
	a := f.cursor
	f.cursor += pgtable.VirtAddr(length)
	return a, 100, nil
}
func (f *fakeMM) Munmap(p *Process, addr pgtable.VirtAddr, length uint64) (sim.Cycles, error) {
	return 50, nil
}
func (f *fakeMM) Brk(p *Process, newBrk pgtable.VirtAddr) (pgtable.VirtAddr, sim.Cycles, error) {
	return newBrk, 20, nil
}
func (f *fakeMM) Mprotect(p *Process, addr pgtable.VirtAddr, length uint64, prot pgtable.Prot) (sim.Cycles, error) {
	return 30, nil
}
func (f *fakeMM) TouchRange(p *Process, addr pgtable.VirtAddr, length uint64) (TouchStats, error) {
	f.touches++
	return TouchStats{}, nil
}
func (f *fakeMM) PageSizeAt(p *Process, va pgtable.VirtAddr) pgtable.PageSize {
	return pgtable.Page4K
}
func (f *fakeMM) StackRange(p *Process, bytes uint64) (pgtable.VirtAddr, uint64) {
	return 0x7000_0000, bytes
}

// fakeInterposer claims only registered PIDs.
type fakeInterposer struct {
	fakeMM
	pids map[int]bool
}

func (f *fakeInterposer) Registered(pid int) bool { return f.pids[pid] }

func newTestNode(t *testing.T) (*Node, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	n := NewNode(DellR415(), eng, sim.NewRand(1))
	n.SetDefaultMM(newFakeMM("default"))
	return n, eng
}

func TestNodeBoot(t *testing.T) {
	n, _ := newTestNode(t)
	cfg := n.Config()
	if n.NumCores() != 12 || cfg.NumaZones != 2 {
		t.Fatalf("cores=%d zones=%d", n.NumCores(), cfg.NumaZones)
	}
	// Cores split across zones.
	if n.ZoneOfCore(0) != 0 || n.ZoneOfCore(11) != 1 {
		t.Fatalf("zone of core 0=%d, 11=%d", n.ZoneOfCore(0), n.ZoneOfCore(11))
	}
	if got := n.Mem.TotalPages() * mem.PageSize; got != 16<<30 {
		t.Fatalf("memory %d", got)
	}
}

func TestProcessLifecycle(t *testing.T) {
	n, _ := newTestNode(t)
	p, err := n.NewProcess("app", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Process(p.PID) != p {
		t.Fatal("Process lookup failed")
	}
	fm := n.DefaultMM().(*fakeMM)
	if !fm.attached[p.PID] {
		t.Fatal("Attach not called")
	}
	n.Exit(p)
	if n.Process(p.PID) != nil {
		t.Fatal("process still registered after exit")
	}
	if fm.attached[p.PID] {
		t.Fatal("Detach not called")
	}
	n.Exit(p) // double exit is a no-op
}

func TestNewProcessWithoutMMFails(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(DellR415(), eng, sim.NewRand(1))
	if _, err := n.NewProcess("app", false, 0); err == nil {
		t.Fatal("NewProcess without default MM succeeded")
	}
}

func TestSyscallRoutingViaInterposer(t *testing.T) {
	n, _ := newTestNode(t)
	ip := &fakeInterposer{fakeMM: *newFakeMM("hpmmap"), pids: map[int]bool{}}
	n.SetInterposer(ip)

	// Unregistered process goes to the default manager.
	p1, _ := n.NewProcess("commodity", true, 0)
	if n.ManagerNameFor(p1) != "default" {
		t.Fatalf("unregistered routed to %q", n.ManagerNameFor(p1))
	}
	// Register the next PID, then create: it routes to the interposer.
	ip.pids[n.NextPID()] = true
	p2, _ := n.NewProcess("hpc", false, 0)
	if n.ManagerNameFor(p2) != "hpmmap" {
		t.Fatalf("registered routed to %q", n.ManagerNameFor(p2))
	}
	if !ip.attached[p2.PID] {
		t.Fatal("interposer Attach not called for registered process")
	}
	if _, err := n.TouchRange(p2, 0x1000_0000, 4096); err != nil {
		t.Fatal(err)
	}
	if ip.touches != 1 {
		t.Fatal("touch not routed to interposer")
	}
	// Removing the module reroutes everything.
	n.SetInterposer(nil)
	if n.ManagerNameFor(p2) != "default" {
		t.Fatal("after module unload, process still routed to interposer")
	}
}

func TestSyscallChargesSyscallCost(t *testing.T) {
	n, _ := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	_, c, err := n.Mmap(p, 1<<20, pgtable.ProtRead, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if c != 100+sim.Cycles(n.Config().SyscallCost) {
		t.Fatalf("mmap cost %d", c)
	}
}

func TestFairShareScheduling(t *testing.T) {
	n, eng := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	a := n.NewTask(p, 0, 0.5)
	b := n.NewTask(p, 0, 0.5)
	var ea, eb sim.Cycles
	n.Run(a, 1000, 0, func(e sim.Cycles) { ea = e })
	n.Run(b, 1000, 0, func(e sim.Cycles) { eb = e })
	eng.RunUntil(1 << 40)
	// Two tasks sharing one core: both should take ~2x their work.
	if ea < 1000 || eb < 2000 {
		t.Fatalf("elapsed a=%d b=%d; expected sharing to stretch b to >=2000", ea, eb)
	}
}

func TestPinnedVsFloatingPlacement(t *testing.T) {
	n, eng := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	// Fill cores 0..5 with pinned tasks.
	for i := 0; i < 6; i++ {
		tk := n.NewTask(p, i, 0.5)
		n.Run(tk, 1_000_000, 0, func(sim.Cycles) {})
	}
	// A floating task must land on an idle core (6..11).
	f := n.NewTask(p, -1, 0.5)
	n.Run(f, 10, 0, func(sim.Cycles) {})
	if f.Core() < 6 {
		t.Fatalf("floating task placed on busy core %d", f.Core())
	}
	eng.RunUntil(1 << 40)
}

func TestRunOnFinishedTaskPanics(t *testing.T) {
	n, _ := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	tk := n.NewTask(p, 0, 0)
	tk.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("Run on finished task did not panic")
		}
	}()
	n.Run(tk, 10, 0, func(sim.Cycles) {})
}

func TestSleepLeavesRunqueue(t *testing.T) {
	n, eng := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	tk := n.NewTask(p, 0, 0.5)
	woke := false
	n.Sleep(tk, 5000, func() { woke = true })
	if n.RunnableOn(0) != 0 {
		t.Fatal("sleeping task on runqueue")
	}
	eng.RunUntil(1 << 40)
	if !woke {
		t.Fatal("sleep callback not invoked")
	}
}

func TestCPULoad(t *testing.T) {
	n, eng := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	if n.CPULoad() != 0 {
		t.Fatal("idle load nonzero")
	}
	for i := 0; i < 24; i++ {
		tk := n.NewTask(p, -1, 0.3)
		n.Run(tk, 1_000_000, 0, func(sim.Cycles) {})
	}
	if l := n.CPULoad(); l != 2.0 {
		t.Fatalf("load %v with 24 tasks on 12 cores", l)
	}
	eng.RunUntil(1 << 40)
}

func TestPageCacheAndKswapd(t *testing.T) {
	n, eng := newTestNode(t)
	// Fill zone 0 with page cache; growth is gated at the low watermark.
	z := n.Mem.Zones[0]
	target := z.FreePages() * mem.PageSize
	n.PageCacheAdd(0, target)
	if n.PageCachePages(0) == 0 {
		t.Fatal("page cache empty after add")
	}
	if z.FreePages() > z.WatermarkLow+(1<<8) {
		t.Fatalf("free pages %d well above low watermark %d despite giant add", z.FreePages(), z.WatermarkLow)
	}
	// Consume below the low watermark with ungated anon allocations so
	// kswapd has work to do.
	for z.FreePages() > z.WatermarkLow/2 {
		if _, ok := z.AllocPages(0); !ok {
			break
		}
	}
	// Let kswapd run a few periods.
	eng.RunUntil(sim.Cycles(n.Config().KswapdPeriod * 20))
	if n.KswapdRuns == 0 {
		t.Fatal("kswapd never ran")
	}
	if z.FreePages() < z.WatermarkLow {
		t.Fatalf("kswapd left free pages at %d (low=%d)", z.FreePages(), z.WatermarkLow)
	}
	_ = target
}

func TestPageCacheSelfRecycles(t *testing.T) {
	n, _ := newTestNode(t)
	// Try to add more cache than exists: must not wedge, must recycle.
	n.PageCacheAdd(0, 20<<30)
	if n.PCAllocFails == 0 {
		t.Fatal("expected allocation failures to trigger recycling")
	}
	if n.Mem.FreePages() == n.Mem.TotalPages() {
		t.Fatal("no cache resident after giant add")
	}
}

func TestDirectReclaimFreesCache(t *testing.T) {
	n, _ := newTestNode(t)
	z := n.Mem.Zones[0]
	n.PageCacheAdd(0, z.FreePages()*mem.PageSize/2)
	before := z.FreePages()
	if !n.DirectReclaim(0, mem.LargePageOrder) {
		t.Fatal("direct reclaim freed nothing despite cache present")
	}
	if z.FreePages() <= before {
		t.Fatal("free pages did not rise")
	}
}

func TestLoadForReflectsCommodityActivity(t *testing.T) {
	n, eng := newTestNode(t)
	hpc, _ := n.NewProcess("hpc", false, 0)
	build, _ := n.NewProcess("build", true, 0)
	l0 := n.LoadFor(hpc)
	if l0.AllocContention != 0 || l0.BandwidthLoad != 0 {
		t.Fatalf("idle load %+v", l0)
	}
	for i := 0; i < 8; i++ {
		tk := n.NewTask(build, -1, 0.5)
		n.Run(tk, 10_000_000, 0, func(sim.Cycles) {})
	}
	l1 := n.LoadFor(hpc)
	if l1.AllocContention <= 0 || l1.BandwidthLoad <= 0 {
		t.Fatalf("loaded snapshot %+v", l1)
	}
	// The commodity process does not count itself.
	l2 := n.LoadFor(build)
	if l2.AllocContention != 0 {
		t.Fatalf("build sees its own contention: %+v", l2)
	}
	eng.RunUntil(1 << 40)
}

func TestProcessResidencyHelpers(t *testing.T) {
	n, _ := newTestNode(t)
	p, _ := n.NewProcess("app", false, 0)
	if p.LargeFraction() != 0 {
		t.Fatal("fresh process has large fraction")
	}
	p.ResidentSmall = 1 << 20
	p.ResidentLarge = 3 << 20
	if p.ResidentBytes() != 4<<20 {
		t.Fatal("ResidentBytes wrong")
	}
	if f := p.LargeFraction(); f != 0.75 {
		t.Fatalf("LargeFraction %v", f)
	}
}

func TestMachineConfigConversions(t *testing.T) {
	cfg := DellR415()
	if s := cfg.Seconds(cfg.ClockHz); s != 1 {
		t.Fatalf("Seconds: %v", s)
	}
	if c := cfg.Cycles(2); c != 2*cfg.ClockHz {
		t.Fatalf("Cycles: %v", c)
	}
	sx := SandiaXeon()
	if sx.Cores != 8 || sx.MemoryBytes != 24<<30 {
		t.Fatalf("SandiaXeon: %+v", sx)
	}
}

func TestTouchStatsAccumulation(t *testing.T) {
	var a, b TouchStats
	a.Faults[0] = 3
	a.Cycles[0] = 300
	b.Faults[0] = 2
	b.Cycles[0] = 200
	b.Stalls = 1
	a.Add(b)
	if a.TotalFaults() != 5 || a.Total() != 500 || a.Stalls != 1 {
		t.Fatalf("after Add: %+v", a)
	}
}

func TestOOMKillPicksLargestCommodity(t *testing.T) {
	n, _ := newTestNode(t)
	hpc, _ := n.NewProcess("hpc", false, 0)
	hpc.ResidentLarge = 8 << 30
	small, _ := n.NewProcess("small-build", true, 0)
	small.ResidentSmall = 100 << 20
	big, _ := n.NewProcess("big-build", true, 0)
	big.ResidentSmall = 2 << 30
	victim := n.OOMKill()
	if victim != big {
		t.Fatalf("killed %v, want the largest commodity process", victim)
	}
	if !big.Exited {
		t.Fatal("victim not exited")
	}
	if hpc.Exited || small.Exited {
		t.Fatal("bystanders killed")
	}
	if n.OOMKills != 1 {
		t.Fatalf("OOMKills = %d", n.OOMKills)
	}
}

func TestOOMKillNeverTakesHPC(t *testing.T) {
	n, _ := newTestNode(t)
	hpc, _ := n.NewProcess("hpc", false, 0)
	hpc.ResidentLarge = 12 << 30
	if v := n.OOMKill(); v != nil {
		t.Fatalf("killed %v with only HPC processes alive", v)
	}
	if hpc.Exited {
		t.Fatal("HPC process killed")
	}
}

func TestCommitPressure(t *testing.T) {
	n, _ := newTestNode(t)
	if p := n.CommitPressure(); p != 0 {
		t.Fatalf("fresh commit pressure %v", p)
	}
	// Page cache does not count as committed.
	n.PageCacheAdd(0, 1<<30)
	if p := n.CommitPressure(); p > 0.01 {
		t.Fatalf("page cache counted as commitment: %v", p)
	}
	// Anonymous allocations do.
	z := n.Mem.Zones[1]
	taken := uint64(0)
	for taken < (4<<30)/mem.PageSize {
		if _, ok := z.AllocPages(mem.MaxOrder); !ok {
			break
		}
		taken += mem.PagesPerOrder(mem.MaxOrder)
	}
	if p := n.CommitPressure(); p < 0.2 {
		t.Fatalf("4GB anon commitment reads as %v", p)
	}
	// Reservations (allocated at boot, like hugetlb pools) shrink the
	// usable denominator: the same anon commitment reads higher.
	before := n.CommitPressure()
	z0 := n.Mem.Zones[0]
	reserved := uint64(0)
	for reserved < (6<<30)/mem.PageSize {
		if _, ok := z0.AllocPages(mem.MaxOrder); !ok {
			break
		}
		reserved += mem.PagesPerOrder(mem.MaxOrder)
	}
	n.SetReservedBytes(reserved * mem.PageSize)
	after := n.CommitPressure()
	if after <= before {
		t.Fatalf("reservation did not raise commitment: %v -> %v", before, after)
	}
}

func TestBandwidthTimesharing(t *testing.T) {
	n, _ := newTestNode(t)
	victim, _ := n.NewProcess("victim", false, 0)
	hog, _ := n.NewProcess("hog", true, 0)
	// Four streaming tasks pinned to ONE core timeshare it: their
	// aggregate bandwidth draw is one task's worth, not four.
	for i := 0; i < 4; i++ {
		tk := n.NewTask(hog, 3, 0.6)
		n.Run(tk, 100_000_000, 0, func(sim.Cycles) {})
	}
	shared := n.LoadFor(victim).BandwidthLoad
	// The same four tasks on four different cores stream concurrently.
	n2, _ := newTestNode(t)
	victim2, _ := n2.NewProcess("victim", false, 0)
	hog2, _ := n2.NewProcess("hog", true, 0)
	for i := 0; i < 4; i++ {
		tk := n2.NewTask(hog2, 3+i, 0.6)
		n2.Run(tk, 100_000_000, 0, func(sim.Cycles) {})
	}
	spread := n2.LoadFor(victim2).BandwidthLoad
	if spread < 3*shared {
		t.Fatalf("spread load %v not >> timeshared load %v", spread, shared)
	}
}

func TestSwapDevice(t *testing.T) {
	s := NewSwapDevice(1 << 30)
	if s.TotalPages != 262144 || s.FreePages() != 262144 {
		t.Fatalf("geometry: %d/%d", s.TotalPages, s.FreePages())
	}
	if got := s.Reserve(1000); got != 1000 {
		t.Fatalf("reserve granted %d", got)
	}
	if s.UsedPages() != 1000 {
		t.Fatalf("used %d", s.UsedPages())
	}
	// Over-reservation grants only what is left.
	if got := s.Reserve(1 << 30); got != 262144-1000 {
		t.Fatalf("over-reserve granted %d", got)
	}
	if s.FreePages() != 0 {
		t.Fatal("free pages after exhaustion")
	}
	s.Release(262144)
	if s.UsedPages() != 0 {
		t.Fatalf("used %d after release", s.UsedPages())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Release(1)
}

func TestNodeSwapLazyInit(t *testing.T) {
	n, _ := newTestNode(t)
	if n.Swap() == nil || n.Swap() != n.Swap() {
		t.Fatal("Swap() not a stable singleton")
	}
	if n.Swap().TotalPages != (8<<30)/4096 {
		t.Fatalf("default swap size %d pages", n.Swap().TotalPages)
	}
}
