package kernel

// Process-lifecycle fast path (DESIGN.md §11). Fork/exec/exit churn is
// the dominant allocation source in macro runs: every kernel-build
// compile and every datacenter pod is a Process + Task + vma.Space +
// pgtable.Table that previously lived for one compile and was then
// garbage. ExitReap recycles those structs through per-node free lists
// so steady-state churn allocates nothing, under the same pinned-output
// contract as the ISSUE-6 hot-path work: recycling is invisible to the
// simulation. PIDs stay monotonic, teardown frees frames in the same
// order Detach does, and no PRNG draw or cycle charge moves — the
// committed goldens must stay byte-identical with pooling on.
//
// The safety contract is quiescence. Plain Exit keeps its semantics
// exactly (tear down, never recycle) because processes can be exited
// mid-operation — the OOM killer fires from inside a touch, and chaos
// holds process references across events. ExitReap is for call sites
// that know the process is quiescent: no running tasks, no unfinished
// tasks, no event closures that will touch the process afterwards. The
// build worker's end-of-compile exit and the datacenter pod reaper are
// such sites; the OOM killer and the chaos injector are not and stay on
// Exit.

// lifecyclePools holds the node's recycled lifecycle structs.
type lifecyclePools struct {
	procs []*Process
	tasks []*Task
}

// SetLifecyclePooling toggles the fork/exit struct-recycling fast path
// (on by default). Turning it off makes ExitReap behave exactly like
// Exit — the unpooled baseline the fork/exit microbenchmark compares
// against.
func (n *Node) SetLifecyclePooling(on bool) { n.poolLifecycle = on }

// LifecyclePooling reports whether the fast path is enabled.
func (n *Node) LifecyclePooling() bool { return n.poolLifecycle }

// ExitReap tears the process down like Exit and, when the lifecycle
// fast path is enabled, recycles its structs for the next NewProcess or
// Fork. The manager teardown goes through DetachReap when the manager
// supports it (recycling its per-process state too); recycling of the
// Process itself happens only if the process is quiescent — every task
// finished, nothing on a runqueue. Callers must guarantee no event
// closure touches the process after this call (see the package comment
// above); when in doubt, use Exit.
//
//detsim:hotpath
func (n *Node) ExitReap(p *Process) {
	if p.Exited {
		return
	}
	if !n.poolLifecycle {
		n.Exit(p)
		return
	}
	p.Exited = true
	mm := n.mmFor(p)
	if rd, ok := mm.(ReapDetacher); ok {
		rd.DetachReap(p)
	} else {
		mm.Detach(p)
	}
	delete(n.procs, p.PID)
	n.reap(p)
	n.LifecycleReaps++
}

// reap recycles a detached process's structs if it is quiescent. The
// Space and page table are kept with the struct (they reset on reuse);
// tasks go to their own free list.
//
//detsim:hotpath
func (n *Node) reap(p *Process) {
	if p.running != 0 {
		return
	}
	// A khugepaged merge deposits a closure that fires when the mm-lock
	// window closes, guarded only by p.Exited. Recycling the struct
	// before then would reset Exited and the stale closure would operate
	// on the next process to inherit the struct (the ABA problem). The
	// window closing is exactly when the closure fires, so an open (or
	// just-closing) window means the struct must stay dead. Zero means
	// the process was never mm-locked: merge windows always close at
	// Now()+cost > 0, so there is no closure to wait out.
	if p.MMLockedUntil > 0 && p.MMLockedUntil >= n.eng.Now() {
		return
	}
	for _, t := range p.tasks {
		if !t.done {
			return
		}
	}
	for _, t := range p.tasks {
		*t = Task{}
		//detsim:allow this IS the lifecycle pool (DESIGN.md §11): growth is the pool warming up, amortised to 0 B/op at steady churn
		n.pool.tasks = append(n.pool.tasks, t)
	}
	sp, pt := p.Space, p.PT
	tasks := p.tasks[:0]
	pmc := p.PendingMergeCosts[:0]
	pec := p.PendingEvictCosts[:0]
	*p = Process{Space: sp, PT: pt, tasks: tasks, PendingMergeCosts: pmc, PendingEvictCosts: pec}
	//detsim:allow this IS the lifecycle pool (DESIGN.md §11): growth is the pool warming up, amortised to 0 B/op at steady churn
	n.pool.procs = append(n.pool.procs, p)
}

// procStruct pops a recycled Process (with its Space and page table
// reset to newborn state) or returns nil when the pool is empty or
// pooling is off. The caller fills in identity fields.
//
//detsim:hotpath
func (n *Node) procStruct() *Process {
	if !n.poolLifecycle {
		return nil
	}
	k := len(n.pool.procs)
	if k == 0 {
		return nil
	}
	p := n.pool.procs[k-1]
	n.pool.procs[k-1] = nil
	n.pool.procs = n.pool.procs[:k-1]
	p.PT.Reset()
	n.LifecycleProcReuses++
	return p
}

// taskStruct pops a recycled Task or returns nil.
//
//detsim:hotpath
func (n *Node) taskStruct() *Task {
	if !n.poolLifecycle {
		return nil
	}
	k := len(n.pool.tasks)
	if k == 0 {
		return nil
	}
	t := n.pool.tasks[k-1]
	n.pool.tasks[k-1] = nil
	n.pool.tasks = n.pool.tasks[:k-1]
	n.LifecycleTaskReuses++
	return t
}
