package kernel

import (
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/vma"
)

// Node is one simulated machine: cores, memory, the scheduler, the page
// cache, and the system-call layer that routes memory operations to the
// registered memory managers.
type Node struct {
	cfg  MachineConfig
	eng  *sim.Engine
	rand *sim.Rand

	Mem   *mem.NodeMemory
	cores []core

	defaultMM MemoryManager
	interpose Interposer

	procs   map[int]*Process
	nextPID int
	nextTID int

	// pool holds recycled Process/Task structs for the lifecycle fast
	// path (lifecycle.go); poolLifecycle gates it (default on).
	pool          lifecyclePools
	poolLifecycle bool

	// runningCommodity counts commodity-process tasks currently on a
	// runqueue, maintained by arrive/depart so LoadFor reads a summary
	// counter instead of scanning the append-only task list (which grows
	// with every fork over a macro run).
	runningCommodity int

	// Page cache, one FIFO block queue per zone. Blocks are order-3
	// (32KB) so commodity file I/O fragments large-page-sized regions
	// realistically.
	pageCache []pcQueue
	pcPages   []uint64

	kswapd *sim.Ticker
	swap   *SwapDevice

	// Detail selects micro-level fidelity: per-fault records and real
	// page-table updates (Figures 2–5). When false, managers aggregate
	// fault costs statistically from the same cost model — required to
	// make the ~10^6-fault macro experiments (Figures 7–8) tractable.
	Detail bool

	// reservedPages counts frames reserved away from general use
	// (hugetlb pools): they are "used" in the zones but belong to no one
	// Linux can reclaim from.
	reservedPages uint64

	// Statistics.
	KswapdRuns     uint64
	PCAllocFails   uint64
	ReclaimedPages uint64
	OOMKills       uint64
	// Lifecycle fast-path counters: ExitReap calls that went through the
	// pooled teardown, and Process/Task structs served from the pools.
	LifecycleReaps      uint64
	LifecycleProcReuses uint64
	LifecycleTaskReuses uint64

	// obs holds the node's metric handles and tracer; nil (the
	// zero-overhead default) until Observe is called.
	obs *nodeObs
}

// Interposer is a memory manager that claims only registered processes —
// HPMMAP's PID hash table check in front of the original system call.
type Interposer interface {
	MemoryManager
	Registered(pid int) bool
}

type pcBlock struct {
	pfn  mem.PFN
	zone int
}

// pcQueue is a FIFO of page-cache blocks with a head index instead of
// front reslicing, so eviction keeps the backing array's capacity and
// sustained add/evict cycles stop paying O(len) growslice copies (the
// pre-ISSUE-6 profile put PageCacheAdd at 38% of simulator CPU, mostly
// memmove under append).
type pcQueue struct {
	blocks []pcBlock
	head   int
}

func (q *pcQueue) len() int { return len(q.blocks) - q.head }

func (q *pcQueue) push(b pcBlock) {
	if len(q.blocks) == cap(q.blocks) && q.head > 0 {
		// About to grow: compact into the dead front instead.
		n := copy(q.blocks, q.blocks[q.head:])
		q.blocks = q.blocks[:n]
		q.head = 0
	}
	q.blocks = append(q.blocks, b)
}

// popFront removes the count oldest blocks, calling free for each.
func (q *pcQueue) popFront(count int, free func(pcBlock)) {
	for i := 0; i < count; i++ {
		free(q.blocks[q.head+i])
	}
	q.head += count
	if q.head == len(q.blocks) {
		q.blocks = q.blocks[:0]
		q.head = 0
	}
}

const pcOrder = 3 // 32KB page-cache allocation units

// NewNode boots a node on the given engine. The default memory manager
// must be installed with SetDefaultMM before processes run.
func NewNode(cfg MachineConfig, eng *sim.Engine, rnd *sim.Rand) *Node {
	n := &Node{
		cfg:       cfg,
		eng:       eng,
		rand:      rnd,
		Mem:       mem.NewNodeMemory(cfg.NumaZones, cfg.MemoryBytes),
		procs:     make(map[int]*Process),
		nextPID:   100,
		pageCache: make([]pcQueue, cfg.NumaZones),
		pcPages:   make([]uint64, cfg.NumaZones),

		poolLifecycle: true,
	}
	n.cores = make([]core, cfg.Cores)
	perZone := cfg.Cores / cfg.NumaZones
	if perZone == 0 {
		perZone = 1
	}
	for i := range n.cores {
		n.cores[i] = core{id: i, zone: i / perZone % cfg.NumaZones}
	}
	n.kswapd = eng.NewTicker(sim.Cycles(cfg.KswapdPeriod), n.kswapdPass)
	return n
}

// Config returns the machine configuration.
func (n *Node) Config() MachineConfig { return n.cfg }

// Engine returns the simulation engine.
func (n *Node) Engine() *sim.Engine { return n.eng }

// Rand returns the node's PRNG stream.
func (n *Node) Rand() *sim.Rand { return n.rand }

// Now returns the current simulated time.
func (n *Node) Now() sim.Cycles { return n.eng.Now() }

// NumCores returns the core count.
func (n *Node) NumCores() int { return len(n.cores) }

// ZoneOfCore returns the NUMA zone of a core.
func (n *Node) ZoneOfCore(c int) int { return n.cores[c].zone }

// SetDefaultMM installs the manager used by unregistered processes.
func (n *Node) SetDefaultMM(mm MemoryManager) { n.defaultMM = mm }

// DefaultMM returns the default manager.
func (n *Node) DefaultMM() MemoryManager { return n.defaultMM }

// SetInterposer installs the system-call interposition layer (HPMMAP).
// Passing nil removes it — the module can be unloaded at runtime, adding
// no overhead when not in use.
func (n *Node) SetInterposer(i Interposer) { n.interpose = i }

// mmFor resolves the manager for a process: the interposer when the PID
// is registered, the default manager otherwise (the hash-table check of
// the paper's Figure 6).
func (n *Node) mmFor(p *Process) MemoryManager {
	if n.interpose != nil && n.interpose.Registered(p.PID) {
		return n.interpose
	}
	return n.defaultMM
}

// ManagerNameFor reports which manager currently serves the process.
func (n *Node) ManagerNameFor(p *Process) string { return n.mmFor(p).Name() }

// NextPID returns the PID the next created process will receive — the
// hook the HPMMAP launch tool uses to register a process before exec.
func (n *Node) NextPID() int { return n.nextPID }

// NewProcess creates a process attached to the manager the syscall layer
// currently routes it to.
func (n *Node) NewProcess(name string, commodity bool, preferredZone int) (*Process, error) {
	if n.defaultMM == nil {
		return nil, fmt.Errorf("kernel: no default memory manager installed")
	}
	p := n.procStruct()
	if p != nil {
		// Recycled struct: reset the retained Space and page table to
		// newborn state, then fill in identity. The remaining fields were
		// zeroed at reap time.
		p.Space.Reset(vma.DefaultLayout())
		p.PID = n.nextPID
		p.Name = name
		p.node = n
		p.PreferredZone = preferredZone % n.cfg.NumaZones
		p.Commodity = commodity
	} else {
		p = &Process{
			PID:           n.nextPID,
			Name:          name,
			node:          n,
			Space:         vma.NewSpace(vma.DefaultLayout()),
			PT:            pgtable.New(),
			PreferredZone: preferredZone % n.cfg.NumaZones,
			Commodity:     commodity,
		}
	}
	if n.obs != nil {
		p.PT.Instrument(n.obs.ptWalks, n.obs.ptDepth)
	}
	n.nextPID++
	n.procs[p.PID] = p
	if err := n.mmFor(p).Attach(p); err != nil {
		delete(n.procs, p.PID)
		return nil, err
	}
	return p, nil
}

// Exit tears the process down, returning all its memory.
func (n *Node) Exit(p *Process) {
	if p.Exited {
		return
	}
	p.Exited = true
	n.mmFor(p).Detach(p)
	delete(n.procs, p.PID)
}

// Process returns a live process by PID, or nil.
func (n *Node) Process(pid int) *Process { return n.procs[pid] }

// Processes calls fn for each live process in PID order.
func (n *Node) Processes(fn func(*Process)) {
	// PIDs are allocated sequentially; iterate deterministically.
	for pid := 100; pid < n.nextPID; pid++ {
		if p, ok := n.procs[pid]; ok {
			fn(p)
		}
	}
}

// Forker is implemented by memory managers that support fork (Linux).
// HPMMAP's eager design deliberately does not: duplicating an on-request
// address space would copy the whole resident set.
type Forker interface {
	Fork(parent, child *Process) (sim.Cycles, error)
}

// ErrForkUnsupported reports a manager without fork support.
var ErrForkUnsupported = fmt.Errorf("kernel: memory manager does not support fork")

// Fork duplicates a process copy-on-write through its memory manager.
func (n *Node) Fork(parent *Process, name string) (*Process, sim.Cycles, error) {
	mm := n.mmFor(parent)
	f, ok := mm.(Forker)
	if !ok {
		return nil, 0, ErrForkUnsupported
	}
	child := n.procStruct()
	if child != nil {
		parent.Space.CloneInto(child.Space)
		child.PID = n.nextPID
		child.Name = name
		child.node = n
		child.PreferredZone = parent.PreferredZone
		child.Commodity = parent.Commodity
	} else {
		child = &Process{
			PID:           n.nextPID,
			Name:          name,
			node:          n,
			Space:         parent.Space.Clone(),
			PT:            pgtable.New(),
			PreferredZone: parent.PreferredZone,
			Commodity:     parent.Commodity,
		}
	}
	if n.obs != nil {
		child.PT.Instrument(n.obs.ptWalks, n.obs.ptDepth)
	}
	n.nextPID++
	n.procs[child.PID] = child
	cost, err := f.Fork(parent, child)
	if err != nil {
		delete(n.procs, child.PID)
		return nil, 0, err
	}
	return child, cost + sim.Cycles(n.cfg.SyscallCost), nil
}

// NewTask creates a task for the process. pinned is a core ID or -1.
func (n *Node) NewTask(p *Process, pinned int, bwWeight float64) *Task {
	t := n.taskStruct()
	if t == nil {
		t = &Task{}
	}
	*t = Task{ID: n.nextTID, Proc: p, Pinned: pinned, BandwidthWeight: bwWeight}
	if pinned >= 0 {
		t.cur = pinned
	}
	n.nextTID++
	p.tasks = append(p.tasks, t)
	return t
}

// --- System-call surface -------------------------------------------------

// chargeSyscall attributes one successful MM system call's full cost
// (manager work — for HPMMAP that includes the eager on-request backing
// — plus the trap) to the process's attribution account. Nil-safe.
func chargeSyscall(p *Process, c sim.Cycles, err error) {
	if err == nil {
		p.Account.Charge(timeline.CauseSyscall, c)
	}
}

// Mmap allocates an anonymous mapping for p.
func (n *Node) Mmap(p *Process, length uint64, prot pgtable.Prot, kind vma.Kind) (pgtable.VirtAddr, sim.Cycles, error) {
	addr, c, err := n.mmFor(p).Mmap(p, length, prot, kind)
	c += sim.Cycles(n.cfg.SyscallCost)
	chargeSyscall(p, c, err)
	return addr, c, err
}

// Munmap removes a mapping.
func (n *Node) Munmap(p *Process, addr pgtable.VirtAddr, length uint64) (sim.Cycles, error) {
	c, err := n.mmFor(p).Munmap(p, addr, length)
	c += sim.Cycles(n.cfg.SyscallCost)
	chargeSyscall(p, c, err)
	return c, err
}

// Brk adjusts the heap.
func (n *Node) Brk(p *Process, newBrk pgtable.VirtAddr) (pgtable.VirtAddr, sim.Cycles, error) {
	b, c, err := n.mmFor(p).Brk(p, newBrk)
	c += sim.Cycles(n.cfg.SyscallCost)
	chargeSyscall(p, c, err)
	return b, c, err
}

// Mprotect changes protections.
func (n *Node) Mprotect(p *Process, addr pgtable.VirtAddr, length uint64, prot pgtable.Prot) (sim.Cycles, error) {
	c, err := n.mmFor(p).Mprotect(p, addr, length, prot)
	c += sim.Cycles(n.cfg.SyscallCost)
	chargeSyscall(p, c, err)
	return c, err
}

// TouchRange drives first-touch accesses over a range through the fault
// path of the owning manager.
func (n *Node) TouchRange(p *Process, addr pgtable.VirtAddr, length uint64) (TouchStats, error) {
	return n.mmFor(p).TouchRange(p, addr, length)
}

// PageSizeAt reports the mapping granularity at addr.
func (n *Node) PageSizeAt(p *Process, addr pgtable.VirtAddr) pgtable.PageSize {
	return n.mmFor(p).PageSizeAt(p, addr)
}

// TouchStack drives first-touch over `bytes` of the process stack.
func (n *Node) TouchStack(p *Process, bytes uint64) (TouchStats, error) {
	addr, length := n.mmFor(p).StackRange(p, bytes)
	return n.mmFor(p).TouchRange(p, addr, length)
}

// --- Load snapshot --------------------------------------------------------

// SetReservedBytes records memory reserved at boot (hugetlb pools) so
// pressure accounting can distinguish it from reclaimable usage.
func (n *Node) SetReservedBytes(b uint64) { n.reservedPages = b / mem.PageSize }

// CommitPressure returns the fraction of Linux-usable memory committed to
// unreclaimable (anonymous) allocations: the smooth pressure signal that
// drives reclaim probability and THP fragmentation. Page cache does not
// count — it is reclaimable — and neither do boot-time reservations,
// which subtract from the usable pool instead.
func (n *Node) CommitPressure() float64 {
	total := n.Mem.TotalPages()
	free := n.Mem.FreePages()
	var cache uint64
	for z := range n.pcPages {
		cache += n.pcPages[z]
	}
	used := total - free
	nonEvict := int64(used) - int64(cache) - int64(n.reservedPages)
	usable := int64(total) - int64(n.reservedPages)
	if usable <= 0 {
		return 1
	}
	if nonEvict < 0 {
		nonEvict = 0
	}
	v := float64(nonEvict) / float64(usable)
	if v > 1 {
		v = 1
	}
	return v
}

// LoadFor captures the system conditions a fault by p executes under.
func (n *Node) LoadFor(p *Process) fault.Load {
	z := n.Mem.Zones[p.PreferredZone]
	frag := z.FragmentationIndex(mem.LargePageOrder)
	// Allocation contention: commodity tasks running right now, relative
	// to core count. runningCommodity is maintained by arrive/depart;
	// a commodity process excludes its own running tasks.
	commodity := n.runningCommodity
	if p.Commodity {
		commodity -= p.running
	}
	alloc := float64(commodity) / float64(len(n.cores))
	if alloc > 1 {
		alloc = 1
	}
	pressure := n.CommitPressure()
	if zp := n.Mem.Pressure(); zp > pressure {
		pressure = zp
	}
	return fault.Load{
		MemPressure:     pressure,
		BandwidthLoad:   n.bandwidthLoadExcluding(p),
		AllocContention: alloc,
		FragIndex:       frag,
	}
}

// --- Page cache and reclaim ----------------------------------------------

// PageCacheAdd grows the page cache by bytes in the given zone (commodity
// file I/O). When allocation fails the oldest cache blocks are recycled —
// the cache never pushes the system to OOM, it just keeps memory at the
// watermarks, exactly the sustained-pressure regime of the paper.
//
//detsim:hotpath
func (n *Node) PageCacheAdd(zone int, bytes uint64) {
	blocks := bytes / (mem.PageSize << pcOrder)
	if blocks == 0 {
		blocks = 1
	}
	for i := uint64(0); i < blocks; i++ {
		// Page-cache growth respects the low watermark: readahead and
		// buffered writes back off rather than stealing the emergency
		// reserve (they recycle the oldest cache instead).
		gated := func(zid int) (mem.PFN, *mem.Zone, bool) {
			z := n.Mem.Zones[zid%len(n.Mem.Zones)]
			if z.FreePages() < z.WatermarkLow+mem.PagesPerOrder(pcOrder) {
				return 0, nil, false
			}
			pfn, ok := z.AllocPages(pcOrder)
			return pfn, z, ok
		}
		pfn, z, ok := gated(zone)
		if !ok {
			pfn, z, ok = gated(zone + 1)
		}
		if !ok {
			n.PCAllocFails++
			// Recycle: drop the oldest cached block and reuse its frame.
			if !n.dropOneCacheBlock() {
				return
			}
			pfn, z, ok = n.Mem.Alloc(zone, pcOrder)
			if !ok {
				return
			}
		}
		n.pageCache[z.ID].push(pcBlock{pfn: pfn, zone: z.ID})
		n.pcPages[z.ID] += 1 << pcOrder
	}
}

// PageCachePages returns cached pages in the zone.
func (n *Node) PageCachePages(zone int) uint64 { return n.pcPages[zone] }

// dropOneCacheBlock evicts one block from the fullest zone's cache.
//
//detsim:hotpath
func (n *Node) dropOneCacheBlock() bool {
	best := -1
	for z := range n.pageCache {
		if n.pageCache[z].len() > 0 && (best < 0 || n.pageCache[z].len() > n.pageCache[best].len()) {
			best = z
		}
	}
	if best < 0 {
		return false
	}
	n.evictFrom(best, 1)
	return true
}

// evictFrom frees count blocks from the zone's cache (FIFO).
func (n *Node) evictFrom(zone int, count int) {
	q := &n.pageCache[zone]
	if count > q.len() {
		count = q.len()
	}
	q.popFront(count, func(b pcBlock) { n.Mem.Free(b.pfn, pcOrder) })
	n.pcPages[zone] -= uint64(count) << pcOrder
	n.ReclaimedPages += uint64(count) << pcOrder
}

// kswapdPass frees page cache in any zone below its low watermark, down
// toward the high watermark — Linux's background reclaim.
func (n *Node) kswapdPass() {
	for _, z := range n.Mem.Zones {
		if z.FreePages() >= z.WatermarkLow {
			continue
		}
		n.KswapdRuns++
		n.obs.traceReclaim("kswapd", z.ID, n.eng.Now())
		need := z.WatermarkHigh - z.FreePages()
		if need > n.cfg.KswapdBatchPages {
			need = n.cfg.KswapdBatchPages
		}
		blocks := int(need >> pcOrder)
		if blocks == 0 {
			blocks = 1
		}
		n.evictFrom(z.ID, blocks)
	}
}

// DirectReclaim drops enough page cache to satisfy an allocation of the
// given order in the zone, returning whether anything was freed. The
// caller charges the heavy-tailed stall from the cost model. One pass
// frees a substantial batch (vmscan reclaims well past the request at
// elevated priority), so a single stall covers many subsequent
// allocations.
func (n *Node) DirectReclaim(zone int, order int) bool {
	n.obs.traceReclaim("direct_reclaim", zone, n.eng.Now())
	z := n.Mem.Zones[zone]
	before := z.FreePages()
	pages := mem.PagesPerOrder(order) * 4
	if min := uint64(8192); pages < min { // >= 32MB per pass
		pages = min
	}
	blocks := int(pages>>pcOrder) + 1
	n.evictFrom(zone, blocks)
	return z.FreePages() > before
}
