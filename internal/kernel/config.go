// Package kernel simulates the operating-system layer of one compute
// node: processes and tasks, a CFS-like fair-share scheduler, the
// virtual-memory system-call surface, the page-fault entry path, the page
// cache and background reclaim. Memory managers (Linux THP, HugeTLBfs,
// HPMMAP) plug in behind a single MemoryManager interface, exactly as the
// paper's system-call interposition layer selects per-process managers.
package kernel

import (
	"hpmmap/internal/fault"
	"hpmmap/internal/tlb"
)

// MachineConfig describes the hardware of one node.
type MachineConfig struct {
	Name      string
	Cores     int
	NumaZones int
	// MemoryBytes is the total installed RAM.
	MemoryBytes uint64
	// ClockHz converts cycles to seconds.
	ClockHz float64
	TLB     tlb.Config
	Costs   fault.CostParams

	// MemLatency is the uncontended DRAM access latency in cycles, used
	// by the TLB-miss page-walk cost model.
	MemLatency float64
	// WalkCacheFactor is the average fraction of page-walk levels that
	// miss the paging-structure caches and go to memory (upper levels are
	// usually cached).
	WalkCacheFactor float64

	// SyscallCost is the base user→kernel→user cost of a system call.
	SyscallCost float64
	// CtxSwitch is the cost of a context switch including cold-cache
	// effects (charged as scheduler noise).
	CtxSwitch float64

	// KhugepagedScanPeriod is the interval between khugepaged scan/merge
	// attempts, in cycles (Linux default: scan every 10s, allocate every
	// 60s when failing; we use the effective merge cadence).
	KhugepagedScanPeriod float64
	// KswapdPeriod is the background-reclaim wakeup interval in cycles.
	KswapdPeriod float64
	// KswapdBatchPages is how many page-cache pages one kswapd pass
	// frees when below the low watermark.
	KswapdBatchPages uint64
}

// DellR415 returns the single-node testbed: two 6-core Opteron 4174
// (2.2GHz, 12 cores), 16GB RAM in two NUMA zones, Fedora 15 with a 3.3.8
// kernel.
func DellR415() MachineConfig {
	return MachineConfig{
		Name:                 "dell-r415",
		Cores:                12,
		NumaZones:            2,
		MemoryBytes:          16 << 30,
		ClockHz:              2.2e9,
		TLB:                  tlb.Config{Entries4K: 512, Entries2M: 48, Assoc: 4},
		Costs:                fault.DefaultCostParams(),
		MemLatency:           180,
		WalkCacheFactor:      0.45,
		SyscallCost:          900,
		CtxSwitch:            6000,
		KhugepagedScanPeriod: 2.2e9 * 3, // one merge attempt every ~3s
		KswapdPeriod:         2.2e9 / 20,
		KswapdBatchPages:     16384,
	}
}

// SandiaXeon returns one node of the 8-node scaling testbed: two 4-core
// Xeon X5570 (2.93GHz, 8 cores), 24GB RAM in two NUMA zones, a 3.5.7
// kernel, 1GbE NIC.
func SandiaXeon() MachineConfig {
	c := DellR415()
	c.Name = "sandia-xeon"
	c.Cores = 8
	c.MemoryBytes = 24 << 30
	c.ClockHz = 2.93e9
	c.TLB = tlb.Config{Entries4K: 512, Entries2M: 32, Assoc: 4}
	c.MemLatency = 160
	c.KhugepagedScanPeriod = 2.93e9 * 3
	c.KswapdPeriod = 2.93e9 / 20
	return c
}

// Seconds converts cycles to seconds on this machine.
func (m MachineConfig) Seconds(c float64) float64 { return c / m.ClockHz }

// Cycles converts seconds to cycles on this machine.
func (m MachineConfig) Cycles(sec float64) float64 { return sec * m.ClockHz }
