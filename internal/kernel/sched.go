package kernel

import (
	"fmt"

	"hpmmap/internal/invariant"
	"hpmmap/internal/sim"
)

// core is one CPU with its runqueue occupancy and the NUMA zone it sits
// in.
type core struct {
	id       int
	zone     int
	runnable int     // tasks currently executing a Run segment here
	bwWeight float64 // summed bandwidth weights of those tasks
}

// Scheduling is a fair-share fluid model of CFS: a Run segment of W
// CPU-cycles on a core shared by N runnable tasks completes after W*N
// cycles (plus context-switch noise). Segments are short relative to load
// changes, so sampling the share at segment start is a good approximation
// of per-tick fairness, while keeping event counts tractable. Floating
// tasks are placed on the least-loaded core at every segment, modelling
// CFS load balancing of the unpinned kernel-build processes.

// Place assigns a floating task to the least-loaded core. Ties prefer
// the highest core ID: pinned HPC ranks occupy the low IDs, and CFS's
// idle balancing similarly avoids displacing running tasks. Placement is
// deterministic.
func (n *Node) Place(t *Task) int {
	if t.Pinned >= 0 {
		t.cur = t.Pinned
		return t.Pinned
	}
	best := len(n.cores) - 1
	for i := len(n.cores) - 2; i >= 0; i-- {
		if n.cores[i].runnable < n.cores[best].runnable {
			best = i
		}
	}
	t.cur = best
	return best
}

// arrive adds the task to its core's runqueue.
func (n *Node) arrive(t *Task) {
	if t.running {
		// Simulated-state violation: a task entered a runqueue while
		// already on one — overlapping Run segments for the same task.
		invariant.Fail(invariant.Violation{
			Check: "sched_double_arrive", Subsystem: "sched", PID: t.Proc.PID,
			Detail: fmt.Sprintf("task %d (%s) arrived on core %d while already running",
				t.ID, t.Proc.Name, t.cur),
		})
	}
	t.running = true
	t.Proc.running++
	if t.Proc.Commodity {
		n.runningCommodity++
	}
	c := &n.cores[t.cur]
	c.runnable++
	c.bwWeight += t.BandwidthWeight
}

// depart removes the task from its core's runqueue.
func (n *Node) depart(t *Task) {
	if !t.running {
		return
	}
	t.running = false
	t.Proc.running--
	if t.Proc.Commodity {
		n.runningCommodity--
	}
	c := &n.cores[t.cur]
	c.runnable--
	c.bwWeight -= t.BandwidthWeight
	if c.runnable < 0 {
		// Simulated-state violation: more departures than arrivals —
		// runqueue accounting went negative on this core.
		invariant.Fail(invariant.Violation{
			Check: "sched_runnable_negative", Subsystem: "sched", PID: t.Proc.PID,
			Detail: fmt.Sprintf("core %d runnable count %d after task %d departed",
				t.cur, c.runnable, t.ID),
		})
	}
	if c.bwWeight < 1e-9 {
		c.bwWeight = 0
	}
}

// Run executes a segment: cpuWork cycles of CPU-bound work plus stall
// cycles of time not subject to CPU sharing (fault waits, I/O retries).
// fn runs when the segment completes, with the wall-cycles it took.
func (n *Node) Run(t *Task, cpuWork, stall sim.Cycles, fn func(elapsed sim.Cycles)) {
	if t.done {
		// Programmer error (API misuse, not simulated-state divergence):
		// a workload driver issued a segment on a task it already finished.
		panic(fmt.Sprintf("kernel: Run on finished task %d (pid %d) — callers must not reuse a finished task",
			t.ID, t.Proc.PID))
	}
	n.Place(t)
	n.arrive(t)
	share := n.cores[t.cur].runnable
	if share < 1 {
		share = 1
	}
	elapsed := cpuWork*sim.Cycles(share) + stall
	var switches sim.Cycles
	if share > 1 {
		// Context-switch and cache-pollution noise while timesharing.
		switches = sim.Cycles(float64(cpuWork) / 2.4e6) // switches at ~1ms granularity
		elapsed += sim.Cycles(n.rand.Jitter(switches*sim.Cycles(n.cfg.CtxSwitch), 0.5))
	}
	if o := n.obs; o != nil {
		o.schedSegments.Inc()
		o.ctxSwitches.Add(uint64(switches))
	}
	start := n.eng.Now()
	n.eng.Schedule(elapsed, func() {
		n.depart(t)
		fn(n.eng.Now() - start)
	})
}

// Sleep blocks the task off the runqueue for d cycles (I/O, network).
func (n *Node) Sleep(t *Task, d sim.Cycles, fn func()) {
	if t.running {
		n.depart(t)
	}
	n.eng.Schedule(d, fn)
}

// RunnableOn returns the number of runnable tasks on the given core.
func (n *Node) RunnableOn(coreID int) int { return n.cores[coreID].runnable }

// CPULoad returns total runnable tasks divided by cores — >1 means the
// node is overcommitted.
func (n *Node) CPULoad() float64 {
	t := 0
	for i := range n.cores {
		t += n.cores[i].runnable
	}
	return float64(t) / float64(len(n.cores))
}

// bandwidthLoadExcluding returns the fraction of node memory bandwidth
// consumed by running tasks of processes other than p, in [0,1]. Tasks
// timesharing a core generate traffic one at a time, so a core's
// contribution is the average weight of its runnable tasks, not the sum.
// Bandwidth saturates at roughly half the core count of streaming tasks.
func (n *Node) bandwidthLoadExcluding(p *Process) float64 {
	var w float64
	for i := range n.cores {
		c := &n.cores[i]
		if c.runnable > 0 {
			w += c.bwWeight / float64(c.runnable)
		}
	}
	// Subtract p's own running tasks' time-shared contribution. p.tasks
	// preserves creation order, so the subtraction sequence (and thus the
	// float result) matches the old whole-node scan exactly.
	for _, t := range p.tasks {
		if t.running {
			if r := n.cores[t.cur].runnable; r > 0 {
				w -= t.BandwidthWeight / float64(r)
			}
		}
	}
	if w < 0 {
		w = 0
	}
	sat := float64(len(n.cores)) * 0.5
	load := w / sat
	if load > 1 {
		load = 1
	}
	return load
}
