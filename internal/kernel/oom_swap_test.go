package kernel

import (
	"testing"

	"hpmmap/internal/invariant"
)

// mkProc spawns a process with a synthetic resident set, for victim-
// selection tests.
func mkProc(t *testing.T, n *Node, name string, commodity bool, rssSmall, rssLarge uint64) *Process {
	t.Helper()
	p, err := n.NewProcess(name, commodity, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.ResidentSmall = rssSmall
	p.ResidentLarge = rssLarge
	return p
}

func TestOOMKillPicksLargestCommodityRSS(t *testing.T) {
	n, _ := newTestNode(t)
	small := mkProc(t, n, "make", true, 1<<20, 0)
	big := mkProc(t, n, "cc1", true, 1<<20, 512<<20) // large pages count too
	mid := mkProc(t, n, "ld", true, 256<<20, 0)
	hpc := mkProc(t, n, "hpccg", false, 4<<30, 0) // biggest RSS on the node

	victim := n.OOMKill()
	if victim != big {
		t.Fatalf("OOM victim = %v, want the largest-RSS commodity process %v", victim, big)
	}
	if n.OOMKills != 1 {
		t.Fatalf("OOMKills = %d, want 1", n.OOMKills)
	}
	if !big.Exited || n.Process(big.PID) != nil {
		t.Fatal("victim not torn down")
	}
	for _, p := range []*Process{small, mid, hpc} {
		if p.Exited {
			t.Fatalf("%s killed alongside the victim", p.Name)
		}
	}
	// The next kill moves down the RSS order.
	if v := n.OOMKill(); v != mid {
		t.Fatalf("second OOM victim = %v, want %v", v, mid)
	}
}

func TestOOMKillNeverChoosesHPC(t *testing.T) {
	n, _ := newTestNode(t)
	hpc := mkProc(t, n, "minimd", false, 8<<30, 0)
	if v := n.OOMKill(); v != nil {
		t.Fatalf("OOMKill chose %v on a node with only HPC processes", v)
	}
	if hpc.Exited {
		t.Fatal("HPC process was killed")
	}
	if n.OOMKills != 0 {
		t.Fatalf("OOMKills = %d after a no-victim scan", n.OOMKills)
	}
}

func TestOOMKillIgnoresExited(t *testing.T) {
	n, _ := newTestNode(t)
	gone := mkProc(t, n, "dead", true, 4<<30, 0)
	n.Exit(gone)
	live := mkProc(t, n, "alive", true, 1<<20, 0)
	if v := n.OOMKill(); v != live {
		t.Fatalf("OOM victim = %v, want the only live commodity process", v)
	}
}

func TestOOMKillEmptyNode(t *testing.T) {
	n, _ := newTestNode(t)
	if v := n.OOMKill(); v != nil {
		t.Fatalf("OOMKill on an empty node returned %v", v)
	}
}

func TestSwapReserveClampsAtExhaustion(t *testing.T) {
	s := NewSwapDevice(1 << 20) // 256 slots
	if s.TotalPages != 256 {
		t.Fatalf("TotalPages = %d, want 256", s.TotalPages)
	}
	if got := s.Reserve(200); got != 200 {
		t.Fatalf("Reserve(200) granted %d", got)
	}
	// Over-ask: only the remaining 56 slots are granted.
	if got := s.Reserve(100); got != 56 {
		t.Fatalf("Reserve(100) on a nearly-full device granted %d, want 56", got)
	}
	if s.FreePages() != 0 || s.UsedPages() != 256 {
		t.Fatalf("free=%d used=%d after exhaustion", s.FreePages(), s.UsedPages())
	}
	// Exhausted device grants nothing, and the zero grant is not counted
	// as a swap-out.
	if got := s.Reserve(1); got != 0 {
		t.Fatalf("Reserve on an exhausted device granted %d", got)
	}
	if s.SwapOuts != 256 {
		t.Fatalf("SwapOuts = %d, want 256 (granted slots only)", s.SwapOuts)
	}
}

func TestSwapReleaseReturnsSlots(t *testing.T) {
	s := NewSwapDevice(1 << 20)
	s.Reserve(100)
	s.Release(40)
	if s.UsedPages() != 60 || s.FreePages() != 196 {
		t.Fatalf("used=%d free=%d after partial release", s.UsedPages(), s.FreePages())
	}
	// Released slots are reusable.
	if got := s.Reserve(196); got != 196 {
		t.Fatalf("Reserve after release granted %d, want 196", got)
	}
	s.Release(256)
	if s.UsedPages() != 0 {
		t.Fatalf("used=%d after full release", s.UsedPages())
	}
}

func TestSwapOverReleaseIsViolation(t *testing.T) {
	s := NewSwapDevice(1 << 20)
	s.Reserve(10)
	defer func() {
		v, ok := invariant.FromRecovered(recover())
		if !ok {
			t.Fatal("over-release did not raise a structured violation")
		}
		if v.Check != "swap_accounting" || v.Subsystem != "kernel" {
			t.Fatalf("wrong violation: %+v", v)
		}
	}()
	s.Release(11)
}

func TestNodeSwapLazyDefault(t *testing.T) {
	n, _ := newTestNode(t)
	s := n.Swap()
	if s.TotalPages != (8<<30)/4096 {
		t.Fatalf("default swap = %d pages, want an 8GB partition", s.TotalPages)
	}
	if n.Swap() != s {
		t.Fatal("Swap() not memoized")
	}
}
