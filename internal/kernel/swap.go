package kernel

import "hpmmap/internal/invariant"

// SwapDevice models the swap partition: capacity accounting and the cost
// asymmetry of rotating storage (the paper's era: swap-in is a seek).
// Anonymous pages of commodity processes get paged out when reclaim has
// no cache left to evict; HPC pages are never swapped (mlock/policy — and
// under HPMMAP they are not Linux's to swap in the first place).
type SwapDevice struct {
	// TotalPages of swap capacity.
	TotalPages uint64
	used       uint64

	// Statistics.
	SwapOuts, SwapIns uint64
}

// NewSwapDevice creates a device of the given byte size.
func NewSwapDevice(bytes uint64) *SwapDevice {
	return &SwapDevice{TotalPages: bytes / 4096}
}

// FreePages returns unused swap capacity.
func (s *SwapDevice) FreePages() uint64 { return s.TotalPages - s.used }

// UsedPages returns occupied swap slots.
func (s *SwapDevice) UsedPages() uint64 { return s.used }

// Reserve takes up to n slots, returning how many were granted.
func (s *SwapDevice) Reserve(n uint64) uint64 {
	free := s.FreePages()
	if n > free {
		n = free
	}
	s.used += n
	s.SwapOuts += n
	return n
}

// Release returns slots (swap-in or process exit).
func (s *SwapDevice) Release(n uint64) {
	if n > s.used {
		// Simulated-state violation: more slots released than were ever
		// reserved — per-process swap accounting diverged from the device.
		invariant.Failf("swap_accounting", "kernel",
			"swap release of %d slots with only %d in use (capacity %d)",
			n, s.used, s.TotalPages)
	}
	s.used -= n
}

// Swap returns the node's swap device (created lazily with the default
// 8GB partition the testbeds carried).
func (n *Node) Swap() *SwapDevice {
	if n.swap == nil {
		n.swap = NewSwapDevice(8 << 30)
	}
	return n.swap
}
