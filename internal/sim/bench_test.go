package sim

import "testing"

func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycles(i%97), func() {})
		e.Step()
	}
}

func BenchmarkEngineDeepQueue(b *testing.B) {
	e := NewEngine()
	r := NewRand(1)
	// Keep ~10K events in flight, the scale of a busy node.
	for i := 0; i < 10000; i++ {
		var reschedule func()
		reschedule = func() { e.Schedule(Cycles(r.Uint64n(100000)+1), reschedule) }
		e.Schedule(Cycles(r.Uint64n(100000)+1), reschedule)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkRandNormal(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(1000, 100)
	}
}

func BenchmarkRandPareto(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Pareto(1e6, 1.15)
	}
}
