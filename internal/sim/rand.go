package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Rand is a small, fast, deterministic PRNG (xoshiro256** seeded via
// SplitMix64). The simulator cannot use math/rand's global state because
// independent subsystems must be able to draw from independent streams
// without perturbing each other across code changes.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from a single 64-bit seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// splitmix64 advances the SplitMix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Split returns a new generator whose stream is a deterministic function of
// this generator's state, advancing this generator once. Use it to hand
// independent streams to subsystems.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		// Programmer error: a zero bound has no valid range.
		panic("sim: Uint64n(0) — bound must be > 0")
	}
	// Lemire's bounded generation with a rejection loop on the biased zone.
	threshold := (-n) % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		// Programmer error: a non-positive bound has no valid range.
		panic(fmt.Sprintf("sim: Intn(%d) — bound must be > 0", n))
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller; one value per call, the pair's second
// half is discarded to keep draws independent of call sites).
func (r *Rand) Normal(mean, stdev float64) float64 {
	if stdev <= 0 {
		return mean
	}
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stdev*z
}

// PositiveNormal samples Normal(mean, stdev) truncated below at min.
func (r *Rand) PositiveNormal(mean, stdev, min float64) float64 {
	v := r.Normal(mean, stdev)
	if v < min {
		return min
	}
	return v
}

// Exponential returns an exponentially distributed value with the given
// mean.
func (r *Rand) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// LogNormal returns a log-normally distributed value parameterized by the
// underlying normal's mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) heavy-tailed value; used for reclaim
// storm durations.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// CyclesNormal draws a truncated normal and converts to Cycles.
func (r *Rand) CyclesNormal(mean, stdev, min float64) Cycles {
	return Cycles(r.PositiveNormal(mean, stdev, min))
}

// Jitter returns base scaled by a uniform factor in [1-f, 1+f].
func (r *Rand) Jitter(base Cycles, f float64) Cycles {
	if f <= 0 {
		return base
	}
	scale := 1 - f + 2*f*r.Float64()
	v := float64(base) * scale
	if v < 0 {
		return 0
	}
	return Cycles(v)
}
