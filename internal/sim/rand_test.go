package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRand(3)
	err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nCoversRange(t *testing.T) {
	r := NewRand(9)
	seen := make([]bool, 8)
	for i := 0; i < 1000; i++ {
		seen[r.Uint64n(8)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn in 1000 tries", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRand(13)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 2700 || trues > 3300 {
		t.Fatalf("Bool(0.3) frequency %d/10000, want ~3000", trues)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(17)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(100, 15)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	stdev := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-100) > 0.5 {
		t.Fatalf("Normal mean = %v, want ~100", mean)
	}
	if math.Abs(stdev-15) > 0.5 {
		t.Fatalf("Normal stdev = %v, want ~15", stdev)
	}
}

func TestNormalZeroStdev(t *testing.T) {
	r := NewRand(19)
	if v := r.Normal(5, 0); v != 5 {
		t.Fatalf("Normal(5,0) = %v", v)
	}
}

func TestPositiveNormalTruncates(t *testing.T) {
	r := NewRand(23)
	for i := 0; i < 10000; i++ {
		if v := r.PositiveNormal(10, 50, 1); v < 1 {
			t.Fatalf("PositiveNormal below floor: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(29)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(250)
	}
	mean := sum / n
	if math.Abs(mean-250) > 10 {
		t.Fatalf("Exponential mean = %v, want ~250", mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	r := NewRand(31)
	if v := r.Exponential(0); v != 0 {
		t.Fatalf("Exponential(0) = %v", v)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRand(37)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(100, 1.5); v < 100 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(41)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 2); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(43)
	base := Cycles(1000)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(base, 0.2)
		if v < 800 || v > 1200 {
			t.Fatalf("Jitter out of [800,1200]: %d", v)
		}
	}
	if v := r.Jitter(base, 0); v != base {
		t.Fatalf("Jitter(f=0) = %d, want %d", v, base)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRand(47)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestCyclesNormalFloor(t *testing.T) {
	r := NewRand(53)
	for i := 0; i < 1000; i++ {
		if v := r.CyclesNormal(10, 100, 2); v < 2 {
			t.Fatalf("CyclesNormal below floor: %d", v)
		}
	}
}
