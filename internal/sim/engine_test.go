package sim

import (
	"testing"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("Now = %d, want 0", e.Now())
	}
	if e.Executed() != 0 {
		t.Fatalf("Executed = %d, want 0", e.Executed())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final Now = %d, want 30", e.Now())
	}
}

func TestEngineFIFOWithinSameCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Cycles
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 3 || hits[0] != 10 || hits[1] != 10 || hits[2] != 15 {
		t.Fatalf("hits = %v, want [10 10 15]", hits)
	}
}

func TestEngineAtPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Cycles
	e.Schedule(100, func() {
		e.At(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event ran at %d, want 100", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for live event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !id.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
}

func TestEngineCancelAmongMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ids []EventID
	for i := 0; i < 20; i++ {
		i := i
		ids = append(ids, e.Schedule(Cycles(i+1), func() { fired = append(fired, i) }))
	}
	// Cancel the even ones.
	for i := 0; i < 20; i += 2 {
		e.Cancel(ids[i])
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10", len(fired))
	}
	for _, v := range fired {
		if v%2 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	for _, d := range []Cycles{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %d events, want 2", len(fired))
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d after RunUntil(12) with pending work, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 20 {
		t.Fatalf("after Run: fired=%v now=%d", fired, e.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++; e.Halt() })
	e.Schedule(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("executed %d events after halt, want 1", n)
	}
	if !e.Halted() {
		t.Fatal("Halted() = false")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Cycles
	var tk *Ticker
	tk = e.NewTicker(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, at := range []Cycles{10, 20, 30} {
		if ticks[i] != at {
			t.Fatalf("ticks = %v", ticks)
		}
	}
}

func TestTickerStopIsIdempotent(t *testing.T) {
	e := NewEngine()
	tk := e.NewTicker(10, func() {})
	tk.Stop()
	tk.Stop()
	e.Run()
	if e.Executed() != 0 {
		t.Fatalf("stopped ticker executed %d events", e.Executed())
	}
}

func TestSaturatingAdd(t *testing.T) {
	if got := SaturatingAdd(1, 2); got != 3 {
		t.Fatalf("SaturatingAdd(1,2) = %d", got)
	}
	max := Cycles(^uint64(0))
	if got := SaturatingAdd(max-1, 5); got != max {
		t.Fatalf("SaturatingAdd overflow = %d, want max", got)
	}
}

func TestCyclesSeconds(t *testing.T) {
	c := Cycles(2_200_000_000)
	if s := c.Seconds(2.2e9); s < 0.999 || s > 1.001 {
		t.Fatalf("Seconds = %v, want ~1", s)
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	run := func() []Cycles {
		e := NewEngine()
		r := NewRand(42)
		var trace []Cycles
		var step func()
		step = func() {
			trace = append(trace, e.Now())
			if len(trace) < 100 {
				e.Schedule(Cycles(r.Uint64n(1000)+1), step)
			}
		}
		e.Schedule(1, step)
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
