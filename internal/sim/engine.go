// Package sim provides the deterministic discrete-event simulation core
// used by every other subsystem in the HPMMAP reproduction: a 64-bit cycle
// clock, a binary-heap event queue, and seedable pseudo-random number
// generation with the distributions the cost models need.
//
// All simulated time is measured in CPU cycles. Converting to seconds is
// the responsibility of the machine configuration (see internal/kernel).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycles is a point in (or duration of) simulated time, in CPU cycles.
type Cycles uint64

// Seconds converts a cycle count to seconds at the given clock rate in Hz.
func (c Cycles) Seconds(hz float64) float64 {
	return float64(c) / hz
}

// event is a scheduled callback.
type event struct {
	at   Cycles
	seq  uint64 // tie-breaker: FIFO among events at the same cycle
	fn   func()
	heap *eventHeap
	idx  int // index in the heap, -1 when popped or cancelled
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancelled reports whether the event was cancelled or already fired.
func (id EventID) Cancelled() bool { return id.ev == nil || id.ev.idx < 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; parallelism in the simulated system is expressed as
// interleaved events, which keeps runs bit-for-bit deterministic for a
// given seed.
type Engine struct {
	now    Cycles
	queue  eventHeap
	seq    uint64
	nexec  uint64
	halted bool
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nexec }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay cycles. fn runs with the engine clock set to
// the scheduled time. Scheduling at delay 0 runs fn after all other work
// already scheduled for the current cycle.
func (e *Engine) Schedule(delay Cycles, fn func()) EventID {
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. If t is in the past it runs at the current
// time (events never run backwards).
func (e *Engine) At(t Cycles, fn func()) EventID {
	if fn == nil {
		panic("sim: Schedule/At with nil fn")
	}
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn, heap: &e.queue}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev}
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. Reports whether the event was
// actually removed.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.idx < 0 || ev.heap != &e.queue {
		return false
	}
	heap.Remove(&e.queue, ev.idx)
	return true
}

// Step executes the single next event. Reports false when the queue is
// empty or the engine is halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	e.nexec++
	ev.fn()
	return true
}

// Run executes events until the queue drains or the engine halts.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving the clock
// at min(deadline, time of last executed event ... ) — precisely: after
// RunUntil the clock is deadline if any event beyond it remains, else the
// time of the final event.
func (e *Engine) RunUntil(deadline Cycles) {
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && (len(e.queue) > 0 || e.halted) {
		e.now = deadline
	}
}

// Halt stops the engine: Step and Run return immediately. Pending events
// remain queued (useful for post-mortem inspection in tests).
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt was called.
func (e *Engine) Halted() bool { return e.halted }

// String summarizes engine state for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%d pending=%d executed=%d}", e.now, len(e.queue), e.nexec)
}

// Ticker invokes fn every period cycles until Stop is called or the engine
// drains. The first invocation happens one period from creation.
type Ticker struct {
	eng     *Engine
	period  Cycles
	fn      func()
	stopped bool
	next    EventID
}

// NewTicker starts a periodic callback. period must be > 0.
func (e *Engine) NewTicker(period Cycles, fn func()) *Ticker {
	if period == 0 {
		panic("sim: NewTicker with zero period")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.eng.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop halts the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.next)
}

// SaturatingAdd returns a+b clamped to the maximum Cycles value.
func SaturatingAdd(a, b Cycles) Cycles {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}
