// Package linuxmm implements the commodity Linux memory-management model:
// purely demand-paged allocation, with large pages provided either by
// Transparent Huge Pages (fault-path 2MB allocation plus khugepaged
// merging) or by HugeTLBfs (preallocated pools via a libhugetlbfs-style
// heap), per the paper's Section II. Every physical page a process
// touches is really allocated from the simulated zoned buddy allocator,
// so memory pressure, fragmentation and reclaim emerge from actual state
// rather than scripted schedules.
package linuxmm

import (
	"fmt"
	"sort"

	"hpmmap/internal/hugetlb"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// Mode selects the large-page policy applied to a process.
type Mode int

// Modes.
const (
	// Mode4KOnly: no large pages at all (the commodity side of the
	// paper's HugeTLBfs configuration).
	Mode4KOnly Mode = iota
	// ModeTHP: transparent huge pages with khugepaged.
	ModeTHP
	// ModeHugeTLB: libhugetlbfs-style hugetlb-backed heap and data;
	// stacks and file maps stay 4KB.
	ModeHugeTLB
)

func (m Mode) String() string {
	switch m {
	case Mode4KOnly:
		return "4k"
	case ModeTHP:
		return "thp"
	case ModeHugeTLB:
		return "hugetlbfs"
	}
	return "?"
}

// smallBatchOrder is the buddy order used to back 4KB-mapped process
// memory in batches (order 3 = 32KB), matching the page-cache granularity
// so commodity churn fragments the pool realistically without per-frame
// bookkeeping cost.
const smallBatchOrder = 3

// HugeTLBMmapThreshold is the minimum anonymous mapping size that
// libhugetlbfs redirects to hugetlbfs.
const HugeTLBMmapThreshold = 8 << 20

// Manager is the Linux memory manager. One instance serves every process
// on a node; the per-process large-page policy is fixed at Attach time:
// HPC processes get HPCMode, commodity processes CommodityMode.
type Manager struct {
	node *kernel.Node
	rand *sim.Rand

	// HPCMode / CommodityMode select policy by Process.Commodity.
	HPCMode       Mode
	CommodityMode Mode

	// Pools backs ModeHugeTLB processes; nil otherwise.
	Pools *hugetlb.Pools

	// THPFallbackBase is the probability that a THP fault falls back to
	// small pages even when a 2MB block is available (alignment and
	// accounting constraints; produces the paper's unloaded merge
	// activity).
	THPFallbackBase float64
	// THPFragSensitivity scales the extra fallback probability induced by
	// concurrent commodity allocation churn fragmenting the free lists
	// faster than the buddy's coarse block model expresses.
	THPFragSensitivity float64

	// procs tracks attached processes in attach order (deterministic
	// khugepaged scans); scanCursor rotates over them.
	procs      []*kernel.Process
	scanCursor int

	// tc is the scratch touch context reused across TouchRange calls
	// (the manager is single-threaded per node; TouchRange does not
	// reenter), and regionPool recycles munmapped region structs so
	// churn-heavy workloads reuse the backing-slice capacity of
	// largeFrames/smallBlocks/fallback instead of reallocating them
	// every mmap cycle (ISSUE 6 hot-path contract).
	tc         touchCtx
	regionPool []*region
	// psPool recycles per-process state for the kernel's lifecycle fast
	// path (DetachReap): the regions map and starts slice keep their
	// capacity across pod/compile churn.
	psPool []*procState

	// Scratch buffers for gatedAllocRun (block PFNs and per-zone run
	// segments), reused across calls.
	runPFNs []mem.PFN
	runSegs []allocSeg

	// Statistics.
	LargeFaults, SmallFaults, FallbackFaults uint64
	Compactions, ReclaimStorms               uint64
	StormsHPC                                uint64
	SplitOnMlock                             uint64
	SwappedOutPages                          uint64
	// Hot-path efficiency tallies (ISSUE 6): batched gated allocation
	// passes, the blocks they returned, and region structs served from
	// the recycling pool instead of fresh allocation.
	GatedAllocRuns   uint64
	GatedAllocBlocks uint64
	RegionPoolReuses uint64
}

// New creates the manager. pools may be nil when no mode uses HugeTLBfs.
func New(node *kernel.Node, hpcMode, commodityMode Mode, pools *hugetlb.Pools) *Manager {
	if (hpcMode == ModeHugeTLB || commodityMode == ModeHugeTLB) && pools == nil {
		// Programmer error (API misuse): the caller selected HugeTLB mode
		// without reserving pools via hugetlb.Reserve first.
		panic("linuxmm: New with HugeTLB mode requires non-nil hugetlb pools (call hugetlb.Reserve at boot)")
	}
	return &Manager{
		node:               node,
		rand:               node.Rand().Split(),
		HPCMode:            hpcMode,
		CommodityMode:      commodityMode,
		Pools:              pools,
		THPFallbackBase:    0.025,
		THPFragSensitivity: 0.55,
	}
}

// Name implements kernel.MemoryManager.
func (m *Manager) Name() string {
	return fmt.Sprintf("linux(hpc=%s,commodity=%s)", m.HPCMode, m.CommodityMode)
}

// modeFor returns the large-page policy of a process.
func (m *Manager) modeFor(p *kernel.Process) Mode {
	if p.Commodity {
		return m.CommodityMode
	}
	return m.HPCMode
}

// region is the manager's view of one mapped range. Demand paging
// materializes it lazily as the process touches it.
type region struct {
	start  pgtable.VirtAddr
	length uint64
	prot   pgtable.Prot
	kind   vma.Kind

	// touched is the materialized prefix in bytes (first-touch order).
	touched uint64

	// THP: the interior span [largeLo, largeHi) is 2MB-alignable.
	largeLo, largeHi uint64 // offsets from start

	// hugetlb marks a pool-backed region (ModeHugeTLB anon/heap).
	hugetlb bool
	// slabs already materialized (hugetlb only).
	slabs uint64

	// fallback lists chunk offsets where a THP fault fell back to small
	// pages — khugepaged's merge candidates.
	fallback []uint64

	// heapStyle marks a brk-grown region under THP: it is extended in
	// small increments, so the VMA tail never covers a whole 2MB chunk at
	// fault time and every fault is served small (glibc heap behaviour on
	// real THP systems). Fully-touched chunks become merge candidates.
	heapStyle bool
	// heapChunks counts the full 2MB span chunks already queued for
	// merging.
	heapChunks uint64

	// Backing frames, for teardown.
	largeFrames []largeFrame
	smallBlocks []smallBlock
	// Residency accounting mirrors what we added to the process counters.
	smallBytes, largeBytes uint64
	remoteBytes            uint64

	// cow marks the prefix [0, cow) as copy-on-write: the frames belong
	// to the fork parent until this process writes them.
	cow uint64

	// swappedPages counts base pages of this region paged out to the
	// swap device; the slots are released at teardown.
	swappedPages uint64

	// down marks a region whose touch order is descending (the stack).
	down bool
}

type largeFrame struct {
	pfn  mem.PFN
	zone int
	pool bool // from the hugetlb pool rather than the buddy
}

// smallBlock is one buddy block backing 4KB-mapped memory.
type smallBlock struct {
	pfn   mem.PFN
	order int
}

// procState is the manager's per-process state.
type procState struct {
	mode    Mode
	regions map[pgtable.VirtAddr]*region
	starts  []pgtable.VirtAddr // sorted keys
	stack   *region
	heap    *region
	// mergeCursor remembers where khugepaged last worked in this process.
	mergeCursor int
}

func (ps *procState) insert(r *region) {
	ps.regions[r.start] = r
	i := sort.Search(len(ps.starts), func(i int) bool { return ps.starts[i] >= r.start })
	ps.starts = append(ps.starts, 0)
	copy(ps.starts[i+1:], ps.starts[i:])
	ps.starts[i] = r.start
}

func (ps *procState) remove(start pgtable.VirtAddr) {
	delete(ps.regions, start)
	i := sort.Search(len(ps.starts), func(i int) bool { return ps.starts[i] >= start })
	if i < len(ps.starts) && ps.starts[i] == start {
		ps.starts = append(ps.starts[:i], ps.starts[i+1:]...)
	}
}

// findRegion returns the region containing va, or nil.
func (ps *procState) findRegion(va pgtable.VirtAddr) *region {
	i := sort.Search(len(ps.starts), func(i int) bool { return ps.starts[i] > va })
	if i == 0 {
		return nil
	}
	r := ps.regions[ps.starts[i-1]]
	if va < r.start+pgtable.VirtAddr(r.length) {
		return r
	}
	return nil
}

func state(p *kernel.Process) *procState { return p.MMState().(*procState) }

// newRegion returns a region struct from the recycle pool (keeping its
// slice capacity) or a fresh one.
func (m *Manager) newRegion() *region {
	if n := len(m.regionPool); n > 0 {
		r := m.regionPool[n-1]
		m.regionPool = m.regionPool[:n-1]
		lf, sb, fb := r.largeFrames[:0], r.smallBlocks[:0], r.fallback[:0]
		*r = region{largeFrames: lf, smallBlocks: sb, fallback: fb}
		m.RegionPoolReuses++
		return r
	}
	return &region{}
}

// newProcState returns per-process state from the recycle pool (keeping
// its map and slice capacity) or a fresh struct.
func (m *Manager) newProcState() *procState {
	if n := len(m.psPool); n > 0 {
		ps := m.psPool[n-1]
		m.psPool[n-1] = nil
		m.psPool = m.psPool[:n-1]
		return ps
	}
	return &procState{regions: make(map[pgtable.VirtAddr]*region)}
}

// Attach implements kernel.MemoryManager.
func (m *Manager) Attach(p *kernel.Process) error {
	ps := m.newProcState()
	ps.mode = m.modeFor(p)
	// The stack region: fixed ceiling, grows down, always 4KB pages
	// (HugeTLBfs cannot map stacks; THP does not back stacks either).
	layout := p.Space.Layout()
	stack := m.newRegion()
	stack.start = layout.StackTop - pgtable.VirtAddr(layout.StackMax)
	stack.length = layout.StackMax
	stack.prot = pgtable.ProtRead | pgtable.ProtWrite
	stack.kind = vma.KindStack
	stack.down = true
	ps.stack = stack
	ps.insert(ps.stack)
	p.SetMMState(ps)
	m.procs = append(m.procs, p)
	return nil
}

// Detach implements kernel.MemoryManager: frees every frame the process
// holds.
func (m *Manager) Detach(p *kernel.Process) {
	ps := state(p)
	for _, start := range append([]pgtable.VirtAddr(nil), ps.starts...) {
		m.releaseRegion(p, ps.regions[start])
		ps.remove(start)
	}
	for i, q := range m.procs {
		if q == p {
			m.procs = append(m.procs[:i], m.procs[i+1:]...)
			break
		}
	}
}

// DetachReap implements kernel.ReapDetacher: same teardown as Detach —
// frames freed region by region in ascending start order, so the buddy
// free lists end in the identical state — but the region structs and the
// per-process state are recycled rather than dropped, and MMState is
// cleared so a stale post-exit call fails loudly instead of reading
// recycled state.
func (m *Manager) DetachReap(p *kernel.Process) {
	ps := state(p)
	for _, start := range ps.starts {
		r := ps.regions[start]
		m.releaseRegion(p, r)
		m.regionPool = append(m.regionPool, r)
	}
	clear(ps.regions)
	ps.starts = ps.starts[:0]
	ps.stack, ps.heap = nil, nil
	ps.mergeCursor = 0
	ps.mode = 0
	m.psPool = append(m.psPool, ps)
	p.SetMMState(nil)
	for i, q := range m.procs {
		if q == p {
			m.procs = append(m.procs[:i], m.procs[i+1:]...)
			break
		}
	}
}

// releaseRegion frees the region's frames and page-table entries.
func (m *Manager) releaseRegion(p *kernel.Process, r *region) {
	for _, lf := range r.largeFrames {
		if lf.pool {
			m.Pools.Free2M(lf.pfn, lf.zone)
		} else {
			m.node.Mem.Free(lf.pfn, mem.LargePageOrder)
		}
	}
	for _, b := range r.smallBlocks {
		m.node.Mem.Free(b.pfn, b.order)
	}
	p.ResidentSmall -= r.smallBytes
	p.ResidentLarge -= r.largeBytes
	p.ResidentRemote -= r.remoteBytes
	if r.swappedPages > 0 {
		m.node.Swap().Release(r.swappedPages)
		r.swappedPages = 0
	}
	if m.node.Detail {
		p.PT.UnmapRange(r.start, r.length)
	}
	r.largeFrames = r.largeFrames[:0]
	r.smallBlocks = r.smallBlocks[:0]
	r.smallBytes, r.largeBytes, r.remoteBytes = 0, 0, 0
	r.touched = 0
	r.slabs = 0
}

// Mmap implements kernel.MemoryManager: reserve address space, allocate
// nothing — Linux's demand-paged policy. Cost is VMA bookkeeping only.
func (m *Manager) Mmap(p *kernel.Process, length uint64, prot pgtable.Prot, kind vma.Kind) (pgtable.VirtAddr, sim.Cycles, error) {
	ps := state(p)
	align := uint64(0)
	vkind := kind
	// libhugetlbfs backs the heap and large mappings; small anonymous
	// mmaps (MPI bounce buffers, loader scratch) stay on 4KB pages.
	useHugetlb := ps.mode == ModeHugeTLB &&
		(kind == vma.KindHeap || (kind == vma.KindAnon && length >= HugeTLBMmapThreshold))
	if useHugetlb {
		align = mem.LargePageSize
		length = roundUp(length, mem.LargePageSize)
		vkind = vma.KindHugeTLB
	}
	// Resolve placement first: the VMA layer may merge the new mapping
	// into a neighbour, but the manager's region identity is the address
	// mmap returns to userspace.
	searchAlign := align
	if searchAlign == 0 {
		searchAlign = mem.PageSize
	}
	addr, err := p.Space.FindUnmapped(roundUp(length, mem.PageSize), searchAlign)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.Space.MapAligned(addr, length, prot, vkind, align); err != nil {
		return 0, 0, err
	}
	r := m.newRegion()
	r.start, r.length, r.prot, r.kind, r.hugetlb = addr, roundUp(length, mem.PageSize), prot, kind, useHugetlb
	m.computeLargeSpan(ps, r)
	ps.insert(r)
	// A VMA insert walks the rbtree and possibly merges: small cost.
	return addr, sim.Cycles(m.rand.Jitter(1200, 0.3)), nil
}

// computeLargeSpan records the THP-eligible interior of the region.
func (m *Manager) computeLargeSpan(ps *procState, r *region) {
	if ps.mode != ModeTHP || r.kind == vma.KindStack || r.kind == vma.KindFile {
		r.largeLo, r.largeHi = 0, 0
		return
	}
	lo := roundUp(uint64(r.start), mem.LargePageSize) - uint64(r.start)
	hi := (uint64(r.start)+r.length)/mem.LargePageSize*mem.LargePageSize - uint64(r.start)
	if hi <= lo {
		r.largeLo, r.largeHi = 0, 0
		return
	}
	r.largeLo, r.largeHi = lo, hi
}

// Munmap implements kernel.MemoryManager. Only whole-region unmaps are
// supported (HPC allocators release whole arenas; partial unmap of a
// demand-paged region is not exercised by the paper's workloads).
func (m *Manager) Munmap(p *kernel.Process, addr pgtable.VirtAddr, length uint64) (sim.Cycles, error) {
	ps := state(p)
	r := ps.regions[addr]
	lengthOK := func() bool {
		if r == nil {
			return false
		}
		if r.length == roundUp(length, mem.PageSize) {
			return true
		}
		// hugetlb-backed regions were rounded up to 2MB at mmap time;
		// munmap with the original length still unmaps the region.
		return r.hugetlb && r.length == roundUp(length, mem.LargePageSize)
	}
	if !lengthOK() {
		got := uint64(0)
		if r != nil {
			got = r.length
		}
		return 0, fmt.Errorf("linuxmm: munmap %#x+%#x (pid %d) does not match a mapped region (have %#x)", uint64(addr), length, p.PID, got)
	}
	length = r.length
	pages := r.smallBytes/mem.PageSize + r.largeBytes/mem.LargePageSize
	m.releaseRegion(p, r)
	ps.remove(addr)
	if r != ps.heap && r != ps.stack {
		m.regionPool = append(m.regionPool, r)
	}
	if err := p.Space.Unmap(addr, length); err != nil {
		return 0, err
	}
	// Teardown walks every PTE: cost scales with resident pages.
	return sim.Cycles(m.rand.Jitter(sim.Cycles(800+30*pages), 0.2)), nil
}

// Brk implements kernel.MemoryManager.
func (m *Manager) Brk(p *kernel.Process, newBrk pgtable.VirtAddr) (pgtable.VirtAddr, sim.Cycles, error) {
	ps := state(p)
	cur := p.Space.Brk()
	if newBrk == 0 {
		return cur, sim.Cycles(m.rand.Jitter(600, 0.2)), nil
	}
	got, err := p.Space.SetBrk(newBrk)
	if err != nil {
		return cur, 0, err
	}
	start := p.Space.Layout().BrkStart
	if ps.heap == nil {
		ps.heap = &region{
			start:     start,
			prot:      pgtable.ProtRead | pgtable.ProtWrite,
			kind:      vma.KindHeap,
			hugetlb:   ps.mode == ModeHugeTLB,
			heapStyle: ps.mode == ModeTHP,
		}
		ps.insert(ps.heap)
		m.computeLargeSpan(ps, ps.heap)
	}
	newLen := uint64(got - start)
	if newLen < ps.heap.touched {
		// Shrink below the materialized prefix: release and re-demand.
		// (Rare; the workloads grow monotonically.)
		ps.heap.touched = newLen
	}
	ps.heap.length = roundUp(newLen, mem.PageSize)
	m.computeLargeSpan(ps, ps.heap)
	return got, sim.Cycles(m.rand.Jitter(900, 0.2)), nil
}

// Mprotect implements kernel.MemoryManager.
func (m *Manager) Mprotect(p *kernel.Process, addr pgtable.VirtAddr, length uint64, prot pgtable.Prot) (sim.Cycles, error) {
	if err := p.Space.Protect(addr, length, prot); err != nil {
		return 0, err
	}
	ps := state(p)
	if r := ps.findRegion(addr); r != nil {
		r.prot = prot
		// A protection change inside a region fragments its THP span,
		// one of the paper's "permission conflict" layout problems.
		if uint64(addr) > uint64(r.start) || length < r.length {
			r.largeLo, r.largeHi = 0, 0
		}
	}
	return sim.Cycles(m.rand.Jitter(1500, 0.3)), nil
}

// PageSizeAt implements kernel.MemoryManager.
func (m *Manager) PageSizeAt(p *kernel.Process, va pgtable.VirtAddr) pgtable.PageSize {
	r := state(p).findRegion(va)
	if r == nil {
		return pgtable.Page4K
	}
	off := uint64(va - r.start)
	if r.hugetlb && off < r.slabs*m.Pools.SlabBytes {
		return pgtable.Page2M
	}
	if off >= r.largeLo && off < r.largeHi && r.largeBytes > 0 {
		return pgtable.Page2M
	}
	return pgtable.Page4K
}

// StackRange implements kernel.MemoryManager: the Linux stack grows down
// from StackTop.
func (m *Manager) StackRange(p *kernel.Process, bytes uint64) (pgtable.VirtAddr, uint64) {
	layout := p.Space.Layout()
	if bytes > layout.StackMax {
		bytes = layout.StackMax
	}
	return layout.StackTop - pgtable.VirtAddr(bytes), bytes
}

func roundUp(v, to uint64) uint64 { return (v + to - 1) / to * to }
