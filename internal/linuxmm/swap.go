package linuxmm

import (
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
)

// Swapping: when direct reclaim has no page cache left, vmscan pages out
// inactive anonymous memory of commodity processes before resorting to
// the OOM killer. Victims are the commodity processes' 4KB-backed
// regions (long-idle build/make footprints); HPC processes are never
// swapped — the paper's configurations either mlock them or, under
// HPMMAP, keep their memory outside Linux entirely.

// swapOutCommodity pages out up to `want` base pages of commodity anon
// memory, returning how many frames were actually freed. Swap slots are
// reserved block by block; the frames go back to the buddy.
func (m *Manager) swapOutCommodity(exclude *kernel.Process, want uint64) uint64 {
	swap := m.node.Swap()
	var released uint64
	for _, q := range m.procs {
		if released >= want {
			break
		}
		if !q.Commodity || q.Exited || q == exclude {
			continue
		}
		qs := state(q)
		for _, start := range qs.starts {
			if released >= want {
				break
			}
			r := qs.regions[start]
			for released < want && len(r.smallBlocks) > 0 {
				blk := r.smallBlocks[len(r.smallBlocks)-1]
				pages := mem.PagesPerOrder(blk.order)
				if got := swap.Reserve(pages); got < pages {
					// Swap device full: hand back the partial grant and
					// stop — the caller escalates to the OOM killer.
					swap.Release(got)
					m.SwappedOutPages += released
					return released
				}
				r.smallBlocks = r.smallBlocks[:len(r.smallBlocks)-1]
				m.node.Mem.Free(blk.pfn, blk.order)
				bytes := mem.BytesPerOrder(blk.order)
				released += pages
				r.swappedPages += pages
				if r.smallBytes >= bytes {
					r.smallBytes -= bytes
				} else {
					r.smallBytes = 0
				}
				if q.ResidentSmall >= bytes {
					q.ResidentSmall -= bytes
				} else {
					q.ResidentSmall = 0
				}
			}
		}
	}
	m.SwappedOutPages += released
	return released
}
