package linuxmm

import (
	"testing"

	"hpmmap/internal/vma"
)

// churn runs one pod-like lifetime: spawn, map, touch, finish, reap.
func churn(t testing.TB, e *env, bytes uint64) {
	t.Helper()
	p, err := e.node.NewProcess("pod", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	tk := e.node.NewTask(p, -1, 1)
	addr, _, err := e.node.Mmap(p, bytes, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(p, addr, bytes); err != nil {
		t.Fatal(err)
	}
	tk.Finish()
	e.node.ExitReap(p)
}

// TestExitReapRecyclesStructsClean drives the poisoned-struct hazard:
// a process accumulates per-field state over its lifetime (resident
// counters, VMAs, fault records, task bookkeeping), exits through
// ExitReap, and its struct is handed to the next NewProcess. Every
// observable of the successor must read newborn — any field the reset
// in reap()/procStruct() misses shows up here as leaked residency, a
// shifted mapping address, or a stale task.
func TestExitReapRecyclesStructsClean(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	if !e.node.LifecyclePooling() {
		t.Fatal("lifecycle pooling should default on")
	}

	// First life: dirty every field a pod lifetime dirties.
	p1, err := e.node.NewProcess("first", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pid1 := p1.PID
	tk := e.node.NewTask(p1, -1, 1)
	a1, _, err := e.node.Mmap(p1, 64<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(p1, a1, 64<<20); err != nil {
		t.Fatal(err)
	}
	if p1.ResidentBytes() == 0 {
		t.Fatal("first life should be resident after touch")
	}
	free := e.node.Mem.FreePages()
	tk.Finish()
	e.node.ExitReap(p1)
	if e.node.Mem.FreePages() <= free {
		t.Fatal("ExitReap did not free the first life's frames")
	}
	if e.node.LifecycleReaps != 1 {
		t.Fatalf("LifecycleReaps = %d, want 1", e.node.LifecycleReaps)
	}

	// Second life must get the recycled struct, newborn in every
	// observable: zero residency, fresh PID, the same layout base as a
	// brand-new address space, and no inherited tasks.
	p2, err := e.node.NewProcess("second", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatal("NewProcess did not reuse the reaped struct")
	}
	if e.node.LifecycleProcReuses != 1 {
		t.Fatalf("LifecycleProcReuses = %d, want 1", e.node.LifecycleProcReuses)
	}
	if p2.PID == pid1 {
		t.Fatal("recycled process kept the dead PID")
	}
	if p2.Exited {
		t.Fatal("recycled process still marked Exited")
	}
	if p2.ResidentBytes() != 0 {
		t.Fatalf("recycled process has %d resident bytes before any touch", p2.ResidentBytes())
	}
	if p2.Name != "second" {
		t.Fatalf("recycled process Name = %q", p2.Name)
	}
	tk2 := e.node.NewTask(p2, -1, 1)
	if e.node.LifecycleTaskReuses != 1 {
		t.Fatalf("LifecycleTaskReuses = %d, want 1", e.node.LifecycleTaskReuses)
	}
	if tk2.Done() {
		t.Fatal("recycled task still marked done")
	}
	a2, _, err := e.node.Mmap(p2, 64<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatalf("recycled address space maps at %#x, newborn mapped at %#x", a2, a1)
	}
	st, err := e.node.TouchRange(p2, a2, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	var faults uint64
	for _, f := range st.Faults {
		faults += f
	}
	if faults == 0 {
		t.Fatal("recycled page table served touches without faulting (stale mappings)")
	}
}

// TestExitNeverRecycles pins the Exit/ExitReap split: plain Exit is for
// non-quiescent call sites (OOM killer, chaos) and must never feed the
// pools.
func TestExitNeverRecycles(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p, err := e.node.NewProcess("p", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.node.Exit(p)
	if e.node.LifecycleReaps != 0 {
		t.Fatal("plain Exit recycled a struct")
	}
	p2, err := e.node.NewProcess("q", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p {
		t.Fatal("NewProcess reused a struct that went through plain Exit")
	}
}

// TestExitReapUnfinishedTaskStaysDead: a process with a task still not
// done is not quiescent — teardown happens but the struct must not be
// recycled (the runqueue may still reference the task).
func TestExitReapUnfinishedTaskStaysDead(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p, err := e.node.NewProcess("p", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.node.NewTask(p, -1, 1) // never finished
	e.node.ExitReap(p)
	if !p.Exited {
		t.Fatal("ExitReap did not tear the process down")
	}
	p2, err := e.node.NewProcess("q", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p {
		t.Fatal("recycled a process with an unfinished task")
	}
}

// TestSteadyStateChurnBoundsPools: N sequential pod lifetimes should
// reach a steady state where every lifetime reuses the one recycled
// struct — the pools must not grow with churn.
func TestSteadyStateChurnBoundsPools(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	const lives = 50
	for i := 0; i < lives; i++ {
		churn(t, e, 32<<20)
	}
	if e.node.LifecycleReaps != lives {
		t.Fatalf("LifecycleReaps = %d, want %d", e.node.LifecycleReaps, lives)
	}
	// Every life after the first reuses the single pooled struct.
	if e.node.LifecycleProcReuses != lives-1 {
		t.Fatalf("LifecycleProcReuses = %d, want %d", e.node.LifecycleProcReuses, lives-1)
	}
}

// BenchmarkForkExit measures the pod-lifetime hot loop with the
// lifecycle fast path on and off. The pooled variant is the `make
// bench` gate: it must hold a >= 2x advantage in allocated bytes/op
// (in practice it is far larger — steady-state churn allocates almost
// nothing).
func BenchmarkForkExit(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			e := newEnv(b, ModeTHP, ModeTHP, 0, false)
			e.node.SetLifecyclePooling(pooled)
			b.ReportAllocs()
			b.ResetTimer()
			// A 2MB footprint keeps the loop lifecycle-dominated: the
			// measured work is attach/mmap/detach/reap, not the touch.
			for i := 0; i < b.N; i++ {
				churn(b, e, 2<<20)
			}
		})
	}
}
