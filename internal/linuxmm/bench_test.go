package linuxmm

// Hot-path microbenchmarks for the touch/allocation cycle (ISSUE 6).
// Each iteration maps, touches and unmaps a region, so the steady state
// exercises exactly the machinery the refactor targets: the pooled
// touchCtx and region structs, gatedAllocRun's batched buddy draws, and
// the slot-indexed zone free lists on both the alloc and free sides.
// Run with `make bench` or:
//
//	go test -bench 'Touch|GatedAlloc' -benchmem ./internal/linuxmm/
//
// b.ReportAllocs makes per-op allocation regressions visible — the
// demand-paging cycle should stay in the low tens of allocations per op
// regardless of region size.

import (
	"testing"

	"hpmmap/internal/vma"
)

// BenchmarkTouchDemand measures the THP demand-paging fault path:
// mmap 64MB, touch it (large faults plus 4KB tails), unmap.
func BenchmarkTouchDemand(b *testing.B) {
	e := newEnv(b, ModeTHP, ModeTHP, 0, false)
	p := e.proc(b, false)
	const size = 64 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _, err := e.node.Mmap(p, size, rw, vma.KindAnon)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.TouchRange(p, addr, size); err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.Munmap(p, addr, size); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTouchHugetlb measures the HugeTLBfs slab-fault path: one
// fault per 2MB page out of the boot-time pool, stacks on 4KB pages.
func BenchmarkTouchHugetlb(b *testing.B) {
	e := newEnv(b, ModeHugeTLB, Mode4KOnly, 2<<30, false)
	p := e.proc(b, false)
	const size = 64 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _, err := e.node.Mmap(p, size, rw, vma.KindAnon)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.TouchRange(p, addr, size); err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.Munmap(p, addr, size); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatedAlloc measures the watermark-gated small-page backing
// loop in isolation: 4K-only mode routes the whole region through
// touchSmall, whose buddy draws batch into gatedAllocRun.
func BenchmarkGatedAlloc(b *testing.B) {
	e := newEnv(b, Mode4KOnly, Mode4KOnly, 0, false)
	p := e.proc(b, false)
	const size = 32 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _, err := e.node.Mmap(p, size, rw, vma.KindAnon)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.TouchRange(p, addr, size); err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.Munmap(p, addr, size); err != nil {
			b.Fatal(err)
		}
	}
}
