package linuxmm

import (
	"fmt"

	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
)

// This file implements thp.Merger: khugepaged's view into the manager.

// NextMergeCandidate returns the next THP-mode process that has at least
// one fallback chunk (a THP-eligible 2MB span currently mapped small).
func (m *Manager) NextMergeCandidate() *kernel.Process {
	n := len(m.procs)
	for i := 0; i < n; i++ {
		p := m.procs[(m.scanCursor+i)%n]
		if p.Exited || m.modeFor(p) != ModeTHP {
			continue
		}
		ps := state(p)
		for _, start := range ps.starts {
			if len(ps.regions[start].fallback) > 0 {
				m.scanCursor = (m.scanCursor + i + 1) % n
				return p
			}
		}
	}
	return nil
}

// PerformMerge converts one fallback chunk of p to a 2MB mapping,
// returning the 512 small frames to the buddy.
func (m *Manager) PerformMerge(p *kernel.Process) bool {
	ps := state(p)
	for _, start := range ps.starts {
		r := ps.regions[start]
		if len(r.fallback) == 0 {
			continue
		}
		off := r.fallback[len(r.fallback)-1]
		pfn, zone, _, ok := m.allocLarge(p.PreferredZone)
		if !ok {
			return false
		}
		r.fallback = r.fallback[:len(r.fallback)-1]
		// Release ~2MB of small backing.
		released := uint64(0)
		for released < mem.LargePageSize && len(r.smallBlocks) > 0 {
			blk := r.smallBlocks[len(r.smallBlocks)-1]
			r.smallBlocks = r.smallBlocks[:len(r.smallBlocks)-1]
			m.node.Mem.Free(blk.pfn, blk.order)
			released += mem.BytesPerOrder(blk.order)
		}
		if r.smallBytes >= mem.LargePageSize {
			r.smallBytes -= mem.LargePageSize
		} else {
			r.smallBytes = 0
		}
		if p.ResidentSmall >= mem.LargePageSize {
			p.ResidentSmall -= mem.LargePageSize
		} else {
			p.ResidentSmall = 0
		}
		r.largeFrames = append(r.largeFrames, largeFrame{pfn: pfn, zone: zone})
		r.largeBytes += mem.LargePageSize
		p.ResidentLarge += mem.LargePageSize
		if zone != p.PreferredZone {
			r.remoteBytes += mem.LargePageSize
			p.ResidentRemote += mem.LargePageSize
		}
		if m.node.Detail {
			va := r.start + pgtable.VirtAddr(off)
			p.PT.UnmapRange(va, mem.LargePageSize)
			if err := p.PT.Map(va, pfn, pgtable.Page2M, r.prot); err != nil {
				// Simulated-state violation: khugepaged unmapped the 4KB
				// range but the 2MB remap still collided.
				invariant.Fail(invariant.Violation{
					Check: "merge_remap_conflict", Subsystem: "linuxmm", PID: p.PID,
					Manager: "thp",
					Detail:  fmt.Sprintf("khugepaged remap at %#x failed after unmap: %v", uint64(va), err),
				})
			}
		}
		return true
	}
	return false
}
