package linuxmm

import (
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
)

// MlockAll pins the process's entire resident set in RAM (the mlockall
// system call). The paper's Section II-B: "THP does not support the
// pinning of large pages. When a user specifies that a region mapped by a
// large page be pinned in RAM, the page is first split into small pages
// and then pinned." — so the often-suggested fragmentation defence costs
// a THP process its large pages.
//
// Under ModeHugeTLB, hugetlb pages are unswappable by construction and
// are left intact; only the 4KB-mapped remainder is pinned.
func (m *Manager) MlockAll(p *kernel.Process) (sim.Cycles, error) {
	ps := state(p)
	var cost float64
	for _, start := range ps.starts {
		r := ps.regions[start]
		if r.hugetlb {
			continue // hugetlb pages cannot swap; nothing to pin or split
		}
		if n := uint64(len(r.largeFrames)); n > 0 {
			m.SplitOnMlock += n
			bytes := n * mem.LargePageSize
			// The frames stay allocated (one 512-page group per chunk);
			// only the mapping granularity and accounting change.
			r.smallBytes += bytes
			r.largeBytes -= bytes
			p.ResidentLarge -= bytes
			p.ResidentSmall += bytes
			for _, lf := range r.largeFrames {
				r.smallBlocks = append(r.smallBlocks, smallBlock{pfn: lf.pfn, order: mem.LargePageOrder})
			}
			r.largeFrames = r.largeFrames[:0]
			// Splitting rewrites 512 PTEs per chunk.
			cost += float64(n) * 45_000
		}
		// Pinned pages defeat the THP fault path and khugepaged alike.
		r.largeLo, r.largeHi = 0, 0
		r.fallback = nil
		r.heapChunks = 0
	}
	if m.node.Detail && !p.Commodity {
		// Rebuild the page tables at 4KB granularity.
		var splitVAs []pgtable.VirtAddr
		p.PT.Range(func(va pgtable.VirtAddr, mp pgtable.Mapping) bool {
			if mp.Size == pgtable.Page2M {
				splitVAs = append(splitVAs, va)
			}
			return true
		})
		for _, va := range splitVAs {
			if err := p.PT.Split2M(va); err != nil {
				return 0, err
			}
		}
	}
	for _, v := range p.Space.VMAs() {
		v.Locked = true
	}
	total := sim.Cycles(m.rand.Jitter(sim.Cycles(2000+cost), 0.1))
	// The split work dominates the call; attribute the whole pinned cost
	// to the mlock-split cause (MlockAll has no node syscall wrapper, so
	// nothing else charges it).
	p.Account.Charge(timeline.CauseMlockSplit, total)
	return total, nil
}
