package linuxmm

import (
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
)

// Fork and exec: the commodity behaviours Linux's demand-paged design
// exists to make cheap (paper §II-A: the design "eliminat[es] overheads
// resulting from common commodity application behaviors (e.g.
// fork/exec)"). Fork copies the VMA structures and page tables and marks
// the child's view copy-on-write — no physical memory moves. The child's
// first writes then take COW faults that allocate a private frame and
// copy the page. Exec drops the inherited image.
//
// HPMMAP deliberately does not implement fork: an eager, on-request
// design would have to duplicate the entire resident set at fork time.
// The paper's position is that HPC applications do not fork after
// initialization; kernel.Node.Fork returns ErrForkUnsupported for
// registered processes.

// PTECopyCost is the per-resident-page cost of duplicating page tables
// and VMA structures at fork.
const PTECopyCost = 140

// Fork implements kernel.Forker: child inherits the parent's regions
// copy-on-write.
func (m *Manager) Fork(parent, child *kernel.Process) (sim.Cycles, error) {
	if err := m.Attach(child); err != nil {
		return 0, err
	}
	pps := state(parent)
	cps := state(child)
	for _, start := range pps.starts {
		pr := pps.regions[start]
		if pr.down {
			// The child gets a fresh stack from Attach; the parent's
			// stack contents are copied eagerly (they are tiny).
			cps.stack.touched = pr.touched
			continue
		}
		cr := m.newRegion()
		cr.start, cr.length, cr.prot, cr.kind = pr.start, pr.length, pr.prot, pr.kind
		cr.largeLo, cr.largeHi = pr.largeLo, pr.largeHi
		cr.hugetlb = pr.hugetlb
		cr.heapStyle = pr.heapStyle
		// cow: frames are the parent's until written. The child owns no
		// pages yet (touched=0); its writes take COW faults that allocate
		// a private frame and copy.
		cr.cow = pr.touched
		cps.insert(cr)
		if pr == pps.heap {
			cps.heap = cr
		}
	}
	// Duplicating the mm: one pass over the resident set's PTEs.
	residentPages := parent.ResidentBytes() / mem.PageSize
	cost := sim.Cycles(float64(residentPages) * PTECopyCost)
	return m.rand.Jitter(cost+4000, 0.15), nil
}

// Exec discards the process image (the inherited COW view and any private
// regions except the stack), as execve does before loading a new binary.
func (m *Manager) Exec(p *kernel.Process) (sim.Cycles, error) {
	ps := state(p)
	released := 0
	for _, start := range append([]pgtable.VirtAddr(nil), ps.starts...) {
		r := ps.regions[start]
		if r.down {
			r.touched = 0
			continue
		}
		m.releaseRegion(p, r)
		ps.remove(start)
		m.regionPool = append(m.regionPool, r)
		released++
		if err := p.Space.Unmap(r.start, r.length); err != nil {
			return 0, err
		}
	}
	ps.heap = nil
	if _, err := p.Space.SetBrk(p.Space.Layout().BrkStart); err != nil {
		return 0, err
	}
	return m.rand.Jitter(sim.Cycles(20_000+2_000*released), 0.2), nil
}

// cowTouch materializes the child's private copy of a COW prefix: the
// same allocation path as a normal fault plus the page copy.
func (m *Manager) cowTouch(tc *touchCtx, from, to uint64) {
	r := tc.r
	if to > r.cow {
		to = r.cow
	}
	if to <= from {
		return
	}
	bytes := to - from
	// The allocation/fault side reuses the normal small path (COW breaks
	// large mappings down to small pages on write, like THP splitting).
	m.touchSmall(tc, bytes, r.start+pgtable.VirtAddr(from))
	// Copy cost: read + write of every touched byte, at bandwidth —
	// charged on top of the fault service time.
	copyCost := sim.Cycles(2 * float64(bytes) / (2 << 20) * m.costs().Clear2MCycles(tc.load))
	tc.cum += copyCost
	tc.stats.Cycles[fault.KindSmall] += copyCost
	tc.p.Faults.Cycles[fault.KindSmall] += copyCost
}

// ErrForkUnsupported is returned when a manager cannot fork a process.
var ErrForkUnsupported = fmt.Errorf("linuxmm: fork unsupported by this manager")
