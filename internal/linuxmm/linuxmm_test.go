package linuxmm

import (
	"testing"

	"hpmmap/internal/fault"
	"hpmmap/internal/hugetlb"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

const rw = pgtable.ProtRead | pgtable.ProtWrite

type env struct {
	eng  *sim.Engine
	node *kernel.Node
	mgr  *Manager
}

func newEnv(t testing.TB, hpc, commodity Mode, hugetlbBytes uint64, detail bool) *env {
	t.Helper()
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(42))
	node.Detail = detail
	var pools *hugetlb.Pools
	if hugetlbBytes > 0 {
		var err error
		pools, err = hugetlb.Reserve(node.Mem, hugetlbBytes)
		if err != nil {
			t.Fatal(err)
		}
	}
	mgr := New(node, hpc, commodity, pools)
	node.SetDefaultMM(mgr)
	return &env{eng: eng, node: node, mgr: mgr}
}

func (e *env) proc(t testing.TB, commodity bool) *kernel.Process {
	t.Helper()
	p, err := e.node.NewProcess("p", commodity, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMmapIsDemandPaged(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	free := e.node.Mem.FreePages()
	addr, cost, err := e.node.Mmap(p, 1<<30, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if e.node.Mem.FreePages() != free {
		t.Fatal("mmap allocated physical memory (should be demand paged)")
	}
	if cost > 100_000 {
		t.Fatalf("mmap cost %d too high for a VMA-only operation", cost)
	}
	if addr == 0 {
		t.Fatal("mmap returned zero address")
	}
	if p.ResidentBytes() != 0 {
		t.Fatal("resident before touch")
	}
}

func TestTouchMaterializesWithTHP(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	addr, _, err := e.node.Mmap(p, 64<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.node.TouchRange(p, addr, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[fault.KindLarge] == 0 {
		t.Fatal("no large faults on an idle machine")
	}
	// Most of the region should be 2MB-mapped.
	if p.LargeFraction() < 0.9 {
		t.Fatalf("large fraction %v, want > 0.9", p.LargeFraction())
	}
	// Cost per large fault in the calibrated band.
	avg := float64(st.Cycles[fault.KindLarge]) / float64(st.Faults[fault.KindLarge])
	if avg < 250e3 || avg > 600e3 {
		t.Fatalf("large fault avg %v outside calibration", avg)
	}
	// Touching again faults nothing.
	st2, _ := e.node.TouchRange(p, addr, 64<<20)
	if st2.TotalFaults() != 0 {
		t.Fatalf("re-touch faulted %d times", st2.TotalFaults())
	}
}

func TestTouch4KOnlyMode(t *testing.T) {
	e := newEnv(t, Mode4KOnly, Mode4KOnly, 0, false)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 8<<20, rw, vma.KindAnon)
	st, err := e.node.TouchRange(p, addr, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[fault.KindLarge] != 0 {
		t.Fatal("large faults in 4K-only mode")
	}
	if st.Faults[fault.KindSmall] != 2048 {
		t.Fatalf("small faults %d, want 2048", st.Faults[fault.KindSmall])
	}
	if p.ResidentLarge != 0 {
		t.Fatal("large residency in 4K-only mode")
	}
}

func TestUnalignedRegionEdgesGoSmall(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	// Default placement is 4KB-granular: a region of odd size lands
	// unaligned and its edges cannot be 2MB-mapped.
	addr, _, _ := e.node.Mmap(p, 8<<20+12<<10, rw, vma.KindAnon)
	st, err := e.node.TouchRange(p, addr, 8<<20+12<<10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[fault.KindSmall] == 0 {
		t.Fatal("no small faults despite unaligned edges")
	}
	if st.Faults[fault.KindLarge] == 0 {
		t.Fatal("no large faults in the aligned interior")
	}
}

func TestStackFaultsAreSmallAndDescending(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	top := p.Space.Layout().StackTop
	st, err := e.node.TouchRange(p, top-pgtable.VirtAddr(64<<10), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[fault.KindSmall] != 16 {
		t.Fatalf("stack touch small faults %d, want 16", st.Faults[fault.KindSmall])
	}
	// Deeper touch faults only the delta.
	st2, _ := e.node.TouchRange(p, top-pgtable.VirtAddr(128<<10), 128<<10)
	if st2.Faults[fault.KindSmall] != 16 {
		t.Fatalf("deeper stack touch faulted %d, want 16", st2.Faults[fault.KindSmall])
	}
}

func TestBrkHeapGrowth(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	start := p.Space.Layout().BrkStart
	nb, _, err := e.node.Brk(p, start+pgtable.VirtAddr(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	if nb != start+pgtable.VirtAddr(32<<20) {
		t.Fatalf("brk returned %#x", uint64(nb))
	}
	st, err := e.node.TouchRange(p, start, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalFaults() == 0 {
		t.Fatal("heap touch took no faults")
	}
}

func TestHugeTLBSlabFaults(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 2<<30, false)
	p := e.proc(t, false)
	addr, _, err := e.node.Mmap(p, 256<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.node.TouchRange(p, addr, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	// One fault per 2MB page: 128 for 256MB.
	if st.Faults[fault.KindHugeTLBLarge] != 128 {
		t.Fatalf("hugetlb faults %d, want 128", st.Faults[fault.KindHugeTLBLarge])
	}
	avg := float64(st.Cycles[fault.KindHugeTLBLarge]) / 128
	if avg < 400e3 || avg > 1.2e6 {
		t.Fatalf("hugetlb fault avg %v outside calibration", avg)
	}
	if p.ResidentLarge != 256<<20 {
		t.Fatalf("resident large %d", p.ResidentLarge)
	}
	// The pool shrank by 128 pages.
	if got := e.mgr.Pools.FreePagesTotal(); got != 1024-128 {
		t.Fatalf("pool free %d", got)
	}
}

func TestHugeTLBStackStaysSmall(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 2<<30, false)
	p := e.proc(t, false)
	top := p.Space.Layout().StackTop
	st, err := e.node.TouchRange(p, top-pgtable.VirtAddr(1<<20), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[fault.KindHugeTLBSmall] != 256 {
		t.Fatalf("hugetlb stack faults: %+v", st.Faults)
	}
	if st.Faults[fault.KindHugeTLBLarge] != 0 {
		t.Fatal("stack got hugetlb large pages")
	}
}

func TestMunmapReturnsMemory(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	free := e.node.Mem.FreePages()
	addr, _, _ := e.node.Mmap(p, 32<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 32<<20); err != nil {
		t.Fatal(err)
	}
	if e.node.Mem.FreePages() >= free {
		t.Fatal("touch did not consume memory")
	}
	if _, err := e.node.Munmap(p, addr, 32<<20); err != nil {
		t.Fatal(err)
	}
	if e.node.Mem.FreePages() != free {
		t.Fatalf("munmap leaked: %d != %d", e.node.Mem.FreePages(), free)
	}
	if p.ResidentBytes() != 0 {
		t.Fatalf("resident %d after munmap", p.ResidentBytes())
	}
	// Unmapping again fails cleanly.
	if _, err := e.node.Munmap(p, addr, 32<<20); err == nil {
		t.Fatal("double munmap succeeded")
	}
}

func TestExitReleasesEverything(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 2<<30, false)
	p := e.proc(t, false)
	free := e.node.Mem.FreePages()
	poolFree := e.mgr.Pools.FreePagesTotal()
	addr, _, _ := e.node.Mmap(p, 128<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 128<<20); err != nil {
		t.Fatal(err)
	}
	top := p.Space.Layout().StackTop
	if _, err := e.node.TouchRange(p, top-pgtable.VirtAddr(1<<20), 1<<20); err != nil {
		t.Fatal(err)
	}
	e.node.Exit(p)
	if e.node.Mem.FreePages() != free {
		t.Fatal("exit leaked buddy memory")
	}
	if e.mgr.Pools.FreePagesTotal() != poolFree {
		t.Fatal("exit leaked pool pages")
	}
}

func TestTHPFallbackUnderFragmentation(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	e.mgr.THPFallbackBase = 0 // isolate the fragmentation mechanism
	p := e.proc(t, false)

	// Consume memory with page cache down to just above the min
	// watermark: watermark-gated 2MB allocations fail until compaction
	// (cache eviction) makes room.
	for _, z := range e.node.Mem.Zones {
		n := z.FreePages() - z.WatermarkMin - 100
		e.node.PageCacheAdd(z.ID, n*mem.PageSize)
	}
	addr, _, _ := e.node.Mmap(p, 64<<20, rw, vma.KindAnon)
	st, err := e.node.TouchRange(p, addr, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Compaction (cache eviction) should have been needed; depending on
	// eviction luck some chunks may have fallen back to small.
	if e.mgr.Compactions == 0 && st.Faults[fault.KindSmall] == 0 {
		t.Fatalf("no compactions and no fallbacks under fragmentation: %+v", st.Faults)
	}
}

func TestReclaimStormsWhenMemoryExhausted(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 12<<30, false)
	p := e.proc(t, false)
	// 12GB of 16GB reserved. Exhaust the remainder below the min
	// watermark with anonymous commodity memory (not page cache, so
	// direct reclaim has to work for its progress).
	hog := e.proc(t, true)
	hogAddr, _, _ := e.node.Mmap(hog, 3<<30, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(hog, hogAddr, 3<<30); err != nil {
		t.Fatal(err)
	}
	// Add page cache to absorb what's left.
	for _, z := range e.node.Mem.Zones {
		e.node.PageCacheAdd(z.ID, z.FreePages()*mem.PageSize)
	}
	// Now the HPC process's small faults (stack) contend hard.
	top := p.Space.Layout().StackTop
	st, err := e.node.TouchRange(p, top-pgtable.VirtAddr(4<<20), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stalls == 0 {
		t.Fatalf("no reclaim storms with memory exhausted: %+v", st)
	}
	avg := float64(st.Total()) / float64(st.TotalFaults())
	if avg < 10_000 {
		t.Fatalf("storm-era small fault avg %v suspiciously cheap", avg)
	}
}

func TestDetailModeBuildsPageTables(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, true)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 16<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 16<<20); err != nil {
		t.Fatal(err)
	}
	if p.PT.Mapped2M == 0 {
		t.Fatal("detail mode installed no 2MB PTEs")
	}
	m, ok := p.PT.Walk(addr + 4096)
	if !ok {
		t.Fatal("PT walk missed inside touched region")
	}
	if m.Size != pgtable.Page2M {
		t.Fatalf("PT granularity %v", m.Size)
	}
	// Faults were recorded individually in detail mode.
	if p.Faults.TotalFaults() == 0 {
		t.Fatal("no faults recorded")
	}
}

func TestPageSizeAtReportsGranularity(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 16<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 16<<20); err != nil {
		t.Fatal(err)
	}
	if ps := e.node.PageSizeAt(p, addr+8<<20); ps != pgtable.Page2M {
		t.Fatalf("interior page size %v", ps)
	}
	top := p.Space.Layout().StackTop
	if ps := e.node.PageSizeAt(p, top-4096); ps != pgtable.Page4K {
		t.Fatalf("stack page size %v", ps)
	}
}

func TestMprotectFragmentsTHPSpan(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 16<<20, rw, vma.KindAnon)
	if _, err := e.node.Mprotect(p, addr+4096, 4096, pgtable.ProtRead); err != nil {
		t.Fatal(err)
	}
	st, err := e.node.TouchRange(p, addr, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	// The permission conflict destroyed THP eligibility for the region.
	if st.Faults[fault.KindLarge] != 0 {
		t.Fatal("large faults despite permission conflict")
	}
}

func TestMergeStallsConsumedAsMergeFaults(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 8<<20, rw, vma.KindAnon)
	p.PendingMergeCosts = append(p.PendingMergeCosts, 1_000_000, 2_000_000)
	st, err := e.node.TouchRange(p, addr, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[fault.KindMergeBlocked] != 2 {
		t.Fatalf("merge-blocked faults %d, want 2", st.Faults[fault.KindMergeBlocked])
	}
	if st.Cycles[fault.KindMergeBlocked] < 3_000_000 {
		t.Fatalf("merge-blocked cycles %d below deposited durations", st.Cycles[fault.KindMergeBlocked])
	}
	if len(p.PendingMergeCosts) != 0 {
		t.Fatal("pending merges not consumed")
	}
}

func TestTouchUnmappedErrors(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	if _, err := e.node.TouchRange(p, 0xdead_0000_0000, 4096); err == nil {
		t.Fatal("touch of unmapped address succeeded")
	}
	addr, _, _ := e.node.Mmap(p, 1<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 2<<20); err == nil {
		t.Fatal("touch past region end succeeded")
	}
}

func TestCommodityModeSelection(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 1<<30, false)
	hpc := e.proc(t, false)
	build := e.proc(t, true)
	a1, _, _ := e.node.Mmap(hpc, 64<<20, rw, vma.KindAnon)
	a2, _, _ := e.node.Mmap(build, 64<<20, rw, vma.KindAnon)
	s1, err := e.node.TouchRange(hpc, a1, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.node.TouchRange(build, a2, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Faults[fault.KindHugeTLBLarge] == 0 {
		t.Fatal("HPC process did not use hugetlb")
	}
	if s2.Faults[fault.KindSmall] == 0 || s2.Faults[fault.KindLarge] != 0 || s2.Faults[fault.KindHugeTLBLarge] != 0 {
		t.Fatalf("commodity process faults: %+v", s2.Faults)
	}
}

func TestAggregateAndDetailFaultCountsAgree(t *testing.T) {
	count := func(detail bool) kernel.TouchStats {
		e := newEnv(t, ModeTHP, ModeTHP, 0, detail)
		p := e.proc(t, false)
		addr, _, _ := e.node.Mmap(p, 24<<20+64<<10, rw, vma.KindAnon)
		st, err := e.node.TouchRange(p, addr, 24<<20+64<<10)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	agg, det := count(false), count(true)
	if agg.TotalFaults() != det.TotalFaults() {
		t.Fatalf("aggregate %d faults, detail %d", agg.TotalFaults(), det.TotalFaults())
	}
	// Costs agree within 20%.
	ra := float64(agg.Total())
	rd := float64(det.Total())
	if ra/rd > 1.2 || rd/ra > 1.2 {
		t.Fatalf("aggregate cost %v vs detail %v diverge", ra, rd)
	}
}

func TestTHPHeapFaultsSmallThenMerges(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	start := p.Space.Layout().BrkStart
	// Grow the heap in glibc-sized increments, touching as we go.
	cur := start
	for i := 0; i < 64; i++ {
		nb, _, err := e.node.Brk(p, cur+pgtable.VirtAddr(256<<10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.node.TouchRange(p, cur, 256<<10); err != nil {
			t.Fatal(err)
		}
		cur = nb
	}
	// 16MB heap: all faults small, none large (THP cannot map a pmd the
	// VMA tail does not cover).
	if p.Faults.Faults[fault.KindLarge] != 0 {
		t.Fatalf("heap growth produced %d large faults", p.Faults.Faults[fault.KindLarge])
	}
	if p.Faults.Faults[fault.KindSmall] != 4096 {
		t.Fatalf("heap growth small faults %d, want 4096", p.Faults.Faults[fault.KindSmall])
	}
	// The fully-touched chunks are now khugepaged candidates.
	if e.mgr.NextMergeCandidate() != p {
		t.Fatal("heap chunks not offered for merging")
	}
	before := p.ResidentLarge
	if !e.mgr.PerformMerge(p) {
		t.Fatal("merge failed")
	}
	if p.ResidentLarge != before+mem.LargePageSize {
		t.Fatal("merge did not convert 2MB to large residency")
	}
}

func TestMlockAllSplitsTHPPages(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, true)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 32<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 32<<20); err != nil {
		t.Fatal(err)
	}
	largeBefore := p.ResidentLarge
	if largeBefore == 0 {
		t.Fatal("setup: no large residency")
	}
	cost, err := e.mgr.MlockAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("mlockall free")
	}
	// The paper's behaviour: every THP large page split into small pages.
	if p.ResidentLarge != 0 {
		t.Fatalf("large residency %d after mlockall", p.ResidentLarge)
	}
	if p.ResidentSmall < largeBefore {
		t.Fatalf("small residency %d did not absorb the split pages", p.ResidentSmall)
	}
	if e.mgr.SplitOnMlock == 0 {
		t.Fatal("no splits counted")
	}
	// Page tables rebuilt at 4KB.
	if p.PT.Mapped2M != 0 {
		t.Fatalf("%d 2MB PTEs survive mlockall", p.PT.Mapped2M)
	}
	// Future touches in the region stay small (THP defeated).
	st, err := e.node.TouchRange(p, addr, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	addr2, _, _ := e.node.Mmap(p, 8<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr2, 8<<20); err != nil {
		t.Fatal(err)
	}
	// Memory is not leaked on exit.
	free := e.node.Mem.FreePages()
	_ = free
	e.node.Exit(p)
}

func TestMlockAllLeavesHugeTLBIntact(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 2<<30, false)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 64<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 64<<20); err != nil {
		t.Fatal(err)
	}
	large := p.ResidentLarge
	if _, err := e.mgr.MlockAll(p); err != nil {
		t.Fatal(err)
	}
	if p.ResidentLarge != large {
		t.Fatalf("hugetlb pages split by mlockall: %d -> %d", large, p.ResidentLarge)
	}
	if e.mgr.SplitOnMlock != 0 {
		t.Fatal("hugetlb pages counted as splits")
	}
}

func TestMlockAllMemoryConservation(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	free := e.node.Mem.FreePages()
	addr, _, _ := e.node.Mmap(p, 32<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(p, addr, 32<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := e.mgr.MlockAll(p); err != nil {
		t.Fatal(err)
	}
	e.node.Exit(p)
	if e.node.Mem.FreePages() != free {
		t.Fatalf("mlockall+exit leaked: %d != %d", e.node.Mem.FreePages(), free)
	}
}

func TestForkIsCOWCheap(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	parent := e.proc(t, true)
	addr, _, _ := e.node.Mmap(parent, 512<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(parent, addr, 512<<20); err != nil {
		t.Fatal(err)
	}
	free := e.node.Mem.FreePages()
	child, cost, err := e.node.Fork(parent, "child")
	if err != nil {
		t.Fatal(err)
	}
	// Fork allocates no data pages...
	if e.node.Mem.FreePages() != free {
		t.Fatalf("fork consumed %d pages", free-e.node.Mem.FreePages())
	}
	// ...but is not free: page tables and VMAs are copied in proportion
	// to the parent's resident set.
	wantMin := sim.Cycles(float64(parent.ResidentBytes()/mem.PageSize) * PTECopyCost / 2)
	if cost < wantMin {
		t.Fatalf("fork cost %d below PTE-copy floor %d", cost, wantMin)
	}
	// The child's first writes take COW faults that allocate + copy.
	st, err := e.node.TouchRange(child, addr, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalFaults() == 0 {
		t.Fatal("COW touch took no faults")
	}
	if e.node.Mem.FreePages() >= free {
		t.Fatal("COW faults allocated nothing")
	}
	// COW faults cost more than plain small faults (they copy).
	avg := float64(st.Total()) / float64(st.TotalFaults())
	if avg < 2500 {
		t.Fatalf("COW fault avg %.0f too cheap to include a copy", avg)
	}
}

func TestExecDropsInheritedImage(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	parent := e.proc(t, true)
	addr, _, _ := e.node.Mmap(parent, 128<<20, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(parent, addr, 128<<20); err != nil {
		t.Fatal(err)
	}
	child, _, err := e.node.Fork(parent, "child")
	if err != nil {
		t.Fatal(err)
	}
	// The child dirties a little COW memory, then execs.
	if _, err := e.node.TouchRange(child, addr, 16<<20); err != nil {
		t.Fatal(err)
	}
	dirtied := child.ResidentBytes()
	if dirtied == 0 {
		t.Fatal("setup: no COW pages dirtied")
	}
	free := e.node.Mem.FreePages()
	if _, err := e.mgr.Exec(child); err != nil {
		t.Fatal(err)
	}
	if child.ResidentBytes() != 0 {
		t.Fatalf("resident %d after exec", child.ResidentBytes())
	}
	if e.node.Mem.FreePages() <= free {
		t.Fatal("exec freed nothing")
	}
	// Parent untouched.
	if parent.ResidentBytes() < 128<<20 {
		t.Fatalf("parent resident %d shrank", parent.ResidentBytes())
	}
	// The child can build a fresh image afterwards.
	naddr, _, err := e.node.Mmap(child, 32<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(child, naddr, 32<<20); err != nil {
		t.Fatal(err)
	}
	e.node.Exit(child)
	e.node.Exit(parent)
}

func TestBrkQueryAndShrinkSemantics(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	base, _, err := e.node.Brk(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base != p.Space.Layout().BrkStart {
		t.Fatalf("initial brk %#x", uint64(base))
	}
	if _, _, err := e.node.Brk(p, base+pgtable.VirtAddr(8<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(p, base, 8<<20); err != nil {
		t.Fatal(err)
	}
	// Shrink below the touched prefix, then grow and re-touch: no panic,
	// and accounting stays sane on exit.
	if _, _, err := e.node.Brk(p, base+pgtable.VirtAddr(2<<20)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.node.Brk(p, base+pgtable.VirtAddr(16<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(p, base, 16<<20); err != nil {
		t.Fatal(err)
	}
	free := e.node.Mem.FreePages()
	_ = free
	e.node.Exit(p)
}

func TestMmapExhaustsAddressSpaceGracefully(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	// The gap between heap start and mmap top is ~42TB; a mapping larger
	// than that must fail cleanly.
	if _, _, err := e.node.Mmap(p, 60<<40, rw, vma.KindAnon); err == nil {
		t.Fatal("60TB mmap accepted")
	}
}

func TestPartialTouchThenFullTouch(t *testing.T) {
	e := newEnv(t, ModeTHP, ModeTHP, 0, false)
	p := e.proc(t, false)
	addr, _, _ := e.node.Mmap(p, 16<<20, rw, vma.KindAnon)
	st1, err := e.node.TouchRange(p, addr, 5<<20+12<<10)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e.node.TouchRange(p, addr, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Two partial touches cover the region exactly once.
	total := st1.TotalFaults() + st2.TotalFaults()
	resident := p.ResidentBytes()
	if resident < 16<<20 {
		t.Fatalf("resident %d after full touch", resident)
	}
	if total == 0 {
		t.Fatal("no faults")
	}
	st3, _ := e.node.TouchRange(p, addr, 16<<20)
	if st3.TotalFaults() != 0 {
		t.Fatal("third touch faulted")
	}
}

func TestSwapRelievesPressureBeforeOOM(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 12<<30, false)
	// A commodity hog fills the unreserved pool with anon memory.
	hog := e.proc(t, true)
	hogAddr, _, _ := e.node.Mmap(hog, 3<<30, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(hog, hogAddr, 3<<30); err != nil {
		t.Fatal(err)
	}
	// Exhaust the rest so the next allocation needs the relief chain.
	for _, z := range e.node.Mem.Zones {
		for {
			if _, ok := z.AllocPages(3); !ok {
				break
			}
		}
	}
	// The HPC process's small fault must succeed via swap-out, not OOM.
	p := e.proc(t, false)
	if _, err := e.node.TouchStack(p, 1<<20); err != nil {
		t.Fatal(err)
	}
	if e.mgr.SwappedOutPages == 0 {
		t.Fatal("no pages swapped out under exhaustion")
	}
	if e.node.Swap().UsedPages() == 0 {
		t.Fatal("swap device unused")
	}
	if e.node.OOMKills != 0 {
		t.Fatalf("OOM killer fired (%d) despite swap space", e.node.OOMKills)
	}
	if hog.Exited {
		t.Fatal("hog killed instead of swapped")
	}
	// The hog's resident set shrank by what was paged out.
	if hog.ResidentBytes() >= 3<<30 {
		t.Fatalf("hog resident %d did not shrink", hog.ResidentBytes())
	}
	// Teardown releases the swap slots.
	e.node.Exit(hog)
	e.node.Exit(p)
	if e.node.Swap().UsedPages() != 0 {
		t.Fatalf("swap slots leaked: %d", e.node.Swap().UsedPages())
	}
}

func TestOOMFiresWhenSwapFull(t *testing.T) {
	e := newEnv(t, ModeHugeTLB, Mode4KOnly, 12<<30, false)
	// Shrink the swap device to nothing.
	e.node.Swap().Reserve(e.node.Swap().FreePages())
	hog := e.proc(t, true)
	hogAddr, _, _ := e.node.Mmap(hog, 3<<30, rw, vma.KindAnon)
	if _, err := e.node.TouchRange(hog, hogAddr, 3<<30); err != nil {
		t.Fatal(err)
	}
	for _, z := range e.node.Mem.Zones {
		for {
			if _, ok := z.AllocPages(3); !ok {
				break
			}
		}
	}
	p := e.proc(t, false)
	if _, err := e.node.TouchStack(p, 1<<20); err != nil {
		t.Fatal(err)
	}
	if e.node.OOMKills == 0 {
		t.Fatal("OOM killer never fired with swap full")
	}
	if !hog.Exited {
		t.Fatal("hog survived the OOM kill")
	}
}
