package linuxmm

import (
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
)

// maxSmallBlockOrder caps the batch size used to back 4KB-mapped memory.
// Larger batches keep simulation cost low for commodity churn; order 8 =
// 1MB still leaves the 2MB order fragmented under interleaved frees.
const maxSmallBlockOrder = 8

// touchCtx carries one TouchRange invocation's running state.
type touchCtx struct {
	p     *kernel.Process
	r     *region
	load  fault.Load
	stats kernel.TouchStats
	cum   sim.Cycles // accumulated cost, for trace timestamp interpolation
}

// charge books one fault.
func (tc *touchCtx) charge(m *Manager, k fault.Kind, cost sim.Cycles, va pgtable.VirtAddr, stalled bool) {
	tc.cum += cost
	tc.stats.Faults[k]++
	tc.stats.Cycles[k] += cost
	if stalled {
		tc.stats.Stalls++
	}
	tc.p.RecordFault(m.node.Now()+tc.cum, k, cost, va, stalled)
}

// chargeBulk books n identical-kind faults with an aggregate cost.
func (tc *touchCtx) chargeBulk(k fault.Kind, n uint64, total sim.Cycles) {
	if n == 0 {
		return
	}
	tc.cum += total
	tc.stats.Faults[k] += n
	tc.stats.Cycles[k] += total
	tc.p.RecordFaultBulk(k, n, total)
}

// TouchRange implements kernel.MemoryManager: the process accesses
// [addr, addr+length); unmaterialized pages fault.
//
//detsim:hotpath
func (m *Manager) TouchRange(p *kernel.Process, addr pgtable.VirtAddr, length uint64) (kernel.TouchStats, error) {
	ps := state(p)
	r := ps.findRegion(addr)
	if r == nil {
		return kernel.TouchStats{}, fmt.Errorf("linuxmm: touch of unmapped address %#x (pid %d)", uint64(addr), p.PID)
	}
	end := uint64(addr) + length
	if end > uint64(r.start)+r.length {
		return kernel.TouchStats{}, fmt.Errorf("linuxmm: touch [%#x,+%#x) crosses region end", uint64(addr), length)
	}
	// Reuse the manager's scratch context: TouchRange does not reenter
	// (the fallback paths — reclaim, swap-out, OOM kill — never touch),
	// so per-call heap allocation here is pure churn.
	tc := &m.tc
	*tc = touchCtx{p: p, r: r, load: m.node.LoadFor(p)}

	// Consume pending khugepaged merge stalls first: the mm lock was held
	// while we were away; the first faults back get blocked.
	m.consumeMergeStalls(tc)

	// Compute the new prefix target. Stacks grow down: the cursor counts
	// bytes from the top.
	var target uint64
	if r.down {
		target = uint64(r.start) + r.length - uint64(addr)
	} else {
		target = end - uint64(r.start)
	}
	if target <= r.touched {
		return tc.stats, nil // fully resident already
	}

	from := r.touched
	r.touched = target
	switch {
	case r.hugetlb:
		m.touchHugetlb(tc, from, target)
	default:
		m.touchDemand(tc, from, target)
	}
	return tc.stats, nil
}

// consumeMergeStalls charges one blocked fault per completed merge window.
func (m *Manager) consumeMergeStalls(tc *touchCtx) {
	p := tc.p
	for _, d := range p.PendingMergeCosts {
		// The blocked fault pays the merge wait plus its own service.
		cost := d + m.costs().SmallFault(m.rand, tc.load)
		tc.charge(m, fault.KindMergeBlocked, cost, tc.r.start, true)
	}
	p.PendingMergeCosts = p.PendingMergeCosts[:0]
	for _, d := range p.PendingEvictCosts {
		// Eviction shootdowns block the fault the same way a merge window
		// does, but the deposited share is the evictor's doing: move it
		// from the fault kind to the evict cause so barrier attribution
		// names the kubelet, not khugepaged.
		cost := d + m.costs().SmallFault(m.rand, tc.load)
		tc.charge(m, fault.KindMergeBlocked, cost, tc.r.start, true)
		p.Account.Reattribute(timeline.CauseMergeFault, timeline.CauseEvict, d)
	}
	p.PendingEvictCosts = p.PendingEvictCosts[:0]
}

func (m *Manager) costs() fault.CostParams { return m.node.Config().Costs }

// touchDemand materializes [from, to) of a demand-paged region: THP large
// chunks inside the eligible span, 4KB everywhere else.
//
//detsim:hotpath
func (m *Manager) touchDemand(tc *touchCtx, from, to uint64) {
	r := tc.r
	// Copy-on-write prefix inherited from a fork parent: writes allocate
	// a private frame and copy the page.
	if r.cow > from {
		stop := to
		if stop > r.cow {
			stop = r.cow
		}
		m.cowTouch(tc, from, stop)
		if to <= r.cow {
			return
		}
		from = stop
	}
	if r.down {
		// Stack: all small; offsets measured from the top.
		m.touchSmall(tc, to-from, r.start+pgtable.VirtAddr(r.length-to))
		return
	}
	if r.heapStyle {
		// glibc-style brk heap under THP: every extension is smaller than
		// a pmd, so the fault path always serves 4KB pages; khugepaged
		// picks up fully-touched span chunks afterwards.
		m.touchSmall(tc, to-from, r.start+pgtable.VirtAddr(from))
		if r.largeHi > r.largeLo {
			full := uint64(0)
			if to > r.largeLo {
				hi := to
				if hi > r.largeHi {
					hi = r.largeHi
				}
				full = (hi - r.largeLo) / mem.LargePageSize
			}
			for r.heapChunks < full {
				//detsim:allow pooled region state (DESIGN.md §11): fallback keeps its capacity across DetachReap recycling, 0 B/op at steady state
				r.fallback = append(r.fallback, r.largeLo+r.heapChunks*mem.LargePageSize)
				r.heapChunks++
			}
		}
		return
	}
	cur := from
	// Head below the large span.
	if cur < r.largeLo || r.largeHi == 0 {
		stop := to
		if r.largeHi > r.largeLo && stop > r.largeLo {
			stop = r.largeLo
		}
		if stop > cur {
			m.touchSmall(tc, stop-cur, r.start+pgtable.VirtAddr(cur))
			cur = stop
		}
	}
	// Align up to the next 2MB chunk boundary, serving any partial chunk
	// remainder with small pages (THP leaves partial chunks to merging).
	if cur >= r.largeLo && cur < r.largeHi {
		if rem := (cur - r.largeLo) % mem.LargePageSize; rem != 0 {
			head := mem.LargePageSize - rem
			if cur+head > to {
				head = to - cur
			}
			m.touchSmall(tc, head, r.start+pgtable.VirtAddr(cur))
			cur += head
		}
	}
	// Large chunks.
	for cur+mem.LargePageSize <= to && cur >= r.largeLo && cur+mem.LargePageSize <= r.largeHi {
		m.touchLargeChunk(tc, cur)
		cur += mem.LargePageSize
	}
	// A partial large chunk at the end of the touch prefix is served
	// small now; THP would leave it to khugepaged later. Treat the
	// remainder as small, and the tail past largeHi likewise.
	if cur < to {
		m.touchSmall(tc, to-cur, r.start+pgtable.VirtAddr(cur))
	}
}

// touchLargeChunk handles one 2MB-aligned chunk in the THP span.
//
//detsim:hotpath
func (m *Manager) touchLargeChunk(tc *touchCtx, off uint64) {
	r := tc.r
	p := tc.p
	va := r.start + pgtable.VirtAddr(off)
	pfn, zone, compacted, ok := m.allocLarge(p.PreferredZone)
	if ok {
		// Fragmentation from interleaved commodity allocation defeats a
		// fraction of THP faults even when the coarse buddy model still
		// has 2MB blocks: isolated pages pin pageblocks, and the
		// watermark checks for costly orders are stricter. The probability
		// rises with memory pressure and concurrent allocator activity.
		pFrag := m.THPFragSensitivity * tc.load.MemPressure * tc.load.AllocContention
		if pFrag > 0.6 {
			pFrag = 0.6
		}
		pFrag += m.THPFallbackBase
		if m.rand.Bool(pFrag) {
			m.node.Mem.Free(pfn, mem.LargePageOrder)
			ok = false
			if m.THPFragSensitivity > 0 && m.rand.Bool(0.5) {
				// Half the failures run direct compaction and recover.
				pfn, zone, _, ok = m.allocLarge(p.PreferredZone)
				compacted = true
			}
		}
	}
	if !ok {
		// Fall back to 512 small pages; khugepaged may merge them later.
		m.FallbackFaults++
		//detsim:allow pooled region state (DESIGN.md §11): fallback keeps its capacity across DetachReap recycling, 0 B/op at steady state
		r.fallback = append(r.fallback, off)
		m.touchSmall(tc, mem.LargePageSize, va)
		return
	}
	if compacted {
		m.Compactions++
	}
	m.LargeFaults++
	//detsim:allow pooled region state (DESIGN.md §11): largeFrames keeps its capacity across DetachReap recycling, 0 B/op at steady state
	r.largeFrames = append(r.largeFrames, largeFrame{pfn: pfn, zone: zone})
	r.largeBytes += mem.LargePageSize
	p.ResidentLarge += mem.LargePageSize
	if zone != p.PreferredZone {
		r.remoteBytes += mem.LargePageSize
		p.ResidentRemote += mem.LargePageSize
	}
	cost := m.costs().LargeFault(m.rand, tc.load, compacted)
	tc.charge(m, fault.KindLarge, cost, va, compacted)
	if m.node.Detail && !p.Commodity {
		if err := p.PT.Map(va, pfn, pgtable.Page2M, r.prot); err != nil {
			// Simulated-state violation: the statistical fault path and
			// the real page table disagree about what is mapped at va.
			invariant.Fail(invariant.Violation{
				Check: "pt_map_conflict", Subsystem: "linuxmm", PID: p.PID,
				Detail: fmt.Sprintf("large-fault map at %#x failed: %v", uint64(va), err),
			})
		}
	}
}

// allocLarge tries a watermark-gated order-9 allocation, compacting
// (evicting page cache, which really coalesces the buddy) when the first
// attempt fails.
//
//detsim:hotpath
func (m *Manager) allocLarge(preferred int) (mem.PFN, int, bool, bool) {
	if pfn, z, ok := m.gatedAlloc(preferred, mem.LargePageOrder); ok {
		return pfn, z, false, true
	}
	// Direct compaction: evict cache near the preferred zone and retry.
	m.node.DirectReclaim(preferred, mem.LargePageOrder)
	if pfn, z, ok := m.gatedAlloc(preferred, mem.LargePageOrder); ok {
		return pfn, z, true, true
	}
	return 0, 0, true, false
}

// gatedAlloc allocates 2^order pages respecting the min watermark, as the
// kernel's normal (non-ALLOC_HARDER) paths do.
//
//detsim:hotpath
func (m *Manager) gatedAlloc(preferred, order int) (mem.PFN, int, bool) {
	zones := m.node.Mem.Zones
	for i := 0; i < len(zones); i++ {
		zi := (preferred + i) % len(zones)
		z := zones[zi]
		if z.FreePages() < z.WatermarkMin+mem.PagesPerOrder(order) {
			continue
		}
		if pfn, ok := z.AllocPages(order); ok {
			return pfn, zi, true
		}
	}
	return 0, 0, false
}

// allocSeg is one gatedAllocRun segment: n consecutive blocks that came
// from the same zone.
type allocSeg struct {
	zone int
	n    uint64
}

// gatedAllocRun allocates up to want blocks of 2^order pages through the
// watermark gate, draining each zone in rotation order from preferred.
// This produces exactly the block sequence `want` sequential gatedAlloc
// calls would: free pages only decrease during a run (no frees can
// interleave inside one touchSmall backing loop), so once a zone fails
// the gate or the buddy search it cannot recover until the caller's slow
// path reclaims memory. Blocks land in m.runPFNs and per-zone segments
// in m.runSegs; the return is the count allocated. A short return means
// every zone was probed and refused — the equivalent of one failed
// gatedAlloc, so callers go straight to the reclaim slow path without
// re-probing.
//
//detsim:hotpath
func (m *Manager) gatedAllocRun(preferred, order int, want uint64) uint64 {
	m.runPFNs = m.runPFNs[:0]
	m.runSegs = m.runSegs[:0]
	zones := m.node.Mem.Zones
	var got uint64
	for i := 0; i < len(zones) && got < want; i++ {
		zi := (preferred + i) % len(zones)
		z := zones[zi]
		reserve := z.WatermarkMin + mem.PagesPerOrder(order)
		var n uint64
		for got < want && z.FreePages() >= reserve {
			pfn, ok := z.AllocPages(order)
			if !ok {
				break
			}
			m.runPFNs = append(m.runPFNs, pfn)
			n++
			got++
		}
		if n > 0 {
			m.runSegs = append(m.runSegs, allocSeg{zone: zi, n: n})
		}
	}
	m.GatedAllocRuns++
	m.GatedAllocBlocks += got
	return got
}

// touchSmall materializes bytes of 4KB-mapped memory starting at va.
//
//detsim:hotpath
func (m *Manager) touchSmall(tc *touchCtx, bytes uint64, va pgtable.VirtAddr) {
	r := tc.r
	p := tc.p
	pages := (bytes + mem.PageSize - 1) / mem.PageSize
	m.SmallFaults += pages

	// Back the pages with buddy blocks, charging reclaim storms on real
	// allocation failures. At the order cap the next run of blocks all
	// pick the same order, so they are allocated in one gated pass
	// instead of one gatedAlloc round-trip per block; the block sequence
	// is identical (see gatedAllocRun).
	need := pages
	storms := uint64(0)
	for need > 0 {
		order := smallBatchOrder
		for order < maxSmallBlockOrder && mem.PagesPerOrder(order+1) <= need {
			order++
		}
		want := uint64(1)
		if order == maxSmallBlockOrder && mem.PagesPerOrder(order+1) <= need {
			// Blocks of this order keep being picked until need drops
			// below 2^(order+1) pages.
			want = (need-mem.PagesPerOrder(order+1))/mem.PagesPerOrder(order) + 1
		}
		got := m.gatedAllocRun(p.PreferredZone, order, want)
		if got > 0 {
			for _, seg := range m.runSegs {
				if seg.zone != p.PreferredZone {
					r.remoteBytes += seg.n * mem.BytesPerOrder(order)
					p.ResidentRemote += seg.n * mem.BytesPerOrder(order)
				}
			}
			for _, pfn := range m.runPFNs {
				//detsim:allow pooled region state (DESIGN.md §11): smallBlocks keeps its capacity across DetachReap recycling, 0 B/op at steady state
				r.smallBlocks = append(r.smallBlocks, smallBlock{pfn: pfn, order: order})
			}
			r.smallBytes += got * mem.BytesPerOrder(order)
			p.ResidentSmall += got * mem.BytesPerOrder(order)
			// Only the final block can over-shoot (want > 1 runs keep
			// need >= the block size throughout).
			taken := got * mem.PagesPerOrder(order)
			if taken > need {
				taken = need
			}
			need -= taken
		}
		if got == want {
			continue
		}
		// Shortfall: the run's final probe round visited every zone and
		// refused — a failed gatedAlloc. Direct reclaim: evict page
		// cache, charge a storm, retry.
		m.ReclaimStorms++
		if !p.Commodity {
			m.StormsHPC++
		}
		m.node.DirectReclaim(p.PreferredZone, order)
		storm := m.costs().DirectReclaim(m.rand, tc.load)
		kind := fault.KindSmall
		if state(p).mode == ModeHugeTLB {
			kind = fault.KindHugeTLBSmall
		}
		tc.charge(m, kind, storm+m.costs().SmallFault(m.rand, tc.load), va, true)
		// The fault-kind charge above includes the reclaim stall; move
		// that share to the reclaim-storm cause so attribution separates
		// "slow fault path" from "stalled behind reclaim".
		p.Account.Reattribute(timeline.FaultCause(kind), timeline.CauseReclaimStorm, storm)
		storms++
		if need > 0 {
			need-- // the storm fault itself materialized one page
		}
		pfn, zone, ok := m.gatedAlloc(p.PreferredZone, order)
		if !ok {
			// Desperate: ignore watermarks (ALLOC_HARDER).
			var zp *mem.Zone
			pfn, zp, ok = m.node.Mem.Alloc(p.PreferredZone, order)
			if !ok {
				// Cache reclaim made no progress: page out commodity
				// anon memory before resorting to the OOM killer.
				if m.swapOutCommodity(p, 8192) > 0 { // one 32MB pass
					pfn, zp, ok = m.node.Mem.Alloc(p.PreferredZone, order)
				}
				if !ok {
					if victim := m.node.OOMKill(); victim != nil && victim != p {
						pfn, zp, ok = m.node.Mem.Alloc(p.PreferredZone, order)
					}
				}
				if !ok {
					// Even the killer could not help (no commodity
					// victim); stop materializing.
					return
				}
			}
			zone = zp.ID
		}
		if zone != p.PreferredZone {
			r.remoteBytes += mem.BytesPerOrder(order)
			p.ResidentRemote += mem.BytesPerOrder(order)
		}
		//detsim:allow pooled region state (DESIGN.md §11): smallBlocks keeps its capacity across DetachReap recycling, 0 B/op at steady state
		r.smallBlocks = append(r.smallBlocks, smallBlock{pfn: pfn, order: order})
		taken := mem.PagesPerOrder(order)
		if taken > need {
			taken = need
		}
		r.smallBytes += mem.BytesPerOrder(order)
		p.ResidentSmall += mem.BytesPerOrder(order)
		need -= taken
	}

	// Storm faults were charged individually above; the rest charge here.
	if storms >= pages {
		return
	}
	pages -= storms
	kind := fault.KindSmall
	if state(p).mode == ModeHugeTLB {
		kind = fault.KindHugeTLBSmall
	}
	if m.node.Detail && !p.Commodity {
		// Micro fidelity: draw each fault, map each PTE.
		for i := uint64(0); i < pages; i++ {
			pva := va + pgtable.VirtAddr(i*mem.PageSize)
			var cost, stall sim.Cycles
			stalled := false
			if kind == fault.KindHugeTLBSmall {
				var svc sim.Cycles
				svc, stall, stalled = m.costs().HugeTLBSmallFaultParts(m.rand, tc.load)
				cost = svc + stall
			} else {
				cost = m.costs().SmallFault(m.rand, tc.load)
			}
			tc.charge(m, kind, cost, pva, stalled)
			p.Account.Reattribute(timeline.FaultCause(kind), timeline.CauseReclaimStorm, stall)
			m.mapSmallDetail(p, pva, r)
		}
		return
	}
	// Aggregate fidelity: one normal draw for the batch; storms were
	// already charged individually above. HugeTLBfs-configured systems
	// additionally run their small-page fault path at the allocator's
	// watermarks, entering direct reclaim probabilistically (the paper's
	// Figure 3: mean ~475K cycles with an enormous standard deviation).
	if kind == fault.KindHugeTLBSmall {
		p := m.costs().ReclaimProb(tc.load.MemPressure)
		if nStorm := m.sampleBinomial(pages, p); nStorm > 0 {
			if nStorm > pages {
				nStorm = pages
			}
			for i := uint64(0); i < nStorm; i++ {
				m.node.DirectReclaim(tc.p.PreferredZone, smallBatchOrder)
				storm := m.costs().DirectReclaim(m.rand, tc.load)
				tc.charge(m, kind, storm+m.costs().SmallFault(m.rand, tc.load), va, true)
				tc.p.Account.Reattribute(timeline.FaultCause(kind), timeline.CauseReclaimStorm, storm)
				m.ReclaimStorms++
				if !tc.p.Commodity {
					m.StormsHPC++
				}
			}
			pages -= nStorm
			if pages == 0 {
				return
			}
		}
	}
	total := m.costs().AggregateSmallFaults(m.rand, tc.load, pages)
	tc.chargeBulk(kind, pages, total)
}

// sampleBinomial draws Binomial(n, p) via a normal approximation with a
// Poisson-style floor for small means.
func (m *Manager) sampleBinomial(n uint64, p float64) uint64 {
	if p <= 0 || n == 0 {
		return 0
	}
	mean := float64(n) * p
	if mean < 8 {
		// Direct Bernoulli sampling for small counts.
		var k uint64
		for i := uint64(0); i < n; i++ {
			if m.rand.Bool(p) {
				k++
			}
		}
		return k
	}
	v := m.rand.Normal(mean, sqrt(mean*(1-p)))
	if v < 0 {
		return 0
	}
	return uint64(v)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for a sampler.
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// mapSmallDetail installs one 4KB PTE with a synthetic frame drawn from
// the region's small blocks (frame identity within a block is not
// significant; the table structure and counts are).
func (m *Manager) mapSmallDetail(p *kernel.Process, va pgtable.VirtAddr, r *region) {
	if len(r.smallBlocks) == 0 {
		return
	}
	blk := r.smallBlocks[len(r.smallBlocks)-1]
	off := (uint64(va) / mem.PageSize) % mem.PagesPerOrder(blk.order)
	pfn := blk.pfn + mem.PFN(off)
	if err := p.PT.Map(va, pfn, pgtable.Page4K, r.prot); err != nil {
		// Already mapped (re-touch after partial unmap); ignore.
		_ = err
	}
}

// touchHugetlb materializes [from, to) of a hugetlb-backed region in
// libhugetlbfs slabs: one recorded fault per slab extension, 2MB pool
// pages behind it.
func (m *Manager) touchHugetlb(tc *touchCtx, from, to uint64) {
	r := tc.r
	p := tc.p
	slab := m.Pools.SlabBytes
	needSlabs := (to + slab - 1) / slab
	for r.slabs < needSlabs {
		va := r.start + pgtable.VirtAddr(r.slabs*slab)
		pagesWanted := m.Pools.SlabPages()
		if rem := r.length - r.slabs*slab; rem < slab {
			pagesWanted = (rem + mem.LargePageSize - 1) / mem.LargePageSize
		}
		allocated := uint64(0)
		for i := uint64(0); i < pagesWanted; i++ {
			pfn, zone, err := m.Pools.Alloc2M(p.PreferredZone)
			if err != nil {
				break
			}
			r.largeFrames = append(r.largeFrames, largeFrame{pfn: pfn, zone: zone, pool: true})
			if zone != p.PreferredZone {
				r.remoteBytes += mem.LargePageSize
				p.ResidentRemote += mem.LargePageSize
			}
			allocated++
			if m.node.Detail && !p.Commodity {
				pva := va + pgtable.VirtAddr(i*mem.LargePageSize)
				if err := p.PT.Map(pva, pfn, pgtable.Page2M, r.prot); err != nil {
					// Simulated-state violation: hugetlb slab backing
					// collided with an existing page-table mapping.
					invariant.Fail(invariant.Violation{
						Check: "pt_map_conflict", Subsystem: "linuxmm", PID: p.PID,
						Manager: "hugetlbfs",
						Detail:  fmt.Sprintf("hugetlb slab map at %#x failed: %v", uint64(pva), err),
					})
				}
			}
		}
		if allocated == 0 {
			// Pool exhausted: fall back to small pages for the rest.
			m.touchSmall(tc, to-r.slabs*slab, va)
			r.slabs = needSlabs
			return
		}
		bytes := allocated * mem.LargePageSize
		r.largeBytes += bytes
		p.ResidentLarge += bytes
		m.LargeFaults++
		// One fault is recorded per slab extension, but every page in the
		// slab is cleared on allocation.
		cost := m.costs().HugeTLBLargeFault(m.rand, tc.load)
		if allocated > 1 {
			cost += sim.Cycles(float64(allocated-1) * m.costs().Clear2MCycles(tc.load))
		}
		tc.charge(m, fault.KindHugeTLBLarge, cost, va, false)
		r.slabs++
	}
}
