package linuxmm

import "hpmmap/internal/metrics"

// Observe registers the manager's fault-path tallies with the metrics
// registry as pull-mode sources read at snapshot time. The counters are
// the manager's existing statistics fields, so the hot paths are
// untouched. No-op on a nil registry. Multiple managers registering
// against the same registry (multi-node rigs) aggregate additively.
func (m *Manager) Observe(reg *metrics.Registry) {
	reg.CounterFunc(metrics.LinuxmmLargeFaultsTotal, func() uint64 { return m.LargeFaults })
	reg.CounterFunc(metrics.LinuxmmSmallFaultsTotal, func() uint64 { return m.SmallFaults })
	reg.CounterFunc(metrics.LinuxmmFallbackFaultsTotal, func() uint64 { return m.FallbackFaults })
	reg.CounterFunc(metrics.LinuxmmCompactionsTotal, func() uint64 { return m.Compactions })
	reg.CounterFunc(metrics.LinuxmmReclaimStormsTotal, func() uint64 { return m.ReclaimStorms })
	reg.CounterFunc(metrics.LinuxmmReclaimStormsHPCTotal, func() uint64 { return m.StormsHPC })
	reg.CounterFunc(metrics.LinuxmmSplitOnMlockTotal, func() uint64 { return m.SplitOnMlock })
	reg.CounterFunc(metrics.LinuxmmSwappedOutPagesTotal, func() uint64 { return m.SwappedOutPages })
	reg.CounterFunc(metrics.LinuxmmGatedAllocRunsTotal, func() uint64 { return m.GatedAllocRuns })
	reg.CounterFunc(metrics.LinuxmmGatedAllocBlocksTotal, func() uint64 { return m.GatedAllocBlocks })
	reg.CounterFunc(metrics.LinuxmmRegionPoolReusesTotal, func() uint64 { return m.RegionPoolReuses })
}
