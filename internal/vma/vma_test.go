package vma

import (
	"testing"
	"testing/quick"

	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
)

const rw = pgtable.ProtRead | pgtable.ProtWrite

func newSpace() *Space { return NewSpace(DefaultLayout()) }

func TestNewSpaceHasStack(t *testing.T) {
	s := newSpace()
	if len(s.VMAs()) != 1 {
		t.Fatalf("fresh space has %d VMAs", len(s.VMAs()))
	}
	v := s.VMAs()[0]
	if v.Kind != KindStack || v.End != DefaultLayout().StackTop {
		t.Fatalf("stack VMA = %s", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapChoosesTopDown(t *testing.T) {
	s := newSpace()
	a, err := s.Map(0, 1<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Map(0, 1<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if a.End != DefaultLayout().MmapTop {
		t.Fatalf("first map not at mmap top: %s", a)
	}
	// Adjacent same-kind same-prot regions merge.
	if a != b && b.Contains(a.Start) == false {
		got := s.Find(a.Start)
		if got == nil || got.Len() != 2<<20 {
			t.Fatalf("adjacent anon maps did not merge: %v", s.VMAs())
		}
	}
}

func TestMapFixedOverlapFails(t *testing.T) {
	s := newSpace()
	if _, err := s.Map(0x1000_0000_0000, 1<<20, rw, KindAnon); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(0x1000_0000_0000+0x1000, 1<<20, rw, KindAnon); err == nil {
		t.Fatal("overlapping fixed map accepted")
	}
	if _, err := s.Map(0x1000_0000_0123, 1<<20, rw, KindAnon); err == nil {
		t.Fatal("unaligned fixed map accepted")
	}
}

func TestMapZeroLengthFails(t *testing.T) {
	s := newSpace()
	if _, err := s.Map(0, 0, rw, KindAnon); err == nil {
		t.Fatal("zero-length map accepted")
	}
}

func TestDefaultPlacementDefeatsLargePages(t *testing.T) {
	// The paper's complaint: default 4KB-granular placement produces VMAs
	// that are not 2MB-aligned. Map an odd size then a 2MB-able size.
	s := newSpace()
	if _, err := s.Map(0, 12<<10, pgtable.ProtRead, KindFile); err != nil {
		t.Fatal(err)
	}
	v, err := s.Map(0, 4<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if v.LargePageAligned() {
		t.Fatalf("default placement unexpectedly 2MB-aligned: %s", v)
	}
	// Explicitly aligned placement fixes it.
	v2, err := s.MapAligned(0, 4<<20, rw, KindHugeTLB, mem.LargePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.LargePageAligned() {
		t.Fatalf("aligned placement not aligned: %s", v2)
	}
}

func TestUnmapSplitsVMA(t *testing.T) {
	s := newSpace()
	v, err := s.Map(0x2000_0000_0000, 8<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	mid := v.Start + pgtable.VirtAddr(2<<20)
	if err := s.Unmap(mid, 2<<20); err != nil {
		t.Fatal(err)
	}
	if s.Find(mid) != nil {
		t.Fatal("unmapped middle still found")
	}
	left := s.Find(v.Start)
	right := s.Find(mid + pgtable.VirtAddr(2<<20))
	if left == nil || right == nil {
		t.Fatal("split remnants missing")
	}
	if left.Len() != 2<<20 || right.Len() != 4<<20 {
		t.Fatalf("remnant sizes %d / %d", left.Len(), right.Len())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapUnmappedIsNoop(t *testing.T) {
	s := newSpace()
	if err := s.Unmap(0x3000_0000_0000, 1<<20); err != nil {
		t.Fatal(err)
	}
}

func TestProtectSplitsAndSetsProt(t *testing.T) {
	s := newSpace()
	v, err := s.Map(0x2000_0000_0000, 4<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	mid := v.Start + pgtable.VirtAddr(1<<20)
	if err := s.Protect(mid, 1<<20, pgtable.ProtRead); err != nil {
		t.Fatal(err)
	}
	if got := s.Find(mid); got.Prot != pgtable.ProtRead {
		t.Fatalf("mid prot %v", got.Prot)
	}
	if got := s.Find(v.Start); got.Prot != rw {
		t.Fatalf("left prot %v", got.Prot)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Hole detection.
	if err := s.Protect(0x4000_0000_0000, 1<<20, rw); err == nil {
		t.Fatal("protect over hole succeeded")
	}
}

func TestProtectCreatesPermissionConflictForLargePages(t *testing.T) {
	// The paper: permission conflicts from mprotect fragment what could
	// have been large-page mappings.
	s := newSpace()
	v, err := s.MapAligned(0, 4<<20, rw, KindAnon, mem.LargePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !v.LargePageAligned() {
		t.Fatal("setup: not aligned")
	}
	if err := s.Protect(v.Start+4096, 4096, pgtable.ProtRead); err != nil {
		t.Fatal(err)
	}
	// Now no single VMA covering the first 2MB is large-page alignable.
	first := s.Find(v.Start)
	if first.LargePageAligned() {
		t.Fatalf("fragmented VMA still large-page capable: %s", first)
	}
}

func TestMergeAdjacentAnon(t *testing.T) {
	s := newSpace()
	a, err := s.Map(0x2000_0000_0000, 1<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(a.End, 1<<20, rw, KindAnon); err != nil {
		t.Fatal(err)
	}
	got := s.Find(a.Start)
	if got.Len() != 2<<20 {
		t.Fatalf("adjacent anon VMAs did not merge: %v", s.VMAs())
	}
	// Different prot must not merge.
	if _, err := s.Map(got.End, 1<<20, pgtable.ProtRead, KindAnon); err != nil {
		t.Fatal(err)
	}
	if s.Find(a.Start).Len() != 2<<20 {
		t.Fatal("different-prot VMAs merged")
	}
}

func TestHugeTLBNeverMerges(t *testing.T) {
	s := newSpace()
	a, err := s.MapAligned(0x2000_0000_0000, 2<<20, rw, KindHugeTLB, mem.LargePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MapAligned(a.End, 2<<20, rw, KindHugeTLB, mem.LargePageSize); err != nil {
		t.Fatal(err)
	}
	if s.Find(a.Start).Len() != 2<<20 {
		t.Fatal("hugetlb VMAs merged")
	}
}

func TestSetBrkGrowShrink(t *testing.T) {
	s := newSpace()
	start := DefaultLayout().BrkStart
	nb, err := s.SetBrk(start + pgtable.VirtAddr(10<<20))
	if err != nil {
		t.Fatal(err)
	}
	if nb != start+pgtable.VirtAddr(10<<20) {
		t.Fatalf("brk = %#x", uint64(nb))
	}
	heap := s.Find(start)
	if heap == nil || heap.Kind != KindHeap || heap.Len() != 10<<20 {
		t.Fatalf("heap VMA %v", heap)
	}
	// Shrink.
	if _, err := s.SetBrk(start + pgtable.VirtAddr(4<<20)); err != nil {
		t.Fatal(err)
	}
	if got := s.Find(start); got.Len() != 4<<20 {
		t.Fatalf("heap after shrink %d", got.Len())
	}
	// Query.
	if cur, _ := s.SetBrk(0); cur != start+pgtable.VirtAddr(4<<20) {
		t.Fatalf("brk query %#x", uint64(cur))
	}
	// Below start fails.
	if _, err := s.SetBrk(start - 1); err == nil {
		t.Fatal("brk below heap start accepted")
	}
}

func TestSetBrkCollision(t *testing.T) {
	s := newSpace()
	start := DefaultLayout().BrkStart
	if _, err := s.Map(start+pgtable.VirtAddr(1<<20), 1<<20, rw, KindAnon); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetBrk(start + pgtable.VirtAddr(4<<20)); err == nil {
		t.Fatal("brk growth through a mapping accepted")
	}
}

func TestGrowStack(t *testing.T) {
	s := newSpace()
	stack := s.VMAs()[0]
	below := stack.Start - pgtable.VirtAddr(64<<10)
	if !s.GrowStackTo(below) {
		t.Fatal("stack growth within rlimit refused")
	}
	if !s.Find(below).Contains(below) {
		t.Fatal("grown stack does not cover fault address")
	}
	// Beyond RLIMIT_STACK fails.
	far := DefaultLayout().StackTop - pgtable.VirtAddr(DefaultLayout().StackMax+1<<20)
	if s.GrowStackTo(far) {
		t.Fatal("stack growth beyond rlimit accepted")
	}
	// Address already inside the stack: fine.
	if !s.GrowStackTo(stack.End - 1) {
		t.Fatal("address inside stack rejected")
	}
}

func TestLock(t *testing.T) {
	s := newSpace()
	v, err := s.Map(0x2000_0000_0000, 2<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(v.Start, v.Len()); err != nil {
		t.Fatal(err)
	}
	if !s.Find(v.Start).Locked {
		t.Fatal("VMA not locked")
	}
	if err := s.Lock(0x5000_0000_0000, 1<<20); err == nil {
		t.Fatal("lock over hole accepted")
	}
}

func TestFindUnmappedAlignment(t *testing.T) {
	s := newSpace()
	addr, err := s.FindUnmapped(3<<20, mem.LargePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(addr)%mem.LargePageSize != 0 {
		t.Fatalf("aligned search returned %#x", uint64(addr))
	}
	if _, err := s.FindUnmapped(0, 0); err == nil {
		t.Fatal("zero-length search accepted")
	}
}

func TestFindUnmappedSkipsBusyGaps(t *testing.T) {
	s := newSpace()
	top := DefaultLayout().MmapTop
	// Occupy the top, leaving a 1MB hole, then more mappings.
	if _, err := s.Map(top-pgtable.VirtAddr(4<<20), 4<<20, rw, KindFile); err != nil {
		t.Fatal(err)
	}
	holeStart := top - pgtable.VirtAddr(5<<20)
	if _, err := s.Map(top-pgtable.VirtAddr(16<<20), 11<<20, pgtable.ProtRead, KindFile); err != nil {
		t.Fatal(err)
	}
	// A 512KB request fits in the 1MB hole.
	addr, err := s.FindUnmapped(512<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if addr < holeStart || addr >= top-pgtable.VirtAddr(4<<20) {
		t.Fatalf("512KB landed at %#x, not in hole", uint64(addr))
	}
	// A 2MB request must skip the hole and land below everything.
	addr2, err := s.FindUnmapped(2<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if addr2 >= top-pgtable.VirtAddr(16<<20) {
		t.Fatalf("2MB landed at %#x, inside occupied span", uint64(addr2))
	}
}

// Property test: random map/unmap/protect sequences keep the VMA set
// sorted, non-overlapping and page-aligned.
func TestSpaceRandomOps(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRand(seed)
		s := newSpace()
		var regions []*VMA
		for op := 0; op < 400; op++ {
			switch r.Intn(4) {
			case 0, 1:
				length := uint64(1+r.Intn(2048)) * mem.PageSize
				v, err := s.Map(0, length, rw, KindAnon)
				if err == nil {
					regions = append(regions, v)
				}
			case 2:
				if len(regions) > 0 {
					i := r.Intn(len(regions))
					v := regions[i]
					regions = append(regions[:i], regions[i+1:]...)
					off := uint64(r.Intn(4)) * mem.PageSize
					l := v.Len() / 2
					if l == 0 {
						l = mem.PageSize
					}
					if uint64(v.Start)+off+l <= uint64(DefaultLayout().MmapTop) {
						if err := s.Unmap(v.Start+pgtable.VirtAddr(off), l); err != nil {
							t.Logf("seed %d: unmap: %v", seed, err)
							return false
						}
					}
				}
			case 3:
				if len(regions) > 0 {
					v := regions[r.Intn(len(regions))]
					// Protect the first page if it still exists.
					if got := s.Find(v.Start); got != nil {
						if err := s.Protect(got.Start, mem.PageSize, pgtable.ProtRead); err != nil {
							t.Logf("seed %d: protect: %v", seed, err)
							return false
						}
					}
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindAnon, KindHeap, KindStack, KindFile, KindHugeTLB, KindHPMMAP}
	want := []string{"anon", "heap", "stack", "file", "hugetlb", "hpmmap"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("Kind(%d).String() = %q", i, k.String())
		}
	}
	v := &VMA{Start: 0x1000, End: 0x2000, Prot: rw, Kind: KindAnon}
	if v.String() == "" || v.Len() != 0x1000 {
		t.Fatal("VMA String/Len broken")
	}
}

func TestClone(t *testing.T) {
	s := newSpace()
	v, err := s.Map(0x2000_0000_0000, 4<<20, rw, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetBrk(DefaultLayout().BrkStart + pgtable.VirtAddr(1<<20)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.Brk() != s.Brk() {
		t.Fatal("brk not cloned")
	}
	if len(c.VMAs()) != len(s.VMAs()) {
		t.Fatal("vma count differs")
	}
	// Deep copy: mutating the clone leaves the original alone.
	if err := c.Unmap(v.Start, v.Len()); err != nil {
		t.Fatal(err)
	}
	if s.Find(v.Start) == nil {
		t.Fatal("unmap in clone removed parent's VMA")
	}
	if c.Find(v.Start) != nil {
		t.Fatal("clone still has the unmapped VMA")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
