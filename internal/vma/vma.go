// Package vma models a process virtual address space as Linux does: a
// sorted set of virtual memory areas (VMAs) with permissions and kinds,
// top-down mmap placement, a brk-managed heap, and a growable stack.
//
// The package also reproduces the layout property the paper criticizes:
// by default the search for unmapped space is 4KB-granular, so VMAs land
// at addresses and with sizes that defeat 2MB mappings (alignment issues
// and permission conflicts). Callers that want large-page-friendly
// placement must ask for it explicitly.
package vma

import (
	"fmt"
	"sort"

	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
)

// Kind classifies a VMA.
type Kind int

// VMA kinds.
const (
	KindAnon Kind = iota
	KindHeap
	KindStack
	KindFile
	KindHugeTLB
	KindHPMMAP
)

func (k Kind) String() string {
	switch k {
	case KindAnon:
		return "anon"
	case KindHeap:
		return "heap"
	case KindStack:
		return "stack"
	case KindFile:
		return "file"
	case KindHugeTLB:
		return "hugetlb"
	case KindHPMMAP:
		return "hpmmap"
	}
	return "?"
}

// VMA is one contiguous region [Start, End) of the address space.
type VMA struct {
	Start, End pgtable.VirtAddr
	Prot       pgtable.Prot
	Kind       Kind
	// Locked marks an mlocked region.
	Locked bool
}

// Len returns the region size in bytes.
func (v *VMA) Len() uint64 { return uint64(v.End - v.Start) }

// Contains reports whether va falls inside the VMA.
func (v *VMA) Contains(va pgtable.VirtAddr) bool { return va >= v.Start && va < v.End }

// LargePageAligned reports whether the VMA can be mapped entirely with
// 2MB pages: both ends 2MB-aligned.
func (v *VMA) LargePageAligned() bool {
	return uint64(v.Start)%mem.LargePageSize == 0 && uint64(v.End)%mem.LargePageSize == 0
}

func (v *VMA) String() string {
	return fmt.Sprintf("%#x-%#x %s %s", uint64(v.Start), uint64(v.End), v.Kind, protString(v.Prot))
}

func protString(p pgtable.Prot) string {
	b := []byte("---")
	if p&pgtable.ProtRead != 0 {
		b[0] = 'r'
	}
	if p&pgtable.ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&pgtable.ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Layout fixes the well-known addresses of a space. The defaults mirror a
// 64-bit Linux process with ASLR disabled (HPC systems commonly disable
// it; determinism also demands it).
type Layout struct {
	BrkStart  pgtable.VirtAddr // bottom of the heap
	MmapTop   pgtable.VirtAddr // mmap region grows down from here
	StackTop  pgtable.VirtAddr // top of the main stack
	StackMax  uint64           // stack size limit (RLIMIT_STACK)
	GuardGap  uint64           // gap kept between mmap area and stack
	AlignMmap uint64           // default placement alignment (4KB on Linux)
}

// DefaultLayout returns the standard layout.
func DefaultLayout() Layout {
	return Layout{
		BrkStart:  0x0000_5555_0000_0000,
		MmapTop:   0x0000_7f00_0000_0000,
		StackTop:  0x0000_7fff_ff00_0000,
		StackMax:  8 << 20,
		GuardGap:  1 << 20,
		AlignMmap: mem.PageSize,
	}
}

// Space is one process address space.
type Space struct {
	layout Layout
	vmas   []*VMA // sorted by Start, non-overlapping

	brk pgtable.VirtAddr // current program break

	// pool recycles VMA nodes dropped by Reset, merges and unmaps. No
	// *VMA escapes this package's callers' hands past the operation that
	// returned it, so a dropped node can be reused immediately.
	pool []*VMA

	// Statistics.
	Maps, Unmaps, Splits, Merges uint64
}

// newVMA pops a recycled node (zeroed) or allocates one.
func (s *Space) newVMA() *VMA {
	k := len(s.pool)
	if k == 0 {
		return new(VMA)
	}
	v := s.pool[k-1]
	s.pool[k-1] = nil
	s.pool = s.pool[:k-1]
	*v = VMA{}
	return v
}

// recycle returns a node dropped from s.vmas to the pool.
func (s *Space) recycle(v *VMA) { s.pool = append(s.pool, v) }

// NewSpace creates an address space with an empty heap and a minimal
// stack VMA.
func NewSpace(layout Layout) *Space {
	s := &Space{layout: layout, brk: layout.BrkStart}
	// Initial 128KB stack, grows down on demand up to StackMax.
	stackLow := layout.StackTop - pgtable.VirtAddr(128<<10)
	s.insert(&VMA{Start: stackLow, End: layout.StackTop, Prot: pgtable.ProtRead | pgtable.ProtWrite, Kind: KindStack})
	return s
}

// Reset restores the space to its NewSpace state — empty heap, the
// initial 128KB stack VMA, zeroed statistics — while keeping the vmas
// slice's backing array and recycling one VMA struct, so a pooled
// process lifecycle (kernel.ExitReap) re-attaches without reallocating
// the address-space skeleton.
func (s *Space) Reset(layout Layout) {
	old := s.vmas
	var stack *VMA
	if len(old) > 0 {
		stack = old[0]
		for i := 1; i < len(old); i++ {
			s.recycle(old[i])
			old[i] = nil
		}
	} else {
		stack = new(VMA)
	}
	*stack = VMA{
		Start: layout.StackTop - pgtable.VirtAddr(128<<10),
		End:   layout.StackTop,
		Prot:  pgtable.ProtRead | pgtable.ProtWrite,
		Kind:  KindStack,
	}
	s.vmas = append(old[:0], stack)
	s.layout = layout
	s.brk = layout.BrkStart
	s.Maps, s.Unmaps, s.Splits, s.Merges = 0, 0, 0, 0
}

// Layout returns the fixed layout.
func (s *Space) Layout() Layout { return s.layout }

// Brk returns the current program break.
func (s *Space) Brk() pgtable.VirtAddr { return s.brk }

// VMAs returns the regions in address order. The slice is shared; callers
// must not mutate it.
func (s *Space) VMAs() []*VMA { return s.vmas }

// TotalBytes returns the total mapped virtual size.
func (s *Space) TotalBytes() uint64 {
	var t uint64
	for _, v := range s.vmas {
		t += v.Len()
	}
	return t
}

// searchIdx returns the index of the first VMA with End > va.
func (s *Space) searchIdx(va pgtable.VirtAddr) int {
	return sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > va })
}

// Find returns the VMA containing va, or nil.
func (s *Space) Find(va pgtable.VirtAddr) *VMA {
	i := s.searchIdx(va)
	if i < len(s.vmas) && s.vmas[i].Contains(va) {
		return s.vmas[i]
	}
	return nil
}

// overlaps reports whether [start,end) intersects any VMA.
func (s *Space) overlaps(start, end pgtable.VirtAddr) bool {
	i := s.searchIdx(start)
	return i < len(s.vmas) && s.vmas[i].Start < end
}

func (s *Space) insert(v *VMA) {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= v.Start })
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
}

// FindUnmapped finds space for length bytes with the given alignment,
// searching top-down from below MmapTop, skipping the stack guard area —
// Linux's arch_get_unmapped_area_topdown. Returns an error when the
// address space between heap and mmap ceiling is exhausted.
func (s *Space) FindUnmapped(length, align uint64) (pgtable.VirtAddr, error) {
	if length == 0 {
		return 0, fmt.Errorf("vma: zero-length search")
	}
	if align == 0 {
		align = s.layout.AlignMmap
	}
	alignDown := func(a pgtable.VirtAddr) pgtable.VirtAddr {
		return pgtable.VirtAddr(uint64(a) &^ (align - 1))
	}
	// Walk gaps from just below MmapTop downward. VMAs entirely at or
	// above MmapTop (the stack) do not constrain the search.
	high := s.layout.MmapTop
	for i := len(s.vmas) - 1; i >= -1; i-- {
		var low pgtable.VirtAddr
		if i >= 0 {
			v := s.vmas[i]
			if v.Start >= high {
				continue // entirely above the current ceiling
			}
			if v.End > high {
				// Straddles the ceiling: lower it and retry this gap.
				high = v.Start
				continue
			}
			low = v.End
		} else {
			low = s.layout.BrkStart
		}
		if high > low && uint64(high-low) >= length {
			start := alignDown(high - pgtable.VirtAddr(length))
			if start >= low {
				return start, nil
			}
		}
		if i >= 0 && s.vmas[i].Start < high {
			high = s.vmas[i].Start
		}
	}
	return 0, fmt.Errorf("vma: no unmapped gap of %d bytes (align %d)", length, align)
}

// Map creates a VMA. If addr is zero a gap is chosen with FindUnmapped
// using the default (small-page) alignment; pass a non-zero addr for
// MAP_FIXED semantics (fails on overlap). length is rounded up to 4KB.
func (s *Space) Map(addr pgtable.VirtAddr, length uint64, prot pgtable.Prot, kind Kind) (*VMA, error) {
	return s.MapAligned(addr, length, prot, kind, 0)
}

// MapAligned is Map with an explicit placement alignment (e.g. 2MB for
// hugetlbfs-backed regions).
func (s *Space) MapAligned(addr pgtable.VirtAddr, length uint64, prot pgtable.Prot, kind Kind, align uint64) (*VMA, error) {
	if length == 0 {
		return nil, fmt.Errorf("vma: zero-length map")
	}
	length = roundUp(length, mem.PageSize)
	if addr == 0 {
		var err error
		addr, err = s.FindUnmapped(length, align)
		if err != nil {
			return nil, err
		}
	} else {
		if uint64(addr)%mem.PageSize != 0 {
			return nil, fmt.Errorf("vma: fixed address %#x unaligned", uint64(addr))
		}
		if s.overlaps(addr, addr+pgtable.VirtAddr(length)) {
			return nil, fmt.Errorf("vma: fixed map [%#x,+%#x) overlaps", uint64(addr), length)
		}
	}
	v := s.newVMA()
	v.Start, v.End, v.Prot, v.Kind = addr, addr+pgtable.VirtAddr(length), prot, kind
	s.insert(v)
	s.Maps++
	s.mergeAround(v)
	return s.Find(addr), nil
}

// mergeAround coalesces v with adjacent VMAs of identical kind, prot and
// lock state, as Linux's vma_merge does.
func (s *Space) mergeAround(v *VMA) {
	i := s.searchIdx(v.Start)
	if i >= len(s.vmas) || s.vmas[i] != v {
		// Position by identity scan (insert may have shifted).
		i = -1
		for j, u := range s.vmas {
			if u == v {
				i = j
				break
			}
		}
		if i < 0 {
			return
		}
	}
	canMerge := func(a, b *VMA) bool {
		return a.End == b.Start && a.Kind == b.Kind && a.Prot == b.Prot && a.Locked == b.Locked &&
			a.Kind != KindStack && a.Kind != KindHugeTLB && a.Kind != KindHPMMAP
	}
	// Merge with next.
	if i+1 < len(s.vmas) && canMerge(v, s.vmas[i+1]) {
		v.End = s.vmas[i+1].End
		s.recycle(s.vmas[i+1])
		s.vmas = append(s.vmas[:i+1], s.vmas[i+2:]...)
		s.Merges++
	}
	// Merge with previous.
	if i > 0 && canMerge(s.vmas[i-1], v) {
		s.vmas[i-1].End = v.End
		s.recycle(v)
		s.vmas = append(s.vmas[:i], s.vmas[i+1:]...)
		s.Merges++
	}
}

func roundUp(v, to uint64) uint64 { return (v + to - 1) / to * to }

// Unmap removes [addr, addr+length), splitting straddling VMAs. Removing
// unmapped space is a no-op, as with munmap.
func (s *Space) Unmap(addr pgtable.VirtAddr, length uint64) error {
	if uint64(addr)%mem.PageSize != 0 {
		return fmt.Errorf("vma: unmap address %#x unaligned", uint64(addr))
	}
	length = roundUp(length, mem.PageSize)
	end := addr + pgtable.VirtAddr(length)
	var out []*VMA
	for _, v := range s.vmas {
		if v.End <= addr || v.Start >= end {
			out = append(out, v)
			continue
		}
		s.Unmaps++
		left, right := v.Start < addr, v.End > end
		switch {
		case left && right:
			r := s.newVMA()
			*r = *v
			r.Start = end
			v.End = addr
			out = append(out, v, r)
			s.Splits += 2
		case left:
			v.End = addr
			out = append(out, v)
			s.Splits++
		case right:
			v.Start = end
			out = append(out, v)
			s.Splits++
		default:
			s.recycle(v)
		}
	}
	s.vmas = out
	return nil
}

// Protect applies prot to [addr, addr+length), splitting VMAs at the
// boundaries — mprotect. Fails if any byte of the range is unmapped.
func (s *Space) Protect(addr pgtable.VirtAddr, length uint64, prot pgtable.Prot) error {
	length = roundUp(length, mem.PageSize)
	end := addr + pgtable.VirtAddr(length)
	// Verify full coverage first.
	cur := addr
	for cur < end {
		v := s.Find(cur)
		if v == nil {
			return fmt.Errorf("vma: protect range [%#x,+%#x) has unmapped hole at %#x", uint64(addr), length, uint64(cur))
		}
		cur = v.End
	}
	var out []*VMA
	for _, v := range s.vmas {
		if v.End <= addr || v.Start >= end {
			out = append(out, v)
			continue
		}
		if v.Start < addr {
			left := *v
			left.End = addr
			out = append(out, &left)
			s.Splits++
		}
		mid := *v
		if mid.Start < addr {
			mid.Start = addr
		}
		if mid.End > end {
			mid.End = end
		}
		mid.Prot = prot
		out = append(out, &mid)
		if v.End > end {
			right := *v
			right.Start = end
			out = append(out, &right)
			s.Splits++
		}
	}
	s.vmas = out
	return nil
}

// Lock marks [addr, addr+length) as mlocked. Fails on holes.
func (s *Space) Lock(addr pgtable.VirtAddr, length uint64) error {
	length = roundUp(length, mem.PageSize)
	end := addr + pgtable.VirtAddr(length)
	cur := addr
	for cur < end {
		v := s.Find(cur)
		if v == nil {
			return fmt.Errorf("vma: mlock range has hole at %#x", uint64(cur))
		}
		cur = v.End
	}
	for _, v := range s.vmas {
		if v.End <= addr || v.Start >= end {
			continue
		}
		v.Locked = true
	}
	return nil
}

// SetBrk moves the program break (the brk system call). Growth creates or
// extends the heap VMA; shrinking trims it. Returns the resulting break.
func (s *Space) SetBrk(newBrk pgtable.VirtAddr) (pgtable.VirtAddr, error) {
	if newBrk == 0 {
		return s.brk, nil
	}
	if newBrk < s.layout.BrkStart {
		return s.brk, fmt.Errorf("vma: brk below heap start")
	}
	aligned := pgtable.VirtAddr(roundUp(uint64(newBrk), mem.PageSize))
	old := pgtable.VirtAddr(roundUp(uint64(s.brk), mem.PageSize))
	switch {
	case aligned > old:
		if s.overlaps(old, aligned) {
			return s.brk, fmt.Errorf("vma: brk growth collides with a mapping")
		}
		if _, err := s.MapAligned(old, uint64(aligned-old), pgtable.ProtRead|pgtable.ProtWrite, KindHeap, mem.PageSize); err != nil {
			return s.brk, err
		}
	case aligned < old:
		if err := s.Unmap(aligned, uint64(old-aligned)); err != nil {
			return s.brk, err
		}
	}
	s.brk = newBrk
	return s.brk, nil
}

// GrowStackTo extends the stack VMA downward to cover va (the kernel's
// expand_stack on a fault below the stack). Reports whether the growth
// was within RLIMIT_STACK.
func (s *Space) GrowStackTo(va pgtable.VirtAddr) bool {
	var stack *VMA
	for _, v := range s.vmas {
		if v.Kind == KindStack {
			stack = v
			break
		}
	}
	if stack == nil || va >= stack.Start {
		return stack != nil && stack.Contains(va)
	}
	newStart := pgtable.VirtAddr(uint64(va) &^ (mem.PageSize - 1))
	if uint64(s.layout.StackTop-newStart) > s.layout.StackMax {
		return false
	}
	if s.overlaps(newStart, stack.Start) {
		return false
	}
	stack.Start = newStart
	return true
}

// Clone returns a deep copy of the address space — fork's view of the
// parent's VMAs.
func (s *Space) Clone() *Space {
	c := &Space{layout: s.layout, brk: s.brk}
	c.vmas = make([]*VMA, len(s.vmas))
	for i, v := range s.vmas {
		cp := *v
		c.vmas[i] = &cp
	}
	return c
}

// CloneInto deep-copies the space into dst — the same state Clone
// produces, but reusing dst's VMA slice and structs so a pooled fork
// (kernel.ExitReap recycling) allocates nothing when capacities suffice.
// dst's statistics are zeroed, matching a freshly Cloned space.
func (s *Space) CloneInto(dst *Space) {
	old := dst.vmas
	vmas := old[:0]
	for i, v := range s.vmas {
		var cp *VMA
		if i < len(old) {
			cp = old[i]
		}
		if cp == nil {
			cp = new(VMA)
		}
		*cp = *v
		vmas = append(vmas, cp)
	}
	for i := len(s.vmas); i < len(old); i++ {
		old[i] = nil
	}
	dst.vmas = vmas
	dst.layout = s.layout
	dst.brk = s.brk
	dst.Maps, dst.Unmaps, dst.Splits, dst.Merges = 0, 0, 0, 0
}

// CheckInvariants verifies ordering and non-overlap; used in tests.
func (s *Space) CheckInvariants() error {
	for i, v := range s.vmas {
		if v.Start >= v.End {
			return fmt.Errorf("vma %d empty or inverted: %s", i, v)
		}
		if uint64(v.Start)%mem.PageSize != 0 || uint64(v.End)%mem.PageSize != 0 {
			return fmt.Errorf("vma %d unaligned: %s", i, v)
		}
		if i > 0 && s.vmas[i-1].End > v.Start {
			return fmt.Errorf("vmas %d/%d overlap: %s / %s", i-1, i, s.vmas[i-1], v)
		}
	}
	return nil
}
