// Package core implements HPMMAP (High Performance Memory Mapping and
// Allocation Platform), the paper's contribution: a lightweight memory
// manager that plugs into a commodity kernel as a loadable module.
//
// Architecture (paper §III, Figure 6):
//
//   - Physical memory is hot-removed ("offlined") from Linux at install
//     time and handed to a Kitten-style buddy allocator. Linux will never
//     allocate from it, so commodity memory pressure cannot touch it.
//   - A user-level launch tool registers HPC process IDs in a hash table.
//     Memory-management system calls check the table: registered
//     processes are redirected to HPMMAP's implementations of mmap,
//     munmap, brk and mprotect; everyone else falls through to Linux
//     untouched — zero overhead when not in use.
//   - Allocation is "on-request": every virtual region is backed with
//     physical memory eagerly at the system call, with 2MB pages as the
//     fundamental allocation unit, in a part of the 48-bit address space
//     Linux never uses. Valid accesses therefore take no page faults at
//     all, and the entire address space (stack included) is large-page
//     mapped.
package core

import (
	"fmt"
	"sort"

	"hpmmap/internal/buddy"
	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// RegionBase is the bottom of the virtual range HPMMAP maps into — an
// unused portion of the canonical lower half, far above Linux's mmap
// ceiling so the two VM systems never collide.
const RegionBase pgtable.VirtAddr = 0x0000_6000_0000_0000

// stackBytes is the eagerly mapped stack size for registered processes.
const stackBytes = 8 << 20

// Manager is the HPMMAP kernel module. It implements kernel.Interposer.
type Manager struct {
	node *kernel.Node
	rand *sim.Rand
	// pools holds one Kitten buddy allocator per NUMA zone's offlined
	// extents, so registered processes always get zone-local memory when
	// their zone's pool has room — a guarantee Linux cannot give under
	// pressure.
	pools []*buddy.Allocator

	// registry is the PID hash table of Figure 6.
	registry map[int]bool

	// Use1GPages maps regions of 1GB or more with 1GB pages where the
	// pool has gigabyte-contiguous blocks ("2MB by default, but up to 1GB
	// where supported by hardware").
	Use1GPages bool

	// Per-block bookkeeping costs (cycles), on top of the page clear.
	AllocBookkeeping float64
	PTSetupCost      float64

	// regionPool and psPool recycle per-region and per-process structs
	// for the kernel's lifecycle fast path (DetachReap) and Munmap churn,
	// keeping block-slice and map capacity across pod lifecycles.
	regionPool []*region
	psPool     []*procState

	// Statistics.
	Registrations, MapCalls, UnmapCalls, BrkCalls uint64
	BytesMapped                                   uint64
}

// Install offlines offlineBytes of memory (split evenly across NUMA
// zones, as the paper configures) and loads the module: the node's
// system-call layer begins checking the registry. Returns an error if the
// memory cannot be offlined.
func Install(node *kernel.Node, offlineBytes uint64) (*Manager, error) {
	zones := node.Mem.Zones
	per := offlineBytes / uint64(len(zones))
	per -= per % mem.SectionSize
	var pools []*buddy.Allocator
	for _, z := range zones {
		extents, err := z.Offline(per)
		if err != nil {
			return nil, fmt.Errorf("hpmmap: offline failed: %w", err)
		}
		pool := buddy.New(mem.LargePageSize)
		// Hot-remove returns 128MB sections; physically adjacent ones are
		// donated as single arenas so the pool retains its gigabyte-scale
		// contiguity ("no less than 128MB, and generally much more").
		for _, e := range coalesce(extents) {
			if err := pool.AddRegion(e.Base.Addr(), e.Bytes()); err != nil {
				return nil, fmt.Errorf("hpmmap: pool init: %w", err)
			}
		}
		pools = append(pools, pool)
	}
	m := &Manager{
		node:             node,
		rand:             node.Rand().Split(),
		pools:            pools,
		registry:         make(map[int]bool),
		AllocBookkeeping: 350,
		PTSetupCost:      250,
	}
	node.SetInterposer(m)
	return m, nil
}

// coalesce merges physically adjacent extents into maximal runs.
func coalesce(extents []mem.Extent) []mem.Extent {
	if len(extents) == 0 {
		return nil
	}
	sorted := append([]mem.Extent(nil), extents...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	out := []mem.Extent{sorted[0]}
	for _, e := range sorted[1:] {
		last := &out[len(out)-1]
		if last.End() == e.Base {
			last.Pages += e.Pages
			continue
		}
		out = append(out, e)
	}
	return out
}

// Uninstall removes the interposition hook. Registered processes must
// have exited first.
func (m *Manager) Uninstall() error {
	if len(m.registry) != 0 {
		return fmt.Errorf("hpmmap: %d processes still registered", len(m.registry))
	}
	m.node.SetInterposer(nil)
	return nil
}

// PoolFreeBytes returns the free offlined memory across all zone pools.
func (m *Manager) PoolFreeBytes() uint64 {
	var t uint64
	for _, p := range m.pools {
		t += p.FreeBytes()
	}
	return t
}

// PoolTotalBytes returns the offlined memory under management.
func (m *Manager) PoolTotalBytes() uint64 {
	var t uint64
	for _, p := range m.pools {
		t += p.TotalBytes()
	}
	return t
}

// ZonePool exposes one zone's allocator (for stats and tests).
func (m *Manager) ZonePool(zone int) *buddy.Allocator { return m.pools[zone] }

// allocBlock takes one 2MB block, preferring the process's zone pool.
// Reports the zone used.
func (m *Manager) allocBlock(preferred int) (uint64, int, error) {
	if preferred < 0 || preferred >= len(m.pools) {
		preferred = 0
	}
	if addr, _, err := m.pools[preferred].Alloc(mem.LargePageSize); err == nil {
		return addr, preferred, nil
	}
	for i, p := range m.pools {
		if i == preferred {
			continue
		}
		if addr, _, err := p.Alloc(mem.LargePageSize); err == nil {
			return addr, i, nil
		}
	}
	return 0, 0, fmt.Errorf("hpmmap: all zone pools exhausted")
}

// freeBlock returns a block to its zone pool.
func (m *Manager) freeBlock(b block) {
	size := uint64(mem.LargePageSize)
	if b.huge {
		size = mem.HugePageSize
	}
	m.pools[b.zone].Free(b.addr, size)
}

// allocHuge takes one 1GB block, preferring the process's zone pool.
func (m *Manager) allocHuge(preferred int) (uint64, int, error) {
	if preferred < 0 || preferred >= len(m.pools) {
		preferred = 0
	}
	if addr, _, err := m.pools[preferred].Alloc(mem.HugePageSize); err == nil {
		return addr, preferred, nil
	}
	for i, p := range m.pools {
		if i == preferred {
			continue
		}
		if addr, _, err := p.Alloc(mem.HugePageSize); err == nil {
			return addr, i, nil
		}
	}
	return 0, 0, fmt.Errorf("hpmmap: no 1GB-contiguous pool block")
}

// Name implements kernel.MemoryManager.
func (m *Manager) Name() string { return "hpmmap" }

// Registered implements kernel.Interposer: the hash-table check on every
// interposed system call.
func (m *Manager) Registered(pid int) bool { return m.registry[pid] }

// Register inserts a PID into the hash table. The paper's launch tool
// calls this before exec.
func (m *Manager) Register(pid int) {
	m.registry[pid] = true
	m.Registrations++
}

// Launch mimics the user-level tool: register the PID the next process
// will get, then create it, so its very first memory system call is
// already interposed.
func (m *Manager) Launch(name string, preferredZone int) (*kernel.Process, error) {
	m.Register(m.node.NextPID())
	p, err := m.node.NewProcess(name, false, preferredZone)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// block is one backing unit (2MB, or 1GB when huge) with its source zone.
type block struct {
	addr uint64
	zone int
	huge bool
}

// region is one eagerly backed HPMMAP mapping.
type region struct {
	start  pgtable.VirtAddr
	length uint64 // rounded to 2MB
	blocks []block
	kind   vma.Kind
	remote uint64 // bytes from non-preferred zones
}

type procState struct {
	regions map[pgtable.VirtAddr]*region
	order   []pgtable.VirtAddr
	cursor  pgtable.VirtAddr
	heap    *region
	brk     pgtable.VirtAddr
}

func state(p *kernel.Process) *procState { return p.MMState().(*procState) }

// newRegion returns a region struct from the recycle pool (keeping its
// blocks capacity) or a fresh one.
func (m *Manager) newRegion() *region {
	if n := len(m.regionPool); n > 0 {
		r := m.regionPool[n-1]
		m.regionPool[n-1] = nil
		m.regionPool = m.regionPool[:n-1]
		*r = region{blocks: r.blocks[:0]}
		return r
	}
	return &region{}
}

// newProcState returns per-process state from the recycle pool or a
// fresh struct.
func (m *Manager) newProcState() *procState {
	if n := len(m.psPool); n > 0 {
		ps := m.psPool[n-1]
		m.psPool[n-1] = nil
		m.psPool = m.psPool[:n-1]
		return ps
	}
	return &procState{regions: make(map[pgtable.VirtAddr]*region)}
}

// Attach implements kernel.MemoryManager: set up the lightweight address
// space, including the eagerly mapped large-page stack.
func (m *Manager) Attach(p *kernel.Process) error {
	ps := m.newProcState()
	ps.cursor = RegionBase
	p.SetMMState(ps)
	ps.brk = RegionBase + 0x1000_0000_0000 // heap sub-range
	if _, _, err := m.mapAt(p, ps, ps.cursor, stackBytes, vma.KindStack); err != nil {
		return fmt.Errorf("hpmmap: stack setup: %w", err)
	}
	ps.cursor += stackBytes
	return nil
}

// Detach implements kernel.MemoryManager: free every block and drop the
// registry entry (the hash-table delete of Figure 6).
func (m *Manager) Detach(p *kernel.Process) {
	ps := state(p)
	for _, start := range ps.order {
		m.release(p, ps.regions[start])
	}
	ps.regions = make(map[pgtable.VirtAddr]*region)
	ps.order = nil
	delete(m.registry, p.PID)
}

// DetachReap implements kernel.ReapDetacher: identical teardown to
// Detach — blocks freed region by region in mapping order, so the pool
// free lists end in the same state — but the region structs and the
// per-process state are recycled, and MMState is cleared so stale
// post-exit calls fail loudly.
func (m *Manager) DetachReap(p *kernel.Process) {
	ps := state(p)
	for _, start := range ps.order {
		r := ps.regions[start]
		m.release(p, r)
		m.regionPool = append(m.regionPool, r)
	}
	clear(ps.regions)
	ps.order = ps.order[:0]
	ps.cursor, ps.heap, ps.brk = 0, nil, 0
	m.psPool = append(m.psPool, ps)
	p.SetMMState(nil)
	delete(m.registry, p.PID)
}

func (m *Manager) release(p *kernel.Process, r *region) {
	if r == nil {
		return
	}
	var bytes uint64
	for _, b := range r.blocks {
		m.freeBlock(b)
		if b.huge {
			bytes += mem.HugePageSize
		} else {
			bytes += mem.LargePageSize
		}
	}
	p.ResidentLarge -= bytes
	p.ResidentRemote -= r.remote
	if m.node.Detail {
		p.PT.UnmapRange(r.start, r.length)
	}
	// Truncate rather than drop: pooled reuse keeps the capacity.
	r.blocks = r.blocks[:0]
	r.remote = 0
}

// mapAt eagerly backs [at, at+length) with large pages from the offlined
// pool: 1GB pages for gigabyte-scale regions when enabled, 2MB otherwise.
// Returns the region and the cycles consumed.
func (m *Manager) mapAt(p *kernel.Process, ps *procState, at pgtable.VirtAddr, length uint64, kind vma.Kind) (*region, sim.Cycles, error) {
	length = roundUp2M(length)
	// 1GB mapping needs a 1GB-aligned VA and a gigabyte of length; the
	// cursor allocator keeps RegionBase 1GB-aligned, so whole-GB prefixes
	// qualify when the region itself is GB-aligned.
	use1G := m.Use1GPages && uint64(at)%mem.HugePageSize == 0 && length >= mem.HugePageSize
	n := length / mem.LargePageSize
	r := m.newRegion()
	r.start, r.length, r.kind = at, length, kind
	if uint64(cap(r.blocks)) < n {
		r.blocks = make([]block, 0, n)
	}
	load := m.node.LoadFor(p)
	var cost float64
	fail := func(i uint64, err error) (*region, sim.Cycles, error) {
		for _, b := range r.blocks {
			m.freeBlock(b)
		}
		return nil, 0, fmt.Errorf("hpmmap: pool exhausted after %d of %d blocks: %w", i, n, err)
	}
	off := uint64(0)
	if use1G {
		for off+mem.HugePageSize <= length {
			addr, zone, err := m.allocHuge(p.PreferredZone)
			if err != nil {
				// Fall back to 2MB blocks for the rest.
				break
			}
			r.blocks = append(r.blocks, block{addr: addr, zone: zone, huge: true})
			if zone != p.PreferredZone {
				r.remote += mem.HugePageSize
			}
			cost += m.AllocBookkeeping + m.PTSetupCost + 512*m.node.Config().Costs.Clear2MCycles(load)
			if m.node.Detail {
				va := at + pgtable.VirtAddr(off)
				if err := p.PT.Map(va, mem.PFN(addr/mem.PageSize), pgtable.Page1G, pgtable.ProtRead|pgtable.ProtWrite); err != nil {
					// Simulated-state violation: the eager 1GB backing
					// collided with an existing mapping in a region the
					// VMA layer just carved out as free.
					invariant.Fail(invariant.Violation{
						Check: "pt_map_conflict", Subsystem: "core", PID: p.PID,
						Manager: "hpmmap",
						Detail:  fmt.Sprintf("eager 1GB map at %#x failed: %v", uint64(va), err),
					})
				}
			}
			off += mem.HugePageSize
		}
	}
	for ; off < length; off += mem.LargePageSize {
		addr, zone, err := m.allocBlock(p.PreferredZone)
		if err != nil {
			// Roll back: on-request allocation is all-or-nothing.
			return fail(off/mem.LargePageSize, err)
		}
		r.blocks = append(r.blocks, block{addr: addr, zone: zone})
		if zone != p.PreferredZone {
			r.remote += mem.LargePageSize
		}
		cost += m.AllocBookkeeping + m.PTSetupCost + m.node.Config().Costs.Clear2MCycles(load)
		if m.node.Detail {
			va := at + pgtable.VirtAddr(off)
			if err := p.PT.Map(va, mem.PFN(addr/mem.PageSize), pgtable.Page2M, pgtable.ProtRead|pgtable.ProtWrite); err != nil {
				// Simulated-state violation: eager 2MB backing collided
				// with an existing mapping.
				invariant.Fail(invariant.Violation{
					Check: "pt_map_conflict", Subsystem: "core", PID: p.PID,
					Manager: "hpmmap",
					Detail:  fmt.Sprintf("eager 2MB map at %#x failed: %v", uint64(va), err),
				})
			}
		}
	}
	ps.regions[at] = r
	ps.order = append(ps.order, at)
	p.ResidentLarge += length
	p.ResidentRemote += r.remote
	m.BytesMapped += length
	return r, sim.Cycles(m.rand.Jitter(sim.Cycles(cost), 0.05)), nil
}

// Mmap implements kernel.MemoryManager: on-request allocation — the
// region is fully backed before the call returns, so it will never fault.
func (m *Manager) Mmap(p *kernel.Process, length uint64, prot pgtable.Prot, kind vma.Kind) (pgtable.VirtAddr, sim.Cycles, error) {
	ps := state(p)
	at := ps.cursor
	if m.Use1GPages && length >= mem.HugePageSize {
		// Align gigabyte-scale regions so they can take 1GB mappings.
		at = pgtable.VirtAddr((uint64(at) + mem.HugePageSize - 1) &^ (mem.HugePageSize - 1))
		ps.cursor = at
	}
	r, cost, err := m.mapAt(p, ps, at, length, kind)
	if err != nil {
		return 0, 0, err
	}
	ps.cursor += pgtable.VirtAddr(r.length)
	m.MapCalls++
	return at, cost, nil
}

// Munmap implements kernel.MemoryManager.
func (m *Manager) Munmap(p *kernel.Process, addr pgtable.VirtAddr, length uint64) (sim.Cycles, error) {
	ps := state(p)
	r := ps.regions[addr]
	if r == nil || r.length != roundUp2M(length) {
		return 0, fmt.Errorf("hpmmap: munmap %#x+%#x does not match a region", uint64(addr), length)
	}
	blocks := len(r.blocks)
	m.release(p, r)
	delete(ps.regions, addr)
	for i, s := range ps.order {
		if s == addr {
			ps.order = append(ps.order[:i], ps.order[i+1:]...)
			break
		}
	}
	if r != ps.heap {
		m.regionPool = append(m.regionPool, r)
	}
	m.UnmapCalls++
	return sim.Cycles(m.rand.Jitter(sim.Cycles(600+float64(blocks)*(m.AllocBookkeeping+m.PTSetupCost)), 0.05)), nil
}

// Brk implements kernel.MemoryManager: the heap grows in eagerly mapped
// 2MB steps inside HPMMAP's heap sub-range.
func (m *Manager) Brk(p *kernel.Process, newBrk pgtable.VirtAddr) (pgtable.VirtAddr, sim.Cycles, error) {
	ps := state(p)
	heapBase := RegionBase + 0x1000_0000_0000
	m.BrkCalls++
	if newBrk == 0 {
		return ps.brk, sim.Cycles(m.rand.Jitter(500, 0.1)), nil
	}
	if newBrk < heapBase {
		return ps.brk, 0, fmt.Errorf("hpmmap: brk below heap base")
	}
	wantLen := roundUp2M(uint64(newBrk - heapBase))
	if ps.heap == nil && wantLen > 0 {
		ps.heap = &region{start: heapBase, kind: vma.KindHeap}
		ps.regions[heapBase] = ps.heap
		ps.order = append(ps.order, heapBase)
	}
	var cost sim.Cycles
	if ps.heap != nil && wantLen > ps.heap.length {
		// Extend the single heap region: back the delta eagerly.
		delta := wantLen - ps.heap.length
		n := delta / mem.LargePageSize
		load := m.node.LoadFor(p)
		var c float64
		for i := uint64(0); i < n; i++ {
			addr, zone, err := m.allocBlock(p.PreferredZone)
			if err != nil {
				return ps.brk, 0, fmt.Errorf("hpmmap: brk: pool exhausted: %w", err)
			}
			if m.node.Detail {
				va := heapBase + pgtable.VirtAddr(ps.heap.length+i*mem.LargePageSize)
				if err := p.PT.Map(va, mem.PFN(addr/mem.PageSize), pgtable.Page2M, pgtable.ProtRead|pgtable.ProtWrite); err != nil {
					// Simulated-state violation: brk's eager heap
					// extension collided with an existing mapping.
					invariant.Fail(invariant.Violation{
						Check: "pt_map_conflict", Subsystem: "core", PID: p.PID,
						Manager: "hpmmap",
						Detail:  fmt.Sprintf("brk heap map at %#x failed: %v", uint64(va), err),
					})
				}
			}
			ps.heap.blocks = append(ps.heap.blocks, block{addr: addr, zone: zone})
			if zone != p.PreferredZone {
				ps.heap.remote += mem.LargePageSize
				p.ResidentRemote += mem.LargePageSize
			}
			c += m.AllocBookkeeping + m.PTSetupCost + m.node.Config().Costs.Clear2MCycles(load)
		}
		ps.heap.length = wantLen
		p.ResidentLarge += delta
		m.BytesMapped += delta
		cost = sim.Cycles(m.rand.Jitter(sim.Cycles(c), 0.05))
	}
	// Shrinks keep the mapping (the paper's workloads never shrink; glibc
	// keeps trimmed heap pages around as well).
	ps.brk = newBrk
	return newBrk, cost + sim.Cycles(m.rand.Jitter(500, 0.1)), nil
}

// Mprotect implements kernel.MemoryManager. HPMMAP tracks protections at
// region granularity; the call only touches HPMMAP state.
func (m *Manager) Mprotect(p *kernel.Process, addr pgtable.VirtAddr, length uint64, prot pgtable.Prot) (sim.Cycles, error) {
	ps := state(p)
	if r := findRegion(ps, addr); r != nil {
		if m.node.Detail {
			cur := addr
			end := addr + pgtable.VirtAddr(roundUp2M(length))
			for cur < end {
				if _, err := p.PT.Protect(cur, prot); err != nil {
					break
				}
				cur += mem.LargePageSize
			}
		}
		return sim.Cycles(m.rand.Jitter(700, 0.1)), nil
	}
	return 0, fmt.Errorf("hpmmap: mprotect on unmapped %#x", uint64(addr))
}

// TouchRange implements kernel.MemoryManager: valid accesses generate no
// page faults at all — the defining property of on-request allocation.
//
//detsim:hotpath
func (m *Manager) TouchRange(p *kernel.Process, addr pgtable.VirtAddr, length uint64) (kernel.TouchStats, error) {
	ps := state(p)
	r := findRegion(ps, addr)
	if r == nil || uint64(addr)+length > uint64(r.start)+r.length {
		// An HPMMAP process accessing unmapped memory is a segfault, not
		// a demand-paging opportunity.
		return kernel.TouchStats{}, fmt.Errorf("hpmmap: segfault at %#x (pid %d)", uint64(addr), p.PID)
	}
	return kernel.TouchStats{}, nil
}

// PageSizeAt implements kernel.MemoryManager: everything is large-page
// mapped.
func (m *Manager) PageSizeAt(p *kernel.Process, va pgtable.VirtAddr) pgtable.PageSize {
	return pgtable.Page2M
}

// StackRange implements kernel.MemoryManager: the eagerly mapped stack
// sits at RegionBase.
func (m *Manager) StackRange(p *kernel.Process, bytes uint64) (pgtable.VirtAddr, uint64) {
	if bytes > stackBytes {
		bytes = stackBytes
	}
	return RegionBase, bytes
}

func findRegion(ps *procState, va pgtable.VirtAddr) *region {
	// Regions are few (tens); linear scan over the ordered list.
	for _, start := range ps.order {
		r := ps.regions[start]
		if va >= r.start && va < r.start+pgtable.VirtAddr(r.length) {
			return r
		}
	}
	return nil
}

func roundUp2M(v uint64) uint64 {
	return (v + mem.LargePageSize - 1) / mem.LargePageSize * mem.LargePageSize
}
