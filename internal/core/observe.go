package core

import "hpmmap/internal/metrics"

// Observe registers the HPMMAP manager's system-call tallies and its
// per-zone Kitten buddy pools with the metrics registry, all as pull-mode
// sources read at snapshot time (the buddy pools aggregate additively
// under the shared buddy_* names). No-op on a nil registry; the syscall
// and fault hot paths are untouched.
func (m *Manager) Observe(reg *metrics.Registry) {
	reg.CounterFunc(metrics.HPMMAPRegistrationsTotal, func() uint64 { return m.Registrations })
	reg.CounterFunc(metrics.HPMMAPMapCallsTotal, func() uint64 { return m.MapCalls })
	reg.CounterFunc(metrics.HPMMAPUnmapCallsTotal, func() uint64 { return m.UnmapCalls })
	reg.CounterFunc(metrics.HPMMAPBrkCallsTotal, func() uint64 { return m.BrkCalls })
	reg.CounterFunc(metrics.HPMMAPBytesMapped, func() uint64 { return m.BytesMapped })
	for _, p := range m.pools {
		p.Observe(reg)
	}
}
