package core

import (
	"testing"
	"testing/quick"

	"hpmmap/internal/fault"
	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/mem"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

const rw = pgtable.ProtRead | pgtable.ProtWrite

type env struct {
	eng  *sim.Engine
	node *kernel.Node
	hp   *Manager
}

func newEnv(t testing.TB, offline uint64, detail bool) *env {
	t.Helper()
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(7))
	node.Detail = detail
	node.SetDefaultMM(linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil))
	hp, err := Install(node, offline)
	if err != nil {
		t.Fatal(err)
	}
	return &env{eng: eng, node: node, hp: hp}
}

func TestInstallOfflinesMemory(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	// 12GB gone from Linux.
	if got := e.node.Mem.TotalPages() * mem.PageSize; got != 4<<30 {
		t.Fatalf("linux-visible memory %d, want 4GB", got)
	}
	if e.hp.PoolTotalBytes() != 12<<30 {
		t.Fatalf("pool size %d", e.hp.PoolTotalBytes())
	}
	// Pool blocks are large and contiguous (paper: sections >= 128MB).
	if e.hp.ZonePool(0).LargestFreeBlock() < 128<<20 {
		t.Fatalf("largest pool block %d", e.hp.ZonePool(0).LargestFreeBlock())
	}
}

func TestInstallFailsWhenTooBig(t *testing.T) {
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(7))
	node.SetDefaultMM(linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil))
	if _, err := Install(node, 64<<30); err == nil {
		t.Fatal("offlining more than installed RAM succeeded")
	}
}

func TestLaunchRegistersAndRoutes(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, err := e.hp.Launch("hpc-app", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !e.hp.Registered(p.PID) {
		t.Fatal("launched process not in registry")
	}
	if e.node.ManagerNameFor(p) != "hpmmap" {
		t.Fatalf("routed to %q", e.node.ManagerNameFor(p))
	}
	// Ordinary processes stay on Linux.
	q, _ := e.node.NewProcess("build", true, 0)
	if e.node.ManagerNameFor(q) == "hpmmap" {
		t.Fatal("unregistered process routed to hpmmap")
	}
}

func TestOnRequestAllocationNoFaults(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	linuxFree := e.node.Mem.FreePages()
	addr, cost, err := e.node.Mmap(p, 1<<30, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	// Eager: memory is resident immediately (region + the 8MB stack
	// mapped at launch), from the pool, not Linux.
	if p.ResidentLarge != 1<<30+stackBytes {
		t.Fatalf("resident %d after mmap", p.ResidentLarge)
	}
	if e.node.Mem.FreePages() != linuxFree {
		t.Fatal("hpmmap consumed Linux-managed memory")
	}
	if e.hp.PoolFreeBytes() != 12<<30-(1<<30)-stackBytes {
		t.Fatalf("pool free %d", e.hp.PoolFreeBytes())
	}
	// The eager cost covers zeroing 512 pages: ~512 * 328K cycles.
	if cost < 100e6 || cost > 400e6 {
		t.Fatalf("eager mmap cost %d outside expected band", cost)
	}
	// No faults, ever.
	st, err := e.node.TouchRange(p, addr, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalFaults() != 0 {
		t.Fatalf("faults on hpmmap process: %+v", st.Faults)
	}
	for k := 0; k < fault.NumKinds; k++ {
		if p.Faults.Faults[k] != 0 {
			t.Fatalf("fault kind %d recorded", k)
		}
	}
}

func TestEverythingLargeMapped(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	addr, _, _ := e.node.Mmap(p, 64<<20, rw, vma.KindAnon)
	if ps := e.node.PageSizeAt(p, addr); ps != pgtable.Page2M {
		t.Fatalf("page size %v", ps)
	}
	if p.LargeFraction() != 1 {
		t.Fatalf("large fraction %v", p.LargeFraction())
	}
}

func TestStackEagerlyMapped(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	// The stack region exists at RegionBase; touching it takes no faults.
	st, err := e.node.TouchRange(p, RegionBase, stackBytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalFaults() != 0 {
		t.Fatal("stack touch faulted")
	}
}

func TestSegfaultOnInvalidAccess(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	if _, err := e.node.TouchRange(p, 0xdead_0000_0000, 4096); err == nil {
		t.Fatal("access to unmapped memory did not fail")
	}
}

func TestBrkEager(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	base, _, err := e.node.Brk(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb, cost, err := e.node.Brk(p, base+pgtable.VirtAddr(100<<20))
	if err != nil {
		t.Fatal(err)
	}
	if nb != base+pgtable.VirtAddr(100<<20) {
		t.Fatalf("brk %#x", uint64(nb))
	}
	if cost < 10e6 {
		t.Fatalf("eager brk cost %d too cheap", cost)
	}
	st, err := e.node.TouchRange(p, base, 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalFaults() != 0 {
		t.Fatal("heap touch faulted")
	}
	// Second grow extends the same region; the gap stays touchable.
	nb2, _, err := e.node.Brk(p, base+pgtable.VirtAddr(200<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(p, base, uint64(nb2-base)); err != nil {
		t.Fatal(err)
	}
	// Shrink keeps the mapping.
	if _, _, err := e.node.Brk(p, base+pgtable.VirtAddr(50<<20)); err != nil {
		t.Fatal(err)
	}
	if p.ResidentLarge < 200<<20 {
		t.Fatalf("resident %d after shrink (mapping should be kept)", p.ResidentLarge)
	}
}

func TestMunmapReturnsToPool(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	before := e.hp.PoolFreeBytes()
	addr, _, _ := e.node.Mmap(p, 256<<20, rw, vma.KindAnon)
	if _, err := e.node.Munmap(p, addr, 256<<20); err != nil {
		t.Fatal(err)
	}
	if e.hp.PoolFreeBytes() != before {
		t.Fatal("munmap leaked pool memory")
	}
	if _, err := e.node.TouchRange(p, addr, 4096); err == nil {
		t.Fatal("touch after munmap succeeded")
	}
}

func TestExitCleansRegistryAndPool(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	if _, _, err := e.node.Mmap(p, 1<<30, rw, vma.KindAnon); err != nil {
		t.Fatal(err)
	}
	e.node.Exit(p)
	if e.hp.Registered(p.PID) {
		t.Fatal("registry entry survives exit")
	}
	if e.hp.PoolFreeBytes() != 12<<30 {
		t.Fatalf("pool free %d after exit", e.hp.PoolFreeBytes())
	}
}

func TestPoolExhaustionFailsCleanly(t *testing.T) {
	e := newEnv(t, 2<<30, false)
	p, _ := e.hp.Launch("app", 0)
	if _, _, err := e.node.Mmap(p, 4<<30, rw, vma.KindAnon); err == nil {
		t.Fatal("mmap beyond pool size succeeded")
	}
	// The failed mmap must have rolled back fully.
	if e.hp.PoolFreeBytes() != 2<<30-stackBytes {
		t.Fatalf("pool free %d after failed mmap", e.hp.PoolFreeBytes())
	}
}

func TestIsolationFromCommodityPressure(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	// Saturate Linux's 4GB completely.
	for _, z := range e.node.Mem.Zones {
		e.node.PageCacheAdd(z.ID, z.FreePages()*mem.PageSize)
	}
	// HPMMAP allocation is unaffected.
	addr, _, err := e.node.Mmap(p, 1<<30, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.node.TouchRange(p, addr, 1<<30)
	if err != nil || st.TotalFaults() != 0 {
		t.Fatalf("isolation violated: %v %+v", err, st.Faults)
	}
}

func TestDetailModeMapsLargePTEs(t *testing.T) {
	e := newEnv(t, 12<<30, true)
	p, _ := e.hp.Launch("app", 0)
	addr, _, _ := e.node.Mmap(p, 64<<20, rw, vma.KindAnon)
	m, ok := p.PT.Walk(addr + 12345)
	if !ok || m.Size != pgtable.Page2M {
		t.Fatalf("PT walk: %+v %v", m, ok)
	}
	if p.PT.Mapped2M != 64/2+stackBytes/mem.LargePageSize {
		t.Fatalf("2M PTEs %d", p.PT.Mapped2M)
	}
	if _, err := e.node.Munmap(p, addr, 64<<20); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.PT.Walk(addr); ok {
		t.Fatal("PTE survives munmap")
	}
}

func TestMprotect(t *testing.T) {
	e := newEnv(t, 12<<30, true)
	p, _ := e.hp.Launch("app", 0)
	addr, _, _ := e.node.Mmap(p, 4<<20, rw, vma.KindAnon)
	if _, err := e.node.Mprotect(p, addr, 2<<20, pgtable.ProtRead); err != nil {
		t.Fatal(err)
	}
	m, _ := p.PT.Walk(addr)
	if m.Prot != pgtable.ProtRead {
		t.Fatalf("prot %v", m.Prot)
	}
	if _, err := e.node.Mprotect(p, 0xdead_0000_0000, 4096, rw); err == nil {
		t.Fatal("mprotect on unmapped succeeded")
	}
}

func TestUninstall(t *testing.T) {
	e := newEnv(t, 2<<30, false)
	p, _ := e.hp.Launch("app", 0)
	if err := e.hp.Uninstall(); err == nil {
		t.Fatal("uninstall with registered process succeeded")
	}
	e.node.Exit(p)
	if err := e.hp.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if e.node.ManagerNameFor(p) == "hpmmap" {
		t.Fatal("routing still via hpmmap after uninstall")
	}
}

func TestMmapCostScalesWithSize(t *testing.T) {
	e := newEnv(t, 12<<30, false)
	p, _ := e.hp.Launch("app", 0)
	_, c1, err := e.node.Mmap(p, 2<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	_, c64, err := e.node.Mmap(p, 128<<20, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(c64) / float64(c1)
	if ratio < 30 || ratio > 130 {
		t.Fatalf("cost ratio %v for 64x size", ratio)
	}
}

func TestUse1GPages(t *testing.T) {
	e := newEnv(t, 12<<30, true)
	e.hp.Use1GPages = true
	p, _ := e.hp.Launch("app", 0)
	addr, cost, err := e.node.Mmap(p, 3<<30, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("eager cost zero")
	}
	m, ok := p.PT.Walk(addr + 12345)
	if !ok || m.Size != pgtable.Page1G {
		t.Fatalf("walk: %+v %v — expected a 1GB mapping", m, ok)
	}
	if p.PT.Mapped1G == 0 {
		t.Fatal("no 1GB PTEs")
	}
	// Touch is still fault-free; teardown returns everything.
	if st, err := e.node.TouchRange(p, addr, 3<<30); err != nil || st.TotalFaults() != 0 {
		t.Fatalf("touch: %v %+v", err, st)
	}
	e.node.Exit(p)
	if e.hp.PoolFreeBytes() != 12<<30 {
		t.Fatalf("pool free %d after exit", e.hp.PoolFreeBytes())
	}
}

func TestUse1GFallsBackWhenPoolFragmented(t *testing.T) {
	e := newEnv(t, 2<<30, false)
	e.hp.Use1GPages = true
	p, _ := e.hp.Launch("app", 0)
	// Fragment the pool below 1GB contiguity: the stack took 8MB already,
	// so a zone pool (1GB each) has no free 1GB block in zone 0.
	addr, _, err := e.node.Mmap(p, 1<<30, rw, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	_ = addr
	if p.ResidentLarge < 1<<30 {
		t.Fatalf("resident %d; 2MB fallback should have covered the region", p.ResidentLarge)
	}
}

func TestForkUnsupportedByDesign(t *testing.T) {
	e := newEnv(t, 2<<30, false)
	p, _ := e.hp.Launch("app", 0)
	if _, _, err := e.node.Fork(p, "child"); err == nil {
		t.Fatal("fork of an HPMMAP process succeeded; the eager design cannot COW")
	}
	// Linux processes on the same node still fork fine.
	q, _ := e.node.NewProcess("make", true, 0)
	if _, _, err := e.node.Fork(q, "cc1"); err != nil {
		t.Fatalf("linux fork broken: %v", err)
	}
}

// Property: random mmap/brk/munmap sequences against the HPMMAP pool
// conserve bytes exactly and never double-allocate.
func TestHPMMAPPoolConservationProperty(t *testing.T) {
	check := func(seed uint64) bool {
		e := newEnv(t, 4<<30, false)
		p, err := e.hp.Launch("fuzz", 0)
		if err != nil {
			t.Log(err)
			return false
		}
		r := sim.NewRand(seed)
		type reg struct {
			addr pgtable.VirtAddr
			size uint64
		}
		var live []reg
		brkBase, _, _ := e.node.Brk(p, 0)
		var brkLen uint64
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0, 1:
				size := uint64(1+r.Intn(64)) << 20
				addr, _, err := e.node.Mmap(p, size, rw, vma.KindAnon)
				if err == nil {
					live = append(live, reg{addr, size})
				}
			case 2:
				if len(live) > 0 {
					i := r.Intn(len(live))
					v := live[i]
					live = append(live[:i], live[i+1:]...)
					if _, err := e.node.Munmap(p, v.addr, v.size); err != nil {
						t.Logf("seed %d: munmap: %v", seed, err)
						return false
					}
				}
			case 3:
				grow := uint64(1+r.Intn(8)) << 20
				if _, _, err := e.node.Brk(p, brkBase+pgtable.VirtAddr(brkLen+grow)); err == nil {
					brkLen += grow
				}
			}
			// Conservation at every step: resident == total - free pool.
			used := e.hp.PoolTotalBytes() - e.hp.PoolFreeBytes()
			if used != p.ResidentLarge {
				t.Logf("seed %d op %d: pool used %d != resident %d", seed, op, used, p.ResidentLarge)
				return false
			}
		}
		e.node.Exit(p)
		return e.hp.PoolFreeBytes() == e.hp.PoolTotalBytes()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
