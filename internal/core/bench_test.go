package core

// Hot-path microbenchmark for HPMMAP's on-request allocation (ISSUE 6):
// Mmap through the interposed manager carves 2MB pages out of the
// offlined buddy pool up front, so TouchRange is the paper's fault-free
// access path. The map/touch/unmap cycle exercises the pool's
// bitmap-indexed free lists on both sides. Run with `make bench` or:
//
//	go test -bench HPMMAP -benchmem ./internal/core/

import (
	"testing"

	"hpmmap/internal/vma"
)

func BenchmarkHPMMAPTouchRange(b *testing.B) {
	e := newEnv(b, 12<<30, false)
	p, err := e.hp.Launch("hpc-app", 0)
	if err != nil {
		b.Fatal(err)
	}
	const size = 64 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _, err := e.node.Mmap(p, size, rw, vma.KindAnon)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.TouchRange(p, addr, size); err != nil {
			b.Fatal(err)
		}
		if _, err := e.node.Munmap(p, addr, size); err != nil {
			b.Fatal(err)
		}
	}
}
