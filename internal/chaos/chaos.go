// Package chaos is a deterministic, seeded fault injector for the
// simulation: it schedules adversarial events on the sim engine that
// recreate the hostile conditions of a time-shared commodity node —
// memory-pressure spikes, buddy-allocator contiguity theft, swap-device
// exhaustion, page-cache flash fills, TLB-flush/mm-lock storms, and
// straggling peers in the BSP exchange.
//
// Chaos exists to answer the robustness question behind the paper's
// Figures 3, 5 and 7: Linux-based large-page managers (THP, HugeTLBfs)
// degrade when the surrounding system misbehaves, while HPMMAP's
// isolated path does not. The injector drives that misbehavior
// reproducibly.
//
// Determinism contract: every injector draws from a chaos-dedicated
// SplitMix64 stream derived from the cell seed with a chaos tag — never
// from the workload PRNG — so enabling chaos perturbs the simulated
// machine but not the workload's own random choices, and a given
// (seed, Config) produces a byte-identical event schedule at any runner
// worker count. Each event family owns a Split substream carved in a
// fixed order, so disabling one family never shifts another's draws.
package chaos

import (
	"fmt"

	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/metrics"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/vma"
)

// Config selects which adversarial event families run and how hard.
type Config struct {
	// Intensity in [0,1] scales both event frequency and magnitude.
	// 0 disables injection entirely (Attach becomes a no-op).
	Intensity float64

	// Per-family enables. DefaultConfig turns them all on, except
	// NodeFails: zone outages are meaningless without an orchestration
	// layer to displace the zone's tenants, so that family is opt-in
	// (the eviction study enables it and wires the datacenter agent in
	// via SetZoneFailHandler).
	PressureSpikes bool // burst commodity allocations (anon hogs)
	BuddyBursts    bool // high-order block theft from the buddy allocator
	SwapFills      bool // swap-device slot exhaustion
	PagecacheFills bool // flash-fill of the page cache (file I/O burst)
	TLBStorms      bool // mm-lock / TLB-shootdown storms on Linux-managed mms
	Stragglers     bool // delayed/dead peers in the BSP exchange
	NodeFails      bool // node-level memory-hotplug failure (zone outage)

	// MeanPeriod is the mean inter-arrival of each event family at
	// Intensity 1, in cycles. Lower intensity stretches the gaps
	// proportionally. Zero selects DefaultMeanPeriod.
	MeanPeriod sim.Cycles

	// InjectViolation is a testing hook: the injector deliberately
	// raises one structured invariant violation partway into the run,
	// exercising the runner's containment and ContinueOnError paths
	// end to end. Never enabled by the study presets.
	InjectViolation bool
}

// DefaultMeanPeriod is roughly a quarter second of the 2.2GHz testbed
// per event family at full intensity — several events per benchmark
// iteration, matching the sustained churn of the paper's parallel
// kernel-build antagonist.
const DefaultMeanPeriod sim.Cycles = 550_000_000

// DefaultConfig returns a Config with every event family enabled at
// the given intensity.
func DefaultConfig(intensity float64) Config {
	return Config{
		Intensity:      intensity,
		PressureSpikes: true,
		BuddyBursts:    true,
		SwapFills:      true,
		PagecacheFills: true,
		TLBStorms:      true,
		Stragglers:     true,
	}
}

// chaosTag separates the chaos stream from every workload stream
// derived from the same cell seed ("CHAOS\n" | stream version 1).
const chaosTag = 0x4348414f530a0001

// DeriveSeed maps a cell seed onto the chaos-dedicated stream seed via
// the SplitMix64 finalizer, mirroring the runner's coordinate chain but
// under a distinct tag: the injector never shares a stream with the
// workload PRNG, so chaos on/off cannot alias workload randomness.
func DeriveSeed(cellSeed uint64) uint64 {
	state := cellSeed ^ chaosTag
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// heldBlock is a buddy block the injector is sitting on.
type heldBlock struct {
	zone  *mem.Zone
	pfn   mem.PFN
	order int
	freed bool
}

// heldSwap is an outstanding swap reservation.
type heldSwap struct {
	pages    uint64
	released bool
}

// spikeProc is a live chaos hog process.
type spikeProc struct {
	p    *kernel.Process
	done bool
}

// zoneOutage is one in-flight node-failure event.
type zoneOutage struct {
	zone      int
	recovered bool
}

// Injector schedules chaos events on one node's engine.
type Injector struct {
	cfg  Config
	seed uint64
	rnd  *sim.Rand

	node *kernel.Node
	eng  *sim.Engine

	// Per-family substreams, carved in a fixed order at New so the
	// enable set never shifts streams between families. nodefailRand
	// postdates the original six and is carved after them, so adding the
	// node-failure family left every existing schedule untouched.
	spikeRand, buddyRand, swapRand, pcRand, tlbRand, stragglerRand *sim.Rand
	nodefailRand                                                   *sim.Rand

	stopped bool

	// accounts, when non-nil, resolves a BSP rank to its attribution
	// account; the straggler wrapper charges injected delay as
	// CauseChaos after all its draws, so attribution never perturbs the
	// chaos substreams. Installed by SetAccounts.
	accounts func(rank int) *timeline.Account

	// zoneFail, when non-nil, is the orchestration layer's zone-outage
	// hook (datacenter.Agent.ZoneFail). Installed by SetZoneFailHandler;
	// a nil handler leaves node-failure events drawing from their
	// substream but touching nothing.
	zoneFail func(zone int, down bool)
	// zoneIsDown tracks which zones the injector currently holds down,
	// so outages never overlap and at least one zone always survives.
	zoneIsDown []bool

	// Outstanding resources, released on their scheduled events or all
	// at once by Stop (in insertion order, for determinism).
	blocks  []*heldBlock
	swaps   []*heldSwap
	procs   []*spikeProc
	outages []*zoneOutage

	// Statistics (always counted; mirrored to metrics when observed).
	Events uint64

	m struct {
		events         *metrics.Counter
		spikes         *metrics.Counter
		spikeBytes     *metrics.Counter
		bursts         *metrics.Counter
		burstPages     *metrics.Counter
		pcFills        *metrics.Counter
		pcBytes        *metrics.Counter
		swapFills      *metrics.Counter
		swapPages      *metrics.Counter
		tlbStorms      *metrics.Counter
		tlbStalls      *metrics.Counter
		stragglers     *metrics.Counter
		strCycles      *metrics.Histogram
		nodeFails      *metrics.Counter
		nodeFailCycles *metrics.Histogram
	}
}

// New creates an injector drawing from the chaos stream derived from
// cellSeed. Call Observe (optional) and then Attach.
func New(cfg Config, cellSeed uint64) *Injector {
	if cfg.MeanPeriod <= 0 {
		cfg.MeanPeriod = DefaultMeanPeriod
	}
	if cfg.Intensity < 0 {
		cfg.Intensity = 0
	}
	if cfg.Intensity > 1 {
		cfg.Intensity = 1
	}
	i := &Injector{cfg: cfg, seed: DeriveSeed(cellSeed)}
	i.rnd = sim.NewRand(i.seed)
	// Fixed split order — see the determinism contract above.
	i.spikeRand = i.rnd.Split()
	i.buddyRand = i.rnd.Split()
	i.swapRand = i.rnd.Split()
	i.pcRand = i.rnd.Split()
	i.tlbRand = i.rnd.Split()
	i.stragglerRand = i.rnd.Split()
	i.nodefailRand = i.rnd.Split()
	return i
}

// Observe registers the injector's metric handles. Nil-safe; call
// before Attach so the first events are counted.
func (i *Injector) Observe(reg *metrics.Registry) {
	if i == nil {
		return
	}
	i.m.events = reg.Counter(metrics.ChaosEventsTotal)
	i.m.spikes = reg.Counter(metrics.ChaosPressureSpikesTotal)
	i.m.spikeBytes = reg.Counter(metrics.ChaosPressureSpikeBytesTotal)
	i.m.bursts = reg.Counter(metrics.ChaosBuddyBurstsTotal)
	i.m.burstPages = reg.Counter(metrics.ChaosBuddyBurstPagesTotal)
	i.m.pcFills = reg.Counter(metrics.ChaosPagecacheFillsTotal)
	i.m.pcBytes = reg.Counter(metrics.ChaosPagecacheFillBytesTotal)
	i.m.swapFills = reg.Counter(metrics.ChaosSwapFillsTotal)
	i.m.swapPages = reg.Counter(metrics.ChaosSwapReservedPagesTotal)
	i.m.tlbStorms = reg.Counter(metrics.ChaosTLBStormsTotal)
	i.m.tlbStalls = reg.Counter(metrics.ChaosTLBStormStallsTotal)
	i.m.stragglers = reg.Counter(metrics.ChaosStragglersTotal)
	i.m.strCycles = reg.Histogram(metrics.ChaosStragglerCycles)
	i.m.nodeFails = reg.Counter(metrics.ChaosNodeFailsTotal)
	i.m.nodeFailCycles = reg.Histogram(metrics.ChaosNodeFailCycles)
}

// Attach starts the event loops on the node's engine. A zero-intensity
// injector attaches nothing. Attach may be called once.
func (i *Injector) Attach(node *kernel.Node) {
	if i == nil || node == nil || i.cfg.Intensity <= 0 && !i.cfg.InjectViolation {
		return
	}
	if i.node != nil {
		//detsim:allow programmer error (double Attach is harness misuse, not simulated-state corruption); postdates the DESIGN.md §8 audit table so it is annotated here instead of allowlisted
		panic("chaos: Injector.Attach called twice — build one injector per node")
	}
	i.node = node
	i.eng = node.Engine()
	if i.cfg.Intensity > 0 {
		if i.cfg.PressureSpikes {
			i.loop(i.spikeRand, i.pressureSpike)
		}
		if i.cfg.BuddyBursts {
			i.loop(i.buddyRand, i.buddyBurst)
		}
		if i.cfg.SwapFills {
			i.loop(i.swapRand, i.swapFill)
		}
		if i.cfg.PagecacheFills {
			i.loop(i.pcRand, i.pagecacheFill)
		}
		if i.cfg.TLBStorms {
			i.loop(i.tlbRand, i.tlbStorm)
		}
		if i.cfg.NodeFails {
			i.zoneIsDown = make([]bool, len(node.Mem.Zones))
			i.loop(i.nodefailRand, i.nodeFail)
		}
	}
	if i.cfg.InjectViolation {
		// Fire deterministically partway into the run: after two mean
		// periods of simulated time.
		i.eng.Schedule(2*i.cfg.MeanPeriod, func() {
			if i.stopped {
				return
			}
			invariant.Fail(invariant.Violation{
				Check:     "chaos_injected",
				Subsystem: "chaos",
				Detail:    fmt.Sprintf("deliberate violation injected for containment testing (seed %#x)", i.seed),
			})
		})
	}
}

// loop schedules a self-rescheduling event chain with exponential
// inter-arrival times scaled by intensity.
func (i *Injector) loop(r *sim.Rand, fire func(*sim.Rand)) {
	var step func()
	step = func() {
		if i.stopped {
			return
		}
		i.Events++
		if i.m.events != nil {
			i.m.events.Inc()
		}
		fire(r)
		if !i.stopped {
			i.eng.Schedule(i.interval(r), step)
		}
	}
	i.eng.Schedule(i.interval(r), step)
}

// interval draws the next inter-arrival gap: Exponential with mean
// MeanPeriod/Intensity.
func (i *Injector) interval(r *sim.Rand) sim.Cycles {
	mean := float64(i.cfg.MeanPeriod) / i.cfg.Intensity
	d := sim.Cycles(r.Exponential(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// holdCycles draws how long a hoarding event keeps its resources.
func (i *Injector) holdCycles(r *sim.Rand) sim.Cycles {
	d := sim.Cycles(r.Exponential(float64(i.cfg.MeanPeriod) * 0.5))
	if d < 1 {
		d = 1
	}
	return d
}

// --- Event families ------------------------------------------------------

// pressureSpike launches a short-lived commodity hog: a process that
// mmaps and touches a slice of node memory, holds it, and exits. It
// takes the ordinary commodity path — fault costs, reclaim, and OOM
// selection all apply (the hog, being the largest-RSS commodity
// process, is the likely OOM victim — exactly Linux's behavior).
func (i *Injector) pressureSpike(r *sim.Rand) {
	node := i.node
	totalBytes := node.Mem.TotalPages() * mem.PageSize
	frac := 0.01 + 0.05*i.cfg.Intensity*r.Float64()
	bytes := uint64(float64(totalBytes) * frac)
	bytes -= bytes % mem.PageSize
	if bytes < 4<<20 {
		bytes = 4 << 20
	}
	zone := r.Intn(len(node.Mem.Zones))
	p, err := node.NewProcess("chaos-hog", true, zone)
	if err != nil {
		return
	}
	addr, _, err := node.Mmap(p, bytes, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	if err != nil {
		node.Exit(p)
		return
	}
	// Touch through the owning manager's fault path; an OOM kill mid-touch
	// surfaces as an error and simply ends the spike early.
	_, _ = node.TouchRange(p, addr, bytes)
	if i.m.spikes != nil {
		i.m.spikes.Inc()
		i.m.spikeBytes.Add(bytes)
	}
	sp := &spikeProc{p: p}
	i.procs = append(i.procs, sp)
	i.eng.Schedule(i.holdCycles(r), func() { i.endSpike(sp) })
}

func (i *Injector) endSpike(sp *spikeProc) {
	if sp.done {
		return
	}
	sp.done = true
	i.node.Exit(sp.p) // no-op if the OOM killer got there first
}

// buddyBurst steals high-order blocks straight from a zone's buddy
// allocator and sits on them: contiguity vanishes without the commit
// accounting of a process, starving THP promotion and any other
// high-order allocation until the blocks come back.
func (i *Injector) buddyBurst(r *sim.Rand) {
	node := i.node
	z := node.Mem.Zones[r.Intn(len(node.Mem.Zones))]
	maxBlocks := 1 + int(96*i.cfg.Intensity)
	count := 1 + r.Intn(maxBlocks)
	var pages uint64
	var taken []*heldBlock
	for j := 0; j < count; j++ {
		order := mem.LargePageOrder
		if r.Bool(0.25) {
			order = mem.MaxOrder
		}
		pfn, ok := z.AllocPages(order)
		if !ok {
			break // the zone is already starved — mission accomplished
		}
		hb := &heldBlock{zone: z, pfn: pfn, order: order}
		taken = append(taken, hb)
		i.blocks = append(i.blocks, hb)
		pages += mem.PagesPerOrder(order)
	}
	if len(taken) == 0 {
		return
	}
	if i.m.bursts != nil {
		i.m.bursts.Inc()
		i.m.burstPages.Add(pages)
	}
	i.eng.Schedule(i.holdCycles(r), func() {
		for _, hb := range taken {
			i.freeBlock(hb)
		}
	})
}

func (i *Injector) freeBlock(hb *heldBlock) {
	if hb.freed {
		return
	}
	hb.freed = true
	hb.zone.FreeBlock(hb.pfn, hb.order)
}

// swapFill reserves a slice of the swap device's free slots, pushing
// commodity page-out toward device exhaustion, then releases them.
func (i *Injector) swapFill(r *sim.Rand) {
	s := i.node.Swap()
	frac := 0.25 + 0.70*i.cfg.Intensity*r.Float64()
	want := uint64(float64(s.FreePages()) * frac)
	if want == 0 {
		return
	}
	granted := s.Reserve(want)
	if granted == 0 {
		return
	}
	hs := &heldSwap{pages: granted}
	i.swaps = append(i.swaps, hs)
	if i.m.swapFills != nil {
		i.m.swapFills.Inc()
		i.m.swapPages.Add(granted)
	}
	i.eng.Schedule(i.holdCycles(r), func() { i.releaseSwap(hs) })
}

func (i *Injector) releaseSwap(hs *heldSwap) {
	if hs.released {
		return
	}
	hs.released = true
	i.node.Swap().Release(hs.pages)
}

// pagecacheFill models a burst of commodity file I/O: the page cache
// flash-fills toward the watermarks, waking kswapd and forcing direct
// reclaim into allocation paths. The cache self-recycles, so no cleanup
// event is needed — the pressure is the point.
func (i *Injector) pagecacheFill(r *sim.Rand) {
	node := i.node
	totalBytes := node.Mem.TotalPages() * mem.PageSize
	frac := 0.02 + 0.10*i.cfg.Intensity*r.Float64()
	bytes := uint64(float64(totalBytes) * frac)
	zone := r.Intn(len(node.Mem.Zones))
	node.PageCacheAdd(zone, bytes)
	if i.m.pcFills != nil {
		i.m.pcFills.Inc()
		i.m.pcBytes.Add(bytes)
	}
}

// tlbStorm models a burst of address-space invalidations (TLB
// shootdowns / mmap_sem convoys): every live Linux-managed process has
// its mm lock extended and a stall deposited that its next fault must
// pay. HPMMAP processes are structurally immune — their fault path
// never takes Linux's mm lock, the paper's central isolation argument.
func (i *Injector) tlbStorm(r *sim.Rand) {
	dur := sim.Cycles(r.Exponential(150_000 * (0.5 + i.cfg.Intensity)))
	if dur < 1 {
		dur = 1
	}
	now := i.node.Now()
	var stalls uint64
	i.node.Processes(func(p *kernel.Process) {
		if p.Exited {
			return
		}
		if until := now + dur; until > p.MMLockedUntil {
			p.MMLockedUntil = until
		}
		// Deposit the stall; only the linuxmm fault path ever charges
		// these, so HPMMAP-registered processes shrug the storm off.
		p.PendingMergeCosts = append(p.PendingMergeCosts, dur)
		stalls++
	})
	if i.m.tlbStorms != nil {
		i.m.tlbStorms.Inc()
		i.m.tlbStalls.Add(stalls)
	}
}

// nodeFail models node-level memory-hotplug failure: one NUMA zone
// drops out at the orchestration level for an exponential hold, and the
// installed handler (the datacenter agent) must evict or reschedule its
// tenants onto the survivors. All draws happen before the handler
// branch, so wiring a handler in (or not) never shifts this family's
// schedule. The last healthy zone never fails — a node with no memory
// is a different experiment.
func (i *Injector) nodeFail(r *sim.Rand) {
	zone := r.Intn(len(i.zoneIsDown))
	hold := i.holdCycles(r)
	if i.zoneIsDown[zone] {
		return // already down: overlapping outages of one zone are one outage
	}
	up := 0
	for _, down := range i.zoneIsDown {
		if !down {
			up++
		}
	}
	if up <= 1 {
		return
	}
	i.zoneIsDown[zone] = true
	if i.m.nodeFails != nil {
		i.m.nodeFails.Inc()
		i.m.nodeFailCycles.Observe(uint64(hold))
	}
	o := &zoneOutage{zone: zone}
	i.outages = append(i.outages, o)
	if i.zoneFail != nil {
		i.zoneFail(zone, true)
	}
	i.eng.Schedule(hold, func() { i.recoverZone(o) })
}

func (i *Injector) recoverZone(o *zoneOutage) {
	if o.recovered {
		return
	}
	o.recovered = true
	i.zoneIsDown[o.zone] = false
	if i.zoneFail != nil {
		i.zoneFail(o.zone, false)
	}
}

// SetZoneFailHandler installs the orchestration hook the node-failure
// family drives (datacenter.Agent.ZoneFail). Safe on a nil injector; a
// nil handler (the default) makes zone outages draw-only events.
func (i *Injector) SetZoneFailHandler(fn func(zone int, down bool)) {
	if i == nil {
		return
	}
	i.zoneFail = fn
}

// WrapCommDelay decorates a BSP communication-delay function with
// straggler injection: occasionally a peer is late (exponential tail)
// or effectively dead for a while (a rejoin after node-level recovery,
// two orders of magnitude longer). Uses the chaos straggler substream;
// the inner function sees its inputs unchanged.
func (i *Injector) WrapCommDelay(inner func(iter, rank int) sim.Cycles) func(iter, rank int) sim.Cycles {
	if i == nil || !i.cfg.Stragglers || i.cfg.Intensity <= 0 {
		return inner
	}
	r := i.stragglerRand
	return func(iter, rank int) sim.Cycles {
		var base sim.Cycles
		if inner != nil {
			base = inner(iter, rank)
		}
		if i.stopped {
			return base
		}
		if !r.Bool(0.03 * i.cfg.Intensity) {
			return base
		}
		extra := sim.Cycles(r.Exponential(float64(i.cfg.MeanPeriod) * 0.25 * i.cfg.Intensity))
		if r.Bool(0.05) {
			// Dead node: the peer misses the barrier entirely and only
			// rejoins after recovery.
			extra *= 100
		}
		if extra < 1 {
			extra = 1
		}
		if i.m.stragglers != nil {
			i.m.stragglers.Inc()
			i.m.strCycles.Observe(uint64(extra))
		}
		if i.accounts != nil {
			i.accounts(rank).Charge(timeline.CauseChaos, extra)
		}
		return base + extra
	}
}

// SetAccounts installs the per-rank attribution lookup used by the
// WrapCommDelay straggler wrapper to charge injected delay to the chaos
// cause. Safe on a nil injector; a nil lookup (the default) disables
// chaos attribution.
func (i *Injector) SetAccounts(fn func(rank int) *timeline.Account) {
	if i == nil {
		return
	}
	i.accounts = fn
}

// Stop halts further injection and releases everything the injector is
// still holding — buddy blocks, swap slots, live hog processes — in
// insertion order, so end-of-run accounting audits see a clean machine.
// Safe to call on a detached or nil injector, and idempotent.
func (i *Injector) Stop() {
	if i == nil || i.stopped {
		return
	}
	i.stopped = true
	for _, hb := range i.blocks {
		i.freeBlock(hb)
	}
	for _, hs := range i.swaps {
		i.releaseSwap(hs)
	}
	for _, sp := range i.procs {
		i.endSpike(sp)
	}
	for _, o := range i.outages {
		i.recoverZone(o)
	}
}
