package chaos

import (
	"testing"

	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

func newNode(t *testing.T, seed uint64) (*kernel.Node, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(seed))
	node.SetDefaultMM(linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil))
	return node, eng
}

// run drives the engine for horizon cycles with an attached injector
// and returns the final machine fingerprint.
func run(t *testing.T, cfg Config, cellSeed uint64, horizon sim.Cycles) (*Injector, *kernel.Node, string) {
	t.Helper()
	node, eng := newNode(t, 7)
	inj := New(cfg, cellSeed)
	inj.Attach(node)
	eng.RunUntil(horizon)
	inj.Stop()
	fp := machineFingerprint(node, inj)
	return inj, node, fp
}

func machineFingerprint(node *kernel.Node, inj *Injector) string {
	s := ""
	s += "free=" + uitoa(node.Mem.FreePages())
	s += " swap=" + uitoa(node.Swap().UsedPages())
	s += " events=" + uitoa(inj.Events)
	s += " pc=" + uitoa(node.PageCachePages(0)+node.PageCachePages(1))
	return s
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := DefaultConfig(0.75)
	const horizon = 20 * DefaultMeanPeriod
	_, _, fp1 := run(t, cfg, 12345, horizon)
	inj, _, fp2 := run(t, cfg, 12345, horizon)
	if fp1 != fp2 {
		t.Fatalf("same seed diverged:\n  %s\n  %s", fp1, fp2)
	}
	if inj.Events == 0 {
		t.Fatal("no chaos events fired over 20 mean periods")
	}
	_, _, fp3 := run(t, cfg, 54321, horizon)
	if fp1 == fp3 {
		t.Fatalf("different seeds produced identical machine state: %s", fp1)
	}
}

func TestDeriveSeedDistinctFromCellSeed(t *testing.T) {
	for _, cell := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		if DeriveSeed(cell) == cell {
			t.Fatalf("DeriveSeed(%d) is the identity — chaos stream aliases the workload stream", cell)
		}
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Fatal("adjacent cell seeds collide in the chaos stream")
	}
}

func TestZeroIntensityIsNoOp(t *testing.T) {
	node, eng := newNode(t, 7)
	before := node.Mem.FreePages()
	inj := New(DefaultConfig(0), 99)
	inj.Attach(node)
	if eng.Pending() != 1 { // only the node's kswapd ticker
		t.Fatalf("zero-intensity Attach scheduled events: %d pending", eng.Pending())
	}
	eng.RunUntil(10 * DefaultMeanPeriod)
	inj.Stop()
	if inj.Events != 0 {
		t.Fatalf("zero-intensity injector fired %d events", inj.Events)
	}
	if node.Mem.FreePages() != before {
		t.Fatal("zero-intensity injector changed machine state")
	}
}

func TestStopReleasesEverything(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.TLBStorms = false // nothing held, excluded for clarity
	node, eng := newNode(t, 7)
	baseFree := node.Mem.FreePages()
	inj := New(cfg, 4242)
	inj.Attach(node)
	eng.RunUntil(10 * DefaultMeanPeriod)
	inj.Stop()
	if got := node.Swap().UsedPages(); got != 0 {
		t.Fatalf("swap still holds %d pages after Stop", got)
	}
	// All hog processes exited and all buddy blocks returned; only the
	// self-recycling page cache may legitimately retain frames.
	var cache uint64
	for z := range node.Mem.Zones {
		cache += node.PageCachePages(z)
	}
	if got := node.Mem.FreePages() + cache; got != baseFree {
		t.Fatalf("leak after Stop: free+cache=%d, want %d", got, baseFree)
	}
	// Idempotent.
	inj.Stop()
}

func TestMetricsCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	node, eng := newNode(t, 7)
	inj := New(DefaultConfig(1), 2026)
	inj.Observe(reg)
	inj.Attach(node)
	eng.RunUntil(30 * DefaultMeanPeriod)
	inj.Stop()
	snap := reg.Snapshot()
	if got := snap.CounterValue(metrics.ChaosEventsTotal); got != inj.Events {
		t.Fatalf("chaos_events_total=%d, injector counted %d", got, inj.Events)
	}
	if snap.CounterValue(metrics.ChaosEventsTotal) == 0 {
		t.Fatal("no events counted over 30 mean periods")
	}
	sum := snap.CounterValue(metrics.ChaosPressureSpikesTotal) +
		snap.CounterValue(metrics.ChaosBuddyBurstsTotal) +
		snap.CounterValue(metrics.ChaosSwapFillsTotal) +
		snap.CounterValue(metrics.ChaosPagecacheFillsTotal) +
		snap.CounterValue(metrics.ChaosTLBStormsTotal)
	if sum == 0 {
		t.Fatal("per-family counters all zero with every family enabled")
	}
}

func TestWrapCommDelayStragglers(t *testing.T) {
	inj := New(DefaultConfig(1), 11)
	base := func(iter, rank int) sim.Cycles { return 1000 }
	wrapped := inj.WrapCommDelay(base)
	var total, straggled int
	for iter := 0; iter < 2000; iter++ {
		d := wrapped(iter, 0)
		if d < 1000 {
			t.Fatalf("wrapped delay %d below inner delay", d)
		}
		if d > 1000 {
			straggled++
		}
		total++
	}
	if straggled == 0 {
		t.Fatal("no stragglers at intensity 1 over 2000 calls")
	}
	if straggled > total/2 {
		t.Fatalf("%d/%d calls straggled — rate far above the 3%% target", straggled, total)
	}
	// Zero intensity returns the inner function untouched.
	quiet := New(DefaultConfig(0), 11)
	if got := quiet.WrapCommDelay(base)(0, 0); got != 1000 {
		t.Fatalf("zero-intensity wrapper altered delay: %d", got)
	}
	// Nil inner is permitted.
	if d := inj.WrapCommDelay(nil)(0, 1); d < 0 {
		t.Fatal("nil inner produced negative delay")
	}
}

func TestInjectViolationPanicsStructured(t *testing.T) {
	node, eng := newNode(t, 7)
	cfg := Config{InjectViolation: true} // intensity 0: only the hook fires
	inj := New(cfg, 77)
	inj.Attach(node)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected violation did not fire")
		}
		v, ok := invariant.FromRecovered(r)
		if !ok {
			t.Fatalf("panic payload is not a structured violation: %v", r)
		}
		if v.Check != "chaos_injected" || v.Subsystem != "chaos" {
			t.Fatalf("unexpected violation identity: %+v", v)
		}
	}()
	eng.RunUntil(10 * DefaultMeanPeriod)
}

func TestTLBStormSparesHPMMAPPath(t *testing.T) {
	// The storm deposits stalls via PendingMergeCosts, which only the
	// linuxmm fault path charges. Verify the deposit lands on live
	// processes and that exited ones are skipped.
	node, eng := newNode(t, 7)
	p, err := node.NewProcess("victim", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Config{Intensity: 1, TLBStorms: true, MeanPeriod: 1000}, 5)
	inj.Attach(node)
	eng.RunUntil(50_000)
	inj.Stop()
	if len(p.PendingMergeCosts) == 0 || p.MMLockedUntil == 0 {
		t.Fatal("TLB storm deposited no stall on a live process")
	}
}

// TestNodeFailsDriveHandler exercises the opt-in node-failure family:
// outages fire from their own substream, the installed handler sees a
// down/up pair per outage, overlapping outages of one zone coalesce,
// and at least one zone always survives.
func TestNodeFailsDriveHandler(t *testing.T) {
	node, eng := newNode(t, 7)
	inj := New(Config{Intensity: 1, NodeFails: true, MeanPeriod: 100_000}, 31)
	type ev struct {
		zone int
		down bool
	}
	var events []ev
	downNow := make(map[int]bool)
	zones := len(node.Mem.Zones)
	inj.SetZoneFailHandler(func(zone int, down bool) {
		events = append(events, ev{zone, down})
		if down == downNow[zone] {
			t.Fatalf("zone %d signalled %v twice in a row", zone, down)
		}
		downNow[zone] = down
		up := 0
		for z := 0; z < zones; z++ {
			if !downNow[z] {
				up++
			}
		}
		if up == 0 {
			t.Fatal("every zone down at once — the last healthy zone must never fail")
		}
	})
	inj.Attach(node)
	eng.RunUntil(50 * 100_000)
	inj.Stop() // recovers any outage still in flight
	if len(events) == 0 {
		t.Fatal("no zone outages over 50 mean periods at intensity 1")
	}
	for z, down := range downNow {
		if down {
			t.Fatalf("zone %d still down after Stop", z)
		}
	}
}

// TestNodeFailsOffByDefaultAndMachineNeutral pins two contracts: the
// family is opt-in (DefaultConfig leaves it off), and — because zone
// outages are orchestration-level events drawn from their own substream
// — enabling it with no handler leaves the machine state of every other
// family byte-identical.
func TestNodeFailsOffByDefaultAndMachineNeutral(t *testing.T) {
	if DefaultConfig(1).NodeFails {
		t.Fatal("NodeFails enabled by DefaultConfig — the family must be opt-in")
	}
	const horizon = 20 * DefaultMeanPeriod
	base := DefaultConfig(0.75)
	_, nodeA, _ := run(t, base, 1212, horizon)
	withNF := base
	withNF.NodeFails = true
	injB, nodeB, _ := run(t, withNF, 1212, horizon)
	fpA := "free=" + uitoa(nodeA.Mem.FreePages()) + " swap=" + uitoa(nodeA.Swap().UsedPages()) +
		" pc=" + uitoa(nodeA.PageCachePages(0)+nodeA.PageCachePages(1))
	fpB := "free=" + uitoa(nodeB.Mem.FreePages()) + " swap=" + uitoa(nodeB.Swap().UsedPages()) +
		" pc=" + uitoa(nodeB.PageCachePages(0)+nodeB.PageCachePages(1))
	if fpA != fpB {
		t.Fatalf("enabling NodeFails shifted another family's machine state:\n  off: %s\n  on:  %s", fpA, fpB)
	}
	if injB.Events == 0 {
		t.Fatal("injector with NodeFails fired no events")
	}
}
