package invariant

import (
	"fmt"
	"strings"
	"testing"

	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

func TestViolationErrorFormat(t *testing.T) {
	v := &Violation{
		Check: "swap_accounting", Subsystem: "kernel", Manager: "thp",
		PID: 104, Node: 2, SimCycles: 12345, Detail: "release of 9 with 3 used",
	}
	msg := v.Error()
	for _, want := range []string{
		"invariant violation", "kernel/swap_accounting", "manager=thp",
		"pid=104", "node=2", "t=12345cyc", "release of 9 with 3 used",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	// Minimal violation renders without the optional fields.
	min := &Violation{Check: "c", Subsystem: "s", Node: -1, Detail: "d"}
	if msg := min.Error(); strings.Contains(msg, "pid=") || strings.Contains(msg, "node=") {
		t.Errorf("minimal Error() = %q leaks unset fields", msg)
	}
}

func TestFailfPanicsWithViolation(t *testing.T) {
	defer func() {
		r := recover()
		v, ok := FromRecovered(r)
		if !ok {
			t.Fatalf("recovered %T, want *Violation", r)
		}
		if v.Check != "free_list" || v.Subsystem != "mem" || v.Detail != "frame 42 lost" {
			t.Errorf("violation = %+v", v)
		}
		if v.Node != -1 {
			t.Errorf("unset Node should normalize to -1, got %d", v.Node)
		}
	}()
	Failf("free_list", "mem", "frame %d lost", 42)
}

func TestAsUnwrapsWrappedViolation(t *testing.T) {
	inner := &Violation{Check: "c", Subsystem: "s", Node: -1, Detail: "d"}
	wrapped := fmt.Errorf("cell fig7 HPCCG/A/thp/c1#0: %w", error(inner))
	v, ok := As(wrapped)
	if !ok || v != inner {
		t.Fatalf("As(%v) = %v, %v", wrapped, v, ok)
	}
	if _, ok := As(fmt.Errorf("plain")); ok {
		t.Error("As matched a non-violation error")
	}
	if _, ok := FromRecovered("a string panic"); ok {
		t.Error("FromRecovered matched a string panic")
	}
}

func TestAnnotateTime(t *testing.T) {
	v := &Violation{}
	AnnotateTime(v, 777)
	if v.SimCycles != 777 {
		t.Errorf("SimCycles = %d, want 777", v.SimCycles)
	}
	AnnotateTime(v, 999) // already set: keep the earlier (closer) time
	if v.SimCycles != 777 {
		t.Errorf("AnnotateTime overwrote a set time: %d", v.SimCycles)
	}
	AnnotateTime(nil, 1) // nil-safe
}

func TestAuditorRunsChecksAndCountsMetrics(t *testing.T) {
	a := NewAuditor()
	reg := metrics.NewRegistry()
	a.Observe(reg)
	runs := 0
	a.AddCheck("ok_one", func() error { runs++; return nil })
	a.AddCheck("ok_two", func() error { runs++; return nil })
	if n := a.RunOnce(10); n != 2 {
		t.Fatalf("RunOnce ran %d checks, want 2", n)
	}
	if runs != 2 {
		t.Fatalf("check fns ran %d times, want 2", runs)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue(metrics.InvariantChecksTotal); got != 2 {
		t.Errorf("invariant_checks_total = %d, want 2", got)
	}
	if got := snap.CounterValue(metrics.InvariantViolationsTotal); got != 0 {
		t.Errorf("invariant_violations_total = %d, want 0", got)
	}
}

func TestAuditorPanicsWithAnnotatedViolation(t *testing.T) {
	a := NewAuditor()
	reg := metrics.NewRegistry()
	a.Observe(reg)
	a.AddCheck("healthy", func() error { return nil })
	a.AddCheck("broken", func() error {
		return Errorf("zone_accounting", "mem", "zone %d free-list total drifted", 1)
	})
	func() {
		defer func() {
			v, ok := FromRecovered(recover())
			if !ok {
				t.Fatal("auditor did not panic with a *Violation")
			}
			if v.Check != "zone_accounting" || v.Subsystem != "mem" {
				t.Errorf("violation = %+v", v)
			}
			if v.SimCycles != 4242 {
				t.Errorf("SimCycles = %d, want the audit tick time 4242", v.SimCycles)
			}
		}()
		a.RunOnce(4242)
	}()
	snap := reg.Snapshot()
	if got := snap.CounterValue(metrics.InvariantViolationsTotal); got != 1 {
		t.Errorf("invariant_violations_total = %d, want 1", got)
	}
}

func TestAuditorWrapsPlainErrors(t *testing.T) {
	a := NewAuditor()
	a.AddCheck("plain", func() error { return fmt.Errorf("something drifted") })
	defer func() {
		v, ok := FromRecovered(recover())
		if !ok {
			t.Fatal("no *Violation from a plain-error check")
		}
		if v.Check != "plain" || v.Detail != "something drifted" {
			t.Errorf("violation = %+v", v)
		}
	}()
	a.RunOnce(1)
}

func TestAuditorTickerOnEngine(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAuditor()
	ticks := 0
	a.AddCheck("count", func() error { ticks++; return nil })
	a.Start(eng, 100)
	eng.Schedule(1000, func() {}) // keep the queue alive past several ticks
	eng.RunUntil(450)
	a.Stop()
	eng.Run()
	if ticks != 4 {
		t.Errorf("auditor ticked %d times in 450 cycles at period 100, want 4", ticks)
	}
}

func TestNilAuditorIsNoOp(t *testing.T) {
	var a *Auditor
	a.AddCheck("x", func() error { return fmt.Errorf("never") })
	a.Observe(metrics.NewRegistry())
	a.Start(sim.NewEngine(), 10)
	a.Stop()
	if n := a.RunOnce(1); n != 0 {
		t.Errorf("nil auditor ran %d checks", n)
	}
	if a.Checks() != nil {
		t.Error("nil auditor has checks")
	}
}

func TestReportGroupsDeterministically(t *testing.T) {
	vs := []*Violation{
		{Check: "b_check", Subsystem: "mem", Detail: "first b"},
		{Check: "a_check", Subsystem: "mem", Detail: "first a"},
		{Check: "b_check", Subsystem: "mem", Detail: "second b"},
		{Check: "a_check", Subsystem: "buddy", Detail: "buddy a"},
		nil,
	}
	r := NewReport(vs)
	if r.Total != 4 {
		t.Fatalf("Total = %d, want 4", r.Total)
	}
	var keys []string
	for _, g := range r.Groups {
		keys = append(keys, g.Subsystem+"/"+g.Check)
	}
	want := []string{"buddy/a_check", "mem/a_check", "mem/b_check"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Errorf("group order = %v, want %v", keys, want)
	}
	for _, g := range r.Groups {
		if g.Subsystem == "mem" && g.Check == "b_check" {
			if g.Count != 2 || g.Sample.Detail != "first b" {
				t.Errorf("mem/b_check group = %+v", g)
			}
		}
	}
	if s := r.String(); !strings.Contains(s, "4 invariant violation(s)") {
		t.Errorf("Report.String() = %q", s)
	}
	if s := NewReport(nil).String(); s != "no invariant violations" {
		t.Errorf("empty report = %q", s)
	}
}
