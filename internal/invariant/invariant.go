// Package invariant is the simulation's structured consistency-failure
// layer: a Violation type that carries enough context to debug a
// simulated-state divergence (which check, which subsystem, which
// process, at what simulated time), and an opt-in Auditor that runs
// registered consistency checks at scheduler-tick boundaries.
//
// Before this package existed every simulated-state inconsistency was a
// bare panic(string) that killed a whole experiment grid with a stack
// trace and no simulation context. Now the convention is:
//
//   - Simulated-state checks (a free list that lost a frame, swap
//     accounting going negative, a mapping the walker cannot find) call
//     Failf / Fail, which panic with a *Violation. The experiment
//     harness annotates the violation with simulated time, and the
//     runner's panic containment converts it into a per-cell error —
//     errors.As(err, &v) recovers the structured record — so one bad
//     cell never takes down the grid (see runner.Options.ContinueOnError).
//   - Programmer-error checks (nil callbacks, out-of-range orders on an
//     internal API) remain bare panics: they indicate a bug in the
//     caller, not a divergence of the simulated system, and should fail
//     fast in tests. DESIGN.md §7 records the classification of every
//     panic site.
//
// The package is a dependency leaf (it imports only the sim clock and
// the metrics registry) so every simulated subsystem can use it without
// import cycles.
package invariant

import (
	"errors"
	"fmt"
	"sort"

	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

// Violation is a structured simulated-state consistency failure. It is
// delivered by panicking with a *Violation from the check site; the
// experiment harness fills SimCycles, and the runner's panic containment
// converts the panic into a per-cell error wrapping the violation.
type Violation struct {
	// Check names the violated invariant ("buddy_conservation",
	// "swap_accounting", "pgtable_roundtrip", ...). Lower snake case by
	// convention, so reports aggregate cleanly.
	Check string
	// Subsystem is the owning package ("mem", "buddy", "pgtable",
	// "kernel", "linuxmm", "core", "hugetlb", "sched").
	Subsystem string
	// Manager is the memory-manager key serving the affected process
	// ("thp", "hugetlbfs", "hpmmap"), when known.
	Manager string
	// PID is the affected process, when the check is process-scoped
	// (0 otherwise).
	PID int
	// Node is the cluster node index, when known (-1 otherwise).
	Node int
	// SimCycles is the simulated time of detection. Check sites may
	// leave it 0; the experiment harness fills it from the engine clock
	// as the panic unwinds (see AnnotateTime).
	SimCycles sim.Cycles
	// Detail is the human-readable specifics of the failure.
	Detail string
}

// Error renders the violation with its full context, so even a
// violation that escapes structured handling is debuggable from the
// message alone.
func (v *Violation) Error() string {
	s := fmt.Sprintf("invariant violation [%s/%s]", v.Subsystem, v.Check)
	if v.Manager != "" {
		s += " manager=" + v.Manager
	}
	if v.PID != 0 {
		s += fmt.Sprintf(" pid=%d", v.PID)
	}
	if v.Node >= 0 {
		s += fmt.Sprintf(" node=%d", v.Node)
	}
	if v.SimCycles != 0 {
		s += fmt.Sprintf(" t=%dcyc", uint64(v.SimCycles))
	}
	return s + ": " + v.Detail
}

// Fail panics with the violation (normalizing an unset Node to -1).
// Check sites call it when they have structured context to attach.
func Fail(v Violation) {
	if v.Node == 0 {
		v.Node = -1
	}
	panic(&v)
}

// Failf panics with a *Violation built from a check name, subsystem and
// formatted detail — the drop-in replacement for the old
// panic(fmt.Sprintf(...)) sites that have no process context.
func Failf(check, subsystem, format string, args ...any) {
	Fail(Violation{Check: check, Subsystem: subsystem, Detail: fmt.Sprintf(format, args...)})
}

// Errorf builds a *Violation as an error without panicking — for
// Auditor checks, which return errors and let the auditor decide how to
// surface them.
func Errorf(check, subsystem, format string, args ...any) error {
	return &Violation{Check: check, Subsystem: subsystem, Node: -1,
		Detail: fmt.Sprintf(format, args...)}
}

// As extracts the *Violation from an error chain, if any.
func As(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// FromRecovered extracts the *Violation from a recovered panic value:
// either the *Violation itself (the Failf path) or an error wrapping
// one (a re-panicked annotated violation).
func FromRecovered(r any) (*Violation, bool) {
	switch x := r.(type) {
	case *Violation:
		return x, true
	case error:
		return As(x)
	}
	return nil, false
}

// AnnotateTime fills v.SimCycles from the clock if the check site left
// it unset. Harnesses call it in a recover/re-panic wrapper around the
// simulation loop, where the engine clock is in scope.
func AnnotateTime(v *Violation, now sim.Cycles) {
	if v != nil && v.SimCycles == 0 {
		v.SimCycles = now
	}
}

// Check is one registered consistency check. Fn returns nil when the
// invariant holds; a non-nil error (ideally a *Violation from Errorf)
// reports the divergence.
type Check struct {
	Name string
	Fn   func() error
}

// Auditor runs registered consistency checks at simulated-time
// boundaries. It is strictly opt-in: attaching an auditor schedules
// additional engine events, which legitimately changes sim_events_total
// — so baseline figure runs never enable it. A nil *Auditor is a valid
// no-op (every method nil-checks), mirroring the observability layer's
// convention.
//
// On a failed check the auditor panics with the check's *Violation
// (annotated with the current simulated time), which the experiment
// harness and runner convert into a structured per-cell error.
type Auditor struct {
	checks []Check
	ticker *sim.Ticker
	now    func() sim.Cycles

	// Metric handles (nil until Observe; nil-safe).
	checksRun  *metrics.Counter
	violations *metrics.Counter
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor { return &Auditor{} }

// AddCheck registers a named consistency check. No-op on a nil auditor,
// so subsystem wiring can be unconditional.
func (a *Auditor) AddCheck(name string, fn func() error) {
	if a == nil || fn == nil {
		return
	}
	a.checks = append(a.checks, Check{Name: name, Fn: fn})
}

// Checks returns the registered check names in registration order.
func (a *Auditor) Checks() []string {
	if a == nil {
		return nil
	}
	names := make([]string, len(a.checks))
	for i, c := range a.checks {
		names[i] = c.Name
	}
	return names
}

// Observe registers the auditor's metrics (invariant_checks_total,
// invariant_violations_total) with the registry. Nil-safe on both
// sides.
func (a *Auditor) Observe(reg *metrics.Registry) {
	if a == nil || reg == nil {
		return
	}
	a.checksRun = reg.Counter(metrics.InvariantChecksTotal)
	a.violations = reg.Counter(metrics.InvariantViolationsTotal)
}

// Start schedules the auditor to run every period cycles on the engine
// (the scheduler-tick cadence). period must be > 0. No-op on a nil
// auditor.
func (a *Auditor) Start(eng *sim.Engine, period sim.Cycles) {
	if a == nil {
		return
	}
	if a.ticker != nil {
		panic("invariant: Auditor.Start called twice")
	}
	a.now = eng.Now
	a.ticker = eng.NewTicker(period, func() { a.RunOnce(eng.Now()) })
}

// Stop cancels the periodic audit. Safe to call multiple times and on a
// nil auditor.
func (a *Auditor) Stop() {
	if a != nil && a.ticker != nil {
		a.ticker.Stop()
	}
}

// RunOnce executes every registered check at the given simulated time.
// The first failing check panics with its *Violation so the grid
// machinery surfaces it as a structured per-cell error. Returns the
// number of checks run (for tests). No-op on a nil auditor.
func (a *Auditor) RunOnce(now sim.Cycles) int {
	if a == nil {
		return 0
	}
	for _, c := range a.checks {
		a.checksRun.Inc()
		err := c.Fn()
		if err == nil {
			continue
		}
		a.violations.Inc()
		v, ok := As(err)
		if !ok {
			v = &Violation{Check: c.Name, Subsystem: "audit", Node: -1, Detail: err.Error()}
		}
		if v.Check == "" {
			v.Check = c.Name
		}
		AnnotateTime(v, now)
		panic(v)
	}
	return len(a.checks)
}

// Report is a deterministic roll-up of violations collected across a
// grid (the quarantined cells of a ContinueOnError run), grouped by
// subsystem/check.
type Report struct {
	Total  int
	Groups []ReportGroup
}

// ReportGroup aggregates the violations of one subsystem/check pair.
type ReportGroup struct {
	Subsystem, Check string
	Count            int
	// Sample is the first violation of the group, for its detail text.
	Sample *Violation
}

// NewReport groups violations by (subsystem, check), sorted for
// deterministic rendering.
func NewReport(violations []*Violation) Report {
	byKey := make(map[string]*ReportGroup)
	var order []string
	for _, v := range violations {
		if v == nil {
			continue
		}
		key := v.Subsystem + "/" + v.Check
		g := byKey[key]
		if g == nil {
			g = &ReportGroup{Subsystem: v.Subsystem, Check: v.Check, Sample: v}
			byKey[key] = g
			order = append(order, key)
		}
		g.Count++
	}
	sort.Strings(order)
	r := Report{}
	for _, key := range order {
		g := byKey[key]
		r.Total += g.Count
		r.Groups = append(r.Groups, *g)
	}
	return r
}

// String renders the report as an indented block, one line per group.
func (r Report) String() string {
	if r.Total == 0 {
		return "no invariant violations"
	}
	s := fmt.Sprintf("%d invariant violation(s):", r.Total)
	for _, g := range r.Groups {
		s += fmt.Sprintf("\n  [%s/%s] x%d: %s", g.Subsystem, g.Check, g.Count, g.Sample.Detail)
	}
	return s
}
