package mem

import "testing"

func BenchmarkZoneAllocFree4K(b *testing.B) {
	z := NewZone(0, 0, (1<<30)/PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, ok := z.AllocPages(0)
		if !ok {
			b.Fatal("exhausted")
		}
		z.FreeBlock(p, 0)
	}
}

func BenchmarkZoneAllocFree2M(b *testing.B) {
	z := NewZone(0, 0, (1<<30)/PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, ok := z.AllocPages(LargePageOrder)
		if !ok {
			b.Fatal("exhausted")
		}
		z.FreeBlock(p, LargePageOrder)
	}
}

func BenchmarkZoneSplitCoalesceCycle(b *testing.B) {
	// Worst case: split from the max order down to 4K and coalesce back.
	z := NewZone(0, 0, PagesPerOrder(MaxOrder))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, ok := z.AllocPages(0)
		if !ok {
			b.Fatal("exhausted")
		}
		z.FreeBlock(p, 0)
	}
}

func BenchmarkFragmentationIndex(b *testing.B) {
	z := NewZone(0, 0, (256<<20)/PageSize)
	var pages []PFN
	for {
		p, ok := z.AllocPages(0)
		if !ok {
			break
		}
		pages = append(pages, p)
	}
	for i := 0; i < len(pages); i += 2 {
		z.FreeBlock(pages[i], 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.FragmentationIndex(LargePageOrder)
	}
}
