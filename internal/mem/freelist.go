package mem

import "hpmmap/internal/invariant"

// freeList holds the free blocks of a single buddy order. It supports O(1)
// push, O(1) pop (LIFO, which matches the hot-cache preference of real
// allocators), and O(1) removal by address (needed when a buddy is
// absorbed during coalescing). Iteration order is deterministic for a
// deterministic call sequence.
type freeList struct {
	items []PFN
	pos   map[PFN]int
}

func newFreeList() *freeList {
	return &freeList{pos: make(map[PFN]int)}
}

func (f *freeList) len() int { return len(f.items) }

func (f *freeList) contains(p PFN) bool {
	_, ok := f.pos[p]
	return ok
}

func (f *freeList) push(p PFN) {
	if _, ok := f.pos[p]; ok {
		// Simulated-state violation: the same physical block entered a
		// free list twice (a double free somewhere upstream).
		invariant.Failf("free_list_double_push", "mem",
			"frame %d pushed onto a free list it is already on", p)
	}
	f.pos[p] = len(f.items)
	f.items = append(f.items, p)
}

// pop removes and returns the most recently freed block.
func (f *freeList) pop() (PFN, bool) {
	n := len(f.items)
	if n == 0 {
		return 0, false
	}
	p := f.items[n-1]
	f.items = f.items[:n-1]
	delete(f.pos, p)
	return p, true
}

// remove deletes a specific block (swap-remove). Reports whether it was
// present.
func (f *freeList) remove(p PFN) bool {
	i, ok := f.pos[p]
	if !ok {
		return false
	}
	last := len(f.items) - 1
	moved := f.items[last]
	f.items[i] = moved
	f.pos[moved] = i
	f.items = f.items[:last]
	delete(f.pos, p) // also correct when moved == p (entry re-created above)
	return true
}

// each calls fn for every free block, in internal (deterministic) order.
func (f *freeList) each(fn func(PFN)) {
	for _, p := range f.items {
		fn(p)
	}
}
