package mem

import "hpmmap/internal/invariant"

// freeList holds the free blocks of a single buddy order. It supports O(1)
// push, O(1) pop (LIFO, which matches the hot-cache preference of real
// allocators), and O(1) removal by address (needed when a buddy is
// absorbed during coalescing). Iteration order is deterministic for a
// deterministic call sequence.
//
// Blocks of one order within one zone are order-aligned frames in the
// zone's span, so each maps to a dense slot (pfn-base)>>order. Membership
// and positions live in a slot-indexed array instead of a map: the fault
// hot path does no hashing (ISSUE 6 — the map[PFN]int representation put
// memhash/mapaccess/mapassign at ~25% of simulator CPU). idx[slot] holds
// position+1 in items, 0 means absent. The array is sized from the zone's
// span at construction and never shrinks: Offline removes only topmost
// sections, so stale high slots simply stay zero.
type freeList struct {
	items []PFN
	base  PFN
	shift uint
	idx   []int32 // slot -> position+1 in items; 0 = absent
}

// newFreeList builds the list for one order of a zone spanning pages base
// pages starting at base.
func newFreeList(base PFN, order int, pages uint64) *freeList {
	return &freeList{
		base:  base,
		shift: uint(order),
		idx:   make([]int32, pages>>uint(order)),
	}
}

func (f *freeList) slot(p PFN) uint64 { return uint64(p-f.base) >> f.shift }

func (f *freeList) len() int { return len(f.items) }

//detsim:hotpath
func (f *freeList) contains(p PFN) bool {
	s := f.slot(p)
	return s < uint64(len(f.idx)) && f.idx[s] != 0
}

//detsim:hotpath
func (f *freeList) push(p PFN) {
	s := f.slot(p)
	if f.idx[s] != 0 {
		// Simulated-state violation: the same physical block entered a
		// free list twice (a double free somewhere upstream).
		invariant.Failf("free_list_double_push", "mem",
			"frame %d pushed onto a free list it is already on", p)
	}
	//detsim:allow pooled capacity: items is sized to the region at construction and only refills freed slots; growth beyond the high-water mark is amortised once per region (DESIGN.md §10)
	f.items = append(f.items, p)
	f.idx[s] = int32(len(f.items))
}

// pop removes and returns the most recently freed block.
//
//detsim:hotpath
func (f *freeList) pop() (PFN, bool) {
	n := len(f.items)
	if n == 0 {
		return 0, false
	}
	p := f.items[n-1]
	f.items = f.items[:n-1]
	f.idx[f.slot(p)] = 0
	return p, true
}

// remove deletes a specific block (swap-remove). Reports whether it was
// present.
//
//detsim:hotpath
func (f *freeList) remove(p PFN) bool {
	s := f.slot(p)
	if s >= uint64(len(f.idx)) || f.idx[s] == 0 {
		return false
	}
	i := f.idx[s] - 1
	last := len(f.items) - 1
	moved := f.items[last]
	f.items[i] = moved
	f.idx[f.slot(moved)] = i + 1
	f.items = f.items[:last]
	f.idx[s] = 0 // also correct when moved == p (slot re-written above)
	return true
}

// each calls fn for every free block, in internal (deterministic) order.
func (f *freeList) each(fn func(PFN)) {
	for _, p := range f.items {
		fn(p)
	}
}
