package mem

import (
	"fmt"

	"hpmmap/internal/invariant"
)

// NodeMemory is the physical memory of one machine: a set of NUMA zones
// with a local-first allocation policy (memory interleaving disabled, as in
// both of the paper's testbeds).
type NodeMemory struct {
	Zones []*Zone
}

// NewNodeMemory builds a node with the given number of equally sized NUMA
// zones. totalBytes is split evenly; each zone is rounded down to a
// multiple of the max-order block size.
func NewNodeMemory(numZones int, totalBytes uint64) *NodeMemory {
	if numZones <= 0 {
		// Programmer error: machine configuration with no NUMA zones.
		panic(fmt.Sprintf("mem: NewNodeMemory with %d zones — need at least 1", numZones))
	}
	perZone := totalBytes / uint64(numZones)
	maxBlockBytes := BytesPerOrder(MaxOrder)
	perZone -= perZone % maxBlockBytes
	if perZone == 0 {
		// Programmer error: totalBytes too small to give each zone one
		// max-order block.
		panic(fmt.Sprintf("mem: NewNodeMemory(%d zones, %d bytes): per-zone size rounds to zero (need >= %d per zone)", numZones, totalBytes, maxBlockBytes))
	}
	n := &NodeMemory{}
	var base PFN
	for i := 0; i < numZones; i++ {
		pages := perZone / PageSize
		n.Zones = append(n.Zones, NewZone(i, base, pages))
		base += PFN(pages)
	}
	return n
}

// Alloc allocates 2^order pages preferring the given zone, falling back to
// the other zones in ID order — Linux's zonelist fallback with
// interleaving off.
func (n *NodeMemory) Alloc(preferred, order int) (PFN, *Zone, bool) {
	if preferred < 0 || preferred >= len(n.Zones) {
		preferred = 0
	}
	if p, ok := n.Zones[preferred].AllocPages(order); ok {
		return p, n.Zones[preferred], true
	}
	for i, z := range n.Zones {
		if i == preferred {
			continue
		}
		if p, ok := z.AllocPages(order); ok {
			return p, z, true
		}
	}
	return 0, nil, false
}

// Free returns a block to the zone that owns it.
func (n *NodeMemory) Free(p PFN, order int) {
	z := n.ZoneOf(p)
	if z == nil {
		// Simulated-state violation: a frame is being returned that no
		// zone owns — an offlined or fabricated address escaped into the
		// general allocator.
		invariant.Failf("free_outside_zones", "mem",
			"Free(%d, order %d): frame belongs to no zone", p, order)
	}
	z.FreeBlock(p, order)
}

// ZoneOf returns the zone containing frame p, or nil.
func (n *NodeMemory) ZoneOf(p PFN) *Zone {
	for _, z := range n.Zones {
		if p >= z.Base && p < z.Base+PFN(z.Pages) {
			return z
		}
	}
	// The frame may live in an offlined extent; those belong to no zone.
	return nil
}

// FreePages sums free pages across zones.
func (n *NodeMemory) FreePages() uint64 {
	var t uint64
	for _, z := range n.Zones {
		t += z.FreePages()
	}
	return t
}

// TotalPages sums managed pages across zones (offlined memory excluded).
func (n *NodeMemory) TotalPages() uint64 {
	var t uint64
	for _, z := range n.Zones {
		t += z.Pages
	}
	return t
}

// Pressure returns the maximum pressure across zones: the binding
// constraint for an allocation that must come from somewhere.
func (n *NodeMemory) Pressure() float64 {
	var worst float64
	for _, z := range n.Zones {
		if p := z.Pressure(); p > worst {
			worst = p
		}
	}
	return worst
}

// MeanPressure returns the average zone pressure.
func (n *NodeMemory) MeanPressure() float64 {
	if len(n.Zones) == 0 {
		return 0
	}
	var s float64
	for _, z := range n.Zones {
		s += z.Pressure()
	}
	return s / float64(len(n.Zones))
}

// OfflineEvenly hot-removes totalBytes of memory split evenly across the
// zones (the paper offlines 12GB of 16GB / 20GB of 24GB "split evenly
// across the two NUMA zones"). Returns the removed extents.
func (n *NodeMemory) OfflineEvenly(totalBytes uint64) ([]Extent, error) {
	per := totalBytes / uint64(len(n.Zones))
	per -= per % SectionSize
	var all []Extent
	for _, z := range n.Zones {
		ext, err := z.Offline(per)
		if err != nil {
			return nil, fmt.Errorf("zone %d: %w", z.ID, err)
		}
		all = append(all, ext...)
	}
	return all, nil
}
