package mem

import "testing"

func TestNodeMemoryLayout(t *testing.T) {
	n := NewNodeMemory(2, 1<<30) // 1GB in 2 zones
	if len(n.Zones) != 2 {
		t.Fatalf("zones = %d", len(n.Zones))
	}
	if n.Zones[0].Pages != n.Zones[1].Pages {
		t.Fatal("zones not equal size")
	}
	if n.Zones[1].Base != n.Zones[0].Base+PFN(n.Zones[0].Pages) {
		t.Fatal("zones not contiguous")
	}
	if n.TotalPages() != (1<<30)/PageSize {
		t.Fatalf("total pages %d", n.TotalPages())
	}
}

func TestNodeAllocPrefersZone(t *testing.T) {
	n := NewNodeMemory(2, 1<<30)
	p, z, ok := n.Alloc(1, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	if z.ID != 1 {
		t.Fatalf("allocated from zone %d, want 1", z.ID)
	}
	if n.ZoneOf(p) != z {
		t.Fatal("ZoneOf mismatch")
	}
	n.Free(p, 0)
	if n.FreePages() != n.TotalPages() {
		t.Fatal("free/total mismatch after round trip")
	}
}

func TestNodeAllocFallsBack(t *testing.T) {
	n := NewNodeMemory(2, 256<<20)
	// Exhaust zone 0.
	for {
		if _, ok := n.Zones[0].AllocPages(0); !ok {
			break
		}
	}
	_, z, ok := n.Alloc(0, 0)
	if !ok {
		t.Fatal("alloc failed despite zone 1 free")
	}
	if z.ID != 1 {
		t.Fatalf("fallback went to zone %d", z.ID)
	}
}

func TestNodeAllocFailsWhenAllExhausted(t *testing.T) {
	n := NewNodeMemory(2, 64<<20)
	for {
		if _, _, ok := n.Alloc(0, MaxOrder); !ok {
			break
		}
	}
	for {
		if _, _, ok := n.Alloc(0, 0); !ok {
			break
		}
	}
	if _, _, ok := n.Alloc(0, 0); ok {
		t.Fatal("alloc succeeded with node exhausted")
	}
	if n.Pressure() != 1 {
		t.Fatalf("pressure %v on exhausted node", n.Pressure())
	}
}

func TestNodeAllocBadPreferredClamps(t *testing.T) {
	n := NewNodeMemory(2, 256<<20)
	if _, _, ok := n.Alloc(99, 0); !ok {
		t.Fatal("alloc with bad preferred zone failed")
	}
}

func TestNodeOfflineEvenly(t *testing.T) {
	n := NewNodeMemory(2, 2<<30)
	before := n.TotalPages()
	ext, err := n.OfflineEvenly(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	perZone := map[PFN]uint64{}
	for _, e := range ext {
		got += e.Bytes()
		// Count per original zone by address range.
		if e.Base < PFN(before)/2 {
			perZone[0] += e.Bytes()
		} else {
			perZone[1] += e.Bytes()
		}
	}
	if got != 1<<30 {
		t.Fatalf("offlined %d, want 1GB", got)
	}
	if perZone[0] != perZone[1] {
		t.Fatalf("offline not even: %v", perZone)
	}
	if n.TotalPages() != before-(1<<30)/PageSize {
		t.Fatalf("total pages %d after offline", n.TotalPages())
	}
	// ZoneOf must not find offlined frames.
	for _, e := range ext {
		if z := n.ZoneOf(e.Base + PFN(e.Pages) - 1); z != nil && e.Base >= z.Base && e.Base < z.Base+PFN(z.Pages) {
			t.Fatalf("offlined frame still inside zone %d", z.ID)
		}
	}
}

func TestNodeMeanPressure(t *testing.T) {
	n := NewNodeMemory(2, 256<<20)
	if n.MeanPressure() != 0 {
		t.Fatal("fresh node has pressure")
	}
	for {
		if _, ok := n.Zones[0].AllocPages(0); !ok {
			break
		}
	}
	mp := n.MeanPressure()
	if mp <= 0 || mp > 0.5 {
		t.Fatalf("mean pressure %v with one of two zones full", mp)
	}
	if n.Pressure() != 1 {
		t.Fatalf("max pressure %v with one zone full", n.Pressure())
	}
}

func TestOrderHelpers(t *testing.T) {
	if OrderForBytes(PageSize) != 0 {
		t.Fatal("OrderForBytes(4K) != 0")
	}
	if OrderForBytes(PageSize+1) != 1 {
		t.Fatal("OrderForBytes(4K+1) != 1")
	}
	if OrderForBytes(LargePageSize) != LargePageOrder {
		t.Fatalf("OrderForBytes(2M) = %d", OrderForBytes(LargePageSize))
	}
	if OrderForBytes(1<<40) != MaxOrder {
		t.Fatal("OrderForBytes(1TB) should clamp to MaxOrder")
	}
	if BytesPerOrder(0) != PageSize || BytesPerOrder(LargePageOrder) != LargePageSize {
		t.Fatal("BytesPerOrder wrong")
	}
	if PFN(1).Addr() != PageSize {
		t.Fatal("PFN.Addr wrong")
	}
}

func TestFreeListRemoveSemantics(t *testing.T) {
	f := newFreeList(0, 0, 64)
	f.push(10)
	f.push(20)
	f.push(30)
	if !f.remove(20) {
		t.Fatal("remove existing failed")
	}
	if f.remove(20) {
		t.Fatal("double remove succeeded")
	}
	if f.contains(20) {
		t.Fatal("contains after remove")
	}
	if f.len() != 2 {
		t.Fatalf("len %d", f.len())
	}
	// Remove the tail element (moved == p path).
	if !f.remove(30) {
		t.Fatal("remove tail failed")
	}
	if f.contains(30) || f.len() != 1 {
		t.Fatal("tail remove left stale state")
	}
	p, ok := f.pop()
	if !ok || p != 10 {
		t.Fatalf("pop = %d, %v", p, ok)
	}
	if _, ok := f.pop(); ok {
		t.Fatal("pop on empty succeeded")
	}
}

func TestFreeListDoublePushPanics(t *testing.T) {
	f := newFreeList(0, 0, 64)
	f.push(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double push did not panic")
		}
	}()
	f.push(5)
}
