package mem

import (
	"testing"
	"testing/quick"

	"hpmmap/internal/sim"
)

func newTestZone(t *testing.T, mb uint64) *Zone {
	t.Helper()
	pages := (mb << 20) / PageSize
	return NewZone(0, 0, pages)
}

func TestZoneStartsFullyCoalesced(t *testing.T) {
	z := newTestZone(t, 64)
	if z.FreePages() != z.Pages {
		t.Fatalf("free %d != total %d", z.FreePages(), z.Pages)
	}
	if z.LargestFreeOrder() != MaxOrder {
		t.Fatalf("largest free order %d, want %d", z.LargestFreeOrder(), MaxOrder)
	}
	want := int(z.Pages / PagesPerOrder(MaxOrder))
	if got := z.FreeBlocksAt(MaxOrder); got != want {
		t.Fatalf("max-order blocks %d, want %d", got, want)
	}
}

func TestZoneAllocFreeRoundTrip(t *testing.T) {
	z := newTestZone(t, 64)
	p, ok := z.AllocPages(0)
	if !ok {
		t.Fatal("order-0 alloc failed on empty zone")
	}
	if z.FreePages() != z.Pages-1 {
		t.Fatalf("free pages %d after one alloc", z.FreePages())
	}
	z.FreeBlock(p, 0)
	if z.FreePages() != z.Pages {
		t.Fatalf("free pages %d after free", z.FreePages())
	}
	if z.LargestFreeOrder() != MaxOrder {
		t.Fatal("zone did not re-coalesce to max order")
	}
	if err := z.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZoneSplitProducesDisjointBlocks(t *testing.T) {
	z := newTestZone(t, 64)
	seen := map[PFN]bool{}
	var got []PFN
	for {
		p, ok := z.AllocPages(LargePageOrder)
		if !ok {
			break
		}
		for i := uint64(0); i < PagesPerOrder(LargePageOrder); i++ {
			if seen[p+PFN(i)] {
				t.Fatalf("frame %d allocated twice", p+PFN(i))
			}
			seen[p+PFN(i)] = true
		}
		got = append(got, p)
	}
	if uint64(len(got)) != (64<<20)/LargePageSize {
		t.Fatalf("allocated %d 2MB blocks from 64MB", len(got))
	}
	if z.FreePages() != 0 {
		t.Fatalf("free pages %d after exhausting", z.FreePages())
	}
	for _, p := range got {
		z.FreeBlock(p, LargePageOrder)
	}
	if z.LargestFreeOrder() != MaxOrder {
		t.Fatal("zone did not fully coalesce after freeing all 2MB blocks")
	}
}

func TestZoneAllocFailsWhenExhausted(t *testing.T) {
	z := newTestZone(t, 8)
	for {
		if _, ok := z.AllocPages(0); !ok {
			break
		}
	}
	if _, ok := z.AllocPages(0); ok {
		t.Fatal("alloc succeeded on exhausted zone")
	}
	if z.Failures < 1 {
		t.Fatal("failure counter not incremented")
	}
}

func TestZoneFragmentationBlocksLargeAllocs(t *testing.T) {
	z := newTestZone(t, 8)
	// Allocate everything as small pages, then free every other page:
	// plenty of memory free but nothing contiguous.
	var pages []PFN
	for {
		p, ok := z.AllocPages(0)
		if !ok {
			break
		}
		pages = append(pages, p)
	}
	for i := 0; i < len(pages); i += 2 {
		z.FreeBlock(pages[i], 0)
	}
	if z.FreePages() == 0 {
		t.Fatal("expected free memory")
	}
	if z.CanAlloc(LargePageOrder) {
		t.Fatal("2MB alloc possible despite checkerboard fragmentation")
	}
	fi := z.FragmentationIndex(LargePageOrder)
	if fi < 0.9 {
		t.Fatalf("fragmentation index %v, want near 1 for checkerboard", fi)
	}
	if err := z.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZoneFragmentationIndexSignalsLowMemory(t *testing.T) {
	z := newTestZone(t, 8)
	for {
		if _, ok := z.AllocPages(MaxOrder); !ok {
			break
		}
	}
	// Nothing free at all: index reports 0 (failure due to lack of memory).
	if fi := z.FragmentationIndex(LargePageOrder); fi != 0 {
		t.Fatalf("index on empty zone = %v, want 0", fi)
	}
}

func TestZoneFragmentationIndexNegativeWhenSatisfiable(t *testing.T) {
	z := newTestZone(t, 8)
	if fi := z.FragmentationIndex(LargePageOrder); fi != -1 {
		t.Fatalf("index on fresh zone = %v, want -1", fi)
	}
}

func TestZonePressure(t *testing.T) {
	z := newTestZone(t, 64)
	if p := z.Pressure(); p != 0 {
		t.Fatalf("fresh zone pressure %v", p)
	}
	// Exhaust the zone.
	for {
		if _, ok := z.AllocPages(MaxOrder); !ok {
			break
		}
	}
	for {
		if _, ok := z.AllocPages(0); !ok {
			break
		}
	}
	if p := z.Pressure(); p != 1 {
		t.Fatalf("exhausted zone pressure %v, want 1", p)
	}
}

func TestZoneBoundsChecks(t *testing.T) {
	z := newTestZone(t, 8)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("FreeBlock outside zone", func() { z.FreeBlock(PFN(z.Pages)+100, 0) })
	mustPanic("FreeBlock misaligned", func() { z.FreeBlock(1, 1) })
	mustPanic("AllocPages bad order", func() { z.AllocPages(MaxOrder + 1) })
}

func TestZoneOfflineTakesTopSections(t *testing.T) {
	z := newTestZone(t, 512)
	before := z.Pages
	ext, err := z.Offline(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for _, e := range ext {
		got += e.Bytes()
		if e.Bytes() != SectionSize {
			t.Fatalf("extent size %d, want one section", e.Bytes())
		}
		if e.Base < PFN(before)-PFN((256<<20)/PageSize) {
			t.Fatalf("offline took low extent at %d; expected top of zone", e.Base)
		}
	}
	if got != 256<<20 {
		t.Fatalf("offlined %d bytes, want 256MB", got)
	}
	if z.Pages != before-(256<<20)/PageSize {
		t.Fatalf("zone pages %d after offline", z.Pages)
	}
	if err := z.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The offlined frames must be unreachable via allocation.
	for {
		p, ok := z.AllocPages(MaxOrder)
		if !ok {
			break
		}
		for _, e := range ext {
			if p >= e.Base && p < e.End() {
				t.Fatalf("allocation returned offlined frame %d", p)
			}
		}
	}
}

func TestZoneOfflineRejectsBadSizes(t *testing.T) {
	z := newTestZone(t, 512)
	if _, err := z.Offline(1 << 20); err == nil {
		t.Fatal("offline of sub-section size succeeded")
	}
	if _, err := z.Offline(1 << 40); err == nil {
		t.Fatal("offline of more than the zone succeeded")
	}
}

func TestZoneOfflineZeroIsNoop(t *testing.T) {
	z := newTestZone(t, 512)
	ext, err := z.Offline(0)
	if err != nil || len(ext) != 0 {
		t.Fatalf("Offline(0) = %v, %v", ext, err)
	}
}

// TestZoneRandomOpsInvariant is the core property test: any interleaving of
// allocs and frees conserves pages, never double-allocates, and freeing
// everything restores full coalescing.
func TestZoneRandomOpsInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRand(seed)
		z := NewZone(0, 0, (32<<20)/PageSize)
		type block struct {
			p     PFN
			order int
		}
		var live []block
		for op := 0; op < 2000; op++ {
			if len(live) == 0 || r.Bool(0.55) {
				order := r.Intn(MaxOrder + 1)
				p, ok := z.AllocPages(order)
				if ok {
					live = append(live, block{p, order})
				}
			} else {
				i := r.Intn(len(live))
				b := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				z.FreeBlock(b.p, b.order)
			}
			var allocated uint64
			for _, b := range live {
				allocated += PagesPerOrder(b.order)
			}
			if allocated+z.FreePages() != z.Pages {
				t.Logf("seed %d op %d: conservation violated: %d live + %d free != %d", seed, op, allocated, z.FreePages(), z.Pages)
				return false
			}
		}
		if err := z.checkInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, b := range live {
			z.FreeBlock(b.p, b.order)
		}
		if z.LargestFreeOrder() != MaxOrder || z.FreePages() != z.Pages {
			t.Logf("seed %d: zone did not re-coalesce (largest=%d free=%d)", seed, z.LargestFreeOrder(), z.FreePages())
			return false
		}
		return z.checkInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestZoneAllocatedBlocksDisjoint drives random allocations and verifies
// no two live blocks ever overlap.
func TestZoneAllocatedBlocksDisjoint(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRand(seed)
		z := NewZone(0, 0, (16<<20)/PageSize)
		owner := map[PFN]int{} // frame -> block id
		type block struct {
			p     PFN
			order int
		}
		blocks := map[int]block{}
		next := 0
		for op := 0; op < 1000; op++ {
			if len(blocks) == 0 || r.Bool(0.6) {
				order := r.Intn(LargePageOrder + 1)
				p, ok := z.AllocPages(order)
				if !ok {
					continue
				}
				for i := uint64(0); i < PagesPerOrder(order); i++ {
					if id, dup := owner[p+PFN(i)]; dup {
						t.Logf("seed %d: frame %d already owned by block %d", seed, p+PFN(i), id)
						return false
					}
					owner[p+PFN(i)] = next
				}
				blocks[next] = block{p, order}
				next++
			} else {
				// Free an arbitrary live block (deterministic pick).
				var id int
				k := r.Intn(len(blocks))
				for bid := range blocks {
					if k == 0 {
						id = bid
						break
					}
					k--
				}
				b := blocks[id]
				delete(blocks, id)
				for i := uint64(0); i < PagesPerOrder(b.order); i++ {
					delete(owner, b.p+PFN(i))
				}
				z.FreeBlock(b.p, b.order)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestZoneOfflineThenAllocStress exercises a zone after offlining: the
// remaining span must behave like a normal (smaller) zone under churn.
func TestZoneOfflineThenAllocStress(t *testing.T) {
	z := NewZone(0, 0, (1<<30)/PageSize)
	if _, err := z.Offline(512 << 20); err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(99)
	type blk struct {
		p PFN
		o int
	}
	var live []blk
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || r.Bool(0.6) {
			o := r.Intn(MaxOrder + 1)
			if p, ok := z.AllocPages(o); ok {
				live = append(live, blk{p, o})
			}
		} else {
			i := r.Intn(len(live))
			b := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			z.FreeBlock(b.p, b.o)
		}
	}
	for _, b := range live {
		z.FreeBlock(b.p, b.o)
	}
	if err := z.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if z.FreePages() != z.Pages {
		t.Fatalf("free %d != pages %d after churn", z.FreePages(), z.Pages)
	}
}
