// Package mem models the physical memory of a compute node: page frames,
// NUMA zones managed by a Linux-style order-based buddy allocator,
// allocation watermarks, fragmentation measurement, and the memory
// hot-remove ("offlining") capability HPMMAP builds on.
//
// Everything here is deterministic: the same sequence of calls produces the
// same placements, which keeps whole-system simulations reproducible.
package mem

// Fundamental page geometry (x86-64).
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4KB base page

	LargePageShift = 21
	LargePageSize  = 1 << LargePageShift // 2MB large page

	HugePageShift = 30
	HugePageSize  = 1 << HugePageShift // 1GB huge page

	// SectionSize is the granularity of memory hotplug (hot-remove), as on
	// Linux x86-64: 128MB. The paper relies on offlined memory arriving in
	// blocks "no less than 128MB".
	SectionSize = 128 << 20

	// MaxOrder is the largest buddy order (inclusive), as in Linux:
	// order 11 = 2^11 pages = 8MB blocks.
	MaxOrder = 11

	// LargePageOrder is the buddy order of one 2MB page.
	LargePageOrder = LargePageShift - PageShift // 9
)

// PFN is a page frame number: physical address >> PageShift.
type PFN uint64

// Addr returns the physical byte address of the frame.
func (p PFN) Addr() uint64 { return uint64(p) << PageShift }

// PagesPerOrder returns the number of base pages in a block of the given
// order.
func PagesPerOrder(order int) uint64 { return 1 << uint(order) }

// BytesPerOrder returns the byte size of a block of the given order.
func BytesPerOrder(order int) uint64 { return PageSize << uint(order) }

// OrderForBytes returns the smallest order whose block size is >= bytes.
func OrderForBytes(bytes uint64) int {
	for o := 0; o <= MaxOrder; o++ {
		if BytesPerOrder(o) >= bytes {
			return o
		}
	}
	return MaxOrder
}
