package mem

import (
	"fmt"
	"sort"

	"hpmmap/internal/invariant"
)

// Zone is one NUMA zone of physical memory managed by an order-based buddy
// allocator, mirroring the Linux zoned page allocator. Frame numbers are
// global (node-wide): a zone spans [Base, Base+Pages).
type Zone struct {
	ID    int
	Base  PFN
	Pages uint64 // total managed base pages

	free      [MaxOrder + 1]*freeList
	freePages uint64

	// Watermarks, in base pages, following Linux's min/low/high scheme.
	// Allocation below min fails for normal requests; below low wakes
	// reclaim (modelled by callers observing Pressure).
	WatermarkMin  uint64
	WatermarkLow  uint64
	WatermarkHigh uint64

	offlined []Extent // hot-removed ranges, no longer managed

	// Statistics.
	Allocs, Frees, Splits, Merges, Failures uint64
}

// Extent is a contiguous physical range.
type Extent struct {
	Base  PFN
	Pages uint64
}

// Bytes returns the size of the extent in bytes.
func (e Extent) Bytes() uint64 { return e.Pages * PageSize }

// End returns one past the last frame.
func (e Extent) End() PFN { return e.Base + PFN(e.Pages) }

// NewZone creates a zone of the given size whose free memory starts fully
// coalesced. pages must be a multiple of the max-order block size so the
// initial free lists are exact.
func NewZone(id int, base PFN, pages uint64) *Zone {
	maxBlock := PagesPerOrder(MaxOrder)
	if pages == 0 || pages%maxBlock != 0 {
		panic(fmt.Sprintf("mem: zone size %d pages not a multiple of max-order block (%d)", pages, maxBlock))
	}
	if uint64(base)%maxBlock != 0 {
		// Programmer error: zone construction with a misaligned base.
		panic(fmt.Sprintf("mem: NewZone base %d not aligned to the max-order block (%d pages)", base, maxBlock))
	}
	z := &Zone{ID: id, Base: base, Pages: pages}
	for o := range z.free {
		z.free[o] = newFreeList(base, o, pages)
	}
	for p := base; p < base+PFN(pages); p += PFN(maxBlock) {
		z.free[MaxOrder].push(p)
	}
	z.freePages = pages
	// Default watermarks: roughly Linux's proportions.
	z.WatermarkMin = pages / 256
	z.WatermarkLow = pages / 128
	z.WatermarkHigh = pages / 64
	return z
}

// FreePages returns the number of free base pages.
func (z *Zone) FreePages() uint64 { return z.freePages }

// FreeBytes returns the free memory in bytes.
func (z *Zone) FreeBytes() uint64 { return z.freePages * PageSize }

// UsedPages returns allocated (managed, non-free) base pages.
func (z *Zone) UsedPages() uint64 { return z.Pages - z.freePages }

// buddyOf returns the buddy block of p at the given order.
func (z *Zone) buddyOf(p PFN, order int) PFN {
	rel := uint64(p - z.Base)
	return z.Base + PFN(rel^PagesPerOrder(order))
}

// AllocPages allocates a block of 2^order base pages. It returns the first
// frame of the block. Allocation fails (ok=false) when no block of the
// requested or any higher order is free — exactly the condition under
// which Linux would enter reclaim/compaction.
func (z *Zone) AllocPages(order int) (PFN, bool) {
	if order < 0 || order > MaxOrder {
		// Programmer error: order outside [0, MaxOrder].
		panic(fmt.Sprintf("mem: AllocPages order %d out of range [0,%d]", order, MaxOrder))
	}
	for o := order; o <= MaxOrder; o++ {
		p, ok := z.free[o].pop()
		if !ok {
			continue
		}
		// Split down to the requested order, returning the upper halves.
		for o > order {
			o--
			z.Splits++
			z.free[o].push(p + PFN(PagesPerOrder(o)))
		}
		z.freePages -= PagesPerOrder(order)
		z.Allocs++
		return p, true
	}
	z.Failures++
	return 0, false
}

// FreePages returns a block to the allocator, coalescing with free buddies
// as far as possible.
func (z *Zone) FreeBlock(p PFN, order int) {
	if order < 0 || order > MaxOrder {
		// Programmer error: order outside [0, MaxOrder].
		panic(fmt.Sprintf("mem: FreeBlock order %d out of range [0,%d]", order, MaxOrder))
	}
	if p < z.Base || p+PFN(PagesPerOrder(order)) > z.Base+PFN(z.Pages) {
		// Simulated-state violation: the block being freed does not lie
		// inside this zone's managed span — an owner mixed up zones or
		// freed a stale/offlined frame.
		invariant.Failf("free_outside_zone", "mem",
			"FreeBlock [%d,+2^%d) outside zone %d span [%d,%d)",
			p, order, z.ID, z.Base, z.Base+PFN(z.Pages))
	}
	if uint64(p-z.Base)%PagesPerOrder(order) != 0 {
		// Simulated-state violation: the freed address is not aligned to
		// its order, so it cannot be a block this allocator handed out.
		invariant.Failf("free_misaligned", "mem",
			"FreeBlock(%d, order %d) misaligned within zone %d", p, order, z.ID)
	}
	z.Frees++
	z.freePages += PagesPerOrder(order)
	for order < MaxOrder {
		buddy := z.buddyOf(p, order)
		if !z.free[order].remove(buddy) {
			break
		}
		z.Merges++
		if buddy < p {
			p = buddy
		}
		order++
	}
	z.free[order].push(p)
}

// FreeBlocksAt returns the number of free blocks at exactly the given
// order.
func (z *Zone) FreeBlocksAt(order int) int { return z.free[order].len() }

// LargestFreeOrder returns the highest order with at least one free block,
// or -1 if the zone is exhausted.
func (z *Zone) LargestFreeOrder() int {
	for o := MaxOrder; o >= 0; o-- {
		if z.free[o].len() > 0 {
			return o
		}
	}
	return -1
}

// CanAlloc reports whether an allocation of the given order would succeed
// right now.
func (z *Zone) CanAlloc(order int) bool {
	for o := order; o <= MaxOrder; o++ {
		if z.free[o].len() > 0 {
			return true
		}
	}
	return false
}

// FragmentationIndex returns Linux's fragmentation index for the given
// order: 0 means failures are due to lack of memory, values approaching 1
// mean failures are due to fragmentation. Returns -1 when a request of the
// order would currently succeed (the index is only meaningful on failure
// paths), matching the kernel's convention.
func (z *Zone) FragmentationIndex(order int) float64 {
	var requested, total, blocks uint64
	requested = PagesPerOrder(order)
	for o := 0; o <= MaxOrder; o++ {
		n := uint64(z.free[o].len())
		blocks += n
		total += n * PagesPerOrder(o)
		if o >= order && n > 0 {
			return -1
		}
	}
	if blocks == 0 {
		return 0
	}
	return 1 - float64(total)/float64(requested)/float64(blocks)
}

// Pressure returns a [0,1] load factor describing how close the zone is to
// its watermarks: 0 when free memory is at or above the high watermark, 1
// when at or below min.
func (z *Zone) Pressure() float64 {
	f := z.freePages
	if f >= z.WatermarkHigh {
		return 0
	}
	if f <= z.WatermarkMin {
		return 1
	}
	return float64(z.WatermarkHigh-f) / float64(z.WatermarkHigh-z.WatermarkMin)
}

// Offline hot-removes bytes of memory from the zone in SectionSize units,
// as Linux Memory Hot Remove does. It requires the sections to be fully
// free (the simulator offlines at boot, exactly as the paper configures).
// The removed extents are returned for an external manager (HPMMAP) to
// own; they will never again be handed out by this zone.
func (z *Zone) Offline(bytes uint64) ([]Extent, error) {
	if bytes == 0 {
		return nil, nil
	}
	if bytes%SectionSize != 0 {
		return nil, fmt.Errorf("mem: offline size %d not a multiple of the %dMB section size", bytes, SectionSize>>20)
	}
	pages := bytes / PageSize
	if pages > z.freePages {
		return nil, fmt.Errorf("mem: zone %d has only %d free pages, cannot offline %d", z.ID, z.freePages, pages)
	}
	sectionPages := uint64(SectionSize / PageSize)
	want := pages / sectionPages

	// Gather candidate max-order blocks from the top of the zone first:
	// hot-remove prefers movable, high blocks. We take fully free,
	// section-aligned spans.
	var starts []PFN
	z.free[MaxOrder].each(func(p PFN) { starts = append(starts, p) })
	sort.Slice(starts, func(i, j int) bool { return starts[i] > starts[j] })

	blocksPerSection := sectionPages / PagesPerOrder(MaxOrder)
	if blocksPerSection == 0 {
		blocksPerSection = 1
	}

	// Group contiguous runs of max-order blocks into sections.
	var got []Extent
	run := make(map[PFN]bool, len(starts))
	for _, s := range starts {
		run[s] = true
	}
	// Walk section-aligned addresses inside the (original) zone span from
	// the top; hot-remove prefers the highest movable sections.
	origPages := z.Pages
	maxSections := origPages / sectionPages
	for i := uint64(0); i < maxSections && uint64(len(got)) < want; i++ {
		base := z.Base + PFN(origPages) - PFN((i+1)*sectionPages)
		ok := true
		for b := uint64(0); b < blocksPerSection; b++ {
			if !run[base+PFN(b*PagesPerOrder(MaxOrder))] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for b := uint64(0); b < blocksPerSection; b++ {
			p := base + PFN(b*PagesPerOrder(MaxOrder))
			if !z.free[MaxOrder].remove(p) {
				// Simulated-state violation: a block the offline scan just
				// observed free disappeared from the free list mid-pass.
				invariant.Failf("offline_lost_block", "mem",
					"offline: max-order block %d vanished from zone %d's free list", p, z.ID)
			}
			delete(run, p)
		}
		z.freePages -= sectionPages
		got = append(got, Extent{Base: base, Pages: sectionPages})
	}
	if uint64(len(got)) < want {
		// Roll back.
		for _, e := range got {
			z.freePages += e.Pages
			for b := uint64(0); b < e.Pages; b += PagesPerOrder(MaxOrder) {
				z.free[MaxOrder].push(e.Base + PFN(b))
			}
		}
		return nil, fmt.Errorf("mem: zone %d could not find %d free sections (found %d); memory too fragmented", z.ID, want, len(got))
	}
	// The zone keeps a contiguous managed span: removal is only supported
	// for the topmost sections (always the case at boot, when the whole
	// zone is free — the configuration the paper uses).
	lowest := got[0].Base
	for _, e := range got {
		if e.Base < lowest {
			lowest = e.Base
		}
	}
	if lowest != z.Base+PFN(origPages)-PFN(uint64(len(got))*sectionPages) {
		for _, e := range got {
			z.freePages += e.Pages
			for b := uint64(0); b < e.Pages; b += PagesPerOrder(MaxOrder) {
				z.free[MaxOrder].push(e.Base + PFN(b))
			}
		}
		return nil, fmt.Errorf("mem: zone %d free sections are not contiguous at the top; offline after boot is unsupported", z.ID)
	}
	z.Pages -= uint64(len(got)) * sectionPages
	// Recompute watermarks against the shrunken zone.
	z.WatermarkMin = z.Pages / 256
	z.WatermarkLow = z.Pages / 128
	z.WatermarkHigh = z.Pages / 64
	z.offlined = append(z.offlined, got...)
	return got, nil
}

// Offlined returns the extents removed from this zone so far.
func (z *Zone) Offlined() []Extent { return z.offlined }

// CheckInvariants validates the zone's full internal consistency — free-
// list conservation (every free frame appears exactly once and the
// per-order totals sum to freePages), block alignment and bounds, and
// buddy coalescing (no two buddy blocks sit free at the same order below
// MaxOrder, which FreeBlock's eager coalescing must never allow). Used
// by tests and by the opt-in invariant auditor (internal/invariant) at
// scheduler-tick boundaries.
func (z *Zone) CheckInvariants() error {
	if err := z.checkInvariants(); err != nil {
		return invariant.Errorf("zone_conservation", "mem", "zone %d: %v", z.ID, err)
	}
	// Coalescing: a free block whose buddy is also free at the same
	// order (below MaxOrder) should have been merged by FreeBlock.
	for o := 0; o < MaxOrder; o++ {
		var bad PFN
		found := false
		z.free[o].each(func(p PFN) {
			if found {
				return
			}
			buddy := z.buddyOf(p, o)
			if buddy > p && z.free[o].contains(buddy) {
				bad, found = p, true
			}
		})
		if found {
			return invariant.Errorf("zone_coalescing", "mem",
				"zone %d: blocks %d and %d are free buddies at order %d but unmerged",
				z.ID, bad, z.buddyOf(bad, o), o)
		}
	}
	return nil
}

// CheckAccounting is the cheap sibling of CheckInvariants: free-page
// conservation (per-order list lengths sum to freePages), block bounds,
// alignment and buddy coalescing — everything O(free blocks), skipping
// only the O(free frames) duplicate-frame scan. The invariant auditor
// runs this at every tick and reserves the full CheckInvariants for a
// strided deep pass, keeping audit overhead bounded on large zones.
func (z *Zone) CheckAccounting() error {
	limit := z.Base + PFN(z.Pages) + PFN(offlinedPages(z))
	var total uint64
	for o := 0; o <= MaxOrder; o++ {
		total += uint64(z.free[o].len()) * PagesPerOrder(o)
		var err error
		z.free[o].each(func(p PFN) {
			if err != nil {
				return
			}
			if p < z.Base || p+PFN(PagesPerOrder(o)) > limit {
				err = invariant.Errorf("zone_conservation", "mem",
					"zone %d: free block %d order %d outside zone", z.ID, p, o)
				return
			}
			if uint64(p-z.Base)%PagesPerOrder(o) != 0 {
				err = invariant.Errorf("zone_conservation", "mem",
					"zone %d: free block %d misaligned for order %d", z.ID, p, o)
				return
			}
			if o < MaxOrder {
				if buddy := z.buddyOf(p, o); buddy > p && z.free[o].contains(buddy) {
					err = invariant.Errorf("zone_coalescing", "mem",
						"zone %d: blocks %d and %d are free buddies at order %d but unmerged",
						z.ID, p, buddy, o)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	if total != z.freePages {
		return invariant.Errorf("zone_conservation", "mem",
			"zone %d: free list total %d != freePages %d", z.ID, total, z.freePages)
	}
	return nil
}

// checkInvariants validates free-list conservation; used by tests and
// wrapped (with the coalescing check) by the exported CheckInvariants.
func (z *Zone) checkInvariants() error {
	var total uint64
	seen := make(map[PFN]int)
	for o := 0; o <= MaxOrder; o++ {
		var err error
		z.free[o].each(func(p PFN) {
			if err != nil {
				return
			}
			if p < z.Base || p+PFN(PagesPerOrder(o)) > z.Base+PFN(z.Pages)+PFN(offlinedPages(z)) {
				err = fmt.Errorf("free block %d order %d outside zone", p, o)
				return
			}
			if uint64(p-z.Base)%PagesPerOrder(o) != 0 {
				err = fmt.Errorf("free block %d misaligned for order %d", p, o)
				return
			}
			for i := uint64(0); i < PagesPerOrder(o); i++ {
				if prev, dup := seen[p+PFN(i)]; dup {
					err = fmt.Errorf("frame %d on free lists twice (orders %d and %d)", p+PFN(i), prev, o)
					return
				}
				seen[p+PFN(i)] = o
			}
			total += PagesPerOrder(o)
		})
		if err != nil {
			return err
		}
	}
	if total != z.freePages {
		return fmt.Errorf("free list total %d != freePages %d", total, z.freePages)
	}
	return nil
}

func offlinedPages(z *Zone) uint64 {
	var n uint64
	for _, e := range z.offlined {
		n += e.Pages
	}
	return n
}
