package experiments

import (
	"fmt"
	"io"

	"hpmmap/internal/stats"
)

// WriteFaultStudy renders a Figure 2/3-style table.
func WriteFaultStudy(w io.Writer, fs FaultStudy) {
	fmt.Fprintf(w, "=== %s fault study: %s (rank 0) ===\n", fs.Kind, fs.Bench)
	fmt.Fprintf(w, "%-6s %-14s %10s %14s %14s\n", "Load", "Fault Size", "Total", "Avg Cycles", "Stdev Cycles")
	for _, row := range fs.Rows {
		load := "No"
		if row.Loaded {
			load = "Yes"
		}
		for _, s := range row.Summaries {
			fmt.Fprintf(w, "%-6s %-14s %10d %14.0f %14.0f\n", load, s.Kind, s.Count, s.AvgCycles, s.StdevCycles)
			load = ""
		}
	}
}

// WriteTimelines renders Figure 4/5-style scatter plots.
func WriteTimelines(w io.Writer, title string, tls []Timeline, width, height int) {
	fmt.Fprintf(w, "=== %s ===\n", title)
	for _, tl := range tls {
		fmt.Fprintf(w, "--- %s (%d faults) ---\n", tl.Title, tl.Recorder.Len())
		fmt.Fprint(w, tl.Recorder.Scatter(width, height, true))
	}
}

// WriteFig7 renders the single-node study as per-panel tables plus the
// paper's headline averages.
func WriteFig7(w io.Writer, panels []Fig7Panel) {
	for _, p := range panels {
		fmt.Fprintf(w, "=== Figure 7: %s, commodity profile %s ===\n", p.Bench, p.Profile)
		fmt.Fprintf(w, "%-22s", "Cores")
		if len(p.Series) > 0 {
			for _, pt := range p.Series[0].Points {
				fmt.Fprintf(w, " %14d", pt.Cores)
			}
		}
		fmt.Fprintln(w)
		for _, s := range p.Series {
			fmt.Fprintf(w, "%-22s", s.Kind.String())
			for _, pt := range s.Points {
				fmt.Fprintf(w, " %8.1f±%-5.1f", pt.MeanSec, pt.StdevSec)
			}
			fmt.Fprintln(w)
		}
	}
	// Statistical resolution of the headline comparison at 8 cores.
	resolved, total := 0, 0
	for _, p := range panels {
		hp, ok1 := PointFor(panels, p.Bench, p.Profile, HPMMAP, 8)
		th, ok2 := PointFor(panels, p.Bench, p.Profile, THP, 8)
		if !ok1 || !ok2 || len(hp.Runs) < 2 || len(th.Runs) < 2 {
			continue
		}
		var sa, sb stats.Sample
		for _, v := range hp.Runs {
			sa.Add(v)
		}
		for _, v := range th.Runs {
			sb.Add(v)
		}
		total++
		if stats.Significant(&sa, &sb) {
			resolved++
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "HPMMAP-vs-THP difference at 8 cores statistically resolved (Welch, ~99%%) in %d of %d panels\n", resolved, total)
	}
	a := filterPanels(panels, ProfileA)
	b := filterPanels(panels, ProfileB)
	if len(a) > 0 {
		fmt.Fprintf(w, "Profile A averages: HPMMAP vs THP %+.1f%%, vs HugeTLBfs %+.1f%%\n",
			100*MeanImprovement(a, HPMMAP, THP), 100*MeanImprovement(a, HPMMAP, HugeTLBfs))
	}
	if len(b) > 0 {
		fmt.Fprintf(w, "Profile B averages: HPMMAP vs THP %+.1f%%, vs HugeTLBfs %+.1f%%\n",
			100*MeanImprovement(b, HPMMAP, THP), 100*MeanImprovement(b, HPMMAP, HugeTLBfs))
	}
}

func filterPanels(panels []Fig7Panel, prof Profile) []Fig7Panel {
	var out []Fig7Panel
	for _, p := range panels {
		if p.Profile == prof {
			out = append(out, p)
		}
	}
	return out
}

// WriteFig8 renders the scaling study.
func WriteFig8(w io.Writer, panels []Fig8Panel) {
	for _, p := range panels {
		fmt.Fprintf(w, "=== Figure 8: %s, commodity profile %s ===\n", p.Bench, p.Profile)
		fmt.Fprintf(w, "%-22s", "Ranks")
		if len(p.Series) > 0 {
			for _, pt := range p.Series[0].Points {
				fmt.Fprintf(w, " %14d", pt.Ranks)
			}
		}
		fmt.Fprintln(w)
		for _, s := range p.Series {
			fmt.Fprintf(w, "%-22s", s.Kind.String())
			for _, pt := range s.Points {
				fmt.Fprintf(w, " %8.1f±%-5.1f", pt.MeanSec, pt.StdevSec)
			}
			fmt.Fprintln(w)
		}
		if imp := Fig8Improvement(p, 32); imp != 0 {
			fmt.Fprintf(w, "HPMMAP vs THP at 32 ranks: %+.1f%%\n", 100*imp)
		}
	}
}
