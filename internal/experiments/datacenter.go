package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hpmmap/internal/chaos"
	"hpmmap/internal/datacenter"
	"hpmmap/internal/kernel"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

// The datacenter study restates the paper's isolation claim at
// orchestration scale (ROADMAP item 2): one mixed-tenancy node runs a
// resident HPC victim on HPMMAP while a kubelet-style agent churns
// short-lived THP / HugeTLBfs / HPMMAP pods against per-zone hugepage
// budgets, with the chaos injector optionally storming the commodity
// side. The grid sweeps churn rate × chaos intensity; every cell
// tabulates per-class tail fault latency (p50/p99/p999 of the 2MB-slice
// first-touch cost) and the victim's runtime interference relative to
// the quiet cell. The paper's prediction carries over: the Linux-backed
// classes' tails stretch with churn and chaos while the HPMMAP class —
// faulting never, allocating from offlined pools — stays flat.

// DatacenterStudyOptions configures the datacenter churn study.
type DatacenterStudyOptions struct {
	// Bench is the resident HPC victim (default HPCCG, the
	// communication-lightest kernel — interference is attributable to
	// memory management, not the network).
	Bench string
	// Churns is the pod-arrival sweep axis in pods per simulated second
	// (default 0, 50, 200). 0 must come first: it is the interference
	// baseline.
	Churns []float64
	// Intensities is the chaos sweep axis (default 0, 0.75).
	Intensities []float64
	// Ranks is the victim's rank count (default 4).
	Ranks int
	// Runs per (churn, intensity) point (default 1).
	Runs  int
	Seed  uint64
	Scale Scale
	// Pod shape overrides; zero fields keep datacenter.DefaultConfig.
	PodBytes      uint64
	ResidentBytes uint64
	// Progress receives one line per completed cell (serialized sink).
	Progress func(string)
	Workers  int
	Context  context.Context
	Cache    *runner.Cache
	Obs      *runner.Observations
	// Audit attaches the invariant auditor to every cell's node.
	Audit bool
	// CellTimeout bounds one cell's wall clock (0 = none).
	CellTimeout time.Duration
	// Retries re-runs host-transient cell failures (cache I/O).
	Retries int
}

func (o *DatacenterStudyOptions) defaults() {
	if o.Bench == "" {
		o.Bench = "HPCCG"
	}
	if len(o.Churns) == 0 {
		o.Churns = []float64{0, 50, 200}
	}
	if len(o.Intensities) == 0 {
		o.Intensities = []float64{0, 0.75}
	}
	if o.Ranks == 0 {
		o.Ranks = 4
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0xdc7a
	}
}

// DatacenterClassStats is one tenant class's tail table in one cell.
type DatacenterClassStats struct {
	// Slices counts 2MB first-touch slices observed.
	Slices uint64 `json:"slices"`
	// P50/P99/P999 are log2-bucket upper bounds of the slice fault
	// service time, in cycles.
	P50  uint64 `json:"p50"`
	P99  uint64 `json:"p99"`
	P999 uint64 `json:"p999"`
	// MmapP50 is the median per-mmap system-call cost, in cycles.
	MmapP50 uint64 `json:"mmap_p50"`
}

// DatacenterCell is one (churn, intensity, run) cell, reduced to the
// values the study tables need (and caches).
type DatacenterCell struct {
	RuntimeSec float64                                     `json:"runtime_sec"`
	Classes    [datacenter.NumClasses]DatacenterClassStats `json:"classes"`
	Launched   uint64                                      `json:"launched"`
	Rejected   uint64                                      `json:"rejected"`
	Completed  uint64                                      `json:"completed"`
	OOMKilled  uint64                                      `json:"oom_killed"`
	// Barriers and DominantCause summarize the victim's barrier
	// critical-path attribution for the cell.
	Barriers      int              `json:"barriers"`
	DominantCause string           `json:"dominant_cause"`
	Metrics       metrics.Snapshot `json:"metrics,omitempty"`
}

// DatacenterPoint aggregates one (churn, intensity) grid point.
type DatacenterPoint struct {
	Churn     float64
	Intensity float64
	// Cells holds the point's runs in run order.
	Cells []DatacenterCell
	// MeanSec is the mean victim runtime; InterferencePct is its
	// increase relative to the quiet (churn 0, intensity 0) point.
	MeanSec         float64
	InterferencePct float64
}

// DatacenterStudy is the full grid.
type DatacenterStudy struct {
	Bench  string
	Ranks  int
	Points []DatacenterPoint
}

// datacenterVariant encodes the sweep coordinate into the cell Variant
// axis (and therefore the seed derivation and the cache key).
func datacenterVariant(churn, intensity float64) string {
	return fmt.Sprintf("c%g-i%g", churn, intensity)
}

// DatacenterStudyRun executes the churn × chaos grid on the
// mixed-tenancy configuration. Results are byte-identical at any worker
// count, cold or warm cache.
func DatacenterStudyRun(o DatacenterStudyOptions) (DatacenterStudy, error) {
	o.defaults()
	spec, ok := workload.ByName(o.Bench)
	if !ok {
		return DatacenterStudy{}, fmt.Errorf("experiments: unknown benchmark %q", o.Bench)
	}

	type cellMeta struct {
		churn     float64
		intensity float64
	}
	plan := runner.Plan{Name: "datacenter", Seed: o.Seed}
	var metas []cellMeta
	for _, churn := range o.Churns {
		for _, x := range o.Intensities {
			for run := 0; run < o.Runs; run++ {
				plan.Cells = append(plan.Cells, runner.Cell{
					Exp: "datacenter", Bench: o.Bench, Profile: ProfileNone.String(),
					Manager: Mixed.Key(), Variant: datacenterVariant(churn, x),
					Cores: o.Ranks, Run: run,
				})
				metas = append(metas, cellMeta{churn: churn, intensity: x})
			}
		}
	}

	o.Obs.ObserveCache(o.Cache)
	progress := func(e runner.Event) {
		if o.Progress == nil {
			return
		}
		msg := e.String()
		if dc, ok := e.Result.(DatacenterCell); ok {
			msg += fmt.Sprintf(": %.1f s, %d pods", dc.RuntimeSec, dc.Launched)
		}
		o.Progress(msg)
	}
	if o.Progress == nil {
		progress = nil
	}
	// Time-series sampling can't be reconstructed from a cached cell, so
	// a series-enabled study bypasses the cache (the fig7 pattern).
	useCache := !o.Obs.SeriesEnabled()
	clockHz := kernel.DellR415().ClockHz

	results, err := runner.Run(runner.Options{
		Workers:     o.Workers,
		Context:     o.Context,
		Progress:    progress,
		CellTimeout: o.CellTimeout,
		Retries:     o.Retries,
		Metrics:     o.Obs.PlanRegistry(),
		Ledger:      o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (DatacenterCell, error) {
		key := o.Cache.Key(plan.Name, cell, seed, float64(o.Scale))
		var dc DatacenterCell
		if useCache && o.Cache.Get(key, &dc) {
			if o.Obs == nil || len(dc.Metrics.Metrics) > 0 {
				o.Obs.LedgerSink().CacheHit(idx)
				o.Obs.Record(idx, dc.Metrics)
				return dc, nil
			}
			dc = DatacenterCell{}
		}
		if useCache && o.Cache != nil {
			o.Obs.LedgerSink().CacheMiss(idx)
		}
		reg, tr := o.Obs.Cell(idx, cell.String())
		dcCfg := datacenter.DefaultConfig()
		if metas[idx].churn > 0 {
			dcCfg.ChurnMeanPeriod = sim.Cycles(clockHz / metas[idx].churn)
		} else {
			dcCfg.ChurnMeanPeriod = 0
		}
		if o.PodBytes > 0 {
			dcCfg.PodBytes = o.PodBytes
		}
		if o.ResidentBytes > 0 {
			dcCfg.ResidentBytes = o.ResidentBytes
		}
		var inj *chaos.Injector
		if metas[idx].intensity > 0 {
			inj = chaos.New(chaos.DefaultConfig(metas[idx].intensity), seed)
		}
		attr := timeline.NewAttribution(o.Ranks)
		out, err := ExecuteSingleNode(SingleRun{
			Bench:       spec,
			Kind:        Mixed,
			Profile:     ProfileNone,
			Ranks:       o.Ranks,
			Seed:        seed,
			Scale:       o.Scale,
			Metrics:     reg,
			Tracer:      tr,
			Context:     ctx,
			Chaos:       inj,
			Audit:       o.Audit,
			Series:      o.Obs.Series(idx),
			Attribution: attr,
			Datacenter:  &dcCfg,
		})
		if err != nil {
			return DatacenterCell{}, err
		}
		dc.RuntimeSec = out.RuntimeSec
		if a := out.Datacenter; a != nil {
			dc.Launched = a.LaunchedTotal()
			dc.Rejected = a.Rejected
			dc.Completed = a.Completed
			dc.OOMKilled = a.OOMKilled
			for c := datacenter.Class(0); c < datacenter.NumClasses; c++ {
				dc.Classes[c] = DatacenterClassStats{
					Slices:  a.TouchHist[c].Count(),
					P50:     a.TouchHist[c].Quantile(0.50),
					P99:     a.TouchHist[c].Quantile(0.99),
					P999:    a.TouchHist[c].Quantile(0.999),
					MmapP50: a.MmapHist[c].Quantile(0.50),
				}
			}
		}
		sum := attr.Summarize()
		dc.Barriers = sum.Barriers
		if cause, ok := sum.DominantCause(); ok {
			dc.DominantCause = cause.String()
		}
		dc.Metrics = o.Obs.Snap(idx)
		if useCache {
			_ = o.Cache.Put(key, dc)
		}
		return dc, nil
	})
	if err != nil {
		return DatacenterStudy{}, fmt.Errorf("datacenter study: %w", err)
	}

	study := DatacenterStudy{Bench: o.Bench, Ranks: o.Ranks}
	i := 0
	var baseMean float64
	for _, churn := range o.Churns {
		for _, x := range o.Intensities {
			pt := DatacenterPoint{Churn: churn, Intensity: x}
			var sum float64
			for run := 0; run < o.Runs; run++ {
				pt.Cells = append(pt.Cells, results[i])
				sum += results[i].RuntimeSec
				i++
			}
			pt.MeanSec = sum / float64(o.Runs)
			if churn == 0 && x == 0 {
				baseMean = pt.MeanSec
			} else if baseMean > 0 {
				pt.InterferencePct = (pt.MeanSec - baseMean) / baseMean * 100
			}
			study.Points = append(study.Points, pt)
		}
	}
	return study, nil
}

// WriteDatacenterStudy renders the per-cell tail-latency and
// interference table. Deterministic.
func WriteDatacenterStudy(w io.Writer, s DatacenterStudy) {
	fmt.Fprintf(w, "=== Datacenter study: %s victim, %d ranks, mixed tenancy, churn × chaos ===\n", s.Bench, s.Ranks)
	for _, pt := range s.Points {
		fmt.Fprintf(w, "\n-- churn %g pods/s, chaos %.2f: runtime %.1f s", pt.Churn, pt.Intensity, pt.MeanSec)
		if !(pt.Churn == 0 && pt.Intensity == 0) {
			fmt.Fprintf(w, " (%+.1f%% vs quiet)", pt.InterferencePct)
		}
		fmt.Fprintln(w)
		for _, c := range pt.Cells {
			fmt.Fprintf(w, "   pods: %d launched, %d rejected, %d completed, %d oom-killed",
				c.Launched, c.Rejected, c.Completed, c.OOMKilled)
			if c.DominantCause != "" {
				fmt.Fprintf(w, "; dominant barrier cause: %s (%d barriers)", c.DominantCause, c.Barriers)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "   %-11s %8s %12s %12s %12s %10s\n", "class", "slices", "p50", "p99", "p999", "mmap p50")
			for cl := datacenter.Class(0); cl < datacenter.NumClasses; cl++ {
				st := c.Classes[cl]
				fmt.Fprintf(w, "   %-11s %8d %12d %12d %12d %10d\n",
					cl, st.Slices, st.P50, st.P99, st.P999, st.MmapP50)
			}
		}
	}
}

// WriteDatacenterCSV renders the study as one CSV row per (point, run,
// class) for downstream tooling. Deterministic.
func WriteDatacenterCSV(w io.Writer, s DatacenterStudy) error {
	if _, err := fmt.Fprintln(w, "churn_pods_per_sec,chaos_intensity,run,class,slices,p50_cycles,p99_cycles,p999_cycles,mmap_p50_cycles,runtime_sec,interference_pct,pods_launched,pods_rejected,pods_completed,pods_oom_killed"); err != nil {
		return err
	}
	for _, pt := range s.Points {
		for run, c := range pt.Cells {
			for cl := datacenter.Class(0); cl < datacenter.NumClasses; cl++ {
				st := c.Classes[cl]
				if _, err := fmt.Fprintf(w, "%g,%g,%d,%s,%d,%d,%d,%d,%d,%.3f,%.2f,%d,%d,%d,%d\n",
					pt.Churn, pt.Intensity, run, cl, st.Slices, st.P50, st.P99, st.P999, st.MmapP50,
					c.RuntimeSec, pt.InterferencePct, c.Launched, c.Rejected, c.Completed, c.OOMKilled); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
