package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hpmmap/internal/chaos"
	"hpmmap/internal/invariant"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/stats"
	"hpmmap/internal/workload"
)

// The contention-storm study extends the paper's Figure 4/5 argument
// into the failure regime: instead of a fixed commodity antagonist
// (profile A/B kernel builds), the deterministic chaos injector sweeps
// adversarial intensity from 0 (quiet machine) to 1 (pressure spikes,
// contiguity theft, swap exhaustion, page-cache storms, mm-lock storms,
// stragglers, all at full rate) for each memory manager. The paper's
// claim predicts the outcome: HPMMAP's isolated path stays flat while
// THP and HugeTLBfs collapse, because every chaos lever operates on
// Linux's memory-management state.
//
// The study doubles as the robustness proving ground for the runner's
// degradation machinery: it is the first experiment to run with
// ContinueOnError, per-cell timeouts and the invariant auditor, so a
// poisoned cell produces an annotated hole in the table plus a
// structured violation report instead of a dead grid.

// ChaosStudyOptions configures the contention-storm study.
type ChaosStudyOptions struct {
	// Bench is the measured application (default HPCCG, the paper's
	// communication-lightest kernel — degradation is attributable to
	// memory management, not the network).
	Bench string
	// Managers to sweep (default all three).
	Managers []ManagerKind
	// Intensities is the chaos sweep axis (default 0, 0.25, 0.5, 0.75, 1).
	Intensities []float64
	// Cores is the rank count per run (default 4).
	Cores int
	// Runs per (manager, intensity) point (default 3).
	Runs  int
	Seed  uint64
	Scale Scale
	// Progress receives one line per completed cell (serialized sink).
	Progress func(string)
	Workers  int
	Context  context.Context
	Cache    *runner.Cache
	Obs      *runner.Observations
	// Audit attaches the invariant auditor to every cell's node.
	Audit bool
	// ContinueOnError quarantines failed cells as annotated holes
	// instead of aborting the sweep (default on for this study — see
	// defaults()). Set DisableContinueOnError to get fail-fast.
	DisableContinueOnError bool
	// CellTimeout bounds one cell's wall clock (0 = none).
	CellTimeout time.Duration
	// Retries re-runs host-transient cell failures (cache I/O).
	Retries int
	// PoisonCell, when > 0, arms the chaos injector's InjectViolation
	// hook in that plan cell — the end-to-end drill for the containment
	// path. The zero value (and -1) poisons nothing; defaults() maps
	// 0 to -1 so an unset options struct never arms the drill.
	PoisonCell int
}

func (o *ChaosStudyOptions) defaults() {
	if o.Bench == "" {
		o.Bench = "HPCCG"
	}
	if len(o.Managers) == 0 {
		o.Managers = []ManagerKind{HPMMAP, THP, HugeTLBfs}
	}
	if len(o.Intensities) == 0 {
		o.Intensities = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0xc4a05
	}
	if o.PoisonCell == 0 {
		// The zero value means "not set": poisoning nothing is the safe
		// default. Callers who really want to poison cell 0 can't — pick
		// any other cell for the drill (the containment path is identical).
		o.PoisonCell = -1
	}
}

// ChaosPoint is one (manager, intensity) cell of the sweep.
type ChaosPoint struct {
	Intensity float64
	MeanSec   float64
	StdevSec  float64
	// Runs holds the per-run runtimes that completed; quarantined runs
	// are excluded (holes).
	Runs []float64
	// Failed counts quarantined runs at this point.
	Failed int
	// DegradationPct is the mean runtime increase relative to the same
	// manager's intensity-0 point (0 when the baseline is missing).
	DegradationPct float64
}

// ChaosSeries is one manager's degradation curve.
type ChaosSeries struct {
	Kind   ManagerKind
	Points []ChaosPoint
}

// ChaosCellFailure records one quarantined cell for the study report.
type ChaosCellFailure struct {
	Index int
	Label string
	Err   string
	// Violation is the structured invariant record, when the failure
	// carried one.
	Violation *invariant.Violation
}

// ChaosStudy is the study result: the degradation curves plus the
// structured failure report of any quarantined cells.
type ChaosStudy struct {
	Bench  string
	Cores  int
	Series []ChaosSeries
	// Failures lists quarantined cells in cell-index order (empty on a
	// clean run).
	Failures []ChaosCellFailure
}

// Report rolls the structured violations of the quarantined cells into
// a deterministic subsystem/check summary.
func (s ChaosStudy) Report() invariant.Report {
	var vs []*invariant.Violation
	for _, f := range s.Failures {
		if f.Violation != nil {
			vs = append(vs, f.Violation)
		}
	}
	return invariant.NewReport(vs)
}

// chaosCell is the cached/reduced unit of one run.
type chaosCell struct {
	RuntimeSec float64          `json:"runtime_sec"`
	Faults     uint64           `json:"faults"`
	Metrics    metrics.Snapshot `json:"metrics,omitempty"`
}

// intensityVariant encodes the sweep coordinate into the cell's Variant
// axis (and therefore the seed derivation and the cache key).
func intensityVariant(x float64) string { return fmt.Sprintf("i%g", x) }

// ChaosStudyRun executes the contention-storm study. With
// ContinueOnError (the default), failed cells become holes: the
// returned study is complete but its points may carry Failed counts and
// the Failures list is non-empty. A non-nil error is returned only for
// whole-study failures (context cancellation, or any cell error in
// fail-fast mode).
func ChaosStudyRun(o ChaosStudyOptions) (ChaosStudy, error) {
	o.defaults()
	spec, ok := workload.ByName(o.Bench)
	if !ok {
		return ChaosStudy{}, fmt.Errorf("experiments: unknown benchmark %q", o.Bench)
	}

	type cellMeta struct {
		kind      ManagerKind
		intensity float64
	}
	plan := runner.Plan{Name: "chaos", Seed: o.Seed}
	var metas []cellMeta
	for _, kind := range o.Managers {
		for _, x := range o.Intensities {
			for run := 0; run < o.Runs; run++ {
				plan.Cells = append(plan.Cells, runner.Cell{
					Exp: "chaos", Bench: o.Bench, Profile: ProfileNone.String(),
					Manager: kind.Key(), Variant: intensityVariant(x),
					Cores: o.Cores, Run: run,
				})
				metas = append(metas, cellMeta{kind: kind, intensity: x})
			}
		}
	}

	o.Obs.ObserveCache(o.Cache)
	progress := func(e runner.Event) {
		if o.Progress == nil {
			return
		}
		msg := e.String()
		if cc, ok := e.Result.(chaosCell); ok {
			msg += fmt.Sprintf(": %.1f s", cc.RuntimeSec)
		}
		o.Progress(msg)
	}
	if o.Progress == nil {
		progress = nil
	}

	results, err := runner.Run(runner.Options{
		Workers:         o.Workers,
		Context:         o.Context,
		Progress:        progress,
		ContinueOnError: !o.DisableContinueOnError,
		CellTimeout:     o.CellTimeout,
		Retries:         o.Retries,
		Metrics:         o.Obs.PlanRegistry(),
		Ledger:          o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (chaosCell, error) {
		poisoned := idx == o.PoisonCell
		key := o.Cache.Key(plan.Name, cell, seed, float64(o.Scale))
		var cc chaosCell
		// Poisoned cells never consult or populate the cache: the drill
		// must actually run, and a deliberate failure must not shadow a
		// real result.
		if !poisoned && o.Cache.Get(key, &cc) {
			if o.Obs == nil || len(cc.Metrics.Metrics) > 0 {
				o.Obs.LedgerSink().CacheHit(idx)
				o.Obs.Record(idx, cc.Metrics)
				return cc, nil
			}
			cc = chaosCell{}
		}
		if !poisoned && o.Cache != nil {
			o.Obs.LedgerSink().CacheMiss(idx)
		}
		reg, tr := o.Obs.Cell(idx, cell.String())
		cfg := chaos.DefaultConfig(metas[idx].intensity)
		cfg.InjectViolation = poisoned
		inj := chaos.New(cfg, seed)
		out, err := ExecuteSingleNode(SingleRun{
			Bench:   spec,
			Kind:    metas[idx].kind,
			Profile: ProfileNone,
			Ranks:   o.Cores,
			Seed:    seed,
			Scale:   o.Scale,
			Metrics: reg,
			Tracer:  tr,
			Context: ctx,
			Chaos:   inj,
			Audit:   o.Audit,
		})
		if err != nil {
			return chaosCell{}, err
		}
		cc.RuntimeSec = out.RuntimeSec
		for _, rr := range out.Result.Ranks {
			cc.Faults += rr.Faults.TotalFaults()
		}
		cc.Metrics = o.Obs.Snap(idx)
		if !poisoned {
			_ = o.Cache.Put(key, cc)
		}
		return cc, nil
	})

	study := ChaosStudy{Bench: o.Bench, Cores: o.Cores}
	failed := map[int]bool{}
	if err != nil {
		ge, ok := runner.AsGridError(err)
		if !ok {
			return ChaosStudy{}, fmt.Errorf("chaos study: %w", err)
		}
		for _, f := range ge.Failures {
			failed[f.Index] = true
			cf := ChaosCellFailure{Index: f.Index, Label: f.Cell.String(), Err: f.Err.Error()}
			if v, ok := invariant.As(f.Err); ok {
				cf.Violation = v
			}
			study.Failures = append(study.Failures, cf)
		}
	}

	// Reduce in declaration order; failed cells are holes.
	i := 0
	for _, kind := range o.Managers {
		series := ChaosSeries{Kind: kind}
		var baseMean float64
		for xi, x := range o.Intensities {
			var sample stats.Sample
			pt := ChaosPoint{Intensity: x}
			for run := 0; run < o.Runs; run++ {
				if failed[i] {
					pt.Failed++
					i++
					continue
				}
				cc := results[i]
				i++
				sample.Add(cc.RuntimeSec)
				pt.Runs = append(pt.Runs, cc.RuntimeSec)
			}
			pt.MeanSec = sample.Mean()
			pt.StdevSec = sample.Stdev()
			if xi == 0 {
				baseMean = pt.MeanSec
			} else if baseMean > 0 && len(pt.Runs) > 0 {
				pt.DegradationPct = (pt.MeanSec - baseMean) / baseMean * 100
			}
			series.Points = append(series.Points, pt)
		}
		study.Series = append(study.Series, series)
	}
	return study, nil
}

// WriteChaosStudy renders the degradation table with annotated holes
// and, when cells were quarantined, the structured failure report.
func WriteChaosStudy(w io.Writer, s ChaosStudy) {
	fmt.Fprintf(w, "=== Contention-storm study: %s, %d ranks, chaos intensity sweep ===\n", s.Bench, s.Cores)
	fmt.Fprintf(w, "%-18s", "intensity")
	if len(s.Series) > 0 {
		for _, pt := range s.Series[0].Points {
			fmt.Fprintf(w, " %14s", fmt.Sprintf("%.2f", pt.Intensity))
		}
	}
	fmt.Fprintln(w)
	for _, series := range s.Series {
		fmt.Fprintf(w, "%-18s", series.Kind.String())
		for _, pt := range series.Points {
			cellStr := "—" // all runs of this point quarantined
			if len(pt.Runs) > 0 {
				cellStr = fmt.Sprintf("%.1fs", pt.MeanSec)
				if pt.Intensity > 0 {
					cellStr += fmt.Sprintf(" %+.0f%%", pt.DegradationPct)
				}
				if pt.Failed > 0 {
					cellStr += fmt.Sprintf(" [%d hole]", pt.Failed)
				}
			}
			fmt.Fprintf(w, " %14s", cellStr)
		}
		fmt.Fprintln(w)
	}
	if len(s.Failures) > 0 {
		fmt.Fprintf(w, "\nquarantined cells (%d):\n", len(s.Failures))
		for _, f := range s.Failures {
			detail := f.Err
			if f.Violation != nil {
				detail = f.Violation.Error()
			}
			fmt.Fprintf(w, "  #%d %s: %s\n", f.Index, f.Label, firstLine(detail))
		}
		fmt.Fprintf(w, "\n%s\n", s.Report())
	}
}

// firstLine truncates multi-line error text (panic stacks) to its first
// line for the table report.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
