package experiments

import (
	"context"
	"fmt"

	"hpmmap/internal/cluster"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/sim"
	"hpmmap/internal/stats"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

// clusterWorkFactor sizes the per-rank input for the 8-node study. The
// paper maximizes memory utilization on the 24GB nodes (20GB offlined);
// LAMMPS runs a smaller production input (its Figure 8 runtimes are
// ~130–150s).
func clusterWorkFactor(bench string) float64 {
	switch bench {
	case "HPCCG":
		return 3.3
	case "miniFE":
		return 3.2
	case "LAMMPS":
		return 1.55
	}
	return 3.0
}

// ClusterRun describes one run of the scaling study.
type ClusterRun struct {
	Bench   workload.AppSpec
	Kind    ManagerKind
	Profile Profile // C or D
	Ranks   int     // 4, 8, 16 or 32; 4 per node
	Seed    uint64
	Scale   Scale
	// Metrics, when non-nil, receives the run's counters/gauges/
	// histograms (see OBSERVABILITY.md). Per-node subsystems register
	// additively; engine-level sim_* metrics register once.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives Chrome trace events keyed by
	// simulated cycles.
	Tracer *metrics.ChromeTracer
	// Context, when non-nil, cancels the simulation mid-run.
	Context context.Context
	// Series, when non-nil, samples every node's standard probe set at a
	// quarter-second simulated cadence. Unlike the single-node path
	// (which piggybacks on a pre-existing diagnostic ticker), the cluster
	// rig has no such ticker, so attaching a Series schedules one extra
	// periodic event stream — sim_events_total changes, everything else
	// is byte-identical (the -audit precedent).
	Series *timeline.Series
	// Attribution, when non-nil, attributes barrier lateness per rank,
	// including the communication model's nominal cost and signed jitter
	// delta. Pure accounting; no events, no PRNG draws.
	Attribution *timeline.Attribution
}

// ExecuteCluster performs one multi-node run: ranks/4 nodes, 4 app cores
// per node (2 per NUMA zone), the per-node commodity profile, and the
// 1GbE BSP communication model.
func ExecuteCluster(rs ClusterRun) (RunOutcome, error) {
	if rs.Scale == 0 {
		rs.Scale = 1
	}
	const ranksPerNode = 4
	nodes := rs.Ranks / ranksPerNode
	if nodes == 0 {
		nodes = 1
	}
	if rs.Ranks%ranksPerNode != 0 {
		return RunOutcome{}, fmt.Errorf("experiments: ranks %d not a multiple of %d", rs.Ranks, ranksPerNode)
	}
	cr, err := newClusterRig(nodes, rs.Kind, rs.Seed, rs.Scale)
	if err != nil {
		return RunOutcome{}, err
	}
	rs.Tracer.SetClock(cr.cl.Nodes[0].Config().ClockHz)
	for _, rg := range cr.rigs {
		rg.observe(rs.Metrics, rs.Tracer)
	}
	cr.cl.Observe(rs.Metrics)
	observeEngine(rs.Metrics, cr.eng)
	if rs.Series != nil {
		for i, rg := range cr.rigs {
			wireSeries(rs.Series, i, rg)
		}
		rs.Series.Observe(rs.Metrics, rs.Tracer)
		sampler := cr.eng.NewTicker(sim.Cycles(cr.cl.Nodes[0].Config().ClockHz/4), func() {
			rs.Series.Sample(uint64(cr.eng.Now()))
		})
		defer sampler.Stop()
	}
	rs.Attribution.Observe(rs.Metrics)
	if rs.Attribution != nil {
		cr.cl.SetAccounts(rs.Attribution.Rank)
	}
	// 2 ranks per NUMA zone on the 8-core Xeons: cores 0,1 (zone 0) and
	// 4,5 (zone 1).
	perZone := cr.cl.Nodes[0].NumCores() / cr.cl.Nodes[0].Config().NumaZones
	cores := []int{0, 1, perZone, perZone + 1}
	placement, err := cluster.BlockPlacement(rs.Ranks, ranksPerNode, cores)
	if err != nil {
		return RunOutcome{}, err
	}
	spec := scaleSpec(rs.Bench, rs.Scale)

	// Start the per-node commodity profile.
	var builds []*workload.Build
	for i, node := range cr.cl.Nodes {
		builds = append(builds, startProfile(node, rs.Profile, ranksPerNode, rs.Seed+uint64(i)*31337)...)
	}

	placements := cr.cl.Placements(placement, func(nodeIdx int) workload.Launcher {
		return cr.rigs[nodeIdx].launcher()
	})
	var res workload.Result
	done := false
	_, err = workload.Start(cr.eng, workload.Options{
		Spec:        spec,
		Ranks:       placements,
		CommDelay:   cr.cl.CommDelay(spec, placement),
		Metrics:     rs.Metrics,
		Tracer:      rs.Tracer,
		Attribution: rs.Attribution,
	}, func(got workload.Result) {
		res = got
		for _, b := range builds {
			b.Stop()
		}
		done = true
	})
	if err != nil {
		return RunOutcome{}, err
	}
	if err := runToCompletion(rs.Context, cr.eng, &done); err != nil {
		return RunOutcome{}, err
	}
	if res.Err != nil {
		return RunOutcome{}, res.Err
	}
	return RunOutcome{
		RuntimeSec: cr.cl.Nodes[0].Config().Seconds(float64(res.Runtime)),
		Result:     res,
	}, nil
}

// Fig8Options configures the scaling study.
type Fig8Options struct {
	Benches  []string  // default: HPCCG, miniFE, LAMMPS
	Profiles []Profile // default: C, D
	Managers []ManagerKind
	Ranks    []int // default: 4, 8, 16, 32
	Runs     int   // default: 10
	Seed     uint64
	Scale    Scale
	// Progress receives one line per completed cell, from the runner's
	// serialized sink: calls never overlap even at Workers > 1, so the
	// callback may write to unsynchronized state.
	Progress func(string)
	// Workers bounds the parallel worker pool; <= 0 selects
	// runtime.NumCPU(). Panels are byte-identical at any worker count.
	Workers int
	// Context, when non-nil, cancels the study.
	Context context.Context
	// Cache, when non-nil, memoizes per-cell results (see Fig7Options).
	Cache *runner.Cache
	// Obs, when non-nil, collects per-cell metric snapshots and Chrome
	// trace events (see Fig7Options.Obs and OBSERVABILITY.md).
	Obs *runner.Observations
}

func (o *Fig8Options) defaults() {
	if len(o.Benches) == 0 {
		o.Benches = []string{"HPCCG", "miniFE", "LAMMPS"}
	}
	if len(o.Profiles) == 0 {
		o.Profiles = []Profile{ProfileC, ProfileD}
	}
	if len(o.Managers) == 0 {
		// HugeTLBfs was unavailable in the cluster's kernel config.
		o.Managers = []ManagerKind{HPMMAP, THP}
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{4, 8, 16, 32}
	}
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0x5ca1e
	}
}

// Fig8Point is one (ranks, manager) cell.
type Fig8Point struct {
	Ranks    int
	MeanSec  float64
	StdevSec float64
	Runs     []float64
}

// Fig8Series is one manager's curve.
type Fig8Series struct {
	Kind   ManagerKind
	Points []Fig8Point
}

// Fig8Panel is one subplot: a benchmark under profile C or D.
type Fig8Panel struct {
	Bench   string
	Profile Profile
	Series  []Fig8Series
}

// Fig8 runs the 8-node scaling study of the paper's Figure 8: HPCCG,
// miniFE and LAMMPS at 4–32 ranks (4 per node) with per-node kernel-build
// interference, HPMMAP versus THP. The grid executes as one runner plan:
// independent cells on a bounded worker pool with coordinate-derived
// seeds, byte-identical at any Workers setting.
func Fig8(o Fig8Options) ([]Fig8Panel, error) {
	o.defaults()
	specs := make(map[string]workload.AppSpec, len(o.Benches))
	for _, bench := range o.Benches {
		base, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
		}
		specs[bench] = base.ScaleWork(clusterWorkFactor(bench))
	}

	type cellMeta struct {
		prof Profile
		kind ManagerKind
	}
	plan := runner.Plan{Name: "fig8", Seed: o.Seed}
	var metas []cellMeta
	for _, bench := range o.Benches {
		for _, prof := range o.Profiles {
			for _, kind := range o.Managers {
				for _, ranks := range o.Ranks {
					for run := 0; run < o.Runs; run++ {
						plan.Cells = append(plan.Cells, runner.Cell{
							Exp: "fig8", Bench: bench, Profile: prof.String(),
							Manager: kind.Key(), Cores: ranks, Run: run,
						})
						metas = append(metas, cellMeta{prof: prof, kind: kind})
					}
				}
			}
		}
	}

	results, err := runner.Run(runner.Options{
		Workers:  o.Workers,
		Context:  o.Context,
		Progress: runtimeProgress(o.Progress),
		Ledger:   o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (fig7Cell, error) {
		key := o.Cache.Key(plan.Name, cell, seed, float64(o.Scale))
		var cc fig7Cell
		// Series-enabled runs bypass the cache both ways (see Fig7).
		useCache := !o.Obs.SeriesEnabled()
		if useCache && o.Cache.Get(key, &cc) {
			// Pre-observability cache entries lack the snapshot:
			// re-simulate so it can be captured (see Fig7).
			if o.Obs == nil || len(cc.Metrics.Metrics) > 0 {
				o.Obs.LedgerSink().CacheHit(idx)
				o.Obs.Record(idx, cc.Metrics)
				return cc, nil
			}
			cc = fig7Cell{}
		}
		if useCache && o.Cache != nil {
			o.Obs.LedgerSink().CacheMiss(idx)
		}
		reg, tr := o.Obs.Cell(idx, cell.String())
		out, err := ExecuteCluster(ClusterRun{
			Bench:   specs[cell.Bench],
			Kind:    metas[idx].kind,
			Profile: metas[idx].prof,
			Ranks:   cell.Cores,
			Seed:    seed,
			Scale:   o.Scale,
			Metrics: reg,
			Tracer:  tr,
			Context: ctx,
			Series:  o.Obs.Series(idx),
		})
		if err != nil {
			return fig7Cell{}, err
		}
		cc.RuntimeSec = out.RuntimeSec
		cc.Metrics = o.Obs.Snap(idx)
		if useCache {
			_ = o.Cache.Put(key, cc)
		}
		return cc, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}

	var panels []Fig8Panel
	i := 0
	for _, bench := range o.Benches {
		for _, prof := range o.Profiles {
			panel := Fig8Panel{Bench: bench, Profile: prof}
			for _, kind := range o.Managers {
				series := Fig8Series{Kind: kind}
				for _, ranks := range o.Ranks {
					var sample stats.Sample
					var runs []float64
					for run := 0; run < o.Runs; run++ {
						cc := results[i]
						i++
						sample.Add(cc.RuntimeSec)
						runs = append(runs, cc.RuntimeSec)
					}
					series.Points = append(series.Points, Fig8Point{
						Ranks:    ranks,
						MeanSec:  sample.Mean(),
						StdevSec: sample.Stdev(),
						Runs:     runs,
					})
				}
				panel.Series = append(panel.Series, series)
			}
			panels = append(panels, panel)
		}
	}
	return panels, nil
}

// Fig8Improvement returns HPMMAP's relative gain over THP at the given
// rank count for one panel.
func Fig8Improvement(p Fig8Panel, ranks int) float64 {
	var hp, th float64
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Ranks != ranks {
				continue
			}
			switch s.Kind {
			case HPMMAP:
				hp = pt.MeanSec
			case THP:
				th = pt.MeanSec
			}
		}
	}
	return stats.RelativeImprovement(hp, th)
}
