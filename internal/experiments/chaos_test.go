package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hpmmap/internal/runner"
)

func tinyChaosOpts() ChaosStudyOptions {
	return ChaosStudyOptions{
		Bench:       "HPCCG",
		Managers:    []ManagerKind{HPMMAP, THP},
		Intensities: []float64{0, 1},
		Cores:       2,
		Runs:        1,
		Seed:        99,
		Scale:       0.1,
	}
}

func TestChaosStudySmall(t *testing.T) {
	s, err := ChaosStudyRun(tinyChaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Failures) != 0 {
		t.Fatalf("clean study reported failures: %+v", s.Failures)
	}
	if len(s.Series) != 2 || len(s.Series[0].Points) != 2 {
		t.Fatalf("unexpected study shape: %+v", s)
	}
	for _, series := range s.Series {
		for _, pt := range series.Points {
			if pt.MeanSec <= 0 {
				t.Fatalf("%v intensity %.2f: non-positive mean %f", series.Kind, pt.Intensity, pt.MeanSec)
			}
		}
	}
	var buf bytes.Buffer
	WriteChaosStudy(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "Contention-storm study") || !strings.Contains(out, "HPMMAP") {
		t.Fatalf("study output missing expected sections:\n%s", out)
	}
	if strings.Contains(out, "quarantined") {
		t.Fatalf("clean study printed a quarantine block:\n%s", out)
	}
}

func TestChaosStudyWorkerCountInvariance(t *testing.T) {
	render := func(workers int) (string, string) {
		o := tinyChaosOpts()
		o.Workers = workers
		o.Obs = runner.NewObservations(0)
		s, err := ChaosStudyRun(o)
		if err != nil {
			t.Fatal(err)
		}
		var tbl, met bytes.Buffer
		WriteChaosStudy(&tbl, s)
		if err := o.Obs.Merged().WriteText(&met); err != nil {
			t.Fatal(err)
		}
		return tbl.String(), met.String()
	}
	tbl1, met1 := render(1)
	tbl4, met4 := render(4)
	if tbl1 != tbl4 {
		t.Fatalf("study table differs between Workers=1 and Workers=4:\n--- w1:\n%s\n--- w4:\n%s", tbl1, tbl4)
	}
	if met1 != met4 {
		t.Fatal("merged metrics differ between Workers=1 and Workers=4")
	}
}

func TestChaosStudyPoisonedCellQuarantined(t *testing.T) {
	o := tinyChaosOpts()
	o.PoisonCell = 1 // HPMMAP @ intensity 1
	o.Audit = true
	s, err := ChaosStudyRun(o)
	if err != nil {
		t.Fatalf("ContinueOnError study returned a hard error: %v", err)
	}
	if len(s.Failures) != 1 {
		t.Fatalf("want exactly one quarantined cell, got %d: %+v", len(s.Failures), s.Failures)
	}
	f := s.Failures[0]
	if f.Index != 1 {
		t.Fatalf("wrong cell quarantined: %+v", f)
	}
	if f.Violation == nil || f.Violation.Check != "chaos_injected" || f.Violation.Subsystem != "chaos" {
		t.Fatalf("structured violation lost: %+v", f)
	}
	if f.Violation.SimCycles == 0 {
		t.Fatal("violation not annotated with simulated time")
	}
	// The poisoned point is a hole; the others survived.
	var holes, goodPoints int
	for _, series := range s.Series {
		for _, pt := range series.Points {
			holes += pt.Failed
			if len(pt.Runs) > 0 {
				goodPoints++
			}
		}
	}
	if holes != 1 || goodPoints != 3 {
		t.Fatalf("want 1 hole and 3 surviving points, got %d/%d", holes, goodPoints)
	}
	var buf bytes.Buffer
	WriteChaosStudy(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "quarantined cells (1)") {
		t.Fatalf("missing quarantine block:\n%s", out)
	}
	if !strings.Contains(out, "—") {
		t.Fatalf("missing annotated hole in table:\n%s", out)
	}
	if !strings.Contains(out, "chaos/chaos_injected") {
		t.Fatalf("missing invariant report group:\n%s", out)
	}
}

func TestChaosStudyFailFast(t *testing.T) {
	o := tinyChaosOpts()
	o.PoisonCell = 2 // THP @ intensity 0
	o.DisableContinueOnError = true
	_, err := ChaosStudyRun(o)
	if err == nil {
		t.Fatal("fail-fast poisoned study returned nil error")
	}
	if _, ok := runner.AsGridError(err); ok {
		t.Fatal("fail-fast mode returned a GridError")
	}
}

func TestChaosStudyAuditCleanRun(t *testing.T) {
	o := tinyChaosOpts()
	o.Intensities = []float64{1}
	o.Managers = []ManagerKind{HPMMAP}
	o.Audit = true
	o.Obs = runner.NewObservations(0)
	s, err := ChaosStudyRun(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Failures) != 0 {
		t.Fatalf("audit found violations on a healthy machine under chaos: %+v", s.Failures)
	}
	snap := o.Obs.Merged()
	if snap.CounterValue("invariant_checks_total") == 0 {
		t.Fatal("auditor ran no checks")
	}
	if got := snap.CounterValue("invariant_violations_total"); got != 0 {
		t.Fatalf("auditor counted %d violations on a healthy run", got)
	}
	if snap.CounterValue("chaos_events_total") == 0 {
		t.Fatal("no chaos events recorded at intensity 1")
	}
}
