package experiments

import (
	"context"
	"fmt"

	"hpmmap/internal/runner"
	"hpmmap/internal/sim"
	"hpmmap/internal/workload"
)

// Noise-injection study, after Ferreira/Bridges/Brightwell (SC'08), the
// methodology behind the paper's OS-noise argument: inject synthetic
// detours of a fixed duration into ranks of a bulk-synchronous
// application and measure how the slowdown amplifies with rank count.
// khugepaged's unsynchronized merges are exactly such a noise source;
// this study isolates the amplification mechanism from the memory system
// by running under HPMMAP (no faults, no merges) and injecting noise
// explicitly.

// NoisePoint is one rank count's measurement.
type NoisePoint struct {
	Ranks int
	// BaseSec is the noise-free runtime; NoisySec with injection.
	BaseSec, NoisySec float64
	// SlowdownSec is the absolute cost of the injected noise.
	SlowdownSec float64
	// Amplification is SlowdownSec divided by the expected single-rank
	// noise cost — 1.0 means no amplification; the BSP bound for
	// per-iteration Bernoulli noise at probability p approaches
	// (1-(1-p)^ranks)/p as ranks grow.
	Amplification float64
}

// NoiseStudyOptions configures the injection.
type NoiseStudyOptions struct {
	// Prob is the per-rank, per-iteration probability of a noise event.
	Prob float64
	// DurationCycles is the detour length (the paper's merges hold the mm
	// lock for ~1–3M cycles).
	DurationCycles sim.Cycles
	RankCounts     []int
	Seed           uint64
	Scale          Scale
	// Workers bounds the worker pool running the study's cells in
	// parallel; <= 0 selects runtime.NumCPU().
	Workers int
	// Context, when non-nil, cancels the study.
	Context context.Context
	// Progress receives one line per completed cell from the runner's
	// serialized sink (calls never overlap).
	Progress func(string)
}

func (o *NoiseStudyOptions) defaults() {
	if o.Prob == 0 {
		o.Prob = 0.15
	}
	if o.DurationCycles == 0 {
		// Default detours sit well above the scheduler's natural jitter,
		// like the coarse noise settings of the SC'08 study (noise below
		// the natural iteration imbalance is absorbed — also measurable
		// here by passing a smaller duration).
		o.DurationCycles = 150_000_000
	}
	if len(o.RankCounts) == 0 {
		o.RankCounts = []int{1, 2, 4, 8}
	}
	if o.Seed == 0 {
		o.Seed = 0x4015e
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// noiseVariants are the study's two conditions per rank count.
var noiseVariants = []string{"base", "noisy"}

// NoiseStudy measures BSP noise amplification on the single-node testbed.
// The rank-count × {base, noisy} grid executes as one runner plan. The
// base and noisy cells of a rank count share one engine seed (derived
// from the variant-less coordinates) so they differ only in the injected
// detours; the noise stream itself is seeded from the noisy cell's own
// coordinate-derived seed.
func NoiseStudy(o NoiseStudyOptions) ([]NoisePoint, error) {
	o.defaults()
	spec := scaleSpec(workload.HPCCG(), o.Scale)
	plan := runner.Plan{Name: "noise", Seed: o.Seed}
	for _, ranks := range o.RankCounts {
		for _, variant := range noiseVariants {
			plan.Cells = append(plan.Cells, runner.Cell{
				Exp: "noise", Bench: "HPCCG", Manager: HPMMAP.Key(),
				Variant: variant, Cores: ranks,
			})
		}
	}
	secs, err := runner.Run(runner.Options{
		Workers:  o.Workers,
		Context:  o.Context,
		Progress: runtimeProgress(o.Progress),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (float64, error) {
		// Both variants of a rank count boot the same engine stream.
		engineCell := cell
		engineCell.Variant = ""
		engineSeed := engineCell.Seed(o.Seed)
		var noise func(iter, rank int) sim.Cycles
		if cell.Variant == "noisy" {
			rnd := sim.NewRand(seed) // the noisy cell's own substream
			noise = func(iter, rank int) sim.Cycles {
				if rnd.Bool(o.Prob) {
					return o.DurationCycles
				}
				return 0
			}
		}
		return noiseRun(ctx, spec, cell.Cores, engineSeed, o.Scale, noise)
	})
	if err != nil {
		return nil, fmt.Errorf("noise: %w", err)
	}

	var out []NoisePoint
	i := 0
	for _, ranks := range o.RankCounts {
		base, noisy := secs[i], secs[i+1]
		i += 2
		slow := noisy - base
		expected := o.Prob * float64(spec.Iterations) * float64(o.DurationCycles) / 2.2e9
		amp := 0.0
		if expected > 0 {
			amp = slow / expected
		}
		out = append(out, NoisePoint{
			Ranks: ranks, BaseSec: base, NoisySec: noisy,
			SlowdownSec: slow, Amplification: amp,
		})
	}
	return out, nil
}

// noiseRun executes one HPMMAP-managed run with an optional per-iteration
// noise hook.
func noiseRun(ctx context.Context, spec workload.AppSpec, ranks int, seed uint64, sc Scale, noise func(iter, rank int) sim.Cycles) (float64, error) {
	rig, err := newRig(dellMachine(), HPMMAP, seed, false, sc)
	if err != nil {
		return 0, err
	}
	cores, err := pinCores(rig.node, ranks)
	if err != nil {
		return 0, err
	}
	var placements []workload.RankPlacement
	for _, c := range cores {
		placements = append(placements, workload.RankPlacement{Node: rig.node, Core: c, Launch: rig.launcher()})
	}
	var res workload.Result
	done := false
	_, err = workload.Start(rig.eng, workload.Options{
		Spec:      spec,
		Ranks:     placements,
		CommDelay: noise,
	}, func(got workload.Result) { res = got; done = true })
	if err != nil {
		return 0, err
	}
	if err := runToCompletion(ctx, rig.eng, &done); err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	return rig.node.Config().Seconds(float64(res.Runtime)), nil
}

// WriteNoiseStudy renders the study.
func WriteNoiseStudy(points []NoisePoint) string {
	s := fmt.Sprintf("%6s %12s %12s %12s %14s\n", "ranks", "base (s)", "noisy (s)", "cost (s)", "amplification")
	for _, p := range points {
		s += fmt.Sprintf("%6d %12.1f %12.1f %12.1f %13.2fx\n",
			p.Ranks, p.BaseSec, p.NoisySec, p.SlowdownSec, p.Amplification)
	}
	return s
}
