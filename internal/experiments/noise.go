package experiments

import (
	"fmt"

	"hpmmap/internal/sim"
	"hpmmap/internal/workload"
)

// Noise-injection study, after Ferreira/Bridges/Brightwell (SC'08), the
// methodology behind the paper's OS-noise argument: inject synthetic
// detours of a fixed duration into ranks of a bulk-synchronous
// application and measure how the slowdown amplifies with rank count.
// khugepaged's unsynchronized merges are exactly such a noise source;
// this study isolates the amplification mechanism from the memory system
// by running under HPMMAP (no faults, no merges) and injecting noise
// explicitly.

// NoisePoint is one rank count's measurement.
type NoisePoint struct {
	Ranks int
	// BaseSec is the noise-free runtime; NoisySec with injection.
	BaseSec, NoisySec float64
	// SlowdownSec is the absolute cost of the injected noise.
	SlowdownSec float64
	// Amplification is SlowdownSec divided by the expected single-rank
	// noise cost — 1.0 means no amplification; the BSP bound for
	// per-iteration Bernoulli noise at probability p approaches
	// (1-(1-p)^ranks)/p as ranks grow.
	Amplification float64
}

// NoiseStudyOptions configures the injection.
type NoiseStudyOptions struct {
	// Prob is the per-rank, per-iteration probability of a noise event.
	Prob float64
	// DurationCycles is the detour length (the paper's merges hold the mm
	// lock for ~1–3M cycles).
	DurationCycles sim.Cycles
	RankCounts     []int
	Seed           uint64
	Scale          Scale
}

func (o *NoiseStudyOptions) defaults() {
	if o.Prob == 0 {
		o.Prob = 0.15
	}
	if o.DurationCycles == 0 {
		// Default detours sit well above the scheduler's natural jitter,
		// like the coarse noise settings of the SC'08 study (noise below
		// the natural iteration imbalance is absorbed — also measurable
		// here by passing a smaller duration).
		o.DurationCycles = 150_000_000
	}
	if len(o.RankCounts) == 0 {
		o.RankCounts = []int{1, 2, 4, 8}
	}
	if o.Seed == 0 {
		o.Seed = 0x4015e
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// NoiseStudy measures BSP noise amplification on the single-node testbed.
func NoiseStudy(o NoiseStudyOptions) ([]NoisePoint, error) {
	o.defaults()
	spec := scaleSpec(workload.HPCCG(), o.Scale)
	var out []NoisePoint
	for _, ranks := range o.RankCounts {
		base, err := noiseRun(spec, ranks, o.Seed, o.Scale, nil)
		if err != nil {
			return nil, err
		}
		rnd := sim.NewRand(o.Seed * 31)
		noisy, err := noiseRun(spec, ranks, o.Seed, o.Scale, func(iter, rank int) sim.Cycles {
			if rnd.Bool(o.Prob) {
				return o.DurationCycles
			}
			return 0
		})
		if err != nil {
			return nil, err
		}
		slow := noisy - base
		expected := o.Prob * float64(spec.Iterations) * float64(o.DurationCycles) / 2.2e9
		amp := 0.0
		if expected > 0 {
			amp = slow / expected
		}
		out = append(out, NoisePoint{
			Ranks: ranks, BaseSec: base, NoisySec: noisy,
			SlowdownSec: slow, Amplification: amp,
		})
	}
	return out, nil
}

// noiseRun executes one HPMMAP-managed run with an optional per-iteration
// noise hook.
func noiseRun(spec workload.AppSpec, ranks int, seed uint64, sc Scale, noise func(iter, rank int) sim.Cycles) (float64, error) {
	rig, err := newRig(dellMachine(), HPMMAP, seed, false, sc)
	if err != nil {
		return 0, err
	}
	cores, err := pinCores(rig.node, ranks)
	if err != nil {
		return 0, err
	}
	var placements []workload.RankPlacement
	for _, c := range cores {
		placements = append(placements, workload.RankPlacement{Node: rig.node, Core: c, Launch: rig.launcher()})
	}
	var res workload.Result
	done := false
	_, err = workload.Start(rig.eng, workload.Options{
		Spec:      spec,
		Ranks:     placements,
		CommDelay: noise,
	}, func(got workload.Result) { res = got; done = true })
	if err != nil {
		return 0, err
	}
	if err := runToCompletion(rig.eng, &done); err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	return rig.node.Config().Seconds(float64(res.Runtime)), nil
}

// WriteNoiseStudy renders the study.
func WriteNoiseStudy(points []NoisePoint) string {
	s := fmt.Sprintf("%6s %12s %12s %12s %14s\n", "ranks", "base (s)", "noisy (s)", "cost (s)", "amplification")
	for _, p := range points {
		s += fmt.Sprintf("%6d %12.1f %12.1f %12.1f %13.2fx\n",
			p.Ranks, p.BaseSec, p.NoisySec, p.SlowdownSec, p.Amplification)
	}
	return s
}
