package experiments

import (
	"strings"
	"testing"

	"hpmmap/internal/fault"
	"hpmmap/internal/sim"
	"hpmmap/internal/trace"
)

func fakeStudy() FaultStudy {
	mk := func(loaded bool) FaultStudyRow {
		rec := trace.NewRecorder()
		rec.Record(fault.Record{At: 1, Cost: 2000, Kind: fault.KindSmall})
		rec.Record(fault.Record{At: 2, Cost: 400000, Kind: fault.KindLarge})
		return FaultStudyRow{Loaded: loaded, Summaries: rec.Summarize(), Recorder: rec}
	}
	return FaultStudy{Bench: "miniMD", Kind: THP, Rows: []FaultStudyRow{mk(false), mk(true)}}
}

func TestWriteFaultStudy(t *testing.T) {
	var b strings.Builder
	WriteFaultStudy(&b, fakeStudy())
	out := b.String()
	for _, want := range []string{"miniMD", "Linux (THP)", "small", "large", "No", "Yes", "2000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTimelines(t *testing.T) {
	rec := trace.NewRecorder()
	for i := sim.Cycles(0); i < 50; i++ {
		rec.Record(fault.Record{At: i * 1000, Cost: 2000, Kind: fault.KindSmall})
	}
	var b strings.Builder
	WriteTimelines(&b, "Figure 4", []Timeline{{Title: "(a)", Recorder: rec}}, 40, 8)
	out := b.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "(a)") || !strings.Contains(out, ".") {
		t.Fatalf("timelines output:\n%s", out)
	}
}

func TestWriteFig7AndImprovements(t *testing.T) {
	panels := []Fig7Panel{{
		Bench:   "HPCCG",
		Profile: ProfileA,
		Series: []Fig7Series{
			{Kind: HPMMAP, Points: []Fig7Point{{Cores: 8, MeanSec: 80, StdevSec: 1}}},
			{Kind: THP, Points: []Fig7Point{{Cores: 8, MeanSec: 100, StdevSec: 5}}},
			{Kind: HugeTLBfs, Points: []Fig7Point{{Cores: 8, MeanSec: 90, StdevSec: 2}}},
		},
	}}
	var b strings.Builder
	WriteFig7(&b, panels)
	out := b.String()
	if !strings.Contains(out, "HPCCG") || !strings.Contains(out, "80.0") {
		t.Fatalf("fig7 output:\n%s", out)
	}
	if !strings.Contains(out, "+20.0%") {
		t.Fatalf("improvement line missing:\n%s", out)
	}
	if got := MeanImprovement(panels, HPMMAP, THP); got != 0.2 {
		t.Fatalf("MeanImprovement = %v", got)
	}
	if got := MeanImprovement(panels, HPMMAP, HugeTLBfs); got < 0.11 || got > 0.12 {
		t.Fatalf("vs hugetlbfs = %v", got)
	}
	if _, ok := PointFor(panels, "HPCCG", ProfileA, THP, 8); !ok {
		t.Fatal("PointFor missed")
	}
	if _, ok := PointFor(panels, "nope", ProfileA, THP, 8); ok {
		t.Fatal("PointFor found a ghost")
	}
}

func TestWriteFig8(t *testing.T) {
	panels := []Fig8Panel{{
		Bench:   "HPCCG",
		Profile: ProfileC,
		Series: []Fig8Series{
			{Kind: HPMMAP, Points: []Fig8Point{{Ranks: 32, MeanSec: 200, StdevSec: 1}}},
			{Kind: THP, Points: []Fig8Point{{Ranks: 32, MeanSec: 225, StdevSec: 2}}},
		},
	}}
	var b strings.Builder
	WriteFig8(&b, panels)
	out := b.String()
	if !strings.Contains(out, "profile C") || !strings.Contains(out, "+11.1%") {
		t.Fatalf("fig8 output:\n%s", out)
	}
	if got := Fig8Improvement(panels[0], 32); got < 0.111 || got > 0.112 {
		t.Fatalf("Fig8Improvement = %v", got)
	}
}
