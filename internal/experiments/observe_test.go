package experiments

import (
	"bytes"
	"testing"

	"hpmmap/internal/fault"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
)

// faultCountMetric maps a fault kind onto its fault_* counter name, the
// same correspondence internal/kernel's instrumentation uses.
var faultCountMetric = map[fault.Kind]string{
	fault.KindSmall:        metrics.FaultSmallFaultsTotal,
	fault.KindLarge:        metrics.FaultLargeFaultsTotal,
	fault.KindMergeBlocked: metrics.FaultMergeFaultsTotal,
	fault.KindHugeTLBLarge: metrics.FaultHugeLargeFaultsTotal,
	fault.KindHugeTLBSmall: metrics.FaultHugeSmallFaultsTotal,
	fault.KindStackGrow:    metrics.FaultStackFaultsTotal,
}

var faultCycleMetric = map[fault.Kind]string{
	fault.KindSmall:        metrics.FaultSmallCycles,
	fault.KindLarge:        metrics.FaultLargeCycles,
	fault.KindMergeBlocked: metrics.FaultMergeCycles,
	fault.KindHugeTLBLarge: metrics.FaultHugeLargeCycles,
	fault.KindHugeTLBSmall: metrics.FaultHugeSmallCycles,
	fault.KindStackGrow:    metrics.FaultStackCycles,
}

// TestFaultStudyMetricsMatchTables pins the byte-match contract of
// OBSERVABILITY.md: the fault_* counters cover exactly the recorder's
// population, so per-kind counts and cycle sums from the metric
// snapshot must equal the Figure 2/3 table rows derived from the
// per-fault records.
func TestFaultStudyMetricsMatchTables(t *testing.T) {
	for _, kind := range []ManagerKind{THP, HugeTLBfs} {
		fs, err := RunFaultStudy(FaultStudyOptions{
			Kind:  kind,
			Scale: 0.25,
			Obs:   runner.NewObservations(0),
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, row := range fs.Rows {
			if len(row.Metrics.Metrics) == 0 {
				t.Fatalf("%v loaded=%v: row snapshot empty", kind, row.Loaded)
			}
			// Recompute the table's per-kind count and total cost from
			// the raw records, independently of Summarize.
			var count [fault.NumKinds]uint64
			var cycles [fault.NumKinds]uint64
			row.Recorder.Each(func(rec fault.Record) {
				count[rec.Kind]++
				cycles[rec.Kind] += uint64(rec.Cost)
			})
			for ki := 0; ki < fault.NumKinds; ki++ {
				k := fault.Kind(ki)
				if got := row.Metrics.CounterValue(faultCountMetric[k]); got != count[k] {
					t.Errorf("%v loaded=%v: %s = %d, table count = %d",
						kind, row.Loaded, faultCountMetric[k], got, count[k])
				}
				m, ok := row.Metrics.Get(faultCycleMetric[k])
				if count[k] == 0 {
					if ok && m.Count != 0 {
						t.Errorf("%v loaded=%v: %s has %d observations for an absent kind",
							kind, row.Loaded, faultCycleMetric[k], m.Count)
					}
					continue
				}
				if !ok {
					t.Errorf("%v loaded=%v: %s missing", kind, row.Loaded, faultCycleMetric[k])
					continue
				}
				if m.Count != count[k] || m.Sum != cycles[k] {
					t.Errorf("%v loaded=%v: %s count/sum = %d/%d, table = %d/%d",
						kind, row.Loaded, faultCycleMetric[k], m.Count, m.Sum, count[k], cycles[k])
				}
			}
			// And the summaries (what the printed tables render) agree
			// with the same counters.
			for _, s := range row.Summaries {
				if got := row.Metrics.CounterValue(faultCountMetric[s.Kind]); got != s.Count {
					t.Errorf("%v loaded=%v: summary %s count %d != counter %d",
						kind, row.Loaded, s.Kind, s.Count, got)
				}
			}
		}
	}
}

// fig7Tiny is a 6-cell grid (1 bench x 1 profile x 3 managers x
// 2 core counts x 1 run) kept deliberately small: the observability
// tests run it several times and must stay cheap under -race.
func fig7Tiny(workers int) Fig7Options {
	return Fig7Options{
		Benches:    []string{"HPCCG"},
		Profiles:   []Profile{ProfileA},
		CoreCounts: []int{1, 2},
		Runs:       1,
		Seed:       303,
		Scale:      0.1,
		Workers:    workers,
	}
}

// TestObservedFig7IdenticalAcrossWorkerCounts extends the determinism
// contract to the observability artifacts: the merged metric snapshot
// and the Chrome trace document must be byte-identical between
// Workers=1 and Workers=8, because cells are collected by index, not by
// completion order.
func TestObservedFig7IdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (metrics.Snapshot, []byte) {
		o := fig7Tiny(workers)
		obs := runner.NewObservations(0)
		o.Obs = obs
		if _, err := Fig7(o); err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := obs.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		return obs.Merged(), trace.Bytes()
	}
	serialSnap, serialTrace := run(1)
	parallelSnap, parallelTrace := run(8)
	a, b := asJSON(t, serialSnap), asJSON(t, parallelSnap)
	if string(a) != string(b) {
		t.Errorf("merged snapshots differ between Workers=1 and Workers=8")
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("trace documents differ between Workers=1 and Workers=8 (%d vs %d bytes)",
			len(serialTrace), len(parallelTrace))
	}
	if len(serialSnap.Metrics) == 0 || len(serialTrace) < 100 {
		t.Fatalf("observed run produced no artifacts (metrics=%d, trace=%dB)",
			len(serialSnap.Metrics), len(serialTrace))
	}
}

// TestObservabilityDoesNotPerturbResults: running with a collector
// attached must not change the simulated panels — instrumentation never
// draws from the PRNG or schedules events.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	plain, err := Fig7(fig7Tiny(4))
	if err != nil {
		t.Fatal(err)
	}
	o := fig7Tiny(4)
	o.Obs = runner.NewObservations(0)
	observed, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	a, b := asJSON(t, plain), asJSON(t, observed)
	if string(a) != string(b) {
		t.Fatalf("Fig7 panels differ with observability attached:\n%s\nvs\n%s", a, b)
	}
}
