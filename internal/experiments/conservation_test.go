package experiments

import (
	"testing"

	"hpmmap/internal/cluster"
	"hpmmap/internal/kernel"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
	"hpmmap/internal/workload"
)

// TestMemoryConservationFuzz drives random interleavings of the memory
// system calls (mmap, touch, brk, munmap, fork, exec, exit) against every
// manager configuration and checks that after all processes exit, every
// physical page is back where it started: the zones fully free, the
// HPMMAP pool whole, the hugetlb pools whole. This is the whole-system
// bookkeeping invariant the per-package tests cannot cover.
func TestMemoryConservationFuzz(t *testing.T) {
	for _, kind := range []ManagerKind{THP, HugeTLBfs, HPMMAP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				fuzzOnce(t, kind, seed)
			}
		})
	}
}

type fuzzProc struct {
	p       *kernel.Process
	regions []fuzzRegion
	brk     uint64
}

type fuzzRegion struct {
	addr pgtable.VirtAddr
	size uint64
}

func fuzzOnce(t *testing.T, kind ManagerKind, seed uint64) {
	t.Helper()
	r, err := newRig(kernel.DellR415(), kind, seed, false, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	node := r.node
	rnd := sim.NewRand(seed * 7919)
	freeBefore := node.Mem.FreePages()
	var poolBefore uint64
	if r.hp != nil {
		poolBefore = r.hp.PoolFreeBytes()
	}
	var hugetlbBefore int
	if r.mm.Pools != nil {
		hugetlbBefore = r.mm.Pools.FreePagesTotal()
	}

	var procs []*fuzzProc
	launch := func() {
		var p *kernel.Process
		var err error
		hpc := rnd.Bool(0.5)
		if hpc && r.hp != nil {
			p, err = r.hp.Launch("fuzz-hpc", rnd.Intn(2))
		} else {
			p, err = node.NewProcess("fuzz", !hpc, rnd.Intn(2))
		}
		if err != nil {
			t.Fatalf("seed %d: launch: %v", seed, err)
		}
		procs = append(procs, &fuzzProc{p: p})
	}
	launch()

	const rw = pgtable.ProtRead | pgtable.ProtWrite
	for op := 0; op < 400; op++ {
		if len(procs) == 0 {
			launch()
		}
		fp := procs[rnd.Intn(len(procs))]
		switch rnd.Intn(10) {
		case 0:
			if len(procs) < 6 {
				launch()
			}
		case 1, 2: // mmap
			size := uint64(1+rnd.Intn(64)) << 20
			addr, _, err := node.Mmap(fp.p, size, rw, vma.KindAnon)
			if err == nil {
				fp.regions = append(fp.regions, fuzzRegion{addr, size})
			}
		case 3, 4: // touch part of a region
			if len(fp.regions) > 0 {
				reg := fp.regions[rnd.Intn(len(fp.regions))]
				length := reg.size / uint64(1+rnd.Intn(4))
				if length == 0 {
					length = reg.size
				}
				if _, err := node.TouchRange(fp.p, reg.addr, length); err != nil {
					t.Fatalf("seed %d: touch: %v", seed, err)
				}
			}
		case 5: // brk growth + touch
			cur, _, err := node.Brk(fp.p, 0)
			if err != nil {
				t.Fatalf("seed %d: brk query: %v", seed, err)
			}
			grow := uint64(64+rnd.Intn(512)) << 10
			if _, _, err := node.Brk(fp.p, cur+pgtable.VirtAddr(grow)); err == nil {
				if _, err := node.TouchRange(fp.p, cur, grow); err != nil {
					t.Fatalf("seed %d: heap touch: %v", seed, err)
				}
			}
		case 6: // munmap
			if len(fp.regions) > 0 {
				i := rnd.Intn(len(fp.regions))
				reg := fp.regions[i]
				fp.regions = append(fp.regions[:i], fp.regions[i+1:]...)
				if _, err := node.Munmap(fp.p, reg.addr, reg.size); err != nil {
					t.Fatalf("seed %d: munmap: %v", seed, err)
				}
			}
		case 7: // fork (+ sometimes exec), commodity only path matters
			child, _, err := node.Fork(fp.p, "fuzz-child")
			if err == nil {
				cp := &fuzzProc{p: child}
				if rnd.Bool(0.5) {
					if _, err := r.mm.Exec(child); err != nil {
						t.Fatalf("seed %d: exec: %v", seed, err)
					}
				}
				procs = append(procs, cp)
			}
		case 8: // exit
			i := rnd.Intn(len(procs))
			node.Exit(procs[i].p)
			procs = append(procs[:i], procs[i+1:]...)
		case 9: // stack touch
			if _, err := node.TouchStack(fp.p, uint64(4+rnd.Intn(64))<<10); err != nil {
				t.Fatalf("seed %d: stack: %v", seed, err)
			}
		}
	}
	for _, fp := range procs {
		node.Exit(fp.p)
	}
	if got := node.Mem.FreePages(); got != freeBefore {
		t.Fatalf("seed %d (%s): leaked %d pages (%d -> %d)", seed, kind, int64(freeBefore)-int64(got), freeBefore, got)
	}
	if r.hp != nil {
		if got := r.hp.PoolFreeBytes(); got != poolBefore {
			t.Fatalf("seed %d: hpmmap pool leaked: %d -> %d", seed, poolBefore, got)
		}
	}
	if r.mm.Pools != nil {
		if got := r.mm.Pools.FreePagesTotal(); got != hugetlbBefore {
			t.Fatalf("seed %d: hugetlb pool leaked: %d -> %d", seed, hugetlbBefore, got)
		}
	}
	if got := node.Swap().UsedPages(); got != 0 {
		t.Fatalf("seed %d: swap slots leaked: %d", seed, got)
	}
}

// TestClusterConservation runs a small multi-node cell to completion and
// verifies every node's memory returned to its boot state — the
// whole-cluster analogue of the single-node fuzz.
func TestClusterConservation(t *testing.T) {
	for _, kind := range []ManagerKind{THP, HPMMAP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cr, err := newClusterRig(2, kind, 9, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			type boot struct{ free, pool uint64 }
			boots := make([]boot, len(cr.rigs))
			for i, r := range cr.rigs {
				boots[i].free = r.node.Mem.FreePages()
				if r.hp != nil {
					boots[i].pool = r.hp.PoolFreeBytes()
				}
			}
			spec := scaleSpec(mustSpec(t, "HPCCG"), 0.25)
			placement, err := clusterPlacementForTest(8)
			if err != nil {
				t.Fatal(err)
			}
			placements := cr.cl.Placements(placement, func(n int) workload.Launcher {
				return cr.rigs[n].launcher()
			})
			var res workload.Result
			done := false
			if _, err := workload.Start(cr.eng, workload.Options{
				Spec:      spec,
				Ranks:     placements,
				CommDelay: cr.cl.CommDelay(spec, placement),
			}, func(got workload.Result) { res = got; done = true }); err != nil {
				t.Fatal(err)
			}
			if err := runToCompletion(nil, cr.eng, &done); err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			for i, r := range cr.rigs {
				if got := r.node.Mem.FreePages(); got != boots[i].free {
					t.Errorf("node %d leaked %d pages", i, int64(boots[i].free)-int64(got))
				}
				if r.hp != nil {
					if got := r.hp.PoolFreeBytes(); got != boots[i].pool {
						t.Errorf("node %d pool leaked: %d -> %d", i, boots[i].pool, got)
					}
				}
				if got := r.node.Swap().UsedPages(); got != 0 {
					t.Errorf("node %d swap slots leaked: %d", i, got)
				}
			}
		})
	}
}

func clusterPlacementForTest(ranks int) (cluster.Placement, error) {
	return cluster.BlockPlacement(ranks, 4, []int{0, 1, 4, 5})
}
