package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hpmmap/internal/datacenter"
	"hpmmap/internal/runner"
)

func tinyDCOpts() DatacenterStudyOptions {
	return DatacenterStudyOptions{
		Bench:       "HPCCG",
		Churns:      []float64{0, 200},
		Intensities: []float64{0, 1},
		Ranks:       2,
		Runs:        1,
		Seed:        77,
		Scale:       0.1,
	}
}

func TestDatacenterStudySmall(t *testing.T) {
	s, err := DatacenterStudyRun(tinyDCOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("want 4 grid points, got %d", len(s.Points))
	}
	for _, pt := range s.Points {
		if pt.MeanSec <= 0 {
			t.Fatalf("churn %g intensity %g: non-positive mean %f", pt.Churn, pt.Intensity, pt.MeanSec)
		}
		for _, c := range pt.Cells {
			if pt.Churn > 0 && c.Launched == 0 {
				t.Fatalf("churn %g launched no pods", pt.Churn)
			}
			if pt.Churn == 0 && c.Launched != 0 {
				t.Fatalf("churn 0 launched %d pods", c.Launched)
			}
			if c.Completed+c.OOMKilled > c.Launched {
				t.Fatalf("pod accounting broken: %d completed + %d oom > %d launched",
					c.Completed, c.OOMKilled, c.Launched)
			}
			// The paper's claim at orchestration scale: the resident
			// measurement pods fault on the Linux-backed classes but the
			// HPMMAP class pays at map time and faults never.
			if c.Classes[datacenter.ClassTHP].Slices == 0 {
				t.Fatal("no THP touch slices observed (resident pods missing?)")
			}
			if c.Classes[datacenter.ClassTHP].P99 == 0 {
				t.Fatal("THP class shows a zero-cycle fault tail")
			}
			if c.Classes[datacenter.ClassHPMMAP].P999 != 0 {
				t.Fatalf("HPMMAP class shows a fault tail (%d cycles); pool-backed touches must be free",
					c.Classes[datacenter.ClassHPMMAP].P999)
			}
			if c.Barriers == 0 {
				t.Fatal("attribution recorded no barriers")
			}
		}
	}
	var buf bytes.Buffer
	WriteDatacenterStudy(&buf, s)
	out := buf.String()
	for _, want := range []string{"Datacenter study", "mixed tenancy", "hpmmap", "hugetlbfs", "thp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := WriteDatacenterCSV(&csv, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	wantRows := 1 + len(s.Points)*1*int(datacenter.NumClasses)
	if len(lines) != wantRows {
		t.Fatalf("CSV has %d lines, want %d", len(lines), wantRows)
	}
}

// TestDatacenterStudyDeterminism is the ISSUE 7 acceptance panel: the
// rendered study and the merged metric snapshot must be byte-identical
// across worker counts (1 vs 8) and across cold and warm cache.
func TestDatacenterStudyDeterminism(t *testing.T) {
	cache, err := runner.NewCache(t.TempDir(), ModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int, c *runner.Cache) (string, string) {
		o := tinyDCOpts()
		o.Workers = workers
		o.Cache = c
		o.Obs = runner.NewObservations(0)
		s, err := DatacenterStudyRun(o)
		if err != nil {
			t.Fatal(err)
		}
		var tbl, met bytes.Buffer
		WriteDatacenterStudy(&tbl, s)
		if err := o.Obs.Merged().WriteText(&met); err != nil {
			t.Fatal(err)
		}
		return tbl.String(), met.String()
	}
	tblRef, metRef := render(1, nil) // no cache, serial: the reference
	if tbl8, met8 := render(8, nil); tbl8 != tblRef || met8 != metRef {
		t.Fatalf("Workers=8 differs from Workers=1:\n--- w1:\n%s\n--- w8:\n%s", tblRef, tbl8)
	}
	// Attaching a cache registers one extra plan-health counter
	// (runner_cache_corrupt_total), so cache runs compare the table
	// against the reference and the metrics against each other.
	tblCold, metCold := render(1, cache)
	if tblCold != tblRef {
		t.Fatalf("cold cache table differs from reference:\n--- ref:\n%s\n--- cold:\n%s", tblRef, tblCold)
	}
	tblWarm, metWarm := render(8, cache)
	if tblWarm != tblRef {
		t.Fatalf("warm cache table differs from reference:\n--- ref:\n%s\n--- warm:\n%s", tblRef, tblWarm)
	}
	if metWarm != metCold {
		t.Fatal("merged metrics differ between cold and warm cache (replayed snapshots incomplete)")
	}
}

// TestDatacenterExitUnderChaos drives pod teardown with the chaos
// injector at full intensity and the invariant auditor attached: pods
// are OOM-killed mid-lifetime (exercising the plain-Exit path), the
// survivors reap through the lifecycle pools, and the auditor must see
// a consistent machine throughout.
func TestDatacenterExitUnderChaos(t *testing.T) {
	o := tinyDCOpts()
	o.Churns = []float64{400}
	o.Intensities = []float64{1}
	o.Audit = true
	o.Obs = runner.NewObservations(0)
	s, err := DatacenterStudyRun(o)
	if err != nil {
		t.Fatalf("datacenter study under chaos+audit failed: %v", err)
	}
	c := s.Points[0].Cells[0]
	if c.Launched == 0 {
		t.Fatal("no pods launched")
	}
	snap := o.Obs.Merged()
	if snap.CounterValue("invariant_checks_total") == 0 {
		t.Fatal("auditor ran no checks")
	}
	if got := snap.CounterValue("invariant_violations_total"); got != 0 {
		t.Fatalf("auditor counted %d violations during churn under chaos", got)
	}
	if snap.CounterValue("datacenter_pods_launched_total") != c.Launched {
		t.Fatal("datacenter metrics disagree with the study cell")
	}
	if snap.CounterValue("kernel_lifecycle_reaps_total") == 0 {
		t.Fatal("no pod went through the lifecycle fast path")
	}
}
