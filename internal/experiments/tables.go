package experiments

import (
	"context"
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/trace"
	"hpmmap/internal/workload"
)

// FaultStudyRow is one load condition of a Figure 2/3-style table.
type FaultStudyRow struct {
	Loaded    bool
	Summaries []trace.KindSummary
	Recorder  *trace.Recorder
	// Metrics is the row's registry snapshot, populated when the study
	// ran with FaultStudyOptions.Obs. Its fault_* counters cover exactly
	// the recorder's population, so fault_small_faults_total etc.
	// byte-match the table counts derived from Summaries.
	Metrics metrics.Snapshot
}

// FaultStudy is the per-fault measurement study behind Figures 2–5: the
// instrumented benchmark runs at micro fidelity, with and without a
// competing kernel build, capturing every fault of rank 0.
type FaultStudy struct {
	Bench string
	Kind  ManagerKind
	Rows  []FaultStudyRow
}

// FaultStudyOptions configures a fault study run.
type FaultStudyOptions struct {
	Bench string // default miniMD (the paper's subject for Figs. 2–4)
	Kind  ManagerKind
	Ranks int // default 8
	Seed  uint64
	Scale Scale
	// Workers bounds the worker pool running the study's load conditions
	// (and, for Fig5, its benchmarks) in parallel; <= 0 selects
	// runtime.NumCPU(). Results are identical at any worker count.
	Workers int
	// Context, when non-nil, cancels the study.
	Context context.Context
	// Progress receives one line per completed cell from the runner's
	// serialized sink (calls never overlap).
	Progress func(string)
	// Obs, when non-nil, collects per-cell metric snapshots and Chrome
	// trace events (see OBSERVABILITY.md). Fault studies are never
	// cached, so every cell contributes both metrics and trace.
	Obs *runner.Observations
}

func (o *FaultStudyOptions) defaults() {
	if o.Bench == "" {
		o.Bench = "miniMD"
	}
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	if o.Seed == 0 {
		o.Seed = 0xfa01
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// studyProfiles are the two load conditions of every fault study.
var studyProfiles = []Profile{ProfileNone, ProfileA}

// faultStudies runs the benches × {no load, profile A} grid at micro
// fidelity through the runner and reduces it into one study per bench.
func faultStudies(o FaultStudyOptions, benches []string) ([]FaultStudy, error) {
	specs := make(map[string]workload.AppSpec, len(benches))
	for _, bench := range benches {
		spec, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
		}
		specs[bench] = spec
	}
	plan := runner.Plan{Name: "faultstudy", Seed: o.Seed}
	var profs []Profile
	for _, bench := range benches {
		for _, prof := range studyProfiles {
			plan.Cells = append(plan.Cells, runner.Cell{
				Exp: "faultstudy", Bench: bench, Profile: prof.String(),
				Manager: o.Kind.Key(), Cores: o.Ranks, Run: 0,
			})
			profs = append(profs, prof)
		}
	}
	type studyCell struct {
		rec  *trace.Recorder
		snap metrics.Snapshot
	}
	recs, err := runner.Run(runner.Options{
		Workers:  o.Workers,
		Context:  o.Context,
		Progress: runtimeProgress(o.Progress),
		Ledger:   o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (studyCell, error) {
		rec := trace.NewRecorder()
		reg, tr := o.Obs.Cell(idx, cell.String())
		_, err := ExecuteSingleNode(SingleRun{
			Bench:    specs[cell.Bench],
			Kind:     o.Kind,
			Profile:  profs[idx],
			Ranks:    o.Ranks,
			Seed:     seed,
			Detail:   true,
			Scale:    o.Scale,
			Recorder: rec,
			Metrics:  reg,
			Tracer:   tr,
			Context:  ctx,
			Series:   o.Obs.Series(idx),
		})
		if err != nil {
			return studyCell{}, err
		}
		return studyCell{rec: rec, snap: o.Obs.Snap(idx)}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("faultstudy: %w", err)
	}
	var out []FaultStudy
	i := 0
	for _, bench := range benches {
		fs := FaultStudy{Bench: bench, Kind: o.Kind}
		for _, prof := range studyProfiles {
			sc := recs[i]
			i++
			fs.Rows = append(fs.Rows, FaultStudyRow{
				Loaded:    prof != ProfileNone,
				Summaries: sc.rec.Summarize(),
				Recorder:  sc.rec,
				Metrics:   sc.snap,
			})
		}
		out = append(out, fs)
	}
	return out, nil
}

// RunFaultStudy executes the study under no load and under profile A.
func RunFaultStudy(o FaultStudyOptions) (FaultStudy, error) {
	o.defaults()
	studies, err := faultStudies(o, []string{o.Bench})
	if err != nil {
		return FaultStudy{}, err
	}
	return studies[0], nil
}

// Fig2 reproduces the paper's Figure 2: THP fault-handling cycles for
// miniMD, with and without added load. Bench and Kind in o are
// overridden; Seed, Scale, Workers, Context and Progress apply.
func Fig2(o FaultStudyOptions) (FaultStudy, error) {
	o.Bench, o.Kind = "", THP
	return RunFaultStudy(o)
}

// Fig3 reproduces Figure 3: the same study under HugeTLBfs.
func Fig3(o FaultStudyOptions) (FaultStudy, error) {
	o.Bench, o.Kind = "", HugeTLBfs
	return RunFaultStudy(o)
}

// Timeline is one fault-scatter plot (Figures 4 and 5).
type Timeline struct {
	Title    string
	Recorder *trace.Recorder
}

// Fig4 reproduces Figure 4: the THP fault timeline for miniMD without
// (a) and with (b) competition, plus the lower-quarter zooms (c) and (d).
func Fig4(o FaultStudyOptions) ([]Timeline, error) {
	fs, err := Fig2(o)
	if err != nil {
		return nil, err
	}
	var out []Timeline
	labels := []string{"(a) No Competition", "(b) With Competition"}
	for i, row := range fs.Rows {
		out = append(out, Timeline{Title: labels[i], Recorder: row.Recorder})
	}
	// Lower-quarter views: drop records above 1/4 of the max cost.
	zoomLabels := []string{"(c) No Competition (lower quarter)", "(d) With Competition (lower quarter)"}
	for i, row := range fs.Rows {
		out = append(out, Timeline{Title: zoomLabels[i], Recorder: lowerQuarter(row.Recorder)})
	}
	return out, nil
}

func lowerQuarter(r *trace.Recorder) *trace.Recorder {
	var max uint64
	r.Each(func(rec fault.Record) {
		if uint64(rec.Cost) > max {
			max = uint64(rec.Cost)
		}
	})
	out := trace.NewRecorder()
	r.Each(func(rec fault.Record) {
		if uint64(rec.Cost) <= max/4 {
			out.Record(rec)
		}
	})
	return out
}

// fig5Benches are the paper's Figure 5 subjects.
var fig5Benches = []string{"HPCCG", "CoMD", "miniFE"}

// Fig5 reproduces Figure 5: HugeTLBfs fault timelines for HPCCG, CoMD and
// miniFE, each without (top row) and with (bottom row) kernel-build
// competition. All six cells execute as one runner plan.
func Fig5(o FaultStudyOptions) ([]Timeline, error) {
	o.Bench, o.Kind = "", HugeTLBfs
	o.defaults()
	studies, err := faultStudies(o, fig5Benches)
	if err != nil {
		return nil, err
	}
	var out []Timeline
	for _, fs := range studies {
		for _, row := range fs.Rows {
			label := fmt.Sprintf("%s, no competition", fs.Bench)
			if row.Loaded {
				label = fmt.Sprintf("%s, with kernel-build competition", fs.Bench)
			}
			out = append(out, Timeline{Title: label, Recorder: row.Recorder})
		}
	}
	return out, nil
}

// SummaryFor extracts the per-kind summary for one fault kind from a
// study row, reporting ok=false when the kind never occurred.
func SummaryFor(row FaultStudyRow, k fault.Kind) (trace.KindSummary, bool) {
	for _, s := range row.Summaries {
		if s.Kind == k {
			return s, true
		}
	}
	return trace.KindSummary{}, false
}
