package experiments

import (
	"fmt"

	"hpmmap/internal/fault"
	"hpmmap/internal/trace"
	"hpmmap/internal/workload"
)

// FaultStudyRow is one load condition of a Figure 2/3-style table.
type FaultStudyRow struct {
	Loaded    bool
	Summaries []trace.KindSummary
	Recorder  *trace.Recorder
}

// FaultStudy is the per-fault measurement study behind Figures 2–5: the
// instrumented benchmark runs at micro fidelity, with and without a
// competing kernel build, capturing every fault of rank 0.
type FaultStudy struct {
	Bench string
	Kind  ManagerKind
	Rows  []FaultStudyRow
}

// FaultStudyOptions configures a fault study run.
type FaultStudyOptions struct {
	Bench string // default miniMD (the paper's subject for Figs. 2–4)
	Kind  ManagerKind
	Ranks int // default 8
	Seed  uint64
	Scale Scale
}

func (o *FaultStudyOptions) defaults() {
	if o.Bench == "" {
		o.Bench = "miniMD"
	}
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	if o.Seed == 0 {
		o.Seed = 0xfa01
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// RunFaultStudy executes the study under no load and under profile A.
func RunFaultStudy(o FaultStudyOptions) (FaultStudy, error) {
	o.defaults()
	spec, ok := workload.ByName(o.Bench)
	if !ok {
		return FaultStudy{}, fmt.Errorf("experiments: unknown benchmark %q", o.Bench)
	}
	fs := FaultStudy{Bench: o.Bench, Kind: o.Kind}
	for _, prof := range []Profile{ProfileNone, ProfileA} {
		rec := trace.NewRecorder()
		_, err := ExecuteSingleNode(SingleRun{
			Bench:    spec,
			Kind:     o.Kind,
			Profile:  prof,
			Ranks:    o.Ranks,
			Seed:     o.Seed + uint64(prof)*17,
			Detail:   true,
			Scale:    o.Scale,
			Recorder: rec,
		})
		if err != nil {
			return FaultStudy{}, err
		}
		fs.Rows = append(fs.Rows, FaultStudyRow{
			Loaded:    prof != ProfileNone,
			Summaries: rec.Summarize(),
			Recorder:  rec,
		})
	}
	return fs, nil
}

// Fig2 reproduces the paper's Figure 2: THP fault-handling cycles for
// miniMD, with and without added load.
func Fig2(seed uint64, sc Scale) (FaultStudy, error) {
	return RunFaultStudy(FaultStudyOptions{Kind: THP, Seed: seed, Scale: sc})
}

// Fig3 reproduces Figure 3: the same study under HugeTLBfs.
func Fig3(seed uint64, sc Scale) (FaultStudy, error) {
	return RunFaultStudy(FaultStudyOptions{Kind: HugeTLBfs, Seed: seed, Scale: sc})
}

// Timeline is one fault-scatter plot (Figures 4 and 5).
type Timeline struct {
	Title    string
	Recorder *trace.Recorder
}

// Fig4 reproduces Figure 4: the THP fault timeline for miniMD without
// (a) and with (b) competition, plus the lower-quarter zooms (c) and (d).
func Fig4(seed uint64, sc Scale) ([]Timeline, error) {
	fs, err := Fig2(seed, sc)
	if err != nil {
		return nil, err
	}
	var out []Timeline
	labels := []string{"(a) No Competition", "(b) With Competition"}
	for i, row := range fs.Rows {
		out = append(out, Timeline{Title: labels[i], Recorder: row.Recorder})
	}
	// Lower-quarter views: drop records above 1/4 of the max cost.
	zoomLabels := []string{"(c) No Competition (lower quarter)", "(d) With Competition (lower quarter)"}
	for i, row := range fs.Rows {
		out = append(out, Timeline{Title: zoomLabels[i], Recorder: lowerQuarter(row.Recorder)})
	}
	return out, nil
}

func lowerQuarter(r *trace.Recorder) *trace.Recorder {
	var max uint64
	for _, rec := range r.Records() {
		if uint64(rec.Cost) > max {
			max = uint64(rec.Cost)
		}
	}
	out := trace.NewRecorder()
	for _, rec := range r.Records() {
		if uint64(rec.Cost) <= max/4 {
			out.Record(rec)
		}
	}
	return out
}

// Fig5 reproduces Figure 5: HugeTLBfs fault timelines for HPCCG, CoMD and
// miniFE, each without (top row) and with (bottom row) kernel-build
// competition.
func Fig5(seed uint64, sc Scale) ([]Timeline, error) {
	var out []Timeline
	for _, bench := range []string{"HPCCG", "CoMD", "miniFE"} {
		fs, err := RunFaultStudy(FaultStudyOptions{Bench: bench, Kind: HugeTLBfs, Seed: seed, Scale: sc})
		if err != nil {
			return nil, err
		}
		for _, row := range fs.Rows {
			label := fmt.Sprintf("%s, no competition", bench)
			if row.Loaded {
				label = fmt.Sprintf("%s, with kernel-build competition", bench)
			}
			out = append(out, Timeline{Title: label, Recorder: row.Recorder})
		}
	}
	return out, nil
}

// SummaryFor extracts the per-kind summary for one fault kind from a
// study row, reporting ok=false when the kind never occurred.
func SummaryFor(row FaultStudyRow, k fault.Kind) (trace.KindSummary, bool) {
	for _, s := range row.Summaries {
		if s.Kind == k {
			return s, true
		}
	}
	return trace.KindSummary{}, false
}
