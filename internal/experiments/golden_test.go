package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hpmmap/internal/runner"
)

// The pinned-output contract (DESIGN.md §10): performance refactors of
// the fault/allocation hot path must preserve the PRNG draw sequence and
// all charged-cycle arithmetic exactly, so every figure artifact stays
// byte-identical. These tests render a reduced fig2/fig3 fault table, a
// fig7 and fig8 panel, the chaos-study table and the attribution report
// at Workers=1 and Workers=8 (cold and, for fig7, warm cache) and
// compare them byte-for-byte against the goldens committed under
// testdata/golden — captured from the tree as it stood before the hot
// path was restructured. Every future perf PR runs through this net.
//
// Regenerate (ONLY when a PR deliberately changes simulation semantics
// and says so): UPDATE_GOLDEN=1 go test ./internal/experiments -run Golden

// goldenDir holds the committed artifacts.
const goldenDir = "testdata/golden"

// renderGoldenArtifacts produces every pinned artifact at the given
// worker count. The configurations are deliberately reduced (scale 0.25,
// few cells) so the contract test stays fast while still crossing every
// hot-path layer: THP and HugeTLBfs micro-fidelity fault tables (fig2,
// fig3), the aggregate-fidelity weak-scaling grid (fig7), the multi-node
// study (fig8), the chaos sweep and the barrier attribution report.
func renderGoldenArtifacts(t *testing.T, workers int, cache *runner.Cache) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	render := func(name string, fn func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}

	render("fig2.txt", func(w *bytes.Buffer) error {
		fs, err := Fig2(FaultStudyOptions{Ranks: 2, Seed: 7, Scale: 0.25, Workers: workers})
		if err != nil {
			return err
		}
		WriteFaultStudy(w, fs)
		return nil
	})
	render("fig3.txt", func(w *bytes.Buffer) error {
		fs, err := Fig3(FaultStudyOptions{Ranks: 2, Seed: 7, Scale: 0.25, Workers: workers})
		if err != nil {
			return err
		}
		WriteFaultStudy(w, fs)
		return nil
	})
	render("fig7.txt", func(w *bytes.Buffer) error {
		panels, err := Fig7(Fig7Options{
			Benches:    []string{"miniMD"},
			Profiles:   []Profile{ProfileA},
			CoreCounts: []int{1, 2},
			Runs:       2,
			Seed:       101,
			Scale:      0.25,
			Workers:    workers,
			Cache:      cache,
		})
		if err != nil {
			return err
		}
		WriteFig7(w, panels)
		return nil
	})
	render("fig8.txt", func(w *bytes.Buffer) error {
		panels, err := Fig8(Fig8Options{
			Benches:  []string{"LAMMPS"},
			Profiles: []Profile{ProfileC},
			Ranks:    []int{4},
			Runs:     1,
			Seed:     202,
			Scale:    0.25,
			Workers:  workers,
		})
		if err != nil {
			return err
		}
		WriteFig8(w, panels)
		return nil
	})
	render("chaos.txt", func(w *bytes.Buffer) error {
		s, err := ChaosStudyRun(ChaosStudyOptions{
			Intensities: []float64{0, 0.75},
			Cores:       2,
			Runs:        1,
			Seed:        303,
			Scale:       0.25,
			Workers:     workers,
		})
		if err != nil {
			return err
		}
		if len(s.Failures) != 0 {
			t.Fatalf("chaos golden run quarantined cells: %+v", s.Failures)
		}
		WriteChaosStudy(w, s)
		return nil
	})
	render("attribution.txt", func(w *bytes.Buffer) error {
		cells, err := RunAttributionStudy(AttributionStudyOptions{
			Ranks: 4, Seed: 404, Scale: 0.25, Workers: workers,
		})
		if err != nil {
			return err
		}
		return WriteAttributionStudy(w, cells)
	})
	return out
}

func compareGolden(t *testing.T, label string, got map[string][]byte) {
	t.Helper()
	for name, body := range got {
		want, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%s: reading golden %s: %v (run UPDATE_GOLDEN=1 go test ./internal/experiments -run Golden to create)", label, name, err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%s: %s diverged from the committed golden — the hot path no longer preserves the draw sequence / cycle arithmetic.\n--- got ---\n%s\n--- want ---\n%s",
				label, name, body, want)
		}
	}
}

// TestGoldenArtifactsPinned is the pinned-output contract test. Skipped
// under the race detector: byte-equality needs no race coverage and the
// grids here would add many race-amplified minutes to the full-tree race
// pass; the Workers=1-vs-8 determinism contract is race-covered by
// TestFig7IdenticalAcrossWorkerCounts and friends.
func TestGoldenArtifactsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-equality contract; skipped under -race (see comment)")
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		got := renderGoldenArtifacts(t, 1, nil)
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, body := range got {
			if err := os.WriteFile(filepath.Join(goldenDir, name), body, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d goldens under %s", len(got), goldenDir)
		return
	}

	// Workers=1, cold cache.
	compareGolden(t, "workers=1", renderGoldenArtifacts(t, 1, nil))

	// Workers=8, with a result cache: the first pass exercises the cold
	// path in parallel, the second replays every fig7 cell from the warm
	// cache. Both must match the goldens.
	dir := t.TempDir()
	cache, err := runner.NewCache(dir, ModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "workers=8 cold", renderGoldenArtifacts(t, 8, cache))
	warm := renderGoldenArtifacts(t, 8, cache)
	compareGolden(t, "workers=8 warm", warm)
}
