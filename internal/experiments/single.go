package experiments

import (
	"context"
	"fmt"

	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/stats"
	"hpmmap/internal/workload"
)

// Fig7Options configures the single-node weak-scaling study.
type Fig7Options struct {
	Benches    []string  // default: HPCCG, CoMD, miniMD, miniFE
	Profiles   []Profile // default: A, B
	CoreCounts []int     // default: 1, 2, 4, 8
	Managers   []ManagerKind
	Runs       int // default: 10, as in the paper
	Seed       uint64
	Scale      Scale
	// Progress receives one line per completed cell. Thread-safety
	// contract: it is invoked from the runner's serialized progress sink,
	// so calls never overlap even at Workers > 1 and the callback may
	// write to unsynchronized state (a terminal, a plain counter).
	Progress func(string)
	// Workers bounds the parallel worker pool dispatching the grid's
	// cells; <= 0 selects runtime.NumCPU(). Results are byte-identical
	// at any worker count: every cell's seed derives from its grid
	// coordinates, never from execution order.
	Workers int
	// Context, when non-nil, cancels the study (first error or
	// cancellation stops the remaining cells).
	Context context.Context
	// Cache, when non-nil, memoizes per-cell results keyed by
	// exp/cell/seed/scale/version so reports can be regenerated without
	// re-simulating unchanged cells.
	Cache *runner.Cache
	// Obs, when non-nil, collects per-cell metric snapshots and Chrome
	// trace events (see OBSERVABILITY.md). Cached cells replay the
	// snapshot they stored; cells cached before observability existed
	// are re-simulated so the snapshot can be captured. Traces are never
	// cached: a cache-hit cell contributes metrics but no trace events.
	Obs *runner.Observations
}

func (o *Fig7Options) defaults() {
	if len(o.Benches) == 0 {
		o.Benches = []string{"HPCCG", "CoMD", "miniMD", "miniFE"}
	}
	if len(o.Profiles) == 0 {
		o.Profiles = []Profile{ProfileA, ProfileB}
	}
	if len(o.CoreCounts) == 0 {
		o.CoreCounts = []int{1, 2, 4, 8}
	}
	if len(o.Managers) == 0 {
		o.Managers = []ManagerKind{HPMMAP, THP, HugeTLBfs}
	}
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0x7e57
	}
}

// Fig7Point is one (cores, manager) cell: mean ± stdev over the runs.
type Fig7Point struct {
	Cores       int
	MeanSec     float64
	StdevSec    float64
	Runs        []float64
	FaultTotals uint64
}

// Fig7Series is one manager's curve in one panel.
type Fig7Series struct {
	Kind   ManagerKind
	Points []Fig7Point
}

// Fig7Panel is one subplot: a benchmark under a profile.
type Fig7Panel struct {
	Bench   string
	Profile Profile
	Series  []Fig7Series
}

// fig7Cell is the cached/reduced unit of one single-node run.
type fig7Cell struct {
	RuntimeSec float64 `json:"runtime_sec"`
	Faults     uint64  `json:"faults"`
	// Metrics is the cell's registry snapshot, captured when the study
	// ran with an Observations collector; cached alongside the scalars
	// so cache hits can replay it.
	Metrics metrics.Snapshot `json:"metrics,omitempty"`
}

// runtimeProgress adapts a legacy func(string) progress option onto the
// runner's serialized event sink, appending the cell's runtime.
func runtimeProgress(p func(string)) func(runner.Event) {
	if p == nil {
		return nil
	}
	return func(e runner.Event) {
		msg := e.String()
		if cc, ok := e.Result.(fig7Cell); ok {
			msg += fmt.Sprintf(": %.1f s", cc.RuntimeSec)
		}
		p(msg)
	}
}

// Fig7 runs the single-node experiments of the paper's Figure 7: each
// benchmark in weak-scaling mode on 1, 2, 4 and 8 cores, under commodity
// profiles A and B, for each memory manager, averaging the given number
// of runs. The grid executes as one runner plan: independent cells on a
// bounded worker pool with coordinate-derived seeds, so the panels are
// identical at any Workers setting.
func Fig7(o Fig7Options) ([]Fig7Panel, error) {
	o.defaults()
	specs := make(map[string]workload.AppSpec, len(o.Benches))
	for _, bench := range o.Benches {
		spec, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
		}
		specs[bench] = spec
	}

	type cellMeta struct {
		prof Profile
		kind ManagerKind
	}
	plan := runner.Plan{Name: "fig7", Seed: o.Seed}
	var metas []cellMeta
	for _, bench := range o.Benches {
		for _, prof := range o.Profiles {
			for _, kind := range o.Managers {
				for _, cores := range o.CoreCounts {
					for run := 0; run < o.Runs; run++ {
						plan.Cells = append(plan.Cells, runner.Cell{
							Exp: "fig7", Bench: bench, Profile: prof.String(),
							Manager: kind.Key(), Cores: cores, Run: run,
						})
						metas = append(metas, cellMeta{prof: prof, kind: kind})
					}
				}
			}
		}
	}

	results, err := runner.Run(runner.Options{
		Workers:  o.Workers,
		Context:  o.Context,
		Progress: runtimeProgress(o.Progress),
		Ledger:   o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (fig7Cell, error) {
		key := o.Cache.Key(plan.Name, cell, seed, float64(o.Scale))
		var cc fig7Cell
		// Series-enabled runs bypass the cache both ways: a cached cell
		// would replay no samples, and a freshly sampled cell's snapshot
		// (which carries timeline_samples_total) must never overwrite a
		// baseline entry — either would break byte-identity between
		// sampled/unsampled and cold/warm runs.
		useCache := !o.Obs.SeriesEnabled()
		if useCache && o.Cache.Get(key, &cc) {
			// A cached cell from before observability was enabled has no
			// snapshot; re-simulate it so the metrics can be captured.
			if o.Obs == nil || len(cc.Metrics.Metrics) > 0 {
				o.Obs.LedgerSink().CacheHit(idx)
				o.Obs.Record(idx, cc.Metrics)
				return cc, nil
			}
			cc = fig7Cell{}
		}
		if useCache && o.Cache != nil {
			o.Obs.LedgerSink().CacheMiss(idx)
		}
		reg, tr := o.Obs.Cell(idx, cell.String())
		out, err := ExecuteSingleNode(SingleRun{
			Bench:   specs[cell.Bench],
			Kind:    metas[idx].kind,
			Profile: metas[idx].prof,
			Ranks:   cell.Cores,
			Seed:    seed,
			Scale:   o.Scale,
			Metrics: reg,
			Tracer:  tr,
			Context: ctx,
			Series:  o.Obs.Series(idx),
		})
		if err != nil {
			return fig7Cell{}, err
		}
		cc.RuntimeSec = out.RuntimeSec
		for _, rr := range out.Result.Ranks {
			cc.Faults += rr.Faults.TotalFaults()
		}
		cc.Metrics = o.Obs.Snap(idx)
		if useCache {
			// A failed Put only costs a future re-simulation.
			_ = o.Cache.Put(key, cc)
		}
		return cc, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}

	// Reduce in declaration order (results are indexed by cell position,
	// independent of completion order).
	var panels []Fig7Panel
	i := 0
	for _, bench := range o.Benches {
		for _, prof := range o.Profiles {
			panel := Fig7Panel{Bench: bench, Profile: prof}
			for _, kind := range o.Managers {
				series := Fig7Series{Kind: kind}
				for _, cores := range o.CoreCounts {
					var sample stats.Sample
					var faults uint64
					var runs []float64
					for run := 0; run < o.Runs; run++ {
						cc := results[i]
						i++
						sample.Add(cc.RuntimeSec)
						runs = append(runs, cc.RuntimeSec)
						faults += cc.Faults
					}
					series.Points = append(series.Points, Fig7Point{
						Cores:       cores,
						MeanSec:     sample.Mean(),
						StdevSec:    sample.Stdev(),
						Runs:        runs,
						FaultTotals: faults / uint64(o.Runs),
					})
				}
				panel.Series = append(panel.Series, series)
			}
			panels = append(panels, panel)
		}
	}
	return panels, nil
}

// MeanImprovement computes, across a set of panels, the average relative
// improvement of manager a over manager b (the paper's "HPMMAP improves
// performance by 15% over THP" style summary).
func MeanImprovement(panels []Fig7Panel, a, b ManagerKind) float64 {
	var sum float64
	var n int
	for _, p := range panels {
		var sa, sb *Fig7Series
		for i := range p.Series {
			switch p.Series[i].Kind {
			case a:
				sa = &p.Series[i]
			case b:
				sb = &p.Series[i]
			}
		}
		if sa == nil || sb == nil {
			continue
		}
		for i := range sa.Points {
			if i >= len(sb.Points) || sb.Points[i].MeanSec == 0 {
				continue
			}
			sum += stats.RelativeImprovement(sa.Points[i].MeanSec, sb.Points[i].MeanSec)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PointFor extracts one cell from a panel set.
func PointFor(panels []Fig7Panel, bench string, prof Profile, kind ManagerKind, cores int) (Fig7Point, bool) {
	for _, p := range panels {
		if p.Bench != bench || p.Profile != prof {
			continue
		}
		for _, s := range p.Series {
			if s.Kind != kind {
				continue
			}
			for _, pt := range s.Points {
				if pt.Cores == cores {
					return pt, true
				}
			}
		}
	}
	return Fig7Point{}, false
}
