package experiments

import (
	"fmt"

	"hpmmap/internal/sim"
	"hpmmap/internal/stats"
	"hpmmap/internal/workload"
)

// Fig7Options configures the single-node weak-scaling study.
type Fig7Options struct {
	Benches    []string  // default: HPCCG, CoMD, miniMD, miniFE
	Profiles   []Profile // default: A, B
	CoreCounts []int     // default: 1, 2, 4, 8
	Managers   []ManagerKind
	Runs       int // default: 10, as in the paper
	Seed       uint64
	Scale      Scale
	Progress   func(string)
}

func (o *Fig7Options) defaults() {
	if len(o.Benches) == 0 {
		o.Benches = []string{"HPCCG", "CoMD", "miniMD", "miniFE"}
	}
	if len(o.Profiles) == 0 {
		o.Profiles = []Profile{ProfileA, ProfileB}
	}
	if len(o.CoreCounts) == 0 {
		o.CoreCounts = []int{1, 2, 4, 8}
	}
	if len(o.Managers) == 0 {
		o.Managers = []ManagerKind{HPMMAP, THP, HugeTLBfs}
	}
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0x7e57
	}
	if o.Progress == nil {
		o.Progress = func(string) {}
	}
}

// Fig7Point is one (cores, manager) cell: mean ± stdev over the runs.
type Fig7Point struct {
	Cores       int
	MeanSec     float64
	StdevSec    float64
	Runs        []float64
	FaultTotals uint64
}

// Fig7Series is one manager's curve in one panel.
type Fig7Series struct {
	Kind   ManagerKind
	Points []Fig7Point
}

// Fig7Panel is one subplot: a benchmark under a profile.
type Fig7Panel struct {
	Bench   string
	Profile Profile
	Series  []Fig7Series
}

// Fig7 runs the single-node experiments of the paper's Figure 7: each
// benchmark in weak-scaling mode on 1, 2, 4 and 8 cores, under commodity
// profiles A and B, for each memory manager, averaging the given number
// of runs.
func Fig7(o Fig7Options) ([]Fig7Panel, error) {
	o.defaults()
	seeds := sim.NewRand(o.Seed)
	var panels []Fig7Panel
	for _, bench := range o.Benches {
		spec, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
		}
		for _, prof := range o.Profiles {
			panel := Fig7Panel{Bench: bench, Profile: prof}
			for _, kind := range o.Managers {
				series := Fig7Series{Kind: kind}
				for _, cores := range o.CoreCounts {
					var sample stats.Sample
					var faults uint64
					var runs []float64
					for run := 0; run < o.Runs; run++ {
						out, err := ExecuteSingleNode(SingleRun{
							Bench:   spec,
							Kind:    kind,
							Profile: prof,
							Ranks:   cores,
							Seed:    seeds.Uint64(),
							Scale:   o.Scale,
						})
						if err != nil {
							return nil, fmt.Errorf("fig7 %s/%s/%s/%d: %w", bench, prof, kind, cores, err)
						}
						sample.Add(out.RuntimeSec)
						runs = append(runs, out.RuntimeSec)
						for _, rr := range out.Result.Ranks {
							faults += rr.Faults.TotalFaults()
						}
					}
					series.Points = append(series.Points, Fig7Point{
						Cores:       cores,
						MeanSec:     sample.Mean(),
						StdevSec:    sample.Stdev(),
						Runs:        runs,
						FaultTotals: faults / uint64(o.Runs),
					})
					o.Progress(fmt.Sprintf("fig7 %s profile %s %s cores=%d: %.1f ± %.1f s",
						bench, prof, kind, cores, sample.Mean(), sample.Stdev()))
				}
				panel.Series = append(panel.Series, series)
			}
			panels = append(panels, panel)
		}
	}
	return panels, nil
}

// MeanImprovement computes, across a set of panels, the average relative
// improvement of manager a over manager b (the paper's "HPMMAP improves
// performance by 15% over THP" style summary).
func MeanImprovement(panels []Fig7Panel, a, b ManagerKind) float64 {
	var sum float64
	var n int
	for _, p := range panels {
		var sa, sb *Fig7Series
		for i := range p.Series {
			switch p.Series[i].Kind {
			case a:
				sa = &p.Series[i]
			case b:
				sb = &p.Series[i]
			}
		}
		if sa == nil || sb == nil {
			continue
		}
		for i := range sa.Points {
			if i >= len(sb.Points) || sb.Points[i].MeanSec == 0 {
				continue
			}
			sum += stats.RelativeImprovement(sa.Points[i].MeanSec, sb.Points[i].MeanSec)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PointFor extracts one cell from a panel set.
func PointFor(panels []Fig7Panel, bench string, prof Profile, kind ManagerKind, cores int) (Fig7Point, bool) {
	for _, p := range panels {
		if p.Bench != bench || p.Profile != prof {
			continue
		}
		for _, s := range p.Series {
			if s.Kind != kind {
				continue
			}
			for _, pt := range s.Points {
				if pt.Cores == cores {
					return pt, true
				}
			}
		}
	}
	return Fig7Point{}, false
}
