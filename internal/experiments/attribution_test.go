package experiments

import (
	"strings"
	"testing"

	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

// attributionReduced keeps the study small enough for the race detector:
// the three default managers at 4 ranks, quarter scale.
func attributionReduced(workers int) AttributionStudyOptions {
	return AttributionStudyOptions{
		Ranks:   4,
		Seed:    303,
		Scale:   0.25,
		Workers: workers,
	}
}

// renderAttribution runs the study with series sampling attached and
// returns the rendered report plus the full series CSV.
func renderAttribution(t *testing.T, workers int) (report, series string) {
	t.Helper()
	o := attributionReduced(workers)
	o.Obs = runner.NewObservations(0)
	o.Obs.EnableSeries()
	cells, err := RunAttributionStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	if err := WriteAttributionStudy(&rep, cells); err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := o.Obs.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return rep.String(), csv.String()
}

// TestAttributionIdenticalAcrossWorkerCounts pins the tentpole's
// determinism contract: the rendered attribution report AND the merged
// time-series CSV are byte-identical at Workers=1 and Workers=8,
// because every cell's seed derives from grid coordinates and the
// collector merges cells in index order.
func TestAttributionIdenticalAcrossWorkerCounts(t *testing.T) {
	rep1, csv1 := renderAttribution(t, 1)
	rep8, csv8 := renderAttribution(t, 8)
	if rep1 != rep8 {
		t.Errorf("attribution report differs between Workers=1 and Workers=8:\n%s\nvs\n%s", rep1, rep8)
	}
	if csv1 != csv8 {
		t.Error("series CSV differs between Workers=1 and Workers=8")
	}
	// Sanity: the report names the managers and the CSV carries samples.
	for _, want := range []string{"THP", "HugeTLBfs", "HPMMAP", "barriers"} {
		if !strings.Contains(rep1, want) {
			t.Errorf("report missing %q:\n%s", want, rep1)
		}
	}
	if lines := strings.Count(csv1, "\n"); lines < 10 {
		t.Errorf("series CSV suspiciously short (%d lines):\n%s", lines, csv1)
	}
	if !strings.HasPrefix(csv1, timeline.SeriesCSVHeader+"\n") {
		t.Errorf("series CSV missing header: %q", csv1[:min(len(csv1), 80)])
	}
}

// TestAttributionConservation: the attributor's total barrier wait must
// equal the bsp_barrier_wait_cycles histogram's sum exactly — both count
// Σ over barriers of Σ over ranks of (release − arrival), one through
// the timeline accounts and one through the workload's metrics hook.
// Any drift means the attribution invented or lost wait cycles.
func TestAttributionConservation(t *testing.T) {
	spec, ok := workload.ByName("miniMD")
	if !ok {
		t.Fatal("miniMD not registered")
	}
	for _, kind := range []ManagerKind{THP, HugeTLBfs, HPMMAP} {
		reg := metrics.NewRegistry()
		attr := timeline.NewAttribution(2)
		attr.Observe(reg)
		if _, err := ExecuteSingleNode(SingleRun{
			Bench:       spec,
			Kind:        kind,
			Profile:     ProfileA,
			Ranks:       2,
			Seed:        404,
			Scale:       0.25,
			Metrics:     reg,
			Attribution: attr,
		}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		m, ok := reg.Snapshot().Get(metrics.BSPBarrierWaitCycles)
		if !ok {
			t.Fatalf("%v: no bsp_barrier_wait_cycles in snapshot", kind)
		}
		if attr.TotalWait() != m.Sum {
			t.Errorf("%v: attribution total wait %d != barrier histogram sum %d",
				kind, attr.TotalWait(), m.Sum)
		}
		if len(attr.Records()) == 0 {
			t.Errorf("%v: no barriers recorded", kind)
		}
	}
}

// TestFig7UnchangedBySampling: attaching the time-series sampler must
// not change any figure number — the probes piggyback on the existing
// diagnostic ticker and draw no randomness, so the panels are
// byte-identical with and without sampling.
func TestFig7UnchangedBySampling(t *testing.T) {
	small := func() Fig7Options {
		return Fig7Options{
			Benches:    []string{"HPCCG"},
			Profiles:   []Profile{ProfileA},
			CoreCounts: []int{2},
			Runs:       1,
			Seed:       505,
			Scale:      0.25,
			Workers:    4,
		}
	}
	bare, err := Fig7(small())
	if err != nil {
		t.Fatal(err)
	}
	o := small()
	o.Obs = runner.NewObservations(0)
	o.Obs.EnableSeries()
	sampled, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	a, b := asJSON(t, bare), asJSON(t, sampled)
	if string(a) != string(b) {
		t.Fatalf("Fig7 panels change when sampling is attached:\n%s\nvs\n%s", a, b)
	}
	// The sampler actually sampled: the merged snapshot carries its
	// counter, and the CSV is non-empty.
	if got := o.Obs.Merged().CounterValue(metrics.TimelineSamplesTotal); got == 0 {
		t.Fatal("timeline_samples_total == 0: sampler never ran")
	}
	var csv strings.Builder
	if err := o.Obs.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(csv.String()) == timeline.SeriesCSVHeader {
		t.Fatal("series CSV empty despite sampling enabled")
	}
}
