package experiments

import (
	"strings"
	"testing"

	"hpmmap/internal/fault"
	"hpmmap/internal/kernel"
	"hpmmap/internal/workload"
)

// These tests encode the paper's headline shapes (DESIGN.md §3). Most run
// one or two full-scale cells; the exhaustive sweeps live in the bench
// harness. Heavy cases are skipped with -short.

func TestExecuteSingleNodeBasics(t *testing.T) {
	spec, _ := workload.ByName("HPCCG")
	out, err := ExecuteSingleNode(SingleRun{
		Bench: spec, Kind: HPMMAP, Profile: ProfileNone, Ranks: 2, Seed: 42, Scale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.RuntimeSec <= 0 {
		t.Fatal("zero runtime")
	}
	for _, rr := range out.Result.Ranks {
		if rr.Faults.TotalFaults() != 0 {
			t.Fatalf("hpmmap rank faulted: %+v", rr.Faults)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec, _ := workload.ByName("miniFE")
	run := func() float64 {
		out, err := ExecuteSingleNode(SingleRun{
			Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 1234, Scale: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.RuntimeSec
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different runtimes: %v vs %v", a, b)
	}
}

func TestSeedsProduceVariance(t *testing.T) {
	spec, _ := workload.ByName("miniFE")
	a, err := ExecuteSingleNode(SingleRun{Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteSingleNode(SingleRun{Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if a.RuntimeSec == b.RuntimeSec {
		t.Fatal("different seeds produced identical runtimes")
	}
}

func TestPinCores(t *testing.T) {
	r, err := newRig(kernel.DellR415(), THP, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ranks int
		want  []int
	}{
		{1, []int{0}},
		{2, []int{0, 6}},
		{4, []int{0, 1, 6, 7}},
		{8, []int{0, 1, 2, 3, 6, 7, 8, 9}},
	}
	for _, c := range cases {
		got, err := pinCores(r.node, c.ranks)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ranks=%d: %v", c.ranks, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ranks=%d: %v want %v", c.ranks, got, c.want)
			}
		}
	}
	if _, err := pinCores(r.node, 99); err == nil {
		t.Fatal("99 ranks accepted")
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale detail run")
	}
	fs, err := Fig2(FaultStudyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Rows) != 2 {
		t.Fatalf("rows: %d", len(fs.Rows))
	}
	noload, loaded := fs.Rows[0], fs.Rows[1]
	small0, ok := SummaryFor(noload, fault.KindSmall)
	if !ok {
		t.Fatal("no small faults")
	}
	large0, ok := SummaryFor(noload, fault.KindLarge)
	if !ok {
		t.Fatal("no large faults")
	}
	merge0, ok := SummaryFor(noload, fault.KindMergeBlocked)
	if !ok {
		t.Fatal("no merge faults")
	}
	// Headline ratios: large ≈ 200x+ small; merge ≈ 500x+ small.
	if large0.AvgCycles < 100*small0.AvgCycles {
		t.Fatalf("large/small ratio %.0f", large0.AvgCycles/small0.AvgCycles)
	}
	if merge0.AvgCycles < 300*small0.AvgCycles {
		t.Fatalf("merge/small ratio %.0f", merge0.AvgCycles/small0.AvgCycles)
	}
	// Counts: ~10^5 small, ~10^3 large, ~10^1 merges.
	if small0.Count < 50_000 || small0.Count > 1_000_000 {
		t.Fatalf("small count %d", small0.Count)
	}
	if large0.Count < 300 || large0.Count > 10_000 {
		t.Fatalf("large count %d", large0.Count)
	}
	if merge0.Count < 3 || merge0.Count > 500 {
		t.Fatalf("merge count %d", merge0.Count)
	}
	// Load inflates small and large fault service times.
	small1, _ := SummaryFor(loaded, fault.KindSmall)
	large1, _ := SummaryFor(loaded, fault.KindLarge)
	if small1.AvgCycles <= small0.AvgCycles {
		t.Fatal("load did not inflate small faults")
	}
	if large1.AvgCycles <= large0.AvgCycles {
		t.Fatal("load did not inflate large faults")
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale detail run")
	}
	fs, err := Fig3(FaultStudyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	noload, loaded := fs.Rows[0], fs.Rows[1]
	hl0, ok := SummaryFor(noload, fault.KindHugeTLBLarge)
	if !ok {
		t.Fatal("no hugetlb-large faults")
	}
	// Per-fault cost in the paper's ~735K band.
	if hl0.AvgCycles < 400e3 || hl0.AvgCycles > 1.2e6 {
		t.Fatalf("hugetlb-large avg %.0f", hl0.AvgCycles)
	}
	hs0, ok := SummaryFor(noload, fault.KindHugeTLBSmall)
	if !ok {
		t.Fatal("no hugetlb-small faults")
	}
	if hs0.AvgCycles > 10_000 {
		t.Fatalf("unloaded hugetlb-small avg %.0f", hs0.AvgCycles)
	}
	// Under load: mean jumps orders of magnitude, stdev >> mean.
	hs1, _ := SummaryFor(loaded, fault.KindHugeTLBSmall)
	if hs1.AvgCycles < 5*hs0.AvgCycles {
		t.Fatalf("loaded hugetlb-small avg %.0f vs unloaded %.0f", hs1.AvgCycles, hs0.AvgCycles)
	}
	if hs1.StdevCycles < 3*hs1.AvgCycles {
		t.Fatalf("loaded hugetlb-small stdev %.0f not >> mean %.0f", hs1.StdevCycles, hs1.AvgCycles)
	}
	// No THP activity in this configuration.
	if _, ok := SummaryFor(loaded, fault.KindMergeBlocked); ok {
		t.Fatal("merge faults under HugeTLBfs (THP disabled)")
	}
}

func TestFig4TimelinesSpanTheRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale detail run")
	}
	tls, err := Fig4(FaultStudyOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 4 {
		t.Fatalf("%d timelines, want 4 (a–d)", len(tls))
	}
	for _, tl := range tls {
		if tl.Recorder.Len() == 0 {
			t.Fatalf("%s: empty", tl.Title)
		}
		s := tl.Recorder.Scatter(60, 10, true)
		if !strings.Contains(s, ".") {
			t.Fatalf("%s: no small-fault band", tl.Title)
		}
	}
	// The zoomed views must have a lower ceiling than the full views.
	fullMax := maxCost(tls[0])
	zoomMax := maxCost(tls[2])
	if zoomMax*3 > fullMax {
		t.Fatalf("zoom ceiling %d vs full %d", zoomMax, fullMax)
	}
}

func maxCost(tl Timeline) uint64 {
	var m uint64
	for _, r := range tl.Recorder.Records() {
		if uint64(r.Cost) > m {
			m = uint64(r.Cost)
		}
	}
	return m
}

func TestFig7HeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full-scale runs")
	}
	panels, err := Fig7(Fig7Options{
		Benches:    []string{"HPCCG"},
		Profiles:   []Profile{ProfileA, ProfileB},
		CoreCounts: []int{1, 8},
		Runs:       3,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range []Profile{ProfileA, ProfileB} {
		for _, cores := range []int{1, 8} {
			hp, ok1 := PointFor(panels, "HPCCG", prof, HPMMAP, cores)
			th, ok2 := PointFor(panels, "HPCCG", prof, THP, cores)
			ht, ok3 := PointFor(panels, "HPCCG", prof, HugeTLBfs, cores)
			if !ok1 || !ok2 || !ok3 {
				t.Fatalf("missing points for %s/%d", prof, cores)
			}
			// HPMMAP wins every cell.
			if hp.MeanSec >= th.MeanSec {
				t.Errorf("%s/%d: HPMMAP %.1f !< THP %.1f", prof, cores, hp.MeanSec, th.MeanSec)
			}
			if hp.MeanSec >= ht.MeanSec {
				t.Errorf("%s/%d: HPMMAP %.1f !< HugeTLBfs %.1f", prof, cores, hp.MeanSec, ht.MeanSec)
			}
		}
	}
	// THP's deficit grows with core count (profile A).
	hp1, _ := PointFor(panels, "HPCCG", ProfileA, HPMMAP, 1)
	th1, _ := PointFor(panels, "HPCCG", ProfileA, THP, 1)
	hp8, _ := PointFor(panels, "HPCCG", ProfileA, HPMMAP, 8)
	th8, _ := PointFor(panels, "HPCCG", ProfileA, THP, 8)
	if th8.MeanSec/hp8.MeanSec <= th1.MeanSec/hp1.MeanSec {
		t.Errorf("THP deficit did not grow with cores: %0.2f at 1, %0.2f at 8",
			th1.MeanSec/hp1.MeanSec, th8.MeanSec/hp8.MeanSec)
	}
	// HugeTLBfs collapses at 8 cores under profile B.
	htB8, _ := PointFor(panels, "HPCCG", ProfileB, HugeTLBfs, 8)
	hpB8, _ := PointFor(panels, "HPCCG", ProfileB, HPMMAP, 8)
	if htB8.MeanSec < 1.25*hpB8.MeanSec {
		t.Errorf("HugeTLBfs B/8 %.1f not >> HPMMAP %.1f", htB8.MeanSec, hpB8.MeanSec)
	}
	// HPMMAP runs consistently: CV below the Linux managers' at 8/B.
	thB8, _ := PointFor(panels, "HPCCG", ProfileB, THP, 8)
	if hpB8.MeanSec > 0 && thB8.MeanSec > 0 {
		hpCV := hpB8.StdevSec / hpB8.MeanSec
		thCV := thB8.StdevSec / thB8.MeanSec
		if hpCV > thCV+0.02 {
			t.Errorf("HPMMAP CV %.3f above THP CV %.3f", hpCV, thCV)
		}
	}
}

func TestFig8HeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node full-scale runs")
	}
	panels, err := Fig8(Fig8Options{
		Benches:  []string{"HPCCG"},
		Profiles: []Profile{ProfileC},
		Ranks:    []int{4, 8, 32},
		Runs:     2,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := panels[0]
	// HPMMAP beats THP at 32 ranks.
	if imp := Fig8Improvement(p, 32); imp <= 0 {
		t.Errorf("HPMMAP improvement at 32 ranks: %.1f%%", 100*imp)
	}
	// 1 -> 2 nodes adds the network: both managers slow down.
	for _, s := range p.Series {
		var r4, r8 float64
		for _, pt := range s.Points {
			if pt.Ranks == 4 {
				r4 = pt.MeanSec
			}
			if pt.Ranks == 8 {
				r8 = pt.MeanSec
			}
		}
		if r8 <= r4 {
			t.Errorf("%s: no 1->2 node network penalty (%.1f -> %.1f)", s.Kind, r4, r8)
		}
	}
}

func TestExecuteClusterValidation(t *testing.T) {
	spec, _ := workload.ByName("HPCCG")
	if _, err := ExecuteCluster(ClusterRun{Bench: spec, Kind: THP, Profile: ProfileC, Ranks: 5, Seed: 1, Scale: 0.25}); err == nil {
		t.Fatal("non-multiple-of-4 ranks accepted")
	}
}

func TestScaleSpecReducesWork(t *testing.T) {
	spec, _ := workload.ByName("miniMD")
	small := scaleSpec(spec, 0.1)
	if small.FootprintPerRank >= spec.FootprintPerRank {
		t.Fatal("scale did not shrink footprint")
	}
	if small.Iterations >= spec.Iterations {
		t.Fatal("scale did not shrink iterations")
	}
	same := scaleSpec(spec, 1)
	if same.FootprintPerRank != spec.FootprintPerRank {
		t.Fatal("scale 1 changed the spec")
	}
}

func TestManagerAndProfileStrings(t *testing.T) {
	if THP.String() == "?" || HugeTLBfs.String() == "?" || HPMMAP.String() == "?" {
		t.Fatal("manager names")
	}
	if ProfileA.String() != "A" || ProfileD.String() != "D" {
		t.Fatal("profile names")
	}
}

func TestModelOverridesApply(t *testing.T) {
	spec, _ := workload.ByName("miniFE")
	base, err := ExecuteSingleNodeWithOverrides(SingleRun{
		Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 5, Scale: 0.25,
	}, ModelOverrides{})
	if err != nil {
		t.Fatal(err)
	}
	slow := 40.0
	slowed, err := ExecuteSingleNodeWithOverrides(SingleRun{
		Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 5, Scale: 0.25,
	}, ModelOverrides{StoreCycles: &slow})
	if err != nil {
		t.Fatal(err)
	}
	if slowed.RuntimeSec <= base.RuntimeSec {
		t.Fatalf("4x clear cost did not slow the run: %.2f vs %.2f", slowed.RuntimeSec, base.RuntimeSec)
	}
	lat := 500.0
	slower, err := ExecuteSingleNodeWithOverrides(SingleRun{
		Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 5, Scale: 0.25,
	}, ModelOverrides{MemLatency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if slower.RuntimeSec <= base.RuntimeSec {
		t.Fatalf("3x memory latency did not slow the run: %.2f vs %.2f", slower.RuntimeSec, base.RuntimeSec)
	}
}

// TestFidelityModesAgree runs the same cell at micro (per-fault, real
// page tables) and macro (aggregated) fidelity: the two paths share one
// cost model and must produce runtimes within a tight band of each other.
func TestFidelityModesAgree(t *testing.T) {
	spec, _ := workload.ByName("HPCCG")
	run := func(detail bool) float64 {
		out, err := ExecuteSingleNode(SingleRun{
			Bench: spec, Kind: THP, Profile: ProfileA, Ranks: 2, Seed: 77,
			Scale: 0.5, Detail: detail,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.RuntimeSec
	}
	macro := run(false)
	micro := run(true)
	ratio := micro / macro
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("fidelity modes diverge: micro %.1fs vs macro %.1fs (ratio %.3f)", micro, macro, ratio)
	}
}

func TestNoiseAmplification(t *testing.T) {
	points, err := NoiseStudy(NoiseStudyOptions{
		Prob:           0.2,
		DurationCycles: 200_000_000, // 91ms detours: above the natural jitter
		RankCounts:     []int{1, 8},
		Seed:           5,
		Scale:          0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	one, eight := points[0], points[1]
	if one.SlowdownSec <= 0 || eight.SlowdownSec <= 0 {
		t.Fatalf("noise cost not positive: %+v %+v", one, eight)
	}
	// Bulk-synchronous amplification: at p=0.2, 8 ranks stall an
	// iteration with probability 1-(0.8)^8 ≈ 0.83 — roughly 4x the
	// single-rank exposure.
	if eight.SlowdownSec < 2*one.SlowdownSec {
		t.Fatalf("no amplification: 1 rank %.2fs vs 8 ranks %.2fs", one.SlowdownSec, eight.SlowdownSec)
	}
	if s := WriteNoiseStudy(points); len(s) == 0 {
		t.Fatal("empty render")
	}
}

// TestTwoRegisteredAppsShareThePool runs two independently registered HPC
// applications concurrently on one HPMMAP node: both must complete with
// zero faults from one offlined pool — the paper's "dynamically partition
// a node's physical memory" claim.
func TestTwoRegisteredAppsShareThePool(t *testing.T) {
	rig, err := newRig(kernel.DellR415(), HPMMAP, 3, false, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	spec := scaleSpec(mustSpec(t, "HPCCG"), 0.2)
	launch := rig.launcher()
	results := make([]workload.Result, 2)
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		cores := []int{i, 6 + i} // interleave the two apps across zones
		var pls []workload.RankPlacement
		for _, c := range cores {
			pls = append(pls, workload.RankPlacement{Node: rig.node, Core: c, Launch: launch})
		}
		if _, err := workload.Start(rig.eng, workload.Options{Spec: spec, Ranks: pls},
			func(got workload.Result) { results[i] = got; done++ }); err != nil {
			t.Fatal(err)
		}
	}
	for done < 2 && rig.eng.Step() {
	}
	if done != 2 {
		t.Fatal("apps did not complete")
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("app %d: %v", i, res.Err)
		}
		for _, rr := range res.Ranks {
			if rr.Faults.TotalFaults() != 0 {
				t.Fatalf("app %d faulted: %+v", i, rr.Faults)
			}
		}
	}
	// All pool memory is back.
	if rig.hp.PoolFreeBytes() != rig.hp.PoolTotalBytes() {
		t.Fatalf("pool leaked: %d of %d free", rig.hp.PoolFreeBytes(), rig.hp.PoolTotalBytes())
	}
}

func mustSpec(t *testing.T, name string) workload.AppSpec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	return s
}

// Quick plumbing coverage for the sweep runners (full-scale shape checks
// live above, skipped with -short).
func TestFig7QuickPath(t *testing.T) {
	panels, err := Fig7(Fig7Options{
		Benches:    []string{"miniFE"},
		Profiles:   []Profile{ProfileA},
		CoreCounts: []int{2},
		Runs:       2,
		Seed:       3,
		Scale:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 || len(panels[0].Series) != 3 {
		t.Fatalf("panels: %+v", panels)
	}
	for _, s := range panels[0].Series {
		if len(s.Points) != 1 || s.Points[0].MeanSec <= 0 {
			t.Fatalf("series %s: %+v", s.Kind, s.Points)
		}
	}
	if _, err := Fig7(Fig7Options{Benches: []string{"bogus"}, Scale: 0.25}); err == nil {
		t.Fatal("bogus bench accepted")
	}
}

func TestFig8QuickPath(t *testing.T) {
	panels, err := Fig8(Fig8Options{
		Benches:  []string{"LAMMPS"},
		Profiles: []Profile{ProfileC},
		Ranks:    []int{4},
		Runs:     1,
		Seed:     3,
		Scale:    0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 || len(panels[0].Series) != 2 {
		t.Fatalf("panels: %+v", panels)
	}
	if _, err := Fig8(Fig8Options{Benches: []string{"bogus"}, Scale: 0.25}); err == nil {
		t.Fatal("bogus bench accepted")
	}
}

func TestFaultStudyQuickPath(t *testing.T) {
	fs, err := RunFaultStudy(FaultStudyOptions{Bench: "miniFE", Kind: THP, Ranks: 2, Seed: 4, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Rows) != 2 || fs.Rows[0].Recorder.Len() == 0 {
		t.Fatalf("study: %+v", fs)
	}
	if _, err := RunFaultStudy(FaultStudyOptions{Bench: "bogus", Scale: 0.25}); err == nil {
		t.Fatal("bogus bench accepted")
	}
	// Fig5 plumbing at reduced scale.
	tls, err := Fig5(FaultStudyOptions{Seed: 4, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 6 {
		t.Fatalf("fig5 panels: %d", len(tls))
	}
}
