package experiments

import (
	"encoding/json"
	"os"
	"testing"

	"hpmmap/internal/runner"
)

// These tests pin the runner-integration half of the determinism
// contract: the figure harnesses must produce byte-identical results at
// any worker count, because every cell's seed derives from its grid
// coordinates rather than from execution order. (The executor half —
// scheduling independence for a pure cell function — lives in
// internal/runner's own tests.)

// fig7Reduced is a grid small enough for the race detector but wide
// enough to exercise every axis: 2 benches x 1 profile x 3 managers x
// 2 core counts x 2 runs = 24 cells.
func fig7Reduced(workers int, cache *runner.Cache) Fig7Options {
	return Fig7Options{
		Benches:    []string{"HPCCG", "miniFE"},
		Profiles:   []Profile{ProfileA},
		CoreCounts: []int{1, 2},
		Runs:       2,
		Seed:       101,
		Scale:      0.25,
		Workers:    workers,
		Cache:      cache,
	}
}

func asJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFig7IdenticalAcrossWorkerCounts(t *testing.T) {
	serial, err := Fig7(fig7Reduced(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig7(fig7Reduced(8, nil))
	if err != nil {
		t.Fatal(err)
	}
	a, b := asJSON(t, serial), asJSON(t, parallel)
	if string(a) != string(b) {
		t.Fatalf("Fig7 panels differ between Workers=1 and Workers=8:\n%s\nvs\n%s", a, b)
	}
}

func TestFig8IdenticalAcrossWorkerCounts(t *testing.T) {
	opts := func(workers int) Fig8Options {
		return Fig8Options{
			Benches:  []string{"LAMMPS"},
			Profiles: []Profile{ProfileC},
			Ranks:    []int{4, 8},
			Runs:     2,
			Seed:     202,
			Scale:    0.25,
			Workers:  workers,
		}
	}
	serial, err := Fig8(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := asJSON(t, serial), asJSON(t, parallel)
	if string(a) != string(b) {
		t.Fatalf("Fig8 panels differ between Workers=1 and Workers=8:\n%s\nvs\n%s", a, b)
	}
}

// TestFig7ProgressSerializedUnderParallelism drives the legacy
// func(string) progress option at Workers=8: the runner's serialized
// sink must make unsynchronized callback state safe (this test is the
// regression for the thread-safety contract documented on the option,
// and fails under -race if the sink ever overlaps invocations).
func TestFig7ProgressSerializedUnderParallelism(t *testing.T) {
	o := fig7Reduced(8, nil)
	lines := 0 // unsynchronized on purpose: the sink contract
	o.Progress = func(string) { lines++ }
	if _, err := Fig7(o); err != nil {
		t.Fatal(err)
	}
	// 2 benches x 1 profile x 2 core counts x 3 default managers x 2 runs.
	want := len(o.Benches) * len(o.Profiles) * len(o.CoreCounts) * 3 * o.Runs
	if lines != want {
		t.Fatalf("progress lines: %d, want %d", lines, want)
	}
}

// TestFig7CacheRoundTrip proves the result cache short-circuits
// re-simulation: a second run against a populated cache returns
// identical panels, and corrupting the cache version forces a miss.
func TestFig7CacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := runner.NewCache(dir, ModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Fig7(fig7Reduced(4, cache))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 24 {
		t.Fatalf("cache holds %d entries, want 24", len(entries))
	}
	// Second run: every cell hits the cache; panels must be identical.
	second, err := Fig7(fig7Reduced(4, cache))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := asJSON(t, first), asJSON(t, second); string(a) != string(b) {
		t.Fatalf("cached rerun diverged:\n%s\nvs\n%s", a, b)
	}
	// A different model version must not see the old entries.
	bumped, err := runner.NewCache(dir, ModelVersion+"-next")
	if err != nil {
		t.Fatal(err)
	}
	cell := runner.Cell{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 1, Run: 0}
	var cc struct{ RuntimeSec float64 }
	if bumped.Get(bumped.Key("fig7", cell, cell.Seed(101), 0.25), &cc) {
		t.Fatal("version bump did not invalidate the cache")
	}
}
