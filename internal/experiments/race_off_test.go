//go:build !race

package experiments

// raceEnabled reports whether the race detector is active; the pinned-
// output golden test skips itself under -race (see golden_test.go).
const raceEnabled = false
