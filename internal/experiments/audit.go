package experiments

import (
	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/metrics"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
)

// This file wires the invariant auditor (internal/invariant) to a booted
// rig. The invariant package is a dependency leaf — it knows nothing
// about zones, swap devices or page tables — so the experiment harness
// is where node state meets consistency checks. The auditor is strictly
// opt-in: it schedules extra engine events (legitimately changing
// sim_events_total), so baseline figure runs never attach one.

// zoneDeepAuditStride is how many audit ticks separate two full
// (per-frame) zone scans; ticks in between run the cheap per-block
// accounting check. The first tick is always deep, so even short cells
// get one exhaustive pass.
const zoneDeepAuditStride = 64

// auditPeriod returns the audit cadence: the scheduler-tick boundary,
// as the paper's accounting granularity. Falls back to 1ms of simulated
// time when the machine config carries no scheduler period.
func auditPeriod(clockHz float64) sim.Cycles {
	p := sim.Cycles(clockHz / 1000) // 1ms
	if p < 1 {
		p = 1
	}
	return p
}

// newNodeAuditor builds the standard node-state audit set for one rig:
//
//   - zone_accounting: buddy conservation + coalescing in every NUMA
//     zone (mem.Zone.CheckInvariants)
//   - swap_accounting: the swap device never over-commits its slots
//   - vma_non_overlap: every live process's VMA list stays sorted,
//     non-overlapping and page-aligned (vma.Space.CheckInvariants)
//   - hpmmap_pool: HPMMAP's per-zone buddy pools conserve their bytes
//     (buddy.Allocator.CheckInvariants), when HPMMAP is installed
//   - pgtable_roundtrip: a scratch page table still round-trips
//     map→walk→unmap at every granularity (a self-contained probe — it
//     never mutates simulated state)
//
// The auditor is returned un-started; callers Start it on the rig's
// engine at the scheduler-tick cadence and Stop it when the run ends.
func newNodeAuditor(r *rig, reg *metrics.Registry) *invariant.Auditor {
	a := invariant.NewAuditor()
	node := r.node
	// Zone audits are two-speed: the O(free blocks) accounting check
	// (conservation, bounds, alignment, coalescing) runs at every tick,
	// while the O(free frames) duplicate-frame scan — millions of map
	// inserts on a large zone — runs on a strided deep pass. Without the
	// stride, a 1ms cadence on a 16GB zone turns a sub-second cell into
	// minutes of wall clock.
	zoneTick := 0
	a.AddCheck("zone_accounting", func() error {
		zoneTick++
		deep := zoneTick%zoneDeepAuditStride == 1 || zoneDeepAuditStride == 1
		for _, z := range node.Mem.Zones {
			var err error
			if deep {
				err = z.CheckInvariants()
			} else {
				err = z.CheckAccounting()
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	a.AddCheck("swap_accounting", func() error {
		s := node.Swap()
		if s.UsedPages() > s.TotalPages {
			return invariant.Errorf("swap_accounting", "kernel",
				"swap device over-committed: %d slots used of %d", s.UsedPages(), s.TotalPages)
		}
		return nil
	})
	a.AddCheck("vma_non_overlap", func() error {
		var found error
		node.Processes(func(p *kernel.Process) {
			if found != nil || p.Exited {
				return
			}
			if err := p.Space.CheckInvariants(); err != nil {
				found = &invariant.Violation{
					Check: "vma_non_overlap", Subsystem: "vma",
					PID: p.PID, Node: -1, Detail: err.Error(),
				}
			}
		})
		return found
	})
	if r.hp != nil {
		hp := r.hp
		a.AddCheck("hpmmap_pool", func() error {
			for z := 0; z < node.Config().NumaZones; z++ {
				pool := hp.ZonePool(z)
				if pool == nil {
					continue
				}
				if err := pool.CheckInvariants(); err != nil {
					return &invariant.Violation{
						Check: "hpmmap_pool", Subsystem: "buddy",
						Manager: "hpmmap", Node: -1, Detail: err.Error(),
					}
				}
			}
			return nil
		})
	}
	a.AddCheck("pgtable_roundtrip", pgtableRoundTrip)
	a.Observe(reg)
	return a
}

// pgtableRoundTrip probes the page-table implementation with a scratch
// table: map, walk and unmap one page at each granularity and verify
// the walker sees exactly what was mapped. The probe is self-contained
// (its table is discarded), so it can run at every audit tick without
// perturbing simulated state.
func pgtableRoundTrip() error {
	t := pgtable.New()
	probes := []struct {
		va  pgtable.VirtAddr
		pfn mem.PFN
		ps  pgtable.PageSize
	}{
		{0x7f00_0000_0000, 0x1000, pgtable.Page4K},
		{0x7f00_4000_0000, 0x2000, pgtable.Page2M},
		{0x7f40_0000_0000, 0x4000, pgtable.Page1G},
	}
	for _, pr := range probes {
		if err := t.Map(pr.va, pr.pfn, pr.ps, pgtable.ProtRead|pgtable.ProtWrite); err != nil {
			return invariant.Errorf("pgtable_roundtrip", "pgtable",
				"map %s at %#x failed: %v", pr.ps, pr.va, err)
		}
		m, ok := t.Walk(pr.va)
		if !ok || m.PFN != pr.pfn || m.Size != pr.ps {
			return invariant.Errorf("pgtable_roundtrip", "pgtable",
				"walk after map %s at %#x: ok=%v got pfn=%d size=%v want pfn=%d size=%v",
				pr.ps, pr.va, ok, m.PFN, m.Size, pr.pfn, pr.ps)
		}
		pfn, err := t.Unmap(pr.va, pr.ps)
		if err != nil || pfn != pr.pfn {
			return invariant.Errorf("pgtable_roundtrip", "pgtable",
				"unmap %s at %#x: pfn=%d err=%v (want pfn=%d)", pr.ps, pr.va, pfn, err, pr.pfn)
		}
		if _, ok := t.Walk(pr.va); ok {
			return invariant.Errorf("pgtable_roundtrip", "pgtable",
				"walk still resolves %#x after unmap", pr.va)
		}
	}
	if got := t.MappedBytes(); got != 0 {
		return invariant.Errorf("pgtable_roundtrip", "pgtable",
			"scratch table retains %d mapped bytes after unmap", got)
	}
	return nil
}
