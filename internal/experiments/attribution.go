package experiments

import (
	"context"
	"fmt"
	"io"

	"hpmmap/internal/runner"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

// Barrier noise-attribution study: run one benchmark under commodity
// interference for each memory manager with the timeline attributor
// attached, and decompose where every barrier's straggler lateness came
// from — fault service, reclaim storms, khugepaged merge blocking,
// syscall time, scheduler sharing. This is the diagnostic companion to
// the Figure 7 runtime bars: the bars show THAT the Linux managers lose
// time under load; the attribution shows WHERE the critical path lost
// it, and that HPMMAP's barriers carry no memory-management excess.

// AttributionStudyOptions configures the study.
type AttributionStudyOptions struct {
	Bench    string        // default miniMD (the Fig. 2/4 subject)
	Managers []ManagerKind // default THP, HugeTLBfs, HPMMAP
	Profile  Profile       // default A (one competing kernel build)
	Ranks    int           // default 8
	Seed     uint64
	Scale    Scale
	// Workers bounds the worker pool running the study's cells in
	// parallel; <= 0 selects runtime.NumCPU(). Summaries are
	// byte-identical at any worker count.
	Workers int
	// Context, when non-nil, cancels the study.
	Context context.Context
	// Progress receives one line per completed cell from the runner's
	// serialized sink (calls never overlap).
	Progress func(string)
	// Obs, when non-nil, collects per-cell metric snapshots and Chrome
	// trace events; with series enabled it also samples each cell.
	// Attribution cells are never cached (like the fault studies), so
	// every cell contributes fresh artifacts.
	Obs *runner.Observations
}

func (o *AttributionStudyOptions) defaults() {
	if o.Bench == "" {
		o.Bench = "miniMD"
	}
	if len(o.Managers) == 0 {
		o.Managers = []ManagerKind{THP, HugeTLBfs, HPMMAP}
	}
	if o.Profile == 0 {
		o.Profile = ProfileA
	}
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	if o.Seed == 0 {
		o.Seed = 0xa77b
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// AttributionCell is one manager's attributed run.
type AttributionCell struct {
	Kind       ManagerKind
	RuntimeSec float64
	Summary    timeline.Summary
}

// RunAttributionStudy executes the managers × one-profile grid as one
// runner plan and returns one attributed cell per manager, in the order
// of o.Managers.
func RunAttributionStudy(o AttributionStudyOptions) ([]AttributionCell, error) {
	o.defaults()
	spec, ok := workload.ByName(o.Bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", o.Bench)
	}
	plan := runner.Plan{Name: "attribution", Seed: o.Seed}
	for _, kind := range o.Managers {
		plan.Cells = append(plan.Cells, runner.Cell{
			Exp: "attribution", Bench: o.Bench, Profile: o.Profile.String(),
			Manager: kind.Key(), Cores: o.Ranks, Run: 0,
		})
	}
	type cellOut struct {
		RuntimeSec float64
		Summary    timeline.Summary
	}
	kinds := o.Managers
	cells, err := runner.Run(runner.Options{
		Workers:  o.Workers,
		Context:  o.Context,
		Progress: runtimeProgress(o.Progress),
		Ledger:   o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (cellOut, error) {
		attr := timeline.NewAttribution(o.Ranks)
		reg, tr := o.Obs.Cell(idx, cell.String())
		out, err := ExecuteSingleNode(SingleRun{
			Bench:       spec,
			Kind:        kinds[idx],
			Profile:     o.Profile,
			Ranks:       o.Ranks,
			Seed:        seed,
			Scale:       o.Scale,
			Metrics:     reg,
			Tracer:      tr,
			Context:     ctx,
			Series:      o.Obs.Series(idx),
			Attribution: attr,
		})
		if err != nil {
			return cellOut{}, err
		}
		o.Obs.Snap(idx)
		return cellOut{RuntimeSec: out.RuntimeSec, Summary: attr.Summarize()}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("attribution: %w", err)
	}
	out := make([]AttributionCell, len(cells))
	for i, c := range cells {
		out[i] = AttributionCell{Kind: kinds[i], RuntimeSec: c.RuntimeSec, Summary: c.Summary}
	}
	return out, nil
}

// WriteAttributionStudy renders the study as the report's "noise
// attribution" block: one per-manager section with runtime, then the
// summary's cause table, straggler distribution and worst barriers.
// Deterministic.
func WriteAttributionStudy(w io.Writer, cells []AttributionCell) error {
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%s — runtime %.1f s\n", c.Kind, c.RuntimeSec); err != nil {
			return err
		}
		if err := c.Summary.WriteReport(w); err != nil {
			return err
		}
	}
	return nil
}
