package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hpmmap/internal/chaos"
	"hpmmap/internal/datacenter"
	"hpmmap/internal/kernel"
	"hpmmap/internal/metrics"
	"hpmmap/internal/runner"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

// The eviction study exercises the datacenter failure domain (ISSUE 8 /
// ROADMAP item 2): one mixed-tenancy node runs a resident HPC victim on
// HPMMAP while the kubelet-style agent overcommits its zone budgets —
// admission checks requests, usage grows to limits — and the
// pressure-driven eviction engine sheds pods lowest-priority-first when
// a zone overruns its budget or node commit pressure spikes. The chaos
// axis adds node-level memory-hotplug failure: a NUMA zone drops out
// and its pods are evicted or rescheduled onto the survivors. The study
// reports per-priority eviction and crash-loop restart counts, the
// restart backoff distribution, per-tenant-class fault tails, and the
// victim's interference vs the quiet cell. The paper's claim under
// test: the failure domain churns the commodity side violently while
// the HPMMAP victim — allocating from offlined pools, immune to the
// eviction TLB shootdowns — does not move.

// EvictionStudyOptions configures the overcommit × node-failure grid.
type EvictionStudyOptions struct {
	// Bench is the resident HPC victim (default HPCCG).
	Bench string
	// Overcommits is the limits:requests sweep axis (default 1, 1.5, 2).
	// 1 must come first: it disables the failure domain and is the
	// interference baseline.
	Overcommits []float64
	// Chaos is the node-failure chaos intensity axis (default 0, 0.75).
	// Unlike the datacenter study this enables only the node-failure
	// family — the axis isolates zone outages, not general mayhem.
	Chaos []float64
	// Churn is the pod arrival rate in pods per simulated second
	// (default 200 — pressure-heavy, so overcommit actually overruns).
	Churn float64
	// Ranks is the victim's rank count (default 4).
	Ranks int
	// Runs per (overcommit, chaos) point (default 1).
	Runs  int
	Seed  uint64
	Scale Scale
	// Pod shape overrides; zero fields keep datacenter.DefaultConfig.
	PodBytes      uint64
	ResidentBytes uint64
	// Progress receives one line per completed cell (serialized sink).
	Progress func(string)
	Workers  int
	Context  context.Context
	Cache    *runner.Cache
	Obs      *runner.Observations
	// Audit attaches the invariant auditor to every cell's node — the
	// frame/VMA/pool conservation net under every eviction and outage.
	Audit bool
	// CellTimeout bounds one cell's wall clock (0 = none).
	CellTimeout time.Duration
	// Retries re-runs host-transient cell failures (cache I/O).
	Retries int
}

func (o *EvictionStudyOptions) defaults() {
	if o.Bench == "" {
		o.Bench = "HPCCG"
	}
	if len(o.Overcommits) == 0 {
		o.Overcommits = []float64{1, 1.5, 2}
	}
	if len(o.Chaos) == 0 {
		o.Chaos = []float64{0, 0.75}
	}
	if o.Churn == 0 {
		o.Churn = 200
	}
	if o.Ranks == 0 {
		o.Ranks = 4
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0xe71c
	}
}

// EvictionCell is one (overcommit, chaos, run) cell, reduced to the
// values the study tables need (and caches).
type EvictionCell struct {
	RuntimeSec float64                                     `json:"runtime_sec"`
	Classes    [datacenter.NumClasses]DatacenterClassStats `json:"classes"`
	Launched   uint64                                      `json:"launched"`
	Rejected   uint64                                      `json:"rejected"`
	Completed  uint64                                      `json:"completed"`
	OOMKilled  uint64                                      `json:"oom_killed"`
	// Per-priority failure-domain counters.
	Evicted  [datacenter.NumPriorities]uint64 `json:"evicted"`
	Restarts [datacenter.NumPriorities]uint64 `json:"restarts"`
	// Rescheduled counts zone-failure displacements that found a
	// surviving zone immediately; ZoneFailures counts outages the agent
	// absorbed; EvictionPasses counts eviction-manager sweeps.
	Rescheduled    uint64 `json:"rescheduled"`
	ZoneFailures   uint64 `json:"zone_failures"`
	EvictionPasses uint64 `json:"eviction_passes"`
	// Backoff* summarize the crash-loop restart delay histogram
	// (log2-bucket upper bounds, cycles).
	BackoffCount uint64 `json:"backoff_count"`
	BackoffP50   uint64 `json:"backoff_p50"`
	BackoffP99   uint64 `json:"backoff_p99"`
	// Violations is invariant_violations_total after the cell (audited
	// runs; the study asserts it stays zero).
	Violations uint64 `json:"violations"`
	// Barriers and DominantCause summarize the victim's barrier
	// critical-path attribution for the cell.
	Barriers      int              `json:"barriers"`
	DominantCause string           `json:"dominant_cause"`
	Metrics       metrics.Snapshot `json:"metrics,omitempty"`
}

// EvictionPoint aggregates one (overcommit, chaos) grid point.
type EvictionPoint struct {
	Overcommit float64
	Chaos      float64
	Cells      []EvictionCell
	// MeanSec is the mean victim runtime; InterferencePct is its
	// increase relative to the quiet (overcommit 1, chaos 0) point.
	MeanSec         float64
	InterferencePct float64
}

// EvictionStudy is the full grid.
type EvictionStudy struct {
	Bench  string
	Ranks  int
	Churn  float64
	Points []EvictionPoint
}

// evictionVariant encodes the sweep coordinate into the cell Variant
// axis (and therefore the seed derivation and the cache key).
func evictionVariant(overcommit, intensity float64) string {
	return fmt.Sprintf("o%g-x%g", overcommit, intensity)
}

// EvictionStudyRun executes the overcommit × node-failure grid on the
// mixed-tenancy configuration. Results are byte-identical at any worker
// count, cold or warm cache.
func EvictionStudyRun(o EvictionStudyOptions) (EvictionStudy, error) {
	o.defaults()
	spec, ok := workload.ByName(o.Bench)
	if !ok {
		return EvictionStudy{}, fmt.Errorf("experiments: unknown benchmark %q", o.Bench)
	}

	type cellMeta struct {
		overcommit float64
		intensity  float64
	}
	plan := runner.Plan{Name: "eviction", Seed: o.Seed}
	var metas []cellMeta
	for _, oc := range o.Overcommits {
		for _, x := range o.Chaos {
			for run := 0; run < o.Runs; run++ {
				plan.Cells = append(plan.Cells, runner.Cell{
					Exp: "eviction", Bench: o.Bench, Profile: ProfileNone.String(),
					Manager: Mixed.Key(), Variant: evictionVariant(oc, x),
					Cores: o.Ranks, Run: run,
				})
				metas = append(metas, cellMeta{overcommit: oc, intensity: x})
			}
		}
	}

	o.Obs.ObserveCache(o.Cache)
	progress := func(e runner.Event) {
		if o.Progress == nil {
			return
		}
		msg := e.String()
		if ec, ok := e.Result.(EvictionCell); ok {
			msg += fmt.Sprintf(": %.1f s, %d evicted, %d restarts", ec.RuntimeSec, total(ec.Evicted), total(ec.Restarts))
		}
		o.Progress(msg)
	}
	if o.Progress == nil {
		progress = nil
	}
	// Time-series sampling can't be reconstructed from a cached cell, so
	// a series-enabled study bypasses the cache (the fig7 pattern).
	useCache := !o.Obs.SeriesEnabled()
	clockHz := kernel.DellR415().ClockHz

	results, err := runner.Run(runner.Options{
		Workers:     o.Workers,
		Context:     o.Context,
		Progress:    progress,
		CellTimeout: o.CellTimeout,
		Retries:     o.Retries,
		Metrics:     o.Obs.PlanRegistry(),
		Ledger:      o.Obs.LedgerSink(),
	}, plan, func(ctx context.Context, idx int, cell runner.Cell, seed uint64) (EvictionCell, error) {
		key := o.Cache.Key(plan.Name, cell, seed, float64(o.Scale))
		var ec EvictionCell
		if useCache && o.Cache.Get(key, &ec) {
			if o.Obs == nil || len(ec.Metrics.Metrics) > 0 {
				o.Obs.LedgerSink().CacheHit(idx)
				o.Obs.Record(idx, ec.Metrics)
				return ec, nil
			}
			ec = EvictionCell{}
		}
		if useCache && o.Cache != nil {
			o.Obs.LedgerSink().CacheMiss(idx)
		}
		reg, tr := o.Obs.Cell(idx, cell.String())
		dcCfg := datacenter.DefaultConfig()
		dcCfg.ChurnMeanPeriod = sim.Cycles(clockHz / o.Churn)
		if o.PodBytes > 0 {
			dcCfg.PodBytes = o.PodBytes
		}
		if o.ResidentBytes > 0 {
			dcCfg.ResidentBytes = o.ResidentBytes
		}
		dcCfg.Failure.Overcommit = metas[idx].overcommit
		var inj *chaos.Injector
		if metas[idx].intensity > 0 {
			// Node-failure only: the axis isolates zone outages.
			inj = chaos.New(chaos.Config{
				Intensity: metas[idx].intensity,
				NodeFails: true,
			}, seed)
		}
		attr := timeline.NewAttribution(o.Ranks)
		out, err := ExecuteSingleNode(SingleRun{
			Bench:       spec,
			Kind:        Mixed,
			Profile:     ProfileNone,
			Ranks:       o.Ranks,
			Seed:        seed,
			Scale:       o.Scale,
			Metrics:     reg,
			Tracer:      tr,
			Context:     ctx,
			Chaos:       inj,
			Audit:       o.Audit,
			Series:      o.Obs.Series(idx),
			Attribution: attr,
			Datacenter:  &dcCfg,
		})
		if err != nil {
			return EvictionCell{}, err
		}
		ec.RuntimeSec = out.RuntimeSec
		if a := out.Datacenter; a != nil {
			ec.Launched = a.LaunchedTotal()
			ec.Rejected = a.Rejected
			ec.Completed = a.Completed
			ec.OOMKilled = a.OOMKilled
			ec.Evicted = a.Evicted
			ec.Restarts = a.Restarts
			ec.Rescheduled = a.Rescheduled
			ec.ZoneFailures = a.ZoneFailures
			ec.EvictionPasses = a.EvictionPasses
			ec.BackoffCount = a.BackoffHist.Count()
			ec.BackoffP50 = a.BackoffHist.Quantile(0.50)
			ec.BackoffP99 = a.BackoffHist.Quantile(0.99)
			for c := datacenter.Class(0); c < datacenter.NumClasses; c++ {
				ec.Classes[c] = DatacenterClassStats{
					Slices:  a.TouchHist[c].Count(),
					P50:     a.TouchHist[c].Quantile(0.50),
					P99:     a.TouchHist[c].Quantile(0.99),
					P999:    a.TouchHist[c].Quantile(0.999),
					MmapP50: a.MmapHist[c].Quantile(0.50),
				}
			}
		}
		sum := attr.Summarize()
		ec.Barriers = sum.Barriers
		if cause, ok := sum.DominantCause(); ok {
			ec.DominantCause = cause.String()
		}
		ec.Metrics = o.Obs.Snap(idx)
		ec.Violations = ec.Metrics.CounterValue(metrics.InvariantViolationsTotal)
		if useCache {
			_ = o.Cache.Put(key, ec)
		}
		return ec, nil
	})
	if err != nil {
		return EvictionStudy{}, fmt.Errorf("eviction study: %w", err)
	}

	study := EvictionStudy{Bench: o.Bench, Ranks: o.Ranks, Churn: o.Churn}
	i := 0
	var baseMean float64
	for _, oc := range o.Overcommits {
		for _, x := range o.Chaos {
			pt := EvictionPoint{Overcommit: oc, Chaos: x}
			var sum float64
			for run := 0; run < o.Runs; run++ {
				pt.Cells = append(pt.Cells, results[i])
				sum += results[i].RuntimeSec
				i++
			}
			pt.MeanSec = sum / float64(o.Runs)
			if oc == o.Overcommits[0] && x == 0 {
				baseMean = pt.MeanSec
			} else if baseMean > 0 {
				pt.InterferencePct = (pt.MeanSec - baseMean) / baseMean * 100
			}
			study.Points = append(study.Points, pt)
		}
	}
	return study, nil
}

func total(v [datacenter.NumPriorities]uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}

// WriteEvictionStudy renders the per-cell failure-domain and
// interference table. Deterministic.
func WriteEvictionStudy(w io.Writer, s EvictionStudy) {
	fmt.Fprintf(w, "=== Eviction study: %s victim, %d ranks, %g pods/s churn, overcommit × node-failure chaos ===\n",
		s.Bench, s.Ranks, s.Churn)
	for _, pt := range s.Points {
		fmt.Fprintf(w, "\n-- overcommit %gx, chaos %.2f: runtime %.1f s", pt.Overcommit, pt.Chaos, pt.MeanSec)
		if !(pt.Overcommit == s.Points[0].Overcommit && pt.Chaos == 0) {
			fmt.Fprintf(w, " (%+.1f%% vs quiet)", pt.InterferencePct)
		}
		fmt.Fprintln(w)
		for _, c := range pt.Cells {
			fmt.Fprintf(w, "   pods: %d launched, %d rejected, %d completed, %d oom-killed; %d zone failures, %d rescheduled, %d eviction passes\n",
				c.Launched, c.Rejected, c.Completed, c.OOMKilled, c.ZoneFailures, c.Rescheduled, c.EvictionPasses)
			fmt.Fprintf(w, "   %-11s %10s %10s\n", "priority", "evicted", "restarts")
			for p := datacenter.Priority(0); p < datacenter.NumPriorities; p++ {
				fmt.Fprintf(w, "   %-11s %10d %10d\n", p, c.Evicted[p], c.Restarts[p])
			}
			if c.BackoffCount > 0 {
				fmt.Fprintf(w, "   backoff: %d restart delays, p50 %d cycles, p99 %d cycles\n",
					c.BackoffCount, c.BackoffP50, c.BackoffP99)
			}
			if c.DominantCause != "" {
				fmt.Fprintf(w, "   dominant barrier cause: %s (%d barriers)", c.DominantCause, c.Barriers)
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "   invariant violations: %d\n", c.Violations)
			fmt.Fprintf(w, "   %-11s %8s %12s %12s %12s %10s\n", "class", "slices", "p50", "p99", "p999", "mmap p50")
			for cl := datacenter.Class(0); cl < datacenter.NumClasses; cl++ {
				st := c.Classes[cl]
				fmt.Fprintf(w, "   %-11s %8d %12d %12d %12d %10d\n",
					cl, st.Slices, st.P50, st.P99, st.P999, st.MmapP50)
			}
		}
	}
}

// WriteEvictionCSV renders the study as one CSV row per (point, run,
// priority) for downstream tooling. Deterministic.
func WriteEvictionCSV(w io.Writer, s EvictionStudy) error {
	if _, err := fmt.Fprintln(w, "overcommit,chaos_intensity,run,priority,evicted,restarts,backoff_count,backoff_p50_cycles,backoff_p99_cycles,runtime_sec,interference_pct,pods_launched,pods_rejected,pods_completed,pods_oom_killed,rescheduled,zone_failures,eviction_passes,violations"); err != nil {
		return err
	}
	for _, pt := range s.Points {
		for run, c := range pt.Cells {
			for p := datacenter.Priority(0); p < datacenter.NumPriorities; p++ {
				if _, err := fmt.Fprintf(w, "%g,%g,%d,%s,%d,%d,%d,%d,%d,%.3f,%.2f,%d,%d,%d,%d,%d,%d,%d,%d\n",
					pt.Overcommit, pt.Chaos, run, p, c.Evicted[p], c.Restarts[p],
					c.BackoffCount, c.BackoffP50, c.BackoffP99,
					c.RuntimeSec, pt.InterferencePct, c.Launched, c.Rejected, c.Completed, c.OOMKilled,
					c.Rescheduled, c.ZoneFailures, c.EvictionPasses, c.Violations); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
