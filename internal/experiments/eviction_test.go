package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hpmmap/internal/datacenter"
	"hpmmap/internal/runner"
)

// tinyEvictionOpts is the smallest grid that still exercises every leg
// of the failure domain: an overcommit point with pressure eviction, a
// chaos point with zone outages, and the quiet baseline.
func tinyEvictionOpts() EvictionStudyOptions {
	return EvictionStudyOptions{
		Bench:         "HPCCG",
		Overcommits:   []float64{1, 1.5},
		Chaos:         []float64{0, 1},
		Churn:         100,
		Ranks:         2,
		Runs:          1,
		Seed:          41,
		Scale:         0.1,
		PodBytes:      16 << 20,
		ResidentBytes: 16 << 20,
	}
}

// TestEvictionStudySmall is the ISSUE 8 acceptance panel: under
// overcommit with node-failure chaos, guaranteed pods take zero
// evictions while best-effort pods absorb them, the HPMMAP victim's
// runtime stays within 1% of the quiet cell, and no invariant breaks.
func TestEvictionStudySmall(t *testing.T) {
	s, err := EvictionStudyRun(tinyEvictionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("want 4 grid points, got %d", len(s.Points))
	}
	var sawEvictions, sawOutages bool
	for _, pt := range s.Points {
		if pt.MeanSec <= 0 {
			t.Fatalf("o%g x%g: non-positive mean %f", pt.Overcommit, pt.Chaos, pt.MeanSec)
		}
		// The victim-interference gate: the failure domain shreds the
		// commodity tenants, not the HPMMAP victim.
		if math.Abs(pt.InterferencePct) > 1 {
			t.Fatalf("o%g x%g: victim moved %.2f%% vs quiet (gate is 1%%)",
				pt.Overcommit, pt.Chaos, pt.InterferencePct)
		}
		for _, c := range pt.Cells {
			if c.Violations != 0 {
				t.Fatalf("o%g x%g: %d invariant violations", pt.Overcommit, pt.Chaos, c.Violations)
			}
			// The eviction-ordering invariant, asserted from the books
			// too: guaranteed pods are never evicted (best-effort pods
			// always outnumber them at these churn rates).
			if c.Evicted[datacenter.PriorityGuaranteed] != 0 {
				t.Fatalf("o%g x%g: %d guaranteed pods evicted",
					pt.Overcommit, pt.Chaos, c.Evicted[datacenter.PriorityGuaranteed])
			}
			if pt.Overcommit <= 1 && pt.Chaos == 0 {
				if got := total(c.Evicted); got != 0 {
					t.Fatalf("quiet cell evicted %d pods", got)
				}
				if c.EvictionPasses != 0 {
					t.Fatalf("quiet cell ran %d eviction passes", c.EvictionPasses)
				}
			}
			if pt.Overcommit > 1 {
				if c.EvictionPasses == 0 {
					t.Fatalf("o%g x%g: eviction manager never swept", pt.Overcommit, pt.Chaos)
				}
				if be := c.Evicted[datacenter.PriorityBestEffort]; be > 0 {
					sawEvictions = true
					// Best-effort absorbs the pressure: it must dominate
					// the burstable eviction count.
					if c.Evicted[datacenter.PriorityBurstable] > be {
						t.Fatalf("o%g x%g: burstable evictions (%d) exceed best-effort (%d)",
							pt.Overcommit, pt.Chaos,
							c.Evicted[datacenter.PriorityBurstable], be)
					}
				}
				if total(c.Evicted) > 0 && (c.BackoffCount == 0 || total(c.Restarts) == 0) {
					t.Fatalf("o%g x%g: evictions without crash-loop restarts", pt.Overcommit, pt.Chaos)
				}
			}
			if pt.Chaos > 0 && c.ZoneFailures > 0 {
				sawOutages = true
				if c.Rescheduled+total(c.Restarts) == 0 {
					t.Fatalf("o%g x%g: %d zone failures displaced no pods",
						pt.Overcommit, pt.Chaos, c.ZoneFailures)
				}
			}
			// The paper's claim survives the failure domain: the HPMMAP
			// class's fault tail stays pinned at zero.
			if c.Classes[datacenter.ClassHPMMAP].P999 != 0 {
				t.Fatalf("o%g x%g: HPMMAP fault tail %d cycles",
					pt.Overcommit, pt.Chaos, c.Classes[datacenter.ClassHPMMAP].P999)
			}
			if c.Classes[datacenter.ClassTHP].P99 == 0 {
				t.Fatalf("o%g x%g: THP class shows no fault tail", pt.Overcommit, pt.Chaos)
			}
		}
	}
	if !sawEvictions {
		t.Fatal("no overcommit point evicted a best-effort pod — the domain never engaged")
	}
	if !sawOutages {
		t.Fatal("no chaos point produced a zone failure")
	}

	var buf bytes.Buffer
	WriteEvictionStudy(&buf, s)
	out := buf.String()
	for _, want := range []string{"Eviction study", "best-effort", "burstable", "guaranteed", "invariant violations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := WriteEvictionCSV(&csv, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	wantRows := 1 + len(s.Points)*1*int(datacenter.NumPriorities)
	if len(lines) != wantRows {
		t.Fatalf("CSV has %d lines, want %d", len(lines), wantRows)
	}
}

// TestEvictionStudyDeterminism pins the contract the pinned-figures
// gate extends to the failure domain: the rendered study and the merged
// metrics are byte-identical across worker counts and across cold and
// warm cache — backoff jitter, eviction sweeps and zone outages
// included.
func TestEvictionStudyDeterminism(t *testing.T) {
	cache, err := runner.NewCache(t.TempDir(), ModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int, c *runner.Cache) (string, string) {
		o := tinyEvictionOpts()
		// One overcommit point keeps the determinism matrix cheap; the
		// chaos axis stays to pin the zone-outage substream.
		o.Overcommits = []float64{1.5}
		o.Workers = workers
		o.Cache = c
		o.Obs = runner.NewObservations(0)
		s, err := EvictionStudyRun(o)
		if err != nil {
			t.Fatal(err)
		}
		var tbl, met bytes.Buffer
		WriteEvictionStudy(&tbl, s)
		if err := o.Obs.Merged().WriteText(&met); err != nil {
			t.Fatal(err)
		}
		return tbl.String(), met.String()
	}
	tblRef, metRef := render(1, nil)
	if tbl8, met8 := render(8, nil); tbl8 != tblRef || met8 != metRef {
		t.Fatalf("Workers=8 differs from Workers=1:\n--- w1:\n%s\n--- w8:\n%s", tblRef, tbl8)
	}
	tblCold, metCold := render(1, cache)
	if tblCold != tblRef {
		t.Fatalf("cold cache table differs from reference:\n--- ref:\n%s\n--- cold:\n%s", tblRef, tblCold)
	}
	tblWarm, metWarm := render(8, cache)
	if tblWarm != tblRef {
		t.Fatalf("warm cache table differs from reference:\n--- ref:\n%s\n--- warm:\n%s", tblRef, tblWarm)
	}
	if metWarm != metCold {
		t.Fatal("merged metrics differ between cold and warm cache (replayed snapshots incomplete)")
	}
}
