// Package experiments reproduces every table and figure of the paper's
// evaluation (Section IV): the fault-cost tables (Figs. 2–3), the fault
// timelines (Figs. 4–5), the single-node weak-scaling study (Fig. 7) and
// the 8-node scaling study (Fig. 8). Each experiment builds the exact
// system configuration the paper describes, runs the workloads through
// the full memory-management machinery, and reports the paper's rows and
// series.
package experiments

import (
	"context"
	"fmt"

	"hpmmap/internal/chaos"
	"hpmmap/internal/cluster"
	"hpmmap/internal/core"
	"hpmmap/internal/datacenter"
	"hpmmap/internal/hugetlb"
	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/mem"
	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
	"hpmmap/internal/thp"
	"hpmmap/internal/timeline"
	"hpmmap/internal/trace"
	"hpmmap/internal/workload"
)

// ModelVersion identifies the simulator's cost-model generation. It is
// folded into every result-cache key (runner.NewCache version), so
// cached cells from an older model can never be confused with fresh
// ones. Bump it whenever a calibrated constant or cost path changes.
const ModelVersion = "sim-v1"

// ManagerKind selects one of the paper's three memory-management
// configurations.
type ManagerKind int

// The three configurations of Section IV: THP manages everything;
// HugeTLBfs manages the HPC app with THP disabled; HPMMAP manages the HPC
// app with THP managing the commodity side.
const (
	THP ManagerKind = iota
	HugeTLBfs
	HPMMAP
	// Mixed is the datacenter tenancy configuration (not one of the
	// paper's three): HugeTLBfs pools and the HPMMAP module coexist
	// with THP on one node, so all three tenant classes of the
	// datacenter study run side by side. Non-commodity Linux processes
	// get the hugetlb pools, commodity processes get THP, and
	// registered processes get HPMMAP's offlined memory.
	Mixed
)

func (k ManagerKind) String() string {
	switch k {
	case THP:
		return "Linux (THP)"
	case HugeTLBfs:
		return "Linux (HugeTLBfs)"
	case HPMMAP:
		return "HPMMAP"
	case Mixed:
		return "Mixed tenancy"
	}
	return "?"
}

// Key returns the short, stable identifier used in runner cell
// coordinates and result-cache keys.
func (k ManagerKind) Key() string {
	switch k {
	case THP:
		return "thp"
	case HugeTLBfs:
		return "hugetlbfs"
	case HPMMAP:
		return "hpmmap"
	case Mixed:
		return "mixed"
	}
	return "unknown"
}

// Profile is a competing-commodity-workload profile from the paper.
type Profile int

// Profiles: None (idle), A/B (single node: one or two parallel kernel
// builds), C/D (per cluster node: one or two 4-way builds).
const (
	ProfileNone Profile = iota
	ProfileA
	ProfileB
	ProfileC
	ProfileD
)

func (p Profile) String() string {
	return [...]string{"none", "A", "B", "C", "D"}[p]
}

// Scale shrinks an experiment for fast test runs: footprints, memory and
// iteration counts all scale together so the contention structure is
// preserved. 1.0 reproduces the paper's configuration.
type Scale float64

// scaleBytes scales a byte quantity, keeping 256MB granularity sanity.
func (s Scale) bytes(b uint64) uint64 {
	v := uint64(float64(b) * float64(s))
	return v
}

// rig is one configured single node.
type rig struct {
	eng    *sim.Engine
	node   *kernel.Node
	mm     *linuxmm.Manager
	hp     *core.Manager
	daemon *thp.Daemon
}

// offlineBytes returns the reservation/offline size for a machine: the
// paper uses 12GB of 16GB (single node) and 20GB of 24GB (cluster).
func offlineBytes(mc kernel.MachineConfig, sc Scale) uint64 {
	var base uint64
	switch {
	case mc.MemoryBytes >= 24<<30:
		base = 20 << 30
	default:
		base = 12 << 30
	}
	v := sc.bytes(base)
	v -= v % (256 << 20) // section size x zones
	if v < 256<<20 {
		v = 256 << 20
	}
	return v
}

// dellMachine returns the single-node testbed preset.
func dellMachine() kernel.MachineConfig { return kernel.DellR415() }

// newRig boots one node under the given manager configuration.
func newRig(mc kernel.MachineConfig, kind ManagerKind, seed uint64, detail bool, sc Scale) (*rig, error) {
	mc.MemoryBytes = sc.bytes(mc.MemoryBytes)
	eng := sim.NewEngine()
	node := kernel.NewNode(mc, eng, sim.NewRand(seed))
	node.Detail = detail
	r := &rig{eng: eng, node: node}
	if err := r.install(kind, sc); err != nil {
		return nil, err
	}
	return r, nil
}

// install wires the memory managers per the paper's three configurations.
func (r *rig) install(kind ManagerKind, sc Scale) error {
	node := r.node
	switch kind {
	case THP:
		r.mm = linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
		node.SetDefaultMM(r.mm)
		r.daemon = thp.Start(node, r.mm)
	case HugeTLBfs:
		resv := offlineBytes(node.Config(), sc)
		pools, err := hugetlb.Reserve(node.Mem, resv)
		if err != nil {
			return fmt.Errorf("experiments: hugetlb reserve: %w", err)
		}
		node.SetReservedBytes(resv)
		r.mm = linuxmm.New(node, linuxmm.ModeHugeTLB, linuxmm.Mode4KOnly, pools)
		node.SetDefaultMM(r.mm)
		// THP is disabled in this configuration: no daemon.
	case HPMMAP:
		r.mm = linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
		node.SetDefaultMM(r.mm)
		r.daemon = thp.Start(node, r.mm)
		hp, err := core.Install(node, offlineBytes(node.Config(), sc))
		if err != nil {
			return fmt.Errorf("experiments: hpmmap install: %w", err)
		}
		r.hp = hp
	case Mixed:
		// Datacenter tenancy: split the reservation budget between the
		// hugetlb pools (a quarter) and HPMMAP's offlined memory (five
		// eighths), leaving the rest to Linux; THP serves commodity
		// processes as usual.
		resv := offlineBytes(node.Config(), sc)
		htlb := resv / 4
		htlb -= htlb % (256 << 20)
		if htlb < 256<<20 {
			htlb = 256 << 20
		}
		hpB := resv * 5 / 8
		hpB -= hpB % (256 << 20)
		if hpB < 256<<20 {
			hpB = 256 << 20
		}
		// Offline HPMMAP's memory first: section offlining needs the top
		// of each zone untouched, and the hugetlb reservation below
		// would otherwise fragment it.
		hp, err := core.Install(node, hpB)
		if err != nil {
			return fmt.Errorf("experiments: hpmmap install: %w", err)
		}
		r.hp = hp
		pools, err := hugetlb.Reserve(node.Mem, htlb)
		if err != nil {
			return fmt.Errorf("experiments: hugetlb reserve: %w", err)
		}
		node.SetReservedBytes(htlb)
		r.mm = linuxmm.New(node, linuxmm.ModeHugeTLB, linuxmm.ModeTHP, pools)
		node.SetDefaultMM(r.mm)
		r.daemon = thp.Start(node, r.mm)
	default:
		return fmt.Errorf("experiments: unknown manager kind %d", kind)
	}
	return nil
}

// observe instruments every subsystem of the rig against one registry
// and tracer (both nil-safe): the node's fault/scheduler/reclaim paths,
// the Linux manager's tallies, the HPMMAP manager and its zone pools,
// and the khugepaged daemon. Engine-level sim_* metrics are registered
// separately by observeEngine, once per engine — cluster rigs share one
// engine, and the registry's pull sources are additive.
func (r *rig) observe(reg *metrics.Registry, tr *metrics.ChromeTracer) {
	if reg == nil && tr == nil {
		return
	}
	r.node.Observe(reg, tr)
	if r.mm != nil {
		r.mm.Observe(reg)
	}
	if r.hp != nil {
		r.hp.Observe(reg)
	}
	if r.daemon != nil {
		r.daemon.Observe(reg, tr)
	}
}

// observeEngine registers the engine's event counter and clock with the
// registry. Call exactly once per engine (not per node): cluster nodes
// share one engine and pull registration is additive.
func observeEngine(reg *metrics.Registry, eng *sim.Engine) {
	if reg == nil {
		return
	}
	reg.CounterFunc(metrics.SimEventsTotal, func() uint64 { return eng.Executed() })
	reg.GaugeFunc(metrics.SimFinalCycles, func() float64 { return float64(eng.Now()) })
}

// wireSeries registers the standard time-series probe set for one rig's
// node under node index idx: commit pressure, allocator pressure, free
// bytes, the worst 2MB-order fragmentation index across zones, page-cache
// pages, and the Linux manager's cumulative fault/reclaim tallies plus
// khugepaged merges (cumulative counters; consumers difference adjacent
// samples into rates). Every probe reads existing simulation state — no
// PRNG draws, no mutations — so sampling never perturbs a run. Nil-safe
// on a nil series.
func wireSeries(s *timeline.Series, idx int, r *rig) {
	if s == nil {
		return
	}
	node := r.node
	s.AddProbe(idx, "kernel_commit_pressure", node.CommitPressure)
	s.AddProbe(idx, "mem_pressure", node.Mem.Pressure)
	s.AddProbe(idx, "mem_free_bytes", func() float64 {
		return float64(node.Mem.FreePages() * mem.PageSize)
	})
	s.AddProbe(idx, "mem_frag_index_2m", func() float64 {
		worst := -1.0
		for _, z := range node.Mem.Zones {
			if f := z.FragmentationIndex(mem.LargePageOrder); f > worst {
				worst = f
			}
		}
		return worst
	})
	s.AddProbe(idx, "kernel_pagecache_pages", func() float64 {
		var pages uint64
		for z := 0; z < node.Config().NumaZones; z++ {
			pages += node.PageCachePages(z)
		}
		return float64(pages)
	})
	if mm := r.mm; mm != nil {
		s.AddProbe(idx, "linuxmm_small_faults_total", func() float64 { return float64(mm.SmallFaults) })
		s.AddProbe(idx, "linuxmm_large_faults_total", func() float64 { return float64(mm.LargeFaults) })
		s.AddProbe(idx, "linuxmm_fallback_faults_total", func() float64 { return float64(mm.FallbackFaults) })
		s.AddProbe(idx, "linuxmm_reclaim_storms_total", func() float64 { return float64(mm.ReclaimStorms) })
	}
	if d := r.daemon; d != nil {
		s.AddProbe(idx, "thp_merges_total", func() float64 { return float64(d.Merges) })
	}
}

// launcher returns the rank launcher for this rig's HPC processes.
func (r *rig) launcher() workload.Launcher {
	if r.hp != nil {
		return r.hp.Launch
	}
	node := r.node
	return func(name string, zone int) (*kernel.Process, error) {
		return node.NewProcess(name, false, zone)
	}
}

// pinCores returns the paper's core pinning for n ranks: half the ranks
// on each NUMA zone's cores ("the HPC application was configured to pin
// half of its cores on each NUMA zone ... for 1 core tests, all memory
// came from 1 zone").
func pinCores(node *kernel.Node, ranks int) ([]int, error) {
	perZone := node.NumCores() / node.Config().NumaZones
	if ranks > node.NumCores() {
		return nil, fmt.Errorf("experiments: %d ranks exceed %d cores", ranks, node.NumCores())
	}
	if ranks == 1 {
		return []int{0}, nil
	}
	half := (ranks + 1) / 2
	if half > perZone {
		half = perZone
	}
	var cores []int
	for i := 0; i < half; i++ {
		cores = append(cores, i)
	}
	for i := 0; len(cores) < ranks; i++ {
		cores = append(cores, perZone+i)
	}
	return cores, nil
}

// startProfile launches the competing commodity workload for a profile on
// one node and returns the builds to stop later. appRanks sizes profile
// A/B per the paper: the build uses 8 cores when the app uses 1–4 and 4
// cores when the app uses 8.
func startProfile(node *kernel.Node, p Profile, appRanks int, seed uint64) []*workload.Build {
	switch p {
	case ProfileNone:
		return nil
	case ProfileA, ProfileB:
		workers := 8
		if appRanks >= 8 {
			workers = 4
		}
		n := 1
		if p == ProfileB {
			n = 2
		}
		var builds []*workload.Build
		for i := 0; i < n; i++ {
			builds = append(builds, workload.StartBuild(node, workload.KernelBuild(workers), seed+uint64(i)*7919))
		}
		return builds
	case ProfileC, ProfileD:
		n := 1
		if p == ProfileD {
			n = 2
		}
		var builds []*workload.Build
		for i := 0; i < n; i++ {
			spec := workload.KernelBuild(4)
			// The cluster nodes build over a slower shared filesystem:
			// compiles spend more time blocked on I/O.
			spec.IOWait *= 2
			builds = append(builds, workload.StartBuild(node, spec, seed+uint64(i)*7919))
		}
		return builds
	}
	return nil
}

// scaleSpec shrinks a benchmark spec for quick runs.
func scaleSpec(spec workload.AppSpec, sc Scale) workload.AppSpec {
	if sc >= 1 {
		return spec
	}
	spec.FootprintPerRank = sc.bytes(spec.FootprintPerRank)
	spec.SharedPerPeer = sc.bytes(spec.SharedPerPeer)
	spec.ChurnPerIter = sc.bytes(spec.ChurnPerIter)
	spec.SmallChurnPerIter = sc.bytes(spec.SmallChurnPerIter)
	spec.HeapChurnPerIter = sc.bytes(spec.HeapChurnPerIter)
	spec.StackBytes = sc.bytes(spec.StackBytes)
	it := int(float64(spec.Iterations) * float64(sc) * 4)
	if it < 5 {
		it = 5
	}
	if it > spec.Iterations {
		it = spec.Iterations
	}
	spec.Iterations = it
	if spec.SetupSteps > 6 {
		spec.SetupSteps = 6
	}
	return spec
}

// runToCompletion steps the engine until done flips (the engine always
// has periodic daemons queued, so draining is not a termination signal).
// ctx is polled every few tens of thousands of events so a cancelled or
// timed-out run stops mid-simulation rather than at the next cell
// boundary; nil means no cancellation.
func runToCompletion(ctx context.Context, eng *sim.Engine, done *bool) (err error) {
	const checkEvery = 1 << 16
	steps := 0
	// A simulated-state invariant violation panics out of an engine
	// event; stamp it with the simulated time of detection before it
	// unwinds further (the runner's panic containment then converts it
	// into a structured per-cell error).
	defer func() {
		if r := recover(); r != nil {
			if v, ok := invariant.FromRecovered(r); ok {
				invariant.AnnotateTime(v, eng.Now())
				//detsim:allow re-raise of a recovered *invariant.Violation after time-stamping, not a new failure mode
				panic(v)
			}
			//detsim:allow re-raise of a recovered foreign panic so the runner's containment sees it unchanged
			panic(r)
		}
	}()
	for !*done {
		if !eng.Step() {
			return fmt.Errorf("experiments: engine drained before completion")
		}
		if steps++; steps >= checkEvery {
			steps = 0
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("experiments: run cancelled: %w", err)
				}
			}
		}
	}
	return nil
}

// SingleRun describes one measured application execution.
type SingleRun struct {
	Bench   workload.AppSpec
	Kind    ManagerKind
	Profile Profile
	Ranks   int
	Seed    uint64
	Detail  bool
	Scale   Scale
	// Recorder, when non-nil, captures rank 0's faults (Figs. 2–5).
	Recorder *trace.Recorder
	// Metrics, when non-nil, receives the run's counters/gauges/
	// histograms (see OBSERVABILITY.md); nil leaves every hot path on
	// its zero-overhead uninstrumented branch.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives Chrome trace events (per-rank
	// iterations, recorded faults, reclaim/khugepaged activity) keyed by
	// simulated cycles at the machine's clock rate.
	Tracer *metrics.ChromeTracer
	// Context, when non-nil, cancels the simulation mid-run (polled
	// every few tens of thousands of engine events).
	Context context.Context
	// Chaos, when non-nil, attaches the deterministic fault injector to
	// the booted node before the measured application starts, and wires
	// its straggler wrapper into the workload's communication phase.
	// The injector must be freshly built per run (chaos.New with the
	// cell seed); it is stopped — releasing everything it holds — when
	// the application completes.
	Chaos *chaos.Injector
	// Audit, when true, attaches the invariant auditor (zone/swap/VMA/
	// pgtable/pool consistency checks) at a 1ms simulated cadence. Note
	// this schedules extra engine events, so sim_events_total changes —
	// baseline figure runs leave it off.
	Audit bool
	// Series, when non-nil, samples the standard probe set (commit
	// pressure, memory pressure, free bytes, fragmentation, page-cache
	// pages, cumulative Linux-manager fault/reclaim tallies) on the run's
	// existing quarter-second diagnostic ticker. The piggyback schedules
	// no extra engine events and the probes draw no randomness, so a
	// sampled run is byte-identical to an unsampled one apart from the
	// timeline_samples_total counter the sampler itself registers.
	Series *timeline.Series
	// Attribution, when non-nil, installs one per-rank cause account and
	// records a critical-path decomposition at every BSP barrier (see
	// internal/timeline). Pure accounting on existing charges: no events,
	// no PRNG draws, no cost-path changes.
	Attribution *timeline.Attribution
	// Datacenter, when non-nil, attaches the kubelet-style pod agent to
	// the booted node: per-zone admission, mixed-tenancy pod churn from
	// its own tagged substream, and per-class tail-latency histograms.
	// The agent is stopped when the measured application completes and
	// returned via RunOutcome.Datacenter.
	Datacenter *datacenter.Config
}

// RunOutcome reports one completed run.
type RunOutcome struct {
	RuntimeSec float64
	Result     workload.Result
	// Manager statistics for diagnostics.
	Compactions, ReclaimStorms, StormsHPC, Merges uint64
	// MeanPressure is the time-averaged memory pressure sampled during
	// the run.
	MeanPressure float64
	// Datacenter is the pod agent after the run (counters and tail
	// histograms), when SingleRun.Datacenter attached one.
	Datacenter *datacenter.Agent
}

// ExecuteSingleNode performs one single-node run (the unit of Figure 7,
// and with Detail+Recorder the source of Figures 2–5).
func ExecuteSingleNode(rs SingleRun) (RunOutcome, error) {
	return ExecuteSingleNodeWith(rs, nil)
}

// ModelOverrides perturbs the simulator's calibrated parameters for
// sensitivity sweeps (cmd/hpmmap-sweep). Nil fields keep the defaults.
type ModelOverrides struct {
	THPFragSensitivity  *float64
	ReclaimProbAtFull   *float64
	ReclaimParetoXm     *float64
	KhugepagedPeriodSec *float64
	StoreCycles         *float64
	MemLatency          *float64
}

func (o ModelOverrides) applyConfig(mc *kernel.MachineConfig) {
	if o.ReclaimProbAtFull != nil {
		mc.Costs.ReclaimProbAtFull = *o.ReclaimProbAtFull
	}
	if o.ReclaimParetoXm != nil {
		mc.Costs.ReclaimParetoXm = *o.ReclaimParetoXm
	}
	if o.StoreCycles != nil {
		mc.Costs.StoreCycles = *o.StoreCycles
	}
	if o.MemLatency != nil {
		mc.MemLatency = *o.MemLatency
	}
	if o.KhugepagedPeriodSec != nil {
		mc.KhugepagedScanPeriod = *o.KhugepagedPeriodSec * mc.ClockHz
	}
}

func (o ModelOverrides) applyRig(r *rig) {
	if o.THPFragSensitivity != nil && r.mm != nil {
		r.mm.THPFragSensitivity = *o.THPFragSensitivity
	}
}

// ExecuteSingleNodeWithOverrides runs one cell with perturbed model
// parameters.
func ExecuteSingleNodeWithOverrides(rs SingleRun, o ModelOverrides) (RunOutcome, error) {
	return executeSingle(rs, nil, o)
}

// ExecuteSingleNodeWith is ExecuteSingleNode with a hook that starts an
// additional co-located workload on the booted node (in-situ analytics,
// custom interference). The hook's returned stop function is invoked when
// the measured application completes.
func ExecuteSingleNodeWith(rs SingleRun, extra func(node *kernel.Node) (stop func())) (RunOutcome, error) {
	return executeSingle(rs, extra, ModelOverrides{})
}

func executeSingle(rs SingleRun, extra func(node *kernel.Node) (stop func()), o ModelOverrides) (RunOutcome, error) {
	if rs.Scale == 0 {
		rs.Scale = 1
	}
	mc := kernel.DellR415()
	o.applyConfig(&mc)
	rig, err := newRig(mc, rs.Kind, rs.Seed, rs.Detail, rs.Scale)
	if err != nil {
		return RunOutcome{}, err
	}
	o.applyRig(rig)
	rs.Tracer.SetClock(mc.ClockHz)
	rig.observe(rs.Metrics, rs.Tracer)
	observeEngine(rs.Metrics, rig.eng)
	wireSeries(rs.Series, 0, rig)
	rs.Series.Observe(rs.Metrics, rs.Tracer)
	rs.Attribution.Observe(rs.Metrics)
	spec := scaleSpec(rs.Bench, rs.Scale)
	cores, err := pinCores(rig.node, rs.Ranks)
	if err != nil {
		return RunOutcome{}, err
	}
	builds := startProfile(rig.node, rs.Profile, rs.Ranks, rs.Seed^0xb0b)
	var stopExtra func()
	if extra != nil {
		stopExtra = extra(rig.node)
	}
	if rs.Chaos != nil {
		rs.Chaos.Observe(rs.Metrics)
		rs.Chaos.Attach(rig.node)
	}
	var dcAgent *datacenter.Agent
	if rs.Datacenter != nil {
		var hp datacenter.Launcher
		if rig.hp != nil {
			hp = rig.hp
		}
		dcAgent = datacenter.New(*rs.Datacenter, rig.node, hp, datacenter.DeriveSeed(rs.Seed))
		dcAgent.Observe(rs.Metrics)
		dcAgent.Start()
		// Node-failure chaos displaces the agent's pods; the handler is
		// draw-free on the chaos side, so wiring it changes no schedules.
		rs.Chaos.SetZoneFailHandler(dcAgent.ZoneFail)
	}
	var auditor *invariant.Auditor
	if rs.Audit {
		auditor = newNodeAuditor(rig, rs.Metrics)
		auditor.Start(rig.eng, auditPeriod(mc.ClockHz))
		defer auditor.Stop()
	}
	// Sample memory pressure through the run for diagnostics. The series
	// sampler piggybacks on the same ticker: one pre-existing event per
	// quarter simulated second, so attaching a Series never adds engine
	// events or perturbs event ordering.
	var psum float64
	var pn int
	sampler := rig.eng.NewTicker(sim.Cycles(rig.node.Config().ClockHz/4), func() {
		psum += rig.node.Mem.Pressure()
		pn++
		rs.Series.Sample(uint64(rig.eng.Now()))
	})
	defer sampler.Stop()
	var placements []workload.RankPlacement
	for _, c := range cores {
		placements = append(placements, workload.RankPlacement{Node: rig.node, Core: c, Launch: rig.launcher()})
	}
	var res workload.Result
	done := false
	wopts := workload.Options{
		Spec:        spec,
		Ranks:       placements,
		Recorder:    rs.Recorder,
		Metrics:     rs.Metrics,
		Tracer:      rs.Tracer,
		Attribution: rs.Attribution,
	}
	if rs.Chaos != nil {
		// Straggler injection rides the communication phase; single-node
		// runs have no inner comm-delay model, so the wrapper decorates
		// a zero base.
		wopts.CommDelay = rs.Chaos.WrapCommDelay(nil)
		if rs.Attribution != nil {
			rs.Chaos.SetAccounts(rs.Attribution.Rank)
		}
	}
	_, err = workload.Start(rig.eng, wopts, func(got workload.Result) {
		res = got
		for _, b := range builds {
			b.Stop()
		}
		if stopExtra != nil {
			stopExtra()
		}
		// The agent and chaos release everything they still hold, so
		// end-of-run audits and accounting see a clean machine.
		dcAgent.Stop()
		rs.Chaos.Stop()
		done = true
	})
	if err != nil {
		return RunOutcome{}, err
	}
	if err := runToCompletion(rs.Context, rig.eng, &done); err != nil {
		return RunOutcome{}, err
	}
	if res.Err != nil {
		return RunOutcome{}, res.Err
	}
	out := RunOutcome{
		RuntimeSec: rig.node.Config().Seconds(float64(res.Runtime)),
		Result:     res,
		Datacenter: dcAgent,
	}
	if pn > 0 {
		out.MeanPressure = psum / float64(pn)
	}
	if rig.mm != nil {
		out.Compactions = rig.mm.Compactions
		out.ReclaimStorms = rig.mm.ReclaimStorms
		out.StormsHPC = rig.mm.StormsHPC
	}
	if rig.daemon != nil {
		out.Merges = rig.daemon.Merges
	}
	return out, nil
}

// clusterRig is the 8-node testbed.
type clusterRig struct {
	eng     *sim.Engine
	cl      *cluster.Cluster
	rigs    []*rig
	daemons []*thp.Daemon
}

// newClusterRig boots n SandiaXeon nodes under one manager kind.
func newClusterRig(n int, kind ManagerKind, seed uint64, sc Scale) (*clusterRig, error) {
	eng := sim.NewEngine()
	cr := &clusterRig{eng: eng}
	var buildErr error
	cl, err := cluster.New(eng, n, cluster.GigE(), seed^0xc1, func(i int) *kernel.Node {
		mc := kernel.SandiaXeon()
		mc.MemoryBytes = sc.bytes(mc.MemoryBytes)
		node := kernel.NewNode(mc, eng, sim.NewRand(seed+uint64(i)*104729))
		r := &rig{eng: eng, node: node}
		if err := r.install(kind, sc); err != nil && buildErr == nil {
			buildErr = err
		}
		cr.rigs = append(cr.rigs, r)
		return node
	})
	if err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}
	cr.cl = cl
	return cr, nil
}
