package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"hpmmap/internal/ledger"
	"hpmmap/internal/runner"
)

// runFig7Ledgered runs the reduced Fig7 grid with a run ledger attached
// and returns the full record stream plus the canonical projection bytes.
func runFig7Ledgered(t *testing.T, workers int, cache *runner.Cache) ([]ledger.Record, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := ledger.Open(path, ledger.Meta{Model: "fig7-tiny", Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	o := fig7Tiny(workers)
	o.Cache = cache
	obs := runner.NewObservations(0)
	obs.SetLedger(l)
	o.Obs = obs
	if _, err := Fig7(o); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := ledger.Marshal(ledger.Canonical(recs))
	if err != nil {
		t.Fatal(err)
	}
	return recs, canon
}

func countType(recs []ledger.Record, typ string) int {
	n := 0
	for _, r := range recs {
		if r.T == typ {
			n++
		}
	}
	return n
}

// TestFig7LedgerCanonicalByteIdentical pins the ledger's determinism
// contract on a real experiment grid: the canonical projection must be
// byte-identical between Workers=1 and Workers=8 and between a cold and
// a warm cache run, even though the host annex differs wildly in both
// comparisons (worker assignments, wall clocks, cache_hit vs cache_miss).
func TestFig7LedgerCanonicalByteIdentical(t *testing.T) {
	_, w1 := runFig7Ledgered(t, 1, nil)
	_, w8 := runFig7Ledgered(t, 8, nil)
	if !bytes.Equal(w1, w8) {
		t.Errorf("canonical ledger differs between Workers=1 and Workers=8 (%d vs %d bytes)",
			len(w1), len(w8))
	}

	cache, err := runner.NewCache(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	coldRecs, cold := runFig7Ledgered(t, 4, cache)
	warmRecs, warm := runFig7Ledgered(t, 4, cache)
	if !bytes.Equal(cold, warm) {
		t.Errorf("canonical ledger differs between cold and warm cache (%d vs %d bytes)",
			len(cold), len(warm))
	}
	if !bytes.Equal(cold, w1) {
		t.Errorf("cached run's canonical ledger differs from the uncached run")
	}

	// The host annex must record the cache behaviour the runs actually
	// had: all misses cold, all hits warm.
	if hits, misses := countType(coldRecs, ledger.TypeCacheHit), countType(coldRecs, ledger.TypeCacheMiss); hits != 0 || misses != 6 {
		t.Errorf("cold run: %d hits, %d misses; want 0, 6", hits, misses)
	}
	if hits, misses := countType(warmRecs, ledger.TypeCacheHit), countType(warmRecs, ledger.TypeCacheMiss); hits != 6 || misses != 0 {
		t.Errorf("warm run: %d hits, %d misses; want 6, 0", hits, misses)
	}
	if n := countType(coldRecs, ledger.TypeCellFinish); n != 6 {
		t.Errorf("cold run journaled %d cell_finish records, want 6", n)
	}
}
