package timeline

import (
	"strings"
	"testing"

	"hpmmap/internal/fault"
	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

func TestCauseStringsUniqueAndStable(t *testing.T) {
	seen := make(map[string]Cause)
	for c := 0; c < NumCauses; c++ {
		s := Cause(c).String()
		if s == "?" || s == "" {
			t.Fatalf("cause %d has no name", c)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("causes %d and %d share name %q", prev, c, s)
		}
		seen[s] = Cause(c)
	}
	if Cause(NumCauses).String() != "?" {
		t.Fatalf("out-of-range cause should stringify as ?")
	}
	// Report-order anchors the docs and trace instants; pin a few.
	for want, c := range map[string]Cause{
		"fault_small":   CauseSmallFault,
		"reclaim_storm": CauseReclaimStorm,
		"mlock_split":   CauseMlockSplit,
		"sched_preempt": CauseSched,
		"comm_jitter":   CauseCommJitter,
	} {
		if got := c.String(); got != want {
			t.Errorf("cause %d = %q, want %q", c, got, want)
		}
	}
}

func TestFaultCauseCoversEveryKind(t *testing.T) {
	want := map[fault.Kind]Cause{
		fault.KindSmall:        CauseSmallFault,
		fault.KindLarge:        CauseLargeFault,
		fault.KindMergeBlocked: CauseMergeFault,
		fault.KindHugeTLBLarge: CauseHugeTLBLargeFault,
		fault.KindHugeTLBSmall: CauseHugeTLBSmallFault,
		fault.KindStackGrow:    CauseStackFault,
	}
	for k := 0; k < fault.NumKinds; k++ {
		c := FaultCause(fault.Kind(k))
		if w, ok := want[fault.Kind(k)]; ok && c != w {
			t.Errorf("FaultCause(%v) = %v, want %v", fault.Kind(k), c, w)
		}
	}
}

func TestAccountChargeWindowMark(t *testing.T) {
	var a Account
	a.Charge(CauseSmallFault, 100)
	a.Charge(CauseSmallFault, 50)
	a.ChargeSigned(CauseCommJitter, -30)
	a.Reattribute(CauseSmallFault, CauseReclaimStorm, 40)

	w := a.Window()
	if w[CauseSmallFault] != 110 {
		t.Errorf("small window = %d, want 110", w[CauseSmallFault])
	}
	if w[CauseReclaimStorm] != 40 {
		t.Errorf("storm window = %d, want 40", w[CauseReclaimStorm])
	}
	if w[CauseCommJitter] != -30 {
		t.Errorf("jitter window = %d, want -30", w[CauseCommJitter])
	}
	if got := a.Total(); got != 120 {
		t.Errorf("total = %d, want 120", got)
	}

	a.Mark()
	if w := a.Window(); w != ([NumCauses]int64{}) {
		t.Errorf("window after Mark = %v, want zeroes", w)
	}
	a.Charge(CauseSched, 7)
	if w := a.Window(); w[CauseSched] != 7 {
		t.Errorf("post-mark window = %d, want 7", w[CauseSched])
	}
	// Total is lifetime, not windowed.
	if got := a.Total(); got != 127 {
		t.Errorf("total = %d, want 127", got)
	}
}

func TestAccountNilSafe(t *testing.T) {
	var a *Account
	a.Charge(CauseSmallFault, 1)
	a.ChargeSigned(CauseCommJitter, -1)
	a.Reattribute(CauseSmallFault, CauseReclaimStorm, 1)
	a.Mark()
	if a.Total() != 0 {
		t.Fatal("nil account total != 0")
	}
	if a.Window() != ([NumCauses]int64{}) {
		t.Fatal("nil account window != zeroes")
	}
}

// TestRecordBarrierDecomposition drives a synthetic 3-rank barrier:
// rank 2 arrives last after paying 400 extra cycles of reclaim storm,
// and the record must name reclaim_storm as the dominant cause with the
// right excess, lateness and total wait.
func TestRecordBarrierDecomposition(t *testing.T) {
	attr := NewAttribution(3)
	attr.Rank(0).Charge(CauseSmallFault, 100)
	attr.Rank(1).Charge(CauseSmallFault, 120)
	attr.Rank(2).Charge(CauseSmallFault, 100)
	attr.Rank(2).Charge(CauseReclaimStorm, 400)

	// Arrival order 0 (t=1000), 1 (t=1050), 2 (t=1500); release at 1500.
	rec := attr.RecordBarrier(1500, []int{0, 1, 2}, []sim.Cycles{1000, 1050, 1500})
	if rec.Straggler != 2 {
		t.Fatalf("straggler = %d, want 2", rec.Straggler)
	}
	if rec.Lateness != 500 {
		t.Fatalf("lateness = %d, want 500", rec.Lateness)
	}
	if want := uint64(500 + 450 + 0); rec.TotalWait != want {
		t.Fatalf("total wait = %d, want %d", rec.TotalWait, want)
	}
	if rec.Excess[CauseReclaimStorm] != 400 {
		t.Fatalf("storm excess = %d, want 400", rec.Excess[CauseReclaimStorm])
	}
	// The straggler's small-fault window equals the minimum (100), so no
	// small-fault excess.
	if rec.Excess[CauseSmallFault] != 0 {
		t.Fatalf("small excess = %d, want 0", rec.Excess[CauseSmallFault])
	}
	if dom, ok := rec.DominantCause(); !ok || dom != CauseReclaimStorm {
		t.Fatalf("dominant = %v/%v, want reclaim_storm", dom, ok)
	}
	if f := rec.ExplainedFraction(); f != 0.8 {
		t.Fatalf("explained = %v, want 0.8 (400/500)", f)
	}

	// Accounts were marked: an immediate second barrier is balanced.
	rec2 := attr.RecordBarrier(1600, []int{0, 1, 2}, []sim.Cycles{1600, 1600, 1600})
	if rec2.Lateness != 0 || rec2.TotalWait != 0 {
		t.Fatalf("second barrier lateness/wait = %d/%d, want 0/0", rec2.Lateness, rec2.TotalWait)
	}
	if _, ok := rec2.DominantCause(); ok {
		t.Fatal("balanced barrier reported a dominant cause")
	}

	s := attr.Summarize()
	if s.Barriers != 2 || s.TotalWait != attr.TotalWait() {
		t.Fatalf("summary barriers/wait = %d/%d", s.Barriers, s.TotalWait)
	}
	if s.CauseExcess[CauseReclaimStorm] != 400 || s.DominantCount[CauseReclaimStorm] != 1 {
		t.Fatalf("summary storm excess/dominant = %d/%d", s.CauseExcess[CauseReclaimStorm], s.DominantCount[CauseReclaimStorm])
	}
	if s.Balanced != 1 {
		t.Fatalf("balanced = %d, want 1", s.Balanced)
	}
	if s.StragglerCount[2] != 2 {
		t.Fatalf("rank-2 straggles = %d, want 2", s.StragglerCount[2])
	}
	var buf strings.Builder
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"barriers 2", "reclaim_storm", "(balanced)", "stragglers by rank: r0=0 r1=0 r2=2", "worst: barrier 0 rank 2 late 500 cycles"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestAttributionMetricsAndNilSafety: straggler metrics register only
// through Observe, and a nil attributor accepts the whole surface.
func TestAttributionMetricsAndNilSafety(t *testing.T) {
	attr := NewAttribution(2)
	reg := metrics.NewRegistry()
	attr.Observe(reg)
	attr.RecordBarrier(100, []int{0, 1}, []sim.Cycles{50, 100})
	attr.RecordBarrier(200, []int{0, 1}, []sim.Cycles{200, 200})
	var stragglers, count float64
	var sum uint64
	for _, m := range reg.Snapshot().Metrics {
		switch m.Name {
		case metrics.BSPStragglersTotal:
			stragglers = m.Value
		case metrics.BSPStragglerLatenessCycles:
			count, sum = float64(m.Count), m.Sum
		}
	}
	if stragglers != 1 {
		t.Fatalf("bsp_stragglers_total = %v, want 1 (one late, one balanced)", stragglers)
	}
	if count != 2 || sum != 50 {
		t.Fatalf("lateness histogram count/sum = %v/%d, want 2/50", count, sum)
	}

	var nilAttr *Attribution
	nilAttr.Observe(reg)
	if rec := nilAttr.RecordBarrier(1, []int{0}, []sim.Cycles{1}); rec.TotalWait != 0 {
		t.Fatal("nil attributor recorded a barrier")
	}
	if nilAttr.Rank(0) != nil || nilAttr.Ranks() != 0 || nilAttr.TotalWait() != 0 || nilAttr.Records() != nil {
		t.Fatal("nil attributor leaked state")
	}
	if s := nilAttr.Summarize(); s.Barriers != 0 {
		t.Fatal("nil attributor summarized barriers")
	}
	// Out-of-range rank is the no-op account.
	if NewAttribution(1).Rank(5) != nil {
		t.Fatal("out-of-range rank should be nil")
	}
}

func TestSeriesSamplesAndCSV(t *testing.T) {
	s := NewSeries()
	x := 0.0
	s.AddProbe(0, "mem_pressure", func() float64 { x += 0.5; return x })
	s.AddProbe(1, "kernel_pagecache_pages", func() float64 { return 42 })
	reg := metrics.NewRegistry()
	tr := metrics.NewChromeTracer(0)
	s.Observe(reg, tr)
	s.Sample(100)
	s.Sample(200)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf, "cellA"); err != nil {
		t.Fatal(err)
	}
	want := "cellA,0,100,mem_pressure,0.500000\n" +
		"cellA,1,100,kernel_pagecache_pages,42\n" +
		"cellA,0,200,mem_pressure,1\n" +
		"cellA,1,200,kernel_pagecache_pages,42\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", buf.String(), want)
	}
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == metrics.TimelineSamplesTotal && m.Value != 2 {
			t.Fatalf("timeline_samples_total = %v, want 2", m.Value)
		}
	}
	// Counter tracks: two samples x two probes.
	var trace strings.Builder
	if err := metrics.WriteChromeTrace(&trace, tr); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(trace.String(), `"ph":"C"`); got != 4 {
		t.Fatalf("counter events = %d, want 4\n%s", got, trace.String())
	}
	if !strings.Contains(trace.String(), "mem_pressure/node0") ||
		!strings.Contains(trace.String(), "kernel_pagecache_pages/node1") {
		t.Fatalf("counter track names missing:\n%s", trace.String())
	}

	var nilSeries *Series
	nilSeries.AddProbe(0, "x", func() float64 { return 0 })
	nilSeries.Observe(reg, tr)
	nilSeries.Sample(1)
	if nilSeries.Len() != 0 {
		t.Fatal("nil series sampled")
	}
	if err := nilSeries.WriteCSV(&buf, "c"); err != nil {
		t.Fatal(err)
	}
}
