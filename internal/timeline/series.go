package timeline

import (
	"fmt"
	"io"

	"hpmmap/internal/metrics"
)

// probe is one registered sample source. track caches the Chrome
// counter-track name ("<metric>/node<N>") so the sampling hot path does
// no per-sample formatting.
type probe struct {
	node  int
	name  string
	track string
	fn    func() float64
}

// sample is one cadence tick: the simulated cycle and every probe's
// reading, in probe registration order.
type sample struct {
	at   uint64
	vals []float64
}

// Series is the deterministic time-series sampler: probes registered in
// a fixed order are read at a caller-driven simulated-cycle cadence
// (experiment rigs piggyback Sample on their existing pressure/audit
// ticker, so enabling a series schedules no extra events on the
// single-node path). Samples render as a long-format CSV (WriteCSV) and,
// when a tracer is attached, as Chrome counter ('C') tracks named
// "<metric>/node<N>".
//
// A Series belongs to one simulation cell, like a metrics.Registry; a
// nil *Series is the no-op default and every method is nil-safe.
type Series struct {
	probes  []probe
	samples []sample
	tracer  *metrics.ChromeTracer
	count   *metrics.Counter
}

// NewSeries returns an empty sampler.
func NewSeries() *Series { return &Series{} }

// AddProbe registers a sample source for a node-scoped metric. name
// should be a canonical metrics name (names.go) so series rows
// cross-reference the metric table; node distinguishes cluster members
// (0 for single-node rigs). Registration order fixes the CSV and trace
// track order. No-op on a nil receiver.
func (s *Series) AddProbe(node int, name string, fn func() float64) {
	if s == nil || fn == nil {
		return
	}
	s.probes = append(s.probes, probe{
		node: node, name: name,
		track: fmt.Sprintf("%s/node%d", name, node),
		fn:    fn,
	})
}

// Observe attaches the cell's registry and tracer: timeline_samples_total
// counts cadence ticks, and each Sample emits one counter-track trace
// event per probe. No-op on a nil receiver; nil registry/tracer are the
// uninstrumented defaults.
func (s *Series) Observe(reg *metrics.Registry, tr *metrics.ChromeTracer) {
	if s == nil {
		return
	}
	s.count = reg.Counter(metrics.TimelineSamplesTotal)
	s.tracer = tr
}

// Sample reads every probe at simulated cycle at, appends the row, and
// emits the trace counter tracks. Called from the owning rig's ticker;
// it draws no randomness and mutates no simulated state, so attaching a
// series never perturbs a run. No-op on a nil receiver.
func (s *Series) Sample(at uint64) {
	if s == nil {
		return
	}
	vals := make([]float64, len(s.probes))
	for i := range s.probes {
		p := &s.probes[i]
		v := p.fn()
		vals[i] = v
		s.tracer.Value(0, "series", p.track, at, v)
	}
	s.samples = append(s.samples, sample{at: at, vals: vals})
	s.count.Inc()
}

// Len returns the number of samples taken (0 on a nil receiver).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// WriteCSV renders the samples in long format, one row per
// (sample, probe): cell,node,cycle,metric,value — sorted by sample time
// then probe registration order, so output is deterministic. The header
// is the caller's job (runner.Observations writes it once for a merged
// multi-cell file); cell labels the owning cell. Safe on a nil receiver
// (writes nothing).
func (s *Series) WriteCSV(w io.Writer, cell string) error {
	if s == nil {
		return nil
	}
	for _, row := range s.samples {
		for i, p := range s.probes {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%s\n",
				cell, p.node, row.at, p.name, formatSeriesValue(row.vals[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

// SeriesCSVHeader is the header row of the series CSV format.
const SeriesCSVHeader = "cell,node,cycle,metric,value"

// formatSeriesValue prints integral values as integers (so counter
// samples byte-match table output) and the rest with fixed precision,
// mirroring the metrics text format.
func formatSeriesValue(v float64) string {
	if v >= 0 && v == float64(uint64(v)) {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%.6f", v)
}
