package timeline

import (
	"fmt"
	"io"
	"sort"

	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

// BarrierRecord is one barrier interval's critical-path decomposition:
// which rank arrived last, how late it was against the earliest arrival,
// and where its interval time went relative to the fastest rank.
type BarrierRecord struct {
	// Index is the barrier's sequence number within the run (0-based).
	Index int `json:"index"`
	// Release is the simulated cycle the barrier released (= the
	// straggler's arrival).
	Release sim.Cycles `json:"release"`
	// Straggler is the rank that arrived last and released the barrier.
	Straggler int `json:"straggler"`
	// Lateness is the straggler's arrival minus the earliest arrival —
	// the wait the straggler inflicted on the fastest rank.
	Lateness sim.Cycles `json:"lateness"`
	// TotalWait is the sum over all participating ranks of
	// (release - arrival): exactly the cycles this barrier contributed to
	// the bsp_barrier_wait_cycles histogram.
	TotalWait uint64 `json:"total_wait"`
	// Causes is the straggler's per-cause interval window (cycles charged
	// since the previous barrier).
	Causes [NumCauses]int64 `json:"causes"`
	// Excess is, per cause, the straggler's window minus the minimum
	// window across all participating ranks: the straggler's extra
	// exposure to that cause. The positive entries explain the lateness;
	// the residual (Lateness - sum of positive Excess) is compute-side
	// variation the accounts do not model (CPU sharing of the compute
	// phase itself).
	Excess [NumCauses]int64 `json:"excess"`
}

// DominantCause returns the cause with the largest positive excess, or
// ok=false when no cause shows positive excess (a balanced barrier).
// Ties break toward the lower-numbered (report-order) cause.
func (r BarrierRecord) DominantCause() (Cause, bool) {
	best, bestV := Cause(0), int64(0)
	ok := false
	for c := 0; c < NumCauses; c++ {
		if r.Excess[c] > bestV {
			best, bestV = Cause(c), r.Excess[c]
			ok = true
		}
	}
	return best, ok
}

// ExplainedFraction returns the share of the lateness covered by
// positive per-cause excess, clamped to [0, 1].
func (r BarrierRecord) ExplainedFraction() float64 {
	if r.Lateness == 0 {
		return 0
	}
	var pos int64
	for _, v := range r.Excess {
		if v > 0 {
			pos += v
		}
	}
	f := float64(pos) / float64(r.Lateness)
	if f > 1 {
		f = 1
	}
	return f
}

// Attribution is the barrier critical-path attributor for one
// application run: it owns one Account per rank (installed on the rank's
// process by the workload layer) and, at every barrier release, records
// who straggled and why. A nil *Attribution disables attribution; every
// method is nil-safe.
type Attribution struct {
	accounts   []*Account
	records    []BarrierRecord
	totalWait  uint64
	stragglers *metrics.Counter
	lateness   *metrics.Histogram
}

// NewAttribution returns an attributor for ranks ranks.
func NewAttribution(ranks int) *Attribution {
	a := &Attribution{accounts: make([]*Account, ranks)}
	for i := range a.accounts {
		a.accounts[i] = &Account{}
	}
	return a
}

// Rank returns rank i's account (nil on a nil receiver or out-of-range
// rank, which downstream charge sites treat as "off").
func (a *Attribution) Rank(i int) *Account {
	if a == nil || i < 0 || i >= len(a.accounts) {
		return nil
	}
	return a.accounts[i]
}

// Ranks returns the number of ranks (0 on a nil receiver).
func (a *Attribution) Ranks() int {
	if a == nil {
		return 0
	}
	return len(a.accounts)
}

// Observe attaches metric handles: bsp_stragglers_total counts barriers
// with nonzero lateness and bsp_straggler_lateness_cycles distributes
// the per-barrier lateness. Registered only when an attributor is
// attached, so baseline runs' snapshots are unchanged. No-op on a nil
// receiver; a nil registry leaves the handles on their no-op defaults.
func (a *Attribution) Observe(reg *metrics.Registry) {
	if a == nil || reg == nil {
		return
	}
	a.stragglers = reg.Counter(metrics.BSPStragglersTotal)
	a.lateness = reg.Histogram(metrics.BSPStragglerLatenessCycles)
}

// RecordBarrier closes one barrier interval: ranks/arrivedAt list the
// participating ranks in arrival order (the last entry released the
// barrier), release is the release cycle. It decomposes the straggler's
// lateness against the fastest rank's per-cause window, marks every
// participant's account so the next interval starts clean, and returns
// the record (also retained for Summary). No-op (zero record) on a nil
// receiver.
func (a *Attribution) RecordBarrier(release sim.Cycles, ranks []int, arrivedAt []sim.Cycles) BarrierRecord {
	if a == nil || len(ranks) == 0 {
		return BarrierRecord{}
	}
	rec := BarrierRecord{Index: len(a.records), Release: release}
	rec.Straggler = ranks[len(ranks)-1]
	earliest := arrivedAt[0]
	for _, at := range arrivedAt {
		if at < earliest {
			earliest = at
		}
		rec.TotalWait += uint64(release - at)
	}
	rec.Lateness = release - earliest

	// Straggler window vs the minimum window across participants.
	var minW [NumCauses]int64
	first := true
	for _, r := range ranks {
		w := a.Rank(r).Window()
		if r == rec.Straggler {
			rec.Causes = w
		}
		if first {
			minW = w
			first = false
			continue
		}
		for c := range w {
			if w[c] < minW[c] {
				minW[c] = w[c]
			}
		}
	}
	for c := range rec.Excess {
		rec.Excess[c] = rec.Causes[c] - minW[c]
	}
	for _, r := range ranks {
		a.Rank(r).Mark()
	}

	a.totalWait += rec.TotalWait
	if rec.Lateness > 0 {
		a.stragglers.Inc()
	}
	a.lateness.Observe(uint64(rec.Lateness))
	a.records = append(a.records, rec)
	return rec
}

// TotalWait returns the sum of every recorded barrier's TotalWait. When
// metrics are attached to the same run, this equals the
// bsp_barrier_wait_cycles histogram sum exactly (the conservation
// contract; see the doc). 0 on a nil receiver.
func (a *Attribution) TotalWait() uint64 {
	if a == nil {
		return 0
	}
	return a.totalWait
}

// Records returns the recorded barriers in barrier order (nil on a nil
// receiver). The slice is owned by the attributor; do not mutate.
func (a *Attribution) Records() []BarrierRecord {
	if a == nil {
		return nil
	}
	return a.records
}

// Summary is the deterministic aggregate of one run's barrier records,
// small enough to return through the experiment runner and render in
// reports.
type Summary struct {
	// Barriers counts recorded barrier releases.
	Barriers int `json:"barriers"`
	// TotalWait is the run's total barrier wait (all ranks, all
	// barriers) — reconciles with bsp_barrier_wait_cycles.
	TotalWait uint64 `json:"total_wait"`
	// TotalLateness sums per-barrier straggler lateness.
	TotalLateness uint64 `json:"total_lateness"`
	// CauseExcess sums, per cause, the positive excess across barriers:
	// the cycles of lateness that cause explains.
	CauseExcess [NumCauses]int64 `json:"cause_excess"`
	// DominantCount counts, per cause, the barriers it dominated.
	DominantCount [NumCauses]uint64 `json:"dominant_count"`
	// Balanced counts barriers with no positive excess (no straggler
	// story: all ranks paid the same).
	Balanced uint64 `json:"balanced"`
	// StragglerCount counts, per rank, how often it straggled.
	StragglerCount []uint64 `json:"straggler_count"`
	// Worst holds the highest-lateness barriers (up to 5), sorted by
	// lateness descending then barrier index ascending.
	Worst []BarrierRecord `json:"worst,omitempty"`
}

// Summarize folds the recorded barriers into a Summary. Safe on a nil
// receiver (returns the zero summary).
func (a *Attribution) Summarize() Summary {
	var s Summary
	if a == nil {
		return s
	}
	s.Barriers = len(a.records)
	s.TotalWait = a.totalWait
	s.StragglerCount = make([]uint64, len(a.accounts))
	for _, rec := range a.records {
		s.TotalLateness += uint64(rec.Lateness)
		if rec.Straggler < len(s.StragglerCount) {
			s.StragglerCount[rec.Straggler]++
		}
		if dom, ok := rec.DominantCause(); ok {
			s.DominantCount[dom]++
		} else {
			s.Balanced++
		}
		for c, v := range rec.Excess {
			if v > 0 {
				s.CauseExcess[c] += v
			}
		}
	}
	worst := append([]BarrierRecord(nil), a.records...)
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].Lateness != worst[j].Lateness {
			return worst[i].Lateness > worst[j].Lateness
		}
		return worst[i].Index < worst[j].Index
	})
	if len(worst) > 5 {
		worst = worst[:5]
	}
	s.Worst = worst
	return s
}

// DominantCause returns the cause explaining the most lateness across
// the whole run, or ok=false when nothing showed positive excess.
func (s Summary) DominantCause() (Cause, bool) {
	best, bestV := Cause(0), int64(0)
	ok := false
	for c := 0; c < NumCauses; c++ {
		if s.CauseExcess[c] > bestV {
			best, bestV = Cause(c), s.CauseExcess[c]
			ok = true
		}
	}
	return best, ok
}

// WriteReport renders the summary as the "noise attribution" report
// block: per-cause explained lateness, dominant-cause barrier counts,
// straggler distribution, and the worst barriers. Deterministic.
func (s Summary) WriteReport(w io.Writer) error {
	if s.Barriers == 0 {
		_, err := fmt.Fprintln(w, "  no barriers recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "  barriers %d  total wait %d cycles  total straggler lateness %d cycles\n",
		s.Barriers, s.TotalWait, s.TotalLateness); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-22s %18s %10s %9s\n", "cause", "explained cycles", "share", "dominant"); err != nil {
		return err
	}
	for c := 0; c < NumCauses; c++ {
		if s.CauseExcess[c] <= 0 && s.DominantCount[c] == 0 {
			continue
		}
		share := 0.0
		if s.TotalLateness > 0 {
			share = float64(s.CauseExcess[c]) / float64(s.TotalLateness)
		}
		if _, err := fmt.Fprintf(w, "  %-22s %18d %9.1f%% %9d\n",
			Cause(c).String(), s.CauseExcess[c], share*100, s.DominantCount[c]); err != nil {
			return err
		}
	}
	if s.Balanced > 0 {
		if _, err := fmt.Fprintf(w, "  %-22s %18s %10s %9d\n", "(balanced)", "-", "-", s.Balanced); err != nil {
			return err
		}
	}
	if n := len(s.StragglerCount); n > 0 {
		if _, err := fmt.Fprint(w, "  stragglers by rank:"); err != nil {
			return err
		}
		for r, cnt := range s.StragglerCount {
			if _, err := fmt.Fprintf(w, " r%d=%d", r, cnt); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, rec := range s.Worst {
		name := "(balanced)"
		if dom, ok := rec.DominantCause(); ok {
			name = dom.String()
		}
		if _, err := fmt.Fprintf(w, "  worst: barrier %d rank %d late %d cycles, %4.0f%% explained, dominant %s\n",
			rec.Index, rec.Straggler, uint64(rec.Lateness), rec.ExplainedFraction()*100, name); err != nil {
			return err
		}
	}
	return nil
}
