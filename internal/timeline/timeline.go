// Package timeline turns the simulator's end-of-cell observability into
// an over-simulated-time research instrument (OBSERVABILITY.md §"Time
// series and barrier attribution"):
//
//   - Series samples selected gauges and counters at a fixed
//     simulated-cycle cadence, piggybacked on an existing engine ticker
//     so enabling it schedules no PRNG-perturbing events on the
//     single-node path, and renders the samples as a deterministic CSV
//     and as Chrome trace counter ('C') tracks.
//   - Account/Attribution decompose the BSP barrier wait — the paper's
//     noise-amplification mechanism — into causes: which memory-
//     management activity made the straggler rank late, per barrier.
//
// Everything here is pure accounting: no randomness, no engine events of
// its own (the sampling cadence belongs to the caller), and every type
// is nil-safe so uninstrumented hot paths pay one branch.
package timeline

import (
	"hpmmap/internal/fault"
	"hpmmap/internal/sim"
)

// Cause classifies where a rank's time between barriers went, beyond its
// own deterministic compute: the commodity-MM activities the paper blames
// for barrier-amplified slowdown, plus communication and scheduling.
type Cause int

// Causes, in fixed report order.
const (
	// CauseSmallFault is 4KB demand-fault service (fault.KindSmall).
	CauseSmallFault Cause = iota
	// CauseLargeFault is THP 2MB fault service (fault.KindLarge).
	CauseLargeFault
	// CauseMergeFault is time blocked on khugepaged's mm lock plus the
	// blocked fault's own service (fault.KindMergeBlocked).
	CauseMergeFault
	// CauseHugeTLBLargeFault is hugetlb pool-fill service.
	CauseHugeTLBLargeFault
	// CauseHugeTLBSmallFault is the 4KB path of a HugeTLBfs-configured
	// process, excluding reclaim stalls (reattributed to
	// CauseReclaimStorm).
	CauseHugeTLBSmallFault
	// CauseStackFault is stack-growth fault service.
	CauseStackFault
	// CauseReclaimStorm is heavy-tailed direct-reclaim stall time,
	// reattributed out of the fault kind that paid it.
	CauseReclaimStorm
	// CauseMlockSplit is large-page splitting under mlockall.
	CauseMlockSplit
	// CauseSyscall is the memory-management system-call surface (mmap,
	// munmap, brk, mprotect) including HPMMAP's eager on-request backing.
	CauseSyscall
	// CauseSched is CPU time lost to timesharing: the gap between a
	// segment's wall time and its own compute + stall.
	CauseSched
	// CauseComm is the nominal (pre-jitter) network exchange cost.
	CauseComm
	// CauseCommJitter is the signed deviation of the jittered exchange
	// cost from nominal.
	CauseCommJitter
	// CauseChaos is injected straggler delay (internal/chaos).
	CauseChaos
	// CauseEvict is TLB-shootdown/mm-teardown stall time deposited on
	// Linux-managed processes by datacenter eviction passes (the kubelet
	// mass-unmapping victims; internal/datacenter). HPMMAP processes
	// never pay it — their fault path never takes the mm lock.
	CauseEvict
	numCauses
)

// NumCauses is the number of causes (for fixed-size accounting arrays).
const NumCauses = int(numCauses)

// String returns the cause's stable snake-case name, used in reports and
// trace instant names.
func (c Cause) String() string {
	switch c {
	case CauseSmallFault:
		return "fault_small"
	case CauseLargeFault:
		return "fault_large"
	case CauseMergeFault:
		return "fault_merge"
	case CauseHugeTLBLargeFault:
		return "fault_hugetlb_large"
	case CauseHugeTLBSmallFault:
		return "fault_hugetlb_small"
	case CauseStackFault:
		return "fault_stack"
	case CauseReclaimStorm:
		return "reclaim_storm"
	case CauseMlockSplit:
		return "mlock_split"
	case CauseSyscall:
		return "syscall"
	case CauseSched:
		return "sched_preempt"
	case CauseComm:
		return "comm"
	case CauseCommJitter:
		return "comm_jitter"
	case CauseChaos:
		return "chaos"
	case CauseEvict:
		return "evict"
	}
	return "?"
}

// FaultCause maps a fault kind to its attribution cause.
func FaultCause(k fault.Kind) Cause {
	switch k {
	case fault.KindSmall:
		return CauseSmallFault
	case fault.KindLarge:
		return CauseLargeFault
	case fault.KindMergeBlocked:
		return CauseMergeFault
	case fault.KindHugeTLBLarge:
		return CauseHugeTLBLargeFault
	case fault.KindHugeTLBSmall:
		return CauseHugeTLBSmallFault
	case fault.KindStackGrow:
		return CauseStackFault
	}
	return CauseSmallFault
}

// Account accumulates one rank's per-cause cycles. Charges arrive from
// the kernel fault path, the MM syscall surface, the scheduler-gap hook,
// the cluster communication model and the chaos injector; the barrier
// attributor reads the deltas since the last barrier via Window and
// resets them via Mark. Values are signed because communication jitter
// can run ahead of nominal. A nil *Account is the no-op default: every
// method is nil-safe.
type Account struct {
	cyc  [NumCauses]int64
	mark [NumCauses]int64
}

// Charge adds d cycles to cause c. No-op on a nil receiver.
func (a *Account) Charge(c Cause, d sim.Cycles) {
	if a != nil {
		a.cyc[c] += int64(d)
	}
}

// ChargeSigned adds a signed cycle delta to cause c (communication
// jitter below nominal is negative). No-op on a nil receiver.
func (a *Account) ChargeSigned(c Cause, d int64) {
	if a != nil {
		a.cyc[c] += d
	}
}

// Reattribute moves d cycles from cause `from` to cause `to` — used by
// the storm-charging fault paths, which learn the reclaim share of a
// fault's cost after charging the whole fault to its kind. No-op on a
// nil receiver.
func (a *Account) Reattribute(from, to Cause, d sim.Cycles) {
	if a != nil {
		a.cyc[from] -= int64(d)
		a.cyc[to] += int64(d)
	}
}

// Total returns the all-causes lifetime total (0 on a nil receiver).
func (a *Account) Total() int64 {
	if a == nil {
		return 0
	}
	var t int64
	for _, v := range a.cyc {
		t += v
	}
	return t
}

// Window returns the per-cause cycles accumulated since the last Mark
// (zeroes on a nil receiver).
func (a *Account) Window() [NumCauses]int64 {
	if a == nil {
		return [NumCauses]int64{}
	}
	var w [NumCauses]int64
	for i := range w {
		w[i] = a.cyc[i] - a.mark[i]
	}
	return w
}

// Mark closes the current interval: the next Window measures from here.
// No-op on a nil receiver.
func (a *Account) Mark() {
	if a == nil {
		return
	}
	a.mark = a.cyc
}
