package datacenter

import (
	"testing"

	"hpmmap/internal/sim"
)

// failAgent builds the minimal in-package Agent the pure failure-domain
// paths need: config, engine, and the backoff substream. No node — the
// study tests cover every path that touches the machine.
func failAgent(overcommit float64, seed uint64) *Agent {
	cfg := Config{}
	cfg.Failure = FailureConfig{Overcommit: overcommit}.withDefaults(cfg)
	return &Agent{
		cfg:         cfg,
		eng:         sim.NewEngine(),
		backoffRand: sim.NewRand(seed),
	}
}

func TestShapeRequestClasses(t *testing.T) {
	const bytes = 100 << 20
	// Disabled domain: request == limit for everything.
	off := failAgent(1, 1)
	for class := Class(0); class < NumClasses; class++ {
		for prio := Priority(0); prio < NumPriorities; prio++ {
			req, lim := off.shapeRequest(class, prio, bytes)
			if req != bytes || lim != bytes {
				t.Fatalf("disabled domain shaped %s/%s to (%d,%d)", class, prio, req, lim)
			}
		}
	}
	on := failAgent(2, 1)
	// Guaranteed: never overcommitted.
	if req, lim := on.shapeRequest(ClassTHP, PriorityGuaranteed, bytes); req != bytes || lim != bytes {
		t.Fatalf("guaranteed shaped to (%d,%d)", req, lim)
	}
	// Burstable: full request, overcommitted limit, 2MB-rounded.
	req, lim := on.shapeRequest(ClassTHP, PriorityBurstable, bytes)
	if req != bytes {
		t.Fatalf("burstable request %d, want %d", req, bytes)
	}
	if lim != roundUp2M(2*bytes) || lim < 2*bytes {
		t.Fatalf("burstable limit %d, want 2MB-rounded %d", lim, uint64(2*bytes))
	}
	// Best-effort: token request, overcommitted limit.
	req, lim = on.shapeRequest(ClassTHP, PriorityBestEffort, bytes)
	if req != 16<<20 {
		t.Fatalf("best-effort request %d, want 16MB", req)
	}
	if lim != roundUp2M(2*bytes) {
		t.Fatalf("best-effort limit %d", lim)
	}
	// HPMMAP pods never overcommit: explicit pool allocation has no
	// demand-paged slack, and inflated limits would drain the pools the
	// resident victim allocates from.
	for prio := Priority(0); prio < NumPriorities; prio++ {
		if req, lim := on.shapeRequest(ClassHPMMAP, prio, bytes); req != bytes || lim != bytes {
			t.Fatalf("HPMMAP/%s overcommitted: (%d,%d)", prio, req, lim)
		}
	}
}

func TestPodUsageGrowsToLimit(t *testing.T) {
	a := failAgent(2, 1)
	pd := &pod{request: 100 << 20, bytes: 200 << 20, started: 1000, lifetime: 1000}
	if got := a.podUsage(pd, 1000); got != 100<<20 {
		t.Fatalf("usage at birth %d, want the request", got)
	}
	if got := a.podUsage(pd, 1500); got != 150<<20 {
		t.Fatalf("usage at half life %d, want the request/limit midpoint", got)
	}
	if got := a.podUsage(pd, 2000); got != 200<<20 {
		t.Fatalf("usage at end of life %d, want the limit", got)
	}
	if got := a.podUsage(pd, 5000); got != 200<<20 {
		t.Fatalf("usage past end of life %d, want the limit", got)
	}
	// request == limit (guaranteed, HPMMAP, disabled domain): flat.
	flat := &pod{request: 64 << 20, bytes: 64 << 20, started: 0, lifetime: 1000}
	if got := a.podUsage(flat, 500); got != 64<<20 {
		t.Fatalf("flat pod usage %d", got)
	}
}

func TestSelectVictimOrdering(t *testing.T) {
	a := failAgent(2, 1)
	// All pods past end-of-life so usage == bytes and over == bytes-request.
	mk := func(prio Priority, zone int, overMB uint64) *pod {
		return &pod{prio: prio, zone: zone, request: 64 << 20,
			bytes: (64 + overMB) << 20, started: 0, lifetime: 1}
	}
	g := mk(PriorityGuaranteed, 0, 100)
	bu := mk(PriorityBurstable, 0, 100)
	beSmall := mk(PriorityBestEffort, 0, 10)
	beBig := mk(PriorityBestEffort, 0, 50)
	beOther := mk(PriorityBestEffort, 1, 200)
	done := mk(PriorityBestEffort, 0, 300)
	done.done = true
	a.pods = []*pod{g, bu, beSmall, beBig, beOther, done}

	const now = 1000
	order := []*pod{beBig, beSmall, bu, g}
	for i, want := range order {
		got := a.selectVictim(0, now)
		if got != want {
			t.Fatalf("victim %d: got prio=%s over=%d, want prio=%s over=%d",
				i, got.prio, got.bytes-got.request, want.prio, want.bytes-want.request)
		}
		got.done = true
	}
	if got := a.selectVictim(0, now); got != nil {
		t.Fatal("victim found in a zone with no live pods")
	}
	// Node-wide selection still sees the other zone's pod.
	if got := a.selectVictim(-1, now); got != beOther {
		t.Fatal("node-wide selection missed the surviving pod")
	}
	// Tie on priority and over: earliest admission (slice order) wins.
	t1, t2 := mk(PriorityBestEffort, 0, 20), mk(PriorityBestEffort, 0, 20)
	a.pods = []*pod{t2, t1}
	if got := a.selectVictim(0, now); got != t2 {
		t.Fatal("tie not broken by admission order")
	}
}

// measureBackoff arms one restart attempt and runs the engine dry; with
// the agent stopped the restart callback is a no-op, so the engine
// clock lands exactly on the armed delay.
func measureBackoff(seed uint64, restarts int) sim.Cycles {
	a := failAgent(2, seed)
	a.stopped = true
	a.armRestart(ClassTHP, PriorityBestEffort, 16<<20, 16<<20, 1, restarts)
	a.eng.Run()
	return a.eng.Now()
}

func TestBackoffExponentialJitteredCapped(t *testing.T) {
	f := FailureConfig{Overcommit: 2}.withDefaults(Config{})
	for n := 0; n < 12; n++ {
		want := f.BackoffBase
		for i := 0; i < n && want < f.BackoffCap; i++ {
			want *= 2
		}
		if want > f.BackoffCap {
			want = f.BackoffCap
		}
		d := measureBackoff(uint64(n), n)
		lo := want - want/4
		hi := want + want/4
		if d < lo || d > hi {
			t.Fatalf("restarts=%d: delay %d outside ±25%% of %d", n, d, want)
		}
		if d2 := measureBackoff(uint64(n), n); d2 != d {
			t.Fatalf("restarts=%d: same seed drew different delays (%d vs %d)", n, d, d2)
		}
	}
	// The cap binds: far past the doubling range the delay stays put.
	if d := measureBackoff(3, 50); d > f.BackoffCap+f.BackoffCap/4 {
		t.Fatalf("restarts=50 delay %d exceeds jittered cap", d)
	}
}

func TestQuiescentUptimeResetsCrashLoop(t *testing.T) {
	f := FailureConfig{Overcommit: 2}.withDefaults(Config{})
	// measure arms via scheduleRestart after advancing the clock to
	// uptime, so the quiescence test goes through the real reset branch.
	measure := func(uptime sim.Cycles, restarts int) sim.Cycles {
		a := failAgent(2, 7)
		a.stopped = true
		a.eng.Schedule(uptime, func() {})
		a.eng.Run()
		start := a.eng.Now()
		a.scheduleRestart(&pod{started: 0, restarts: restarts, request: 16 << 20, bytes: 16 << 20, lifetime: 1})
		a.eng.Run()
		return a.eng.Now() - start
	}
	// Short uptime: the crash loop keeps compounding (2^6 = cap here).
	if d := measure(f.BackoffBase, 6); d < f.BackoffCap-f.BackoffCap/4 {
		t.Fatalf("crash-looping pod restarted after only %d cycles", d)
	}
	// Quiescent uptime: the counter resets to the base delay.
	if d := measure(f.QuiescentUptime, 6); d > f.BackoffBase+f.BackoffBase/4 {
		t.Fatalf("quiescent pod still paying compound backoff: %d cycles", d)
	}
}

func TestZoneFailNilAndRangeSafe(t *testing.T) {
	var a *Agent
	a.ZoneFail(0, true) // nil agent: the chaos family runs without a datacenter
	b := failAgent(2, 1)
	b.zoneDown = make([]bool, 2)
	b.ZoneFail(-1, true)
	b.ZoneFail(7, true) // out of range: ignored
	for z, down := range b.zoneDown {
		if down {
			t.Fatalf("out-of-range ZoneFail marked zone %d down", z)
		}
	}
}
