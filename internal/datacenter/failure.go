// The datacenter failure domain: requests-vs-limits overcommit, pod
// priority classes, the kubelet-style pressure-driven eviction engine,
// crash-loop restart backoff, and node-failure (zone-outage) handling.
//
// Ordering contract (the invariant the eviction study asserts): victims
// are chosen lowest-priority-first (best-effort, then burstable, then
// guaranteed), ties broken by largest usage-over-request and then by
// admission order. A guaranteed pod is therefore never evicted while a
// best-effort pod remains live — violated selection raises a structured
// invariant violation, not a silent misaccounting.
//
// Backoff contract: every involuntary death (pressure eviction, zone
// failure, failed re-admission) schedules a restart after
// BackoffBase·2^restarts cycles, jittered ±25% from the dedicated
// backoff substream, capped at BackoffCap; a pod that stayed up for
// QuiescentUptime before dying restarts with a reset counter —
// kubelet's CrashLoopBackOff, deterministically.
package datacenter

import (
	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/sim"
)

// Priority is a pod's eviction priority class, in eviction order:
// lower values are evicted first.
type Priority int

// Priority classes, kubelet QoS order.
const (
	// PriorityBestEffort pods absorb pressure first: minimal request,
	// usage up to the full overcommitted limit.
	PriorityBestEffort Priority = iota
	// PriorityBurstable pods request their nominal size and may burst to
	// the overcommitted limit.
	PriorityBurstable
	// PriorityGuaranteed pods have request == limit and are evicted only
	// when no lower class remains.
	PriorityGuaranteed
	// NumPriorities counts the priority classes.
	NumPriorities
)

func (p Priority) String() string {
	switch p {
	case PriorityBestEffort:
		return "best-effort"
	case PriorityBurstable:
		return "burstable"
	case PriorityGuaranteed:
		return "guaranteed"
	}
	return "?"
}

// FailureConfig shapes the failure domain. The zero value disables it.
type FailureConfig struct {
	// Overcommit is the limits:requests ratio for burstable and
	// best-effort pods. Values <= 1 disable the failure domain entirely:
	// requests equal limits, no eviction manager runs, and involuntary
	// pod deaths are not restarted (the pre-failure-domain agent).
	Overcommit float64

	// EvictPeriod is the eviction manager's sweep cadence. Zero selects
	// ChurnMeanPeriod (or a quarter second of 2.2GHz time without churn)
	// — kubelet's housekeeping interval, scaled to the churn rate.
	EvictPeriod sim.Cycles

	// EvictUsageFrac is the per-zone high-water mark: a sweep evicts
	// while a zone's usage exceeds EvictUsageFrac × budget. Zero selects
	// 1.0 (evict only genuine budget overruns).
	EvictUsageFrac float64

	// EvictCommitPressure is the node-wide leg: a sweep also evicts
	// while kernel.Node.CommitPressure exceeds it. Zero selects 0.95.
	EvictCommitPressure float64

	// BackoffBase is the first crash-loop restart delay. Zero selects
	// 5_500_000 cycles (~2.5ms of 2.2GHz time, half a churn period).
	BackoffBase sim.Cycles

	// BackoffCap bounds the exponential backoff. Zero selects 64× base.
	BackoffCap sim.Cycles

	// QuiescentUptime is the uptime after which a pod's crash counter
	// resets. Zero selects 8× BackoffBase.
	QuiescentUptime sim.Cycles

	// EvictStallCycles is the TLB-shootdown stall one eviction deposits
	// on every live Linux-managed process (the kubelet mass-unmapping
	// the victim's address space broadcasts invalidation IPIs; HPMMAP
	// processes are structurally immune). Zero selects 25_000 cycles.
	EvictStallCycles sim.Cycles
}

// Enabled reports whether the failure domain is on.
func (f FailureConfig) Enabled() bool { return f.Overcommit > 1 }

// withDefaults resolves zero fields against the surrounding Config.
// Defaults are resolved even when the domain is disabled so ZoneFail —
// usable independently of overcommit — has a working backoff contract.
func (f FailureConfig) withDefaults(cfg Config) FailureConfig {
	if f.EvictPeriod <= 0 {
		if cfg.ChurnMeanPeriod > 0 {
			f.EvictPeriod = cfg.ChurnMeanPeriod
		} else {
			f.EvictPeriod = 550_000_000
		}
	}
	if f.EvictUsageFrac <= 0 {
		f.EvictUsageFrac = 1.0
	}
	if f.EvictCommitPressure <= 0 {
		f.EvictCommitPressure = 0.95
	}
	if f.BackoffBase <= 0 {
		f.BackoffBase = 5_500_000
	}
	if f.BackoffCap <= 0 {
		f.BackoffCap = 64 * f.BackoffBase
	}
	if f.QuiescentUptime <= 0 {
		f.QuiescentUptime = 8 * f.BackoffBase
	}
	if f.EvictStallCycles <= 0 {
		f.EvictStallCycles = 25_000
	}
	return f
}

// drawPriority draws a pod's priority class from the dedicated
// substream: half the fleet is best-effort, the classes the paper's
// users would protect are rarer — the shape that makes overcommit
// pressure land on the evictable tier.
func (a *Agent) drawPriority() Priority {
	switch v := a.prioRand.Intn(6); {
	case v < 3:
		return PriorityBestEffort
	case v < 5:
		return PriorityBurstable
	default:
		return PriorityGuaranteed
	}
}

// shapeRequest maps a drawn pod size onto (request, limit) for its
// class and priority. With the failure domain off both equal the drawn
// size — the original agent's admission arithmetic, byte for byte.
// HPMMAP pods never overcommit regardless of priority: the lightweight
// manager allocates explicitly from the offlined pools at map time, so
// there is no demand-paged slack between request and limit to burst
// into (and an inflated limit would drain the pools the resident HPC
// victim allocates from).
func (a *Agent) shapeRequest(class Class, prio Priority, bytes uint64) (request, limit uint64) {
	f := a.cfg.Failure
	if !f.Enabled() || class == ClassHPMMAP {
		return bytes, bytes
	}
	switch prio {
	case PriorityGuaranteed:
		return bytes, bytes
	case PriorityBurstable:
		return bytes, roundUp2M(uint64(float64(bytes) * f.Overcommit))
	default: // best-effort: minimal request, full overcommitted burst
		return 16 << 20, roundUp2M(uint64(float64(bytes) * f.Overcommit))
	}
}

// startEvictor attaches the eviction manager's sweep ticker. No-op when
// the failure domain is disabled, so pre-existing configurations
// schedule exactly the events they always did.
func (a *Agent) startEvictor() {
	if !a.cfg.Failure.Enabled() {
		return
	}
	a.evictTicker = a.eng.NewTicker(a.cfg.Failure.EvictPeriod, a.evictionPass)
}

// podUsage models a pod's current memory usage: it starts at the
// admission request and grows linearly to the limit over the pod's
// lifetime — "admission checks requests, usage grows to limits". A
// pure function of (pod, now), so the books can never drift from the
// pods: usage is computed on demand, not maintained incrementally.
func (a *Agent) podUsage(pd *pod, now sim.Cycles) uint64 {
	if pd.bytes <= pd.request {
		return pd.request
	}
	elapsed := now - pd.started
	if elapsed >= pd.lifetime {
		return pd.bytes
	}
	return pd.request + uint64(float64(pd.bytes-pd.request)*float64(elapsed)/float64(pd.lifetime))
}

// zoneUsage sums the modeled usage of a zone's live pods.
func (a *Agent) zoneUsage(zone int, now sim.Cycles) uint64 {
	var t uint64
	for _, pd := range a.pods {
		if !pd.done && pd.zone == zone {
			t += a.podUsage(pd, now)
		}
	}
	return t
}

// evictionPass is one eviction-manager sweep: drain every zone back
// under its usage high-water mark, then relieve node commit pressure,
// lowest-priority victims first. The pressure leg evicts at most one
// pod per sweep (kubelet's eviction manager pace) — the zone legs are
// the bulk path, and they converge because every eviction strictly
// lowers the zone's summed usage. Deterministic — selection draws
// nothing; only restart backoff jitter consumes randomness, from its
// own substream.
func (a *Agent) evictionPass() {
	if a.stopped {
		return
	}
	a.EvictionPasses++
	a.m.evictPasses.Inc()
	f := a.cfg.Failure
	now := a.eng.Now()
	evicted := 0
	highWater := uint64(float64(a.budget) * f.EvictUsageFrac)
	for z := range a.allocated {
		for a.zoneUsage(z, now) > highWater {
			pd := a.selectVictim(z, now)
			if pd == nil {
				break // nothing evictable: the overrun is not pod-driven
			}
			a.evict(pd)
			evicted++
		}
	}
	// Node-wide leg: commit pressure counts every tenant and the victim
	// workload; evicting pods is the only relief the agent can offer.
	if a.node.CommitPressure() > f.EvictCommitPressure {
		if pd := a.selectVictim(-1, now); pd != nil {
			a.evict(pd)
			evicted++
		}
	}
	if evicted > 0 {
		a.depositEvictStalls(evicted)
	}
}

// selectVictim picks the next eviction victim in the zone (-1 = node
// wide): lowest priority class first, then largest usage-over-request,
// then earliest admission. Returns nil when no live pod qualifies.
func (a *Agent) selectVictim(zone int, now sim.Cycles) *pod {
	var best *pod
	var bestOver uint64
	for _, pd := range a.pods {
		if pd.done || (zone >= 0 && pd.zone != zone) {
			continue
		}
		over := a.podUsage(pd, now) - pd.request
		if best == nil {
			best, bestOver = pd, over
			continue
		}
		if pd.prio != best.prio {
			if pd.prio < best.prio {
				best, bestOver = pd, over
			}
			continue
		}
		if over > bestOver {
			best, bestOver = pd, over
		}
	}
	return best
}

// evict removes one pod under pressure, charging the eviction books and
// scheduling its crash-loop restart. The priority-ordering invariant is
// asserted here: evicting a guaranteed pod while any best-effort pod
// remains live anywhere on the node is a bug, not a policy choice.
func (a *Agent) evict(pd *pod) {
	if pd.prio == PriorityGuaranteed {
		for _, other := range a.pods {
			if !other.done && other.prio == PriorityBestEffort {
				invariant.Failf("dc_eviction_priority", "datacenter",
					"guaranteed pod %s evicted while best-effort pod %s is live",
					pd.p, other.p)
			}
		}
	}
	pd.done = true
	a.release(pd)
	a.Running--
	if !pd.p.Exited {
		a.node.ExitReap(pd.p)
	}
	a.Evicted[pd.prio]++
	a.m.evicted.Inc()
	a.scheduleRestart(pd)
}

// depositEvictStalls broadcasts the sweep's TLB-shootdown cost: every
// live Linux-managed process pays one mm-lock stall proportional to the
// number of address spaces torn down, consumed (and attributed to the
// evict cause) by its next fault. HPMMAP processes never read these.
func (a *Agent) depositEvictStalls(evicted int) {
	stall := a.cfg.Failure.EvictStallCycles * sim.Cycles(evicted)
	now := a.eng.Now()
	a.node.Processes(func(p *kernel.Process) {
		if p.Exited {
			return
		}
		if until := now + stall; until > p.MMLockedUntil {
			p.MMLockedUntil = until
		}
		p.PendingEvictCosts = append(p.PendingEvictCosts, stall)
	})
}

// scheduleRestart arms the crash-loop for an involuntarily killed pod.
func (a *Agent) scheduleRestart(pd *pod) {
	restarts := pd.restarts
	if a.eng.Now()-pd.started >= a.cfg.Failure.QuiescentUptime {
		restarts = 0 // quiescent uptime: the crash loop is forgiven
	}
	a.armRestart(pd.class, pd.prio, pd.request, pd.bytes, pd.lifetime, restarts)
}

// armRestart schedules one restart attempt after the class backoff:
// base·2^restarts, jittered ±25% from the backoff substream, capped.
func (a *Agent) armRestart(class Class, prio Priority, request, limit uint64, lifetime sim.Cycles, restarts int) {
	f := a.cfg.Failure
	delay := f.BackoffBase
	for i := 0; i < restarts && delay < f.BackoffCap; i++ {
		delay *= 2
	}
	if delay > f.BackoffCap {
		delay = f.BackoffCap
	}
	delay = a.backoffRand.Jitter(delay, 0.25)
	if delay < 1 {
		delay = 1
	}
	a.BackoffHist.Observe(uint64(delay))
	a.m.backoff.Observe(uint64(delay))
	a.eng.Schedule(delay, func() { a.restartPod(class, prio, request, limit, lifetime, restarts+1) })
}

// restartPod is one crash-loop attempt: re-admit the request and bring
// the pod back for a full lifetime. A failed re-admission (every zone
// full or down) stays in the loop at the next backoff step.
func (a *Agent) restartPod(class Class, prio Priority, request, limit uint64, lifetime sim.Cycles, restarts int) {
	if a.stopped {
		return
	}
	zone := a.admit(request)
	if zone < 0 {
		a.armRestart(class, prio, request, limit, lifetime, restarts)
		return
	}
	if a.startPod(class, prio, request, limit, lifetime, restarts, zone, true) != nil {
		a.Restarts[prio]++
		a.m.restarts.Inc()
	}
}

// ZoneFail is the node-failure chaos hook (chaos.Injector.
// SetZoneFailHandler): a zone's memory goes offline at the orchestration
// level. Its pods are displaced — guaranteed and burstable tenants are
// rescheduled onto surviving zones for their remaining lifetime when
// capacity allows, best-effort tenants (and reschedules that find no
// room) fall into the crash-loop backoff. On recovery the zone simply
// resumes admitting; nothing migrates back. Safe on a nil agent, so the
// chaos family works with no datacenter attached (draws intact).
func (a *Agent) ZoneFail(zone int, down bool) {
	if a == nil || a.stopped || zone < 0 || zone >= len(a.zoneDown) {
		return
	}
	if !down {
		a.zoneDown[zone] = false
		return
	}
	if a.zoneDown[zone] {
		return
	}
	a.zoneDown[zone] = true
	a.ZoneFailures++

	// Snapshot the zone's tenants: displacement appends new pods.
	var victims []*pod
	for _, pd := range a.pods {
		if !pd.done && pd.zone == zone {
			victims = append(victims, pd)
		}
	}
	// Best-effort pods go first — into the crash loop — so the
	// eviction-ordering invariant holds when the pressure legs run
	// inside the same sweep window.
	for _, pd := range victims {
		if pd.prio == PriorityBestEffort {
			a.evict(pd)
		}
	}
	for _, pd := range victims {
		if pd.prio == PriorityBestEffort {
			continue
		}
		a.reschedule(pd)
	}
}

// reschedule moves a displaced pod to a surviving zone for its
// remaining lifetime; with no capacity anywhere it joins the crash
// loop (counted as a restart, never an eviction — the zone died, the
// pod did nothing wrong).
func (a *Agent) reschedule(pd *pod) {
	pd.done = true
	a.release(pd)
	a.Running--
	if !pd.p.Exited {
		a.node.ExitReap(pd.p)
	}
	remaining := pd.started + pd.lifetime - a.eng.Now()
	if remaining < 1 {
		remaining = 1
	}
	newZone := a.admitExcluding(pd.request, pd.zone)
	if newZone < 0 {
		a.scheduleRestart(pd)
		return
	}
	if a.startPod(pd.class, pd.prio, pd.request, pd.bytes, remaining, pd.restarts, newZone, true) != nil {
		a.Rescheduled++
		a.m.rescheduled.Inc()
	}
}

// EvictedTotal sums evictions across priority classes.
func (a *Agent) EvictedTotal() uint64 {
	var t uint64
	for _, v := range a.Evicted {
		t += v
	}
	return t
}

// RestartsTotal sums crash-loop restarts across priority classes.
func (a *Agent) RestartsTotal() uint64 {
	var t uint64
	for _, v := range a.Restarts {
		t += v
	}
	return t
}
