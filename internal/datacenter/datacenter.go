// Package datacenter is a kubelet-style orchestration agent for the
// simulated node: it restates the paper's isolation claim at
// cluster-orchestration scale (ROADMAP item 2). The agent pre-reserves
// per-NUMA-zone hugepage budgets, admits short-lived "pods" — mixed
// THP / HugeTLBfs / HPMMAP tenants with memory requests — by
// deterministic bin-packing against those budgets, and drives pod
// lifecycle churn at a configurable rate. Pods allocate and touch real
// simulated memory through the ordinary manager paths, so their fault
// tails and their interference with a resident HPC job emerge from
// actual allocator/reclaim state, exactly like every other workload in
// this repository.
//
// Determinism contract (mirrors internal/chaos): every draw comes from
// a datacenter-dedicated SplitMix64 stream derived from the cell seed
// under a distinct tag — never from the workload PRNG — so attaching an
// agent perturbs the machine but not the workload's own random
// choices, and a given (seed, Config) produces a byte-identical pod
// schedule at any runner worker count. Each concern (churn timing, pod
// specs, lifetimes, resident measurement) owns a Split substream carved
// in a fixed order, and a rejected pod consumes exactly the same draws
// as an admitted one, so admission pressure never shifts later specs.
//
// Pod teardown uses the kernel's lifecycle fast path (ExitReap): a pod
// that has reached its scheduled end is quiescent by construction — it
// has no tasks and no pending events of its own — which is precisely
// the reuse contract of DESIGN.md §11.
package datacenter

import (
	"fmt"

	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/metrics"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// Class is the memory-manager tenancy of a pod.
type Class int

// Tenant classes, in draw order.
const (
	// ClassTHP pods run as commodity processes: the mixed-tenancy
	// manager routes them to transparent huge pages.
	ClassTHP Class = iota
	// ClassHugeTLB pods run as non-commodity Linux processes backed by
	// the pre-reserved hugetlbfs pools.
	ClassHugeTLB
	// ClassHPMMAP pods are launched through the HPMMAP registration
	// tool and live entirely on the offlined pools.
	ClassHPMMAP
	// NumClasses counts the tenant classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassTHP:
		return "thp"
	case ClassHugeTLB:
		return "hugetlbfs"
	case ClassHPMMAP:
		return "hpmmap"
	}
	return "?"
}

// dcTag separates the datacenter stream from every workload and chaos
// stream derived from the same cell seed ("DCTR\n" | stream version 1).
const dcTag = 0x444354520a000001

// DeriveSeed maps a cell seed onto the datacenter-dedicated stream seed
// via the SplitMix64 finalizer, exactly as chaos.DeriveSeed does under
// its own tag.
func DeriveSeed(cellSeed uint64) uint64 {
	state := cellSeed ^ dcTag
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config shapes the pod churn the agent drives.
type Config struct {
	// ChurnMeanPeriod is the mean inter-arrival of pod launches, in
	// cycles. Zero disables churn entirely (Start attaches only the
	// resident measurement pods).
	ChurnMeanPeriod sim.Cycles

	// PodMeanLifetime is the mean pod lifetime, drawn exponentially.
	PodMeanLifetime sim.Cycles

	// PodBytes is the nominal pod memory request; individual pods
	// jitter ±50% around it and round up to 2MB.
	PodBytes uint64

	// ZoneBudgetBytes is the per-NUMA-zone hugepage budget the agent
	// pre-reserves for admission (the kubelet's allocatable hugepages).
	// Zero derives a quarter of each zone's physical memory.
	ZoneBudgetBytes uint64

	// ResidentBytes is the working set of each class's long-lived
	// measurement pod. Zero disables the resident pods.
	ResidentBytes uint64

	// ResidentPeriod is the interval at which each resident pod
	// remeasures: munmap its region, mmap it again, and touch it in 2MB
	// slices, observing per-slice fault latency. Zero selects
	// ChurnMeanPeriod (or a quarter second when churn is off too).
	ResidentPeriod sim.Cycles
}

// DefaultConfig returns the study's standard churn shape: pod arrivals
// every ~5ms of 2.2GHz simulated time, ~30ms lifetimes, 64MB requests,
// and 32MB resident measurement pods.
func DefaultConfig() Config {
	return Config{
		ChurnMeanPeriod: 11_000_000,
		PodMeanLifetime: 66_000_000,
		PodBytes:        64 << 20,
		ResidentBytes:   32 << 20,
	}
}

// Launcher launches an HPMMAP-registered process (implemented by
// core.Manager). Nil means ClassHPMMAP pods are skipped at draw time —
// their draws are still consumed.
type Launcher interface {
	Launch(name string, preferredZone int) (*kernel.Process, error)
}

// pod is one live tenant.
type pod struct {
	p     *kernel.Process
	class Class
	zone  int
	bytes uint64
	done  bool
}

// Agent is the kubelet-style node agent.
type Agent struct {
	cfg  Config
	node *kernel.Node
	eng  *sim.Engine
	hp   Launcher
	rnd  *sim.Rand

	// Per-concern substreams, carved in a fixed order at New.
	churnRand, specRand, lifeRand, residentRand *sim.Rand

	// budget and allocated track per-zone admission bookkeeping.
	budget    uint64
	allocated []uint64

	pods    []*pod
	stopped bool
	seq     int

	// resident measurement pods, one per class.
	resident [NumClasses]*residentPod

	// Statistics (always counted; mirrored to metrics when observed).
	Launched  [NumClasses]uint64
	Rejected  uint64
	Completed uint64
	OOMKilled uint64
	Running   int

	// TouchHist observes per-2MB-slice first-touch fault latency by
	// class — the per-manager tail the datacenter study tabulates.
	// MmapHist observes per-mmap system-call cost by class.
	TouchHist [NumClasses]metrics.Histogram
	MmapHist  [NumClasses]metrics.Histogram

	m struct {
		launched  *metrics.Counter
		rejected  *metrics.Counter
		completed *metrics.Counter
		oomKilled *metrics.Counter
		touch     *metrics.Histogram
	}
}

// residentPod is a long-lived measurement tenant that repeatedly remaps
// and re-touches its working set so the touch histograms keep sampling
// the node's current allocator state.
type residentPod struct {
	class  Class
	proc   *kernel.Process
	addr   pgtable.VirtAddr
	mapped uint64
	ticker *sim.Ticker
}

// New creates an agent for the node. hp may be nil (ClassHPMMAP pods
// are then dropped at launch, draws intact). seed is the
// datacenter-dedicated stream seed (DeriveSeed of the cell seed).
func New(cfg Config, node *kernel.Node, hp Launcher, seed uint64) *Agent {
	if cfg.PodMeanLifetime <= 0 {
		cfg.PodMeanLifetime = DefaultConfig().PodMeanLifetime
	}
	if cfg.PodBytes == 0 {
		cfg.PodBytes = DefaultConfig().PodBytes
	}
	if cfg.ResidentPeriod <= 0 {
		if cfg.ChurnMeanPeriod > 0 {
			cfg.ResidentPeriod = cfg.ChurnMeanPeriod
		} else {
			cfg.ResidentPeriod = 550_000_000
		}
	}
	a := &Agent{
		cfg:       cfg,
		node:      node,
		eng:       node.Engine(),
		hp:        hp,
		rnd:       sim.NewRand(seed),
		allocated: make([]uint64, node.Config().NumaZones),
	}
	// Fixed split order — see the determinism contract above.
	a.churnRand = a.rnd.Split()
	a.specRand = a.rnd.Split()
	a.lifeRand = a.rnd.Split()
	a.residentRand = a.rnd.Split()
	a.budget = cfg.ZoneBudgetBytes
	if a.budget == 0 {
		a.budget = node.Config().MemoryBytes / uint64(node.Config().NumaZones) / 4
	}
	return a
}

// Observe registers the agent's metric handles. Nil-safe; call before
// Start so the first pods are counted.
func (a *Agent) Observe(reg *metrics.Registry) {
	if a == nil {
		return
	}
	a.m.launched = reg.Counter(metrics.DatacenterPodsLaunchedTotal)
	a.m.rejected = reg.Counter(metrics.DatacenterPodsRejectedTotal)
	a.m.completed = reg.Counter(metrics.DatacenterPodsCompletedTotal)
	a.m.oomKilled = reg.Counter(metrics.DatacenterPodsOOMKilledTotal)
	a.m.touch = reg.Histogram(metrics.DatacenterPodTouchCycles)
	reg.GaugeFunc(metrics.DatacenterPodsRunning, func() float64 { return float64(a.Running) })
	reg.GaugeFunc(metrics.DatacenterAdmittedBytes, func() float64 {
		var t uint64
		for _, b := range a.allocated {
			t += b
		}
		return float64(t)
	})
}

// Start attaches the churn loop and the resident measurement pods.
func (a *Agent) Start() {
	if a.cfg.ResidentBytes > 0 {
		for c := Class(0); c < NumClasses; c++ {
			a.startResident(c)
		}
	}
	if a.cfg.ChurnMeanPeriod > 0 {
		var step func()
		step = func() {
			if a.stopped {
				return
			}
			a.launchPod()
			if !a.stopped {
				a.eng.Schedule(a.interval(), step)
			}
		}
		a.eng.Schedule(a.interval(), step)
	}
}

// Stop halts churn and tears down every live pod (plain Exit: the run
// is ending and nothing needs the recycled structs).
func (a *Agent) Stop() {
	if a == nil || a.stopped {
		return
	}
	a.stopped = true
	for _, r := range a.resident {
		if r == nil {
			continue
		}
		if r.ticker != nil {
			r.ticker.Stop()
		}
		if r.proc != nil && !r.proc.Exited {
			a.node.Exit(r.proc)
		}
	}
	for _, pd := range a.pods {
		if pd.done {
			continue
		}
		pd.done = true
		a.release(pd)
		if !pd.p.Exited {
			a.node.Exit(pd.p)
		}
	}
	a.pods = nil
	a.Running = 0
}

func (a *Agent) interval() sim.Cycles {
	d := sim.Cycles(a.churnRand.Exponential(float64(a.cfg.ChurnMeanPeriod)))
	if d < 1 {
		d = 1
	}
	return d
}

// admit bin-packs a request against the per-zone budgets: the zone with
// the most free budget wins, ties to the lowest index — a deterministic
// worst-fit that spreads tenants like the kubelet's NUMA-aware
// hugepages admission. Returns the zone, or -1 when no zone fits.
func (a *Agent) admit(bytes uint64) int {
	best, bestFree := -1, uint64(0)
	for z := range a.allocated {
		free := uint64(0)
		if a.allocated[z] < a.budget {
			free = a.budget - a.allocated[z]
		}
		if free >= bytes && free > bestFree {
			best, bestFree = z, free
		}
	}
	if best >= 0 {
		a.allocated[best] += bytes
	}
	return best
}

func (a *Agent) release(pd *pod) {
	a.allocated[pd.zone] -= pd.bytes
}

// launchPod draws one pod spec, admits it, and runs its lifecycle. All
// spec draws happen before the admission branch so a rejected pod
// consumes exactly the draws an admitted one would.
func (a *Agent) launchPod() {
	class := Class(a.specRand.Intn(int(NumClasses)))
	bytes := uint64(a.specRand.Jitter(sim.Cycles(a.cfg.PodBytes), 0.5))
	bytes = roundUp2M(bytes)
	if bytes < 16<<20 {
		bytes = 16 << 20
	}
	lifetime := sim.Cycles(a.lifeRand.Exponential(float64(a.cfg.PodMeanLifetime)))
	if lifetime < 1 {
		lifetime = 1
	}

	zone := a.admit(bytes)
	if zone < 0 {
		a.Rejected++
		a.m.rejected.Inc()
		return
	}
	a.seq++
	p, err := a.spawn(class, fmt.Sprintf("pod-%s.%d", class, a.seq), zone)
	if err != nil || p == nil {
		// Launch failure (no HPMMAP module, pool exhausted): the
		// request was admitted but never became a tenant.
		a.release(&pod{zone: zone, bytes: bytes})
		a.Rejected++
		a.m.rejected.Inc()
		return
	}
	pd := &pod{p: p, class: class, zone: zone, bytes: bytes}
	a.pods = append(a.pods, pd)
	a.Launched[class]++
	a.Running++
	a.m.launched.Inc()

	addr, cost, err := a.node.Mmap(p, bytes, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	if err == nil {
		a.MmapHist[class].Observe(uint64(cost))
		a.touchSlices(p, class, addr, bytes)
	}
	a.eng.Schedule(lifetime, func() { a.endPod(pd) })
}

// spawn creates the pod process on the class's manager path.
func (a *Agent) spawn(class Class, name string, zone int) (*kernel.Process, error) {
	switch class {
	case ClassTHP:
		return a.node.NewProcess(name, true, zone)
	case ClassHugeTLB:
		return a.node.NewProcess(name, false, zone)
	case ClassHPMMAP:
		if a.hp == nil {
			return nil, nil
		}
		return a.hp.Launch(name, zone)
	}
	return nil, fmt.Errorf("datacenter: unknown class %d", class)
}

// touchSlices first-touches [addr, addr+bytes) in 2MB slices, observing
// each slice's fault service time into the class tail histogram. An
// error (the OOM killer took the pod mid-touch) ends the walk.
func (a *Agent) touchSlices(p *kernel.Process, class Class, addr pgtable.VirtAddr, bytes uint64) {
	for off := uint64(0); off < bytes; off += mem.LargePageSize {
		n := uint64(mem.LargePageSize)
		if off+n > bytes {
			n = bytes - off
		}
		st, err := a.node.TouchRange(p, addr+pgtable.VirtAddr(off), n)
		if err != nil {
			return
		}
		c := uint64(st.Total())
		a.TouchHist[class].Observe(c)
		a.m.touch.Observe(c)
	}
}

// endPod completes a pod's lifecycle: release its admission, then
// recycle the process through the lifecycle fast path. A pod the OOM
// killer already took counts as OOMKilled instead of Completed.
func (a *Agent) endPod(pd *pod) {
	if pd.done || a.stopped {
		return
	}
	pd.done = true
	a.release(pd)
	a.Running--
	if pd.p.Exited {
		a.OOMKilled++
		a.m.oomKilled.Inc()
		return
	}
	a.node.ExitReap(pd.p)
	a.Completed++
	a.m.completed.Inc()
}

// startResident launches one class's long-lived measurement pod and its
// remeasurement ticker. A pod lost to the OOM killer is relaunched on
// the next tick (the agent restarts failed tenants, kubelet-style).
func (a *Agent) startResident(class Class) {
	r := &residentPod{class: class}
	a.resident[class] = r
	// Stagger the classes' phases deterministically so their
	// measurement windows interleave rather than align.
	offset := a.cfg.ResidentPeriod * sim.Cycles(class+1) / sim.Cycles(NumClasses+1)
	a.eng.Schedule(offset+1, func() {
		a.remeasure(r)
		r.ticker = a.eng.NewTicker(a.cfg.ResidentPeriod, func() { a.remeasure(r) })
	})
}

// remeasure runs one measurement cycle for a resident pod: drop the old
// region, map a fresh one, and fault it in slice by slice under
// whatever pressure the node is currently under.
func (a *Agent) remeasure(r *residentPod) {
	if a.stopped {
		return
	}
	if r.proc != nil && r.proc.Exited {
		// The OOM killer took the measurement pod: relaunch it.
		r.proc, r.mapped = nil, 0
	}
	if r.proc == nil {
		a.seq++
		p, err := a.spawn(r.class, fmt.Sprintf("pod-resident-%s.%d", r.class, a.seq), a.residentRand.Intn(len(a.allocated)))
		if err != nil || p == nil {
			return
		}
		r.proc = p
	}
	if r.mapped > 0 {
		if _, err := a.node.Munmap(r.proc, r.addr, r.mapped); err != nil {
			return
		}
		r.mapped = 0
	}
	bytes := roundUp2M(a.cfg.ResidentBytes)
	if bytes < 16<<20 {
		bytes = 16 << 20
	}
	addr, cost, err := a.node.Mmap(r.proc, bytes, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	if err != nil {
		return
	}
	a.MmapHist[r.class].Observe(uint64(cost))
	r.addr, r.mapped = addr, bytes
	a.touchSlices(r.proc, r.class, addr, bytes)
}

// LaunchedTotal sums admitted pods across classes.
func (a *Agent) LaunchedTotal() uint64 {
	var t uint64
	for _, v := range a.Launched {
		t += v
	}
	return t
}

func roundUp2M(v uint64) uint64 {
	return (v + mem.LargePageSize - 1) / mem.LargePageSize * mem.LargePageSize
}
