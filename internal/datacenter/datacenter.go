// Package datacenter is a kubelet-style orchestration agent for the
// simulated node: it restates the paper's isolation claim at
// cluster-orchestration scale (ROADMAP item 2). The agent pre-reserves
// per-NUMA-zone hugepage budgets, admits short-lived "pods" — mixed
// THP / HugeTLBfs / HPMMAP tenants with memory requests — by
// deterministic bin-packing against those budgets, and drives pod
// lifecycle churn at a configurable rate. Pods allocate and touch real
// simulated memory through the ordinary manager paths, so their fault
// tails and their interference with a resident HPC job emerge from
// actual allocator/reclaim state, exactly like every other workload in
// this repository.
//
// Determinism contract (mirrors internal/chaos): every draw comes from
// a datacenter-dedicated SplitMix64 stream derived from the cell seed
// under a distinct tag — never from the workload PRNG — so attaching an
// agent perturbs the machine but not the workload's own random
// choices, and a given (seed, Config) produces a byte-identical pod
// schedule at any runner worker count. Each concern (churn timing, pod
// specs, lifetimes, resident measurement) owns a Split substream carved
// in a fixed order, and a rejected pod consumes exactly the same draws
// as an admitted one, so admission pressure never shifts later specs.
//
// Pod teardown uses the kernel's lifecycle fast path (ExitReap): a pod
// that has reached its scheduled end is quiescent by construction — it
// has no tasks and no pending events of its own — which is precisely
// the reuse contract of DESIGN.md §11.
package datacenter

import (
	"fmt"

	"hpmmap/internal/invariant"
	"hpmmap/internal/kernel"
	"hpmmap/internal/mem"
	"hpmmap/internal/metrics"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// Class is the memory-manager tenancy of a pod.
type Class int

// Tenant classes, in draw order.
const (
	// ClassTHP pods run as commodity processes: the mixed-tenancy
	// manager routes them to transparent huge pages.
	ClassTHP Class = iota
	// ClassHugeTLB pods run as non-commodity Linux processes backed by
	// the pre-reserved hugetlbfs pools.
	ClassHugeTLB
	// ClassHPMMAP pods are launched through the HPMMAP registration
	// tool and live entirely on the offlined pools.
	ClassHPMMAP
	// NumClasses counts the tenant classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassTHP:
		return "thp"
	case ClassHugeTLB:
		return "hugetlbfs"
	case ClassHPMMAP:
		return "hpmmap"
	}
	return "?"
}

// dcTag separates the datacenter stream from every workload and chaos
// stream derived from the same cell seed ("DCTR\n" | stream version 1).
const dcTag = 0x444354520a000001

// DeriveSeed maps a cell seed onto the datacenter-dedicated stream seed
// via the SplitMix64 finalizer, exactly as chaos.DeriveSeed does under
// its own tag.
func DeriveSeed(cellSeed uint64) uint64 {
	state := cellSeed ^ dcTag
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config shapes the pod churn the agent drives.
type Config struct {
	// ChurnMeanPeriod is the mean inter-arrival of pod launches, in
	// cycles. Zero disables churn entirely (Start attaches only the
	// resident measurement pods).
	ChurnMeanPeriod sim.Cycles

	// PodMeanLifetime is the mean pod lifetime, drawn exponentially.
	PodMeanLifetime sim.Cycles

	// PodBytes is the nominal pod memory request; individual pods
	// jitter ±50% around it and round up to 2MB.
	PodBytes uint64

	// ZoneBudgetBytes is the per-NUMA-zone hugepage budget the agent
	// pre-reserves for admission (the kubelet's allocatable hugepages).
	// Zero derives a quarter of each zone's physical memory.
	ZoneBudgetBytes uint64

	// ResidentBytes is the working set of each class's long-lived
	// measurement pod. Zero disables the resident pods.
	ResidentBytes uint64

	// ResidentPeriod is the interval at which each resident pod
	// remeasures: munmap its region, mmap it again, and touch it in 2MB
	// slices, observing per-slice fault latency. Zero selects
	// ChurnMeanPeriod (or a quarter second when churn is off too).
	ResidentPeriod sim.Cycles

	// Failure shapes the failure domain: requests-vs-limits overcommit,
	// priority classes, the pressure-driven eviction engine, and
	// crash-loop restart backoff (failure.go). The zero value disables
	// all of it — requests equal limits and the agent behaves exactly as
	// it did before the failure domain existed.
	Failure FailureConfig
}

// DefaultConfig returns the study's standard churn shape: pod arrivals
// every ~5ms of 2.2GHz simulated time, ~30ms lifetimes, 64MB requests,
// and 32MB resident measurement pods.
func DefaultConfig() Config {
	return Config{
		ChurnMeanPeriod: 11_000_000,
		PodMeanLifetime: 66_000_000,
		PodBytes:        64 << 20,
		ResidentBytes:   32 << 20,
	}
}

// Launcher launches an HPMMAP-registered process (implemented by
// core.Manager). Nil means ClassHPMMAP pods are skipped at draw time —
// their draws are still consumed.
type Launcher interface {
	Launch(name string, preferredZone int) (*kernel.Process, error)
}

// pod is one live tenant.
type pod struct {
	p     *kernel.Process
	class Class
	zone  int
	// request is the admission charge (the pod's memory request); bytes
	// is its limit — the usage it actually maps and touches. With the
	// failure domain off the two are equal.
	request uint64
	bytes   uint64
	prio    Priority
	// lifetime and started let eviction/zone-failure displacement
	// reschedule the pod for its remaining life, and feed the
	// quiescent-uptime backoff reset.
	lifetime sim.Cycles
	started  sim.Cycles
	// restarts counts consecutive involuntary deaths (evictions, zone
	// failures, failed re-admissions) driving the crash-loop backoff.
	restarts int
	done     bool
}

// Agent is the kubelet-style node agent.
type Agent struct {
	cfg  Config
	node *kernel.Node
	eng  *sim.Engine
	hp   Launcher
	rnd  *sim.Rand

	// Per-concern substreams, carved in a fixed order at New. prioRand
	// and backoffRand postdate the original four and are carved after
	// them, so enabling the failure domain never shifts the churn, spec,
	// lifetime or resident draw sequences.
	churnRand, specRand, lifeRand, residentRand *sim.Rand
	prioRand, backoffRand                       *sim.Rand

	// budget and allocated track per-zone admission bookkeeping
	// (requests). Actual usage — which grows from request toward limit
	// over a pod's lifetime and can overrun the budget under overcommit,
	// the eviction signal — is computed on demand from the live pods
	// (podUsage/zoneUsage in failure.go), never maintained incrementally.
	budget    uint64
	allocated []uint64

	// zoneDown marks zones lost to a node-failure chaos event; admission
	// skips them until recovery.
	zoneDown []bool

	pods        []*pod
	stopped     bool
	seq         int
	evictTicker *sim.Ticker

	// resident measurement pods, one per class.
	resident [NumClasses]*residentPod

	// Statistics (always counted; mirrored to metrics when observed).
	Launched  [NumClasses]uint64
	Rejected  uint64
	Completed uint64
	OOMKilled uint64
	Running   int

	// Failure-domain statistics (failure.go).
	Evicted        [NumPriorities]uint64
	Restarts       [NumPriorities]uint64
	Rescheduled    uint64
	EvictionPasses uint64
	ZoneFailures   uint64
	// BackoffHist observes every crash-loop restart delay, in cycles.
	BackoffHist metrics.Histogram

	// TouchHist observes per-2MB-slice first-touch fault latency by
	// class — the per-manager tail the datacenter study tabulates.
	// MmapHist observes per-mmap system-call cost by class.
	TouchHist [NumClasses]metrics.Histogram
	MmapHist  [NumClasses]metrics.Histogram

	m struct {
		launched    *metrics.Counter
		rejected    *metrics.Counter
		completed   *metrics.Counter
		oomKilled   *metrics.Counter
		touch       *metrics.Histogram
		evicted     *metrics.Counter
		restarts    *metrics.Counter
		rescheduled *metrics.Counter
		evictPasses *metrics.Counter
		backoff     *metrics.Histogram
	}
}

// residentPod is a long-lived measurement tenant that repeatedly remaps
// and re-touches its working set so the touch histograms keep sampling
// the node's current allocator state.
type residentPod struct {
	class  Class
	proc   *kernel.Process
	addr   pgtable.VirtAddr
	mapped uint64
	ticker *sim.Ticker
}

// New creates an agent for the node. hp may be nil (ClassHPMMAP pods
// are then dropped at launch, draws intact). seed is the
// datacenter-dedicated stream seed (DeriveSeed of the cell seed).
func New(cfg Config, node *kernel.Node, hp Launcher, seed uint64) *Agent {
	if cfg.PodMeanLifetime <= 0 {
		cfg.PodMeanLifetime = DefaultConfig().PodMeanLifetime
	}
	if cfg.PodBytes == 0 {
		cfg.PodBytes = DefaultConfig().PodBytes
	}
	if cfg.ResidentPeriod <= 0 {
		if cfg.ChurnMeanPeriod > 0 {
			cfg.ResidentPeriod = cfg.ChurnMeanPeriod
		} else {
			cfg.ResidentPeriod = 550_000_000
		}
	}
	cfg.Failure = cfg.Failure.withDefaults(cfg)
	a := &Agent{
		cfg:       cfg,
		node:      node,
		eng:       node.Engine(),
		hp:        hp,
		rnd:       sim.NewRand(seed),
		allocated: make([]uint64, node.Config().NumaZones),
		zoneDown:  make([]bool, node.Config().NumaZones),
	}
	// Fixed split order — see the determinism contract above.
	a.churnRand = a.rnd.Split()
	a.specRand = a.rnd.Split()
	a.lifeRand = a.rnd.Split()
	a.residentRand = a.rnd.Split()
	a.prioRand = a.rnd.Split()
	a.backoffRand = a.rnd.Split()
	a.budget = cfg.ZoneBudgetBytes
	if a.budget == 0 {
		a.budget = node.Config().MemoryBytes / uint64(node.Config().NumaZones) / 4
	}
	return a
}

// Observe registers the agent's metric handles. Nil-safe; call before
// Start so the first pods are counted.
func (a *Agent) Observe(reg *metrics.Registry) {
	if a == nil {
		return
	}
	a.m.launched = reg.Counter(metrics.DatacenterPodsLaunchedTotal)
	a.m.rejected = reg.Counter(metrics.DatacenterPodsRejectedTotal)
	a.m.completed = reg.Counter(metrics.DatacenterPodsCompletedTotal)
	a.m.oomKilled = reg.Counter(metrics.DatacenterPodsOOMKilledTotal)
	a.m.touch = reg.Histogram(metrics.DatacenterPodTouchCycles)
	a.m.evicted = reg.Counter(metrics.DatacenterPodsEvictedTotal)
	a.m.restarts = reg.Counter(metrics.DatacenterPodsRestartedTotal)
	a.m.rescheduled = reg.Counter(metrics.DatacenterPodsRescheduledTotal)
	a.m.evictPasses = reg.Counter(metrics.DatacenterEvictionPassesTotal)
	a.m.backoff = reg.Histogram(metrics.DatacenterPodBackoffCycles)
	reg.GaugeFunc(metrics.DatacenterPodsRunning, func() float64 { return float64(a.Running) })
	reg.GaugeFunc(metrics.DatacenterAdmittedBytes, func() float64 {
		var t uint64
		for _, b := range a.allocated {
			t += b
		}
		return float64(t)
	})
}

// Start attaches the churn loop, the resident measurement pods, and —
// when the failure domain is enabled — the eviction manager.
func (a *Agent) Start() {
	a.startEvictor()
	if a.cfg.ResidentBytes > 0 {
		for c := Class(0); c < NumClasses; c++ {
			a.startResident(c)
		}
	}
	if a.cfg.ChurnMeanPeriod > 0 {
		var step func()
		step = func() {
			if a.stopped {
				return
			}
			a.launchPod()
			if !a.stopped {
				a.eng.Schedule(a.interval(), step)
			}
		}
		a.eng.Schedule(a.interval(), step)
	}
}

// Stop halts churn and tears down every live pod (plain Exit: the run
// is ending and nothing needs the recycled structs).
func (a *Agent) Stop() {
	if a == nil || a.stopped {
		return
	}
	a.stopped = true
	if a.evictTicker != nil {
		a.evictTicker.Stop()
	}
	for _, r := range a.resident {
		if r == nil {
			continue
		}
		if r.ticker != nil {
			r.ticker.Stop()
		}
		if r.proc != nil && !r.proc.Exited {
			a.node.Exit(r.proc)
		}
	}
	for _, pd := range a.pods {
		if pd.done {
			continue
		}
		pd.done = true
		a.release(pd)
		if !pd.p.Exited {
			a.node.Exit(pd.p)
		}
	}
	a.pods = nil
	a.Running = 0
}

func (a *Agent) interval() sim.Cycles {
	d := sim.Cycles(a.churnRand.Exponential(float64(a.cfg.ChurnMeanPeriod)))
	if d < 1 {
		d = 1
	}
	return d
}

// admit bin-packs a request against the per-zone budgets: the zone with
// the most free budget wins, ties to the lowest index — a deterministic
// worst-fit that spreads tenants like the kubelet's NUMA-aware
// hugepages admission. Returns the zone, or -1 when no zone fits.
// Admission checks requests; usage (tracked separately, up to the
// pod's limit) is what the eviction engine watches.
func (a *Agent) admit(request uint64) int {
	return a.admitExcluding(request, -1)
}

// admitExcluding is admit with one zone ruled out (the zone a
// displaced pod is fleeing). Down zones never admit.
func (a *Agent) admitExcluding(request uint64, exclude int) int {
	best, bestFree := -1, uint64(0)
	for z := range a.allocated {
		if z == exclude || a.zoneDown[z] {
			continue
		}
		free := uint64(0)
		if a.allocated[z] < a.budget {
			free = a.budget - a.allocated[z]
		}
		if free >= request && free > bestFree {
			best, bestFree = z, free
		}
	}
	if best >= 0 {
		a.allocated[best] += request
	}
	return best
}

// release returns a pod's admission charge to its zone, auditing the
// books on the way out: an underflow here means a pod was
// double-released or its charge was leaked across an eviction.
func (a *Agent) release(pd *pod) {
	if a.allocated[pd.zone] < pd.request {
		invariant.Failf("dc_admission_conservation", "datacenter",
			"zone %d releasing request %d with only %d allocated",
			pd.zone, pd.request, a.allocated[pd.zone])
	}
	a.allocated[pd.zone] -= pd.request
}

// launchPod draws one pod spec, admits it, and runs its lifecycle. All
// spec draws happen before the admission branch so a rejected pod
// consumes exactly the draws an admitted one would. The priority draw
// comes from its own substream (prioRand), so it never shifts the
// class/size/lifetime sequences the original studies pinned.
func (a *Agent) launchPod() {
	class := Class(a.specRand.Intn(int(NumClasses)))
	bytes := uint64(a.specRand.Jitter(sim.Cycles(a.cfg.PodBytes), 0.5))
	bytes = roundUp2M(bytes)
	if bytes < 16<<20 {
		bytes = 16 << 20
	}
	lifetime := sim.Cycles(a.lifeRand.Exponential(float64(a.cfg.PodMeanLifetime)))
	if lifetime < 1 {
		lifetime = 1
	}
	prio := a.drawPriority()
	request, limit := a.shapeRequest(class, prio, bytes)

	zone := a.admit(request)
	if zone < 0 {
		a.Rejected++
		a.m.rejected.Inc()
		return
	}
	a.startPod(class, prio, request, limit, lifetime, 0, zone, false)
}

// startPod spawns the pod process, maps and touches its limit, and
// schedules its natural end. relaunch marks crash-loop restarts and
// zone-failure reschedules, which are not new launches. The zone must
// already hold the admission charge; a spawn failure returns it.
// Returns the live pod, or nil.
func (a *Agent) startPod(class Class, prio Priority, request, limit uint64, lifetime sim.Cycles, restarts, zone int, relaunch bool) *pod {
	a.seq++
	p, err := a.spawn(class, fmt.Sprintf("pod-%s.%d", class, a.seq), zone)
	if err != nil || p == nil {
		// Launch failure (no HPMMAP module, pool exhausted): the
		// request was admitted but never became a tenant.
		a.release(&pod{zone: zone, request: request, bytes: limit})
		a.Rejected++
		a.m.rejected.Inc()
		return nil
	}
	pd := &pod{p: p, class: class, zone: zone, request: request, bytes: limit,
		prio: prio, lifetime: lifetime, started: a.eng.Now(), restarts: restarts}
	a.pods = append(a.pods, pd)
	a.Running++
	if !relaunch {
		a.Launched[class]++
		a.m.launched.Inc()
	}

	addr, cost, err := a.node.Mmap(p, limit, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	if err == nil {
		a.MmapHist[class].Observe(uint64(cost))
		a.touchSlices(p, class, addr, limit)
	}
	a.eng.Schedule(lifetime, func() { a.endPod(pd) })
	return pd
}

// spawn creates the pod process on the class's manager path.
func (a *Agent) spawn(class Class, name string, zone int) (*kernel.Process, error) {
	switch class {
	case ClassTHP:
		return a.node.NewProcess(name, true, zone)
	case ClassHugeTLB:
		return a.node.NewProcess(name, false, zone)
	case ClassHPMMAP:
		if a.hp == nil {
			return nil, nil
		}
		return a.hp.Launch(name, zone)
	}
	return nil, fmt.Errorf("datacenter: unknown class %d", class)
}

// touchSlices first-touches [addr, addr+bytes) in 2MB slices, observing
// each slice's fault service time into the class tail histogram. An
// error (the OOM killer took the pod mid-touch) ends the walk.
func (a *Agent) touchSlices(p *kernel.Process, class Class, addr pgtable.VirtAddr, bytes uint64) {
	for off := uint64(0); off < bytes; off += mem.LargePageSize {
		n := uint64(mem.LargePageSize)
		if off+n > bytes {
			n = bytes - off
		}
		st, err := a.node.TouchRange(p, addr+pgtable.VirtAddr(off), n)
		if err != nil {
			return
		}
		c := uint64(st.Total())
		a.TouchHist[class].Observe(c)
		a.m.touch.Observe(c)
	}
}

// endPod completes a pod's lifecycle: release its admission, then
// recycle the process through the lifecycle fast path. A pod the OOM
// killer already took counts as OOMKilled instead of Completed.
func (a *Agent) endPod(pd *pod) {
	if pd.done || a.stopped {
		return
	}
	pd.done = true
	a.release(pd)
	a.Running--
	if pd.p.Exited {
		a.OOMKilled++
		a.m.oomKilled.Inc()
		return
	}
	a.node.ExitReap(pd.p)
	a.Completed++
	a.m.completed.Inc()
}

// startResident launches one class's long-lived measurement pod and its
// remeasurement ticker. A pod lost to the OOM killer is relaunched on
// the next tick (the agent restarts failed tenants, kubelet-style).
func (a *Agent) startResident(class Class) {
	r := &residentPod{class: class}
	a.resident[class] = r
	// Stagger the classes' phases deterministically so their
	// measurement windows interleave rather than align.
	offset := a.cfg.ResidentPeriod * sim.Cycles(class+1) / sim.Cycles(NumClasses+1)
	a.eng.Schedule(offset+1, func() {
		a.remeasure(r)
		r.ticker = a.eng.NewTicker(a.cfg.ResidentPeriod, func() { a.remeasure(r) })
	})
}

// remeasure runs one measurement cycle for a resident pod: drop the old
// region, map a fresh one, and fault it in slice by slice under
// whatever pressure the node is currently under.
func (a *Agent) remeasure(r *residentPod) {
	if a.stopped {
		return
	}
	if r.proc != nil && r.proc.Exited {
		// The OOM killer took the measurement pod: relaunch it.
		r.proc, r.mapped = nil, 0
	}
	if r.proc == nil {
		a.seq++
		p, err := a.spawn(r.class, fmt.Sprintf("pod-resident-%s.%d", r.class, a.seq), a.residentRand.Intn(len(a.allocated)))
		if err != nil || p == nil {
			return
		}
		r.proc = p
	}
	if r.mapped > 0 {
		if _, err := a.node.Munmap(r.proc, r.addr, r.mapped); err != nil {
			return
		}
		r.mapped = 0
	}
	bytes := roundUp2M(a.cfg.ResidentBytes)
	if bytes < 16<<20 {
		bytes = 16 << 20
	}
	addr, cost, err := a.node.Mmap(r.proc, bytes, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	if err != nil {
		return
	}
	a.MmapHist[r.class].Observe(uint64(cost))
	r.addr, r.mapped = addr, bytes
	a.touchSlices(r.proc, r.class, addr, bytes)
}

// LaunchedTotal sums admitted pods across classes.
func (a *Agent) LaunchedTotal() uint64 {
	var t uint64
	for _, v := range a.Launched {
		t += v
	}
	return t
}

func roundUp2M(v uint64) uint64 {
	return (v + mem.LargePageSize - 1) / mem.LargePageSize * mem.LargePageSize
}
