// Package hugetlb models HugeTLBfs: per-NUMA pools of 2MB pages reserved
// at boot, outside the reach of the default page allocator. The pool
// guarantees large-page availability to its users while simultaneously
// starving the rest of the system of the reserved memory — the mechanism
// behind the paper's Figure 3 and Figure 5 results.
package hugetlb

import (
	"fmt"

	"hpmmap/internal/invariant"
	"hpmmap/internal/mem"
)

// Pools is the set of per-zone reserved 2MB page pools.
type Pools struct {
	zones []pool

	// SlabBytes is the granularity at which a hugetlb-backed mapping is
	// materialized per recorded fault. Each 2MB page faults individually,
	// as hugetlbfs's fault handler works.
	SlabBytes uint64
}

type pool struct {
	zone  int
	pages []mem.PFN // free 2MB pages (LIFO)
	total int
}

// Reserve carves totalBytes of 2MB pages out of the node's zones, split
// evenly — the boot-time "hugepages=" reservation. The frames come out of
// the buddy allocator and never return while the pool exists.
func Reserve(node *mem.NodeMemory, totalBytes uint64) (*Pools, error) {
	per := totalBytes / uint64(len(node.Zones))
	per -= per % mem.LargePageSize
	p := &Pools{SlabBytes: mem.LargePageSize}
	for _, z := range node.Zones {
		pl := pool{zone: z.ID}
		want := per / mem.LargePageSize
		for i := uint64(0); i < want; i++ {
			pfn, ok := z.AllocPages(mem.LargePageOrder)
			if !ok {
				return nil, fmt.Errorf("hugetlb: zone %d exhausted after %d of %d pages", z.ID, i, want)
			}
			pl.pages = append(pl.pages, pfn)
		}
		pl.total = len(pl.pages)
		p.zones = append(p.zones, pl)
	}
	return p, nil
}

// TotalPages returns the reserved page count across zones.
func (p *Pools) TotalPages() int {
	t := 0
	for i := range p.zones {
		t += p.zones[i].total
	}
	return t
}

// FreePages returns the free pool pages in the zone.
func (p *Pools) FreePages(zone int) int {
	if zone < 0 || zone >= len(p.zones) {
		return 0
	}
	return len(p.zones[zone].pages)
}

// FreePagesTotal returns free pool pages across all zones.
func (p *Pools) FreePagesTotal() int {
	t := 0
	for i := range p.zones {
		t += len(p.zones[i].pages)
	}
	return t
}

// Alloc2M takes one 2MB page, preferring the given zone and falling back
// to others. The second result reports the zone the page came from, so
// callers can account for cross-zone (remote NUMA) placement.
func (p *Pools) Alloc2M(zone int) (mem.PFN, int, error) {
	order := make([]int, 0, len(p.zones))
	if zone >= 0 && zone < len(p.zones) {
		order = append(order, zone)
	}
	for i := range p.zones {
		if i != zone {
			order = append(order, i)
		}
	}
	for _, zi := range order {
		pl := &p.zones[zi]
		if n := len(pl.pages); n > 0 {
			pfn := pl.pages[n-1]
			pl.pages = pl.pages[:n-1]
			return pfn, zi, nil
		}
	}
	return 0, 0, fmt.Errorf("hugetlb: pools exhausted")
}

// Free2M returns a page to its zone's pool.
func (p *Pools) Free2M(pfn mem.PFN, zone int) {
	if zone < 0 || zone >= len(p.zones) {
		// Simulated-state violation: a page is coming back tagged with a
		// zone this pool set never had.
		invariant.Failf("pool_bad_zone", "hugetlb",
			"Free2M(pfn %d) into zone %d of %d", pfn, zone, len(p.zones))
	}
	pl := &p.zones[zone]
	if len(pl.pages) >= pl.total {
		// Simulated-state violation: more pages returned than the pool was
		// reserved with — a double free or cross-pool free.
		invariant.Failf("pool_overflow", "hugetlb",
			"Free2M(pfn %d): zone %d pool already holds all %d reserved pages",
			pfn, zone, pl.total)
	}
	pl.pages = append(pl.pages, pfn)
}

// SlabPages returns how many 2MB pages one heap-extension slab holds.
func (p *Pools) SlabPages() uint64 { return p.SlabBytes / mem.LargePageSize }
