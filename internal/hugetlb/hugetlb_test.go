package hugetlb

import (
	"testing"

	"hpmmap/internal/mem"
)

func TestReserveSplitsEvenly(t *testing.T) {
	node := mem.NewNodeMemory(2, 4<<30)
	p, err := Reserve(node, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalPages() != 1024 {
		t.Fatalf("reserved %d pages, want 1024", p.TotalPages())
	}
	if p.FreePages(0) != 512 || p.FreePages(1) != 512 {
		t.Fatalf("per-zone %d/%d, want 512/512", p.FreePages(0), p.FreePages(1))
	}
	// The reservation visibly removes memory from the buddy.
	if node.FreePages() != (2<<30)/mem.PageSize {
		t.Fatalf("node free pages %d after reservation", node.FreePages())
	}
}

func TestReserveTooMuchFails(t *testing.T) {
	node := mem.NewNodeMemory(2, 1<<30)
	if _, err := Reserve(node, 4<<30); err == nil {
		t.Fatal("over-reservation succeeded")
	}
}

func TestAllocPrefersZoneThenFallsBack(t *testing.T) {
	node := mem.NewNodeMemory(2, 4<<30)
	p, err := Reserve(node, 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	perZone := p.FreePages(0)
	// Drain zone 0.
	for i := 0; i < perZone; i++ {
		if _, z, err := p.Alloc2M(0); err != nil || z != 0 {
			t.Fatalf("alloc: %v zone %d", err, z)
		}
	}
	if p.FreePages(0) != 0 {
		t.Fatal("zone 0 not drained")
	}
	// Next allocation falls back to zone 1 and reports it.
	if _, z, err := p.Alloc2M(0); err != nil || z != 1 {
		t.Fatalf("fallback: %v zone %d", err, z)
	}
	if p.FreePages(1) != perZone-1 {
		t.Fatalf("zone 1 free %d", p.FreePages(1))
	}
}

func TestExhaustionError(t *testing.T) {
	node := mem.NewNodeMemory(1, 1<<30)
	p, err := Reserve(node, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	for p.FreePagesTotal() > 0 {
		if _, _, err := p.Alloc2M(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := p.Alloc2M(0); err == nil {
		t.Fatal("alloc on exhausted pools succeeded")
	}
}

func TestFreeRoundTrip(t *testing.T) {
	node := mem.NewNodeMemory(1, 1<<30)
	p, err := Reserve(node, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	pfn, _, err := p.Alloc2M(0)
	if err != nil {
		t.Fatal(err)
	}
	before := p.FreePages(0)
	p.Free2M(pfn, 0)
	if p.FreePages(0) != before+1 {
		t.Fatal("free did not return page")
	}
}

func TestFreeOverflowPanics(t *testing.T) {
	node := mem.NewNodeMemory(1, 1<<30)
	p, err := Reserve(node, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow free did not panic")
		}
	}()
	p.Free2M(12345, 0)
}

func TestSlabGeometry(t *testing.T) {
	node := mem.NewNodeMemory(1, 1<<30)
	p, err := Reserve(node, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlabPages() != 1 {
		t.Fatalf("slab pages %d, want 1 (per-2MB faulting)", p.SlabPages())
	}
}
