package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// metricRegistrationMethods are the metrics.Registry registration entry
// points whose name argument is contract-bound.
var metricRegistrationMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// MetricnameAnalyzer enforces the weakest leg of the three-legged
// observability contract (OBSERVABILITY.md table row <-> names.go
// constant <-> source-tree use) at vet time: every metric registration
// call on a metrics.Registry must pass a constant declared in
// internal/metrics (names.go), never a raw string literal and never a
// constant defined elsewhere. Dynamic names (variables, indexed name
// tables) are left to internal/metrics/contract_test.go, which checks
// the registered set at runtime.
var MetricnameAnalyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require metric registrations to use internal/metrics name constants\n\n" +
		"Registry.Counter/Gauge/Histogram/CounterFunc/GaugeFunc must be\n" +
		"passed a constant from internal/metrics/names.go so the\n" +
		"OBSERVABILITY.md contract stays closed; string literals and\n" +
		"foreign constants are reported.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runMetricname,
}

const metricsPkgPath = modulePath + "/internal/metrics"

func runMetricname(pass *analysis.Pass) (interface{}, error) {
	if !strings.HasPrefix(normalizePkgPath(pass.Pkg.Path()), modulePath) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !metricRegistrationMethods[sel.Sel.Name] || len(call.Args) == 0 {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isRegistryMethod(fn) {
			return
		}
		if isTestFile(pass.Fset, call.Pos()) {
			return
		}
		if bad, what := offendingNameExpr(pass, call.Args[0]); bad != nil {
			if allow.allowed(pass, call.Pos()) {
				return
			}
			pass.Reportf(bad.Pos(),
				"metricname: %s in %s(...) — metric names must be constants from internal/metrics/names.go (add the constant, the OBSERVABILITY.md row, and the instrumentation together; see OBSERVABILITY.md \"How to add a metric\")",
				what, sel.Sel.Name)
		}
	})
	return allow, nil
}

// isRegistryMethod reports whether fn is a method on
// (*metrics.Registry) from this module's metrics package.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return false
	}
	return normalizePkgPath(named.Obj().Pkg().Path()) == metricsPkgPath
}

// offendingNameExpr walks the name-argument expression and returns the
// first sub-expression violating the contract, with a description:
// string literals anywhere, or named constants declared outside
// internal/metrics. Identifiers resolving to metrics-package constants
// and plain variables pass.
func offendingNameExpr(pass *analysis.Pass, e ast.Expr) (ast.Expr, string) {
	var bad ast.Expr
	var what string
	ast.Inspect(e, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.BasicLit:
			if strings.HasPrefix(n.Value, `"`) || strings.HasPrefix(n.Value, "`") {
				bad, what = n, "string literal "+n.Value
			}
			return false
		case *ast.Ident:
			if c, ok := pass.TypesInfo.Uses[n].(*types.Const); ok {
				if c.Pkg() != nil && normalizePkgPath(c.Pkg().Path()) != metricsPkgPath {
					bad, what = n, "constant "+n.Name+" declared outside internal/metrics"
				}
			}
			return false
		case *ast.SelectorExpr:
			if c, ok := pass.TypesInfo.Uses[n.Sel].(*types.Const); ok {
				if c.Pkg() != nil && normalizePkgPath(c.Pkg().Path()) != metricsPkgPath {
					bad, what = n, "constant "+types.ExprString(n)+" declared outside internal/metrics"
				}
				return false
			}
			return true
		}
		return true
	})
	return bad, what
}
