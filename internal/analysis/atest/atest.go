// Package atest is a self-contained golden-testdata harness for the
// detsim analyzers — a minimal, offline stand-in for
// golang.org/x/tools/go/analysis/analysistest (which depends on
// go/packages and a module proxy, neither of which this repository's
// hermetic build environment provides).
//
// Layout and semantics follow analysistest: test packages live under
// testdata/src/<import/path>/, and every line that should produce a
// diagnostic carries a trailing comment of the form
//
//	// want "regexp"           (one or more quoted regexps)
//	// want `regexp`
//
// Run type-checks the package under its testdata import path — so the
// detsim analyzers' package classification (hpmmap/internal/...)
// applies exactly as it does under `go vet -vettool` — runs the
// analyzer and its Requires closure, and fails the test on any
// unexpected diagnostic or unmatched expectation. Imports of other
// testdata packages resolve within testdata/src; standard-library
// imports resolve through the compiler's source importer.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgpath>, applies a, and checks diagnostics
// against // want comments. testdata is the path of the testdata
// directory (usually analysis.TestdataDir(t) == "testdata").
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loadedPkg),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)

	target, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("atest: loading %s: %v", pkgpath, err)
	}

	diags, err := runWithDeps(a, target, ld.fset, make(map[*analysis.Analyzer]interface{}))
	if err != nil {
		t.Fatalf("atest: running %s on %s: %v", a.Name, pkgpath, err)
	}
	checkDiagnostics(t, ld.fset, target.files, diags)
}

// ResolvedDiagnostic is one analyzer diagnostic with its position
// resolved to file and line.
type ResolvedDiagnostic struct {
	File    string
	Line    int
	Message string
}

// Diagnostics loads testdata/src/<pkgpath>, applies a (and its
// Requires closure), and returns the raw diagnostics with positions
// resolved, sorted by (file, line). For analyzers whose diagnostics
// land on lines that cannot carry a // want comment — allowaudit
// reports on the //detsim:allow line itself — the caller asserts on
// the returned slice instead of golden comments.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []ResolvedDiagnostic {
	t.Helper()
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loadedPkg),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)

	target, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("atest: loading %s: %v", pkgpath, err)
	}
	diags, err := runWithDeps(a, target, ld.fset, make(map[*analysis.Analyzer]interface{}))
	if err != nil {
		t.Fatalf("atest: running %s on %s: %v", a.Name, pkgpath, err)
	}
	out := make([]ResolvedDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		out = append(out, ResolvedDiagnostic{File: pos.Filename, Line: pos.Line, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// --- package loading -----------------------------------------------------

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*loadedPkg
	fallback types.Importer
	loading  []string // cycle detection
}

// Import implements types.Importer: testdata packages first, then the
// standard library via the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", path); dirExists(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	for _, active := range l.loading {
		if active == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// --- analyzer execution --------------------------------------------------

// runWithDeps runs a's Requires closure (memoised in results), then a
// itself, returning a's diagnostics.
func runWithDeps(a *analysis.Analyzer, p *loadedPkg, fset *token.FileSet, results map[*analysis.Analyzer]interface{}) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, dep := range a.Requires {
		if _, done := results[dep]; done {
			continue
		}
		// Dependency diagnostics are discarded: only the analyzer under
		// test is being golden-checked.
		if _, err := runWithDeps(dep, p, fset, results); err != nil {
			return nil, fmt.Errorf("dependency %s: %w", dep.Name, err)
		}
	}
	sizes := types.SizesFor("gc", "amd64")
	pass := &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             p.files,
		Pkg:               p.pkg,
		TypesInfo:         p.info,
		TypesSizes:        sizes,
		ResultOf:          results,
		Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return diags, nil
}

// --- expectation checking ------------------------------------------------

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\")|(?:`([^`]*)`)")

// parseExpectations extracts // want comments from the files.
func parseExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var exps []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(text, "want")
				for _, m := range wantRE.FindAllStringSubmatch(body, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					} else {
						// Undo string-literal escaping for the double-quoted form.
						if unq, err := strconv.Unquote(`"` + raw + `"`); err == nil {
							raw = unq
						}
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return exps, nil
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	exps, err := parseExpectations(fset, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, e := range exps {
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}
