package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// hotpathPrefix marks a function as allocation-disciplined: the PR 6
// §10 contract (0 B/op at steady state on the fault/allocation cycle)
// extended from benchmark-time to vet-time. Grammar:
//
//	//detsim:hotpath
//
// as its own line in the function's doc comment.
const hotpathPrefix = "//detsim:hotpath"

// HotpathAnalyzer checks functions annotated //detsim:hotpath for
// structurally-allocating constructs — the ones that took the
// simulator from 1.33 to 5.6 cells/sec to eliminate (DESIGN.md §10)
// and that creep back silently in review:
//
//   - defer (deferred-call record per invocation)
//   - fmt.* calls and string concatenation
//   - map literals, make(map), and range-over-map
//   - function literals in escaping positions (closure allocation)
//   - interface boxing in assignments/returns (non-error types)
//   - append to an escaping slice (field or package variable) unless
//     the same slice is length-truncated (s = s[:0]) in the function —
//     the §10/§11 capacity-reuse discipline
//
// Error paths are exempt: anything inside a return statement that
// returns a non-nil error, or inside panic(...)/invariant.Fail*(...)
// arguments, may allocate — failure is off the hot path by
// definition. Genuine pooled-growth appends (a pool growing its own
// backing array) carry //detsim:allow with the reuse discipline.
var HotpathAnalyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid allocating constructs in //detsim:hotpath functions\n\n" +
		"Annotated hot-path functions (DESIGN.md §10 inventory) must stay\n" +
		"free of defer, fmt, string concatenation, map literals and\n" +
		"iteration, escaping closures, interface boxing, and appends to\n" +
		"escaping slices without the s = s[:0] reuse discipline. Error\n" +
		"paths (error returns, panic/invariant.Fail arguments) are\n" +
		"exempt; see ANALYSIS.md.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runHotpath,
}

// hotFunc is one annotated function: its body extent, the source
// ranges where allocation is forgiven (error paths), and the slices
// whose capacity is provably reused via s = s[:0] truncation.
type hotFunc struct {
	name      string
	body      *ast.BlockStmt
	exempt    []posRange
	truncated map[string]bool // ExprString of length-truncated slice targets
}

type posRange struct{ lo, hi token.Pos }

func runHotpath(pass *analysis.Pass) (interface{}, error) {
	if !strings.HasPrefix(normalizePkgPath(pass.Pkg.Path()), modulePath) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)

	var hot []*hotFunc
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathAnnotated(fd) || isTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			hot = append(hot, prepareHotFunc(pass, fd))
		}
	}
	if len(hot) == 0 {
		return allow, nil
	}

	findHot := func(pos token.Pos) *hotFunc {
		for _, h := range hot {
			if pos >= h.body.Pos() && pos < h.body.End() {
				return h
			}
		}
		return nil
	}

	nodeTypes := []ast.Node{
		(*ast.DeferStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.BinaryExpr)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.CompositeLit)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.FuncLit)(nil),
	}
	ins.WithStack(nodeTypes, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		h := findHot(n.Pos())
		if h == nil || h.exemptAt(n.Pos()) {
			return true
		}
		if msg := hotpathFinding(pass, n, stack, h); msg != "" {
			if !allow.allowed(pass, n.Pos()) {
				pass.Reportf(n.Pos(),
					"hotpath: %s in //detsim:hotpath function %s — the §10 allocation discipline (0 B/op steady state) forbids it on the hot path; restructure, move it off the annotated path, or annotate //detsim:allow <reason> with the reuse discipline",
					msg, h.name)
			}
		}
		return true
	})
	return allow, nil
}

// isHotpathAnnotated reports whether the function's doc comment
// carries a //detsim:hotpath line.
func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathPrefix {
			return true
		}
		if rest, ok := strings.CutPrefix(c.Text, hotpathPrefix); ok &&
			(strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t")) {
			return true
		}
	}
	return false
}

// prepareHotFunc precomputes the error-path exemption ranges and the
// truncated-slice set for one annotated function.
func prepareHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) *hotFunc {
	h := &hotFunc{name: fd.Name.Name, body: fd.Body, truncated: make(map[string]bool)}
	if fd.Recv != nil {
		h.name = funcDisplayName([]ast.Node{fd})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// A return producing an error value is the failure path.
			for _, res := range n.Results {
				if t := pass.TypesInfo.TypeOf(res); t != nil && isErrorType(t) && !isNilIdent(res) {
					h.exempt = append(h.exempt, posRange{n.Pos(), n.End()})
					break
				}
			}
		case *ast.CallExpr:
			if isPanicOrInvariantCall(pass, n) {
				h.exempt = append(h.exempt, posRange{n.Pos(), n.End()})
			}
		case *ast.AssignStmt:
			// s = s[:0] (or s = s[:0:...]): the capacity-reuse idiom —
			// appends to s in this function refill reused backing.
			if n.Tok != token.ASSIGN || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			sl, ok := n.Rhs[0].(*ast.SliceExpr)
			if !ok || sl.Low != nil {
				return true
			}
			if lit, ok := sl.High.(*ast.BasicLit); ok && lit.Value == "0" &&
				types.ExprString(sl.X) == types.ExprString(n.Lhs[0]) {
				h.truncated[types.ExprString(n.Lhs[0])] = true
			}
		}
		return true
	})
	return h
}

func (h *hotFunc) exemptAt(pos token.Pos) bool {
	for _, r := range h.exempt {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// hotpathFinding classifies one node inside a hot function, returning
// a description of the allocating construct or "".
func hotpathFinding(pass *analysis.Pass, n ast.Node, stack []ast.Node, h *hotFunc) string {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return "defer (allocates a deferred-call record per invocation)"
	case *ast.CallExpr:
		if pkg, name, ok := callPkgFunc(pass, n); ok && pkg == "fmt" {
			return fmt.Sprintf("fmt.%s call (formats and allocates)", name)
		}
		if isBuiltinMake(pass, n) {
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return "make(map) (allocates a hash table)"
				}
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := pass.TypesInfo.TypeOf(n); t != nil && isString(t) {
				return "string concatenation (allocates the result)"
			}
		}
	case *ast.CompositeLit:
		if t := pass.TypesInfo.TypeOf(n); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return "map literal (allocates a hash table)"
			}
		}
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return "map iteration (randomised order, per-iteration bucket walking)"
			}
		}
	case *ast.FuncLit:
		if funcLitEscapes(stack) {
			return "function literal in an escaping position (allocates a closure)"
		}
	case *ast.AssignStmt:
		return hotpathAssignFinding(pass, n, h)
	}
	return ""
}

// hotpathAssignFinding covers the assignment-shaped constructs: string
// +=, interface boxing, and append to an escaping slice without the
// truncation discipline.
func hotpathAssignFinding(pass *analysis.Pass, as *ast.AssignStmt, h *hotFunc) string {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t := pass.TypesInfo.TypeOf(as.Lhs[0]); t != nil && isString(t) {
			return "string concatenation with += (allocates the result)"
		}
	}
	if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			// Interface boxing: storing a concrete value into a
			// non-error interface destination heap-allocates the box.
			lt := pass.TypesInfo.TypeOf(lhs)
			rt := pass.TypesInfo.TypeOf(as.Rhs[i])
			if lt != nil && rt != nil && types.IsInterface(lt) && !isErrorType(lt) &&
				!types.IsInterface(rt) && !isNilIdent(as.Rhs[i]) && !isUntypedNil(rt) {
				return fmt.Sprintf("interface boxing: storing %s into interface %q", rt, types.ExprString(lhs))
			}
			// x = append(x, ...) with x rooted in a field or package
			// variable: the slice escapes the call, so growth is a real
			// allocation unless its capacity is provably reused.
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
				continue
			}
			target := types.ExprString(lhs)
			if types.ExprString(call.Args[0]) != target || !escapingSliceTarget(pass, lhs) {
				continue
			}
			if !h.truncated[target] {
				return fmt.Sprintf("append to escaping slice %q without the s = s[:0] reuse discipline", target)
			}
		}
	}
	return ""
}

// escapingSliceTarget reports whether the append destination outlives
// the call: a struct field (selector), an element of one
// (r.stack[order]), or a package-level variable.
func escapingSliceTarget(pass *analysis.Pass, lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return escapingSliceTarget(pass, l.X)
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[l].(*types.Var); ok {
			return v.Parent() == v.Pkg().Scope()
		}
	}
	return false
}

// funcLitEscapes reports whether the FuncLit at the top of the stack
// sits in an escaping position: call argument, return value, struct
// field / composite literal element, channel send, or assignment to a
// non-local destination. A literal bound to a local variable and only
// invoked is stack-allocatable and not reported.
func funcLitEscapes(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	lit := stack[len(stack)-1]
	switch p := stack[len(stack)-2].(type) {
	case *ast.CallExpr:
		// Argument position escapes; an immediately-invoked literal
		// (the call's Fun) is a direct call, not a stored closure.
		return p.Fun != lit
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if _, isSel := lhs.(*ast.SelectorExpr); isSel {
				return true
			}
			if _, isIdx := lhs.(*ast.IndexExpr); isIdx {
				return true
			}
		}
		return false
	}
	return false
}

func isBuiltinMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// isPanicOrInvariantCall reports whether call raises: builtin panic or
// internal/invariant's Fail/Failf/Errorf family.
func isPanicOrInvariantCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[f].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[f.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			normalizePkgPath(fn.Pkg().Path()) == modulePath+"/internal/invariant" {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
