package analysis

import (
	"bufio"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPanicAllowlistMatchesDesignTable cross-checks the panicsite
// allowlist against the audit table in DESIGN.md §8: for every
// subsystem row, the "programmer errors (plain panic)" count must equal
// the number of sanctioned sites the allowlist carries for that
// package, and the totals must both be 18. Whoever sanctions a new
// programmer-error panic updates both together (see ANALYSIS.md).
func TestPanicAllowlistMatchesDesignTable(t *testing.T) {
	fromDoc := parseDesignPanicTable(t, "../../DESIGN.md")
	fromList := panicAllowlistBySubsystem()

	totalDoc, totalList := 0, 0
	for pkg, n := range fromDoc {
		totalDoc += n
		if fromList[pkg] != n {
			t.Errorf("DESIGN.md §8 sanctions %d plain-panic site(s) in %s, allowlist has %d", n, pkg, fromList[pkg])
		}
	}
	for pkg, n := range fromList {
		totalList += n
		if _, ok := fromDoc[pkg]; !ok {
			t.Errorf("allowlist sanctions %d site(s) in %s but DESIGN.md §8 has no such row", n, pkg)
		}
	}
	if totalDoc != 18 || totalList != 18 {
		t.Errorf("sanctioned programmer-error sites: DESIGN.md=%d allowlist=%d, want 18 (the §8 audit total)", totalDoc, totalList)
	}
}

// designRowRE matches §8 audit-table rows such as
//
//	| `internal/mem` (zone, node, freelist) | 5 — ... | 6 — ... |
//
// capturing the package path and the programmer-error cell.
var designRowRE = regexp.MustCompile("^\\|\\s*`(internal/[a-z]+)`[^|]*\\|[^|]*\\|\\s*([^|]+)\\|")

func parseDesignPanicTable(t *testing.T, path string) map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening DESIGN.md: %v", err)
	}
	defer f.Close()

	out := make(map[string]int)
	in8 := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			in8 = strings.HasPrefix(line, "## 8.")
			continue
		}
		if !in8 {
			continue
		}
		m := designRowRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		cell := strings.TrimSpace(m[2])
		n := 0
		if cell != "—" && cell != "" {
			lead := cell
			if i := strings.IndexAny(cell, " —"); i > 0 {
				lead = cell[:i]
			}
			n, err = strconv.Atoi(strings.TrimSpace(lead))
			if err != nil {
				t.Fatalf("DESIGN.md §8 row for %s: cannot parse programmer-error count from %q", m[1], cell)
			}
		}
		if n > 0 {
			out[modulePath+"/"+m[1]] = n
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("found no §8 audit-table rows in DESIGN.md — did the table move out of section 8?")
	}
	return out
}
