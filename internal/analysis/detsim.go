// Package analysis is the detsim suite: go/analysis analyzers that
// turn this repository's determinism and invariant conventions into
// machine-checked law. The discrete-event simulation must be
// bit-reproducible — every figure, metrics snapshot, and chaos-study
// table byte-identical across worker counts, cache states, and machines
// — and the analyzers reject the constructs that silently break that
// contract:
//
//   - wallclock:   no time.Now/Since/Sleep/Tick/... in simulation packages
//   - randsource:  all randomness flows through internal/sim's tagged
//     SplitMix64 streams, never math/rand or crypto/rand
//   - maporder:    no order-sensitive work inside `for range map`
//   - panicsite:   simulated-state packages raise invariant.Fail*, not
//     raw panic (the sanctioned programmer-error sites are allowlisted)
//   - metricname:  metric registration uses internal/metrics/names.go
//     constants, never string literals
//   - streamcarve: rand.Split() carve sites follow the committed
//     append-only substream registry (streamcarve_registry.go)
//   - poolescape:  pooled simulation objects (DESIGN.md §11) are held
//     only by the sanctioned, reap-disciplined holders
//   - hotpath:     //detsim:hotpath functions stay free of allocating
//     constructs (DESIGN.md §10)
//   - allowaudit:  opt-in (-allowaudit.enable) stale-directive sweep
//     backing `make lint-audit`
//
// The suite runs as `cmd/hpmmap-vet` (a go/analysis unitchecker driven
// by `go vet -vettool=`) and as the `lint` leg of `make verify`. Every
// analyzer honours a shared escape hatch: a `//detsim:allow <reason>`
// comment on the flagged line (or the line directly above it) silences
// the finding; an allow directive with no reason is itself a finding.
// See ANALYSIS.md for the full contract and maintenance recipes.
package analysis

import (
	"go/ast"
	"go/token"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// modulePath is the import-path prefix of this module. Package
// classification is exact-path based so the analyzers behave
// identically under `go vet -vettool` (real packages) and under the
// golden-testdata harness (which type-checks testdata packages under
// these same import paths).
const modulePath = "hpmmap"

// simPackages are the simulated-state packages: everything that runs
// under the discrete-event engine and contributes to figure/metrics
// artifacts. Wall-clock reads, foreign randomness, and raw panics are
// forbidden here.
var simPackages = map[string]bool{
	modulePath + "/internal/sim":         true,
	modulePath + "/internal/mem":         true,
	modulePath + "/internal/buddy":       true,
	modulePath + "/internal/kernel":      true,
	modulePath + "/internal/linuxmm":     true,
	modulePath + "/internal/thp":         true,
	modulePath + "/internal/hugetlb":     true,
	modulePath + "/internal/core":        true,
	modulePath + "/internal/pgtable":     true,
	modulePath + "/internal/tlb":         true,
	modulePath + "/internal/vma":         true,
	modulePath + "/internal/fault":       true,
	modulePath + "/internal/cluster":     true,
	modulePath + "/internal/workload":    true,
	modulePath + "/internal/experiments": true,
	modulePath + "/internal/chaos":       true,
	modulePath + "/internal/invariant":   true,
	modulePath + "/internal/datacenter":  true,
	modulePath + "/internal/ledger":      true,
}

// isSimPackage reports whether path is a simulated-state package.
// Test binaries type-check as "pkg.test"/"pkg_test" variants; strip
// the suffixes go/packages and unitchecker synthesise.
func isSimPackage(path string) bool {
	return simPackages[normalizePkgPath(path)]
}

// isSimPackageNonTest is isSimPackage restricted to the non-test
// compilation: external test packages ("pkg_test") and synthesized
// test-main packages ("pkg.test") are exempt, but in-package test files
// are indistinguishable at the package level and are handled per-file
// by callers via isTestFile.
func normalizePkgPath(path string) string {
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// isTestFile reports whether the file at pos is a _test.go file.
// Determinism law binds the simulator, not its tests: tests may use
// wall-clock timeouts, ad-hoc names, and raw panics freely.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// --- //detsim:allow directive -------------------------------------------

// allowDirective is the shared escape hatch. Grammar:
//
//	//detsim:allow <reason>
//
// placed either at the end of the flagged line or alone on the line
// immediately above it. The reason is mandatory; an empty reason is
// reported by every analyzer (the directive is itself linted).
const allowPrefix = "//detsim:allow"

// directiveEntry is one //detsim:allow occurrence. used is set when any
// analyzer consults the entry and suppresses a finding because of it —
// the allowaudit analyzer reads the flag back through each analyzer's
// directiveIndex result to flag stale directives.
type directiveEntry struct {
	reason string
	used   bool
}

// directiveIndex maps file -> line -> directive. Every detsim analyzer
// returns its index as its go/analysis result (directiveIndexResult) so
// allowaudit can aggregate consumption across the suite.
type directiveIndex map[*token.File]map[int]*directiveEntry

// directiveIndexResult is the shared ResultType of the detsim
// analyzers.
var directiveIndexResult = reflect.TypeOf(directiveIndex(nil))

// buildDirectiveIndex scans every comment in the pass's files once.
func buildDirectiveIndex(pass *analysis.Pass) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				reason := strings.TrimSpace(rest)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// "//detsim:allowother" is not the directive.
					continue
				}
				m := idx[tf]
				if m == nil {
					m = make(map[int]*directiveEntry)
					idx[tf] = m
				}
				m[tf.Line(c.Pos())] = &directiveEntry{reason: reason}
			}
		}
	}
	return idx
}

// allowed reports whether the node at pos carries (or is directly
// preceded by) a //detsim:allow directive, marking the directive as
// consumed. If the directive exists but has no reason, it reports the
// malformed directive through pass and still suppresses the original
// finding (one actionable message per site, not two).
func (idx directiveIndex) allowed(pass *analysis.Pass, pos token.Pos) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	m := idx[tf]
	if m == nil {
		return false
	}
	line := tf.Line(pos)
	for _, l := range [2]int{line, line - 1} {
		if e, ok := m[l]; ok {
			e.used = true
			if e.reason == "" {
				pass.Reportf(pos, "detsim:allow directive requires a reason: //detsim:allow <why this site is exempt>")
			}
			return true
		}
	}
	return false
}

// funcDisplayName renders the enclosing function of a node as the
// allowlist key used by panicsite: "Func" for plain functions,
// "Type.Method" for methods (pointer receivers included, without the
// star). Returns "" when the node is not inside a function declaration
// (package-level var initialisers).
func funcDisplayName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return fd.Name.Name
		}
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
		return fd.Name.Name
	}
	return ""
}

// Analyzers returns the full detsim suite in stable order. allowaudit
// runs last: it depends on every other analyzer's directiveIndex
// result and is a no-op unless enabled with -allowaudit.enable.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		WallclockAnalyzer,
		RandsourceAnalyzer,
		MaporderAnalyzer,
		PanicsiteAnalyzer,
		MetricnameAnalyzer,
		StreamcarveAnalyzer,
		PoolescapeAnalyzer,
		HotpathAnalyzer,
		AllowauditAnalyzer,
	}
}
