package analysis

import (
	"go/token"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AllowauditAnalyzer is the stale-directive sweep behind
// `make lint-audit`. Every //detsim:allow directive exists to suppress
// a specific finding; when the annotated line stops triggering any
// analyzer (the code moved, the rule changed, the construct was
// fixed), the directive becomes a silent hole that would mask the next
// real finding on that line. This analyzer runs the full suite (via
// Requires), reads back each analyzer's directiveIndex result — in
// which allowed() marks every directive it consumed — and reports
// directives nothing consumed.
//
// It is opt-in (-allowaudit.enable, set by `make lint-audit`) so the
// plain `make lint` diagnostic stream stays focused on code findings;
// the audit is a maintenance sweep, not a build gate.
var AllowauditAnalyzer = &analysis.Analyzer{
	Name: "allowaudit",
	Doc: "report stale //detsim:allow directives (opt-in: -allowaudit.enable)\n\n" +
		"A //detsim:allow whose line no longer triggers any detsim\n" +
		"analyzer is a silent suppression hole; `make lint-audit` enables\n" +
		"this analyzer to flag them for deletion.",
	Requires: allowauditDeps,
	Run:      runAllowaudit,
}

// allowauditDeps is every directive-honouring analyzer in the suite;
// a separate variable so runAllowaudit can iterate it without an
// initialisation cycle through AllowauditAnalyzer.
var allowauditDeps = []*analysis.Analyzer{
	WallclockAnalyzer,
	RandsourceAnalyzer,
	MaporderAnalyzer,
	PanicsiteAnalyzer,
	MetricnameAnalyzer,
	StreamcarveAnalyzer,
	PoolescapeAnalyzer,
	HotpathAnalyzer,
}

var allowauditEnable bool

func init() {
	AllowauditAnalyzer.Flags.BoolVar(&allowauditEnable, "enable", false,
		"report stale //detsim:allow directives (used by `make lint-audit`)")
}

func runAllowaudit(pass *analysis.Pass) (interface{}, error) {
	if !allowauditEnable {
		return nil, nil
	}
	if !strings.HasPrefix(normalizePkgPath(pass.Pkg.Path()), modulePath) {
		return nil, nil
	}

	// Union of directives the suite consumed in this package unit. The
	// indexes key the same *token.File values (one shared FileSet per
	// unit), so (file, line) identity lines up across analyzers.
	used := make(map[*token.File]map[int]bool)
	for _, dep := range allowauditDeps {
		idx, ok := pass.ResultOf[dep].(directiveIndex)
		if !ok {
			continue
		}
		for tf, lines := range idx {
			for line, e := range lines {
				if !e.used {
					continue
				}
				m := used[tf]
				if m == nil {
					m = make(map[int]bool)
					used[tf] = m
				}
				m[line] = true
			}
		}
	}

	type staleDirective struct {
		tf     *token.File
		line   int
		reason string
	}
	var stale []staleDirective
	for tf, lines := range buildDirectiveIndex(pass) {
		if strings.HasSuffix(tf.Name(), "_test.go") {
			// Test files are exempt from every analyzer, so a directive
			// there is decorative, not a suppression hole.
			continue
		}
		for line, e := range lines {
			if used[tf][line] {
				continue
			}
			stale = append(stale, staleDirective{tf: tf, line: line, reason: e.reason})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].tf.Name() != stale[j].tf.Name() {
			return stale[i].tf.Name() < stale[j].tf.Name()
		}
		return stale[i].line < stale[j].line
	})
	for _, s := range stale {
		pass.Reportf(s.tf.LineStart(s.line),
			"allowaudit: stale //detsim:allow directive (reason: %q) — no detsim analyzer suppressed a finding at this line in this run; the annotated construct is gone, so delete the directive (it would silently mask the next real finding here)",
			s.reason)
	}
	return nil, nil
}
