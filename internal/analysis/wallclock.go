package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// wallclockForbidden are the package time functions that read or wait
// on the host clock. Referencing any of them from a simulated-state
// package couples simulation output to wall time and breaks
// bit-reproducibility; simulated time comes from the engine
// (sim.Engine.Now) and nothing else. time.Duration and the time
// constants remain fine — they are plain arithmetic.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallclockAnalyzer forbids wall-clock reads in simulation packages.
// cmd/* binaries and internal/runner (progress/ETA reporting above the
// engines) are allowlisted by package: wall time there annotates human
// -facing output and never feeds an artifact.
var WallclockAnalyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/Tick and friends in simulation packages\n\n" +
		"Simulated-state packages must derive all timing from the\n" +
		"discrete-event engine. Any reference to a wall-clock function —\n" +
		"including passing time.Now as a value — is reported unless the\n" +
		"line carries a //detsim:allow <reason> directive.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runWallclock,
}

// isLedgerHostFile exempts the run ledger's host annex writer — the one
// sanctioned wall-clock site inside a simulated-state package. host.go
// timestamps host-annex records (host_manifest start, cell wall
// clocks), which the ledger's canonical projection excludes by
// construction, so the clock there can never reach a deterministic
// artifact. The exemption is file-scoped, not package-scoped: a clock
// read anywhere else in internal/ledger is still a violation.
func isLedgerHostFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(filepath.ToSlash(f.Name()), "internal/ledger/host.go")
}

func runWallclock(pass *analysis.Pass) (interface{}, error) {
	if !isSimPackage(pass.Pkg.Path()) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return
		}
		if _, isFunc := obj.(*types.Func); !isFunc || !wallclockForbidden[obj.Name()] {
			return
		}
		if isTestFile(pass.Fset, sel.Pos()) || allow.allowed(pass, sel.Pos()) {
			return
		}
		if isLedgerHostFile(pass.Fset, sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(),
			"wallclock: time.%s in simulated-state package %s — simulation time must come from the engine (sim.Engine), never the host clock; use //detsim:allow <reason> only for code provably outside the simulated path",
			obj.Name(), pass.Pkg.Path())
	})
	return allow, nil
}
