package analysis

// pooledTypeInfo describes one pooled simulation type from the
// DESIGN.md §11 inventory.
type pooledTypeInfo struct {
	// owner is the package whose pool recycles the type.
	owner string
	// sealed types must not be mentioned outside owner at all: the
	// "no *VMA escapes the package" safety argument. Non-sealed types
	// may be passed around transiently (parameters, results, locals)
	// but may only be *held* — struct fields, package variables, named
	// container types — by the sanctioned holders below.
	sealed bool
}

// pooledTypes is the pool inventory of DESIGN.md §11: objects recycled
// through Reset/Reap cycles whose stale references are ABA hazards
// (the pool hands the same pointer to an unrelated successor).
var pooledTypes = map[string]pooledTypeInfo{
	// vma.Space recycles VMA nodes through its free pool on
	// split/merge/unmap; a *VMA outside the package can outlive its
	// node. Sealed: the type never appears outside internal/vma
	// (Space.VMAs()/Find callers iterate transiently via inference).
	modulePath + "/internal/vma.VMA": {owner: modulePath + "/internal/vma", sealed: true},

	// The process-lifecycle pools (DESIGN.md §11): ExitReap returns
	// Process and Task structs to lifecyclePools; MMLockedUntil is the
	// ABA guard for the manager detach window.
	modulePath + "/internal/kernel.Process": {owner: modulePath + "/internal/kernel"},
	modulePath + "/internal/kernel.Task":    {owner: modulePath + "/internal/kernel"},

	// Per-manager pooled state, recycled by DetachReap.
	modulePath + "/internal/linuxmm.region":    {owner: modulePath + "/internal/linuxmm"},
	modulePath + "/internal/linuxmm.touchCtx":  {owner: modulePath + "/internal/linuxmm"},
	modulePath + "/internal/linuxmm.procState": {owner: modulePath + "/internal/linuxmm"},
	modulePath + "/internal/core.region":       {owner: modulePath + "/internal/core"},
	modulePath + "/internal/core.procState":    {owner: modulePath + "/internal/core"},
}

// poolHolderRegistry sanctions every declaration that is allowed to
// HOLD a pooled pointer past a function return: struct fields
// ("pkg.Type.field"), package-level variables ("pkg.var"), and named
// container types ("pkg.Type"). Each entry's reason documents the
// clearing discipline that keeps the holder reap-safe — who clears the
// reference, and before which pool Reset/Reap. A holder without a
// documented clearing discipline is exactly the bug this registry
// exists to prevent; additions belong in the same PR as the clearing
// code.
var poolHolderRegistry = map[string]string{
	// -- kernel: the pools themselves and the live-process tables ------
	modulePath + "/internal/kernel.lifecyclePools.procs": "the Process pool itself; entries are dead by definition (pushed only from reap after teardown)",
	modulePath + "/internal/kernel.lifecyclePools.tasks": "the Task pool itself; entries are dead by definition",
	modulePath + "/internal/kernel.Node.procs":           "the live-process table; reap deletes the PID entry before pooling the Process",
	modulePath + "/internal/kernel.Process.tasks":        "intra-aggregate: tasks die with their process; reap pools tasks and truncates this slice together",
	modulePath + "/internal/kernel.Task.Proc":            "intra-aggregate back-pointer; cleared by taskStruct reinitialisation on reuse",

	// -- linuxmm: manager-held process list and pooled region state ----
	modulePath + "/internal/linuxmm.Manager.procs":      "attach list; Detach/DetachReap remove the entry before the Process can be pooled",
	modulePath + "/internal/linuxmm.Manager.regionPool": "the region pool itself; entries are detached by definition",
	modulePath + "/internal/linuxmm.Manager.psPool":     "the procState pool itself; entries are detached by definition",
	modulePath + "/internal/linuxmm.procState.regions":  "intra-aggregate: regions die with their procState; DetachReap pools both together",
	modulePath + "/internal/linuxmm.procState.stack":    "intra-aggregate alias of regions[stackBase]; recycled with the procState",
	modulePath + "/internal/linuxmm.procState.heap":     "intra-aggregate alias of regions[heapBase]; recycled with the procState",
	modulePath + "/internal/linuxmm.touchCtx.p":         "per-call scratch (DESIGN.md §10); rebound at every TouchRange entry before use",
	modulePath + "/internal/linuxmm.touchCtx.r":         "per-call scratch; rebound at every TouchRange entry before use",

	// -- core (HPMMAP manager): same pooling structure as linuxmm ------
	modulePath + "/internal/core.Manager.regionPool": "the region pool itself; entries are detached by definition",
	modulePath + "/internal/core.Manager.psPool":     "the procState pool itself; entries are detached by definition",
	modulePath + "/internal/core.procState.regions":  "intra-aggregate: regions die with their procState; DetachReap pools both together",
	modulePath + "/internal/core.procState.heap":     "intra-aggregate alias of regions[heapBase]; recycled with the procState",

	// -- scenario layers: holders cleared at process exit --------------
	modulePath + "/internal/chaos.spikeProc.p":           "spike working set; the spike's exit event kills and forgets the process before any reap",
	modulePath + "/internal/workload.rankState.p":        "per-rank process for the run's duration; the app tears down its own ranks before the cell ends",
	modulePath + "/internal/workload.rankState.t":        "per-rank task, torn down with rankState.p",
	modulePath + "/internal/workload.Build.resident":     "resident helper process; Build.Stop kills it before the cell's node is reaped",
	modulePath + "/internal/datacenter.pod.p":            "pod process; evict/complete paths call ExitReap and drop the pod entry in the same event",
	modulePath + "/internal/datacenter.residentPod.proc": "resident daemonset process; lives for the whole cell and is never reaped mid-run",

	// -- public facade -------------------------------------------------
	modulePath + ".Process.p": "facade handle owned by the caller; Exit() is the only reap path and invalidates the handle",
}
