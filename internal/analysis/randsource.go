package analysis

import (
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// forbiddenRandImports are randomness sources whose draws are not part
// of the simulator's seeded, tagged SplitMix64 stream discipline.
// math/rand's global state is shared and schedule-dependent; crypto/rand
// is nondeterministic by design. Either one feeding simulated state
// silently destroys bit-reproducibility and the chaos substream
// carving (enable-set changes must never shift another family's
// schedule).
var forbiddenRandImports = map[string]string{
	"math/rand":    "math/rand",
	"math/rand/v2": "math/rand/v2",
	"crypto/rand":  "crypto/rand",
}

// RandsourceAnalyzer forbids importing math/rand, math/rand/v2, or
// crypto/rand anywhere in the module outside internal/sim. All
// randomness must flow through internal/sim's tagged SplitMix64
// streams (sim.NewRand / Rand.Substream), which are derived from the
// cell seed in fixed order.
var RandsourceAnalyzer = &analysis.Analyzer{
	Name: "randsource",
	Doc: "forbid math/rand, math/rand/v2 and crypto/rand outside internal/sim\n\n" +
		"All randomness must be drawn from internal/sim's tagged\n" +
		"SplitMix64 streams so that per-cell seeding and chaos substream\n" +
		"carving stay schedule-stable. An import may be exempted with a\n" +
		"//detsim:allow <reason> directive on the import line.",
	ResultType: directiveIndexResult,
	Run:        runRandsource,
}

func runRandsource(pass *analysis.Pass) (interface{}, error) {
	path := normalizePkgPath(pass.Pkg.Path())
	if path == modulePath+"/internal/sim" {
		return directiveIndex(nil), nil // the one sanctioned randomness root
	}
	if !strings.HasPrefix(path, modulePath) {
		return directiveIndex(nil), nil // never lint dependencies
	}
	allow := buildDirectiveIndex(pass)
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			name, bad := forbiddenRandImports[p]
			if !bad {
				continue
			}
			if isTestFile(pass.Fset, imp.Pos()) || allow.allowed(pass, imp.Pos()) {
				continue
			}
			pass.Reportf(imp.Pos(),
				"randsource: import of %s outside internal/sim — draw from the cell's tagged SplitMix64 stream (sim.NewRand / Rand.Substream) so schedules stay seed-stable; //detsim:allow <reason> only for provably non-simulated code",
				name)
		}
	}
	return allow, nil
}
