package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"hpmmap/internal/analysis/atest"
)

// Golden-testdata coverage: every analyzer is run over packages
// containing both positive (// want) and allowlisted/exempt-negative
// cases. The testdata packages are type-checked under real
// hpmmap/internal/... import paths, so the package-classification
// logic is exercised exactly as it is under `go vet -vettool`.

func TestWallclockSimPackage(t *testing.T) {
	atest.Run(t, "testdata", WallclockAnalyzer, "hpmmap/internal/kernel")
}

func TestWallclockAllowlistedPackage(t *testing.T) {
	atest.Run(t, "testdata", WallclockAnalyzer, "hpmmap/internal/runner")
}

// TestWallclockLedgerHostAnnexExempt: internal/ledger is a sim package
// whose host.go (the host-annex writer) is the one file-scoped clock
// exemption; the seeded violations in ledger.go prove the exemption
// does not leak to the canonical side.
func TestWallclockLedgerHostAnnexExempt(t *testing.T) {
	atest.Run(t, "testdata", WallclockAnalyzer, "hpmmap/internal/ledger")
}

func TestRandsource(t *testing.T) {
	atest.Run(t, "testdata", RandsourceAnalyzer, "hpmmap/internal/workload")
}

func TestRandsourceSimExempt(t *testing.T) {
	atest.Run(t, "testdata", RandsourceAnalyzer, "hpmmap/internal/sim")
}

func TestMaporder(t *testing.T) {
	atest.Run(t, "testdata", MaporderAnalyzer, "hpmmap/internal/experiments")
}

func TestPanicsite(t *testing.T) {
	atest.Run(t, "testdata", PanicsiteAnalyzer, "hpmmap/internal/mem")
}

func TestPanicsiteInvariantExempt(t *testing.T) {
	atest.Run(t, "testdata", PanicsiteAnalyzer, "hpmmap/internal/invariant")
}

func TestMetricname(t *testing.T) {
	atest.Run(t, "testdata", MetricnameAnalyzer, "hpmmap/internal/tlb")
}

// streamcarve: one golden package per failure mode of the carve-order
// contract, plus the clean committed form and the escape hatch.

func TestStreamcarveParentDrawBetweenCarves(t *testing.T) {
	atest.Run(t, "testdata", StreamcarveAnalyzer, "hpmmap/internal/chaos")
}

func TestStreamcarveOrderMismatch(t *testing.T) {
	atest.Run(t, "testdata", StreamcarveAnalyzer, "hpmmap/internal/linuxmm")
}

func TestStreamcarveLostSequence(t *testing.T) {
	atest.Run(t, "testdata", StreamcarveAnalyzer, "hpmmap/internal/core")
}

func TestStreamcarveCleanCommittedForm(t *testing.T) {
	atest.Run(t, "testdata", StreamcarveAnalyzer, "hpmmap/internal/thp")
}

func TestStreamcarveUnregisteredSite(t *testing.T) {
	atest.Run(t, "testdata", StreamcarveAnalyzer, "hpmmap/internal/cluster")
}

func TestStreamcarveExtraTail(t *testing.T) {
	atest.Run(t, "testdata", StreamcarveAnalyzer, "hpmmap/internal/datacenter")
}

func TestPoolescape(t *testing.T) {
	atest.Run(t, "testdata", PoolescapeAnalyzer, "hpmmap/internal/hugetlb")
}

func TestPoolescapeOwnerPackageExempt(t *testing.T) {
	// The sealed type's own package holds pooled pointers freely: its
	// pool mechanics are the ownership the seal protects.
	atest.Run(t, "testdata", PoolescapeAnalyzer, "hpmmap/internal/vma")
}

func TestHotpath(t *testing.T) {
	atest.Run(t, "testdata", HotpathAnalyzer, "hpmmap/internal/buddy")
}

// allowaudit reports on the //detsim:allow line itself, where a
// // want comment cannot coexist with the directive — so this test
// asserts on raw diagnostics instead of golden comments.
func TestAllowaudit(t *testing.T) {
	allowauditEnable = true
	defer func() { allowauditEnable = false }()

	diags := atest.Diagnostics(t, "testdata", AllowauditAnalyzer, "hpmmap/internal/pgtable")
	if len(diags) != 1 {
		t.Fatalf("allowaudit returned %d diagnostics, want exactly 1 (the stale directive): %+v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "stale //detsim:allow directive") ||
		!strings.Contains(d.Message, "doc example: nothing here needs suppressing") {
		t.Errorf("unexpected stale-directive message: %s", d.Message)
	}
	if filepath.Base(d.File) != "allowaudit.go" || d.Line != 21 {
		t.Errorf("stale directive reported at %s:%d, want allowaudit.go:21", d.File, d.Line)
	}
}

func TestAllowauditDisabledIsNoOp(t *testing.T) {
	if allowauditEnable {
		t.Fatal("allowaudit enable flag leaked from another test")
	}
	diags := atest.Diagnostics(t, "testdata", AllowauditAnalyzer, "hpmmap/internal/pgtable")
	if len(diags) != 0 {
		t.Fatalf("allowaudit reported %d diagnostics while disabled, want 0: %+v", len(diags), diags)
	}
}

// The suite must stay stable in name and order: hpmmap-vet's findings
// (and CI baselines) key off analyzer names.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"wallclock", "randsource", "maporder", "panicsite", "metricname",
		"streamcarve", "poolescape", "hotpath", "allowaudit",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
