package analysis

import (
	"testing"

	"hpmmap/internal/analysis/atest"
)

// Golden-testdata coverage: every analyzer is run over packages
// containing both positive (// want) and allowlisted/exempt-negative
// cases. The testdata packages are type-checked under real
// hpmmap/internal/... import paths, so the package-classification
// logic is exercised exactly as it is under `go vet -vettool`.

func TestWallclockSimPackage(t *testing.T) {
	atest.Run(t, "testdata", WallclockAnalyzer, "hpmmap/internal/kernel")
}

func TestWallclockAllowlistedPackage(t *testing.T) {
	atest.Run(t, "testdata", WallclockAnalyzer, "hpmmap/internal/runner")
}

func TestRandsource(t *testing.T) {
	atest.Run(t, "testdata", RandsourceAnalyzer, "hpmmap/internal/workload")
}

func TestRandsourceSimExempt(t *testing.T) {
	atest.Run(t, "testdata", RandsourceAnalyzer, "hpmmap/internal/sim")
}

func TestMaporder(t *testing.T) {
	atest.Run(t, "testdata", MaporderAnalyzer, "hpmmap/internal/experiments")
}

func TestPanicsite(t *testing.T) {
	atest.Run(t, "testdata", PanicsiteAnalyzer, "hpmmap/internal/mem")
}

func TestPanicsiteInvariantExempt(t *testing.T) {
	atest.Run(t, "testdata", PanicsiteAnalyzer, "hpmmap/internal/invariant")
}

func TestMetricname(t *testing.T) {
	atest.Run(t, "testdata", MetricnameAnalyzer, "hpmmap/internal/tlb")
}

// The suite must stay stable in name and order: hpmmap-vet's findings
// (and CI baselines) key off analyzer names.
func TestSuiteComposition(t *testing.T) {
	want := []string{"wallclock", "randsource", "maporder", "panicsite", "metricname"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
