package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PoolescapeAnalyzer enforces the pool-quiescence contract of
// DESIGN.md §11 statically. The lifecycle pools recycle Process, Task,
// manager region/procState, and vma.VMA objects; any reference that
// survives past the pool's Reset/Reap hands its holder a recycled
// object — the ABA hazard the MMLockedUntil guard exists for. Two
// rules:
//
//  1. Holding is registered: every declaration that can hold a pooled
//     pointer past a function return — struct fields, package-level
//     variables, named container types — must appear in
//     poolHolderRegistry (poolescape_registry.go) with its clearing
//     discipline. Transient use (parameters, results, locals) is free.
//
//  2. Sealed types never leave home: a type marked sealed (vma.VMA)
//     must not be mentioned outside its owning package at all — the
//     "no *VMA escapes the package" safety argument, checked instead
//     of trusted.
var PoolescapeAnalyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "restrict pooled simulation objects to sanctioned, reap-disciplined holders\n\n" +
		"Pointers to the DESIGN.md §11 pooled types (kernel\n" +
		"Process/Task, manager region/procState/touchCtx, vma.VMA) may\n" +
		"only be held by declarations registered in\n" +
		"poolescape_registry.go with their clearing discipline; sealed\n" +
		"types must not be mentioned outside their owner. See\n" +
		"ANALYSIS.md.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runPoolescape,
}

func runPoolescape(pass *analysis.Pass) (interface{}, error) {
	pkgPath := normalizePkgPath(pass.Pkg.Path())
	if !strings.HasPrefix(pkgPath, modulePath) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)

	reportHolder := func(pos ast.Node, key, kind, name, pooled string) {
		// A sealed type's own package is exempt from the holder rule:
		// its pool mechanics (vma.Space.vmas/pool, traversal stacks)
		// ARE the ownership the seal protects.
		if info := pooledTypes[pooled]; info.sealed && pkgPath == info.owner {
			return
		}
		if isTestFile(pass.Fset, pos.Pos()) || allow.allowed(pass, pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(),
			"poolescape: %s %s holds pooled %s — pooled objects are recycled at Reset/Reap (DESIGN.md §11), so a surviving reference is an ABA hazard; register the holder with its clearing discipline in internal/analysis/poolescape_registry.go (key %q) or annotate //detsim:allow <reason>",
			kind, name, shortTypeName(pooled), key)
	}

	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil), (*ast.GenDecl)(nil), (*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.TypeSpec:
			checkTypeSpec(pass, pkgPath, n, reportHolder)
		case *ast.GenDecl:
			checkPackageVars(pass, pkgPath, n, reportHolder)
		case *ast.SelectorExpr:
			checkSealedMention(pass, pkgPath, allow, n)
		}
	})
	return allow, nil
}

// checkTypeSpec flags struct fields (and non-struct named container
// types) whose type can hold a pooled pointer.
func checkTypeSpec(pass *analysis.Pass, pkgPath string, ts *ast.TypeSpec, report func(ast.Node, string, string, string, string)) {
	if st, ok := ts.Type.(*ast.StructType); ok {
		for _, field := range st.Fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			pooled := pooledTypeIn(t)
			if pooled == "" {
				continue
			}
			names := field.Names
			if len(names) == 0 { // embedded field
				names = []*ast.Ident{{Name: shortTypeName(types.ExprString(field.Type)), NamePos: field.Type.Pos()}}
			}
			for _, name := range names {
				key := pkgPath + "." + ts.Name.Name + "." + name.Name
				if _, sanctioned := poolHolderRegistry[key]; sanctioned {
					continue
				}
				report(field, key, "field", ts.Name.Name+"."+name.Name, pooled)
			}
		}
		return
	}
	// Named non-struct type: type procCache []*kernel.Process etc.
	if pooled := pooledTypeIn(pass.TypesInfo.TypeOf(ts.Type)); pooled != "" {
		key := pkgPath + "." + ts.Name.Name
		if _, sanctioned := poolHolderRegistry[key]; !sanctioned {
			report(ts, key, "named container type", ts.Name.Name, pooled)
		}
	}
}

// checkPackageVars flags package-level variables that can hold a
// pooled pointer.
func checkPackageVars(pass *analysis.Pass, pkgPath string, gd *ast.GenDecl, report func(ast.Node, string, string, string, string)) {
	if gd.Tok.String() != "var" {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || obj.Parent() != obj.Pkg().Scope() {
				continue // local var statement inside a function
			}
			if pooled := pooledTypeIn(obj.Type()); pooled != "" {
				key := pkgPath + "." + name.Name
				if _, sanctioned := poolHolderRegistry[key]; !sanctioned {
					report(name, key, "package-level variable", name.Name, pooled)
				}
			}
		}
	}
}

// checkSealedMention flags any selector reference to a sealed pooled
// type (pkg.Type) outside its owning package.
func checkSealedMention(pass *analysis.Pass, pkgPath string, allow directiveIndex, sel *ast.SelectorExpr) {
	tn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return
	}
	key := normalizePkgPath(tn.Pkg().Path()) + "." + tn.Name()
	info, pooled := pooledTypes[key]
	if !pooled || !info.sealed || pkgPath == info.owner {
		return
	}
	if isTestFile(pass.Fset, sel.Pos()) || allow.allowed(pass, sel.Pos()) {
		return
	}
	pass.Reportf(sel.Pos(),
		"poolescape: sealed pooled type %s mentioned outside its owning package %s — the §11 safety argument is \"no *%s escapes the package\"; use the owner's accessors (values and inferred transient iteration) or move this logic into the owner",
		key, info.owner, tn.Name())
}

// pooledTypeIn reports the first pooled type reachable from t through
// holding structure — pointers, slices, arrays, maps, channels, and
// inline structs — without descending into other named types (each
// named type is checked at its own declaration) or into function and
// interface types (those positions are transient, not holders).
func pooledTypeIn(t types.Type) string {
	if t == nil {
		return ""
	}
	switch t := t.(type) {
	case *types.Pointer:
		if k := pooledKey(t.Elem()); k != "" {
			return k
		}
		return pooledStructuralIn(t.Elem())
	case *types.Slice:
		return pooledTypeIn(t.Elem())
	case *types.Array:
		return pooledTypeIn(t.Elem())
	case *types.Map:
		if k := pooledTypeIn(t.Key()); k != "" {
			return k
		}
		return pooledTypeIn(t.Elem())
	case *types.Chan:
		return pooledTypeIn(t.Elem())
	case *types.Struct:
		return pooledStructuralIn(t)
	}
	return ""
}

// pooledStructuralIn recurses into inline (unnamed) struct types only.
func pooledStructuralIn(t types.Type) string {
	st, ok := t.(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if k := pooledTypeIn(st.Field(i).Type()); k != "" {
			return k
		}
	}
	return ""
}

// pooledKey returns the pooledTypes key for t when t is itself a
// pooled named type.
func pooledKey(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := normalizePkgPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	if _, ok := pooledTypes[key]; ok {
		return key
	}
	return ""
}

// shortTypeName trims "hpmmap/internal/kernel.Process" to
// "kernel.Process" for diagnostics.
func shortTypeName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
