package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PanicsiteAnalyzer enforces the failure-containment classification of
// DESIGN.md §8: in simulated-state packages, a corrupted simulation
// invariant must surface as a structured *invariant.Violation (raised
// via invariant.Fail/Failf/Errorf) so the runner's per-cell panic
// containment can quarantine it; raw `panic(` is reserved for
// programmer errors — API misuse by the caller — and every sanctioned
// programmer-error site lives in the checked-in allowlist below.
//
// The allowlist is file:line-insensitive: it is keyed by enclosing
// function ("Func" or "Type.Method") with a sanctioned site count, so
// moving code around never churns it; only adding a *new* panic to a
// function trips the analyzer. internal/invariant itself is exempt —
// it is the raising mechanism.
var PanicsiteAnalyzer = &analysis.Analyzer{
	Name: "panicsite",
	Doc: "require invariant.Fail* instead of raw panic in simulated-state packages\n\n" +
		"New panics in simulated-state code must raise structured\n" +
		"invariant violations so a corrupt cell is contained instead of\n" +
		"killing the whole experiment grid. Sanctioned programmer-error\n" +
		"sites are allowlisted by enclosing function (see\n" +
		"panicsite_allowlist.go and DESIGN.md §8); anything else needs a\n" +
		"//detsim:allow <reason> directive.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runPanicsite,
}

// panicsiteScope: the simulated-state packages plus internal/metrics
// (its kind-mismatch panics are in the §8 table), minus
// internal/invariant (the raising mechanism must be free to panic —
// that is how Violations propagate).
func panicsiteInScope(path string) bool {
	path = normalizePkgPath(path)
	if path == modulePath+"/internal/invariant" {
		return false
	}
	return simPackages[path] || path == modulePath+"/internal/metrics"
}

func runPanicsite(pass *analysis.Pass) (interface{}, error) {
	if !panicsiteInScope(pass.Pkg.Path()) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)
	pkg := normalizePkgPath(pass.Pkg.Path())

	// seen counts panic sites per enclosing function, in source order,
	// so an allowlist entry of {F: n} sanctions exactly the first n
	// panics in F and flags the (n+1)th — refactors inside F don't
	// churn the list, but new panics do trip it.
	seen := make(map[string]int)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		if isTestFile(pass.Fset, call.Pos()) {
			return true
		}
		fn := funcDisplayName(stack)
		key := pkg + "." + fn
		idx := seen[key]
		seen[key]++
		if idx < panicAllowlist[key] {
			return true
		}
		if allow.allowed(pass, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"panicsite: raw panic in simulated-state package %s (func %s) — simulated-state corruption must raise invariant.Fail/Failf/Errorf so the runner can contain it per cell; genuine programmer-error sites belong in internal/analysis/panicsite_allowlist.go (see DESIGN.md §8)",
			pkg, fn)
		return true
	})
	return allow, nil
}
