package analysis

// panicAllowlist is the checked-in register of sanctioned
// programmer-error panic sites — the 18 sites classified "plain panic"
// in the DESIGN.md §8 audit table. Keyed by package path + enclosing
// function ("pkg.Func" or "pkg.Type.Method") with the number of
// sanctioned panic sites in that function, so the list survives
// line-number churn and intra-function refactors while still catching
// a *new* panic added to a listed function (it becomes the n+1th site
// and is reported).
//
// Maintenance recipe (see ANALYSIS.md):
//  1. A new panic is only sanctionable if it is a programmer error —
//     API misuse by the caller (bad constructor argument, out-of-range
//     index, use-after-drain) — never simulated-state corruption.
//  2. Add/bump the entry here, AND update the DESIGN.md §8 table row
//     for the subsystem (counts are cross-checked by
//     TestPanicAllowlistMatchesDesignTable).
//  3. Prefer //detsim:allow <reason> for panics in plumbing that
//     re-raises recovered values (those are not new failure modes and
//     stay out of the audit table).
var panicAllowlist = map[string]int{
	// internal/pgtable — 2: unaligned VA / invalid page size.
	"hpmmap/internal/pgtable.PageSize.Bytes": 1,
	"hpmmap/internal/pgtable.levelFor":       1,

	// internal/mem — 6: bad zone geometry / constructor args,
	// out-of-range order.
	"hpmmap/internal/mem.NewZone":         2,
	"hpmmap/internal/mem.Zone.AllocPages": 1,
	"hpmmap/internal/mem.Zone.FreeBlock":  1,
	"hpmmap/internal/mem.NewNodeMemory":   2,

	// internal/buddy — 1: non-power-of-two min block.
	"hpmmap/internal/buddy.New": 1,

	// internal/kernel — 1: running a finished task.
	"hpmmap/internal/kernel.Node.Run": 1,

	// internal/sim — 4: zero-bound PRNG draws, event misuse.
	"hpmmap/internal/sim.Rand.Uint64n":     1,
	"hpmmap/internal/sim.Rand.Intn":        1,
	"hpmmap/internal/sim.Engine.At":        1,
	"hpmmap/internal/sim.Engine.NewTicker": 1,

	// internal/metrics — 2: kind mismatch on re-registration.
	"hpmmap/internal/metrics.Registry.lookup": 2,

	// internal/linuxmm — 1: unknown mode / missing hugetlb pools.
	"hpmmap/internal/linuxmm.New": 1,

	// internal/tlb — 1: invalid entry-size configuration.
	"hpmmap/internal/tlb.MustNew": 1,
}

// panicAllowlistBySubsystem mirrors the DESIGN.md §8 "programmer
// errors" column for the regression test: package path -> sanctioned
// site count.
func panicAllowlistBySubsystem() map[string]int {
	out := make(map[string]int)
	for key, n := range panicAllowlist {
		// key is "path/to/pkg.Func[...]" — the package path is
		// everything before the first '.' after the last '/'.
		slash := -1
		for i := len(key) - 1; i >= 0; i-- {
			if key[i] == '/' {
				slash = i
				break
			}
		}
		dot := slash
		for i := slash + 1; i < len(key); i++ {
			if key[i] == '.' {
				dot = i
				break
			}
		}
		out[key[:dot]] += n
	}
	return out
}
