package analysis

// carveRegistry is the committed substream carve-order contract
// enforced by StreamcarveAnalyzer, keyed by the enclosing function
// ("pkg/path.Func" or "pkg/path.Type.Method") with the ordered list of
// destination names its rand.Split() calls assign to.
//
// Split() advances the parent stream, so the Nth carve's seed depends
// on every carve before it: reordering, inserting mid-sequence, or
// drawing from the parent between carves re-seeds every later
// substream and silently shifts every schedule derived from them —
// exactly the byte-compatibility hazard PRs 7 and 8 had to dodge by
// hand when they appended nodefailRand and backoffRand. The registry
// makes the contract append-only: extending a carve site means adding
// the new destination to the TAIL of its list here and to the
// DESIGN.md §9 "substream carve-order registry" table (the two are
// kept in sync by TestStreamcarveRegistryMatchesDesignTable).
//
// Changing the INTERIOR of a list is a deliberate
// byte-compatibility break: do it only together with a golden/bench
// refresh, and say so in the PR.
var carveRegistry = map[string][]string{
	// internal/chaos: one substream per event family, carved in New in
	// enable-set-independent order (chaos.go "determinism contract").
	modulePath + "/internal/chaos.New": {
		"spikeRand",
		"buddyRand",
		"swapRand",
		"pcRand",
		"tlbRand",
		"stragglerRand",
		"nodefailRand",
	},
	// internal/datacenter: one substream per agent concern
	// (datacenter.go "determinism contract").
	modulePath + "/internal/datacenter.New": {
		"churnRand",
		"specRand",
		"lifeRand",
		"residentRand",
		"prioRand",
		"backoffRand",
	},
	// Per-manager carves off the node stream: each manager takes
	// exactly one substream at construction.
	modulePath + "/internal/linuxmm.New":  {"rand"},
	modulePath + "/internal/core.Install": {"rand"},
	modulePath + "/internal/thp.Start":    {"rand"},
}
