package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MaporderAnalyzer flags `for … := range m` over a map whose loop body
// does order-sensitive work. Go randomises map iteration order per run,
// so any such loop that appends to an outer slice, accumulates a float
// or string, or writes output is the classic silent killer of
// byte-identical artifacts.
//
// Recognised-safe patterns (not reported):
//
//   - pure reads, keyed writes to another map, and integer
//     accumulation (integer addition is order-insensitive);
//   - last-writer-wins assignments guarded by comparisons (min/max
//     idioms) — plain `=` to outer variables is not reported;
//   - collect-then-sort: appends whose target slice is passed to a
//     sort routine (sort.*, slices.Sort*/SortFunc/SortStableFunc, or a
//     helper whose name contains "sort") later in the same function;
//   - ranging over slices.Sorted/SortedFunc/SortedStableFunc(...) —
//     the iteration source is provably sorted.
//
// Ranging over maps.Keys/Values/All(m) is treated as map iteration:
// the derived slice (or iterator) inherits the randomised order, so
// the same body rules apply unless the call is wrapped in a
// slices.Sorted* adapter.
//
// Everything else needs either sorted iteration or an explicit
// //detsim:allow <reason> directive on the `for` line (or the line
// above it).
var MaporderAnalyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive work inside range-over-map loops\n\n" +
		"Reports map-range loops (including loops over maps.Keys/Values)\n" +
		"that append to outer slices (unless the slice is sorted\n" +
		"afterwards), accumulate floats or strings, or emit output,\n" +
		"unless the site carries //detsim:allow <reason>.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runMaporder,
}

// orderSensitiveCalls are function/method names whose invocation inside
// a map-range body emits ordered output (writers, printers, encoders,
// trace emitters). Receiver-typed or package-level — name match is
// enough: these verbs mean "produce ordered bytes/events" throughout
// this codebase.
var orderSensitiveCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Encode": true, "Emit": true, "Record": true,
}

func runMaporder(pass *analysis.Pass) (interface{}, error) {
	if !strings.HasPrefix(normalizePkgPath(pass.Pkg.Path()), modulePath) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		if !rangesOverMapOrder(pass, rng) {
			return true
		}
		if isTestFile(pass.Fset, rng.Pos()) {
			return true
		}
		if reason := maporderFinding(pass, rng, stack); reason != "" {
			if allow.allowed(pass, rng.Pos()) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"maporder: map iteration order is randomised, but this loop %s — iterate in a deterministic order (collect keys, sort.Slice/slices.Sort, then index), or annotate //detsim:allow <reason> if order provably cannot reach an artifact",
				reason)
		}
		return true
	})
	return allow, nil
}

// rangesOverMapOrder reports whether the range statement iterates in
// randomised map order: directly over a map, or over the result of
// maps.Keys/Values/All (whose element order inherits the map's). A
// source wrapped in slices.Sorted/SortedFunc/SortedStableFunc is
// provably ordered and never reported.
func rangesOverMapOrder(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if pkg, name, ok := callPkgFunc(pass, rng.X); ok && isMapsOrderPkg(pkg, "slices") {
		switch name {
		case "Sorted", "SortedFunc", "SortedStableFunc":
			return false
		}
	}
	if tv, ok := pass.TypesInfo.Types[rng.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	if pkg, name, ok := callPkgFunc(pass, rng.X); ok && isMapsOrderPkg(pkg, "maps") {
		switch name {
		case "Keys", "Values", "All":
			return true
		}
	}
	return false
}

// callPkgFunc resolves e as a call to a package-level function and
// returns its package path and name.
func callPkgFunc(pass *analysis.Pass, e ast.Expr) (pkgPath, name string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// isMapsOrderPkg matches the standard-library package (e.g. "maps",
// "slices") and its golang.org/x/exp forerunner.
func isMapsOrderPkg(pkgPath, base string) bool {
	return pkgPath == base || pkgPath == "golang.org/x/exp/"+base
}

// appendTarget identifies the destination of an append-to-outer-slice
// inside the loop: its root variable plus the full printed expression
// ("s", "s.Metrics", ...) so a later sort of the same expression can be
// matched.
type appendTarget struct {
	root types.Object
	expr string
	pos  token.Pos
}

// maporderFinding returns a human-readable description of the first
// order-sensitive construct in the loop body, or "" if the loop is
// order-safe.
func maporderFinding(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) string {
	var finding string
	var appends []appendTarget

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if finding != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			d, tgt := classifyAssign(pass, n, rng)
			if d != "" {
				finding = d
				return false
			}
			if tgt != nil {
				appends = append(appends, *tgt)
			}
		case *ast.CallExpr:
			if name, ok := callName(n); ok && orderSensitiveCalls[name] {
				finding = fmt.Sprintf("calls %s(...) whose output order follows map order", name)
				return false
			}
		}
		return true
	})
	if finding != "" {
		return finding
	}
	for _, tgt := range appends {
		if !sortedLater(pass, stack, rng, tgt) {
			return fmt.Sprintf("appends to %q (declared outside the loop) in map order, and %q is never sorted afterwards in this function", tgt.expr, tgt.expr)
		}
	}
	return ""
}

// classifyAssign classifies one assignment inside a map-range body. It
// returns a non-empty description for an unconditionally
// order-sensitive assignment (float/string accumulation), or an
// appendTarget for an append-to-outer-slice whose safety depends on a
// later sort, or (" ", nil)-equivalent zero values when
// order-insensitive.
func classifyAssign(pass *analysis.Pass, as *ast.AssignStmt, rng *ast.RangeStmt) (string, *appendTarget) {
	for i, lhs := range as.Lhs {
		root := rootIdentObj(pass, lhs)
		if root == nil || !declaredOutside(root, rng) {
			continue
		}
		switch as.Tok.String() {
		case "=":
			// append-to-outer-slice: x = append(x, ...) with x an
			// identifier or field selector rooted outside the loop.
			if i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) && len(call.Args) > 0 {
					if types.ExprString(call.Args[0]) == types.ExprString(lhs) {
						return "", &appendTarget{root: root, expr: types.ExprString(lhs), pos: as.Pos()}
					}
				}
			}
			// Plain last-writer-wins assignment: min/max idioms —
			// deterministic when guarded, too noisy to flag.
		case "+=":
			t := pass.TypesInfo.TypeOf(lhs)
			if t != nil && isFloat(t) {
				return fmt.Sprintf("accumulates float %q with += (float addition is not associative; order changes the result)", types.ExprString(lhs)), nil
			}
			if t != nil && isString(t) {
				return fmt.Sprintf("concatenates onto string %q in map order", types.ExprString(lhs)), nil
			}
		case "-=", "*=", "/=":
			t := pass.TypesInfo.TypeOf(lhs)
			if t != nil && isFloat(t) {
				return fmt.Sprintf("accumulates float %q with %s (floating-point reduction order changes the result)", types.ExprString(lhs), as.Tok), nil
			}
		}
	}
	return "", nil
}

// sortedLater reports whether, after the range statement, the enclosing
// function calls a sort routine on the append target
// (sort.Strings(keys), sort.Slice(s.Metrics, ...), slices.Sort(keys),
// sort.Sort(byX(keys)), or a helper whose name contains "sort").
func sortedLater(pass *analysis.Pass, stack []ast.Node, rng *ast.RangeStmt, tgt appendTarget) bool {
	var fn ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = stack[i]
		}
		if fn != nil {
			break
		}
	}
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		// Does any argument (possibly via a conversion such as
		// byX(keys)) contain the exact target expression rooted at the
		// same variable?
		for _, arg := range call.Args {
			if exprMentionsTarget(pass, arg, tgt) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// exprMentionsTarget reports whether e contains a sub-expression that
// prints identically to the target and is rooted at the same variable.
func exprMentionsTarget(pass *analysis.Pass, e ast.Expr, tgt appendTarget) bool {
	match := false
	ast.Inspect(e, func(n ast.Node) bool {
		if match {
			return false
		}
		sub, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch sub.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if types.ExprString(sub) == tgt.expr && rootIdentObj(pass, sub) == tgt.root {
				match = true
				return false
			}
		}
		return true
	})
	return match
}

// isSortCall reports whether call invokes a sorting routine: anything
// from package sort or slices (sort.Strings, sort.Ints, sort.Slice,
// sort.Sort, slices.Sort, slices.SortFunc, ...) or a helper whose own
// name contains "sort".
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	}
	if obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	name, ok := callName(call)
	return ok && strings.Contains(strings.ToLower(name), "sort")
}

// --- small helpers -------------------------------------------------------

// rootIdentObj resolves the root variable of an identifier or a
// (possibly nested) field selector: x -> x, s.Metrics -> s,
// a.b.c -> a. Returns nil for anything else (index expressions, calls,
// dereferences of call results ...).
func rootIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[x]; o != nil {
				if _, isVar := o.(*types.Var); isVar {
					return o
				}
				return nil
			}
			if o := pass.TypesInfo.Defs[x]; o != nil {
				if _, isVar := o.(*types.Var); isVar {
					return o
				}
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj was declared outside the range
// statement (so writes to it survive the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func callName(call *ast.CallExpr) (string, bool) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	}
	return "", false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
