package analysis

import (
	"bufio"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestStreamcarveRegistryMatchesDesignTable cross-checks the carve
// registry against the DESIGN.md §9 "substream carve-order registry"
// table: same carve sites, same destinations, same order. Whoever
// appends a substream updates both together (see ANALYSIS.md) — the
// same both-or-neither discipline the panicsite allowlist uses for
// the §8 audit table.
func TestStreamcarveRegistryMatchesDesignTable(t *testing.T) {
	fromDoc := parseDesignCarveTable(t, "../../DESIGN.md")

	for key, seq := range fromDoc {
		got, ok := carveRegistry[key]
		if !ok {
			t.Errorf("DESIGN.md §9 lists carve site %s but streamcarve_registry.go has no entry", key)
			continue
		}
		if strings.Join(got, ", ") != strings.Join(seq, ", ") {
			t.Errorf("carve sequence for %s out of sync:\n  DESIGN.md §9: %v\n  registry:     %v", key, seq, got)
		}
	}
	for key := range carveRegistry {
		if _, ok := fromDoc[key]; !ok {
			t.Errorf("streamcarve_registry.go has carve site %s but the DESIGN.md §9 table has no row", key)
		}
	}
}

// carveRowRE matches §9 carve-table rows such as
//
//	| `internal/chaos.New` | `spikeRand`, `buddyRand`, ... |
//
// capturing the site (package-qualified function) and the destination
// cell. The analyzer-overview table in the same section has no
// `internal/...` first cell, so it never matches.
var carveRowRE = regexp.MustCompile("^\\|\\s*`(internal/[a-z]+\\.[A-Za-z][A-Za-z.]*)`\\s*\\|([^|]+)\\|")

func parseDesignCarveTable(t *testing.T, path string) map[string][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening DESIGN.md: %v", err)
	}
	defer f.Close()

	out := make(map[string][]string)
	in9 := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			in9 = strings.HasPrefix(line, "## 9.")
			continue
		}
		if !in9 {
			continue
		}
		m := carveRowRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var seq []string
		for _, cell := range strings.Split(m[2], ",") {
			if name := strings.Trim(strings.TrimSpace(cell), "`"); name != "" {
				seq = append(seq, name)
			}
		}
		out[modulePath+"/"+m[1]] = seq
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("found no §9 carve-order rows in DESIGN.md — did the table move out of section 9?")
	}
	return out
}
