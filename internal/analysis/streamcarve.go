package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// StreamcarveAnalyzer enforces the substream carve-order contract in
// simulated-state packages: every function that carves substreams with
// sim.Rand.Split() must appear in carveRegistry
// (streamcarve_registry.go), and its ordered sequence of carve
// destinations must match the registered list exactly. Split() draws
// from the parent stream, so position is seed: reordering two carves,
// inserting one mid-sequence, or taking any other draw from the parent
// between carves re-seeds every later substream. Appending a new
// destination to the registry tail is the sanctioned evolution path
// (byte-safe for all existing substreams); anything else is reported.
var StreamcarveAnalyzer = &analysis.Analyzer{
	Name: "streamcarve",
	Doc: "enforce the append-only substream carve-order registry\n\n" +
		"sim.Rand.Split() sequences in simulated-state packages must\n" +
		"match the committed registry (streamcarve_registry.go) in both\n" +
		"membership and order; parent-stream draws between carves are\n" +
		"also reported. Extend a carve site by appending to the registry\n" +
		"tail (plus the DESIGN.md §9 table); see ANALYSIS.md.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: directiveIndexResult,
	Run:        runStreamcarve,
}

// carveSite is one rand.Split() call: the destination it is assigned
// to (field/variable name, "" when unassigned) and the parent stream
// expression it splits from.
type carveSite struct {
	dest   string
	parent string
	pos    token.Pos
}

// parentDraw is a non-Split sim.Rand method call — a draw that
// advances the stream it is called on.
type parentDraw struct {
	recv   string
	method string
	pos    token.Pos
}

// carveFunc aggregates everything streamcarve observed in one function.
type carveFunc struct {
	key    string // registry key: pkg + "." + display name
	pos    token.Pos
	carves []carveSite
	draws  []parentDraw
}

func runStreamcarve(pass *analysis.Pass) (interface{}, error) {
	if !isSimPackage(pass.Pkg.Path()) {
		return directiveIndex(nil), nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildDirectiveIndex(pass)
	pkg := normalizePkgPath(pass.Pkg.Path())

	fns := make(map[string]*carveFunc)
	var order []string // fns keys in source order

	fnFor := func(stack []ast.Node) *carveFunc {
		name := funcDisplayName(stack)
		if name == "" {
			return nil
		}
		key := pkg + "." + name
		f := fns[key]
		if f == nil {
			f = &carveFunc{key: key}
			for i := len(stack) - 1; i >= 0; i-- {
				if fd, ok := stack[i].(*ast.FuncDecl); ok {
					f.pos = fd.Name.Pos()
					break
				}
			}
			fns[key] = f
			order = append(order, key)
		}
		return f
	}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil), (*ast.FuncDecl)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || isTestFile(pass.Fset, n.Pos()) {
			return true
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			// Register declared functions even if they never Split, so a
			// registered carve site that lost its carves is still seen.
			if _, registered := carveRegistry[pkg+"."+funcDisplayName(stack)]; registered && fd.Body != nil {
				fnFor(stack)
			}
			return true
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isSimRandMethod(fn) {
			return true
		}
		f := fnFor(stack)
		if f == nil {
			return true
		}
		recv := types.ExprString(sel.X)
		if fn.Name() == "Split" {
			f.carves = append(f.carves, carveSite{dest: carveDest(stack, call), parent: recv, pos: call.Pos()})
		} else {
			f.draws = append(f.draws, parentDraw{recv: recv, method: fn.Name(), pos: call.Pos()})
		}
		return true
	})

	for _, key := range order {
		checkCarveFunc(pass, allow, fns[key])
	}
	return allow, nil
}

// checkCarveFunc compares one function's observed carve sequence
// against the registry and reports the first divergence, plus any
// parent-stream draws inside the carve window.
func checkCarveFunc(pass *analysis.Pass, allow directiveIndex, f *carveFunc) {
	reg, registered := carveRegistry[f.key]

	if !registered {
		for _, c := range f.carves {
			if allow.allowed(pass, c.pos) {
				continue
			}
			pass.Reportf(c.pos,
				"streamcarve: unregistered substream carve site %s (Split() -> %s) — substream carve order is a committed byte-compatibility contract; register the function's full carve sequence in internal/analysis/streamcarve_registry.go and the DESIGN.md §9 table (see ANALYSIS.md streamcarve)",
				f.key, describeDest(c.dest))
			break // one report per function, not one per carve
		}
		return
	}

	if len(f.carves) == 0 {
		if !allow.allowed(pass, f.pos) {
			pass.Reportf(f.pos,
				"streamcarve: registered carve site %s no longer carves any substreams, but the registry lists %d (%s) — deleting or moving a carve sequence re-seeds every registered substream; update internal/analysis/streamcarve_registry.go and the DESIGN.md §9 table deliberately, with a golden refresh",
				f.key, len(reg), strings.Join(reg, ", "))
		}
		return
	}

	for i, c := range f.carves {
		if i >= len(reg) {
			// Extra carves past the registered tail: the one sanctioned
			// evolution path, provided the registry is extended with it.
			if !allow.allowed(pass, c.pos) {
				pass.Reportf(c.pos,
					"streamcarve: substream %s is carved after the %d registered substreams of %s but is not in the registry — appending is the sanctioned (byte-safe) evolution path: add %q to the tail of the registry entry in internal/analysis/streamcarve_registry.go and to the DESIGN.md §9 table",
					describeDest(c.dest), len(reg), f.key, c.dest)
			}
			break
		}
		if c.dest != reg[i] {
			if !allow.allowed(pass, c.pos) {
				pass.Reportf(c.pos,
					"streamcarve: carve order mismatch in %s at position %d: this Split() assigns to %s but the registry lists %q — substream carve order is append-only (position is seed); restore the committed order, or update internal/analysis/streamcarve_registry.go + the DESIGN.md §9 table only as a deliberate byte-compatibility break",
					f.key, i+1, describeDest(c.dest), reg[i])
			}
			return // later positions are all shifted; one report is enough
		}
	}

	if len(f.carves) < len(reg) {
		last := f.carves[len(f.carves)-1]
		if !allow.allowed(pass, last.pos) {
			pass.Reportf(last.pos,
				"streamcarve: %s carves only %d of the %d registered substreams (missing: %s) — a shrunk carve sequence re-seeds nothing today but breaks the committed contract; update internal/analysis/streamcarve_registry.go and the DESIGN.md §9 table deliberately",
				f.key, len(f.carves), len(reg), strings.Join(reg[len(f.carves):], ", "))
		}
	}

	// Draws from a carve parent inside the carve window: between the
	// first and last Split of the sequence, any other method call on
	// the same parent stream advances it and re-seeds later carves.
	first, last := f.carves[0].pos, f.carves[len(f.carves)-1].pos
	parents := make(map[string]bool)
	for _, c := range f.carves {
		parents[c.parent] = true
	}
	for _, d := range f.draws {
		if d.pos > first && d.pos < last && parents[d.recv] {
			if !allow.allowed(pass, d.pos) {
				pass.Reportf(d.pos,
					"streamcarve: %s(...) draws from parent stream %q between substream carves in %s — every carve after this draw is re-seeded; draw from the parent only after the carve sequence completes (or from a carved substream)",
					d.method, d.recv, f.key)
			}
		}
	}
}

// describeDest renders a carve destination for diagnostics.
func describeDest(dest string) string {
	if dest == "" {
		return "an unnamed destination"
	}
	return fmt.Sprintf("%q", dest)
}

// carveDest resolves the destination name a Split() call is assigned
// to: the field or variable on the left of the assignment
// (i.spikeRand = i.rnd.Split() -> "spikeRand"), or the key of the
// composite-literal element (rand: node.Rand().Split() -> "rand").
// Returns "" when the result is passed or dropped without a named
// destination.
func carveDest(stack []ast.Node, call *ast.CallExpr) string {
	child := ast.Node(call)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for j, rhs := range p.Rhs {
				if rhs != child {
					continue
				}
				if j >= len(p.Lhs) {
					return ""
				}
				switch l := p.Lhs[j].(type) {
				case *ast.Ident:
					return l.Name
				case *ast.SelectorExpr:
					return l.Sel.Name
				}
				return ""
			}
			return ""
		case *ast.KeyValueExpr:
			if p.Value == child {
				if id, ok := p.Key.(*ast.Ident); ok {
					return id.Name
				}
			}
			return ""
		case *ast.CallExpr, *ast.BlockStmt, *ast.ReturnStmt:
			return "" // argument, statement, or return position
		}
		child = stack[i]
	}
	return ""
}

// isSimRandMethod reports whether fn is a method on internal/sim's
// Rand type.
func isSimRandMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Rand" || named.Obj().Pkg() == nil {
		return false
	}
	return normalizePkgPath(named.Obj().Pkg().Path()) == modulePath+"/internal/sim"
}
