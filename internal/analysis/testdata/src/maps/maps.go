// Shadow of the standard-library maps package for the maporder
// goldens. The atest loader resolves testdata packages before the
// standard library, so these goldens type-check identically on
// toolchains that predate the real package (and independently of its
// iterator-vs-slice signature evolution) while exercising the same
// import path the analyzer keys on. Non-generic, specialized to the
// golden's element types.
package maps

// Keys returns the keys of m in unspecified (map) order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
