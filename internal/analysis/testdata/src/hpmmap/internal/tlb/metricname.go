// Golden testdata for the metricname analyzer: registrations on a
// metrics.Registry must use internal/metrics constants.
package tlb

import "hpmmap/internal/metrics"

const localName = "tlb_local_hits_total"

type stats struct{ hits uint64 }

type otherRegistry struct{}

// Histogram on a non-Registry receiver must not be confused with the
// contract-bound method (the trace.Recorder false-positive guard).
func (o *otherRegistry) Histogram(name string, lo, hi int) string { return name }

func register(reg *metrics.Registry, s *stats) {
	// Constants from internal/metrics: fine.
	reg.CounterFunc(metrics.TLBSmallHitsTotal, func() uint64 { return s.hits })
	_ = reg.Counter(metrics.BuddyAllocsTotal)

	// Raw string literal: flagged.
	_ = reg.Counter("tlb_adhoc_total") // want `metricname: string literal "tlb_adhoc_total" in Counter\(...\)`

	// A literal smuggled into a concatenation: flagged.
	_ = reg.Gauge(metrics.TLBSmallHitsTotal + "_zone0") // want `metricname: string literal "_zone0" in Gauge\(...\)`

	// A constant declared outside internal/metrics: flagged.
	_ = reg.Histogram(localName) // want `metricname: constant localName declared outside internal/metrics in Histogram\(...\)`

	// Dynamic names are left to the runtime contract test.
	name := pick()
	reg.GaugeFunc(name, func() float64 { return 0 })

	// Non-Registry receivers are out of scope.
	o := &otherRegistry{}
	_ = o.Histogram("anything", 14, 60)

	// The escape hatch.
	_ = reg.Counter("debug_scratch_total") //detsim:allow throwaway local-profiling counter, never snapshotted into an artifact
}

func pick() string { return localName }
