// Golden testdata for streamcarve: carving a substream in a function
// that is not in the registry, with and without //detsim:allow.
package cluster

import "hpmmap/internal/sim"

type rankSeeds struct {
	commRand *sim.Rand
}

func seedRanks(r *sim.Rand) *rankSeeds {
	s := &rankSeeds{}
	s.commRand = r.Split() // want `streamcarve: unregistered substream carve site hpmmap/internal/cluster\.seedRanks \(Split\(\) -> "commRand"\)`
	return s
}

func seedScratch(r *sim.Rand) *sim.Rand {
	//detsim:allow scratch stream for a doc example; never reaches simulated state
	scratch := r.Split()
	return scratch
}
