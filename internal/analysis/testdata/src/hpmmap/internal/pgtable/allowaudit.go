// Testdata for allowaudit, checked programmatically in TestAllowaudit
// rather than via // want comments: the stale diagnostic lands on the
// //detsim:allow line itself, where a want comment cannot coexist
// with the directive.
package pgtable

// A live directive: maporder suppresses a float-accumulation finding
// here, so the directive is consumed and allowaudit stays quiet.
func liveDirective(m map[int]float64) float64 {
	var total float64
	//detsim:allow doc example: total feeds no artifact
	for _, v := range m {
		total += v
	}
	return total
}

// A stale directive: nothing below it triggers any analyzer, so the
// suppression is dead weight and allowaudit flags it.
func staleDirective(x int) int {
	//detsim:allow doc example: nothing here needs suppressing
	return x + 1
}
