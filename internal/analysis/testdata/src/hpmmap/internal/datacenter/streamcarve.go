// Golden testdata for streamcarve: the registered datacenter.New
// sequence fully matched, then one extra substream carved past the
// registered tail without a registry entry — the evolution path the
// registry exists to make deliberate.
package datacenter

import "hpmmap/internal/sim"

type Agent struct {
	rnd          *sim.Rand
	churnRand    *sim.Rand
	specRand     *sim.Rand
	lifeRand     *sim.Rand
	residentRand *sim.Rand
	prioRand     *sim.Rand
	backoffRand  *sim.Rand
	extraRand    *sim.Rand
}

func New(seed uint64) *Agent {
	a := &Agent{rnd: sim.NewRand(seed)}
	a.churnRand = a.rnd.Split()
	a.specRand = a.rnd.Split()
	a.lifeRand = a.rnd.Split()
	a.residentRand = a.rnd.Split()
	a.prioRand = a.rnd.Split()
	a.backoffRand = a.rnd.Split()
	a.extraRand = a.rnd.Split() // want `streamcarve: substream "extraRand" is carved after the 6 registered substreams of hpmmap/internal/datacenter\.New but is not in the registry`
	return a
}
