// Golden testdata for streamcarve: the registered core.Install site
// no longer carves anything — a lost substream.
package core

import "hpmmap/internal/sim"

type Manager struct {
	rand *sim.Rand
}

func Install(r *sim.Rand) (*Manager, error) { // want `streamcarve: registered carve site hpmmap/internal/core\.Install no longer carves any substreams, but the registry lists 1 \(rand\)`
	return &Manager{rand: sim.NewRand(7)}, nil
}
