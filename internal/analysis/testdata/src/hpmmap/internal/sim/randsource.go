// Golden testdata: hpmmap/internal/sim is the sanctioned randomness
// root — the SplitMix64 streams are seeded here, and it is the one
// package free to reference other randomness sources (e.g. in
// documentation comparisons). No diagnostics expected.
package sim

import "math/rand"

func CompareAgainstMathRand(seed int64) uint64 {
	return rand.New(rand.NewSource(seed)).Uint64()
}
