// Minimal stand-in for the real sim.Rand so streamcarve goldens can
// type-check Split/draw sequences under the real import path.
package sim

type Rand struct{ s uint64 }

func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return r.s
}

func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }
