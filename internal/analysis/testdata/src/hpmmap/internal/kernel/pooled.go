// Minimal pooled-type declarations matching the real kernel package:
// poolescape keys pooled types by package path + name, so the hugetlb
// golden's imports resolve to these under the real import path. The
// holders here (Process.tasks, Task.Proc) are themselves sanctioned
// registry entries, so this file adds no diagnostics to the kernel
// goldens.
package kernel

type Process struct {
	PID   int
	tasks []*Task
}

type Task struct {
	TID  int
	Proc *Process
}

// Tasks exposes the task list transiently (callers must not retain).
func (p *Process) Tasks() []*Task { return p.tasks }
