// Golden testdata for the wallclock analyzer: hpmmap/internal/kernel
// is a simulated-state package, so every wall-clock reference below
// must be flagged unless annotated.
package kernel

import "time"

func clockReads() time.Duration {
	start := time.Now() // want `wallclock: time.Now in simulated-state package`
	_ = start
	time.Sleep(time.Millisecond)  // want `wallclock: time.Sleep in simulated-state package`
	d := time.Since(start)        // want `wallclock: time.Since in simulated-state package`
	<-time.After(time.Second)     // want `wallclock: time.After in simulated-state package`
	_ = time.Tick(time.Second)    // want `wallclock: time.Tick in simulated-state package`
	_ = time.NewTicker(time.Hour) // want `wallclock: time.NewTicker in simulated-state package`
	return d
}

// Passing the function as a value is just as nondeterministic as
// calling it.
func clockAsValue() func() time.Time {
	return time.Now // want `wallclock: time.Now in simulated-state package`
}

// Duration arithmetic and parsing are plain math — never flagged.
func durationsAreFine() time.Duration {
	d, _ := time.ParseDuration("3ms")
	return d + 2*time.Second
}

// The escape hatch: an allow directive with a reason suppresses the
// finding, on the same line or the line above.
func annotated() {
	_ = time.Now() //detsim:allow boot-time banner only, never reaches simulated state
	//detsim:allow boot-time banner only, never reaches simulated state
	_ = time.Now()
}

// A directive without a reason is itself a finding (and suppresses the
// underlying diagnostic so each site gets exactly one message).
func annotatedWithoutReason() {
	//detsim:allow
	_ = time.Now() // want `detsim:allow directive requires a reason`
}
