// Golden testdata for the wallclock analyzer's ledger exemption:
// hpmmap/internal/ledger is a simulated-state package, so clock reads
// in this file (the canonical-projection side) are violations — the
// exemption is scoped to host.go alone, and a wall-clock call drifting
// into the canonical writer must be caught.
package ledger

import "time"

// Record is a stand-in for the real JSONL record.
type Record struct {
	T     string
	Stamp string
}

func canonicalRecord() Record {
	// Seeded violation: timestamping a canonical record would break the
	// byte-identity contract, and the analyzer must say so.
	now := time.Now() // want `wallclock: time.Now in simulated-state package`
	return Record{T: "cell_finish", Stamp: now.String()}
}

func canonicalWait() {
	time.Sleep(time.Millisecond) // want `wallclock: time.Sleep in simulated-state package`
}
