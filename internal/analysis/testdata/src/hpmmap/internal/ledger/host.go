// The host-annex writer is the one sanctioned wall-clock site in the
// ledger package: host records are excluded from the canonical
// projection, so nothing here can reach a deterministic artifact. No
// diagnostics are expected in this file.
package ledger

import "time"

func hostManifest() Record {
	return Record{T: "host_manifest", Stamp: time.Now().UTC().Format(time.RFC3339Nano)}
}

func cellWall(start time.Time) time.Duration {
	return time.Since(start)
}
