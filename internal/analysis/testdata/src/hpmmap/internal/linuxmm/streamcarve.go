// Golden testdata for streamcarve: the registered linuxmm.New site
// assigns its Split to the wrong destination — a carve-order mismatch
// at position 1.
package linuxmm

import "hpmmap/internal/sim"

type Manager struct {
	rand      *sim.Rand
	wrongDest *sim.Rand
}

func New(r *sim.Rand) *Manager {
	m := &Manager{}
	m.wrongDest = r.Split() // want `streamcarve: carve order mismatch in hpmmap/internal/linuxmm\.New at position 1: this Split\(\) assigns to "wrongDest" but the registry lists "rand"`
	return m
}
