// Golden testdata: hpmmap/internal/runner is allowlisted by package —
// wall time here annotates human-facing progress/ETA output above the
// engines and never feeds an artifact. No diagnostics expected.
package runner

import "time"

func ProgressETA(done, total int, start time.Time) time.Duration {
	if done == 0 {
		return 0
	}
	elapsed := time.Since(start)
	return elapsed / time.Duration(done) * time.Duration(total-done)
}

func Stamp() time.Time { return time.Now() }
