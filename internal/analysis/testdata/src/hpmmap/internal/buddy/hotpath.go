// Golden testdata for hotpath: every forbidden construct inside
// annotated functions, plus the exemptions — error paths, the
// s = s[:0] capacity-reuse discipline, local-only closures,
// immediately-invoked literals, unannotated functions, and
// //detsim:allow.
package buddy

import "fmt"

type pool struct {
	items  []uint64
	run    []uint64
	seen   map[uint64]bool
	emit   func(uint64)
	pushes int
}

func noop() {}

//detsim:hotpath
func (p *pool) push(v uint64) {
	p.items = append(p.items, v) // want `hotpath: append to escaping slice "p\.items" without the s = s\[:0\] reuse discipline`
}

// The capacity-reuse discipline: truncate, then refill. Not reported.
//
//detsim:hotpath
func (p *pool) refill(vs []uint64) {
	p.run = p.run[:0]
	for _, v := range vs {
		p.run = append(p.run, v)
	}
}

//detsim:hotpath
func (p *pool) bad(v uint64) string {
	defer noop()                      // want `hotpath: defer \(allocates a deferred-call record per invocation\)`
	s := fmt.Sprintf("%d", v)         // want `hotpath: fmt\.Sprintf call \(formats and allocates\)`
	s = s + "!"                       // want `hotpath: string concatenation \(allocates the result\)`
	p.seen = map[uint64]bool{v: true} // want `hotpath: map literal \(allocates a hash table\)`
	m := make(map[uint64]bool)        // want `hotpath: make\(map\) \(allocates a hash table\)`
	for k := range m {                // want `hotpath: map iteration \(randomised order, per-iteration bucket walking\)`
		_ = k
	}
	return s
}

//detsim:hotpath
func (p *pool) concat(msg string) string {
	msg += "!" // want `hotpath: string concatenation with \+= \(allocates the result\)`
	return msg
}

//detsim:hotpath
func (p *pool) box(v uint64) {
	var sink interface{}
	sink = v // want `hotpath: interface boxing: storing uint64 into interface "sink"`
	_ = sink
}

//detsim:hotpath
func (p *pool) hooks(v uint64) uint64 {
	// A literal bound to a local and only invoked does not escape.
	inc := func(x uint64) uint64 { return x + 1 }
	// An immediately-invoked literal is a direct call, not a closure.
	base := func() uint64 { return 1 }()
	p.emit = func(x uint64) { p.pushes = int(x) } // want `hotpath: function literal in an escaping position \(allocates a closure\)`
	return inc(v) + base
}

// Error paths are off the hot path by definition.
//
//detsim:hotpath
func (p *pool) pop() (uint64, error) {
	if len(p.items) == 0 {
		return 0, fmt.Errorf("pool empty after %d pushes", p.pushes)
	}
	v := p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	return v, nil
}

// panic/invariant arguments are likewise failure-path.
//
//detsim:hotpath
func (p *pool) check(v uint64) {
	if p.seen == nil {
		panic(fmt.Sprintf("unseeded pool: %d", v))
	}
}

// Unannotated functions are free to allocate.
func (p *pool) slowPath(v uint64) string {
	return fmt.Sprintf("%d", v)
}

// The escape hatch: pooled growth with a documented reuse discipline.
//
//detsim:hotpath
func (p *pool) grow(v uint64) {
	//detsim:allow pool warm-up: capacity amortises to 0 B/op (doc example)
	p.items = append(p.items, v)
}
