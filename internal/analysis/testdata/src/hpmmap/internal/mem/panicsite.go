// Golden testdata for the panicsite analyzer. hpmmap/internal/mem is a
// simulated-state package; its sanctioned programmer-error sites
// (DESIGN.md §8) are allowlisted by enclosing function: NewZone has 2,
// Zone.AllocPages has 1.
package mem

import "fmt"

type Zone struct{ pages uint64 }

// NewZone's first two panics are the sanctioned constructor-argument
// checks; a third panic in the same function exceeds the allowlisted
// count and is flagged.
func NewZone(id int, base, pages uint64) *Zone {
	if pages == 0 {
		panic("mem: zero-size zone")
	}
	if base%2 != 0 {
		panic(fmt.Sprintf("mem: misaligned base %d", base))
	}
	if id < 0 {
		panic("mem: negative id") // want `panicsite: raw panic in simulated-state package hpmmap/internal/mem \(func NewZone\)`
	}
	return &Zone{pages: pages}
}

// Zone.AllocPages: one sanctioned site.
func (z *Zone) AllocPages(order int) uint64 {
	if order < 0 {
		panic("mem: negative order")
	}
	return z.pages >> uint(order)
}

// An unlisted function may not panic at all — simulated-state
// corruption must raise invariant.Fail* instead.
func (z *Zone) release(n uint64) {
	if n > z.pages {
		panic("mem: releasing more pages than owned") // want `panicsite: raw panic in simulated-state package hpmmap/internal/mem \(func Zone.release\)`
	}
	z.pages -= n
}

// The escape hatch still works for plumbing that re-raises recovered
// values.
func contain(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			//detsim:allow re-raise of a recovered foreign panic, not a new failure mode
			panic(r)
		}
	}()
	fn()
	return nil
}
