// Golden-testdata stand-in for the real hpmmap/internal/metrics
// package: just enough surface (Registry registration methods plus a
// couple of names.go-style constants) for the metricname analyzer's
// receiver and constant-origin checks to engage.
package metrics

const (
	TLBSmallHitsTotal = "tlb_small_hits_total"
	BuddyAllocsTotal  = "buddy_allocs_total"
)

type Counter struct{ v uint64 }

func (c *Counter) Add(n uint64) { c.v += n }

type Gauge struct{ v float64 }

type Histogram struct{ n uint64 }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter              { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                  { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram          { return &Histogram{} }
func (r *Registry) CounterFunc(name string, fn func() uint64) {}
func (r *Registry) GaugeFunc(name string, fn func() float64)  {}
