// Minimal stand-in for the real vma package: VMA is the sealed pooled
// type, and Space's own fields demonstrate that the owning package is
// exempt from both the holder rule and the seal (its pool mechanics
// ARE the ownership the seal protects).
package vma

type VMA struct {
	Start, End uint64
}

type Space struct {
	vmas []*VMA
	pool []*VMA
}

func (s *Space) Len() int { return len(s.vmas) }
