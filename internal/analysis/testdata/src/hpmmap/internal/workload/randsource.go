// Golden testdata for the randsource analyzer: hpmmap/internal/workload
// is outside internal/sim, so foreign randomness imports are flagged.
package workload

import (
	crand "crypto/rand"   // want `randsource: import of crypto/rand outside internal/sim`
	"math/rand"           // want `randsource: import of math/rand outside internal/sim`
	randv2 "math/rand/v2" // want `randsource: import of math/rand/v2 outside internal/sim`
)

func Draw() (uint64, uint64, error) {
	var b [8]byte
	_, err := crand.Read(b[:])
	return rand.Uint64(), randv2.Uint64(), err
}
