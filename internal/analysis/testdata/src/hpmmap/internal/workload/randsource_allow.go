package workload

import (
	insecure "math/rand" //detsim:allow one-off shuffling of a doc example, output discarded
	_ "sort"
)

func DocShuffle(n int) int { return insecure.Intn(n) }
