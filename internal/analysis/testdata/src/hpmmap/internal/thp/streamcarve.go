// Golden testdata for streamcarve: the registered thp.Start site in
// its committed composite-literal form. No diagnostics expected.
package thp

import "hpmmap/internal/sim"

type Daemon struct {
	rand *sim.Rand
}

func Start(r *sim.Rand) *Daemon {
	return &Daemon{rand: r.Split()}
}
