// Golden testdata for streamcarve: the registered chaos.New carve
// sequence in the committed order, with a forbidden parent-stream draw
// inserted inside the carve window, plus an unregistered carve site.
package chaos

import "hpmmap/internal/sim"

type Injector struct {
	seed          uint64
	rnd           *sim.Rand
	spikeRand     *sim.Rand
	buddyRand     *sim.Rand
	swapRand      *sim.Rand
	pcRand        *sim.Rand
	tlbRand       *sim.Rand
	stragglerRand *sim.Rand
	nodefailRand  *sim.Rand
	warmup        int
}

func New(seed uint64) *Injector {
	i := &Injector{seed: seed}
	i.rnd = sim.NewRand(i.seed)
	i.spikeRand = i.rnd.Split()
	i.buddyRand = i.rnd.Split()
	i.swapRand = i.rnd.Split()
	i.warmup = i.rnd.Intn(8) // want `streamcarve: Intn\(\.\.\.\) draws from parent stream "i\.rnd" between substream carves`
	i.pcRand = i.rnd.Split()
	i.tlbRand = i.rnd.Split()
	i.stragglerRand = i.rnd.Split()
	i.nodefailRand = i.rnd.Split()
	return i
}
