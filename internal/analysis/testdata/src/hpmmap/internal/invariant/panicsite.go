// Golden testdata: hpmmap/internal/invariant is the raising mechanism
// for structured violations — panicking is how Violations propagate —
// so the whole package is exempt from panicsite. No diagnostics
// expected.
package invariant

type Violation struct{ Check, Detail string }

func Fail(check, detail string) {
	panic(&Violation{Check: check, Detail: detail})
}

func rethrow(r interface{}) {
	panic(r)
}
