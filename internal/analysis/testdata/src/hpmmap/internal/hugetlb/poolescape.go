// Golden testdata for poolescape: unsanctioned holders of pooled
// kernel objects in every holder position, a sealed-type mention, a
// transient (unflagged) use, and the //detsim:allow escape hatch.
package hugetlb

import (
	"hpmmap/internal/kernel"
	"hpmmap/internal/vma"
)

// An unsanctioned struct field holding a pooled pointer.
type pools struct {
	owner *kernel.Process // want `poolescape: field pools\.owner holds pooled kernel\.Process`
	pages int
}

// Containers count: a map from zone to task slices still holds the
// tasks past reap.
type zoneIndex struct {
	byZone map[int][]*kernel.Task // want `poolescape: field zoneIndex\.byZone holds pooled kernel\.Task`
}

// A named container type is a holder even without a struct around it.
type procRing []*kernel.Process // want `poolescape: named container type procRing holds pooled kernel\.Process`

// A package-level variable survives every reap by construction.
var lastFaulting *kernel.Process // want `poolescape: package-level variable lastFaulting holds pooled kernel\.Process`

// Transient use — parameters, results, locals — is free.
func transfer(p *kernel.Process, t *kernel.Task) *kernel.Process {
	_ = t
	return p
}

// The escape hatch: a documented clearing discipline.
type debugHook struct {
	//detsim:allow cleared synchronously in Release before any reap (doc example)
	last *kernel.Task
}

// Sealed types must not be mentioned outside their owner at all, even
// in transient positions.
func sealedPeek() {
	var cached *vma.VMA // want `poolescape: sealed pooled type hpmmap/internal/vma\.VMA mentioned outside its owning package`
	_ = cached
}
