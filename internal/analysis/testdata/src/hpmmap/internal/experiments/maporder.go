// Golden testdata for the maporder analyzer. The package path places
// it in the module, which is all maporder requires — map-iteration
// order is a hazard everywhere an artifact is produced.
package experiments

import (
	"fmt"
	"io"
	"maps"
	"slices"
	"sort"
)

// Appending to an outer slice in map order, never sorted: flagged.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `maporder: map iteration order is randomised, but this loop appends to "keys"`
		keys = append(keys, k)
	}
	return keys
}

// The sorted-keys idiom: collect, sort, then index. Safe.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator also counts.
func collectSortSlice(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Appending structs to a field of an outer variable, sorted afterwards
// on the same expression: safe (the metrics.Snapshot pattern).
type snapshot struct{ rows []string }

func snapshotPattern(m map[string]int) snapshot {
	var s snapshot
	for k := range m {
		s.rows = append(s.rows, k)
	}
	sort.Strings(s.rows)
	return s
}

// Same shape without the sort: flagged.
func snapshotUnsorted(m map[string]int) snapshot {
	var s snapshot
	for k := range m { // want `maporder: map iteration order is randomised, but this loop appends to "s.rows"`
		s.rows = append(s.rows, k)
	}
	return s
}

// Float accumulation over map order perturbs the rounding sequence.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `maporder: map iteration order is randomised, but this loop accumulates float "sum"`
		sum += v
	}
	return sum
}

// Integer accumulation is order-insensitive: safe.
func intSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// String concatenation in map order: flagged.
func concat(m map[string]string) string {
	var out string
	for _, v := range m { // want `maporder: map iteration order is randomised, but this loop concatenates onto string "out"`
		out += v
	}
	return out
}

// Emitting output inside the loop: flagged.
func report(w io.Writer, m map[string]int) {
	for k, v := range m { // want `maporder: map iteration order is randomised, but this loop calls Fprintf\(...\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keyed writes to another map are order-insensitive: safe.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Guarded last-writer-wins (min/max idiom) is deterministic: safe.
func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Ranging over maps.Keys inherits the map's randomised order: the
// same body rules apply.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for _, k := range maps.Keys(m) { // want `maporder: map iteration order is randomised, but this loop appends to "keys"`
		keys = append(keys, k)
	}
	return keys
}

// slices.Sorted over maps.Keys is the blessed iteration idiom: the
// source is provably sorted, so even emitting output is safe.
func keysSorted(w io.Writer, m map[string]int) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Collect-then-slices.SortFunc counts as a sort of the target.
func collectSortFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b string) int {
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
	return keys
}

// slices.SortStableFunc likewise.
func collectSortStableFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortStableFunc(keys, func(a, b string) int {
		if a < b {
			return -1
		}
		return 1
	})
	return keys
}

// The escape hatch.
func annotated(m map[string]float64) float64 {
	var sum float64
	//detsim:allow debug-only estimate, printed to stderr and never written to an artifact
	for _, v := range m {
		sum += v
	}
	return sum
}
