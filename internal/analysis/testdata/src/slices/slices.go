// Shadow of the standard-library slices package for the maporder
// goldens — see testdata/src/maps/maps.go for why. Non-generic,
// specialized to []string; sorting is a dependency-free insertion
// sort (the goldens only type-check and analyze, they never run).
package slices

// Sort sorts s in ascending order.
func Sort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SortFunc sorts s by cmp.
func SortFunc(s []string, cmp func(a, b string) int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && cmp(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SortStableFunc sorts s by cmp, keeping equal elements in order.
func SortStableFunc(s []string, cmp func(a, b string) int) {
	SortFunc(s, cmp)
}

// Sorted returns a sorted copy of s.
func Sorted(s []string) []string {
	out := append([]string(nil), s...)
	Sort(out)
	return out
}
