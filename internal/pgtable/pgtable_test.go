package pgtable

import (
	"testing"
	"testing/quick"

	"hpmmap/internal/mem"
	"hpmmap/internal/sim"
)

func TestMapWalk4K(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 1234, Page4K, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	m, ok := pt.Walk(0x4000_0000)
	if !ok {
		t.Fatal("walk missed")
	}
	if m.PFN != 1234 || m.Size != Page4K || m.Prot != ProtRead|ProtWrite {
		t.Fatalf("mapping = %+v", m)
	}
	if m.Levels != 4 {
		t.Fatalf("4K walk depth %d, want 4", m.Levels)
	}
	if pt.Mapped4K != 1 || pt.MappedBytes() != mem.PageSize {
		t.Fatalf("accounting: %d pages, %d bytes", pt.Mapped4K, pt.MappedBytes())
	}
	// Root + PDPT + PD + PT.
	if pt.TablePages != 4 {
		t.Fatalf("table pages %d, want 4", pt.TablePages)
	}
}

func TestMapWalk2M(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 512, Page2M, ProtRead); err != nil {
		t.Fatal(err)
	}
	m, ok := pt.Walk(0x4000_0000 + 0x1000)
	if !ok {
		t.Fatal("walk inside 2MB page missed")
	}
	if m.Size != Page2M || m.Levels != 3 {
		t.Fatalf("mapping = %+v", m)
	}
	if pt.TablePages != 3 {
		t.Fatalf("table pages %d, want 3 (no PT needed)", pt.TablePages)
	}
	pfn, ok := pt.Translate(0x4000_0000 + 5*mem.PageSize)
	if !ok || pfn != 512+5 {
		t.Fatalf("Translate = %d, %v", pfn, ok)
	}
}

func TestMapWalk1G(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 0, Page1G, ProtRead); err != nil {
		t.Fatal(err)
	}
	m, ok := pt.Walk(0x4000_0000 + mem.LargePageSize)
	if !ok || m.Size != Page1G || m.Levels != 2 {
		t.Fatalf("1G walk = %+v, %v", m, ok)
	}
}

func TestMapAlignmentEnforced(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1000, 0, Page2M, ProtRead); err == nil {
		t.Fatal("misaligned 2MB map accepted")
	}
	if err := pt.Map(0x123, 0, Page4K, ProtRead); err == nil {
		t.Fatal("misaligned 4K map accepted")
	}
}

func TestDoubleMapRejected(t *testing.T) {
	pt := New()
	if err := pt.Map(0, 1, Page4K, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0, 2, Page4K, ProtRead); err == nil {
		t.Fatal("double map accepted")
	}
	// 2MB over existing 4K region must fail.
	if err := pt.Map(0, 3, Page2M, ProtRead); err == nil {
		t.Fatal("2MB map over 4K mappings accepted")
	}
	// 4K under existing 2MB leaf must fail.
	if err := pt.Map(0x4000_0000, 4, Page2M, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x4000_0000+0x1000, 5, Page4K, ProtRead); err == nil {
		t.Fatal("4K map under a 2MB leaf accepted")
	}
}

func TestWalkMiss(t *testing.T) {
	pt := New()
	if _, ok := pt.Walk(0xdead000); ok {
		t.Fatal("walk on empty table hit")
	}
	if _, ok := pt.Translate(0xdead000); ok {
		t.Fatal("translate on empty table hit")
	}
}

func TestUnmapReturnsFrameAndPrunes(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 777, Page4K, ProtRead); err != nil {
		t.Fatal(err)
	}
	pfn, err := pt.Unmap(0x4000_0000, Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if pfn != 777 {
		t.Fatalf("unmap returned pfn %d", pfn)
	}
	if _, ok := pt.Walk(0x4000_0000); ok {
		t.Fatal("walk hit after unmap")
	}
	if pt.TablePages != 1 {
		t.Fatalf("table pages %d after prune, want 1 (root only)", pt.TablePages)
	}
	if pt.Mapped4K != 0 {
		t.Fatalf("mapped4K = %d", pt.Mapped4K)
	}
}

func TestUnmapWrongSizeFails(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 1, Page2M, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Unmap(0x4000_0000, Page4K); err == nil {
		t.Fatal("unmap 4K of a 2MB leaf succeeded")
	}
	if _, err := pt.Unmap(0x5000_0000, Page2M); err == nil {
		t.Fatal("unmap of unmapped address succeeded")
	}
}

func TestPrunePreservesSiblings(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 1, Page4K, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x4000_1000, 2, Page4K, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Unmap(0x4000_0000, Page4K); err != nil {
		t.Fatal(err)
	}
	if _, ok := pt.Walk(0x4000_1000); !ok {
		t.Fatal("sibling mapping lost after unmap")
	}
	if pt.TablePages != 4 {
		t.Fatalf("table pages %d, want 4 (PT still live)", pt.TablePages)
	}
}

func TestProtect(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 1, Page2M, ProtRead); err != nil {
		t.Fatal(err)
	}
	ps, err := pt.Protect(0x4000_0000+0x1000, ProtRead|ProtWrite|ProtLocked)
	if err != nil {
		t.Fatal(err)
	}
	if ps != Page2M {
		t.Fatalf("Protect size %v", ps)
	}
	m, _ := pt.Walk(0x4000_0000)
	if m.Prot != ProtRead|ProtWrite|ProtLocked {
		t.Fatalf("prot = %v", m.Prot)
	}
	if _, err := pt.Protect(0x9000_0000, ProtRead); err == nil {
		t.Fatal("protect of unmapped address succeeded")
	}
}

func TestSplit2M(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000_0000, 1000, Page2M, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	before := pt.TablePages
	if err := pt.Split2M(0x4000_0000); err != nil {
		t.Fatal(err)
	}
	if pt.TablePages != before+1 {
		t.Fatalf("split did not add a PT page")
	}
	if pt.Mapped2M != 0 || pt.Mapped4K != 512 {
		t.Fatalf("accounting after split: 2M=%d 4K=%d", pt.Mapped2M, pt.Mapped4K)
	}
	// Every 4K piece maps to the right frame with the same prot.
	for i := uint64(0); i < 512; i++ {
		m, ok := pt.Walk(VirtAddr(0x4000_0000 + i*mem.PageSize))
		if !ok || m.Size != Page4K || m.PFN != mem.PFN(1000+i) || m.Prot != ProtRead|ProtWrite {
			t.Fatalf("piece %d: %+v, %v", i, m, ok)
		}
	}
	// Total mapped bytes unchanged.
	if pt.MappedBytes() != mem.LargePageSize {
		t.Fatalf("mapped bytes %d", pt.MappedBytes())
	}
}

func TestSplit2MRejectsNon2M(t *testing.T) {
	pt := New()
	if err := pt.Split2M(0x4000_0000); err == nil {
		t.Fatal("split of unmapped address succeeded")
	}
	if err := pt.Map(0x4000_0000, 1, Page4K, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := pt.Split2M(0x4000_0000); err == nil {
		t.Fatal("split of 4K region succeeded")
	}
	if err := pt.Split2M(0x4000_0123); err == nil {
		t.Fatal("split of misaligned address succeeded")
	}
}

func TestRangeOrdered(t *testing.T) {
	pt := New()
	addrs := []VirtAddr{0x7000_0000_0000, 0x4000_0000, 0x4020_0000, 0x1000}
	for i, va := range addrs {
		ps := Page4K
		if uint64(va)%mem.LargePageSize == 0 {
			ps = Page2M
		}
		if err := pt.Map(va, mem.PFN(i), ps, ProtRead); err != nil {
			t.Fatal(err)
		}
	}
	var got []VirtAddr
	pt.Range(func(va VirtAddr, m Mapping) bool {
		got = append(got, va)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("Range visited %d mappings", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Range not ascending: %v", got)
		}
	}
	// Early stop.
	count := 0
	pt.Range(func(va VirtAddr, m Mapping) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestUnmapRange(t *testing.T) {
	pt := New()
	base := VirtAddr(0x4000_0000)
	for i := uint64(0); i < 8; i++ {
		if err := pt.Map(base+VirtAddr(i*mem.LargePageSize), mem.PFN(i*512), Page2M, ProtRead); err != nil {
			t.Fatal(err)
		}
	}
	released := pt.UnmapRange(base+VirtAddr(2*mem.LargePageSize), 3*mem.LargePageSize)
	if len(released) != 3 {
		t.Fatalf("released %d pages, want 3", len(released))
	}
	for _, r := range released {
		if r.Size != Page2M {
			t.Fatalf("released %v", r)
		}
	}
	if pt.Mapped2M != 5 {
		t.Fatalf("remaining 2M mappings %d", pt.Mapped2M)
	}
	if _, ok := pt.Walk(base + VirtAddr(2*mem.LargePageSize)); ok {
		t.Fatal("unmapped address still walks")
	}
	if _, ok := pt.Walk(base); !ok {
		t.Fatal("surviving mapping lost")
	}
}

// Property: map/walk/unmap round-trips across random canonical addresses
// and page sizes.
func TestMapUnmapRoundTripProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRand(seed)
		pt := New()
		type m struct {
			va VirtAddr
			ps PageSize
			pf mem.PFN
		}
		live := map[VirtAddr]m{}
		for op := 0; op < 300; op++ {
			if len(live) == 0 || r.Bool(0.6) {
				ps := PageSize(r.Intn(3))
				va := VirtAddr(r.Uint64n(1<<47)) &^ VirtAddr(ps.Bytes()-1)
				pf := mem.PFN(r.Uint64n(1 << 30))
				if pt.Map(va, pf, ps, ProtRead|ProtWrite) == nil {
					live[va] = m{va, ps, pf}
				}
			} else {
				for _, v := range live {
					pfn, err := pt.Unmap(v.va, v.ps)
					if err != nil || pfn != v.pf {
						t.Logf("seed %d: unmap %+v: %v pfn=%d", seed, v, err, pfn)
						return false
					}
					delete(live, v.va)
					break
				}
			}
		}
		for _, v := range live {
			got, ok := pt.Walk(v.va)
			if !ok || got.PFN != v.pf || got.Size != v.ps {
				t.Logf("seed %d: walk %+v got %+v %v", seed, v, got, ok)
				return false
			}
		}
		// Tear everything down; the tree must shrink to just the root.
		for _, v := range live {
			if _, err := pt.Unmap(v.va, v.ps); err != nil {
				t.Logf("seed %d: final unmap: %v", seed, err)
				return false
			}
		}
		return pt.TablePages == 1 && pt.MappedBytes() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkedSlotsAccumulates(t *testing.T) {
	pt := New()
	if err := pt.Map(0, 1, Page4K, ProtRead); err != nil {
		t.Fatal(err)
	}
	pt.WalkedSlots = 0
	pt.Walk(0)
	if pt.WalkedSlots != 4 {
		t.Fatalf("4K walk touched %d slots, want 4", pt.WalkedSlots)
	}
	pt2 := New()
	if err := pt2.Map(0, 1, Page2M, ProtRead); err != nil {
		t.Fatal(err)
	}
	pt2.WalkedSlots = 0
	pt2.Walk(0)
	if pt2.WalkedSlots != 3 {
		t.Fatalf("2MB walk touched %d slots, want 3", pt2.WalkedSlots)
	}
}

func TestPageSizeBytes(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page2M.Bytes() != 2<<20 || Page1G.Bytes() != 1<<30 {
		t.Fatal("PageSize.Bytes wrong")
	}
	if Page4K.String() != "4KB" || Page2M.String() != "2MB" || Page1G.String() != "1GB" {
		t.Fatal("PageSize.String wrong")
	}
}
