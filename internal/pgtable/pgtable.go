// Package pgtable implements x86-64 4-level page tables (PML4 → PDPT → PD
// → PT) as explicit radix-tree data structures. Mappings can be installed
// at 4KB (PT), 2MB (PD) and 1GB (PDPT) granularity, walked, protected,
// split and torn down, with table-page accounting — everything both the
// Linux-model fault handlers and HPMMAP's lightweight paging scheme need.
package pgtable

import (
	"fmt"

	"hpmmap/internal/invariant"
	"hpmmap/internal/mem"
	"hpmmap/internal/metrics"
)

// VirtAddr is a canonical 48-bit virtual address.
type VirtAddr uint64

// Prot is a permission bit set.
type Prot uint8

// Permission bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
	// ProtLocked marks the mapping as pinned in RAM (mlock).
	ProtLocked
)

// PageSize selects a mapping granularity.
type PageSize int

// Mapping granularities.
const (
	Page4K PageSize = iota
	Page2M
	Page1G
)

// Bytes returns the byte size of the page.
func (ps PageSize) Bytes() uint64 {
	switch ps {
	case Page4K:
		return mem.PageSize
	case Page2M:
		return mem.LargePageSize
	case Page1G:
		return mem.HugePageSize
	}
	// Programmer error: invalid PageSize constant from the caller.
	panic(fmt.Sprintf("pgtable: Bytes() with invalid PageSize %d (valid: Page4K, Page2M, Page1G)", ps))
}

func (ps PageSize) String() string {
	switch ps {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return "?"
}

// Levels of the radix tree, numbered from the root: 0=PML4, 1=PDPT, 2=PD,
// 3=PT. A 1GB mapping terminates at level 1, 2MB at level 2, 4KB at 3.
const (
	levelPML4 = 0
	levelPDPT = 1
	levelPD   = 2
	levelPT   = 3
	numLevels = 4
)

// shiftFor returns the address shift of the given level's index field.
func shiftFor(level int) uint { return uint(39 - 9*level) }

func indexAt(va VirtAddr, level int) int {
	return int((uint64(va) >> shiftFor(level)) & 0x1ff)
}

// levelFor returns the tree level at which a page of the given size maps.
func levelFor(ps PageSize) int {
	switch ps {
	case Page4K:
		return levelPT
	case Page2M:
		return levelPD
	case Page1G:
		return levelPDPT
	}
	// Programmer error: the caller passed a PageSize value that is not
	// one of the three declared constants.
	panic(fmt.Sprintf("pgtable: level lookup with invalid PageSize %d (valid: Page4K, Page2M, Page1G)", ps))
}

// entry is one slot of a table node.
type entry struct {
	present bool
	leaf    bool // terminal mapping (possibly large) rather than a child table
	pfn     mem.PFN
	prot    Prot
	child   *node
}

// node is one 4KB table page holding 512 entries.
type node struct {
	slots [512]entry
	live  int // number of present entries
}

// Table is one process address space's page-table tree.
type Table struct {
	root *node

	// Accounting, visible to cost models and tests.
	Mapped4K    uint64
	Mapped2M    uint64
	Mapped1G    uint64
	TablePages  uint64 // number of table nodes, including the root
	MapOps      uint64
	UnmapOps    uint64
	SplitOps    uint64
	WalkedSlots uint64 // total slots touched by Walk (hardware walk cost proxy)

	// Shared push handles installed by Instrument; nil (no-op) by
	// default, so uninstrumented walks pay only the nil checks.
	walks     *metrics.Counter
	walkDepth *metrics.Histogram
}

// New returns an empty address space. The root node is materialized on
// first Map: a node is 512 entries (~16KB), and aggregate-fidelity runs
// create page tables for every process and fork without ever mapping a
// page — eager roots were 70% of all simulator allocation (ISSUE 6).
// TablePages still counts the root from birth so accounting is unchanged.
func New() *Table {
	return &Table{TablePages: 1}
}

// Reset returns the table to its New() state so the struct can be
// recycled across process lifecycles (kernel.ExitReap). The node tree is
// dropped for the collector rather than scrubbed: roots are lazy, so a
// reset table is indistinguishable from a fresh one — the next Map
// materializes a clean root. Instrument handles are cleared too; owners
// re-instrument on reuse exactly as they do on creation.
func (t *Table) Reset() {
	*t = Table{TablePages: 1}
}

// rootNode returns the root, materializing it on first use.
func (t *Table) rootNode() *node {
	if t.root == nil {
		t.root = &node{}
	}
	return t.root
}

// MappedBytes returns the total bytes currently mapped.
func (t *Table) MappedBytes() uint64 {
	return t.Mapped4K*mem.PageSize + t.Mapped2M*mem.LargePageSize + t.Mapped1G*mem.HugePageSize
}

// MappedPages returns the number of leaf mappings of the given size.
func (t *Table) MappedPages(ps PageSize) uint64 {
	switch ps {
	case Page4K:
		return t.Mapped4K
	case Page2M:
		return t.Mapped2M
	default:
		return t.Mapped1G
	}
}

func checkAligned(va VirtAddr, ps PageSize) error {
	if uint64(va)%ps.Bytes() != 0 {
		return fmt.Errorf("pgtable: address %#x not aligned to %s", uint64(va), ps)
	}
	return nil
}

// Map installs a leaf mapping of the given size at va. It fails if any
// part of the range is already mapped (at any granularity) — callers
// unmap first, as the kernel does.
func (t *Table) Map(va VirtAddr, pfn mem.PFN, ps PageSize, prot Prot) error {
	if err := checkAligned(va, ps); err != nil {
		return err
	}
	target := levelFor(ps)
	n := t.rootNode()
	for level := 0; level < target; level++ {
		e := &n.slots[indexAt(va, level)]
		if e.present && e.leaf {
			return fmt.Errorf("pgtable: %#x already covered by a %s mapping", uint64(va), leafSize(level))
		}
		if !e.present {
			e.present = true
			e.leaf = false
			e.child = &node{}
			n.live++
			t.TablePages++
		}
		n = e.child
	}
	e := &n.slots[indexAt(va, target)]
	if e.present {
		if e.leaf {
			return fmt.Errorf("pgtable: %#x already mapped", uint64(va))
		}
		return fmt.Errorf("pgtable: %#x has smaller mappings below; unmap before mapping %s", uint64(va), ps)
	}
	e.present = true
	e.leaf = true
	e.pfn = pfn
	e.prot = prot
	n.live++
	t.MapOps++
	switch ps {
	case Page4K:
		t.Mapped4K++
	case Page2M:
		t.Mapped2M++
	case Page1G:
		t.Mapped1G++
	}
	return nil
}

func leafSize(level int) PageSize {
	switch level {
	case levelPDPT:
		return Page1G
	case levelPD:
		return Page2M
	default:
		return Page4K
	}
}

// Mapping describes the result of a successful walk.
type Mapping struct {
	PFN    mem.PFN
	Size   PageSize
	Prot   Prot
	Levels int // table levels traversed (hardware walk depth)
}

// Instrument installs shared push handles incremented by Walk: a walk
// counter and a walk-depth histogram (levels traversed per walk, the
// hardware walk-cost signal behind the paper's TLB argument). Handles
// may be nil (the no-op default) and are typically shared by every
// table on a node so per-process walks aggregate under one metric.
func (t *Table) Instrument(walks *metrics.Counter, depth *metrics.Histogram) {
	t.walks = walks
	t.walkDepth = depth
}

// Observe registers the table's accounting with the metrics registry as
// pull-mode gauges read at snapshot time: table pages and 4KB/large
// leaf counts. Registering several tables is additive. No-op on a nil
// registry.
func (t *Table) Observe(reg *metrics.Registry) {
	reg.GaugeFunc(metrics.PgtableTablePages, func() float64 { return float64(t.TablePages) })
	reg.GaugeFunc(metrics.PgtableMappedSmallPages, func() float64 { return float64(t.Mapped4K) })
	reg.GaugeFunc(metrics.PgtableMappedLargePages, func() float64 { return float64(t.Mapped2M + t.Mapped1G) })
}

// Walk resolves va. The boolean reports whether a mapping is present.
// Walk also accumulates the WalkedSlots counter used as a page-walk cost
// proxy by the TLB-miss model, and feeds the handles installed by
// Instrument.
func (t *Table) Walk(va VirtAddr) (Mapping, bool) {
	m, ok := t.walk(va)
	t.walks.Inc()
	t.walkDepth.Observe(uint64(m.Levels))
	return m, ok
}

func (t *Table) walk(va VirtAddr) (Mapping, bool) {
	if t.root == nil {
		// Same observable result as an empty root: one slot probed, miss
		// at the top level.
		t.WalkedSlots++
		return Mapping{Levels: 1}, false
	}
	n := t.root
	for level := 0; level < numLevels; level++ {
		t.WalkedSlots++
		e := &n.slots[indexAt(va, level)]
		if !e.present {
			return Mapping{Levels: level + 1}, false
		}
		if e.leaf {
			return Mapping{PFN: e.pfn, Size: leafSize(level), Prot: e.prot, Levels: level + 1}, true
		}
		n = e.child
	}
	// Simulated-state violation: a bottom-level entry was present but not
	// a leaf — the radix tree grew a level that cannot exist on x86-64.
	invariant.Failf("walk_off_tree", "pgtable",
		"walk(%#x) descended past the PT level without hitting a leaf", uint64(va))
	return Mapping{}, false // unreachable
}

// Translate returns the physical frame backing va along with the byte
// offset's frame, for convenience in data-path models.
func (t *Table) Translate(va VirtAddr) (mem.PFN, bool) {
	m, ok := t.Walk(va)
	if !ok {
		return 0, false
	}
	base := uint64(va) &^ (m.Size.Bytes() - 1)
	off := uint64(va) - base
	return m.PFN + mem.PFN(off/mem.PageSize), true
}

// Unmap removes the leaf mapping of the given size at va and returns its
// frame. It fails if the range is mapped at a different granularity.
func (t *Table) Unmap(va VirtAddr, ps PageSize) (mem.PFN, error) {
	if err := checkAligned(va, ps); err != nil {
		return 0, err
	}
	target := levelFor(ps)
	if t.root == nil {
		return 0, fmt.Errorf("pgtable: %#x not mapped as %s", uint64(va), ps)
	}
	path := make([]*node, 0, numLevels)
	n := t.root
	for level := 0; level < target; level++ {
		path = append(path, n)
		e := &n.slots[indexAt(va, level)]
		if !e.present || e.leaf {
			return 0, fmt.Errorf("pgtable: %#x not mapped as %s", uint64(va), ps)
		}
		n = e.child
	}
	e := &n.slots[indexAt(va, target)]
	if !e.present || !e.leaf {
		return 0, fmt.Errorf("pgtable: %#x not mapped as %s", uint64(va), ps)
	}
	pfn := e.pfn
	*e = entry{}
	n.live--
	t.UnmapOps++
	switch ps {
	case Page4K:
		t.Mapped4K--
	case Page2M:
		t.Mapped2M--
	case Page1G:
		t.Mapped1G--
	}
	// Prune empty tables bottom-up.
	for level := target - 1; level >= 0; level-- {
		parent := path[level]
		e := &parent.slots[indexAt(va, level)]
		if e.child.live > 0 {
			break
		}
		*e = entry{}
		parent.live--
		t.TablePages--
	}
	return pfn, nil
}

// Protect updates the permissions of the leaf covering va. Reports the
// mapping's size so callers can iterate ranges.
func (t *Table) Protect(va VirtAddr, prot Prot) (PageSize, error) {
	if t.root == nil {
		return 0, fmt.Errorf("pgtable: %#x not mapped", uint64(va))
	}
	n := t.root
	for level := 0; level < numLevels; level++ {
		e := &n.slots[indexAt(va, level)]
		if !e.present {
			return 0, fmt.Errorf("pgtable: %#x not mapped", uint64(va))
		}
		if e.leaf {
			e.prot = prot
			return leafSize(level), nil
		}
		n = e.child
	}
	// Simulated-state violation: same impossible shape as walk_off_tree,
	// reached through the protection-change path.
	invariant.Failf("protect_off_tree", "pgtable",
		"Protect(%#x) descended past the PT level without hitting a leaf", uint64(va))
	return 0, nil // unreachable
}

// Split2M replaces the 2MB leaf at va with a PT of 512 4KB leaves covering
// the same frames with the same protections — the operation THP performs
// when a large page must be pinned or partially unmapped. The new PT page
// is accounted.
func (t *Table) Split2M(va VirtAddr) error {
	if err := checkAligned(va, Page2M); err != nil {
		return err
	}
	if t.root == nil {
		return fmt.Errorf("pgtable: %#x not mapped as 2MB", uint64(va))
	}
	n := t.root
	for level := 0; level < levelPD; level++ {
		e := &n.slots[indexAt(va, level)]
		if !e.present || e.leaf {
			return fmt.Errorf("pgtable: %#x not mapped as 2MB", uint64(va))
		}
		n = e.child
	}
	e := &n.slots[indexAt(va, levelPD)]
	if !e.present || !e.leaf {
		return fmt.Errorf("pgtable: %#x not mapped as 2MB", uint64(va))
	}
	pt := &node{}
	for i := 0; i < 512; i++ {
		pt.slots[i] = entry{present: true, leaf: true, pfn: e.pfn + mem.PFN(i), prot: e.prot}
	}
	pt.live = 512
	e.leaf = false
	e.pfn = 0
	e.child = pt
	e.prot = 0
	t.TablePages++
	t.SplitOps++
	t.Mapped2M--
	t.Mapped4K += 512
	return nil
}

// Range calls fn for every leaf mapping with start address and mapping,
// in ascending address order. Returning false stops the iteration.
func (t *Table) Range(fn func(va VirtAddr, m Mapping) bool) {
	var walk func(n *node, level int, prefix uint64) bool
	walk = func(n *node, level int, prefix uint64) bool {
		for i := 0; i < 512; i++ {
			e := &n.slots[i]
			if !e.present {
				continue
			}
			va := prefix | uint64(i)<<shiftFor(level)
			if e.leaf {
				if !fn(VirtAddr(va), Mapping{PFN: e.pfn, Size: leafSize(level), Prot: e.prot, Levels: level + 1}) {
					return false
				}
				continue
			}
			if !walk(e.child, level+1, va) {
				return false
			}
		}
		return true
	}
	if t.root == nil {
		return
	}
	walk(t.root, 0, 0)
}

// UnmapRange removes every leaf mapping that starts inside
// [start, start+length) and returns the released frames with their sizes.
// Mappings straddling the range boundary are not supported (callers align
// ranges to mapping boundaries, as the VMA layer guarantees).
func (t *Table) UnmapRange(start VirtAddr, length uint64) []ReleasedPage {
	var released []ReleasedPage
	type target struct {
		va VirtAddr
		ps PageSize
	}
	var targets []target
	t.Range(func(va VirtAddr, m Mapping) bool {
		if uint64(va) >= uint64(start) && uint64(va) < uint64(start)+length {
			targets = append(targets, target{va, m.Size})
		}
		return true
	})
	for _, tg := range targets {
		pfn, err := t.Unmap(tg.va, tg.ps)
		if err != nil {
			// Simulated-state violation: a mapping Range just enumerated
			// disappeared before Unmap reached it — the table mutated
			// underneath its own teardown.
			invariant.Failf("unmap_lost_mapping", "pgtable",
				"UnmapRange[%#x,+%#x): mapping at %#x (size %s) vanished mid-teardown: %v",
				uint64(start), length, uint64(tg.va), tg.ps, err)
		}
		released = append(released, ReleasedPage{VA: tg.va, PFN: pfn, Size: tg.ps})
	}
	return released
}

// ReleasedPage reports one unmapped leaf.
type ReleasedPage struct {
	VA   VirtAddr
	PFN  mem.PFN
	Size PageSize
}
