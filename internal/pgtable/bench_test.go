package pgtable

import (
	"testing"

	"hpmmap/internal/mem"
)

func BenchmarkMapUnmap4K(b *testing.B) {
	t := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		va := VirtAddr(uint64(i%4096) * mem.PageSize)
		if err := t.Map(va, mem.PFN(i), Page4K, ProtRead|ProtWrite); err != nil {
			b.Fatal(err)
		}
		if _, err := t.Unmap(va, Page4K); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapUnmap2M(b *testing.B) {
	t := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		va := VirtAddr(uint64(i%512) * mem.LargePageSize)
		if err := t.Map(va, mem.PFN(i*512), Page2M, ProtRead|ProtWrite); err != nil {
			b.Fatal(err)
		}
		if _, err := t.Unmap(va, Page2M); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkHit(b *testing.B) {
	t := New()
	for i := 0; i < 512; i++ {
		if err := t.Map(VirtAddr(uint64(i)*mem.LargePageSize), mem.PFN(i*512), Page2M, ProtRead); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Walk(VirtAddr(uint64(i%512) * mem.LargePageSize)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSplit2M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := New()
		if err := t.Map(0, 0, Page2M, ProtRead|ProtWrite); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := t.Split2M(0); err != nil {
			b.Fatal(err)
		}
	}
}
