package tlb

import "hpmmap/internal/metrics"

// Observe registers the TLB's hit/miss/flush statistics with the
// metrics registry as pull-mode sources read at snapshot time. Multiple
// TLBs registering against the same registry aggregate additively.
// No-op on a nil registry; the per-access hot path is untouched (it
// only increments the array counters it already maintained).
func (t *TLB) Observe(reg *metrics.Registry) {
	reg.CounterFunc(metrics.TLBSmallHitsTotal, func() uint64 { return t.small.Hits })
	reg.CounterFunc(metrics.TLBSmallMissesTotal, func() uint64 { return t.small.Misses })
	reg.CounterFunc(metrics.TLBLargeHitsTotal, func() uint64 { return t.large.Hits })
	reg.CounterFunc(metrics.TLBLargeMissesTotal, func() uint64 { return t.large.Misses })
	reg.CounterFunc(metrics.TLBFlushesTotal, func() uint64 { return t.Flushes })
	reg.CounterFunc(metrics.TLBPageFlushesTotal, func() uint64 { return t.PageFlushes })
}
