package tlb

import (
	"testing"

	"hpmmap/internal/pgtable"
)

func small4Way() *TLB {
	return MustNew(Config{Entries4K: 16, Entries2M: 8, Assoc: 4})
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Entries4K: 0, Entries2M: 8, Assoc: 4}); err == nil {
		t.Fatal("zero entries accepted")
	}
	if _, err := New(Config{Entries4K: 10, Entries2M: 8, Assoc: 4}); err == nil {
		t.Fatal("non-divisible associativity accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	tb := small4Way()
	if tb.Access(0x1000, pgtable.Page4K) {
		t.Fatal("cold access hit")
	}
	if !tb.Access(0x1000, pgtable.Page4K) {
		t.Fatal("warm access missed")
	}
	if !tb.Access(0x1fff, pgtable.Page4K) {
		t.Fatal("same-page access missed")
	}
	st := tb.ArrayStats(pgtable.Page4K)
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSplitArraysIndependent(t *testing.T) {
	tb := small4Way()
	tb.Access(0x20_0000, pgtable.Page2M)
	st4 := tb.ArrayStats(pgtable.Page4K)
	if st4.Hits+st4.Misses != 0 {
		t.Fatal("large access touched 4K array")
	}
	if !tb.Access(0x20_0000+4096, pgtable.Page2M) {
		t.Fatal("access inside cached 2MB page missed")
	}
}

func TestLRUEviction(t *testing.T) {
	// 16 entries, 4-way -> 4 sets. Pages mapping to the same set differ by
	// 4 sets * 4KB = 16KB strides.
	tb := small4Way()
	base := uint64(0)
	stride := uint64(4 * 4096)
	// Fill one set's 4 ways.
	for i := uint64(0); i < 4; i++ {
		tb.Access(base+i*stride, pgtable.Page4K)
	}
	for i := uint64(0); i < 4; i++ {
		if !tb.Access(base+i*stride, pgtable.Page4K) {
			t.Fatalf("way %d evicted prematurely", i)
		}
	}
	// Fifth distinct page in the same set evicts the LRU (page 0, touched
	// least recently after the re-touch loop above... page 0 was touched
	// first in the loop so it is LRU).
	tb.Access(base+4*stride, pgtable.Page4K)
	if tb.Access(base, pgtable.Page4K) {
		t.Fatal("LRU page survived eviction")
	}
	if !tb.Access(base+2*stride, pgtable.Page4K) {
		t.Fatal("MRU-side page was evicted")
	}
}

func TestFlushPage(t *testing.T) {
	tb := small4Way()
	tb.Access(0x5000, pgtable.Page4K)
	tb.FlushPage(0x5000, pgtable.Page4K)
	if tb.Access(0x5000, pgtable.Page4K) {
		t.Fatal("access hit after FlushPage")
	}
	tb.Access(0x40_0000, pgtable.Page2M)
	tb.FlushPage(0x40_0000, pgtable.Page2M)
	if tb.Access(0x40_0000, pgtable.Page2M) {
		t.Fatal("large access hit after FlushPage")
	}
}

func TestFlushAll(t *testing.T) {
	tb := small4Way()
	for i := uint64(0); i < 8; i++ {
		tb.Access(i*4096, pgtable.Page4K)
		tb.Access(i<<21, pgtable.Page2M)
	}
	tb.Flush()
	if tb.Access(0, pgtable.Page4K) || tb.Access(0, pgtable.Page2M) {
		t.Fatal("hit after full flush")
	}
}

func TestReach(t *testing.T) {
	c := DefaultConfig()
	if c.Reach(pgtable.Page4K) != 512*4096 {
		t.Fatalf("4K reach %d", c.Reach(pgtable.Page4K))
	}
	if c.Reach(pgtable.Page2M) != 32*2<<20 {
		t.Fatalf("2M reach %d", c.Reach(pgtable.Page2M))
	}
}

func TestMissRateProperties(t *testing.T) {
	c := DefaultConfig()
	// Zero footprint: no misses.
	if mr := c.MissRate(0, pgtable.Page4K, 0.5); mr != 0 {
		t.Fatalf("MissRate(0) = %v", mr)
	}
	// Fits in reach: negligible.
	if mr := c.MissRate(1<<20, pgtable.Page4K, 0.5); mr > 0.01 {
		t.Fatalf("in-reach miss rate %v", mr)
	}
	// Same footprint, larger pages => lower miss rate.
	fp := uint64(12 << 30)
	mr4k := c.MissRate(fp, pgtable.Page4K, 0.5)
	mr2m := c.MissRate(fp, pgtable.Page2M, 0.5)
	if mr2m >= mr4k {
		t.Fatalf("2MB miss rate %v >= 4KB %v for 12GB footprint", mr2m, mr4k)
	}
	// Monotone in footprint.
	if c.MissRate(24<<30, pgtable.Page4K, 0.5) < mr4k {
		t.Fatal("miss rate not monotone in footprint")
	}
	// Monotone decreasing in locality.
	if c.MissRate(fp, pgtable.Page4K, 0.9) >= c.MissRate(fp, pgtable.Page4K, 0.1) {
		t.Fatal("miss rate not decreasing in locality")
	}
	// Bounded.
	if mr := c.MissRate(1<<40, pgtable.Page4K, 0); mr < 0 || mr > 1 {
		t.Fatalf("miss rate out of range: %v", mr)
	}
	// Locality clamped.
	if mr := c.MissRate(fp, pgtable.Page4K, 5); mr < 0 {
		t.Fatalf("clamped locality produced %v", mr)
	}
}

func TestConcreteMatchesAnalyticTrend(t *testing.T) {
	// Streaming over a footprint far beyond reach should miss nearly every
	// new page at 4K but much less at 2M for the same byte footprint.
	tb := MustNew(Config{Entries4K: 64, Entries2M: 32, Assoc: 4})
	foot := uint64(64 << 20)
	var miss4k, acc4k uint64
	for pass := 0; pass < 2; pass++ {
		for va := uint64(0); va < foot; va += 4096 {
			acc4k++
			if !tb.Access(va, pgtable.Page4K) {
				miss4k++
			}
		}
	}
	var miss2m, acc2m uint64
	for pass := 0; pass < 2; pass++ {
		for va := uint64(0); va < foot; va += 4096 {
			acc2m++
			if !tb.Access(va, pgtable.Page2M) {
				miss2m++
			}
		}
	}
	r4, r2 := float64(miss4k)/float64(acc4k), float64(miss2m)/float64(acc2m)
	if r2 >= r4 {
		t.Fatalf("2MB concrete miss rate %v >= 4KB %v", r2, r4)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Access(0x1000, pgtable.Page4K); got != Miss {
		t.Fatalf("cold access hit at level %d", got)
	}
	if got := h.Access(0x1000, pgtable.Page4K); got != HitL1 {
		t.Fatalf("warm access at level %d, want L1", got)
	}
	// Evict the page from the tiny L1 by streaming, then re-access: the
	// 512-entry STLB still holds it.
	for va := uint64(1 << 20); va < (1<<20)+64*4096*4; va += 4096 {
		h.Access(va, pgtable.Page4K)
	}
	if got := h.Access(0x1000, pgtable.Page4K); got != HitL2 {
		t.Fatalf("STLB access at level %d, want L2", got)
	}
	if h.L1Hits == 0 || h.L2Hits == 0 || h.Misses == 0 {
		t.Fatalf("counters: %d/%d/%d", h.L1Hits, h.L2Hits, h.Misses)
	}
	h.Flush()
	if got := h.Access(0x1000, pgtable.Page4K); got != Miss {
		t.Fatalf("post-flush access at level %d", got)
	}
}

func TestHierarchyValidation(t *testing.T) {
	cfg := DefaultHierarchy()
	cfg.L2Assoc = 3
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("bad L2 geometry accepted")
	}
	cfg = DefaultHierarchy()
	cfg.L1.Assoc = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("bad L1 geometry accepted")
	}
}
