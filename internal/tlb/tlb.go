// Package tlb models a split x86-64 translation lookaside buffer: separate
// 4KB and large-page arrays, set-associative with LRU replacement. It
// provides both a concrete per-access simulator (used at micro scale and
// in tests) and an analytic miss-rate estimator (used by the application
// cost model, where simulating 10^11 individual accesses is infeasible).
package tlb

import (
	"fmt"

	"hpmmap/internal/pgtable"
)

// Config sizes the TLB. The defaults mirror the Opteron 4174 / Xeon X5570
// class hardware in the paper's testbeds.
type Config struct {
	Entries4K int // total 4KB-page entries
	Entries2M int // total large-page entries (2MB and 1GB share it here)
	Assoc     int // associativity (ways); must divide both entry counts
}

// DefaultConfig returns a typical 2010-era server TLB: 512 4KB entries,
// 32 large-page entries, 4-way.
func DefaultConfig() Config {
	return Config{Entries4K: 512, Entries2M: 32, Assoc: 4}
}

func (c Config) validate() error {
	if c.Assoc <= 0 || c.Entries4K <= 0 || c.Entries2M <= 0 {
		return fmt.Errorf("tlb: non-positive config %+v", c)
	}
	if c.Entries4K%c.Assoc != 0 || c.Entries2M%c.Assoc != 0 {
		return fmt.Errorf("tlb: associativity %d does not divide entry counts", c.Assoc)
	}
	return nil
}

// Reach returns the bytes covered by a fully populated TLB at the given
// page size.
func (c Config) Reach(ps pgtable.PageSize) uint64 {
	if ps == pgtable.Page4K {
		return uint64(c.Entries4K) * ps.Bytes()
	}
	return uint64(c.Entries2M) * ps.Bytes()
}

// way is one entry of a set.
type way struct {
	tag   uint64
	valid bool
	lru   uint64 // last-use stamp
}

// array is one of the two split arrays.
type array struct {
	sets  [][]way
	shift uint
	mask  uint64
	clock uint64

	Hits, Misses uint64
}

func newArray(entries, assoc int, pageShift uint) *array {
	nsets := entries / assoc
	a := &array{shift: pageShift, mask: uint64(nsets - 1)}
	if nsets&(nsets-1) != 0 {
		// Non-power-of-two set counts index by modulo instead of mask.
		a.mask = 0
	}
	a.sets = make([][]way, nsets)
	for i := range a.sets {
		a.sets[i] = make([]way, assoc)
	}
	return a
}

func (a *array) setIndex(vpn uint64) int {
	if a.mask != 0 {
		return int(vpn & a.mask)
	}
	return int(vpn % uint64(len(a.sets)))
}

// access looks up the page of va; on miss the entry is filled. Reports
// whether the access hit.
func (a *array) access(va uint64) bool {
	a.clock++
	vpn := va >> a.shift
	set := a.sets[a.setIndex(vpn)]
	victim := 0
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == vpn {
			w.lru = a.clock
			a.Hits++
			return true
		}
		if !set[victim].valid {
			continue
		}
		if !w.valid || w.lru < set[victim].lru {
			victim = i
		}
	}
	a.Misses++
	set[victim] = way{tag: vpn, valid: true, lru: a.clock}
	return false
}

// flushPage invalidates the entry covering va, if present.
func (a *array) flushPage(va uint64) {
	vpn := va >> a.shift
	set := a.sets[a.setIndex(vpn)]
	for i := range set {
		if set[i].valid && set[i].tag == vpn {
			set[i].valid = false
		}
	}
}

func (a *array) flush() {
	for _, set := range a.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// TLB is a split translation cache.
type TLB struct {
	cfg   Config
	small *array // 4KB translations
	large *array // 2MB/1GB translations

	// Flushes counts whole-TLB invalidations (CR3 writes / remote
	// shootdown broadcasts); PageFlushes counts single-page
	// invalidations (invlpg). Exposed through Observe.
	Flushes     uint64
	PageFlushes uint64
}

// New builds a TLB from the config.
func New(cfg Config) (*TLB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &TLB{
		cfg:   cfg,
		small: newArray(cfg.Entries4K, cfg.Assoc, 12),
		large: newArray(cfg.Entries2M, cfg.Assoc, 21),
	}, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		// Programmer error: MustNew is reserved for compile-time-known
		// geometries; a bad Config is a caller bug.
		panic(fmt.Errorf("tlb: MustNew with invalid config: %w", err))
	}
	return t
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Access simulates a data access to va translated at the given page size.
// Reports whether the translation hit.
func (t *TLB) Access(va uint64, ps pgtable.PageSize) bool {
	if ps == pgtable.Page4K {
		return t.small.access(va)
	}
	return t.large.access(va)
}

// FlushPage invalidates the translation covering va at the given size
// (invlpg).
func (t *TLB) FlushPage(va uint64, ps pgtable.PageSize) {
	t.PageFlushes++
	if ps == pgtable.Page4K {
		t.small.flushPage(va)
		return
	}
	t.large.flushPage(va)
}

// Flush empties the whole TLB (CR3 write / context switch without PCID —
// the common case on the paper's kernels).
func (t *TLB) Flush() {
	t.Flushes++
	t.small.flush()
	t.large.flush()
}

// Stats returns (hits, misses) for the given page-size class.
type Stats struct {
	Hits, Misses uint64
}

// ArrayStats returns hit/miss counts for the array serving ps.
func (t *TLB) ArrayStats(ps pgtable.PageSize) Stats {
	if ps == pgtable.Page4K {
		return Stats{t.small.Hits, t.small.Misses}
	}
	return Stats{t.large.Hits, t.large.Misses}
}

// MissRate analytically estimates the per-access TLB miss probability of a
// workload with the given resident footprint, translated at page size ps,
// with the given locality in [0,1). Locality is the probability that an
// access falls on a "hot" recently-touched page regardless of footprint
// (capturing loop/blocking reuse). The cold fraction spreads uniformly
// over the footprint and misses in proportion to how far the footprint
// exceeds the TLB reach.
func (c Config) MissRate(footprint uint64, ps pgtable.PageSize, locality float64) float64 {
	if footprint == 0 {
		return 0
	}
	if locality < 0 {
		locality = 0
	}
	if locality > 0.999 {
		locality = 0.999
	}
	reach := c.Reach(ps)
	if footprint <= reach {
		// Fits: only compulsory/conflict noise. A small floor keeps the
		// model continuous.
		return (1 - locality) * 0.001
	}
	uncovered := 1 - float64(reach)/float64(footprint)
	return (1 - locality) * uncovered
}

// --- Two-level hierarchy ----------------------------------------------------

// HierarchyConfig adds a shared second-level TLB (the STLB of Nehalem-
// class parts) behind the split L1 arrays.
type HierarchyConfig struct {
	L1 Config
	// L2Entries is the shared second-level capacity (4KB-entry
	// granularity; large pages occupy it too on the parts we model).
	L2Entries int
	L2Assoc   int
}

// DefaultHierarchy mirrors the Xeon X5570: 64+32 L1 entries, 512-entry
// shared STLB.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:        Config{Entries4K: 64, Entries2M: 32, Assoc: 4},
		L2Entries: 512,
		L2Assoc:   4,
	}
}

// Level identifies where a translation was found.
type Level int

// Lookup outcomes.
const (
	HitL1 Level = iota
	HitL2
	Miss
)

// Hierarchy is a two-level TLB.
type Hierarchy struct {
	l1 *TLB
	l2 *array

	// Statistics.
	L1Hits, L2Hits, Misses uint64
}

// NewHierarchy builds the two-level structure.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, err
	}
	if cfg.L2Entries <= 0 || cfg.L2Assoc <= 0 || cfg.L2Entries%cfg.L2Assoc != 0 {
		return nil, fmt.Errorf("tlb: bad L2 geometry %d/%d", cfg.L2Entries, cfg.L2Assoc)
	}
	return &Hierarchy{l1: l1, l2: newArray(cfg.L2Entries, cfg.L2Assoc, 12)}, nil
}

// Access walks the hierarchy for a data access at the given translation
// granularity, filling both levels on the way out.
func (h *Hierarchy) Access(va uint64, ps pgtable.PageSize) Level {
	if h.l1.Access(va, ps) {
		h.L1Hits++
		return HitL1
	}
	// The STLB indexes at 4KB granularity regardless of page size.
	if h.l2.access(va) {
		h.L2Hits++
		return HitL2
	}
	h.Misses++
	return Miss
}

// Flush empties both levels.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.flush()
}
