package tlb

import (
	"testing"

	"hpmmap/internal/pgtable"
)

func BenchmarkAccessHit(b *testing.B) {
	t := MustNew(DefaultConfig())
	t.Access(0x1000, pgtable.Page4K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(0x1000, pgtable.Page4K)
	}
}

func BenchmarkAccessStreaming4K(b *testing.B) {
	t := MustNew(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(uint64(i)*4096, pgtable.Page4K)
	}
}

func BenchmarkMissRateAnalytic(b *testing.B) {
	c := DefaultConfig()
	for i := 0; i < b.N; i++ {
		_ = c.MissRate(12<<30, pgtable.Page4K, 0.75)
	}
}
