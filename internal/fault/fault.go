// Package fault defines the page-fault taxonomy of the simulation and the
// calibrated cycle-cost model for each fault path. The anchors come from
// the paper's Figures 2 and 3 (miniMD on the Dell R415 testbed); the model
// composes mechanistic pieces — trap cost, allocation, page clearing at
// memory bandwidth, compaction, reclaim — rather than replaying the
// published numbers, so costs respond to simulated system state (memory
// pressure, contention) the way the real kernel's do.
package fault

import (
	"math"

	"hpmmap/internal/sim"
)

// Kind classifies a handled page fault.
type Kind int

// Fault kinds.
const (
	// KindSmall is a demand-paged 4KB anonymous fault.
	KindSmall Kind = iota
	// KindLarge is a THP 2MB fault (allocation + clear in the fault path).
	KindLarge
	// KindMergeBlocked is a 4KB fault that had to wait for a khugepaged
	// merge holding the process mm lock ("Merge" rows in Figure 2).
	KindMergeBlocked
	// KindHugeTLBLarge is a 2MB fault satisfied from a HugeTLBfs pool.
	KindHugeTLBLarge
	// KindHugeTLBSmall is a 4KB fault in a HugeTLBfs-managed process
	// (stack and other non-hugetlb regions), contending with the rest of
	// the system for scarce small pages.
	KindHugeTLBSmall
	// KindStackGrow is a fault extending the stack.
	KindStackGrow
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindSmall:
		return "small"
	case KindLarge:
		return "large"
	case KindMergeBlocked:
		return "merge"
	case KindHugeTLBLarge:
		return "hugetlb-large"
	case KindHugeTLBSmall:
		return "hugetlb-small"
	case KindStackGrow:
		return "stack"
	}
	return "?"
}

// NumKinds is the number of fault kinds (for fixed-size stat arrays).
const NumKinds = int(numKinds)

// CostParams parameterizes the fault cost model. All times in cycles.
type CostParams struct {
	// TrapOverhead is the fixed user→kernel→user cost of any fault.
	TrapOverhead float64
	// SmallBase is the remaining service cost of an uncontended 4KB
	// anonymous fault (VMA lookup, order-0 alloc, zeroed-page map).
	SmallBase float64
	// SmallJitter is the standard deviation of the small-fault cost.
	SmallJitter float64

	// CachelineBytes and StoreCycles model page clearing: a 2MB clear
	// writes LargePage/CachelineBytes lines at StoreCycles each.
	CachelineBytes float64
	StoreCycles    float64

	// LargeAllocBase is the contiguous-allocation bookkeeping cost of a
	// 2MB fault before the clear.
	LargeAllocBase float64
	// CompactionCost is the added cost when the allocator must run direct
	// compaction to produce a contiguous block.
	CompactionCost float64
	// CompactionJitter spreads the compaction cost.
	CompactionJitter float64

	// BandwidthContention scales memory-bound work (clears, copies) under
	// load: effective cost = base * (1 + BandwidthContention*load).
	BandwidthContention float64
	// LockContention scales lock-protected fault-path work under load.
	LockContention float64

	// MergeCopyFactor: a khugepaged merge copies 2MB (read+write) and
	// remaps; its duration is MergeCopyFactor times a 2MB clear plus
	// MergeRemapCost.
	MergeCopyFactor float64
	MergeRemapCost  float64

	// HugeTLBPoolCost is the pool bookkeeping cost of a hugetlb fault
	// (reservation accounting, file offset lookup) on top of the clear.
	HugeTLBPoolCost float64

	// ReclaimThreshold is the memory pressure above which small faults
	// may enter direct reclaim; ReclaimProbAtFull is the per-fault
	// probability of that at pressure 1.
	ReclaimThreshold  float64
	ReclaimProbAtFull float64
	// ReclaimParetoXm/Alpha shape the heavy-tailed direct-reclaim stall.
	ReclaimParetoXm    float64
	ReclaimParetoAlpha float64
	// ReclaimCap bounds a single stall (the kernel eventually OOMs or
	// succeeds; Figure 3's 16M-cycle standard deviation implies stalls of
	// tens of millions of cycles).
	ReclaimCap float64
}

// DefaultCostParams returns the calibration used for both testbeds. See
// DESIGN.md §4 for the anchor table.
func DefaultCostParams() CostParams {
	return CostParams{
		TrapOverhead:        450,
		SmallBase:           700,
		SmallJitter:         950,
		CachelineBytes:      64,
		StoreCycles:         10, // ~14GB/s clear bandwidth at 2.2GHz
		LargeAllocBase:      18000,
		CompactionCost:      260000,
		CompactionJitter:    90000,
		BandwidthContention: 1.05,
		LockContention:      0.25,
		MergeCopyFactor:     2.1,
		MergeRemapCost:      300000,
		HugeTLBPoolCost:     310000,
		ReclaimThreshold:    0.47,
		ReclaimProbAtFull:   0.11,
		ReclaimParetoXm:     1.6e6,
		ReclaimParetoAlpha:  1.15,
		ReclaimCap:          2.2e8,
	}
}

// Load is a snapshot of the system conditions a fault executes under.
type Load struct {
	// MemPressure in [0,1]: how close the allocatable memory is to the
	// min watermark (mem.Zone.Pressure of the binding zone).
	MemPressure float64
	// BandwidthLoad in [0,1]: fraction of memory bandwidth consumed by
	// other workloads.
	BandwidthLoad float64
	// AllocContention in [0,1]: zone/LRU lock contention from concurrent
	// allocators.
	AllocContention float64
	// FragIndex in [0,1]: fragmentation index of the preferred zone at
	// 2MB order; drives compaction probability. Negative means a 2MB
	// block is free right now.
	FragIndex float64
}

// Clear2MCycles returns the cost of zeroing one 2MB page under the given
// bandwidth load.
func (c CostParams) Clear2MCycles(load Load) float64 {
	lines := float64(2<<20) / c.CachelineBytes
	return lines * c.StoreCycles * (1 + c.BandwidthContention*load.BandwidthLoad)
}

// Clear4KCycles returns the cost of zeroing one 4KB page.
func (c CostParams) Clear4KCycles(load Load) float64 {
	lines := float64(4<<10) / c.CachelineBytes
	return lines * c.StoreCycles * (1 + c.BandwidthContention*load.BandwidthLoad)
}

// SmallFault returns the cycles to service a 4KB anonymous fault.
func (c CostParams) SmallFault(r *sim.Rand, load Load) sim.Cycles {
	base := c.TrapOverhead + c.SmallBase + c.Clear4KCycles(load)
	base *= 1 + c.LockContention*load.AllocContention
	return r.CyclesNormal(base, c.SmallJitter*(1+load.AllocContention), c.TrapOverhead)
}

// LargeFault returns the cycles to service a THP 2MB fault.
// needCompaction reports whether the allocator had to compact (callers
// decide from allocator state; pass load.FragIndex-driven decisions in).
func (c CostParams) LargeFault(r *sim.Rand, load Load, needCompaction bool) sim.Cycles {
	base := c.TrapOverhead + c.LargeAllocBase + c.Clear2MCycles(load)
	base *= 1 + c.LockContention*load.AllocContention
	if needCompaction {
		base += r.PositiveNormal(
			c.CompactionCost*(1+c.BandwidthContention*load.BandwidthLoad),
			c.CompactionJitter, c.CompactionCost/4)
	}
	return r.CyclesNormal(base, base*0.12, c.TrapOverhead)
}

// SmallFaultMean returns the expected small-fault cost under load — the
// aggregate fault path charges n faults as Normal(n*mean, sqrt(n)*stdev)
// instead of drawing n times.
func (c CostParams) SmallFaultMean(load Load) float64 {
	base := c.TrapOverhead + c.SmallBase + c.Clear4KCycles(load)
	return base * (1 + c.LockContention*load.AllocContention)
}

// SmallFaultStdev returns the per-fault standard deviation under load.
func (c CostParams) SmallFaultStdev(load Load) float64 {
	return c.SmallJitter * (1 + load.AllocContention)
}

// AggregateSmallFaults draws the total cost of n small faults.
func (c CostParams) AggregateSmallFaults(r *sim.Rand, load Load, n uint64) sim.Cycles {
	if n == 0 {
		return 0
	}
	mean := c.SmallFaultMean(load) * float64(n)
	stdev := c.SmallFaultStdev(load) * sqrtU64(n)
	return r.CyclesNormal(mean, stdev, c.TrapOverhead*float64(n))
}

func sqrtU64(n uint64) float64 { return math.Sqrt(float64(n)) }

// MergeDuration returns how long one khugepaged merge holds the mm lock.
func (c CostParams) MergeDuration(r *sim.Rand, load Load) sim.Cycles {
	base := c.MergeCopyFactor*c.Clear2MCycles(load) + c.MergeRemapCost
	base *= 1 + c.LockContention*load.AllocContention
	// Merges under commodity load wait on LRU/zone locks and on isolating
	// busy pages; the stall is roughly exponential in the competing
	// allocator traffic.
	if tail := 5.5e6 * load.AllocContention; tail > 0 {
		base += r.Exponential(tail)
	}
	return r.CyclesNormal(base, base*0.35, c.MergeRemapCost)
}

// HugeTLBLargeFault returns the cycles to fill a 2MB page from a hugetlb
// pool. The pool is preallocated and isolated, so memory pressure does not
// add compaction; bandwidth contention still applies to the clear.
func (c CostParams) HugeTLBLargeFault(r *sim.Rand, load Load) sim.Cycles {
	base := c.TrapOverhead + c.HugeTLBPoolCost + c.Clear2MCycles(load)
	return r.CyclesNormal(base, base*0.3, c.TrapOverhead)
}

// HugeTLBSmallFault returns the cycles for a 4KB fault in a hugetlb-
// configured system, where small pages are scarce under load: with
// probability rising in pressure the fault performs direct reclaim with a
// heavy-tailed stall.
func (c CostParams) HugeTLBSmallFault(r *sim.Rand, load Load) (sim.Cycles, bool) {
	svc, stall, stalled := c.HugeTLBSmallFaultParts(r, load)
	return svc + stall, stalled
}

// HugeTLBSmallFaultParts is HugeTLBSmallFault with the service cost and
// the reclaim stall returned separately, for callers that attribute the
// stall to a different cause than the fault itself. Draw order is
// identical to HugeTLBSmallFault (which delegates here), so switching
// between the two never perturbs the random stream.
func (c CostParams) HugeTLBSmallFaultParts(r *sim.Rand, load Load) (svc, stall sim.Cycles, stalled bool) {
	svc = c.SmallFault(r, load)
	if p := c.reclaimProb(load.MemPressure); p > 0 && r.Bool(p) {
		s := r.Pareto(c.ReclaimParetoXm, c.ReclaimParetoAlpha)
		s *= 1 + c.BandwidthContention*load.BandwidthLoad
		if s > c.ReclaimCap {
			s = c.ReclaimCap
		}
		return svc, sim.Cycles(s), true
	}
	return svc, 0, false
}

// DirectReclaim returns a heavy-tailed direct reclaim stall for the
// generic allocation path (used when a zone allocation fails outright).
func (c CostParams) DirectReclaim(r *sim.Rand, load Load) sim.Cycles {
	stall := r.Pareto(c.ReclaimParetoXm, c.ReclaimParetoAlpha)
	stall *= 1 + c.BandwidthContention*load.BandwidthLoad
	if stall > c.ReclaimCap {
		stall = c.ReclaimCap
	}
	return sim.Cycles(stall)
}

// ReclaimProb returns the per-fault probability of entering direct
// reclaim at the given memory pressure.
func (c CostParams) ReclaimProb(pressure float64) float64 { return c.reclaimProb(pressure) }

func (c CostParams) reclaimProb(pressure float64) float64 {
	if pressure <= c.ReclaimThreshold {
		return 0
	}
	return c.ReclaimProbAtFull * (pressure - c.ReclaimThreshold) / (1 - c.ReclaimThreshold)
}

// Record is one handled fault, as captured by trace recorders.
type Record struct {
	At     sim.Cycles // completion time
	Cost   sim.Cycles
	Kind   Kind
	PID    int
	VA     uint64
	Stalls bool // entered reclaim / waited on a merge
}
