package fault

import (
	"math"
	"testing"

	"hpmmap/internal/sim"
)

var (
	noLoad   = Load{}
	modLoad  = Load{MemPressure: 0.7, BandwidthLoad: 0.5, AllocContention: 0.3, FragIndex: 0.6}
	fullLoad = Load{MemPressure: 1, BandwidthLoad: 1, AllocContention: 1, FragIndex: 0.9}
)

func sampleCycles(n int, f func(r *sim.Rand) sim.Cycles) (mean, stdev float64) {
	r := sim.NewRand(12345)
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(f(r))
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	stdev = math.Sqrt(sumsq/float64(n) - mean*mean)
	return mean, stdev
}

// The calibration anchors from the paper's Figure 2 (THP, miniMD):
// small ~1,768 unloaded / ~2,206 loaded; large ~368K / ~758K;
// merge ~1.0M / ~3.4M. We accept a generous band — the model is
// mechanistic, not a lookup table.
func TestSmallFaultCalibration(t *testing.T) {
	c := DefaultCostParams()
	mean, stdev := sampleCycles(20000, func(r *sim.Rand) sim.Cycles { return c.SmallFault(r, noLoad) })
	if mean < 1300 || mean > 2400 {
		t.Fatalf("unloaded small fault mean %.0f, want ~1768", mean)
	}
	if stdev < 400 || stdev > 1600 {
		t.Fatalf("unloaded small fault stdev %.0f, want ~993", stdev)
	}
	loaded, _ := sampleCycles(20000, func(r *sim.Rand) sim.Cycles { return c.SmallFault(r, modLoad) })
	if loaded <= mean {
		t.Fatalf("loaded small fault %.0f not above unloaded %.0f", loaded, mean)
	}
	if loaded < 1700 || loaded > 3200 {
		t.Fatalf("loaded small fault mean %.0f, want ~2206", loaded)
	}
}

func TestLargeFaultCalibration(t *testing.T) {
	c := DefaultCostParams()
	mean, _ := sampleCycles(5000, func(r *sim.Rand) sim.Cycles { return c.LargeFault(r, noLoad, false) })
	if mean < 280e3 || mean > 460e3 {
		t.Fatalf("unloaded large fault mean %.0f, want ~368K", mean)
	}
	// Under load with compaction roughly half the time.
	r := sim.NewRand(99)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += float64(c.LargeFault(r, modLoad, i%2 == 0))
	}
	loaded := sum / n
	if loaded < 560e3 || loaded > 1.0e6 {
		t.Fatalf("loaded large fault mean %.0f, want ~758K", loaded)
	}
	if loaded < 1.5*mean {
		t.Fatalf("load should roughly double large-fault cost: %.0f -> %.0f", mean, loaded)
	}
	// Large faults dwarf small ones by ~200x (the paper's headline gap).
	small, _ := sampleCycles(5000, func(r *sim.Rand) sim.Cycles { return c.SmallFault(r, noLoad) })
	if mean < 100*small {
		t.Fatalf("large/small ratio %.0f, want > 100", mean/small)
	}
}

func TestMergeDurationCalibration(t *testing.T) {
	c := DefaultCostParams()
	mean, _ := sampleCycles(5000, func(r *sim.Rand) sim.Cycles { return c.MergeDuration(r, noLoad) })
	if mean < 0.7e6 || mean > 1.5e6 {
		t.Fatalf("unloaded merge duration %.0f, want ~1.0M", mean)
	}
	loaded, lstdev := sampleCycles(5000, func(r *sim.Rand) sim.Cycles { return c.MergeDuration(r, modLoad) })
	if loaded < 2.2e6 || loaded > 5.0e6 {
		t.Fatalf("loaded merge duration %.0f, want ~3.4M", loaded)
	}
	if lstdev < 1e6 {
		t.Fatalf("loaded merge stdev %.0f, want multi-million (paper: ~4M)", lstdev)
	}
}

func TestHugeTLBLargeCalibration(t *testing.T) {
	c := DefaultCostParams()
	mean, _ := sampleCycles(5000, func(r *sim.Rand) sim.Cycles { return c.HugeTLBLargeFault(r, noLoad) })
	if mean < 500e3 || mean > 900e3 {
		t.Fatalf("hugetlb large fault mean %.0f, want ~735K", mean)
	}
	// No compaction ever: even at full load the cost stays the same order.
	loaded, _ := sampleCycles(5000, func(r *sim.Rand) sim.Cycles { return c.HugeTLBLargeFault(r, fullLoad) })
	if loaded > 3*mean {
		t.Fatalf("hugetlb large fault exploded under load: %.0f -> %.0f", mean, loaded)
	}
}

func TestHugeTLBSmallReclaimStorms(t *testing.T) {
	c := DefaultCostParams()
	// Unloaded: cheap, never stalls.
	r := sim.NewRand(7)
	for i := 0; i < 5000; i++ {
		cost, stalled := c.HugeTLBSmallFault(r, noLoad)
		if stalled {
			t.Fatal("unloaded hugetlb small fault entered reclaim")
		}
		if cost > 50_000 {
			t.Fatalf("unloaded hugetlb small fault cost %d", cost)
		}
	}
	// Under heavy pressure: mean hundreds of thousands, stdev >> mean.
	var sum, sumsq float64
	stalls := 0
	const n = 50000
	heavy := Load{MemPressure: 0.97, BandwidthLoad: 0.6, AllocContention: 0.4}
	for i := 0; i < n; i++ {
		cost, stalled := c.HugeTLBSmallFault(r, heavy)
		if stalled {
			stalls++
		}
		v := float64(cost)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	stdev := math.Sqrt(sumsq/n - mean*mean)
	if mean < 50e3 {
		t.Fatalf("pressured hugetlb small mean %.0f, want ~475K order", mean)
	}
	if stdev < 3*mean {
		t.Fatalf("pressured hugetlb small stdev %.0f vs mean %.0f; paper shows stdev >> mean", stdev, mean)
	}
	if stalls == 0 {
		t.Fatal("no reclaim storms under heavy pressure")
	}
	frac := float64(stalls) / n
	if frac > 0.16 {
		t.Fatalf("reclaim storm fraction %.3f too high", frac)
	}
}

func TestReclaimProbabilityShape(t *testing.T) {
	c := DefaultCostParams()
	if p := c.reclaimProb(0.2); p != 0 {
		t.Fatalf("reclaim below threshold: %v", p)
	}
	if p := c.reclaimProb(1.0); math.Abs(p-c.ReclaimProbAtFull) > 1e-12 {
		t.Fatalf("reclaim at full pressure %v, want %v", p, c.ReclaimProbAtFull)
	}
	mid := c.reclaimProb(0.8)
	if mid <= 0 || mid >= c.ReclaimProbAtFull {
		t.Fatalf("reclaim at 0.8 pressure %v out of range", mid)
	}
}

func TestDirectReclaimBounded(t *testing.T) {
	c := DefaultCostParams()
	r := sim.NewRand(31)
	for i := 0; i < 20000; i++ {
		v := c.DirectReclaim(r, fullLoad)
		if float64(v) > c.ReclaimCap*(1+c.BandwidthContention)+1 {
			t.Fatalf("direct reclaim %d exceeds cap", v)
		}
		if v < sim.Cycles(c.ReclaimParetoXm) {
			t.Fatalf("direct reclaim %d below minimum stall", v)
		}
	}
}

func TestClearCostsScaleWithBandwidthLoad(t *testing.T) {
	c := DefaultCostParams()
	if c.Clear2MCycles(fullLoad) <= c.Clear2MCycles(noLoad) {
		t.Fatal("2M clear not slower under load")
	}
	if c.Clear4KCycles(fullLoad) <= c.Clear4KCycles(noLoad) {
		t.Fatal("4K clear not slower under load")
	}
	ratio := c.Clear2MCycles(noLoad) / c.Clear4KCycles(noLoad)
	if math.Abs(ratio-512) > 1 {
		t.Fatalf("2M/4K clear ratio %v, want 512", ratio)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "?" {
		t.Fatal("unknown kind should be ?")
	}
}

func TestFaultCostsDeterministic(t *testing.T) {
	c := DefaultCostParams()
	r1, r2 := sim.NewRand(5), sim.NewRand(5)
	for i := 0; i < 100; i++ {
		if c.SmallFault(r1, modLoad) != c.SmallFault(r2, modLoad) {
			t.Fatal("fault costs nondeterministic for equal seeds")
		}
	}
}
