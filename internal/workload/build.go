package workload

import (
	"fmt"

	"hpmmap/internal/kernel"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// execer is the exec side of the fork/exec pair (implemented by the Linux
// manager).
type execer interface {
	Exec(p *kernel.Process) (sim.Cycles, error)
}

// BuildSpec parameterizes a parallel kernel build: the paper's commodity
// interference workload. Each worker loops forever: fork/exec a compiler
// process, fault in its working set, burn CPU, write page cache, exit.
// The churn of short-lived processes and file I/O is what fragments
// memory and drags the system to its watermarks.
type BuildSpec struct {
	// Workers is the -j level.
	Workers int
	// CompileCompute is the mean CPU work of one compilation.
	CompileCompute sim.Cycles
	// CompileJitter spreads compile times (relative).
	CompileJitter float64
	// AnonPerCompile is the anonymous working set faulted per compile.
	AnonPerCompile uint64
	// FilePerCompile is the page cache added per compile (headers read,
	// objects written).
	FilePerCompile uint64
	// IOWait is the mean off-CPU gap between compiles (reading sources,
	// waiting on make).
	IOWait sim.Cycles
	// BandwidthWeight per running worker.
	BandwidthWeight float64
	// ResidentAnon is the long-lived anonymous footprint of the build
	// itself (make, ccache, linker inputs) held for the build's whole
	// lifetime.
	ResidentAnon uint64
}

// KernelBuild returns the calibrated kernel-compile profile for the given
// -j level at 2.2GHz: ~0.3s of CPU per compilation unit, ~120MB working
// set, a few MB of file traffic.
func KernelBuild(workers int) BuildSpec {
	return BuildSpec{
		Workers:         workers,
		CompileCompute:  660_000_000,
		CompileJitter:   0.45,
		AnonPerCompile:  70 << 20,
		FilePerCompile:  16 << 20,
		IOWait:          330_000_000, // ~150ms: compiles block on reads/pipes
		BandwidthWeight: 0.45,
		ResidentAnon:    800 << 20,
	}
}

// Build is a running kernel build.
type Build struct {
	node *kernel.Node
	spec BuildSpec
	rand *sim.Rand

	stopped  bool
	resident *kernel.Process

	// Statistics.
	Compiles uint64
	Failures uint64
}

// StartBuild launches the build's workers on the node. The build runs
// until Stop is called (experiments stop it when the measured application
// completes, as the paper's harness does).
func StartBuild(node *kernel.Node, spec BuildSpec, seed uint64) *Build {
	b := &Build{node: node, spec: spec, rand: sim.NewRand(seed)}
	// The build's own long-lived footprint (make, caches).
	if spec.ResidentAnon > 0 {
		p, err := node.NewProcess("make", true, b.rand.Intn(node.Config().NumaZones))
		if err == nil {
			b.resident = p
			// Touch it in slices over the first second so the pressure
			// ramps like a build starting up.
			slices := 8
			per := spec.ResidentAnon / uint64(slices)
			if addr, _, err := node.Mmap(p, spec.ResidentAnon, rw, vma.KindAnon); err == nil {
				for i := 1; i <= slices; i++ {
					i := i
					node.Engine().Schedule(sim.Cycles(uint64(i)*uint64(node.Config().ClockHz/8)), func() {
						if !b.stopped {
							_, _ = node.TouchRange(p, addr, per*uint64(i))
						}
					})
				}
			}
		}
	}
	for w := 0; w < spec.Workers; w++ {
		w := w
		// Stagger worker starts so the first compiles do not align.
		node.Engine().Schedule(sim.Cycles(b.rand.Uint64n(uint64(spec.IOWait)+1)), func() {
			b.worker(w)
		})
	}
	return b
}

// Stop halts the build after in-flight compiles finish and releases the
// resident footprint.
func (b *Build) Stop() {
	b.stopped = true
	if b.resident != nil {
		b.node.Exit(b.resident)
		b.resident = nil
	}
}

// worker runs one make job slot.
func (b *Build) worker(id int) {
	if b.stopped {
		return
	}
	zone := b.rand.Intn(b.node.Config().NumaZones)
	var p *kernel.Process
	var stall sim.Cycles
	// make fork+execs each compiler: fork is COW-cheap under Linux, exec
	// discards the inherited image.
	if b.resident != nil && !b.resident.Exited {
		child, c, err := b.node.Fork(b.resident, fmt.Sprintf("cc1.%d", id))
		if err == nil {
			p = child
			stall += c
			if mgr, ok := b.node.DefaultMM().(execer); ok {
				if ec, err := mgr.Exec(p); err == nil {
					stall += ec
				}
			}
		}
	}
	if p == nil {
		var err error
		p, err = b.node.NewProcess(fmt.Sprintf("cc1.%d", id), true, zone)
		if err != nil {
			b.Failures++
			return
		}
	}
	t := b.node.NewTask(p, -1, b.spec.BandwidthWeight)

	// Fault in the compiler's working set through the normal demand
	// paging path: this is where the commodity side stresses the
	// allocator.
	anon := b.rand.Jitter(sim.Cycles(b.spec.AnonPerCompile), 0.3)
	// Odd-size the region so THP covers only the aligned interior.
	size := uint64(anon) + 24<<10
	addr, c, err := b.node.Mmap(p, size, rw, vma.KindAnon)
	if err == nil {
		stall += c
		if st, terr := b.node.TouchRange(p, addr, size); terr == nil {
			stall += st.Total()
		}
	}

	cpu := b.rand.Jitter(b.spec.CompileCompute, b.spec.CompileJitter)
	// Run the compile in slices: each slice re-places the floating task,
	// modelling CFS load balancing migrating it off a busy core.
	const slices = 3
	var step func(left int, carry sim.Cycles)
	step = func(left int, carry sim.Cycles) {
		if left == 0 {
			// Object write + header reads land in the page cache.
			b.node.PageCacheAdd(zone, b.spec.FilePerCompile)
			b.Compiles++
			t.Finish()
			// Quiescent exit: the compile task just finished and no event
			// closure references p afterwards, so the lifecycle fast path
			// may recycle the process structs.
			b.node.ExitReap(p)
			if b.stopped {
				return
			}
			gap := sim.Cycles(b.rand.Exponential(float64(b.spec.IOWait)))
			b.node.Engine().Schedule(gap+1, func() { b.worker(id) })
			return
		}
		b.node.Run(t, cpu/slices, carry, func(sim.Cycles) { step(left-1, 0) })
	}
	step(slices, stall)
}
