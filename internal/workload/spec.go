// Package workload models the paper's applications: the Mantevo
// mini-apps (HPCCG, CoMD, miniMD, miniFE), ASC Sequoia LAMMPS, and the
// parallel-kernel-build commodity workload used as interference. Each HPC
// application is a bulk-synchronous rank driver that allocates memory
// through the simulated system-call layer (so faults, large pages,
// merges, storms all come from the memory-management machinery) and runs
// iterations whose cost composes compute, TLB overhead, NUMA locality and
// scheduler share.
package workload

import "hpmmap/internal/sim"

// AppSpec parameterizes one HPC application in weak-scaling mode: every
// field is per rank and stays constant as ranks are added.
type AppSpec struct {
	Name string

	// FootprintPerRank is the main data-array volume per rank.
	FootprintPerRank uint64
	// SmallFraction of the footprint is allocated through the glibc-style
	// heap in small increments (metadata, small mallocs, MPI buffers) —
	// the memory that ends up 4KB-mapped under THP.
	SmallFraction float64
	// StackBytes is touched during startup.
	StackBytes uint64
	// AllocChunk is the mmap granularity for the big arrays.
	AllocChunk uint64
	// BrkStep is the heap extension increment.
	BrkStep uint64

	// Iterations of the main solve loop.
	Iterations int
	// ComputePerIter is the uncontended CPU work per iteration.
	ComputePerIter sim.Cycles
	// AccessesPerIter is the TLB-relevant memory access count per
	// iteration (drives the page-size-dependent walk overhead).
	AccessesPerIter uint64
	// Locality in [0,1): probability an access hits hot data regardless
	// of footprint.
	Locality float64
	// MemBoundFactor in [0,1]: sensitivity of compute to memory-bandwidth
	// contention and NUMA remoteness.
	MemBoundFactor float64
	// BandwidthWeight is the share of one core's memory bandwidth a rank
	// consumes while computing.
	BandwidthWeight float64

	// ChurnPerIter is remapped each iteration (neighbor lists, work
	// buffers): an mmap/touch/munmap cycle that keeps the fault path hot
	// for the entire run.
	ChurnPerIter uint64
	// SmallChurnPerIter is a sub-hugetlb-threshold buffer remapped each
	// iteration (MPI bounce buffers, runtime scratch): 4KB-mapped under
	// both Linux managers, eagerly mapped under HPMMAP. This is the
	// ongoing small-fault traffic visible throughout the paper's fault
	// timelines.
	SmallChurnPerIter uint64
	// HeapChurnPerIter is allocated through the heap each iteration
	// (small temporary objects), growing the glibc heap tail.
	HeapChurnPerIter uint64

	// CommBytesPerIter is the per-rank halo-exchange volume (multi-node
	// runs); CollectiveFactor scales the per-iteration allreduce count.
	CommBytesPerIter uint64
	CollectiveFactor float64

	// SharedPerPeer is the MPI shared-memory segment size established
	// with each same-node peer rank (OpenMPI's sm BTL FIFOs and bounce
	// buffers). File-backed: 4KB-mapped under both Linux managers and
	// never hugetlb-backed — the app-side memory that grows
	// superlinearly with ranks and squeezes the unreserved pool in the
	// HugeTLBfs configuration.
	SharedPerPeer uint64

	// SetupSteps spreads initial allocation/first-touch over this many
	// segments, so the fault timeline matches a real initialization
	// phase.
	SetupSteps int
}

// The five benchmarks. Compute costs are calibrated for the 2.2GHz
// single-node testbed so weak-scaled runtimes land in the ranges of the
// paper's Figure 7; the cluster preset's higher clock is absorbed by the
// cycle-denominated model.
//
// HPCCG: a conjugate-gradient solver — bandwidth-bound, short iterations,
// medium footprint.
func HPCCG() AppSpec {
	return AppSpec{
		Name:              "HPCCG",
		FootprintPerRank:  1250 << 20,
		SmallFraction:     0.10,
		StackBytes:        2 << 20,
		AllocChunk:        256 << 20,
		BrkStep:           256 << 10,
		Iterations:        120,
		ComputePerIter:    1_250_000_000,
		AccessesPerIter:   9_000_000,
		Locality:          0.72,
		MemBoundFactor:    0.55,
		BandwidthWeight:   0.65,
		ChurnPerIter:      4 << 20,
		SmallChurnPerIter: 448 << 10,
		HeapChurnPerIter:  64 << 10,
		CommBytesPerIter:  2 << 20,
		CollectiveFactor:  1.0,
		SharedPerPeer:     24 << 20,
		SetupSteps:        16,
	}
}

// CoMD: classical molecular dynamics — compute-heavy, good locality.
func CoMD() AppSpec {
	return AppSpec{
		Name:              "CoMD",
		FootprintPerRank:  1250 << 20,
		SmallFraction:     0.12,
		StackBytes:        2 << 20,
		AllocChunk:        256 << 20,
		BrkStep:           256 << 10,
		Iterations:        150,
		ComputePerIter:    3_500_000_000,
		AccessesPerIter:   14_000_000,
		Locality:          0.78,
		MemBoundFactor:    0.40,
		BandwidthWeight:   0.50,
		ChurnPerIter:      8 << 20,
		SmallChurnPerIter: 384 << 10,
		HeapChurnPerIter:  96 << 10,
		CommBytesPerIter:  1 << 20,
		CollectiveFactor:  0.5,
		SharedPerPeer:     24 << 20,
		SetupSteps:        16,
	}
}

// MiniMD: force-computation proxy — the paper's fault-study subject.
// Its large small-allocation volume (≈500MB of heap per rank) produces
// the ~136K small faults of Figure 2.
func MiniMD() AppSpec {
	return AppSpec{
		Name:              "miniMD",
		FootprintPerRank:  1250 << 20,
		SmallFraction:     0.35,
		StackBytes:        3 << 20,
		AllocChunk:        256 << 20,
		BrkStep:           256 << 10,
		Iterations:        180,
		ComputePerIter:    3_400_000_000,
		AccessesPerIter:   20_000_000,
		Locality:          0.80,
		MemBoundFactor:    0.35,
		BandwidthWeight:   0.55,
		ChurnPerIter:      12 << 20,
		SmallChurnPerIter: 512 << 10,
		HeapChurnPerIter:  128 << 10,
		CommBytesPerIter:  1 << 20,
		CollectiveFactor:  0.5,
		SharedPerPeer:     24 << 20,
		SetupSteps:        20,
	}
}

// MiniFE: unstructured implicit finite elements — assembly plus solve,
// bandwidth-bound, lots of indirection (lower locality).
func MiniFE() AppSpec {
	return AppSpec{
		Name:              "miniFE",
		FootprintPerRank:  1250 << 20,
		SmallFraction:     0.15,
		StackBytes:        2 << 20,
		AllocChunk:        256 << 20,
		BrkStep:           256 << 10,
		Iterations:        110,
		ComputePerIter:    1_450_000_000,
		AccessesPerIter:   10_000_000,
		Locality:          0.68,
		MemBoundFactor:    0.55,
		BandwidthWeight:   0.65,
		ChurnPerIter:      6 << 20,
		SmallChurnPerIter: 448 << 10,
		HeapChurnPerIter:  96 << 10,
		CommBytesPerIter:  2 << 20,
		CollectiveFactor:  1.0,
		SharedPerPeer:     24 << 20,
		SetupSteps:        16,
	}
}

// LAMMPS: production molecular dynamics — the least memory-sensitive of
// the set (the paper's 2–4% improvement case).
func LAMMPS() AppSpec {
	return AppSpec{
		Name:              "LAMMPS",
		FootprintPerRank:  1150 << 20,
		SmallFraction:     0.18,
		StackBytes:        4 << 20,
		AllocChunk:        256 << 20,
		BrkStep:           256 << 10,
		Iterations:        200,
		ComputePerIter:    1_350_000_000,
		AccessesPerIter:   4_000_000,
		Locality:          0.86,
		MemBoundFactor:    0.25,
		BandwidthWeight:   0.40,
		ChurnPerIter:      4 << 20,
		SmallChurnPerIter: 256 << 10,
		HeapChurnPerIter:  64 << 10,
		CommBytesPerIter:  1536 << 10,
		CollectiveFactor:  0.6,
		SharedPerPeer:     24 << 20,
		SetupSteps:        16,
	}
}

// ByName returns the spec for a benchmark name, or false.
func ByName(name string) (AppSpec, bool) {
	switch name {
	case "HPCCG", "hpccg":
		return HPCCG(), true
	case "CoMD", "comd":
		return CoMD(), true
	case "miniMD", "minimd":
		return MiniMD(), true
	case "miniFE", "minife":
		return MiniFE(), true
	case "LAMMPS", "lammps":
		return LAMMPS(), true
	}
	return AppSpec{}, false
}

// ScaleFootprint returns a copy of the spec with the per-rank footprint
// scaled by f — used to fit total memory to the machine (the paper sizes
// inputs so the application consumes the reserved 12GB).
func (s AppSpec) ScaleFootprint(f float64) AppSpec {
	s.FootprintPerRank = uint64(float64(s.FootprintPerRank) * f)
	return s
}

// ScaleWork scales the per-rank problem size: footprint, compute,
// accesses, churn and communication all grow together, as they do when a
// weak-scaled input is enlarged. Used to size the cluster-study inputs.
func (s AppSpec) ScaleWork(f float64) AppSpec {
	s.FootprintPerRank = uint64(float64(s.FootprintPerRank) * f)
	s.ComputePerIter = sim.Cycles(float64(s.ComputePerIter) * f)
	s.AccessesPerIter = uint64(float64(s.AccessesPerIter) * f)
	s.ChurnPerIter = uint64(float64(s.ChurnPerIter) * f)
	s.HeapChurnPerIter = uint64(float64(s.HeapChurnPerIter) * f)
	s.SmallChurnPerIter = uint64(float64(s.SmallChurnPerIter) * f)
	s.CommBytesPerIter = uint64(float64(s.CommBytesPerIter) * f)
	return s
}
