package workload

import (
	"testing"

	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/sim"
)

func overheadProc(t *testing.T) (*kernel.Node, *kernel.Process) {
	t.Helper()
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(17))
	node.SetDefaultMM(linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil))
	p, err := node.NewProcess("x", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	return node, p
}

func TestOverheadScalesWithAccesses(t *testing.T) {
	node, p := overheadProc(t)
	p.ResidentSmall = 1 << 30
	spec := HPCCG()
	lo := MemoryOverhead(node, p, spec)
	spec.AccessesPerIter *= 4
	hi := MemoryOverhead(node, p, spec)
	if hi < 3*lo {
		t.Fatalf("4x accesses gave %d -> %d", lo, hi)
	}
}

func TestOverheadLocalityHelps(t *testing.T) {
	node, p := overheadProc(t)
	p.ResidentSmall = 1 << 30
	spec := HPCCG()
	spec.Locality = 0.5
	low := MemoryOverhead(node, p, spec)
	spec.Locality = 0.95
	high := MemoryOverhead(node, p, spec)
	if high >= low {
		t.Fatalf("higher locality did not reduce overhead: %d vs %d", high, low)
	}
}

func TestOverheadLargePagesAbsorbSpatialLocality(t *testing.T) {
	// The 2MB-mapped configuration must beat the 4KB one by far more
	// than the 4-vs-3-level walk alone (x1.33): page reach and spatial
	// locality absorption dominate.
	node, p := overheadProc(t)
	spec := HPCCG()
	p.ResidentSmall = 4 << 30
	small := MemoryOverhead(node, p, spec)
	p.ResidentSmall = 0
	p.ResidentLarge = 4 << 30
	large := MemoryOverhead(node, p, spec)
	if small < 10*large {
		t.Fatalf("4K/2M overhead ratio only %.1f", float64(small)/float64(large))
	}
}
